// Package govolve is a reproduction of "Dynamic Software Updates: A
// VM-centric Approach" (Subramanian, Hicks, McKinley — PLDI 2009): a toy
// managed-language virtual machine with JVOLVE-style dynamic software
// updating built from coordinated VM services — classloading, JIT
// compilation with baked-in offsets, green-thread scheduling with yield
// points, return barriers, on-stack replacement, and a semi-space copying
// garbage collector extended to transform objects of updated classes.
//
// Quick start:
//
//	prog, _ := govolve.Assemble("hello.jva", src)
//	machine, _ := govolve.NewVM(govolve.Options{})
//	machine.LoadProgram(prog)
//	machine.SpawnMain("Hello")
//	machine.Run()
//
// Dynamic update:
//
//	spec, _ := govolve.PrepareUpdate("10", oldProg, newProg)
//	engine := govolve.NewEngine(machine)
//	result, _ := engine.ApplyNow(spec, govolve.UpdateOptions{})
package govolve

import (
	"govolve/internal/asm"
	"govolve/internal/classfile"
	"govolve/internal/core"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

// VM is the virtual machine. See internal/vm for the full surface.
type VM = vm.VM

// Options configures NewVM.
type Options = vm.Options

// Thread is a VM green thread.
type Thread = vm.Thread

// Program is one version of an application: a set of classes.
type Program = classfile.Program

// Class is a single class definition.
type Class = classfile.Class

// Spec is an update specification produced by the Update Preparation Tool.
type Spec = upt.Spec

// Engine is the DSU engine bound to a VM.
type Engine = core.Engine

// UpdateOptions tunes one update request.
type UpdateOptions = core.Options

// UpdateResult is the terminal state of an update.
type UpdateResult = core.Result

// Update outcomes.
const (
	Applied = core.Applied
	Aborted = core.Aborted
	Failed  = core.Failed
)

// NewVM constructs a virtual machine with bootstrap classes loaded.
func NewVM(opts Options) (*VM, error) { return vm.New(opts) }

// Assemble parses assembler source into a program.
func Assemble(file, src string) (*Program, error) {
	return asm.AssembleProgram(file, src)
}

// PrepareUpdate runs the Update Preparation Tool over two program versions,
// producing the update specification with generated default transformers.
// oldTag becomes the rename prefix of old class versions (tag "131" renames
// User to v131_User).
func PrepareUpdate(oldTag string, old, new_ *Program) (*Spec, error) {
	return upt.Prepare(oldTag, old, new_)
}

// NewEngine attaches a DSU engine to a VM.
func NewEngine(v *VM) *Engine { return core.NewEngine(v) }
