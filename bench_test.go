package govolve_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// These run scaled-down versions suitable for `go test -bench`; the
// cmd/jvolve-bench harness reproduces the full grids (use -scale 1 for the
// paper's 280k–3.67M-object microbenchmark sizes).

import (
	"fmt"
	"io"
	"testing"
	"time"

	"govolve/internal/apps"
	"govolve/internal/bench"
)

// BenchmarkTable1UpdatePause measures the DSU pause decomposition (GC time,
// transformer time, total) for the paper's microbenchmark at a scaled-down
// size, across three representative update fractions.
func BenchmarkTable1UpdatePause(b *testing.B) {
	for _, frac := range []float64{0, 0.5, 1} {
		b.Run(fmt.Sprintf("objects=35k/frac=%.0f%%", frac*100), func(b *testing.B) {
			var gcT, trT, totT time.Duration
			for i := 0; i < b.N; i++ {
				res, err := bench.RunMicro(bench.MicroConfig{Objects: 35_000, FracUpdated: frac})
				if err != nil {
					b.Fatal(err)
				}
				gcT += res.GC
				trT += res.Transform
				totT += res.Total
			}
			b.ReportMetric(bench.Millis(gcT)/float64(b.N), "gc-ms")
			b.ReportMetric(bench.Millis(trT)/float64(b.N), "transform-ms")
			b.ReportMetric(bench.Millis(totT)/float64(b.N), "pause-ms")
		})
	}
}

// BenchmarkFig6PauseDecomposition sweeps the update fraction at one size —
// the data behind the paper's Figure 6 plot.
func BenchmarkFig6PauseDecomposition(b *testing.B) {
	for _, frac := range bench.DefaultFractions() {
		b.Run(fmt.Sprintf("frac=%.0f%%", frac*100), func(b *testing.B) {
			var tot time.Duration
			for i := 0; i < b.N; i++ {
				res, err := bench.RunMicro(bench.MicroConfig{Objects: 20_000, FracUpdated: frac})
				if err != nil {
					b.Fatal(err)
				}
				tot += res.Total
			}
			b.ReportMetric(bench.Millis(tot)/float64(b.N), "pause-ms")
		})
	}
}

// BenchmarkGCPauseParallel measures the DSU collection pause under the
// serial collector and the parallel copy/scan collector at increasing
// worker counts — the gcpause experiment's inner loop at a scaled size.
// Wall-clock speedup requires hardware parallelism (GOMAXPROCS>1); on a
// single CPU the parallel rows measure pure coordination overhead.
func BenchmarkGCPauseParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("objects=35k/frac=20%%/workers=%d", workers), func(b *testing.B) {
			var gcT, trT time.Duration
			for i := 0; i < b.N; i++ {
				res, err := bench.RunMicro(bench.MicroConfig{
					Objects: 35_000, FracUpdated: 0.2,
					FastDefaults: true, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.GCWorkers != workers {
					b.Fatalf("ran %d workers, want %d", res.GCWorkers, workers)
				}
				gcT += res.GC
				trT += res.Transform
			}
			b.ReportMetric(bench.Millis(gcT)/float64(b.N), "gc-ms")
			b.ReportMetric(bench.Millis(trT)/float64(b.N), "transform-ms")
		})
	}
}

// BenchmarkFig5SteadyState measures webserver throughput in the paper's
// three configurations: stock VM, DSU-capable VM, and dynamically updated
// VM. The paper's claim — and this reproduction's — is that the three are
// essentially identical.
func BenchmarkFig5SteadyState(b *testing.B) {
	app := apps.Webserver()
	for _, cfg := range bench.DefaultFig5Configs(app) {
		cfg := cfg
		b.Run(cfg.Label, func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				results, err := bench.RunFig5(app, []bench.Fig5Config{cfg},
					bench.Fig5Options{Runs: 1, Duration: 100 * time.Millisecond}, nil)
				if err != nil {
					b.Fatal(err)
				}
				thr += results[0].Throughput.Median
			}
			b.ReportMetric(thr/float64(b.N), "req/s")
		})
	}
}

// BenchmarkTables234UPT measures the Update Preparation Tool itself: a full
// diff + spec + default-transformer generation over every release of all
// three applications (the computation behind Tables 2–4).
func BenchmarkTables234UPT(b *testing.B) {
	for _, app := range apps.All() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.SummarizeApp(app)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != app.UpdateCount() {
					b.Fatal("row count")
				}
			}
		})
	}
}

// BenchmarkUpdateMatrix runs the §4 experience experiment: every update of
// every application applied to the live server under load (20 of 22 apply;
// the two engineered always-on-stack changes abort).
func BenchmarkUpdateMatrix(b *testing.B) {
	for _, app := range apps.All() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				entries, err := apps.RunMatrix(app, 1<<20)
				if err != nil {
					b.Fatal(err)
				}
				applied := 0
				for _, e := range entries {
					if e.Outcome.String() == "applied" {
						applied++
					}
				}
				b.ReportMetric(float64(applied), "applied")
				b.ReportMetric(float64(len(entries)-applied), "aborted")
			}
		})
	}
}

// BenchmarkAblationIndirection compares JVOLVE's zero-cost steady state
// with a simulated lazy-update VM that pays an indirection plus an
// is-updated check on every field access (the paper §5's JDrums/DVM
// comparison).
func BenchmarkAblationIndirection(b *testing.B) {
	app := apps.Webserver()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblation(app, 2, 100*time.Millisecond, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SlowdownPct, "lazy-slowdown-%")
		bench.PrintAblation(io.Discard, res)
	}
}
