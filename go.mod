module govolve

go 1.22
