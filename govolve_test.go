package govolve_test

import (
	"bytes"
	"strings"
	"testing"

	"govolve"
)

const helloV1 = `
class Greeter {
  field name LString;

  method <init>(LString;)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Greeter.name LString;
    return
  }

  method greet()LString; {
    ldc "Hello, "
    load 0
    getfield Greeter.name LString;
    invokevirtual String.concat(LString;)LString;
    return
  }
}

class Main {
  static method main()V {
    new Greeter
    dup
    ldc "world"
    invokespecial Greeter.<init>(LString;)V
    invokevirtual Greeter.greet()LString;
    invokestatic System.println(LString;)V
    return
  }
}
`

func TestHelloWorldRuns(t *testing.T) {
	prog, err := govolve.Assemble("hello.jva", helloV1)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	var out bytes.Buffer
	machine, err := govolve.NewVM(govolve.Options{Out: &out})
	if err != nil {
		t.Fatalf("new vm: %v", err)
	}
	if err := machine.LoadProgram(prog); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := machine.SpawnMain("Main"); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if err := machine.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, th := range machine.Threads {
		if th.Err != nil {
			t.Fatalf("thread error: %v", th.Err)
		}
	}
	if got := out.String(); got != "Hello, world\n" {
		t.Fatalf("output = %q, want %q", got, "Hello, world\n")
	}
}

// counterV1/V2 exercise the full update path: a server-like loop whose
// worker class gains a field and changes a method's behaviour between
// versions, updated while the loop runs.
const counterV1 = `
class Counter {
  field count I

  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }

  method tick()I {
    load 0
    load 0
    getfield Counter.count I
    const 1
    add
    putfield Counter.count I
    load 0
    getfield Counter.count I
    return
  }

  method label()LString; {
    ldc "v1:"
    load 0
    getfield Counter.count I
    invokestatic String.fromInt(I)LString;
    invokevirtual String.concat(LString;)LString;
    return
  }
}

class App {
  static field c LCounter;
  static field spin I

  static method main()V {
    new Counter
    dup
    invokespecial Counter.<init>()V
    putstatic App.c LCounter;
  loop:
    getstatic App.c LCounter;
    invokevirtual Counter.tick()I
    const 2000
    if_icmpge done
    goto loop
  done:
    getstatic App.c LCounter;
    invokevirtual Counter.label()LString;
    invokestatic System.println(LString;)V
    return
  }
}
`

// Version 2: Counter gains a "step" field (a class update), tick() uses it,
// and label() reports v2. App.main is an indirect method (bytecode
// unchanged, references Counter).
const counterV2 = `
class Counter {
  field count I
  field step I

  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    load 0
    const 1
    putfield Counter.step I
    return
  }

  method tick()I {
    load 0
    load 0
    getfield Counter.count I
    load 0
    getfield Counter.step I
    add
    putfield Counter.count I
    load 0
    getfield Counter.count I
    return
  }

  method label()LString; {
    ldc "v2:"
    load 0
    getfield Counter.count I
    invokestatic String.fromInt(I)LString;
    invokevirtual String.concat(LString;)LString;
    ldc ":step="
    load 0
    getfield Counter.step I
    invokestatic String.fromInt(I)LString;
    invokevirtual String.concat(LString;)LString;
    invokevirtual String.concat(LString;)LString;
    return
  }
}

class App {
  static field c LCounter;
  static field spin I

  static method main()V {
    new Counter
    dup
    invokespecial Counter.<init>()V
    putstatic App.c LCounter;
  loop:
    getstatic App.c LCounter;
    invokevirtual Counter.tick()I
    const 2000
    if_icmpge done
    goto loop
  done:
    getstatic App.c LCounter;
    invokevirtual Counter.label()LString;
    invokestatic System.println(LString;)V
    return
  }
}
`

func TestLiveUpdateAddsField(t *testing.T) {
	v1, err := govolve.Assemble("v1.jva", counterV1)
	if err != nil {
		t.Fatalf("assemble v1: %v", err)
	}
	v2, err := govolve.Assemble("v2.jva", counterV2)
	if err != nil {
		t.Fatalf("assemble v2: %v", err)
	}
	var out bytes.Buffer
	machine, err := govolve.NewVM(govolve.Options{Out: &out})
	if err != nil {
		t.Fatalf("new vm: %v", err)
	}
	if err := machine.LoadProgram(v1); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := machine.SpawnMain("App"); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	// Let version 1 run a while (but well short of the 2000 ticks the
	// loop needs), then update mid-loop.
	machine.Step(3)

	spec, err := govolve.PrepareUpdate("1", v1, v2)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if !spec.IsClassUpdate("Counter") {
		t.Fatalf("Counter should be a class update; spec: %+v", spec.ClassUpdates)
	}

	// The default transformer would zero the new step field and v2's
	// tick() would stop making progress — the exact situation the paper's
	// Figure 3 custom transformer exists for. Customize: preserve count,
	// initialize step to 1.
	custom := `
class JvolveTransformers {
  static method jvolveObject(LCounter;Lv1_Counter;)V {
    load 0
    load 1
    getfield v1_Counter.count I
    putfield Counter.count I
    load 0
    const 1
    putfield Counter.step I
    return
  }
}
`
	tc, err := govolve.Assemble("transformers.jva", custom)
	if err != nil {
		t.Fatalf("assemble transformer: %v", err)
	}
	for _, m := range tc.Classes["JvolveTransformers"].Methods {
		spec.OverrideTransformer(m)
	}

	engine := govolve.NewEngine(machine)
	res, err := engine.ApplyNow(spec, govolve.UpdateOptions{})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if res.Outcome != govolve.Applied {
		t.Fatalf("outcome = %v, err = %v", res.Outcome, res.Err)
	}
	if res.Stats.TransformedObjects == 0 {
		t.Fatalf("expected transformed objects, got 0 (stats %+v)", res.Stats)
	}

	if err := machine.Run(); err != nil {
		t.Fatalf("run after update: %v", err)
	}
	for _, th := range machine.Threads {
		if th.Err != nil {
			t.Fatalf("thread error: %v\n%s", th.Err, th.Backtrace())
		}
	}
	got := out.String()
	if !strings.HasPrefix(got, "v2:2000:step=1") {
		t.Fatalf("output = %q; want v2 label with preserved count 2000 and default-initialized step", got)
	}
}
