// Emailserver example: reproduces the paper's running example (Figures 2
// and 3). The server starts at JavaEmailServer 1.3.1, where alice's
// forwarded addresses are plain strings; the 1.3.2 update changes the
// field's type to an array of the new EmailAddress class, and the custom
// object transformer splits each "user@domain" string — live, while both
// the SMTP and POP3 listeners keep their infinite accept loops on stack.
//
//	go run ./examples/emailserver
package main

import (
	"fmt"
	"log"

	"govolve/internal/apps"
	"govolve/internal/core"
)

func main() {
	app := apps.EmailServer()
	start := 0
	for i, v := range app.Versions {
		if v.Name == "1.3.1" {
			start = i
		}
	}
	s, err := apps.Launch(app, apps.LaunchOptions{HeapWords: 1 << 20, Version: start})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s %s (SMTP :25, POP3 :110)\n", app.Name, s.Version().Name)

	pop := func(cmd string) string {
		conn, err := s.VM.Net.Connect(110)
		if err != nil {
			log.Fatal(err)
		}
		defer s.VM.Net.ClientClose(conn)
		if err := s.VM.Net.ClientSend(conn, cmd); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			s.VM.Step(5)
			if line, ok := s.VM.Net.ClientRecv(conn); ok {
				return line
			}
		}
		log.Fatalf("%s timed out", cmd)
		return ""
	}

	fmt.Printf("  FWD alice -> %s\n", pop("FWD alice"))
	fmt.Println("applying 1.3.1 -> 1.3.2 (User.forwardAddresses: [LString; -> [LEmailAddress;)…")
	res, err := s.ApplyNext(core.Options{MaxAttempts: 200}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: %s (transformed %d objects, pause %v)\n",
		res.Outcome, res.Stats.TransformedObjects, res.Stats.PauseTotal)
	fmt.Printf("  FWD alice -> %s\n", pop("FWD alice"))
	fmt.Println("the forwards survived the type change: each string became an EmailAddress")

	// Mail delivered before an update is still readable after it.
	smtp := func(cmd string) string {
		conn, err := s.VM.Net.Connect(25)
		if err != nil {
			log.Fatal(err)
		}
		defer s.VM.Net.ClientClose(conn)
		_ = s.VM.Net.ClientSend(conn, cmd)
		for i := 0; i < 5000; i++ {
			s.VM.Step(5)
			if line, ok := s.VM.Net.ClientRecv(conn); ok {
				return line
			}
		}
		return "(timeout)"
	}
	fmt.Printf("  DATA hello -> %s\n", smtp("DATA hello from the new version"))
	fmt.Printf("  RETR 0 -> %s\n", pop("RETR 0"))
}
