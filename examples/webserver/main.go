// Webserver example: boots the mini-jetty application at release 5.1.0,
// serves traffic, and walks the live server through its whole release
// stream — including the 5.1.2→5.1.3 update that can never be applied
// because it edits the accept loop (the VM aborts it and the example
// restarts the server, exactly what the paper's operators had to do).
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"govolve/internal/apps"
	"govolve/internal/core"
)

func main() {
	app := apps.Webserver()
	s, err := apps.Launch(app, apps.LaunchOptions{HeapWords: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	probe := func() {
		line, err := s.Probe()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  GET / -> %s\n", line)
	}
	fmt.Printf("serving %s %s on simulated port %d\n", app.Name, s.Version().Name, app.Port)
	probe()

	for i := 0; i < app.UpdateCount(); i++ {
		target := app.Versions[i+1]
		// Keep traffic flowing while updating.
		if _, err := s.DoBatch(); err != nil {
			log.Fatal(err)
		}
		res, err := s.ApplyNext(core.Options{MaxAttempts: 100}, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("update %s -> %s: %s (barriers=%d osr=%d transformed=%d pause=%v)\n",
			app.Versions[i].Name, target.Name, res.Outcome,
			res.Stats.BarriersInstalled, res.Stats.OSRFrames,
			res.Stats.TransformedObjects, res.Stats.PauseTotal)
		if res.Outcome == core.Aborted {
			fmt.Printf("  %s changes the accept loop, which never leaves the stack — restarting\n", target.Name)
			s, err = apps.Launch(app, apps.LaunchOptions{HeapWords: 1 << 20, Version: i + 1})
			if err != nil {
				log.Fatal(err)
			}
		}
		probe()
	}
	fmt.Println("reached", s.Version().Name, "with", s.Responses, "responses served along the way")
}
