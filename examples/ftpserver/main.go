// FTP server example: reproduces the paper's CrossFTP 1.07→1.08 story.
// That update changes RequestHandler.run() itself, so while sessions are
// connected the changed method is always on some stack: the update aborts.
// Once the sessions drain the same update applies immediately.
//
//	go run ./examples/ftpserver
package main

import (
	"fmt"
	"log"

	"govolve/internal/apps"
	"govolve/internal/core"
)

func main() {
	app := apps.FTPServer()
	idx107 := 2 // 1.05, 1.06, 1.07, 1.08
	s, err := apps.Launch(app, apps.LaunchOptions{HeapWords: 1 << 20, Version: idx107})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s %s on simulated port %d\n", app.Name, s.Version().Name, app.Port)

	fmt.Println("holding 3 active FTP sessions…")
	held, err := s.HoldConnections(3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.ApplyNext(core.Options{MaxAttempts: 40}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update 1.07 -> 1.08 under load: %s (barriers=%d) — run() never leaves the stack\n",
		res.Outcome, res.Stats.BarriersInstalled)
	if res.Outcome != core.Aborted {
		log.Fatalf("expected an abort under load, got %v", res.Outcome)
	}

	fmt.Println("disconnecting the sessions and retrying…")
	s.ReleaseConnections(held)
	res, err = s.ApplyNext(core.Options{MaxAttempts: 200}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update 1.07 -> 1.08 when idle: %s (pause %v)\n", res.Outcome, res.Stats.PauseTotal)

	line, err := s.Probe()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  USER admin -> %s\n", line)
}
