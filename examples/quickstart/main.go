// Quickstart: assemble a small program, run it, and update it in place.
//
// Version 1 counts by 1; version 2 adds a `step` field to the Counter
// class. A custom object transformer — exactly like the paper's Figure 3 —
// preserves the live count and initializes the new field, so the program
// finishes seamlessly on the new code.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"govolve"
	"govolve/internal/asm"
	"govolve/internal/core"
)

const v1 = `
class Counter {
  field count I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method tick()V {
    load 0
    load 0
    getfield Counter.count I
    const 1
    add
    putfield Counter.count I
    return
  }
  method report()LString; {
    ldc "v1 count="
    load 0
    getfield Counter.count I
    invokestatic String.fromInt(I)LString;
    invokevirtual String.concat(LString;)LString;
    return
  }
}
class Main {
  static field c LCounter;
  static method main()V {
    new Counter
    dup
    invokespecial Counter.<init>()V
    putstatic Main.c LCounter;
    const 0
    store 0
  loop:
    load 0
    const 30000
    if_icmpge done
    getstatic Main.c LCounter;
    invokevirtual Counter.tick()V
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic Main.c LCounter;
    invokevirtual Counter.report()LString;
    invokestatic System.println(LString;)V
    return
  }
}
`

const v2 = `
class Counter {
  field count I
  field step I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    load 0
    const 1
    putfield Counter.step I
    return
  }
  method tick()V {
    load 0
    load 0
    getfield Counter.count I
    load 0
    getfield Counter.step I
    add
    putfield Counter.count I
    return
  }
  method report()LString; {
    ldc "v2 count="
    load 0
    getfield Counter.count I
    invokestatic String.fromInt(I)LString;
    invokevirtual String.concat(LString;)LString;
    ldc " step="
    load 0
    getfield Counter.step I
    invokestatic String.fromInt(I)LString;
    invokevirtual String.concat(LString;)LString;
    invokevirtual String.concat(LString;)LString;
    return
  }
}
class Main {
  static field c LCounter;
  static method main()V {
    new Counter
    dup
    invokespecial Counter.<init>()V
    putstatic Main.c LCounter;
    const 0
    store 0
  loop:
    load 0
    const 30000
    if_icmpge done
    getstatic Main.c LCounter;
    invokevirtual Counter.tick()V
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic Main.c LCounter;
    invokevirtual Counter.report()LString;
    invokestatic System.println(LString;)V
    return
  }
}
`

// The UPT default transformer would zero the new step field (and v2 would
// stop counting); the custom transformer initializes it — the paper's
// "programmers may customize the default transformers".
const transformers = `
class JvolveTransformers {
  static method jvolveObject(LCounter;Lvq_Counter;)V {
    load 0
    load 1
    getfield vq_Counter.count I
    putfield Counter.count I
    load 0
    const 1
    putfield Counter.step I
    return
  }
}
`

func main() {
	oldProg, err := govolve.Assemble("v1.jva", v1)
	if err != nil {
		log.Fatal(err)
	}
	newProg, err := govolve.Assemble("v2.jva", v2)
	if err != nil {
		log.Fatal(err)
	}

	machine, err := govolve.NewVM(govolve.Options{Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	if err := machine.LoadProgram(oldProg); err != nil {
		log.Fatal(err)
	}
	if _, err := machine.SpawnMain("Main"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("running version 1…")
	machine.Step(10) // mid-loop

	spec, err := govolve.PrepareUpdate("q", oldProg, newProg)
	if err != nil {
		log.Fatal(err)
	}
	tc, err := asm.Assemble("transformers.jva", transformers)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range tc[0].Methods {
		spec.OverrideTransformer(m)
	}

	engine := govolve.NewEngine(machine)
	res, err := engine.ApplyNow(spec, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update %s: attempts=%d barriers=%d osr=%d transformed=%d pause=%v\n",
		res.Outcome, res.Stats.Attempts, res.Stats.BarriersInstalled,
		res.Stats.OSRFrames, res.Stats.TransformedObjects, res.Stats.PauseTotal)

	if err := machine.Run(); err != nil {
		log.Fatal(err)
	}
	for _, th := range machine.Threads {
		if th.Err != nil {
			log.Fatalf("thread %s: %v", th.Name, th.Err)
		}
	}
	fmt.Println("done — the count survived the update and finished on v2 code")
}
