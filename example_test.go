package govolve_test

import (
	"fmt"
	"io"
	"log"

	"govolve"
	"govolve/internal/core"
)

// Example applies a dynamic software update to a running program: version 2
// renames a field's role (count keeps its value via the default
// transformer) and changes the report wording, mid-loop, with the loop's
// frame rewritten on stack.
func Example() {
	v1src := `
class Counter {
  field count I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class Main {
  static field c LCounter;
  static method main()V {
    new Counter
    dup
    invokespecial Counter.<init>()V
    putstatic Main.c LCounter;
    const 0
    store 0
  loop:
    load 0
    const 10000
    if_icmpge done
    getstatic Main.c LCounter;
    dup
    getfield Counter.count I
    const 1
    add
    putfield Counter.count I
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    invokestatic Main.report()V
    return
  }
  static method report()V {
    ldc "v1 total "
    getstatic Main.c LCounter;
    getfield Counter.count I
    invokestatic String.fromInt(I)LString;
    invokevirtual String.concat(LString;)LString;
    invokestatic System.println(LString;)V
    return
  }
}
`
	// v2: Counter gains an audit field and report() speaks for the new
	// version. The count value must survive the update.
	v2src := v1src
	v2src = replace(v2src, "field count I", "field count I\n  field audited I")
	v2src = replace(v2src, `ldc "v1 total "`, `ldc "v2 total "`)

	v1, err := govolve.Assemble("v1.jva", v1src)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := govolve.Assemble("v2.jva", v2src)
	if err != nil {
		log.Fatal(err)
	}

	machine, err := govolve.NewVM(govolve.Options{Out: writerTo{}})
	if err != nil {
		log.Fatal(err)
	}
	if err := machine.LoadProgram(v1); err != nil {
		log.Fatal(err)
	}
	if _, err := machine.SpawnMain("Main"); err != nil {
		log.Fatal(err)
	}
	machine.Step(3) // run v1 partway into its loop

	spec, err := govolve.PrepareUpdate("1", v1, v2)
	if err != nil {
		log.Fatal(err)
	}
	engine := govolve.NewEngine(machine)
	res, err := engine.ApplyNow(spec, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("update:", res.Outcome)
	if err := machine.Run(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// update: applied
	// v2 total 10000
}

// writerTo forwards VM output to the example's stdout.
type writerTo struct{}

func (writerTo) Write(p []byte) (int, error) { return fmt.Print(string(p)) }

func replace(s, old, new_ string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new_ + s[i+len(old):]
		}
	}
	return s
}

var _ io.Writer = writerTo{}
