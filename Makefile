# Tier-1 verification for govolve. `make verify` is what CI runs: build,
# vet, the full test suite, the same suite under the race detector, and a
# focused race pass over the parallel-collection packages (gc, heap) whose
# concurrency is the riskiest code in the tree.
# The storm soak and the fuzzers run longer and are split out.

GO ?= go

.PHONY: verify build vet test race race-gc storm bench-gc fuzz

verify: build vet test race race-gc

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass with more iterations over the parallel collector and
# the heap's TLAB/forwarding machinery (also covered by `race`, but these
# packages deserve the extra -count).
race-gc:
	$(GO) test -race -count=4 ./internal/gc/ ./internal/heap/

# Long-running randomized soak (reproduce failures with -seed).
storm:
	$(GO) run ./cmd/jvolve-bench -exp storm -updates 500

# GC-phase pause vs collection workers; writes BENCH_gc.json.
bench-gc:
	$(GO) run ./cmd/jvolve-bench -exp gcpause -gc-out BENCH_gc.json

# Explore beyond the checked-in seed corpora (30s per target).
fuzz:
	$(GO) test -fuzz=FuzzVerifier -fuzztime 30s ./internal/verifier
	$(GO) test -fuzz=FuzzAsmRoundTrip -fuzztime 30s ./internal/asm
	$(GO) test -fuzz=FuzzUPTDiff -fuzztime 30s ./internal/upt
