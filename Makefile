# Tier-1 verification for govolve. `make verify` is what CI runs: build,
# vet, the full test suite, and the same suite under the race detector.
# The storm soak and the fuzzers run longer and are split out.

GO ?= go

.PHONY: verify build vet test race storm fuzz

verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Long-running randomized soak (reproduce failures with -seed).
storm:
	$(GO) run ./cmd/jvolve-bench -exp storm -updates 500

# Explore beyond the checked-in seed corpora (30s per target).
fuzz:
	$(GO) test -fuzz=FuzzVerifier -fuzztime 30s ./internal/verifier
	$(GO) test -fuzz=FuzzAsmRoundTrip -fuzztime 30s ./internal/asm
	$(GO) test -fuzz=FuzzUPTDiff -fuzztime 30s ./internal/upt
