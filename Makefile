# Tier-1 verification for govolve. `make verify` is what CI runs: build,
# vet, the full test suite, the same suite under the race detector, and a
# focused race pass over the parallel-collection packages (gc, heap) whose
# concurrency is the riskiest code in the tree.
# The storm soak and the fuzzers run longer and are split out.

GO ?= go

.PHONY: verify build vet test race race-gc obs-gate obs-verdict-gate satb-gate lazy-gate reloc-gate stream-gate dispatch-gate storm bench-gc bench-obs bench-pause bench-stream bench-dispatch trace fuzz

verify: build vet test race race-gc obs-gate obs-verdict-gate satb-gate lazy-gate reloc-gate stream-gate dispatch-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass with more iterations over the parallel collector and
# the heap's TLAB/forwarding machinery (also covered by `race`, but these
# packages deserve the extra -count).
race-gc:
	$(GO) test -race -count=4 ./internal/gc/ ./internal/heap/

# Observability cost gate: a disabled flight recorder must add zero
# allocations and ≤2% dispatch overhead, including under the race detector
# (also covered by `test`/`race`; this target pins it by name and prints the
# benchmark so regressions are visible, not just pass/fail).
obs-gate:
	$(GO) test -race -run 'TestObsDisabled' -count=1 ./internal/vm/ ./internal/obs/
	$(GO) test -run '^$$' -bench 'BenchmarkObsDisabledOverhead|BenchmarkInterpDispatch' -benchtime 200ms ./internal/vm/

# Verdict/profiler gate: the sampling profiler must add zero allocations
# (disabled AND enabled steady state) and, off-race, ≤2% dispatch overhead
# (the throughput gate self-skips under -race, where tsan would dominate);
# the gate engine's comparator/window tables, the engine's verdict path
# (all-green PASS, injected-regression FAIL, halt/force-drain policies),
# and the stream/storm verdict determinism tests are pinned by name so the
# judgment path can't rot out of the suite. Prints the disabled-profiler
# benchmark so the cost stays visible.
obs-verdict-gate:
	$(GO) test -race -run 'TestProf' -count=1 ./internal/vm/ ./internal/obs/
	$(GO) test -race -run 'TestGate|TestCompareAllComparators|TestHistSnapshotDelta|TestVerdictFingerprint|TestDefaultGateSpecs' -count=1 ./internal/obs/ ./internal/core/
	$(GO) test -race -run 'TestStormEveryUpdateJudged|TestStormGateHalt|TestStreamVerdictDeterminism|TestStreamGate' -count=1 ./internal/storm/ ./internal/stream/
	$(GO) test -run 'TestProfDisabled' -count=1 ./internal/vm/
	$(GO) test -run '^$$' -bench 'BenchmarkProfDisabledOverhead|BenchmarkInterpDispatch' -benchtime 200ms ./internal/vm/

# Write-barrier cost gate: the disarmed SATB barrier must add zero
# allocations and ≤2% overhead to a dispatch-shaped store loop, and the
# armed barrier must stay within its tripwire bound. race-gc above already
# runs the mark/barrier packages (gc, heap) with -race -count=4; this target
# pins the gates by name and prints the three store benchmarks so the
# bare/disarmed/armed costs stay visible.
satb-gate:
	$(GO) test -run 'TestSATB' -count=1 ./internal/vm/ ./internal/heap/
	$(GO) test -run '^$$' -bench 'BenchmarkSATBStore|BenchmarkSATBDisarmedDispatch|BenchmarkSATBArmedDispatch' -benchtime 200ms ./internal/heap/ ./internal/vm/

# Read-barrier cost gate: the disabled lazy-transform barrier (a single hook
# nil-check compiled into every ref load) must add zero allocations and ≤2%
# overhead to a dispatch-shaped load loop, and the armed-but-clean barrier
# (header-bit test per load, no tagged objects) must hold the same bound.
# Prints the disabled/armed load benchmarks so both costs stay visible.
lazy-gate:
	$(GO) test -run 'TestLazy' -count=1 ./internal/vm/ ./internal/heap/
	$(GO) test -run '^$$' -bench 'BenchmarkLazyDisabledDispatch|BenchmarkLazyArmedDispatch' -benchtime 200ms ./internal/vm/

# Load-barrier cost gate: with concurrent relocation disabled the per-load
# hook nil-check must add zero allocations and ≤5% overhead to a
# dispatch-shaped load loop, and the armed-but-drained barrier (from-space
# range test per load after the drain has emptied it) must hold the same
# bound — the tripwire for a from-space hold that outlives its drain.
# Prints the disabled/armed-drained load benchmarks so both costs stay
# visible. race-gc above already runs the relocation drain packages
# (gc, heap) with -race -count=4.
reloc-gate:
	$(GO) test -run 'TestReloc' -count=1 ./internal/vm/ ./internal/gc/ ./internal/core/
	$(GO) test -run 'TestHeaderBitLayout' -count=1 ./internal/heap/
	$(GO) test -run '^$$' -bench 'BenchmarkRelocDisabledDispatch|BenchmarkRelocArmedDrainedDispatch' -benchtime 200ms ./internal/vm/

# Long-horizon stream gate: a short hostile version chain replayed in every
# engine mode under the race detector, with the chain-wide oracle at each
# step (also covered by `race`; pinned by name so the multi-release path
# can't silently rot out of the suite).
stream-gate:
	$(GO) test -race -run 'TestStreamGate' -count=1 ./internal/stream/

# Interpreter-tier gate: the fused fast path must stay allocation-free, the
# fused/base speedup ratio must hold (off-race; the ratio test self-skips
# under -race), and the tier's DSU honesty is pinned by name — base-vs-fused
# storm reports byte-identical, stale ICs flushed when the class behind a
# hot monomorphic site is replaced, and updates that land on threads pinned
# in fused loops deopting through the fused pc-map (core + hostile stream).
# Prints the dispatch benchmark so tier regressions are visible.
dispatch-gate:
	$(GO) test -race -run 'TestFusedDispatchZeroAlloc|TestInterpFastPathZeroAlloc|TestFusedSpeedupRatio' -count=1 ./internal/vm/
	$(GO) test -race -run 'TestStormTierEquivalence|TestStormStaleICCoverage' -count=1 ./internal/storm/
	$(GO) test -race -run 'TestFusedFrameOSRUpdate|TestStaleICFlushOnClassReplacement' -count=1 ./internal/core/
	$(GO) test -race -run 'TestStreamFusedFrameOSR' -count=1 ./internal/stream/
	$(GO) test -run 'TestFusedSpeedupRatio' -count=1 ./internal/vm/
	$(GO) test -run '^$$' -bench 'BenchmarkInterpDispatch' -benchtime 200ms ./internal/vm/

# Long-running randomized soak (reproduce failures with -seed).
storm:
	$(GO) run ./cmd/jvolve-bench -exp storm -updates 500

# GC-phase pause vs collection workers; writes BENCH_gc.json.
bench-gc:
	$(GO) run ./cmd/jvolve-bench -exp gcpause -gc-out BENCH_gc.json

# STW vs concurrent-mark DSU pause over sizes × updated fractions; writes
# BENCH_pause.json.
bench-pause:
	$(GO) run ./cmd/jvolve-bench -exp pausecmp -pause-out BENCH_pause.json

# DSU pause-decomposition histograms (E1 webserver, E10 micro); writes
# BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/jvolve-bench -exp obs -obs-out BENCH_obs.json

# Long-horizon update-stream sweep (chain lengths × engine modes); writes
# BENCH_stream.json.
bench-stream:
	$(GO) run ./cmd/jvolve-bench -exp stream -stream-out BENCH_stream.json

# Interpreter dispatch tiers (base / fused / fused+ic over arith and
# virtual-call mixes); writes BENCH_dispatch.json.
bench-dispatch:
	$(GO) run ./cmd/jvolve-bench -exp dispatch -dispatch-out BENCH_dispatch.json

# Demo: record one fig5 updated run and export the DSU timeline as a
# Chrome trace — open trace.json in https://ui.perfetto.dev.
trace:
	$(GO) run ./cmd/jvolve-bench -exp fig5 -runs 1 -duration 200ms -trace trace.json

# Explore beyond the checked-in seed corpora (30s per target).
fuzz:
	$(GO) test -fuzz=FuzzVerifier -fuzztime 30s ./internal/verifier
	$(GO) test -fuzz=FuzzAsmRoundTrip -fuzztime 30s ./internal/asm
	$(GO) test -fuzz=FuzzUPTDiff -fuzztime 30s ./internal/upt
	$(GO) test -fuzz=FuzzStreamChain -fuzztime 30s ./internal/stream
	$(GO) test -fuzz=FuzzRelocDrain -fuzztime 30s ./internal/gc
