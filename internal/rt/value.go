// Package rt holds the VM's runtime metadata: the RVMClass analog (resolved
// classes with field offsets and static slots), the TIB analog (virtual
// method tables), the JTOC analog (the global statics table), the global
// method table, and the representation of JIT-compiled code. Every other
// runtime package — heap, gc, jit, vm, and the DSU engine — builds on rt.
package rt

import "fmt"

// Addr is a heap address: a word index into the heap, 0 meaning null.
type Addr uint32

// Null is the null reference.
const Null Addr = 0

// Value is one tagged machine word. The interpreter's locals and operand
// stacks carry tags so the garbage collector has exact stack maps without
// static map computation (Jikes RVM computes maps at safe points; dynamic
// tagging is our simulation-friendly equivalent with the same guarantee:
// every root is enumerable at every yield point).
type Value struct {
	Bits  uint64
	IsRef bool
}

// IntVal makes an integer word.
func IntVal(v int64) Value { return Value{Bits: uint64(v)} }

// BoolVal makes a boolean word (0 or 1).
func BoolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// RefVal makes a reference word.
func RefVal(a Addr) Value { return Value{Bits: uint64(a), IsRef: true} }

// NullVal is the null reference value.
var NullVal = RefVal(Null)

// Int extracts the integer.
func (v Value) Int() int64 { return int64(v.Bits) }

// Ref extracts the address.
func (v Value) Ref() Addr { return Addr(v.Bits) }

// IsNull reports a null reference.
func (v Value) IsNull() bool { return v.IsRef && v.Bits == 0 }

func (v Value) String() string {
	if v.IsRef {
		if v.Bits == 0 {
			return "null"
		}
		return fmt.Sprintf("@%d", v.Bits)
	}
	return fmt.Sprintf("%d", int64(v.Bits))
}
