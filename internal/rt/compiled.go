package rt

import (
	"fmt"

	"govolve/internal/bytecode"
)

// OptLevel is a compilation tier.
type OptLevel int

const (
	// Base is the baseline compiler: a 1:1 resolution of bytecode with
	// offsets and slots baked in. Because it is 1:1, the OSR pc-map from
	// a base frame to a recompiled base frame is the identity — which is
	// why, like JVOLVE, the DSU engine only OSRs base-compiled frames.
	Base OptLevel = iota
	// Opt adds inlining of small static/special calls and constant
	// folding, then superinstruction fusion and inline caches. Opt code
	// records what it inlined so the DSU engine can restrict inlining
	// callers of updated methods.
	Opt
	// Fused is the trace-promoted loop tier: base resolution plus in-place
	// superinstruction fusion and inline caches, but no inlining. Because
	// fusion rewrites pairs in place, fused code is index-for-index aligned
	// with base code, so its OSR pc-map is the identity at every
	// instruction start — fused frames deoptimize as cheaply as base
	// frames, which is why the DSU engine OSRs them unconditionally.
	Fused
)

func (l OptLevel) String() string {
	switch l {
	case Opt:
		return "opt"
	case Fused:
		return "fused"
	}
	return "base"
}

// ICEntry is one inline-cache entry: a receiver class id and the virtual
// target it resolved to at that site.
type ICEntry struct {
	ClassID int
	Target  *Method
}

// ICache is a per-call-site inline cache for virtual dispatch, embedded in
// the instruction stream of fused/opt code (base code carries none).
// Entries[0] is the monomorphic fast slot; a miss that finds room promotes
// the site to a small polymorphic stub (linear scan of Entries[:N]); a full
// cache leaves the site megamorphic and every dispatch falls back to the
// TIB lookup. The DSU install phase flushes every cache (N=0) so no entry
// can survive a class update — and because registry class ids are
// monotonic, an updated class's instances carry fresh ids that would miss
// stale entries anyway; the flush is the belt to that braces.
type ICache struct {
	Entries [4]ICEntry
	N       int
}

// Flush empties the cache and returns how many entries it dropped.
func (ic *ICache) Flush() int {
	n := ic.N
	ic.N = 0
	for i := range ic.Entries {
		ic.Entries[i] = ICEntry{}
	}
	return n
}

// Ins is one resolved (executable) instruction. Operand use by opcode:
//
//	GETFIELD_R/PUTFIELD_R    A = word offset, B = 1 if reference
//	GETSTATIC_R/PUTSTATIC_R  A = JTOC slot, B = 1 if reference
//	NEW_R/INSTOF_R/CHECKCAST_R  Cls
//	NEWARRAY_R               B = 1 if reference elements
//	LDC_R                    A = intern-table index
//	INVOKEVIRT_R             A = TIB slot, B = arg count incl receiver,
//	                         Ref = statically resolved target (diagnostics)
//	INVOKESTAT_R/INVOKESPEC_R/INVOKENAT_R  Ref = target, B = arg count
//	CONST_R                  A = constant
//	LOAD/STORE               A = local slot (unchanged from bytecode)
//	branches                 A = resolved-code target index
//	ENTERINL_R/LEAVEINL_R    Ref = inlined callee, A = saved-locals base
//
// Fused superinstructions (C is their third operand):
//
//	FCONSTARITH  A = constant, C = arith opcode
//	FLOADLOAD    A = first local slot, C = second local slot
//	FSTORELOAD   A = store slot, C = load slot
//	FSTOREGOTO   A = store slot, C = branch target
//	FLOADCMPBR   A = branch target, B = compare opcode, C = local slot
//	FCONSTCMPBR  A = constant, B = compare opcode, C = branch target
//	FGETGET      A = first word offset, C = second word offset, B = 1 if final ref
//	FLOADINVOKE  A = TIB slot, B = nargs incl receiver, C = local slot, Ref, IC
//	FLOADLOADARITH  A = first slot, C = second slot, B = arith opcode (3 slots)
//	FCONSTARITH2    A = first constant, C = second constant, B = lo byte first
//	                arith opcode, hi byte second (4 slots)
type Ins struct {
	Op      bytecode.Op
	A       int64
	B       int32
	C       int32      // third operand of fused superinstructions
	IC      *ICache    // inline cache; non-nil only on virtual sites in fused/opt code
	Cls     *Class
	Ref     *Method
	Str     string // TRAP message
	RetVoid bool

	// Need is the minimum operand stack depth this instruction requires,
	// precomputed at JIT resolve time (see StackNeed) so the interpreter's
	// underflow guard is a single compare instead of a per-instruction
	// opcode switch. The zero value (0) is correct for every opcode that
	// consumes nothing.
	Need int32
}

func (i Ins) String() string {
	switch {
	case i.Ref != nil:
		return fmt.Sprintf("%s %s (A=%d B=%d)", i.Op, i.Ref.FullName(), i.A, i.B)
	case i.Cls != nil:
		return fmt.Sprintf("%s %s", i.Op, i.Cls.Name)
	default:
		return fmt.Sprintf("%s A=%d B=%d", i.Op, i.A, i.B)
	}
}

// CompiledMethod is the executable form of a method — the analog of a
// Jikes RVM compiled-method body with hard-coded offsets.
type CompiledMethod struct {
	Method *Method
	Level  OptLevel
	Code   []Ins

	// MaxLocals covers the method's own locals plus, for opt code, the
	// locals of inlined callees appended after them.
	MaxLocals int

	// LayoutDeps are the classes whose field offsets, JTOC slots, or TIB
	// slots are baked into Code. If any of them is updated, this code is
	// stale — the method becomes one of the paper's category-(2)
	// "indirect" methods.
	LayoutDeps map[*Class]bool

	// Inlined lists methods whose bodies were inlined (opt level only).
	// If any of them changes, this code must be restricted and
	// invalidated even though this method's own bytecode is unchanged.
	Inlined []*Method

	// PCMap maps opt-code indexes back to the original bytecode index, or
	// -1 inside inlined regions (opt level only; base code is 1:1 and
	// needs no map). It exists for OSR of opt-compiled category-(2)
	// frames: a frame parked at a mappable pc can be rewritten to freshly
	// compiled base code of the new class version. Frames only rest at
	// yield points and call boundaries, where the operand stack contents
	// agree with base execution, so the mapping is sound there.
	PCMap []int

	// ICSites lists every inline cache embedded in Code (fused/opt level
	// only), so the DSU install phase can flush them all without scanning
	// instruction streams.
	ICSites []*ICache

	// Invalid marks code invalidated by the DSU engine; the interpreter
	// never runs invalid code (invocation recompiles first).
	Invalid bool
}

// FlushICs empties every inline cache in the method and returns the total
// number of entries dropped.
func (cm *CompiledMethod) FlushICs() int {
	n := 0
	for _, ic := range cm.ICSites {
		n += ic.Flush()
	}
	return n
}

// StackNeed returns the minimum operand stack depth an instruction needs.
// The JIT calls it once per instruction at resolve time and stores the
// result in Ins.Need; verified code can never underflow, but compiled code
// from a buggy pipeline must still fail safely, so the interpreter keeps a
// cheap precomputed guard on every dispatch.
func StackNeed(ins Ins) int32 {
	switch ins.Op {
	case bytecode.POP, bytecode.DUP, bytecode.STORE, bytecode.NEG,
		bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT, bytecode.IFLE,
		bytecode.IFGT, bytecode.IFGE, bytecode.IFNULL, bytecode.IFNONNULL,
		bytecode.ARRAYLEN, bytecode.GETFIELD_R, bytecode.NEWARRAY_R,
		bytecode.INSTOF_R, bytecode.CHECKCAST_R, bytecode.PUTSTATIC_R:
		return 1
	case bytecode.DUP_X1, bytecode.SWAP,
		bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.DIV, bytecode.REM,
		bytecode.AND, bytecode.OR, bytecode.XOR, bytecode.SHL, bytecode.SHR,
		bytecode.IF_ICMPEQ, bytecode.IF_ICMPNE, bytecode.IF_ICMPLT,
		bytecode.IF_ICMPLE, bytecode.IF_ICMPGT, bytecode.IF_ICMPGE,
		bytecode.IF_ACMPEQ, bytecode.IF_ACMPNE,
		bytecode.AGET, bytecode.PUTFIELD_R:
		return 2
	case bytecode.ASET:
		return 3
	case bytecode.RETURN:
		if ins.RetVoid {
			return 0
		}
		return 1
	case bytecode.INVOKEVIRT_R, bytecode.INVOKESTAT_R, bytecode.INVOKESPEC_R,
		bytecode.INVOKENAT_R, bytecode.ENTERINL_R:
		return ins.B
	case bytecode.FCONSTARITH, bytecode.FSTORELOAD, bytecode.FSTOREGOTO,
		bytecode.FCONSTCMPBR, bytecode.FGETGET, bytecode.FCONSTARITH2:
		// FCONSTARITH2 also needs just the stack top: each of its chained
		// const+arith pairs rewrites it in place. FLOADLOADARITH needs 0
		// (both arith operands come from locals) — the default covers it.
		return 1
	case bytecode.FLOADCMPBR:
		// One-operand conditions compare the fused load itself; two-operand
		// forms additionally pop one pre-existing stack value.
		if op := bytecode.Op(ins.B); op >= bytecode.IF_ICMPEQ && op <= bytecode.IF_ACMPNE {
			return 1
		}
		return 0
	case bytecode.FLOADINVOKE:
		// The fused load supplies one of the B arguments.
		return ins.B - 1
	default:
		return 0
	}
}

// ResolveStackNeeds fills in Ins.Need for a whole code array. The JIT runs
// it as the final pass of every compile, after inlining and folding, so the
// needs reflect the executable form of the code.
func ResolveStackNeeds(code []Ins) {
	for i := range code {
		code[i].Need = StackNeed(code[i])
	}
}

// DependsOn reports whether the compiled code bakes in the given class's
// layout or dispatch table.
func (cm *CompiledMethod) DependsOn(c *Class) bool { return cm.LayoutDeps[c] }

// InlinedAny reports whether any of the given methods is inlined here.
func (cm *CompiledMethod) InlinedAny(set map[*Method]bool) bool {
	for _, m := range cm.Inlined {
		if set[m] {
			return true
		}
	}
	return false
}
