package rt

import (
	"fmt"
	"sort"

	"govolve/internal/classfile"
)

// Registry is the VM's class registry plus the JTOC (global statics table),
// the global method table, and the string intern table. It is the single
// source of truth the JIT resolves against and the DSU engine mutates when
// installing an update.
type Registry struct {
	classes map[string]*Class
	byID    []*Class
	methods []*Method

	// JTOC is the statics table. Reference slots are GC roots.
	JTOC []Value

	// Interns maps string literals to intern-table indexes; InternRoots
	// holds the corresponding String objects (created lazily by the VM on
	// first LDC execution) and is a GC root set.
	Interns     map[string]int
	InternLits  []string
	InternRoots []Value
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		classes: make(map[string]*Class),
		byID:    []*Class{nil}, // class ID 0 is reserved (arrays, null)
		Interns: make(map[string]int),
	}
}

// LookupClass returns the loaded class by name, or nil.
func (r *Registry) LookupClass(name string) *Class { return r.classes[name] }

// LookupDef implements verifier.Env-style lookup over loaded definitions.
func (r *Registry) LookupDef(name string) *classfile.Class {
	if c := r.classes[name]; c != nil {
		return c.Def
	}
	return nil
}

// ClassByID returns the class with the given runtime ID, or nil.
func (r *Registry) ClassByID(id int) *Class {
	if id <= 0 || id >= len(r.byID) {
		return nil
	}
	return r.byID[id]
}

// MethodByID returns the method with the given global ID.
func (r *Registry) MethodByID(id int) *Method { return r.methods[id] }

// Methods returns every method ever loaded, in global-ID order. The DSU
// engine walks it to invalidate compiled code whose layout dependencies
// include updated classes.
func (r *Registry) Methods() []*Method { return r.methods }

// Classes returns all loaded classes sorted by name (renamed old versions
// included), for deterministic iteration.
func (r *Registry) Classes() []*Class {
	names := make([]string, 0, len(r.classes))
	for n := range r.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Class, len(names))
	for i, n := range names {
		out[i] = r.classes[n]
	}
	return out
}

// Load resolves and registers a class definition. The superclass must
// already be loaded. Load performs linking: field offset assignment, JTOC
// slot allocation, and TIB construction.
func (r *Registry) Load(def *classfile.Class) (*Class, error) {
	if _, dup := r.classes[def.Name]; dup {
		return nil, fmt.Errorf("rt: class %s already loaded", def.Name)
	}
	var super *Class
	if def.Super != "" {
		super = r.classes[def.Super]
		if super == nil {
			return nil, fmt.Errorf("rt: class %s: superclass %s not loaded", def.Name, def.Super)
		}
	}
	c := r.link(def, super)
	r.classes[def.Name] = c
	if super != nil {
		super.Subclasses = append(super.Subclasses, c)
	}
	return c, nil
}

// LoadProgram loads every class of a program in superclass-first order.
func (r *Registry) LoadProgram(p *classfile.Program) ([]*Class, error) {
	order, err := SuperFirst(p)
	if err != nil {
		return nil, err
	}
	out := make([]*Class, 0, len(order))
	for _, def := range order {
		c, lerr := r.Load(def)
		if lerr != nil {
			return nil, lerr
		}
		out = append(out, c)
	}
	return out, nil
}

// SuperFirst orders a program's classes so every superclass precedes its
// subclasses; classes whose superclass is outside the program are assumed
// already loaded (e.g. bootstrap classes).
func SuperFirst(p *classfile.Program) ([]*classfile.Class, error) {
	var order []*classfile.Class
	state := make(map[string]int) // 0 unseen, 1 visiting, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		def, ok := p.Classes[name]
		if !ok {
			return nil // outside the program
		}
		switch state[name] {
		case 1:
			return fmt.Errorf("rt: superclass cycle through %s", name)
		case 2:
			return nil
		}
		state[name] = 1
		if def.Super != "" {
			if err := visit(def.Super); err != nil {
				return err
			}
		}
		state[name] = 2
		order = append(order, def)
		return nil
	}
	for _, name := range p.Names() {
		if err := visit(name); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// link computes the runtime representation of a class: instance layout,
// static slots, TIB, and method identities.
func (r *Registry) link(def *classfile.Class, super *Class) *Class {
	c := &Class{
		ID:           len(r.byID),
		Name:         def.Name,
		Super:        super,
		Def:          def,
		fieldByName:  make(map[string]*FieldSlot),
		staticByName: make(map[string]*StaticSlot),
		vslotByID:    make(map[string]int),
		methods:      make(map[string]*Method),
	}
	r.byID = append(r.byID, c)

	// Instance layout: inherited fields keep their offsets; own fields
	// are appended. This is why adding a field to a superclass shifts
	// every subclass's layout — the transitive effect UPT must propagate.
	if super != nil {
		c.Fields = append(c.Fields, super.Fields...)
	}
	for _, f := range def.InstanceFields() {
		c.Fields = append(c.Fields, FieldSlot{
			Name: f.Name, Desc: f.Desc,
			Offset:     HeaderWords + len(c.Fields),
			DeclaredIn: c,
		})
	}
	c.Size = HeaderWords + len(c.Fields)
	c.RefMap = make([]bool, len(c.Fields))
	for i := range c.Fields {
		c.fieldByName[c.Fields[i].Name] = &c.Fields[i]
		c.RefMap[i] = c.Fields[i].Desc.IsRef()
	}

	// Static slots: fresh JTOC entries, zero-initialized with ref tags.
	for _, f := range def.StaticFields() {
		slot := len(r.JTOC)
		r.JTOC = append(r.JTOC, Value{IsRef: f.Desc.IsRef()})
		c.Statics = append(c.Statics, StaticSlot{
			Name: f.Name, Desc: f.Desc, Slot: slot, DeclaredIn: c,
		})
	}
	for i := range c.Statics {
		c.staticByName[c.Statics[i].Name] = &c.Statics[i]
	}

	// TIB: start from the superclass's table; overriding methods replace
	// slots, new virtual methods extend it.
	if super != nil {
		c.TIB = append(c.TIB, super.TIB...)
		for id, slot := range super.vslotByID {
			c.vslotByID[id] = slot
		}
	}
	for _, dm := range def.Methods {
		m := &Method{Class: c, Def: dm, GlobalID: len(r.methods), TIBSlot: -1}
		r.methods = append(r.methods, m)
		c.methods[dm.ID()] = m
		if virtualDispatch(dm) {
			if slot, overrides := c.vslotByID[dm.ID()]; overrides {
				m.TIBSlot = slot
				c.TIB[slot] = m
			} else {
				m.TIBSlot = len(c.TIB)
				c.vslotByID[dm.ID()] = m.TIBSlot
				c.TIB = append(c.TIB, m)
			}
		}
	}
	return c
}

// InternIndex returns the intern-table index for a string literal,
// allocating one on first use. The VM materializes the String object
// lazily when LDC_R first executes.
func (r *Registry) InternIndex(lit string) int {
	if idx, ok := r.Interns[lit]; ok {
		return idx
	}
	idx := len(r.InternLits)
	r.Interns[lit] = idx
	r.InternLits = append(r.InternLits, lit)
	r.InternRoots = append(r.InternRoots, NullVal)
	return idx
}

// --- DSU operations -------------------------------------------------------

// RenameClass re-keys a loaded class under a new name, marking it Renamed.
// This implements the paper's old-version renaming (User → v131_User): the
// renamed class keeps its instance layout (the collector still needs it to
// copy old objects) but is stripped of methods — transformer code may read
// its fields and may not call methods on it. The caller supplies the
// fields-only definition (UPT's flattened old-version class) that types
// transformer code.
func (r *Registry) RenameClass(c *Class, newName string, flatDef *classfile.Class) error {
	if _, clash := r.classes[newName]; clash {
		return fmt.Errorf("rt: rename %s: name %s already in use", c.Name, newName)
	}
	if r.classes[c.Name] != c {
		return fmt.Errorf("rt: rename %s: class not registered under that name", c.Name)
	}
	if flatDef == nil {
		flatDef = c.Def.Clone()
		flatDef.Methods = nil
	}
	flatDef = flatDef.Clone()
	flatDef.Name = newName
	delete(r.classes, c.Name)
	c.Def = flatDef
	c.Name = newName
	c.Renamed = true
	c.methods = make(map[string]*Method)
	r.classes[newName] = c
	return nil
}

// Unregister removes a class from the name table (used to delete the
// transformer class and renamed old versions after an update completes, and
// to honor deleted classes in an update). Instances, if any remain, keep
// working through their TIB; they simply can no longer be named.
func (r *Registry) Unregister(c *Class) {
	if r.classes[c.Name] == c {
		delete(r.classes, c.Name)
	}
}

// DetachSubclass removes old from its superclass's subclass list (the
// replacement class takes its place when installed).
func (r *Registry) DetachSubclass(old *Class) {
	if old.Super == nil {
		return
	}
	subs := old.Super.Subclasses
	for i, s := range subs {
		if s == old {
			old.Super.Subclasses = append(subs[:i], subs[i+1:]...)
			return
		}
	}
}
