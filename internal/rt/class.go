package rt

import (
	"fmt"

	"govolve/internal/classfile"
)

// HeaderWords is the object header size: word 0 holds the class ID plus
// flags (and the forwarding pointer during GC), word 1 the array length.
const HeaderWords = 2

// FieldSlot is one instance field with its resolved word offset (measured
// from the start of the object, header included). Offsets are what the JIT
// bakes into compiled code, so they are the reason layout changes invalidate
// code.
type FieldSlot struct {
	Name       string
	Desc       classfile.Desc
	Offset     int
	DeclaredIn *Class
}

// StaticSlot is one static field with its JTOC slot.
type StaticSlot struct {
	Name       string
	Desc       classfile.Desc
	Slot       int
	DeclaredIn *Class
}

// Method is a resolved method: the runtime identity of one declared method.
type Method struct {
	Class *Class
	Def   *classfile.Method
	// GlobalID indexes the registry's method table; invokestatic/special
	// compile to it.
	GlobalID int
	// TIBSlot is the virtual dispatch slot, or -1 for statics, privates,
	// and constructors (which dispatch directly).
	TIBSlot int
	// Compiled is the current compiled code, nil until first invocation,
	// and reset to nil when the DSU engine invalidates the method.
	Compiled *CompiledMethod
	// Invocations drives the adaptive system: base-compiled methods that
	// cross the opt threshold are recompiled at the opt level.
	Invocations int
	// Pinned marks bootstrap methods the adaptive system leaves alone.
	Pinned bool
	// HotSlices counts consecutive scheduling slices this method's
	// base-compiled code spent pinned on top of a thread's stack — the
	// trace-promotion signal: a method that never returns (a hot loop)
	// accumulates slices instead of invocations, and at the VM's trace
	// threshold its frame is promoted in place to the fused tier.
	HotSlices int
}

// ID returns the method's name+signature identity.
func (m *Method) ID() string { return m.Def.ID() }

// FullName returns "Class.name(sig)ret" for diagnostics.
func (m *Method) FullName() string {
	return m.Class.Name + "." + m.Def.Name + string(m.Def.Sig)
}

// IsVirtual reports whether the method dispatches through the TIB.
func (m *Method) IsVirtual() bool { return m.TIBSlot >= 0 }

// Class is the resolved runtime representation of a loaded class — the
// analog of Jikes RVM's RVMClass meta-object. It owns the instance layout,
// the static slots, and the TIB.
type Class struct {
	ID    int
	Name  string
	Super *Class
	Def   *classfile.Class

	// Fields lists every instance field, inherited first, with assigned
	// offsets. Size is the total instance size in words (header included).
	Fields []FieldSlot
	Size   int
	// RefMap[i] reports whether word HeaderWords+i holds a reference; the
	// GC traces objects with it.
	RefMap []bool

	// Statics are this class's declared static fields with JTOC slots.
	Statics []StaticSlot

	// TIB is the virtual method table. Entry i is the implementation
	// dispatched for TIB slot i. Jikes RVM's TIB maps slots to compiled
	// code; ours maps to Methods, whose Compiled field plays that role.
	TIB []*Method

	fieldByName  map[string]*FieldSlot
	staticByName map[string]*StaticSlot
	vslotByID    map[string]int
	methods      map[string]*Method // declared methods by name+sig

	// Subclasses tracks direct subclasses, so UPT-computed transitive
	// effects and instanceof checks are cheap.
	Subclasses []*Class

	// DSU state.
	//
	// UpdatedTo points at the replacement class while an update is being
	// applied; the collector transforms instances whose class has it set.
	UpdatedTo *Class
	// Renamed marks an old version that was renamed (User → v131_User)
	// and stripped of methods; it exists only to type transformer code.
	Renamed bool
}

// Field resolves an instance field by name, searching this class's resolved
// layout (which already includes inherited fields).
func (c *Class) Field(name string) *FieldSlot {
	return c.fieldByName[name]
}

// StaticField resolves a static field by name, searching up the hierarchy.
func (c *Class) StaticField(name string) *StaticSlot {
	for k := c; k != nil; k = k.Super {
		if s, ok := k.staticByName[name]; ok {
			return s
		}
	}
	return nil
}

// Method resolves a method by name+sig, searching up the hierarchy.
func (c *Class) Method(name string, sig classfile.Sig) *Method {
	id := name + string(sig)
	for k := c; k != nil; k = k.Super {
		if m, ok := k.methods[id]; ok {
			return m
		}
	}
	return nil
}

// DeclaredMethods returns the class's own methods in declaration order.
func (c *Class) DeclaredMethods() []*Method {
	out := make([]*Method, 0, len(c.Def.Methods))
	for _, dm := range c.Def.Methods {
		out = append(out, c.methods[dm.ID()])
	}
	return out
}

// VSlot returns the TIB slot for a method identity, or -1.
func (c *Class) VSlot(name string, sig classfile.Sig) int {
	if s, ok := c.vslotByID[name+string(sig)]; ok {
		return s
	}
	return -1
}

// IsSubclassOf reports whether c is k or a descendant of k.
func (c *Class) IsSubclassOf(k *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == k {
			return true
		}
	}
	return false
}

func (c *Class) String() string {
	return fmt.Sprintf("class %s (id=%d, size=%d words)", c.Name, c.ID, c.Size)
}

// virtualDispatch reports whether a declared method occupies a TIB slot.
// Constructors and private methods dispatch directly via invokespecial.
func virtualDispatch(m *classfile.Method) bool {
	return !m.Static && !m.IsInit() && m.Access != classfile.Private
}
