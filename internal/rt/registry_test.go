package rt

import (
	"testing"

	"govolve/internal/classfile"
)

func load(t *testing.T, reg *Registry, src *classfile.Class) *Class {
	t.Helper()
	c, err := reg.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildHierarchy(t *testing.T) (*Registry, *Class, *Class, *Class) {
	t.Helper()
	reg := NewRegistry()
	obj := load(t, reg, classfile.NewClass("Object", "").
		Method("<init>", "()V").Ret().Done().MustBuild())
	animal := load(t, reg, classfile.NewClass("Animal", "Object").
		Field("legs", "I").
		StaticField("count", "I").
		Method("speak", "()I").Const(0).Ret().Done().
		Method("walk", "()I").Const(1).Ret().Done().
		MustBuild())
	dog := load(t, reg, classfile.NewClass("Dog", "Animal").
		Field("tricks", "I").
		Method("speak", "()I").Const(2).Ret().Done(). // override
		Method("fetch", "()I").Const(3).Ret().Done(). // new virtual
		MustBuild())
	return reg, obj, animal, dog
}

func TestFieldLayoutInheritance(t *testing.T) {
	_, _, animal, dog := buildHierarchy(t)
	if animal.Size != HeaderWords+1 {
		t.Fatalf("animal size = %d", animal.Size)
	}
	if dog.Size != HeaderWords+2 {
		t.Fatalf("dog size = %d", dog.Size)
	}
	// Inherited field keeps its offset.
	if animal.Field("legs").Offset != dog.Field("legs").Offset {
		t.Fatal("inherited field offset shifted")
	}
	if dog.Field("tricks").Offset != HeaderWords+1 {
		t.Fatalf("tricks offset = %d", dog.Field("tricks").Offset)
	}
}

func TestTIBConstruction(t *testing.T) {
	_, obj, animal, dog := buildHierarchy(t)
	if len(obj.TIB) != 0 {
		// Object's <init> is a constructor: direct dispatch, no slot.
		t.Fatalf("Object TIB size = %d", len(obj.TIB))
	}
	speakSlot := animal.VSlot("speak", "()I")
	walkSlot := animal.VSlot("walk", "()I")
	if speakSlot < 0 || walkSlot < 0 || speakSlot == walkSlot {
		t.Fatalf("bad slots: speak=%d walk=%d", speakSlot, walkSlot)
	}
	// Dog overrides speak in the same slot and extends the table.
	if dog.VSlot("speak", "()I") != speakSlot {
		t.Fatal("override changed slot")
	}
	if dog.TIB[speakSlot].Class != dog {
		t.Fatal("dog TIB speak entry not overridden")
	}
	if dog.TIB[walkSlot].Class != animal {
		t.Fatal("dog TIB walk entry should be inherited")
	}
	if dog.VSlot("fetch", "()I") != len(animal.TIB) {
		t.Fatal("new virtual method should extend the table")
	}
}

func TestMethodResolutionWalksChain(t *testing.T) {
	_, _, animal, dog := buildHierarchy(t)
	if m := dog.Method("walk", "()I"); m == nil || m.Class != animal {
		t.Fatal("inherited method resolution broken")
	}
	if m := dog.Method("speak", "()I"); m == nil || m.Class != dog {
		t.Fatal("override resolution broken")
	}
	if dog.Method("nothing", "()V") != nil {
		t.Fatal("phantom method resolved")
	}
}

func TestStaticsGetJTOCSlots(t *testing.T) {
	reg, _, animal, dog := buildHierarchy(t)
	s := animal.StaticField("count")
	if s == nil {
		t.Fatal("static missing")
	}
	if s.Slot < 0 || s.Slot >= len(reg.JTOC) {
		t.Fatalf("slot %d outside JTOC", s.Slot)
	}
	// Statics are resolvable through subclasses.
	if dog.StaticField("count") != s {
		t.Fatal("static not inherited")
	}
}

func TestSubclassTracking(t *testing.T) {
	reg, _, animal, dog := buildHierarchy(t)
	if len(animal.Subclasses) != 1 || animal.Subclasses[0] != dog {
		t.Fatalf("subclasses = %v", animal.Subclasses)
	}
	reg.DetachSubclass(dog)
	if len(animal.Subclasses) != 0 {
		t.Fatal("detach failed")
	}
	if !dog.IsSubclassOf(animal) {
		t.Fatal("IsSubclassOf broken")
	}
}

func TestRenameClass(t *testing.T) {
	reg, _, animal, _ := buildHierarchy(t)
	flat := classfile.NewClass("ignored", "Object").Field("legs", "I").MustBuild()
	if err := reg.RenameClass(animal, "v1_Animal", flat); err != nil {
		t.Fatal(err)
	}
	if reg.LookupClass("Animal") != nil {
		t.Fatal("old name still resolves")
	}
	got := reg.LookupClass("v1_Animal")
	if got != animal || !got.Renamed {
		t.Fatal("rename lost class")
	}
	// Layout survives; methods are stripped from the definition.
	if got.Field("legs") == nil {
		t.Fatal("layout lost")
	}
	if len(got.Def.Methods) != 0 {
		t.Fatal("definition kept methods")
	}
	if got.Method("speak", "()I") != nil {
		t.Fatal("methods still resolvable on renamed class")
	}
	// The name is free for a new version.
	newAnimal := load(t, reg, classfile.NewClass("Animal", "Object").
		Field("legs", "I").Field("wings", "I").MustBuild())
	if newAnimal.ID == animal.ID {
		t.Fatal("new version got recycled ID")
	}
	// Rename onto a taken name fails.
	if err := reg.RenameClass(newAnimal, "v1_Animal", nil); err == nil {
		t.Fatal("rename clash accepted")
	}
}

func TestSuperFirstOrdering(t *testing.T) {
	p, err := classfile.NewProgram(
		classfile.NewClass("C", "B").MustBuild(),
		classfile.NewClass("B", "A").MustBuild(),
		classfile.NewClass("A", "External").MustBuild(),
	)
	if err != nil {
		t.Fatal(err)
	}
	order, err := SuperFirst(p)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, def := range order {
		pos[def.Name] = i
	}
	if !(pos["A"] < pos["B"] && pos["B"] < pos["C"]) {
		t.Fatalf("order wrong: %v", pos)
	}
	// Cycle detection.
	pc, _ := classfile.NewProgram(
		classfile.NewClass("X", "Y").MustBuild(),
		classfile.NewClass("Y", "X").MustBuild(),
	)
	if _, err := SuperFirst(pc); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestInternTable(t *testing.T) {
	reg := NewRegistry()
	a := reg.InternIndex("hello")
	b := reg.InternIndex("world")
	if a == b {
		t.Fatal("distinct literals share index")
	}
	if reg.InternIndex("hello") != a {
		t.Fatal("intern not stable")
	}
	if reg.InternLits[a] != "hello" || !reg.InternRoots[a].IsRef {
		t.Fatal("intern bookkeeping wrong")
	}
}

func TestDuplicateLoadRejected(t *testing.T) {
	reg, _, _, _ := buildHierarchy(t)
	if _, err := reg.Load(classfile.NewClass("Animal", "Object").MustBuild()); err == nil {
		t.Fatal("duplicate class load accepted")
	}
	if _, err := reg.Load(classfile.NewClass("Orphan", "Nowhere").MustBuild()); err == nil {
		t.Fatal("load with unknown super accepted")
	}
}
