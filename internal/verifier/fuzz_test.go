package verifier

import (
	"testing"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
)

// decodeFuzzMethod turns raw fuzz bytes into a symbolic method body for a
// static method T.f(I)I. Every byte pair picks an opcode and an operand;
// symbolic operands are drawn from a tiny fixed universe (class T, field
// T.x, static T.sx, callees T.s/T.v, Object.<init>) so that resolution
// failures don't mask stack and flow bugs.
func decodeFuzzMethod(data []byte) []bytecode.Ins {
	var code []bytecode.Ins
	for i := 0; i+1 < len(data); i += 2 {
		op := bytecode.Op(data[i])
		if !op.IsResolved() {
			op = bytecode.Op(data[i] % (uint8(bytecode.YIELD) + 1))
		}
		// Resolved and fused opcodes (0x80+) pass through raw: they are
		// JIT-internal and must never verify in class-file code — the
		// fuzz oracle below fails if the verifier accepts one.
		arg := int64(data[i+1])
		ins := bytecode.Ins{Op: op}
		switch op {
		case bytecode.CONST:
			ins.A = arg - 128
		case bytecode.LOAD, bytecode.STORE:
			ins.A = arg % 8
		case bytecode.LDC:
			ins.Str = "s"
		case bytecode.TRAP:
			ins.Str = "boom"
		case bytecode.NEW, bytecode.INSTANCEOF, bytecode.CHECKCAST:
			ins.Sym = "T"
		case bytecode.NEWARRAY:
			if arg%2 == 0 {
				ins.Desc = "I"
			} else {
				ins.Desc = "LT;"
			}
		case bytecode.GETFIELD, bytecode.PUTFIELD:
			ins.Sym, ins.Desc = "T.x", "I"
		case bytecode.GETSTATIC, bytecode.PUTSTATIC:
			ins.Sym, ins.Desc = "T.sx", "I"
		case bytecode.INVOKESTATIC:
			ins.Sym, ins.Desc = "T.s", "(I)I"
		case bytecode.INVOKEVIRTUAL:
			ins.Sym, ins.Desc = "T.v", "(I)I"
		case bytecode.INVOKESPECIAL:
			ins.Sym, ins.Desc = "Object.<init>", "()V"
		default:
			if op.IsBranch() {
				// Branch targets may be anywhere, including out of range —
				// the verifier must reject those, not panic.
				ins.A = arg % int64(len(data)+2)
			}
		}
		code = append(code, ins)
	}
	return code
}

// fuzzEnv builds the fixed program around the decoded method.
func fuzzEnv(code []bytecode.Ins) (*classfile.Program, error) {
	object := &classfile.Class{Name: "Object", Methods: []*classfile.Method{
		{Name: "<init>", Sig: "()V", Code: []bytecode.Ins{{Op: bytecode.RETURN}}, MaxLocals: 1},
	}}
	str := &classfile.Class{Name: "String", Super: "Object"}
	target := &classfile.Class{
		Name:  "T",
		Super: "Object",
		Fields: []classfile.Field{
			{Name: "x", Desc: "I"},
			{Name: "sx", Desc: "I", Static: true},
		},
		Methods: []*classfile.Method{
			{Name: "s", Sig: "(I)I", Static: true,
				Code: []bytecode.Ins{{Op: bytecode.CONST, A: 0}, {Op: bytecode.RETURN}}, MaxLocals: 1},
			{Name: "v", Sig: "(I)I",
				Code: []bytecode.Ins{{Op: bytecode.CONST, A: 0}, {Op: bytecode.RETURN}}, MaxLocals: 2},
			{Name: "f", Sig: "(I)I", Static: true, Code: code, MaxLocals: 8},
		},
	}
	return classfile.NewProgram(object, str, target)
}

// stackEffect gives (pops, pushes) for the ops decodeFuzzMethod can emit,
// under its fixed operand universe. RETURN is handled by the caller.
func stackEffect(ins bytecode.Ins) (pops, pushes int) {
	switch ins.Op {
	case bytecode.NOP, bytecode.YIELD, bytecode.TRAP:
		return 0, 0
	case bytecode.CONST, bytecode.NULL, bytecode.LDC, bytecode.LOAD:
		return 0, 1
	case bytecode.STORE, bytecode.POP:
		return 1, 0
	case bytecode.DUP:
		return 1, 2
	case bytecode.DUP_X1:
		return 2, 3
	case bytecode.SWAP:
		return 2, 2
	case bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.DIV, bytecode.REM,
		bytecode.AND, bytecode.OR, bytecode.XOR, bytecode.SHL, bytecode.SHR:
		return 2, 1
	case bytecode.NEG:
		return 1, 1
	case bytecode.NEW:
		return 0, 1
	case bytecode.GETFIELD:
		return 1, 1
	case bytecode.PUTFIELD:
		return 2, 0
	case bytecode.GETSTATIC:
		return 0, 1
	case bytecode.PUTSTATIC:
		return 1, 0
	case bytecode.INSTANCEOF, bytecode.CHECKCAST, bytecode.NEWARRAY, bytecode.ARRAYLEN:
		return 1, 1
	case bytecode.AGET:
		return 2, 1
	case bytecode.ASET:
		return 3, 0
	case bytecode.INVOKESTATIC:
		return 1, 1 // T.s(I)I
	case bytecode.INVOKEVIRTUAL:
		return 2, 1 // receiver + arg, T.v(I)I
	case bytecode.INVOKESPECIAL:
		return 1, 0 // Object.<init>()V
	}
	return 0, 0
}

// FuzzVerifier feeds adversarial bytecode to the verifier. Properties:
// the verifier never panics, and — for straight-line code, where depth is
// a simple linear fold — it never accepts a method that underflows the
// operand stack or falls off the end of the code.
func FuzzVerifier(f *testing.F) {
	f.Add([]byte{})
	// load 0; return — minimal valid body.
	f.Add([]byte{byte(bytecode.LOAD), 0, byte(bytecode.RETURN), 0})
	// add on an empty stack: classic underflow.
	f.Add([]byte{byte(bytecode.ADD), 0, byte(bytecode.RETURN), 0})
	// pop with nothing pushed.
	f.Add([]byte{byte(bytecode.POP), 0})
	// const; const; add; return — valid arithmetic.
	f.Add([]byte{byte(bytecode.CONST), 1, byte(bytecode.CONST), 2,
		byte(bytecode.ADD), 0, byte(bytecode.RETURN), 0})
	// branch out of range.
	f.Add([]byte{byte(bytecode.GOTO), 200})
	// getfield on an int (type confusion).
	f.Add([]byte{byte(bytecode.CONST), 7, byte(bytecode.GETFIELD), 0})
	// new T; dup; invokespecial; return path exercising ref types.
	f.Add([]byte{byte(bytecode.NEW), 0, byte(bytecode.DUP), 0,
		byte(bytecode.INVOKESPECIAL), 0, byte(bytecode.GETFIELD), 0,
		byte(bytecode.RETURN), 0})
	// JIT-internal opcodes smuggled into class-file code: every fused
	// superinstruction and resolved form must be rejected, never verified
	// and never panicked on.
	f.Add([]byte{byte(bytecode.FPAD), 0})
	f.Add([]byte{byte(bytecode.FCONSTARITH), 3, byte(bytecode.RETURN), 0})
	f.Add([]byte{byte(bytecode.CONST), 1, byte(bytecode.FCONSTCMPBR), 0})
	f.Add([]byte{byte(bytecode.FLOADINVOKE), 1, byte(bytecode.FGETGET), 2})
	f.Add([]byte{byte(bytecode.FLOADLOADARITH), 0, byte(bytecode.FCONSTARITH2), 9})
	f.Add([]byte{byte(bytecode.GETFIELD_R), 0, byte(bytecode.RETURN), 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		code := decodeFuzzMethod(data)
		prog, err := fuzzEnv(code)
		if err != nil {
			t.Fatalf("building fixed env: %v", err)
		}
		verr := VerifyProgram(prog) // must not panic
		if verr != nil {
			return
		}
		// Accepted. JIT-internal opcodes (resolved forms and fused
		// superinstructions) must never get this far.
		for pc, ins := range code {
			if ins.Op.IsResolved() {
				t.Fatalf("verifier accepted JIT-internal opcode %s at pc %d: %v", ins.Op, pc, code)
			}
		}
		// For straight-line code the stack depth at each pc is
		// exact; replay it and reject any accepted underflow.
		depth := 0
		for pc, ins := range code {
			if ins.Op.IsBranch() {
				return // oracle only covers linear code
			}
			if ins.Op == bytecode.RETURN {
				if depth < 1 {
					t.Fatalf("verifier accepted return with empty stack at pc %d: %v", pc, code)
				}
				return
			}
			if ins.Op == bytecode.TRAP {
				return // terminal
			}
			pops, pushes := stackEffect(ins)
			if depth < pops {
				t.Fatalf("verifier accepted stack underflow at pc %d (%s, depth %d): %v",
					pc, ins.Op, depth, code)
			}
			depth += pushes - pops
		}
		t.Fatalf("verifier accepted code that falls off the end: %v", code)
	})
}
