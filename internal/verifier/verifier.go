// Package verifier statically type-checks bytecode by abstract
// interpretation, the analog of Java bytecode verification that the JVOLVE
// paper relies on for update type safety ("JVOLVE relies on bytecode
// verification to statically type-check updated classes").
//
// A relaxed mode ignores access modifiers and permits writes to final
// fields. It exists for exactly one client: transformer classes. The paper
// compiles JvolveTransformers with a JastAdd extension that ignores private/
// protected and final, and modifies the VM to accept the result "in this
// special circumstance"; relaxed mode is that special circumstance.
package verifier

import (
	"fmt"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
)

// Env resolves class names during verification. The VM's registry and bare
// classfile.Programs both implement it.
type Env interface {
	// LookupClass returns the class definition, or nil if unknown.
	LookupClass(name string) *classfile.Class
}

// ProgramEnv adapts a classfile.Program to Env.
type ProgramEnv struct{ *classfile.Program }

// LookupClass implements Env.
func (p ProgramEnv) LookupClass(name string) *classfile.Class {
	return p.Classes[name]
}

// Mode selects strictness.
type Mode int

const (
	// Strict enforces access modifiers and final semantics.
	Strict Mode = iota
	// Relaxed ignores access modifiers and final writes; transformer
	// classes only.
	Relaxed
)

// Error is a verification failure at a specific instruction.
type Error struct {
	Class  string
	Method string
	PC     int
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("verifier: %s.%s pc=%d: %s", e.Class, e.Method, e.PC, e.Msg)
}

// vtype is a verification type: the single numeric word type, a reference
// type (its descriptor), the null type, or unset (unknown/invalid).
type vtype struct {
	kind vkind
	desc classfile.Desc // for refs
}

type vkind uint8

const (
	tUnset vkind = iota
	tInt
	tNull
	tRef
)

var (
	intT   = vtype{kind: tInt}
	nullT  = vtype{kind: tNull}
	unsetT = vtype{}
)

func refT(d classfile.Desc) vtype { return vtype{kind: tRef, desc: d} }

func (t vtype) isRefLike() bool { return t.kind == tRef || t.kind == tNull }

func (t vtype) String() string {
	switch t.kind {
	case tInt:
		return "int"
	case tNull:
		return "null"
	case tRef:
		return string(t.desc)
	default:
		return "unset"
	}
}

// typeForDesc maps a declared descriptor to a verification type.
func typeForDesc(d classfile.Desc) vtype {
	if d.IsRef() {
		return refT(d)
	}
	return intT
}

// Verifier checks methods of a class against an environment.
type Verifier struct {
	env  Env
	mode Mode
}

// New builds a Verifier.
func New(env Env, mode Mode) *Verifier {
	return &Verifier{env: env, mode: mode}
}

// VerifyProgram verifies every method of every class in the program against
// itself as environment.
func VerifyProgram(p *classfile.Program) error {
	v := New(ProgramEnv{p}, Strict)
	for _, c := range p.Sorted() {
		if err := v.VerifyClass(c); err != nil {
			return err
		}
	}
	return nil
}

// VerifyClass verifies every non-native method of the class.
func (v *Verifier) VerifyClass(c *classfile.Class) error {
	if c.Super != "" {
		if v.env.LookupClass(c.Super) == nil {
			return fmt.Errorf("verifier: class %s extends unknown class %s", c.Name, c.Super)
		}
		// Reject hierarchy cycles.
		seen := map[string]bool{c.Name: true}
		for s := c.Super; s != ""; {
			if seen[s] {
				return fmt.Errorf("verifier: class %s: superclass cycle through %s", c.Name, s)
			}
			seen[s] = true
			sc := v.env.LookupClass(s)
			if sc == nil {
				return fmt.Errorf("verifier: class %s: unknown superclass %s", c.Name, s)
			}
			s = sc.Super
		}
	}
	for _, m := range c.Methods {
		if m.Native {
			continue
		}
		if err := v.VerifyMethod(c, m); err != nil {
			return err
		}
	}
	return nil
}

// state is the abstract machine state at one program point.
type state struct {
	locals []vtype
	stack  []vtype
}

func (s *state) clone() *state {
	c := &state{
		locals: append([]vtype(nil), s.locals...),
		stack:  append([]vtype(nil), s.stack...),
	}
	return c
}

// VerifyMethod runs the dataflow analysis over one method body.
func (v *Verifier) VerifyMethod(c *classfile.Class, m *classfile.Method) error {
	fail := func(pc int, format string, args ...any) error {
		return &Error{Class: c.Name, Method: m.ID(), PC: pc, Msg: fmt.Sprintf(format, args...)}
	}
	if len(m.Code) == 0 {
		return fail(0, "empty method body")
	}
	args, ret, err := classfile.ParseSig(m.Sig)
	if err != nil {
		return fail(0, "bad signature: %v", err)
	}

	entry := &state{locals: make([]vtype, m.MaxLocals)}
	slot := 0
	if !m.Static {
		if slot >= m.MaxLocals {
			return fail(0, "MaxLocals %d too small for receiver", m.MaxLocals)
		}
		entry.locals[slot] = refT(classfile.RefOf(c.Name))
		slot++
	}
	for _, a := range args {
		if slot >= m.MaxLocals {
			return fail(0, "MaxLocals %d too small for %d args", m.MaxLocals, len(args))
		}
		entry.locals[slot] = typeForDesc(a)
		slot++
	}

	in := make([]*state, len(m.Code))
	in[0] = entry
	work := []int{0}
	steps := 0
	maxSteps := 64 * (len(m.Code) + 4) * (m.MaxLocals + 4)
	for len(work) > 0 {
		if steps++; steps > maxSteps {
			return fail(0, "dataflow did not converge")
		}
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[pc].clone()
		ins := m.Code[pc]

		push := func(t vtype) { st.stack = append(st.stack, t) }
		pop := func() (vtype, error) {
			if len(st.stack) == 0 {
				return unsetT, fail(pc, "%s: operand stack underflow", ins.Op)
			}
			t := st.stack[len(st.stack)-1]
			st.stack = st.stack[:len(st.stack)-1]
			return t, nil
		}
		popInt := func() error {
			t, err := pop()
			if err != nil {
				return err
			}
			if t.kind != tInt {
				return fail(pc, "%s: want int, have %s", ins.Op, t)
			}
			return nil
		}
		popRef := func() (vtype, error) {
			t, err := pop()
			if err != nil {
				return unsetT, err
			}
			if !t.isRefLike() {
				return unsetT, fail(pc, "%s: want reference, have %s", ins.Op, t)
			}
			return t, nil
		}

		var nexts []int
		fallthrough_ := true

		switch ins.Op {
		case bytecode.NOP, bytecode.YIELD:
		case bytecode.CONST:
			push(intT)
		case bytecode.NULL:
			push(nullT)
		case bytecode.LDC:
			push(refT(classfile.RefOf("String")))
		case bytecode.LOAD:
			idx := int(ins.A)
			if idx < 0 || idx >= m.MaxLocals {
				return fail(pc, "load %d out of range (MaxLocals %d)", idx, m.MaxLocals)
			}
			t := st.locals[idx]
			if t.kind == tUnset {
				return fail(pc, "load %d: local not definitely assigned", idx)
			}
			push(t)
		case bytecode.STORE:
			idx := int(ins.A)
			if idx < 0 || idx >= m.MaxLocals {
				return fail(pc, "store %d out of range (MaxLocals %d)", idx, m.MaxLocals)
			}
			t, err := pop()
			if err != nil {
				return err
			}
			st.locals[idx] = t
		case bytecode.POP:
			if _, err := pop(); err != nil {
				return err
			}
		case bytecode.DUP:
			t, err := pop()
			if err != nil {
				return err
			}
			push(t)
			push(t)
		case bytecode.DUP_X1:
			a, err := pop()
			if err != nil {
				return err
			}
			b, err := pop()
			if err != nil {
				return err
			}
			push(a)
			push(b)
			push(a)
		case bytecode.SWAP:
			a, err := pop()
			if err != nil {
				return err
			}
			b, err := pop()
			if err != nil {
				return err
			}
			push(a)
			push(b)
		case bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.DIV, bytecode.REM,
			bytecode.AND, bytecode.OR, bytecode.XOR, bytecode.SHL, bytecode.SHR:
			if err := popInt(); err != nil {
				return err
			}
			if err := popInt(); err != nil {
				return err
			}
			push(intT)
		case bytecode.NEG:
			if err := popInt(); err != nil {
				return err
			}
			push(intT)
		case bytecode.GOTO:
			nexts = []int{int(ins.A)}
			fallthrough_ = false
		case bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT, bytecode.IFLE,
			bytecode.IFGT, bytecode.IFGE:
			if err := popInt(); err != nil {
				return err
			}
			nexts = []int{int(ins.A)}
		case bytecode.IF_ICMPEQ, bytecode.IF_ICMPNE, bytecode.IF_ICMPLT,
			bytecode.IF_ICMPLE, bytecode.IF_ICMPGT, bytecode.IF_ICMPGE:
			if err := popInt(); err != nil {
				return err
			}
			if err := popInt(); err != nil {
				return err
			}
			nexts = []int{int(ins.A)}
		case bytecode.IF_ACMPEQ, bytecode.IF_ACMPNE:
			if _, err := popRef(); err != nil {
				return err
			}
			if _, err := popRef(); err != nil {
				return err
			}
			nexts = []int{int(ins.A)}
		case bytecode.IFNULL, bytecode.IFNONNULL:
			if _, err := popRef(); err != nil {
				return err
			}
			nexts = []int{int(ins.A)}
		case bytecode.NEW:
			if v.env.LookupClass(ins.Sym) == nil {
				return fail(pc, "new: unknown class %s", ins.Sym)
			}
			push(refT(classfile.RefOf(ins.Sym)))
		case bytecode.INSTANCEOF:
			if v.env.LookupClass(ins.Sym) == nil {
				return fail(pc, "instanceof: unknown class %s", ins.Sym)
			}
			if _, err := popRef(); err != nil {
				return err
			}
			push(intT)
		case bytecode.CHECKCAST:
			if v.env.LookupClass(ins.Sym) == nil {
				return fail(pc, "checkcast: unknown class %s", ins.Sym)
			}
			if _, err := popRef(); err != nil {
				return err
			}
			push(refT(classfile.RefOf(ins.Sym)))
		case bytecode.NEWARRAY:
			elem := classfile.Desc(ins.Desc)
			if !elem.Valid() {
				return fail(pc, "newarray: bad element descriptor %q", ins.Desc)
			}
			if err := popInt(); err != nil {
				return err
			}
			push(refT(classfile.ArrayOf(elem)))
		case bytecode.ARRAYLEN:
			t, err := popRef()
			if err != nil {
				return err
			}
			if t.kind == tRef && t.desc.Kind() != classfile.KArray {
				return fail(pc, "arraylen: want array, have %s", t)
			}
			push(intT)
		case bytecode.AGET:
			if err := popInt(); err != nil {
				return err
			}
			t, err := popRef()
			if err != nil {
				return err
			}
			if t.kind == tNull {
				// Will trap at runtime; element type unknowable, treat as
				// the bottom-most usable assumption.
				push(nullT)
				break
			}
			if t.desc.Kind() != classfile.KArray {
				return fail(pc, "aget: want array, have %s", t)
			}
			push(typeForDesc(t.desc.Elem()))
		case bytecode.ASET:
			val, err := pop()
			if err != nil {
				return err
			}
			if err := popInt(); err != nil {
				return err
			}
			t, err := popRef()
			if err != nil {
				return err
			}
			if t.kind == tNull {
				break
			}
			if t.desc.Kind() != classfile.KArray {
				return fail(pc, "aset: want array, have %s", t)
			}
			if err := v.checkAssignable(val, typeForDesc(t.desc.Elem())); err != nil {
				return fail(pc, "aset: %v", err)
			}
		case bytecode.GETFIELD, bytecode.PUTFIELD, bytecode.GETSTATIC, bytecode.PUTSTATIC:
			if err := v.checkFieldAccess(c, m, st, pc, ins, fail); err != nil {
				return err
			}
		case bytecode.INVOKEVIRTUAL, bytecode.INVOKESTATIC, bytecode.INVOKESPECIAL:
			if err := v.checkInvoke(c, st, pc, ins, fail); err != nil {
				return err
			}
		case bytecode.RETURN:
			if ret != "V" {
				t, err := pop()
				if err != nil {
					return err
				}
				if err := v.checkAssignable(t, typeForDesc(ret)); err != nil {
					return fail(pc, "return: %v", err)
				}
			}
			if len(st.stack) != 0 {
				return fail(pc, "return with %d values left on stack", len(st.stack))
			}
			fallthrough_ = false
		case bytecode.TRAP:
			fallthrough_ = false
		default:
			if ins.Op.IsFused() {
				// Fused superinstructions exist only in JIT-compiled
				// streams; class-file code carrying one is forged.
				return fail(pc, "fused superinstruction %s is JIT-internal and illegal in class files", ins.Op)
			}
			return fail(pc, "unexpected opcode %s (resolved form in class file?)", ins.Op)
		}

		if fallthrough_ {
			if pc+1 >= len(m.Code) {
				return fail(pc, "control falls off end of method")
			}
			nexts = append(nexts, pc+1)
		}
		for _, n := range nexts {
			if n < 0 || n >= len(m.Code) {
				return fail(pc, "branch target %d out of range [0,%d)", n, len(m.Code))
			}
			merged, changed, err := v.merge(in[n], st)
			if err != nil {
				return fail(pc, "merge into %d: %v", n, err)
			}
			if changed {
				in[n] = merged
				work = append(work, n)
			}
		}
	}
	return nil
}

// merge joins two states pointwise; nil old means the point was unreached.
func (v *Verifier) merge(old *state, new_ *state) (*state, bool, error) {
	if old == nil {
		return new_.clone(), true, nil
	}
	if len(old.stack) != len(new_.stack) {
		return nil, false, fmt.Errorf("operand stack depth mismatch (%d vs %d)",
			len(old.stack), len(new_.stack))
	}
	out := old.clone()
	changed := false
	for i := range out.locals {
		t := v.lub(out.locals[i], new_.locals[i])
		if t != out.locals[i] {
			out.locals[i] = t
			changed = true
		}
	}
	for i := range out.stack {
		t := v.lub(out.stack[i], new_.stack[i])
		if t.kind == tUnset {
			return nil, false, fmt.Errorf("incompatible stack slot %d (%s vs %s)",
				i, old.stack[i], new_.stack[i])
		}
		if t != out.stack[i] {
			out.stack[i] = t
			changed = true
		}
	}
	return out, changed, nil
}

// lub computes the least upper bound of two verification types. Unmergeable
// locals degrade to unset (use is what fails); unmergeable stack slots are
// an error at the caller.
func (v *Verifier) lub(a, b vtype) vtype {
	switch {
	case a == b:
		return a
	case a.kind == tUnset || b.kind == tUnset:
		return unsetT
	case a.kind == tInt || b.kind == tInt:
		return unsetT // int vs ref never merges
	case a.kind == tNull:
		return b
	case b.kind == tNull:
		return a
	}
	// Both refs: walk a's superclass chain looking for a common ancestor.
	if a.desc.Kind() == classfile.KArray || b.desc.Kind() == classfile.KArray {
		if a.desc == b.desc {
			return a
		}
		return refT(classfile.RefOf("Object"))
	}
	for an := a.desc.ClassName(); an != ""; {
		if v.isSubclass(b.desc.ClassName(), an) {
			return refT(classfile.RefOf(an))
		}
		cls := v.env.LookupClass(an)
		if cls == nil {
			break
		}
		an = cls.Super
	}
	return refT(classfile.RefOf("Object"))
}

// isSubclass reports whether class sub is name or a descendant of name.
func (v *Verifier) isSubclass(sub, name string) bool {
	for sub != "" {
		if sub == name {
			return true
		}
		cls := v.env.LookupClass(sub)
		if cls == nil {
			return false
		}
		sub = cls.Super
	}
	return false
}

// checkAssignable verifies that a value of type have may flow into a slot
// declared as want.
func (v *Verifier) checkAssignable(have, want vtype) error {
	switch want.kind {
	case tInt:
		if have.kind != tInt {
			return fmt.Errorf("want int, have %s", have)
		}
		return nil
	case tRef:
		if have.kind == tNull {
			return nil
		}
		if have.kind != tRef {
			return fmt.Errorf("want %s, have %s", want, have)
		}
		if want.desc.Kind() == classfile.KArray {
			if have.desc == want.desc {
				return nil
			}
			return fmt.Errorf("want %s, have %s", want, have)
		}
		if have.desc.Kind() == classfile.KArray {
			if want.desc.ClassName() == "Object" {
				return nil
			}
			return fmt.Errorf("want %s, have %s", want, have)
		}
		if v.isSubclass(have.desc.ClassName(), want.desc.ClassName()) {
			return nil
		}
		return fmt.Errorf("%s is not a subclass of %s", have, want)
	default:
		return fmt.Errorf("bad target type %s", want)
	}
}

// resolveField searches the class chain for the named field, matching how
// the JIT resolves field references.
func (v *Verifier) resolveField(className, fieldName string) (*classfile.Class, *classfile.Field) {
	for className != "" {
		cls := v.env.LookupClass(className)
		if cls == nil {
			return nil, nil
		}
		if f := cls.Field(fieldName); f != nil {
			return cls, f
		}
		className = cls.Super
	}
	return nil, nil
}

// resolveMethod searches the class chain for the named method.
func (v *Verifier) resolveMethod(className, name string, sig classfile.Sig) (*classfile.Class, *classfile.Method) {
	for className != "" {
		cls := v.env.LookupClass(className)
		if cls == nil {
			return nil, nil
		}
		if m := cls.Method(name, sig); m != nil {
			return cls, m
		}
		className = cls.Super
	}
	return nil, nil
}

type failf func(pc int, format string, args ...any) error

func (v *Verifier) checkFieldAccess(c *classfile.Class, m *classfile.Method, st *state, pc int, ins bytecode.Ins, fail failf) error {
	owner, f := v.resolveField(ins.SymClass(), ins.SymMember())
	if f == nil {
		return fail(pc, "%s: unknown field %s", ins.Op, ins.Sym)
	}
	if classfile.Desc(ins.Desc) != f.Desc {
		return fail(pc, "%s: field %s has type %s, instruction says %s",
			ins.Op, ins.Sym, f.Desc, ins.Desc)
	}
	if v.mode == Strict && f.Access == classfile.Private && owner.Name != c.Name {
		return fail(pc, "%s: field %s is private to %s", ins.Op, ins.Sym, owner.Name)
	}
	isStatic := ins.Op == bytecode.GETSTATIC || ins.Op == bytecode.PUTSTATIC
	if isStatic != f.Static {
		return fail(pc, "%s: static mismatch on field %s", ins.Op, ins.Sym)
	}
	isPut := ins.Op == bytecode.PUTFIELD || ins.Op == bytecode.PUTSTATIC
	if v.mode == Strict && isPut && f.Final {
		okCtx := owner.Name == c.Name &&
			((f.Static && m.IsClinit()) || (!f.Static && m.IsInit()))
		if !okCtx {
			return fail(pc, "%s: write to final field %s outside its initializer", ins.Op, ins.Sym)
		}
	}

	pop := func() (vtype, error) {
		if len(st.stack) == 0 {
			return unsetT, fail(pc, "%s: operand stack underflow", ins.Op)
		}
		t := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		return t, nil
	}
	if isPut {
		val, err := pop()
		if err != nil {
			return err
		}
		if err := v.checkAssignable(val, typeForDesc(f.Desc)); err != nil {
			return fail(pc, "%s %s: %v", ins.Op, ins.Sym, err)
		}
	}
	if !isStatic {
		recv, err := pop()
		if err != nil {
			return err
		}
		if err := v.checkAssignable(recv, refT(classfile.RefOf(owner.Name))); err != nil {
			return fail(pc, "%s %s: receiver: %v", ins.Op, ins.Sym, err)
		}
	}
	if !isPut {
		st.stack = append(st.stack, typeForDesc(f.Desc))
	}
	return nil
}

func (v *Verifier) checkInvoke(c *classfile.Class, st *state, pc int, ins bytecode.Ins, fail failf) error {
	sig := classfile.Sig(ins.Desc)
	owner, callee := v.resolveMethod(ins.SymClass(), ins.SymMember(), sig)
	if callee == nil {
		return fail(pc, "%s: unknown method %s%s", ins.Op, ins.Sym, ins.Desc)
	}
	if v.mode == Strict && callee.Access == classfile.Private && owner.Name != c.Name {
		return fail(pc, "%s: method %s is private to %s", ins.Op, ins.Sym, owner.Name)
	}
	isStatic := ins.Op == bytecode.INVOKESTATIC
	if isStatic != callee.Static {
		return fail(pc, "%s: static mismatch on %s%s", ins.Op, ins.Sym, ins.Desc)
	}
	args, ret, err := classfile.ParseSig(sig)
	if err != nil {
		return fail(pc, "%s: bad signature %q", ins.Op, ins.Desc)
	}
	pop := func() (vtype, error) {
		if len(st.stack) == 0 {
			return unsetT, fail(pc, "%s: operand stack underflow", ins.Op)
		}
		t := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		return t, nil
	}
	// Arguments are pushed left to right, so pop right to left.
	for i := len(args) - 1; i >= 0; i-- {
		val, err := pop()
		if err != nil {
			return err
		}
		if err := v.checkAssignable(val, typeForDesc(args[i])); err != nil {
			return fail(pc, "%s %s: arg %d: %v", ins.Op, ins.Sym, i, err)
		}
	}
	if !isStatic {
		recv, err := pop()
		if err != nil {
			return err
		}
		if err := v.checkAssignable(recv, refT(classfile.RefOf(owner.Name))); err != nil {
			return fail(pc, "%s %s: receiver: %v", ins.Op, ins.Sym, err)
		}
	}
	if ret != "V" {
		st.stack = append(st.stack, typeForDesc(ret))
	}
	return nil
}
