package verifier

import (
	"strings"
	"testing"
	"testing/quick"

	"govolve/internal/asm"
	"govolve/internal/bytecode"
	"govolve/internal/classfile"
)

// base is a small hierarchy the test programs build on.
const base = `
class Object {
  method <init>()V {
    return
  }
}
class String {
  private field chars [C
  native method concat(LString;)LString;
}
class Animal {
  field legs I
  private field secret I
  final field tag I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    load 0
    const 1
    putfield Animal.tag I
    return
  }
  method speak()LString; {
    ldc "..."
    return
  }
}
class Dog extends Animal {
  field tricks I
  method speak()LString; {
    ldc "woof"
    return
  }
}
`

func mustEnv(t *testing.T, extra string) *classfile.Program {
	t.Helper()
	p, err := asm.AssembleProgram("env.jva", base+extra)
	if err != nil {
		t.Fatalf("assemble env: %v", err)
	}
	return p
}

// verifyOne assembles a class body and verifies the named class.
func verifyOne(t *testing.T, extra, class string, mode Mode) error {
	t.Helper()
	p := mustEnv(t, extra)
	v := New(ProgramEnv{p}, mode)
	return v.VerifyClass(p.Classes[class])
}

func TestAcceptsValidPrograms(t *testing.T) {
	cases := map[string]string{
		"arith": `
class T {
  static method m(II)I {
    load 0
    load 1
    add
    const 2
    mul
    return
  }
}`,
		"branch merge": `
class T {
  static method m(I)LAnimal; {
    load 0
    ifeq a
    new Dog
    goto done
  a:
    new Animal
  done:
    store 1
    load 1
    return
  }
}`,
		"null merges with ref": `
class T {
  static method m(I)LAnimal; {
    load 0
    ifeq a
    new Animal
    goto done
  a:
    null
  done:
    return
  }
}`,
		"virtual dispatch on subclass": `
class T {
  static method m(LDog;)LString; {
    load 0
    invokevirtual Animal.speak()LString;
    return
  }
}`,
		"arrays": `
class T {
  static method m(I)I {
    load 0
    newarray I
    store 1
    load 1
    const 0
    const 7
    aset
    load 1
    arraylen
    return
  }
}`,
		"loop": `
class T {
  static method m(I)I {
    const 0
    store 1
  loop:
    load 0
    ifle done
    load 1
    load 0
    add
    store 1
    load 0
    const 1
    sub
    store 0
    goto loop
  done:
    load 1
    return
  }
}`,
		"instanceof and checkcast": `
class T {
  static method m(LAnimal;)LDog; {
    load 0
    instanceof Dog
    ifeq no
    load 0
    checkcast Dog
    return
  no:
    null
    return
  }
}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if err := verifyOne(t, src, "T", Strict); err != nil {
				t.Fatalf("valid program rejected: %v", err)
			}
		})
	}
}

func TestRejectsInvalidPrograms(t *testing.T) {
	cases := map[string]struct{ src, wantSub string }{
		"stack underflow": {`
class T {
  static method m()V {
    add
    return
  }
}`, "underflow"},
		"int where ref": {`
class T {
  static method m()V {
    const 1
    ifnull a
  a:
    return
  }
}`, "want reference"},
		"ref where int": {`
class T {
  static method m()V {
    null
    const 1
    add
    return
  }
}`, "want int"},
		"bad return type": {`
class T {
  static method m()I {
    null
    return
  }
}`, "return"},
		"missing return value": {`
class T {
  static method m()I {
    return
  }
}`, "underflow"},
		"values left on stack": {`
class T {
  static method m()V {
    const 1
    return
  }
}`, "left on stack"},
		"unknown field": {`
class T {
  static method m(LAnimal;)I {
    load 0
    getfield Animal.nope I
    return
  }
}`, "unknown field"},
		"field type mismatch": {`
class T {
  static method m(LAnimal;)I {
    load 0
    getfield Animal.legs Z
    return
  }
}`, "instruction says"},
		"unknown method": {`
class T {
  static method m(LAnimal;)V {
    load 0
    invokevirtual Animal.fly()V
    return
  }
}`, "unknown method"},
		"arg type mismatch": {`
class T {
  static method m(LAnimal;)LString; {
    load 0
    invokevirtual Animal.speak()LString;
    load 0
    invokevirtual String.concat(LString;)LString;
    return
  }
}`, "not a subclass"},
		"superclass direction": {`
class T {
  static method m(LAnimal;)LDog; {
    load 0
    return
  }
}`, "not a subclass"},
		"falls off end": {`
class T {
  static method m()V {
    nop
  }
}`, "falls off end"},
		"stack depth mismatch at join": {`
class T {
  static method m(I)V {
    load 0
    ifeq a
    const 1
  a:
    return
  }
}`, "depth mismatch"},
		"static vs instance": {`
class T {
  static method m(LAnimal;)LString; {
    invokestatic Animal.speak()LString;
    return
  }
}`, "static mismatch"},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			err := verifyOne(t, c.src, "T", Strict)
			if err == nil {
				t.Fatal("invalid program accepted")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q missing %q", err, c.wantSub)
			}
		})
	}
}

// Store out-of-range appears at asm level too; verify the verifier catches
// hand-built code where MaxLocals lies.
func TestLocalNotAssigned(t *testing.T) {
	m := &classfile.Method{Name: "m", Sig: "()I", Static: true, MaxLocals: 2,
		Code: []bytecode.Ins{
			{Op: bytecode.LOAD, A: 1},
			{Op: bytecode.RETURN},
		}}
	cls := &classfile.Class{Name: "T", Super: "Object", Methods: []*classfile.Method{m}}
	p := mustEnv(t, "")
	_ = p.Add(cls)
	err := New(ProgramEnv{p}, Strict).VerifyMethod(cls, m)
	if err == nil || !strings.Contains(err.Error(), "definitely assigned") {
		t.Fatalf("err = %v", err)
	}
}

func TestAccessControl(t *testing.T) {
	// Private field access from another class: rejected strictly,
	// accepted relaxed (the transformer-compiler special case).
	src := `
class T {
  static method m(LAnimal;)I {
    load 0
    getfield Animal.secret I
    return
  }
}`
	if err := verifyOne(t, src, "T", Strict); err == nil ||
		!strings.Contains(err.Error(), "private") {
		t.Fatalf("strict: err = %v", err)
	}
	if err := verifyOne(t, src, "T", Relaxed); err != nil {
		t.Fatalf("relaxed: %v", err)
	}

	// Final field write outside the constructor: same split.
	src2 := `
class T {
  static method m(LAnimal;)V {
    load 0
    const 9
    putfield Animal.tag I
    return
  }
}`
	if err := verifyOne(t, src2, "T", Strict); err == nil ||
		!strings.Contains(err.Error(), "final") {
		t.Fatalf("strict final: err = %v", err)
	}
	if err := verifyOne(t, src2, "T", Relaxed); err != nil {
		t.Fatalf("relaxed final: %v", err)
	}

	// Final write inside the declaring constructor is fine strictly (the
	// Animal <init> in the base env does it).
	if err := verifyOne(t, "", "Animal", Strict); err != nil {
		t.Fatalf("constructor final write rejected: %v", err)
	}
}

func TestHierarchyChecks(t *testing.T) {
	p := mustEnv(t, "")
	// Unknown superclass.
	bad := &classfile.Class{Name: "X", Super: "Nowhere"}
	_ = p.Add(bad)
	if err := New(ProgramEnv{p}, Strict).VerifyClass(bad); err == nil {
		t.Error("unknown superclass accepted")
	}
	// Cycle.
	p2 := mustEnv(t, "")
	a := &classfile.Class{Name: "A", Super: "B"}
	b := &classfile.Class{Name: "B", Super: "A"}
	_ = p2.Add(a)
	_ = p2.Add(b)
	if err := New(ProgramEnv{p2}, Strict).VerifyClass(a); err == nil {
		t.Error("superclass cycle accepted")
	}
}

// Property: a straight-line program made only of CONST pushes and matching
// POPs, ending in return, always verifies; removing one CONST (leaving an
// extra POP) never does.
func TestStackDisciplineProperty(t *testing.T) {
	p := mustEnv(t, "")
	build := func(n int, dropOne bool) *classfile.Method {
		var code []bytecode.Ins
		for i := 0; i < n; i++ {
			code = append(code, bytecode.Ins{Op: bytecode.CONST, A: int64(i)})
		}
		pops := n
		if dropOne {
			pops = n + 1
		}
		for i := 0; i < pops; i++ {
			code = append(code, bytecode.Ins{Op: bytecode.POP})
		}
		code = append(code, bytecode.Ins{Op: bytecode.RETURN})
		return &classfile.Method{Name: "m", Sig: "()V", Static: true, MaxLocals: 0, Code: code}
	}
	f := func(raw uint8) bool {
		n := int(raw%16) + 1
		cls := &classfile.Class{Name: "Q", Super: "Object"}
		ok := build(n, false)
		cls.Methods = []*classfile.Method{ok}
		if err := New(ProgramEnv{p}, Strict).VerifyMethod(cls, ok); err != nil {
			return false
		}
		bad := build(n, true)
		if err := New(ProgramEnv{p}, Strict).VerifyMethod(cls, bad); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
