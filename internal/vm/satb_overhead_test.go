package vm

import (
	"bytes"
	"runtime"
	"testing"

	"govolve/internal/asm"
	"govolve/internal/rt"
)

// storeLoopSrc is the ref-store-heavy analog of dispatchLoopSrc: every
// iteration overwrites two reference fields (the SATB deletion barrier's
// fast path) and one scalar field (the nil-check-only path), with one taken
// backedge. An infinite loop lets the harness pump slices forever.
const storeLoopSrc = `
class Node {
  field next LNode;
  field val I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class Hot {
  static field a LNode;
  static field b LNode;
  static method main()V {
    new Node
    dup
    invokespecial Node.<init>()V
    putstatic Hot.a LNode;
    new Node
    dup
    invokespecial Node.<init>()V
    putstatic Hot.b LNode;
    const 0
    store 0
  loop:
    getstatic Hot.a LNode;
    getstatic Hot.b LNode;
    putfield Node.next LNode;
    getstatic Hot.b LNode;
    getstatic Hot.a LNode;
    putfield Node.next LNode;
    getstatic Hot.a LNode;
    load 0
    putfield Node.val I
    load 0
    const 1
    add
    const 1048575
    and
    store 0
    goto loop
  }
}
`

// newStoreDispatchVM builds a VM running the ref-store loop and warms it
// past recompilation, with the SATB barrier in its production steady state:
// present and disarmed.
func newStoreDispatchVM(tb testing.TB) *VM {
	tb.Helper()
	var out bytes.Buffer
	v, err := New(Options{HeapWords: 1 << 14, Out: &out})
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := asm.AssembleProgram("satb.jva", storeLoopSrc)
	if err != nil {
		tb.Fatal(err)
	}
	if err := v.LoadProgram(prog); err != nil {
		tb.Fatal(err)
	}
	if _, err := v.SpawnMain("Hot"); err != nil {
		tb.Fatal(err)
	}
	v.Step(500)
	return v
}

// BenchmarkSATBDisarmedDispatch measures the store-heavy dispatch loop with
// the barrier disarmed — the state every instruction between updates runs
// in. Compare with BenchmarkSATBArmedDispatch for the armed delta and with
// BenchmarkInterpDispatch for the cost of the stores themselves.
func BenchmarkSATBDisarmedDispatch(b *testing.B) {
	v := newStoreDispatchVM(b)
	b.ReportAllocs()
	start := v.TotalSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Step(1)
	}
	b.StopTimer()
	executed := v.TotalSteps - start
	if executed == 0 {
		b.Fatal("no instructions executed")
	}
	b.ReportMetric(float64(executed)/float64(b.N), "instructions/op")
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "instructions/s")
}

// BenchmarkSATBArmedDispatch is the same loop with the deletion barrier
// armed: every overwritten in-snapshot ref is logged and every ref store is
// an atomic. This is the tax the mutator pays only while a concurrent mark
// is in flight. The barrier is re-armed each iteration so the deletion log
// stays bounded; its buffer (and capacity) is reused across re-arms.
func BenchmarkSATBArmedDispatch(b *testing.B) {
	v := newStoreDispatchVM(b)
	buf := make([]rt.Addr, 0, 1<<20)
	b.ReportAllocs()
	start := v.TotalSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Heap.ArmSATB(buf)
		v.Step(1)
		buf = v.Heap.DisarmSATB()
	}
	b.StopTimer()
	executed := v.TotalSteps - start
	if executed == 0 {
		b.Fatal("no instructions executed")
	}
	b.ReportMetric(float64(executed)/float64(b.N), "instructions/op")
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "instructions/s")
}

// TestSATBDisarmedZeroAlloc: the disarmed barrier must not add allocations
// to the store-heavy fast path.
func TestSATBDisarmedZeroAlloc(t *testing.T) {
	v := newStoreDispatchVM(t)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	before := v.TotalSteps
	allocs := testing.AllocsPerRun(50, func() {
		v.Step(10)
	})
	executed := v.TotalSteps - before
	if executed < 1000 {
		t.Fatalf("fast path barely ran: %d instructions", executed)
	}
	if allocs != 0 {
		t.Fatalf("disarmed-barrier store path allocates: %.1f allocs per 10 slices", allocs)
	}
}

// TestSATBArmedOverheadBound is the dispatch-level companion to the heap
// package's ≤2% disarmed gate (TestSATBDisarmedStoreOverheadGate, which
// diffs the disarmed store path against the verbatim pre-barrier store on a
// dispatch-shaped loop). The ARMED barrier is deliberately not held to 2% —
// it logs every overwritten in-snapshot ref and makes every ref store
// atomic, a real tax (~25% on this worst-case all-stores loop) paid only
// while a concurrent mark is in flight. This bound is a tripwire: if the
// armed path ever drops below half of disarmed throughput, something
// accidentally quadratic (rescanning the log, buffer thrash) crept in.
func TestSATBArmedOverheadBound(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	disarmed := newStoreDispatchVM(t)
	armed := newStoreDispatchVM(t)
	buf := make([]rt.Addr, 0, 1<<20)

	const (
		slices   = 400
		rounds   = 5
		attempts = 4
		floor    = 0.50 // armed must hold ≥50% of disarmed throughput
	)
	armedRate := func() float64 {
		armed.Heap.ArmSATB(buf)
		r := dispatchRate(t, armed, slices)
		buf = armed.Heap.DisarmSATB()
		return r
	}
	var lastRatio float64
	for attempt := 0; attempt < attempts; attempt++ {
		disBest, armBest := 0.0, 0.0
		for r := 0; r < rounds; r++ {
			// Interleave so clock drift and background load hit both sides.
			if d := dispatchRate(t, disarmed, slices); d > disBest {
				disBest = d
			}
			if a := armedRate(); a > armBest {
				armBest = a
			}
		}
		lastRatio = armBest / disBest
		if lastRatio >= floor {
			return
		}
	}
	t.Fatalf("armed-barrier dispatch at %.1f%% of disarmed after %d attempts, want ≥%.0f%%",
		lastRatio*100, attempts, floor*100)
}
