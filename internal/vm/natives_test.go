package vm

import (
	"strings"
	"testing"
)

// runExpectError runs T.main and asserts the main thread dies with a
// message containing want.
func runExpectError(t *testing.T, body, want string) {
	t.Helper()
	v, _ := newTestVM(t, 1<<16)
	loadSrc(t, v, "class T {\n static method main()V {\n"+body+"\n }\n}")
	if _, err := v.SpawnMain("T"); err != nil {
		t.Fatal(err)
	}
	_ = v.Run()
	th := v.Threads[0]
	if th.Err == nil || !strings.Contains(th.Err.Error(), want) {
		t.Fatalf("err = %v, want %q", th.Err, want)
	}
}

func TestStringNativeBounds(t *testing.T) {
	runExpectError(t, `
    ldc "abc"
    const 9
    invokevirtual String.charAt(I)C
    pop
    return`, "charAt")
	runExpectError(t, `
    ldc "abc"
    const 2
    const 9
    invokevirtual String.substring(II)LString;
    pop
    return`, "substring")
	runExpectError(t, `
    ldc "abc"
    const 3
    const 1
    invokevirtual String.substring(II)LString;
    pop
    return`, "substring")
}

func TestStringToIntVariants(t *testing.T) {
	v, out := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class T {
  static method p(LString;)V {
    load 0
    invokevirtual String.toInt()I
    invokestatic System.printInt(I)V
    return
  }
  static method main()V {
    ldc "42"
    invokestatic T.p(LString;)V
    ldc "-17"
    invokestatic T.p(LString;)V
    ldc "  8  "
    invokestatic T.p(LString;)V
    ldc "12abc"
    invokestatic T.p(LString;)V
    ldc "abc"
    invokestatic T.p(LString;)V
    ldc ""
    invokestatic T.p(LString;)V
    return
  }
}`)
	runMain(t, v, "T")
	want := "42\n-17\n8\n12\n0\n0\n"
	if out.String() != want {
		t.Fatalf("toInt outputs = %q, want %q", out.String(), want)
	}
}

func TestStringSplitEdgeCases(t *testing.T) {
	v, out := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class T {
  static method n(LString;)V {
    load 0
    const 44
    invokevirtual String.split(C)[LString;
    arraylen
    invokestatic System.printInt(I)V
    return
  }
  static method main()V {
    ldc ""
    invokestatic T.n(LString;)V
    ldc ","
    invokestatic T.n(LString;)V
    ldc "a,b"
    invokestatic T.n(LString;)V
    ldc ",,a"
    invokestatic T.n(LString;)V
    return
  }
}`)
	runMain(t, v, "T")
	if out.String() != "1\n2\n2\n3\n" {
		t.Fatalf("split lens = %q", out.String())
	}
}

func TestSimulatedClockAndSleep(t *testing.T) {
	v, out := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class T {
  static method main()V {
    invokestatic System.time()I
    store 0
    const 5
    invokestatic Thread.sleep(I)V
    invokestatic System.time()I
    load 0
    sub
    const 5
    if_icmplt bad
    const 1
    invokestatic System.printInt(I)V
    return
  bad:
    const 0
    invokestatic System.printInt(I)V
    return
  }
}`)
	if _, err := v.SpawnMain("T"); err != nil {
		t.Fatal(err)
	}
	// The sleeping thread waits on the simulated clock, which advances
	// only while instructions execute — a second spinning thread drives
	// it forward.
	spin, err := v.Reg.LookupClass("T"), error(nil)
	_ = spin
	_ = err
	// Drive: repeatedly step; the clock advances via the driver loop.
	for i := 0; i < 20000 && v.liveThreads() > 0; i++ {
		if v.Step(10) == 0 {
			// Only the sleeper remains; advance the clock artificially
			// by executing nothing — TotalSteps must grow, so nudge it.
			v.TotalSteps += 1000
		}
	}
	if got := strings.TrimSpace(out.String()); got != "1" {
		t.Fatalf("sleep result = %q, want 1", got)
	}
}

func TestSystemExitKillsEverything(t *testing.T) {
	v, out := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class W {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method run()V {
  spin:
    goto spin
  }
}
class T {
  static method main()V {
    new W
    dup
    invokespecial W.<init>()V
    invokestatic Thread.spawn(LObject;)V
    ldc "bye"
    invokestatic System.println(LString;)V
    const 3
    invokestatic System.exit(I)V
    ldc "unreachable"
    invokestatic System.println(LString;)V
    return
  }
}`)
	if _, err := v.SpawnMain("T"); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if !v.Exited || v.ExitCode != 3 {
		t.Fatalf("exit state = %v/%d", v.Exited, v.ExitCode)
	}
	if out.String() != "bye\n" {
		t.Fatalf("output = %q", out.String())
	}
}

func TestNetConnectRefused(t *testing.T) {
	v, _ := newTestVM(t, 1<<16)
	if _, err := v.Net.Connect(12345); err == nil {
		t.Fatal("connect to unbound port succeeded")
	}
}

func TestNetDoubleBind(t *testing.T) {
	v, _ := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class T {
  static method main()V {
    const 80
    invokestatic Net.listen(I)I
    pop
    const 80
    invokestatic Net.listen(I)I
    pop
    return
  }
}`)
	if _, err := v.SpawnMain("T"); err != nil {
		t.Fatal(err)
	}
	_ = v.Run()
	th := v.Threads[0]
	if th.Err == nil || !strings.Contains(th.Err.Error(), "already bound") {
		t.Fatalf("err = %v", th.Err)
	}
}

func TestInternedStringsSurviveGC(t *testing.T) {
	v, out := newTestVM(t, 2048)
	loadSrc(t, v, `
class T {
  static method main()V {
    const 0
    store 0
  churn:
    load 0
    const 300
    if_icmpge done
    const 8
    newarray I
    pop
    load 0
    const 1
    add
    store 0
    goto churn
  done:
    ldc "interned"
    invokestatic System.println(LString;)V
    return
  }
}`)
	// Force the literal to be materialized early, then churn.
	runMain(t, v, "T")
	if v.GC.Collections == 0 {
		t.Skip("heap too large to force collection")
	}
	if got := strings.TrimSpace(out.String()); got != "interned" {
		t.Fatalf("interned literal corrupted: %q", got)
	}
}

func TestSpawnErrors(t *testing.T) {
	runExpectError(t, `
    null
    invokestatic Thread.spawn(LObject;)V
    return`, "spawn")
	runExpectError(t, `
    new Object
    dup
    invokespecial Object.<init>()V
    invokestatic Thread.spawn(LObject;)V
    return`, "no run()V")
}
