package vm

import (
	"bytes"
	"runtime"
	"testing"

	"govolve/internal/asm"
	"govolve/internal/rt"
)

// loadLoopSrc is the ref-load-heavy analog of storeLoopSrc: every iteration
// chases two reference fields, reads a scalar field, and loads a ref array
// element (the lazy read barrier's getfield and aget fast paths), with one
// taken backedge. Call-free so the slice allocates nothing; an infinite loop
// lets the harness pump slices forever.
const loadLoopSrc = `
class Node {
  field next LNode;
  field val I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class Hot {
  static field a LNode;
  static field b LNode;
  static field arr [LNode;
  static method main()V {
    new Node
    dup
    invokespecial Node.<init>()V
    putstatic Hot.a LNode;
    new Node
    dup
    invokespecial Node.<init>()V
    putstatic Hot.b LNode;
    getstatic Hot.a LNode;
    getstatic Hot.b LNode;
    putfield Node.next LNode;
    getstatic Hot.b LNode;
    getstatic Hot.a LNode;
    putfield Node.next LNode;
    const 2
    newarray LNode;
    putstatic Hot.arr [LNode;
    getstatic Hot.arr [LNode;
    const 0
    getstatic Hot.a LNode;
    aset
    const 0
    store 0
  loop:
    getstatic Hot.a LNode;
    getfield Node.next LNode;
    getfield Node.next LNode;
    getfield Node.val I
    load 0
    add
    store 0
    getstatic Hot.arr [LNode;
    const 0
    aget
    getfield Node.val I
    load 0
    add
    const 1048575
    and
    store 0
    goto loop
  }
}
`

// newLoadDispatchVM builds a VM running the ref-load loop and warms it past
// recompilation, with the lazy-transform read barrier in its production
// steady state: compiled in and disabled (no touch hook installed).
func newLoadDispatchVM(tb testing.TB) *VM {
	tb.Helper()
	var out bytes.Buffer
	v, err := New(Options{HeapWords: 1 << 14, Out: &out})
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := asm.AssembleProgram("lazy.jva", loadLoopSrc)
	if err != nil {
		tb.Fatal(err)
	}
	if err := v.LoadProgram(prog); err != nil {
		tb.Fatal(err)
	}
	if _, err := v.SpawnMain("Hot"); err != nil {
		tb.Fatal(err)
	}
	v.Step(500)
	return v
}

// armLazyStub installs a touch hook that should never fire: no object is
// tagged, so an armed-clean run pays only the per-load header-bit test.
func armLazyStub(tb testing.TB, v *VM) {
	tb.Helper()
	v.DSULazyTouch = func(a rt.Addr) error {
		tb.Fatalf("lazy touch hook fired at @%d with no tagged objects", a)
		return nil
	}
}

// BenchmarkLazyDisabledDispatch measures the load-heavy dispatch loop with
// the read barrier disabled — the state every instruction between updates
// runs in. Compare with BenchmarkLazyArmedDispatch for the armed-clean delta.
func BenchmarkLazyDisabledDispatch(b *testing.B) {
	v := newLoadDispatchVM(b)
	b.ReportAllocs()
	start := v.TotalSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Step(1)
	}
	b.StopTimer()
	executed := v.TotalSteps - start
	if executed == 0 {
		b.Fatal("no instructions executed")
	}
	b.ReportMetric(float64(executed)/float64(b.N), "instructions/op")
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "instructions/s")
}

// BenchmarkLazyArmedDispatch is the same loop with the barrier armed but no
// objects tagged: every reference load additionally tests the header bit.
// This is the steady-state tax the mutator pays while a drain is in flight,
// excluding the transforms themselves.
func BenchmarkLazyArmedDispatch(b *testing.B) {
	v := newLoadDispatchVM(b)
	armLazyStub(b, v)
	b.ReportAllocs()
	start := v.TotalSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Step(1)
	}
	b.StopTimer()
	executed := v.TotalSteps - start
	if executed == 0 {
		b.Fatal("no instructions executed")
	}
	b.ReportMetric(float64(executed)/float64(b.N), "instructions/op")
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "instructions/s")
}

// TestLazyDisabledZeroAlloc: the disabled read barrier must not add
// allocations to the load-heavy fast path.
func TestLazyDisabledZeroAlloc(t *testing.T) {
	v := newLoadDispatchVM(t)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	before := v.TotalSteps
	allocs := testing.AllocsPerRun(50, func() {
		v.Step(10)
	})
	executed := v.TotalSteps - before
	if executed < 1000 {
		t.Fatalf("fast path barely ran: %d instructions", executed)
	}
	if allocs != 0 {
		t.Fatalf("disabled-barrier load path allocates: %.1f allocs per 10 slices", allocs)
	}
}

// TestLazyDisabledOverheadGate bounds the read barrier's dispatch cost.
// The disabled path (no touch hook installed — the state every instruction
// between updates runs in) is a single pointer nil-check; its ≤2% claim is
// enforced by the zero-alloc test above plus the printed benchmark pair,
// since the check is compiled in unconditionally and has no in-binary
// baseline to diff against. What this gate pins is the armed-but-clean tax:
// with the hook installed and nothing tagged, every reference load adds one
// header-word bit test — a genuine 1–3% on this all-loads worst case. The
// 95% floor is a tripwire: if something accidentally expensive (a map
// lookup, an allocation) creeps into the armed fast path, the ratio
// collapses well past it. Interleaved best-of rounds, retried, ride out
// scheduler noise on loaded 1-vCPU CI boxes and under -race.
func TestLazyDisabledOverheadGate(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	disabled := newLoadDispatchVM(t)
	armed := newLoadDispatchVM(t)
	armLazyStub(t, armed)

	const (
		slices   = 400
		rounds   = 5
		attempts = 4
		floor    = 0.95 // armed-clean must hold ≥95% of disabled throughput
	)
	var lastRatio float64
	for attempt := 0; attempt < attempts; attempt++ {
		disBest, armBest := 0.0, 0.0
		for r := 0; r < rounds; r++ {
			// Interleave so clock drift and background load hit both sides.
			if d := dispatchRate(t, disabled, slices); d > disBest {
				disBest = d
			}
			if a := dispatchRate(t, armed, slices); a > armBest {
				armBest = a
			}
		}
		lastRatio = armBest / disBest
		if lastRatio >= floor {
			return
		}
	}
	t.Fatalf("armed-clean dispatch at %.1f%% of disabled after %d attempts, want ≥%.0f%%",
		lastRatio*100, attempts, floor*100)
}
