package vm

import (
	"strings"
	"testing"
)

// runAndCapture runs T.main and returns stdout.
func runAndCapture(t *testing.T, src string) string {
	t.Helper()
	v, out := newTestVM(t, 1<<16)
	loadSrc(t, v, src)
	runMain(t, v, "T")
	return out.String()
}

func TestStackManipulationOps(t *testing.T) {
	got := runAndCapture(t, `
class T {
  static method main()V {
    // dup_x1: a b -> b a b ; compute (2) (3) dup_x1 -> 3 2 3; add -> 3 5; sub -> -2
    const 2
    const 3
    dup_x1
    add
    sub
    invokestatic System.printInt(I)V
    // swap: 7 9 swap sub -> 9-7 = 2
    const 7
    const 9
    swap
    sub
    invokestatic System.printInt(I)V
    // neg
    const 5
    neg
    invokestatic System.printInt(I)V
    // shifts
    const 3
    const 4
    shl
    invokestatic System.printInt(I)V
    const -16
    const 2
    shr
    invokestatic System.printInt(I)V
    return
  }
}`)
	want := "-2\n2\n-5\n48\n-4\n"
	if got != want {
		t.Fatalf("stack ops = %q, want %q", got, want)
	}
}

func TestReferenceComparisons(t *testing.T) {
	got := runAndCapture(t, `
class Box {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class T {
  static method same(LBox;LBox;)I {
    load 0
    load 1
    if_acmpeq yes
    const 0
    return
  yes:
    const 1
    return
  }
  static method main()V {
    new Box
    dup
    invokespecial Box.<init>()V
    store 0
    new Box
    dup
    invokespecial Box.<init>()V
    store 1
    load 0
    load 0
    invokestatic T.same(LBox;LBox;)I
    invokestatic System.printInt(I)V
    load 0
    load 1
    invokestatic T.same(LBox;LBox;)I
    invokestatic System.printInt(I)V
    return
  }
}`)
	if got != "1\n0\n" {
		t.Fatalf("acmp = %q", got)
	}
}

func TestInstanceofHierarchy(t *testing.T) {
	got := runAndCapture(t, `
class Animal {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class Dog extends Animal {
  method <init>()V {
    load 0
    invokespecial Animal.<init>()V
    return
  }
}
class T {
  static method main()V {
    new Dog
    dup
    invokespecial Dog.<init>()V
    store 0
    load 0
    instanceof Animal
    invokestatic System.printInt(I)V
    load 0
    instanceof Dog
    invokestatic System.printInt(I)V
    load 0
    instanceof Object
    invokestatic System.printInt(I)V
    new Animal
    dup
    invokespecial Animal.<init>()V
    instanceof Dog
    invokestatic System.printInt(I)V
    null
    instanceof Dog
    invokestatic System.printInt(I)V
    return
  }
}`)
	if got != "1\n1\n1\n0\n0\n" {
		t.Fatalf("instanceof = %q", got)
	}
}

func TestCheckcastUpAndDown(t *testing.T) {
	// Upcast always fine; downcast of the right dynamic type fine; null
	// passes any cast.
	got := runAndCapture(t, `
class Animal {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method kind()I {
    const 1
    return
  }
}
class Dog extends Animal {
  method <init>()V {
    load 0
    invokespecial Animal.<init>()V
    return
  }
  method kind()I {
    const 2
    return
  }
}
class T {
  static method asAnimal(LObject;)LAnimal; {
    load 0
    checkcast Animal
    return
  }
  static method main()V {
    new Dog
    dup
    invokespecial Dog.<init>()V
    invokestatic T.asAnimal(LObject;)LAnimal;
    invokevirtual Animal.kind()I
    invokestatic System.printInt(I)V
    null
    invokestatic T.asAnimal(LObject;)LAnimal;
    ifnull ok
    trap "null survived cast but compared non-null"
  ok:
    const 9
    invokestatic System.printInt(I)V
    return
  }
}`)
	if got != "2\n9\n" {
		t.Fatalf("checkcast = %q", got)
	}
}

func TestDeepRecursionGrowsStack(t *testing.T) {
	got := runAndCapture(t, `
class T {
  static method down(I)I {
    load 0
    ifle base
    load 0
    const 1
    sub
    invokestatic T.down(I)I
    const 1
    add
    return
  base:
    const 0
    return
  }
  static method main()V {
    const 5000
    invokestatic T.down(I)I
    invokestatic System.printInt(I)V
    return
  }
}`)
	if strings.TrimSpace(got) != "5000" {
		t.Fatalf("deep recursion = %q", got)
	}
}

func TestVirtualDispatchThroughUpdatelessTIBRewrite(t *testing.T) {
	// Overriding two levels deep: C overrides B overrides A; calls through
	// an A-typed reference must hit the most-derived implementation.
	got := runAndCapture(t, `
class A {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method id()I {
    const 1
    return
  }
}
class B extends A {
  method id()I {
    const 2
    return
  }
}
class C extends B {
  method id()I {
    const 3
    return
  }
}
class T {
  static method probe(LA;)V {
    load 0
    invokevirtual A.id()I
    invokestatic System.printInt(I)V
    return
  }
  static method main()V {
    new A
    dup
    invokespecial A.<init>()V
    invokestatic T.probe(LA;)V
    new B
    dup
    invokespecial A.<init>()V
    invokestatic T.probe(LA;)V
    new C
    dup
    invokespecial A.<init>()V
    invokestatic T.probe(LA;)V
    return
  }
}`)
	if got != "1\n2\n3\n" {
		t.Fatalf("dispatch = %q", got)
	}
}

func TestTrapKillsWithMessage(t *testing.T) {
	v, _ := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class T {
  static method main()V {
    trap "deliberate failure"
  }
}`)
	if _, err := v.SpawnMain("T"); err != nil {
		t.Fatal(err)
	}
	_ = v.Run()
	if err := v.Threads[0].Err; err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("trap err = %v", err)
	}
}
