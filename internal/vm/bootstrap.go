package vm

import (
	"fmt"

	"govolve/internal/asm"
	"govolve/internal/classfile"
)

// BootstrapSource is the assembler source of the bootstrap classes. They are
// assembled like any other program, so everything downstream (verifier,
// UPT diffs, disassembly) treats them uniformly. Native method bodies are
// bound in registerNatives.
const BootstrapSource = `
class Object {
  method <init>()V {
    return
  }
}

class String {
  private field chars [C

  native method length()I
  native method charAt(I)C
  native method equals(LString;)Z
  native method concat(LString;)LString;
  native method substring(II)LString;
  native method indexOf(CI)I
  native method startsWith(LString;)Z
  native method endsWith(LString;)Z
  native method trim()LString;
  native method toLowerCase()LString;
  native method hashCode()I
  native method toInt()I
  native method split(C)[LString;
  native static method fromInt(I)LString;
}

class System {
  native static method print(LString;)V
  native static method println(LString;)V
  native static method printInt(I)V
  native static method time()I
  native static method exit(I)V
}

class Thread {
  native static method spawn(LObject;)V
  native static method sleep(I)V
}

class Net {
  native static method listen(I)I
  native static method accept(I)I
  native static method recvLine(I)LString;
  native static method send(ILString;)V
  native static method close(I)V
  native static method unlisten(I)V
}

class Jvolve {
  native static method forceTransform(LObject;)V
}
`

// bootstrapClasses parses the bootstrap source.
func bootstrapClasses() ([]*classfile.Class, error) {
	return asm.Assemble("bootstrap.jva", BootstrapSource)
}

// bootstrap loads the bootstrap classes and binds natives.
func (v *VM) bootstrap() error {
	classes, err := bootstrapClasses()
	if err != nil {
		return fmt.Errorf("vm: bootstrap: %w", err)
	}
	for _, def := range classes {
		cls, err := v.Reg.Load(def)
		if err != nil {
			return fmt.Errorf("vm: bootstrap: %w", err)
		}
		for _, m := range cls.DeclaredMethods() {
			m.Pinned = true
		}
		switch cls.Name {
		case "Object":
			v.objectCls = cls
		case "String":
			v.strCls = cls
			f := cls.Field("chars")
			if f == nil {
				return fmt.Errorf("vm: bootstrap String has no chars field")
			}
			v.strCharsOff = f.Offset
		}
	}
	v.registerNatives()
	return nil
}
