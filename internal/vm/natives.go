package vm

import (
	"fmt"
	"strings"

	"govolve/internal/rt"
)

// NativeFunc implements a native method. It receives the argument values
// (receiver first for instance methods) and returns the result. A non-nil
// block function parks the thread until the condition holds, then the call
// retries. A non-nil error kills the thread.
type NativeFunc func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error)

// nativeKey identifies a native binding: "Class.name(sig)". Bindings are by
// name, so a class update that keeps a native method re-binds automatically.
func nativeKey(m *rt.Method) string {
	return m.Class.Name + "." + m.Def.ID()
}

// BindNative registers a native implementation for Class.name(sig)ret.
func (v *VM) BindNative(class, nameSig string, fn NativeFunc) {
	v.natives[class+"."+nameSig] = fn
}

func (v *VM) registerNatives() {
	// --- System ---------------------------------------------------------
	v.BindNative("System", "print(LString;)V", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		s, _ := v.GoString(args[0].Ref())
		fmt.Fprint(v.Out, s)
		return rt.Value{}, nil, nil
	})
	v.BindNative("System", "println(LString;)V", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		s, _ := v.GoString(args[0].Ref())
		fmt.Fprintln(v.Out, s)
		return rt.Value{}, nil, nil
	})
	v.BindNative("System", "printInt(I)V", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		fmt.Fprintln(v.Out, args[0].Int())
		return rt.Value{}, nil, nil
	})
	v.BindNative("System", "time()I", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		return rt.IntVal(v.SimMillis()), nil, nil
	})
	v.BindNative("System", "exit(I)V", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		v.Exited = true
		v.ExitCode = int(args[0].Int())
		for _, th := range v.Threads {
			th.State = Dead
		}
		return rt.Value{}, nil, nil
	})

	// --- Thread ---------------------------------------------------------
	v.BindNative("Thread", "spawn(LObject;)V", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		obj := args[0].Ref()
		if obj == rt.Null {
			return rt.Value{}, nil, fmt.Errorf("Thread.spawn(null)")
		}
		cls := v.Reg.ClassByID(v.Heap.ClassID(obj))
		if cls == nil {
			return rt.Value{}, nil, fmt.Errorf("Thread.spawn: bad object")
		}
		run := cls.Method("run", "()V")
		if run == nil {
			return rt.Value{}, nil, fmt.Errorf("Thread.spawn: %s has no run()V", cls.Name)
		}
		nt := v.newThread(cls.Name + ".run")
		if err := v.callOn(nt, run, []rt.Value{args[0]}); err != nil {
			return rt.Value{}, nil, err
		}
		v.addThread(nt)
		return rt.Value{}, nil, nil
	})
	v.BindNative("Thread", "sleep(I)V", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		// Blocking natives are retried wholesale on wake, so the
		// deadline is stashed on the thread across retries.
		if t.SleepUntil == 0 {
			t.SleepUntil = v.TotalSteps + args[0].Int()*stepsPerMilli
		}
		if v.TotalSteps >= t.SleepUntil {
			t.SleepUntil = 0
			return rt.Value{}, nil, nil
		}
		wake := t.SleepUntil
		return rt.Value{}, func() bool { return v.TotalSteps >= wake }, nil
	})

	// --- Net ------------------------------------------------------------
	v.BindNative("Net", "listen(I)I", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		port, err := v.Net.listen(args[0].Int())
		if err != nil {
			return rt.Value{}, nil, err
		}
		return rt.IntVal(port), nil, nil
	})
	v.BindNative("Net", "accept(I)I", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		port := args[0].Int()
		if !v.Net.hasPending(port) {
			return rt.Value{}, func() bool { return v.Net.hasPending(port) }, nil
		}
		// accept's contract is (id, done): done=false means "open but
		// empty backlog" — unreachable here because hasPending held and
		// nothing ran in between. done=true with id=-1 means the
		// listener was closed (unlisten); -1 flows to the guest, whose
		// accept loop must treat a negative id as "listener closed"
		// rather than as a connection.
		id, done := v.Net.accept(port)
		if !done {
			return rt.Value{}, func() bool { return v.Net.hasPending(port) }, nil
		}
		return rt.IntVal(id), nil, nil
	})
	v.BindNative("Net", "unlisten(I)V", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		v.Net.unlisten(args[0].Int())
		return rt.Value{}, nil, nil
	})
	v.BindNative("Net", "recvLine(I)LString;", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		id := args[0].Int()
		if !v.Net.hasLine(id) {
			return rt.Value{}, func() bool { return v.Net.hasLine(id) }, nil
		}
		line, ok := v.Net.recvLine(id)
		if !ok {
			return rt.NullVal, nil, nil // connection closed
		}
		a, err := v.NewString(line)
		if err != nil {
			return rt.Value{}, nil, err
		}
		return rt.RefVal(a), nil, nil
	})
	v.BindNative("Net", "send(ILString;)V", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		line, ok := v.GoString(args[1].Ref())
		if !ok {
			return rt.Value{}, nil, fmt.Errorf("Net.send: null line")
		}
		v.Net.send(args[0].Int(), line)
		return rt.Value{}, nil, nil
	})
	v.BindNative("Net", "close(I)V", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		v.Net.close(args[0].Int())
		return rt.Value{}, nil, nil
	})

	// --- Jvolve (transformer intrinsics) ---------------------------------
	v.BindNative("Jvolve", "forceTransform(LObject;)V", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		if v.DSUForceTransform == nil {
			return rt.Value{}, nil, fmt.Errorf("Jvolve.forceTransform outside an update")
		}
		if err := v.DSUForceTransform(args[0].Ref()); err != nil {
			return rt.Value{}, nil, err
		}
		return rt.Value{}, nil, nil
	})

	// --- String ----------------------------------------------------------
	str := func(a rt.Value) (string, error) {
		s, ok := v.GoString(a.Ref())
		if !ok {
			return "", fmt.Errorf("null String receiver")
		}
		return s, nil
	}
	ret := func(s string) (rt.Value, func() bool, error) {
		a, err := v.NewString(s)
		if err != nil {
			return rt.Value{}, nil, err
		}
		return rt.RefVal(a), nil, nil
	}
	v.BindNative("String", "length()I", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		s, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		return rt.IntVal(int64(len([]rune(s)))), nil, nil
	})
	v.BindNative("String", "charAt(I)C", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		s, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		r := []rune(s)
		i := args[1].Int()
		if i < 0 || int(i) >= len(r) {
			return rt.Value{}, nil, fmt.Errorf("String.charAt(%d) out of range (len %d)", i, len(r))
		}
		return rt.IntVal(int64(r[i])), nil, nil
	})
	v.BindNative("String", "equals(LString;)Z", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		a, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		b, ok := v.GoString(args[1].Ref())
		return rt.BoolVal(ok && a == b), nil, nil
	})
	v.BindNative("String", "concat(LString;)LString;", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		a, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		b, err := str(args[1])
		if err != nil {
			return rt.Value{}, nil, err
		}
		return ret(a + b)
	})
	v.BindNative("String", "substring(II)LString;", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		s, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		r := []rune(s)
		from, to := args[1].Int(), args[2].Int()
		if from < 0 || to > int64(len(r)) || from > to {
			return rt.Value{}, nil, fmt.Errorf("String.substring(%d,%d) out of range (len %d)", from, to, len(r))
		}
		return ret(string(r[from:to]))
	})
	v.BindNative("String", "indexOf(CI)I", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		s, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		r := []rune(s)
		ch := rune(args[1].Int())
		from := int(args[2].Int())
		if from < 0 {
			from = 0
		}
		for i := from; i < len(r); i++ {
			if r[i] == ch {
				return rt.IntVal(int64(i)), nil, nil
			}
		}
		return rt.IntVal(-1), nil, nil
	})
	v.BindNative("String", "startsWith(LString;)Z", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		a, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		b, err := str(args[1])
		if err != nil {
			return rt.Value{}, nil, err
		}
		return rt.BoolVal(strings.HasPrefix(a, b)), nil, nil
	})
	v.BindNative("String", "endsWith(LString;)Z", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		a, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		b, err := str(args[1])
		if err != nil {
			return rt.Value{}, nil, err
		}
		return rt.BoolVal(strings.HasSuffix(a, b)), nil, nil
	})
	v.BindNative("String", "trim()LString;", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		s, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		return ret(strings.TrimSpace(s))
	})
	v.BindNative("String", "toLowerCase()LString;", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		s, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		return ret(strings.ToLower(s))
	})
	v.BindNative("String", "hashCode()I", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		s, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		var h int64
		for _, r := range s {
			h = h*31 + int64(r)
		}
		return rt.IntVal(h), nil, nil
	})
	v.BindNative("String", "toInt()I", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		s, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		var n int64
		neg := false
		s = strings.TrimSpace(s)
		if strings.HasPrefix(s, "-") {
			neg = true
			s = s[1:]
		}
		for _, r := range s {
			if r < '0' || r > '9' {
				break
			}
			n = n*10 + int64(r-'0')
		}
		if neg {
			n = -n
		}
		return rt.IntVal(n), nil, nil
	})
	v.BindNative("String", "fromInt(I)LString;", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		return ret(fmt.Sprintf("%d", args[0].Int()))
	})
	v.BindNative("String", "split(C)[LString;", func(v *VM, t *Thread, args []rt.Value) (rt.Value, func() bool, error) {
		s, err := str(args[0])
		if err != nil {
			return rt.Value{}, nil, err
		}
		parts := strings.Split(s, string(rune(args[1].Int())))
		arr, err := v.allocArray(true, len(parts))
		if err != nil {
			return rt.Value{}, nil, err
		}
		h := v.PushHandle(arr)
		for i, p := range parts {
			sa, err := v.NewString(p)
			if err != nil {
				v.PopHandle(1)
				return rt.Value{}, nil, err
			}
			v.Heap.SetElem(h.Ref(), i, rt.RefVal(sa))
		}
		arr = h.Ref()
		v.PopHandle(1)
		return rt.RefVal(arr), nil, nil
	})
}

// stepsPerMilli converts the simulated clock: 1000 interpreted instructions
// per simulated millisecond.
const stepsPerMilli = 1000

// SimMillis returns the simulated clock in milliseconds.
func (v *VM) SimMillis() int64 { return v.TotalSteps / stepsPerMilli }
