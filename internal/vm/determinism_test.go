package vm

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
)

// TestZeroSteadyStateOverheadInstructionExact is the strongest form of the
// paper's Figure 5 claim our simulation can make: a DSU-capable VM (update
// handler installed, never fired) executes the *exact same instruction
// stream* as a stock VM — zero steady-state work, not merely "too small to
// measure".
func TestZeroSteadyStateOverheadInstructionExact(t *testing.T) {
	src := `
class Work {
  static field acc I
  static method step(I)I {
    load 0
    load 0
    mul
    const 7
    rem
    return
  }
  static method main()V {
    const 0
    store 0
  loop:
    load 0
    const 20000
    if_icmpge done
    getstatic Work.acc I
    load 0
    invokestatic Work.step(I)I
    add
    putstatic Work.acc I
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic Work.acc I
    invokestatic System.printInt(I)V
    return
  }
}
`
	run := func(withHandler bool) (int64, string) {
		var out bytes.Buffer
		v, err := New(Options{HeapWords: 1 << 16, Out: &out})
		if err != nil {
			t.Fatal(err)
		}
		if withHandler {
			v.UpdateHandler = func() bool { return true } // installed, idle
		}
		loadSrc(t, v, src)
		if _, err := v.SpawnMain("Work"); err != nil {
			t.Fatal(err)
		}
		if err := v.Run(); err != nil {
			t.Fatal(err)
		}
		return v.TotalSteps, out.String()
	}
	stockSteps, stockOut := run(false)
	dsuSteps, dsuOut := run(true)
	if stockSteps != dsuSteps {
		t.Fatalf("instruction counts differ: stock %d, dsu-capable %d", stockSteps, dsuSteps)
	}
	if stockOut != dsuOut {
		t.Fatalf("outputs differ: %q vs %q", stockOut, dsuOut)
	}
}

// TestInterpreterArithmeticProperty generates random straight-line integer
// programs, executes them on the VM, and checks the result against a Go
// model of the same operations.
func TestInterpreterArithmeticProperty(t *testing.T) {
	ops := []bytecode.Op{
		bytecode.ADD, bytecode.SUB, bytecode.MUL,
		bytecode.AND, bytecode.OR, bytecode.XOR,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		// Build a program: push n+1 constants, then apply n random ops.
		vals := make([]int64, n+1)
		for i := range vals {
			vals[i] = int64(rng.Intn(2001) - 1000)
		}
		b := classfile.NewClass("R", "Object")
		mb := b.StaticMethod("main", "()V")
		for _, v := range vals {
			mb.Const(v)
		}
		model := make([]int64, len(vals))
		copy(model, vals)
		for i := 0; i < n; i++ {
			op := ops[rng.Intn(len(ops))]
			mb.Op(op)
			bv := model[len(model)-1]
			av := model[len(model)-2]
			model = model[:len(model)-1]
			var r int64
			switch op {
			case bytecode.ADD:
				r = av + bv
			case bytecode.SUB:
				r = av - bv
			case bytecode.MUL:
				r = av * bv
			case bytecode.AND:
				r = av & bv
			case bytecode.OR:
				r = av | bv
			case bytecode.XOR:
				r = av ^ bv
			}
			model[len(model)-1] = r
		}
		mb.Static("System", "printInt", "(I)V")
		cls := mb.Ret().Done().MustBuild()
		prog, err := classfile.NewProgram(cls)
		if err != nil {
			return false
		}
		var out bytes.Buffer
		v, err := New(Options{HeapWords: 1 << 14, Out: &out})
		if err != nil {
			return false
		}
		if err := v.LoadProgram(prog); err != nil {
			return false
		}
		if _, err := v.SpawnMain("R"); err != nil {
			return false
		}
		if err := v.Run(); err != nil {
			return false
		}
		got := strings.TrimSpace(out.String())
		want := model[len(model)-1]
		return got == itoa64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func itoa64(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// --- Seeded trace determinism --------------------------------------------
//
// The update-storm harness (internal/storm) replays any failure from a
// single printed seed, which only works if the VM itself is a pure function
// of (program, schedule): the FIFO scheduler, the interpreter, and the
// allocator must produce the exact same slice-by-slice execution on every
// run. seededTrace generates a randomized multi-threaded program from a
// seed and drives it one scheduling slice at a time, folding a SLICE-level
// fingerprint — cumulative instruction count, the contended shared static,
// and the live-thread count after every slice — plus the final output. No
// per-instruction hook is involved, so the interpreter hot path is
// untouched; the fingerprint is still strong enough that any divergence in
// scheduling order, interpretation, or static resolution shows up as a
// first-differing-line diff.
func seededTrace(t *testing.T, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ops := []string{"add", "sub", "mul", "xor", "or", "and"}

	var src strings.Builder
	src.WriteString("class Shared {\n  static field acc I\n}\n")
	const workers = 3
	for w := 0; w < workers; w++ {
		iters := 40 + rng.Intn(80)
		fmt.Fprintf(&src, "class W%d {\n  static method run()V {\n", w)
		src.WriteString("    const 0\n    store 0\n  loop:\n    load 0\n")
		fmt.Fprintf(&src, "    const %d\n    if_icmpge done\n", iters)
		for s, steps := 0, 1+rng.Intn(4); s < steps; s++ {
			fmt.Fprintf(&src, "    getstatic Shared.acc I\n    const %d\n    %s\n    putstatic Shared.acc I\n",
				rng.Intn(1000)-500, ops[rng.Intn(len(ops))])
			if rng.Intn(3) == 0 {
				src.WriteString("    yield\n")
			}
		}
		src.WriteString("    load 0\n    const 1\n    add\n    store 0\n    goto loop\n  done:\n    return\n  }\n}\n")
	}

	var out bytes.Buffer
	v, err := New(Options{HeapWords: 1 << 14, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	loadSrc(t, v, src.String())
	for w := 0; w < workers; w++ {
		cls := v.Reg.LookupClass(fmt.Sprintf("W%d", w))
		m := cls.Method("run", "()V")
		if _, err := v.Spawn(fmt.Sprintf("W%d", w), m, nil); err != nil {
			t.Fatal(err)
		}
	}
	accSlot := -1
	for _, s := range v.Reg.LookupClass("Shared").Statics {
		if s.Name == "acc" {
			accSlot = s.Slot
		}
	}
	if accSlot < 0 {
		t.Fatal("Shared.acc has no JTOC slot")
	}

	var tr strings.Builder
	for slice := 1; v.Step(1) == 1; slice++ {
		fmt.Fprintf(&tr, "%d %d %d %d\n",
			slice, v.TotalSteps, int64(v.Reg.JTOC[accSlot].Bits), v.liveThreads())
		if slice > 1<<20 {
			t.Fatal("seeded workload did not terminate")
		}
	}
	fmt.Fprintf(&tr, "steps=%d out=%q\n", v.TotalSteps, out.String())
	return tr.String()
}

// seededTraceGolden carries fingerprints across repeated executions of the
// test in one process: `go test -count=2` reruns the test function in the
// same binary, so a second pass compares against the first pass's traces.
// That catches nondeterminism that two back-to-back runs inside one test
// execution could mask (anything keyed off package-level state, map
// iteration that happens to repeat, sync.Once-style caches, ...).
var seededTraceGolden = map[int64]string{}

func firstTraceDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestSeededTraceDeterminism checks that the same seed yields an identical
// slice-level trace (a) twice within one test execution and (b) across
// repeated executions via -count=2.
func TestSeededTraceDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 1234, 99991} {
		a := seededTrace(t, seed)
		b := seededTrace(t, seed)
		if a != b {
			t.Fatalf("seed %d: trace differs between two in-process runs: %s",
				seed, firstTraceDiff(a, b))
		}
		if g, ok := seededTraceGolden[seed]; ok {
			if g != a {
				t.Fatalf("seed %d: trace differs across test executions (-count=N): %s",
					seed, firstTraceDiff(g, a))
			}
		} else {
			seededTraceGolden[seed] = a
		}
	}
}

// TestOptAndBaseAgree runs the same hot function under a VM that never
// opt-compiles and one that opt-compiles aggressively; results must match
// (the opt tier preserves semantics through folding and inlining).
func TestOptAndBaseAgree(t *testing.T) {
	src := `
class M {
  static method f(I)I {
    load 0
    const 3
    mul
    const 4
    const 6
    add
    add
    return
  }
  static method g(I)I {
    load 0
    invokestatic M.f(I)I
    load 0
    const 1
    add
    invokestatic M.f(I)I
    add
    return
  }
  static method main()V {
    const 0
    store 0
    const 0
    store 1
  loop:
    load 0
    const 300
    if_icmpge done
    load 1
    load 0
    invokestatic M.g(I)I
    add
    store 1
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    load 1
    invokestatic System.printInt(I)V
    return
  }
}
`
	results := map[int]string{}
	for _, threshold := range []int{1 << 30, 2} {
		var out bytes.Buffer
		v, err := New(Options{HeapWords: 1 << 16, Out: &out, OptThreshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		loadSrc(t, v, src)
		if _, err := v.SpawnMain("M"); err != nil {
			t.Fatal(err)
		}
		if err := v.Run(); err != nil {
			t.Fatal(err)
		}
		results[threshold] = out.String()
	}
	if results[1<<30] != results[2] {
		t.Fatalf("base-only %q vs opt-heavy %q", results[1<<30], results[2])
	}
}
