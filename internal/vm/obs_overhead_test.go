package vm

import (
	"runtime"
	"testing"
	"time"

	"govolve/internal/obs"
)

// newObsDispatchVM is newDispatchVM plus an attached-but-disabled flight
// recorder and a live registry: the configuration every production run uses
// between updates, and the one the disabled-overhead gate must keep free.
func newObsDispatchVM(tb testing.TB) *VM {
	tb.Helper()
	v := newDispatchVM(tb)
	rec := obs.NewRecorder(obs.DefaultCapacity)
	rec.SetEnabled(false)
	v.AttachObs(rec, obs.NewRegistry())
	v.Step(100) // re-warm after attach
	return v
}

// BenchmarkObsDisabledOverhead is BenchmarkInterpDispatch with a disabled
// recorder and a registry attached. Compare the two to see what observability
// costs when it is off; the paired allocation test and throughput gate below
// enforce the answer ("nothing measurable") in `make verify`.
func BenchmarkObsDisabledOverhead(b *testing.B) {
	v := newObsDispatchVM(b)
	b.ReportAllocs()
	start := v.TotalSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Step(1)
	}
	b.StopTimer()
	executed := v.TotalSteps - start
	if executed == 0 {
		b.Fatal("no instructions executed")
	}
	b.ReportMetric(float64(executed)/float64(b.N), "instructions/op")
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "instructions/s")
}

// TestObsDisabledZeroAlloc: with the recorder attached but disabled and a
// registry present, the interpreter fast path still allocates nothing.
func TestObsDisabledZeroAlloc(t *testing.T) {
	v := newObsDispatchVM(t)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	before := v.TotalSteps
	allocs := testing.AllocsPerRun(50, func() {
		v.Step(10)
	})
	executed := v.TotalSteps - before
	if executed < 1000 {
		t.Fatalf("fast path barely ran: %d instructions", executed)
	}
	if allocs != 0 {
		t.Fatalf("disabled-obs fast path allocates: %.1f allocs per 10 slices", allocs)
	}
}

// dispatchRate times slices on a warmed VM and returns instructions/second.
func dispatchRate(tb testing.TB, v *VM, slices int) float64 {
	tb.Helper()
	start := v.TotalSteps
	t0 := time.Now()
	v.Step(slices)
	el := time.Since(t0)
	executed := v.TotalSteps - start
	if executed == 0 || el <= 0 {
		tb.Fatal("dispatch sample executed nothing")
	}
	return float64(executed) / el.Seconds()
}

// TestObsDisabledOverheadGate is the ≤2% gate from the observability issue:
// steady-state dispatch with a disabled recorder attached must stay within
// 2% of a bare VM. The disabled path is a nil check plus one atomic load and
// never appears in the dispatch loop at all, so the true ratio is ~1.0; the
// measurement strategy (interleaved best-of rounds, retried) exists purely
// to ride out scheduler noise on loaded 1-vCPU CI boxes and under -race.
func TestObsDisabledOverheadGate(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	base := newDispatchVM(t)
	inst := newObsDispatchVM(t)

	const (
		slices   = 400
		rounds   = 5
		attempts = 4
		floor    = 0.98 // instrumented must hit ≥98% of baseline throughput
	)
	var lastRatio float64
	for attempt := 0; attempt < attempts; attempt++ {
		baseBest, instBest := 0.0, 0.0
		for r := 0; r < rounds; r++ {
			// Interleave so clock drift and background load hit both sides.
			if b := dispatchRate(t, base, slices); b > baseBest {
				baseBest = b
			}
			if i := dispatchRate(t, inst, slices); i > instBest {
				instBest = i
			}
		}
		lastRatio = instBest / baseBest
		if lastRatio >= floor {
			return
		}
	}
	t.Fatalf("disabled-obs dispatch at %.1f%% of baseline after %d attempts, want ≥%.0f%%",
		lastRatio*100, attempts, floor*100)
}
