//go:build race

package vm

// raceEnabled reports whether this test binary was built with the race
// detector. Performance gates skip their thresholds under -race: tsan
// instruments every memory access with a function call, so a relative
// throughput bound measures the instrumentation, not the code under test.
const raceEnabled = true
