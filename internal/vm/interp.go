package vm

import (
	"fmt"

	"govolve/internal/bytecode"
	"govolve/internal/obs"
	"govolve/internal/rt"
)

// fconstArith applies one const+arith constituent of an FCONSTARITH2 chain:
// a OP b with b a compile-time constant the fusion pass proved nonzero for
// DIV/REM, so no trap path exists.
func fconstArith(a, b int64, op bytecode.Op) int64 {
	switch op {
	case bytecode.ADD:
		return a + b
	case bytecode.SUB:
		return a - b
	case bytecode.MUL:
		return a * b
	case bytecode.DIV:
		return a / b
	case bytecode.REM:
		return a % b
	case bytecode.AND:
		return a & b
	case bytecode.OR:
		return a | b
	case bytecode.XOR:
		return a ^ b
	case bytecode.SHL:
		return a << uint(b&63)
	case bytecode.SHR:
		return a >> uint(b&63)
	}
	return 0
}

// kill terminates a thread with a runtime error. It is a method (not a
// per-interpret closure) so the steady-state dispatch loop carries no
// closure setup at all.
func (v *VM) kill(t *Thread, err error) {
	t.State = Dead
	t.Err = err
	v.tracef("thread %d killed: %v", t.ID, err)
}

// interpret executes instructions of thread t until the yield budget is
// exhausted at a yield point, the thread blocks, dies, or parks on a return
// barrier. Yield points are method entry, method exit, taken loop backedges,
// and explicit YIELDs — Jikes RVM's yield point placement.
//
// Hot-path design (see DESIGN.md "Steady-state performance"): the current
// frame is cached across iterations and refreshed only when a call or
// return changes it; instructions are addressed by pointer (no per-dispatch
// struct copy); the underflow guard compares against the stack need the JIT
// precomputed at resolve time (rt.Ins.Need); and operand-stack traffic is
// direct slice arithmetic on the frame — no closures, no interface calls,
// zero heap allocations per executed instruction.
func (v *VM) interpret(t *Thread, budget int) {
	if len(t.Frames) == 0 {
		t.State = Dead
		return
	}
	f := t.Frames[len(t.Frames)-1]

	for {
		if f.PC < 0 || f.PC >= len(f.CM.Code) {
			v.kill(t, fmt.Errorf("vm: pc %d out of range in %s", f.PC, f.Method().FullName()))
			return
		}
		ins := &f.CM.Code[f.PC]
		t.Steps++
		v.TotalSteps++

		// Underflow guard. Verified code cannot underflow, but compiled
		// code could be produced by a buggy pipeline; fail safely. The
		// need was precomputed by the JIT (rt.ResolveStackNeeds).
		if len(f.Stack) < int(ins.Need) {
			v.kill(t, fmt.Errorf("vm: operand stack underflow at %s pc=%d", f.Method().FullName(), f.PC))
			return
		}

		switch ins.Op {
		case bytecode.NOP, bytecode.LEAVEINL_R:
			// nothing

		case bytecode.CONST, bytecode.CONST_R:
			f.Stack = append(f.Stack, rt.IntVal(ins.A))
		case bytecode.NULL:
			f.Stack = append(f.Stack, rt.NullVal)
		case bytecode.LDC_R:
			root := &v.Reg.InternRoots[ins.A]
			if root.Bits == 0 {
				a, err := v.NewString(v.Reg.InternLits[ins.A])
				if err != nil {
					v.kill(t, err)
					return
				}
				*root = rt.RefVal(a)
			}
			f.Stack = append(f.Stack, *root)

		case bytecode.LOAD:
			f.Stack = append(f.Stack, f.Locals[ins.A])
		case bytecode.STORE:
			n := len(f.Stack) - 1
			f.Locals[ins.A] = f.Stack[n]
			f.Stack = f.Stack[:n]

		case bytecode.POP:
			f.Stack = f.Stack[:len(f.Stack)-1]
		case bytecode.DUP:
			f.Stack = append(f.Stack, f.Stack[len(f.Stack)-1])
		case bytecode.DUP_X1:
			n := len(f.Stack)
			a, b := f.Stack[n-1], f.Stack[n-2]
			f.Stack[n-2] = a
			f.Stack[n-1] = b
			f.Stack = append(f.Stack, a)
		case bytecode.SWAP:
			n := len(f.Stack)
			f.Stack[n-1], f.Stack[n-2] = f.Stack[n-2], f.Stack[n-1]

		case bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.DIV, bytecode.REM,
			bytecode.AND, bytecode.OR, bytecode.XOR, bytecode.SHL, bytecode.SHR:
			n := len(f.Stack)
			b := f.Stack[n-1].Int()
			a := f.Stack[n-2].Int()
			var r int64
			switch ins.Op {
			case bytecode.ADD:
				r = a + b
			case bytecode.SUB:
				r = a - b
			case bytecode.MUL:
				r = a * b
			case bytecode.DIV:
				if b == 0 {
					v.kill(t, fmt.Errorf("vm: division by zero in %s", f.Method().FullName()))
					return
				}
				r = a / b
			case bytecode.REM:
				if b == 0 {
					v.kill(t, fmt.Errorf("vm: division by zero in %s", f.Method().FullName()))
					return
				}
				r = a % b
			case bytecode.AND:
				r = a & b
			case bytecode.OR:
				r = a | b
			case bytecode.XOR:
				r = a ^ b
			case bytecode.SHL:
				r = a << uint(b&63)
			case bytecode.SHR:
				r = a >> uint(b&63)
			}
			f.Stack[n-2] = rt.IntVal(r)
			f.Stack = f.Stack[:n-1]
		case bytecode.NEG:
			n := len(f.Stack)
			f.Stack[n-1] = rt.IntVal(-f.Stack[n-1].Int())

		case bytecode.GOTO:
			if v.branch(f, int(ins.A), &budget) {
				return
			}
			continue
		case bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT, bytecode.IFLE,
			bytecode.IFGT, bytecode.IFGE:
			n := len(f.Stack) - 1
			a := f.Stack[n].Int()
			f.Stack = f.Stack[:n]
			var taken bool
			switch ins.Op {
			case bytecode.IFEQ:
				taken = a == 0
			case bytecode.IFNE:
				taken = a != 0
			case bytecode.IFLT:
				taken = a < 0
			case bytecode.IFLE:
				taken = a <= 0
			case bytecode.IFGT:
				taken = a > 0
			case bytecode.IFGE:
				taken = a >= 0
			}
			if taken {
				if v.branch(f, int(ins.A), &budget) {
					return
				}
				continue
			}
		case bytecode.IF_ICMPEQ, bytecode.IF_ICMPNE, bytecode.IF_ICMPLT,
			bytecode.IF_ICMPLE, bytecode.IF_ICMPGT, bytecode.IF_ICMPGE:
			n := len(f.Stack)
			b := f.Stack[n-1].Int()
			a := f.Stack[n-2].Int()
			f.Stack = f.Stack[:n-2]
			var taken bool
			switch ins.Op {
			case bytecode.IF_ICMPEQ:
				taken = a == b
			case bytecode.IF_ICMPNE:
				taken = a != b
			case bytecode.IF_ICMPLT:
				taken = a < b
			case bytecode.IF_ICMPLE:
				taken = a <= b
			case bytecode.IF_ICMPGT:
				taken = a > b
			case bytecode.IF_ICMPGE:
				taken = a >= b
			}
			if taken {
				if v.branch(f, int(ins.A), &budget) {
					return
				}
				continue
			}
		case bytecode.IF_ACMPEQ, bytecode.IF_ACMPNE:
			n := len(f.Stack)
			b := f.Stack[n-1].Ref()
			a := f.Stack[n-2].Ref()
			f.Stack = f.Stack[:n-2]
			taken := a == b
			if ins.Op == bytecode.IF_ACMPNE {
				taken = !taken
			}
			if taken {
				if v.branch(f, int(ins.A), &budget) {
					return
				}
				continue
			}
		case bytecode.IFNULL, bytecode.IFNONNULL:
			n := len(f.Stack) - 1
			a := f.Stack[n].Ref()
			f.Stack = f.Stack[:n]
			taken := a == rt.Null
			if ins.Op == bytecode.IFNONNULL {
				taken = !taken
			}
			if taken {
				if v.branch(f, int(ins.A), &budget) {
					return
				}
				continue
			}

		case bytecode.NEW_R:
			a, err := v.allocObject(ins.Cls)
			if err != nil {
				v.kill(t, err)
				return
			}
			f.Stack = append(f.Stack, rt.RefVal(a))
		case bytecode.NEWARRAY_R:
			n := len(f.Stack) - 1
			cnt := f.Stack[n].Int()
			f.Stack = f.Stack[:n]
			a, err := v.allocArray(ins.B == 1, int(cnt))
			if err != nil {
				v.kill(t, err)
				return
			}
			f.Stack = append(f.Stack, rt.RefVal(a))
		case bytecode.ARRAYLEN:
			n := len(f.Stack) - 1
			a := f.Stack[n].Ref()
			if a == rt.Null {
				v.kill(t, fmt.Errorf("vm: null dereference (arraylen) in %s", f.Method().FullName()))
				return
			}
			f.Stack[n] = rt.IntVal(int64(v.Heap.ArrayLen(a)))
		case bytecode.AGET:
			n := len(f.Stack)
			i := f.Stack[n-1].Int()
			a := f.Stack[n-2].Ref()
			if a == rt.Null {
				v.kill(t, fmt.Errorf("vm: null dereference (aget) in %s", f.Method().FullName()))
				return
			}
			if i < 0 || int(i) >= v.Heap.ArrayLen(a) {
				v.kill(t, fmt.Errorf("vm: index %d out of bounds (len %d) in %s", i, v.Heap.ArrayLen(a), f.Method().FullName()))
				return
			}
			if v.DSULazyTouch != nil && v.Heap.Untransformed(a) {
				if err := v.DSULazyTouch(a); err != nil {
					v.kill(t, fmt.Errorf("vm: lazy transform (aget) @%d in %s: %w", a, f.Method().FullName(), err))
					return
				}
			}
			f.Stack[n-2] = v.Heap.Elem(a, int(i))
			f.Stack = f.Stack[:n-1]
		case bytecode.ASET:
			n := len(f.Stack)
			val := f.Stack[n-1]
			i := f.Stack[n-2].Int()
			a := f.Stack[n-3].Ref()
			f.Stack = f.Stack[:n-3]
			if a == rt.Null {
				v.kill(t, fmt.Errorf("vm: null dereference (aset) in %s", f.Method().FullName()))
				return
			}
			if i < 0 || int(i) >= v.Heap.ArrayLen(a) {
				v.kill(t, fmt.Errorf("vm: index %d out of bounds (len %d) in %s", i, v.Heap.ArrayLen(a), f.Method().FullName()))
				return
			}
			if v.DSULazyTouch != nil && v.Heap.Untransformed(a) {
				if err := v.DSULazyTouch(a); err != nil {
					v.kill(t, fmt.Errorf("vm: lazy transform (aset) @%d in %s: %w", a, f.Method().FullName(), err))
					return
				}
			}
			v.Heap.SetElem(a, int(i), val)

		case bytecode.GETFIELD_R:
			n := len(f.Stack) - 1
			a := f.Stack[n].Ref()
			if a == rt.Null {
				v.kill(t, fmt.Errorf("vm: null dereference (getfield) in %s pc=%d", f.Method().FullName(), f.PC))
				return
			}
			if v.IndirectionCheck {
				v.indirectionProbe(a)
			}
			if v.DSULazyTouch != nil && v.Heap.Untransformed(a) {
				if err := v.DSULazyTouch(a); err != nil {
					v.kill(t, fmt.Errorf("vm: lazy transform (getfield) @%d in %s: %w", a, f.Method().FullName(), err))
					return
				}
			}
			f.Stack[n] = v.Heap.FieldValue(a, int(ins.A), ins.B == 1)
		case bytecode.PUTFIELD_R:
			n := len(f.Stack)
			val := f.Stack[n-1]
			a := f.Stack[n-2].Ref()
			f.Stack = f.Stack[:n-2]
			if a == rt.Null {
				v.kill(t, fmt.Errorf("vm: null dereference (putfield) in %s pc=%d", f.Method().FullName(), f.PC))
				return
			}
			if v.IndirectionCheck {
				v.indirectionProbe(a)
			}
			if v.DSULazyTouch != nil && v.Heap.Untransformed(a) {
				if err := v.DSULazyTouch(a); err != nil {
					v.kill(t, fmt.Errorf("vm: lazy transform (putfield) @%d in %s: %w", a, f.Method().FullName(), err))
					return
				}
			}
			v.Heap.SetFieldValue(a, int(ins.A), val)
		case bytecode.GETSTATIC_R:
			f.Stack = append(f.Stack, v.Reg.JTOC[ins.A])
		case bytecode.PUTSTATIC_R:
			n := len(f.Stack) - 1
			val := f.Stack[n]
			f.Stack = f.Stack[:n]
			v.Reg.JTOC[ins.A] = rt.Value{Bits: val.Bits, IsRef: ins.B == 1}

		case bytecode.INSTOF_R:
			n := len(f.Stack) - 1
			a := f.Stack[n].Ref()
			res := false
			if a != rt.Null && !v.Heap.IsArray(a) {
				cls := v.Reg.ClassByID(v.Heap.ClassID(a))
				res = cls != nil && cls.IsSubclassOf(ins.Cls)
			} else if a != rt.Null && v.Heap.IsArray(a) {
				res = ins.Cls.Name == "Object"
			}
			f.Stack[n] = rt.BoolVal(res)
		case bytecode.CHECKCAST_R:
			a := f.Stack[len(f.Stack)-1].Ref()
			if a != rt.Null {
				ok := false
				if v.Heap.IsArray(a) {
					ok = ins.Cls.Name == "Object"
				} else {
					cls := v.Reg.ClassByID(v.Heap.ClassID(a))
					ok = cls != nil && cls.IsSubclassOf(ins.Cls)
				}
				if !ok {
					v.kill(t, fmt.Errorf("vm: checkcast to %s failed in %s", ins.Cls.Name, f.Method().FullName()))
					return
				}
			}

		case bytecode.INVOKEVIRT_R:
			nargs := int(ins.B)
			recv := f.Stack[len(f.Stack)-nargs]
			if recv.Ref() == rt.Null {
				v.kill(t, fmt.Errorf("vm: null receiver calling %s in %s", ins.Ref.FullName(), f.Method().FullName()))
				return
			}
			if v.Heap.IsArray(recv.Ref()) {
				v.kill(t, fmt.Errorf("vm: virtual call on array in %s", f.Method().FullName()))
				return
			}
			// Dispatch itself would be correct without the barrier (the shell
			// already carries the new class id), but the callee is about to
			// read stale fields — transform the receiver before entry.
			if v.DSULazyTouch != nil && v.Heap.Untransformed(recv.Ref()) {
				if err := v.DSULazyTouch(recv.Ref()); err != nil {
					v.kill(t, fmt.Errorf("vm: lazy transform (invokevirt %s) @%d in %s: %w", ins.Ref.FullName(), recv.Ref(), f.Method().FullName(), err))
					return
				}
			}
			// Inline-cache fast path (fused/opt code only; base code carries
			// no caches): a monomorphic hit is one class-id compare, the
			// polymorphic stub a short linear scan, and only a miss pays the
			// registry + TIB lookup. Entries key on the receiver's class id —
			// ids are monotonic, so an updated class's instances (which carry
			// fresh ids) can never hit a stale entry, and the DSU install
			// phase flushes every cache anyway.
			target, ok := v.vdispatch(ins, recv.Ref())
			if !ok {
				v.kill(t, fmt.Errorf("vm: bad dispatch (class id %d, slot %d) in %s",
					v.Heap.ClassID(recv.Ref()), ins.A, f.Method().FullName()))
				return
			}
			if stop := v.invoke(t, f, target, nargs, &budget); stop {
				return
			}
			f = t.Frames[len(t.Frames)-1]
			continue
		case bytecode.INVOKESTAT_R, bytecode.INVOKESPEC_R:
			nargs := int(ins.B)
			if ins.Op == bytecode.INVOKESPEC_R {
				recv := f.Stack[len(f.Stack)-nargs]
				if recv.Ref() == rt.Null {
					v.kill(t, fmt.Errorf("vm: null receiver calling %s in %s", ins.Ref.FullName(), f.Method().FullName()))
					return
				}
			}
			// A class update replaces rt.Method objects; stale compiled
			// code is invalidated, so ins.Ref is always current here.
			if stop := v.invoke(t, f, ins.Ref, nargs, &budget); stop {
				return
			}
			f = t.Frames[len(t.Frames)-1]
			continue
		case bytecode.INVOKENAT_R:
			// Blocking natives park the thread with the args still on
			// the stack and the pc unchanged: the call retries on wake,
			// stopped at an instruction boundary (a VM safe point).
			if stop := v.invoke(t, f, ins.Ref, int(ins.B), &budget); stop {
				return
			}
			f = t.Frames[len(t.Frames)-1]
			continue

		case bytecode.ENTERINL_R:
			nargs := int(ins.B)
			base := int(ins.A)
			n := len(f.Stack)
			copy(f.Locals[base:base+nargs], f.Stack[n-nargs:])
			f.Stack = f.Stack[:n-nargs]

		case bytecode.RETURN:
			var ret rt.Value
			if !ins.RetVoid {
				n := len(f.Stack) - 1
				ret = f.Stack[n]
				f.Stack = f.Stack[:n]
			}
			popped := t.pop()
			if len(t.Frames) > 0 {
				f = t.Frames[len(t.Frames)-1]
				if !ins.RetVoid {
					f.Stack = append(f.Stack, ret)
				}
			}
			if popped.Barrier && v.updatePending {
				// Return barrier fired: park the thread and let the
				// DSU engine retry at the next scheduling boundary.
				v.tracef("return barrier fired in %s (thread %d)", popped.Method().FullName(), t.ID)
				v.Rec.Emit(obs.KBarrierFired, obs.LaneThread(t.ID), 0, popped.Method().FullName())
				if len(t.Frames) == 0 {
					t.State = Dead
				} else {
					t.State = UpdateWait
				}
				return
			}
			if len(t.Frames) == 0 {
				t.State = Dead
				return
			}
			// Method-exit yield point.
			budget--
			if budget <= 0 || v.yieldFlag {
				return
			}
			continue

		case bytecode.TRAP:
			v.kill(t, fmt.Errorf("vm: trap in %s: %s", f.Method().FullName(), ins.Str))
			return
		case bytecode.YIELD:
			f.PC++
			budget--
			if budget <= 0 || v.yieldFlag {
				return
			}
			continue

		// --- fused superinstructions (fused/opt tiers only) --------------
		//
		// Each executes both constituents of a fused pair in one dispatch
		// and skips the FPAD slot (pc += 2). Logical instruction accounting
		// stays identical to unfused execution: the loop top counted the
		// first constituent; each handler counts the second exactly when it
		// begins, so a kill mid-pair leaves the same step totals as base
		// code — what keeps storm reports byte-identical across tiers.
		// Yield semantics are unchanged too: only backedges and calls touch
		// the budget, and fused backedge tests compare against the second
		// constituent's pc (f.PC+1), exactly where the branch used to live.

		case bytecode.FPAD:
			// Padding slot of a fused pair. Never branched to (the fusion
			// pass refuses branch-target seconds) and never reached
			// linearly (handlers skip it); behaves as a nop defensively.

		case bytecode.FCONSTARITH:
			t.Steps++
			v.TotalSteps++
			n := len(f.Stack) - 1
			a := f.Stack[n].Int()
			b := ins.A
			var r int64
			switch bytecode.Op(ins.C) {
			case bytecode.ADD:
				r = a + b
			case bytecode.SUB:
				r = a - b
			case bytecode.MUL:
				r = a * b
			case bytecode.DIV:
				r = a / b // b != 0: the fusion pass refuses zero divisors
			case bytecode.REM:
				r = a % b
			case bytecode.AND:
				r = a & b
			case bytecode.OR:
				r = a | b
			case bytecode.XOR:
				r = a ^ b
			case bytecode.SHL:
				r = a << uint(b&63)
			case bytecode.SHR:
				r = a >> uint(b&63)
			}
			f.Stack[n] = rt.IntVal(r)
			f.PC += 2
			continue

		case bytecode.FLOADLOAD:
			t.Steps++
			v.TotalSteps++
			f.Stack = append(f.Stack, f.Locals[ins.A], f.Locals[ins.C])
			f.PC += 2
			continue

		case bytecode.FLOADLOADARITH:
			// load A; load C; arith B — three constituents, one dispatch.
			// No constituent can trap (DIV/REM never chain), so the extra
			// two steps are counted up front.
			t.Steps += 2
			v.TotalSteps += 2
			a := f.Locals[ins.A].Int()
			b := f.Locals[ins.C].Int()
			var r int64
			switch bytecode.Op(ins.B) {
			case bytecode.ADD:
				r = a + b
			case bytecode.SUB:
				r = a - b
			case bytecode.MUL:
				r = a * b
			case bytecode.AND:
				r = a & b
			case bytecode.OR:
				r = a | b
			case bytecode.XOR:
				r = a ^ b
			case bytecode.SHL:
				r = a << uint(b&63)
			case bytecode.SHR:
				r = a >> uint(b&63)
			}
			f.Stack = append(f.Stack, rt.IntVal(r))
			f.PC += 3
			continue

		case bytecode.FCONSTARITH2:
			// const A, arith lo(B); const C, arith hi(B) — two chained
			// const+arith pairs rewriting the stack top in place. Divisors
			// were proven nonzero at fusion time, so nothing can trap.
			t.Steps += 3
			v.TotalSteps += 3
			n := len(f.Stack) - 1
			a := f.Stack[n].Int()
			r := fconstArith(a, ins.A, bytecode.Op(ins.B&0xff))
			r = fconstArith(r, int64(ins.C), bytecode.Op(ins.B>>8))
			f.Stack[n] = rt.IntVal(r)
			f.PC += 4
			continue

		case bytecode.FSTORELOAD:
			t.Steps++
			v.TotalSteps++
			n := len(f.Stack) - 1
			f.Locals[ins.A] = f.Stack[n]
			f.Stack[n] = f.Locals[ins.C]
			f.PC += 2
			continue

		case bytecode.FSTOREGOTO:
			t.Steps++
			v.TotalSteps++
			n := len(f.Stack) - 1
			f.Locals[ins.A] = f.Stack[n]
			f.Stack = f.Stack[:n]
			target := int(ins.C)
			backedge := target <= f.PC+1
			f.PC = target
			if backedge {
				budget--
				if budget <= 0 || v.yieldFlag {
					return
				}
			}
			continue

		case bytecode.FLOADCMPBR:
			t.Steps++
			v.TotalSteps++
			cond := bytecode.Op(ins.B)
			loaded := f.Locals[ins.C]
			var taken bool
			switch cond {
			case bytecode.IFEQ:
				taken = loaded.Int() == 0
			case bytecode.IFNE:
				taken = loaded.Int() != 0
			case bytecode.IFLT:
				taken = loaded.Int() < 0
			case bytecode.IFLE:
				taken = loaded.Int() <= 0
			case bytecode.IFGT:
				taken = loaded.Int() > 0
			case bytecode.IFGE:
				taken = loaded.Int() >= 0
			case bytecode.IFNULL:
				taken = loaded.Ref() == rt.Null
			case bytecode.IFNONNULL:
				taken = loaded.Ref() != rt.Null
			case bytecode.IF_ACMPEQ, bytecode.IF_ACMPNE:
				n := len(f.Stack) - 1
				taken = f.Stack[n].Ref() == loaded.Ref()
				f.Stack = f.Stack[:n]
				if cond == bytecode.IF_ACMPNE {
					taken = !taken
				}
			default: // IF_ICMPEQ..IF_ICMPGE: stack value vs loaded local
				n := len(f.Stack) - 1
				a := f.Stack[n].Int()
				b := loaded.Int()
				f.Stack = f.Stack[:n]
				switch cond {
				case bytecode.IF_ICMPEQ:
					taken = a == b
				case bytecode.IF_ICMPNE:
					taken = a != b
				case bytecode.IF_ICMPLT:
					taken = a < b
				case bytecode.IF_ICMPLE:
					taken = a <= b
				case bytecode.IF_ICMPGT:
					taken = a > b
				case bytecode.IF_ICMPGE:
					taken = a >= b
				}
			}
			if taken {
				target := int(ins.A)
				backedge := target <= f.PC+1
				f.PC = target
				if backedge {
					budget--
					if budget <= 0 || v.yieldFlag {
						return
					}
				}
				continue
			}
			f.PC += 2
			continue

		case bytecode.FCONSTCMPBR:
			t.Steps++
			v.TotalSteps++
			n := len(f.Stack) - 1
			a := f.Stack[n].Int()
			b := ins.A
			f.Stack = f.Stack[:n]
			var taken bool
			switch bytecode.Op(ins.B) {
			case bytecode.IF_ICMPEQ:
				taken = a == b
			case bytecode.IF_ICMPNE:
				taken = a != b
			case bytecode.IF_ICMPLT:
				taken = a < b
			case bytecode.IF_ICMPLE:
				taken = a <= b
			case bytecode.IF_ICMPGT:
				taken = a > b
			case bytecode.IF_ICMPGE:
				taken = a >= b
			}
			if taken {
				target := int(ins.C)
				backedge := target <= f.PC+1
				f.PC = target
				if backedge {
					budget--
					if budget <= 0 || v.yieldFlag {
						return
					}
				}
				continue
			}
			f.PC += 2
			continue

		case bytecode.FGETGET:
			n := len(f.Stack) - 1
			a := f.Stack[n].Ref()
			if a == rt.Null {
				v.kill(t, fmt.Errorf("vm: null dereference (getfield) in %s pc=%d", f.Method().FullName(), f.PC))
				return
			}
			if v.IndirectionCheck {
				v.indirectionProbe(a)
			}
			if v.DSULazyTouch != nil && v.Heap.Untransformed(a) {
				if err := v.DSULazyTouch(a); err != nil {
					v.kill(t, fmt.Errorf("vm: lazy transform (getfield) @%d in %s: %w", a, f.Method().FullName(), err))
					return
				}
			}
			mid := v.Heap.FieldValue(a, int(ins.A), true).Ref()
			// Second constituent begins here — counted only now so a kill
			// on the first getfield leaves base-identical step totals.
			t.Steps++
			v.TotalSteps++
			if mid == rt.Null {
				v.kill(t, fmt.Errorf("vm: null dereference (getfield) in %s pc=%d", f.Method().FullName(), f.PC))
				return
			}
			if v.IndirectionCheck {
				v.indirectionProbe(mid)
			}
			if v.DSULazyTouch != nil && v.Heap.Untransformed(mid) {
				if err := v.DSULazyTouch(mid); err != nil {
					v.kill(t, fmt.Errorf("vm: lazy transform (getfield) @%d in %s: %w", mid, f.Method().FullName(), err))
					return
				}
			}
			f.Stack[n] = v.Heap.FieldValue(mid, int(ins.C), ins.B == 1)
			f.PC += 2
			continue

		case bytecode.FLOADINVOKE:
			f.Stack = append(f.Stack, f.Locals[ins.C])
			// Second constituent (the invoke) begins here.
			t.Steps++
			v.TotalSteps++
			nargs := int(ins.B)
			recv := f.Stack[len(f.Stack)-nargs]
			if recv.Ref() == rt.Null {
				v.kill(t, fmt.Errorf("vm: null receiver calling %s in %s", ins.Ref.FullName(), f.Method().FullName()))
				return
			}
			if v.Heap.IsArray(recv.Ref()) {
				v.kill(t, fmt.Errorf("vm: virtual call on array in %s", f.Method().FullName()))
				return
			}
			if v.DSULazyTouch != nil && v.Heap.Untransformed(recv.Ref()) {
				if err := v.DSULazyTouch(recv.Ref()); err != nil {
					v.kill(t, fmt.Errorf("vm: lazy transform (invokevirt %s) @%d in %s: %w", ins.Ref.FullName(), recv.Ref(), f.Method().FullName(), err))
					return
				}
			}
			target, ok := v.vdispatch(ins, recv.Ref())
			if !ok {
				v.kill(t, fmt.Errorf("vm: bad dispatch (class id %d, slot %d) in %s",
					v.Heap.ClassID(recv.Ref()), ins.A, f.Method().FullName()))
				return
			}
			if target.Def.Native {
				// A virtual dispatch can land on a native override. invoke's
				// blocking-native protocol retries at an unchanged pc with
				// the args still stacked — for the fused form the retry
				// re-runs the load too, so the pushed local must come back
				// off first.
				n := len(f.Stack)
				if stop := v.invoke(t, f, target, nargs, &budget); stop {
					if t.State == Blocked {
						f.Stack = f.Stack[:n-1]
					}
					return
				}
				f.PC++ // skip the FPAD: invoke's native path stepped to it
				f = t.Frames[len(t.Frames)-1]
				continue
			}
			f.PC++ // the callee returns past the FPAD slot
			if stop := v.invoke(t, f, target, nargs, &budget); stop {
				return
			}
			f = t.Frames[len(t.Frames)-1]
			continue

		default:
			v.kill(t, fmt.Errorf("vm: cannot execute opcode %s in %s (unresolved code?)", ins.Op, f.Method().FullName()))
			return
		}
		f.PC++
	}
}

// branch moves the pc; taken backedges are yield points. It reports whether
// the interpreter should return to the scheduler.
func (v *VM) branch(f *Frame, target int, budget *int) bool {
	backedge := target <= f.PC
	f.PC = target
	if backedge {
		*budget--
		if *budget <= 0 || v.yieldFlag {
			return true
		}
	}
	return false
}

// invoke pushes an activation of target consuming nargs stacked arguments.
// A virtual dispatch may land on a native method; those execute inline. It
// reports whether the interpreter should return to the scheduler (entry
// yield point, block, or error).
func (v *VM) invoke(t *Thread, f *Frame, target *rt.Method, nargs int, budget *int) bool {
	if target.Def.Native {
		args := f.Stack[len(f.Stack)-nargs:]
		fn := v.natives[nativeKey(target)]
		if fn == nil {
			v.kill(t, fmt.Errorf("vm: unbound native %s", target.FullName()))
			return true
		}
		ret, block, err := fn(v, t, args)
		if err != nil {
			v.kill(t, fmt.Errorf("vm: native %s: %w", target.FullName(), err))
			return true
		}
		if block != nil {
			t.State = Blocked
			t.WakeWhen = block
			return true // pc unchanged; the call retries on wake
		}
		if t.State == Dead {
			return true // the native terminated the thread (System.exit)
		}
		f.Stack = f.Stack[:len(f.Stack)-nargs]
		if target.Def.Sig.Ret() != "V" {
			f.Stack = append(f.Stack, ret)
		}
		f.PC++
		return false
	}
	f.PC++ // the call completes; the callee returns past it
	cm, err := v.resolveCompiled(target)
	if err != nil {
		v.kill(t, err)
		return true
	}
	nf := &Frame{CM: cm, Locals: make([]rt.Value, cm.MaxLocals)}
	copy(nf.Locals, f.Stack[len(f.Stack)-nargs:])
	f.Stack = f.Stack[:len(f.Stack)-nargs]
	t.push(nf)
	// Method-entry yield point.
	*budget--
	return *budget <= 0 || v.yieldFlag
}

// vdispatch resolves a virtual call site against the receiver's dynamic
// class — through the site's inline cache when the code carries one
// (fused/opt tiers), falling back to the registry + TIB lookup. A miss at
// a cached site installs the resolution: the first fills the monomorphic
// slot, later ones grow the polymorphic stub until the cache is full
// (megamorphic sites pay the TIB lookup every time). Hit/miss counters are
// plain VM fields, published to the metrics registry off the hot path.
func (v *VM) vdispatch(ins *rt.Ins, recv rt.Addr) (*rt.Method, bool) {
	cid := v.Heap.ClassID(recv)
	ic := ins.IC
	if ic != nil && ic.N > 0 {
		if ic.Entries[0].ClassID == cid {
			v.icHits++
			return ic.Entries[0].Target, true
		}
		for i := 1; i < ic.N; i++ {
			if ic.Entries[i].ClassID == cid {
				v.icHits++
				return ic.Entries[i].Target, true
			}
		}
	}
	cls := v.Reg.ClassByID(cid)
	if cls == nil || int(ins.A) >= len(cls.TIB) {
		return nil, false
	}
	target := cls.TIB[ins.A]
	if ic != nil {
		v.icMisses++
		if ic.N < len(ic.Entries) {
			ic.Entries[ic.N] = rt.ICEntry{ClassID: cid, Target: target}
			ic.N++
		}
	}
	return target, true
}

// indirectionProbe simulates the per-dereference cost of lazy-update DSU
// systems. JDrums "traps all object pointer dereferences to apply VM object
// transformer function(s) when the object's class changes": an out-of-line
// call per access that reads the object header, resolves its class, and
// tests whether it needs transformation. It exists only for the ablation
// experiment; JVOLVE's eager design has no analog on the hot path.
//
//go:noinline
func (v *VM) indirectionProbe(a rt.Addr) {
	v.indirections++
	cls := v.Reg.ClassByID(v.Heap.ClassID(a))
	if cls != nil && cls.UpdatedTo != nil {
		// A lazy system would transform here; the eager system never
		// reaches this line during steady state.
		v.indirections++
	}
}
