package vm

import (
	"fmt"

	"govolve/internal/bytecode"
	"govolve/internal/rt"
)

// interpret executes instructions of thread t until the yield budget is
// exhausted at a yield point, the thread blocks, dies, or parks on a return
// barrier. Yield points are method entry, method exit, taken loop backedges,
// and explicit YIELDs — Jikes RVM's yield point placement.
func (v *VM) interpret(t *Thread, budget int) {
	kill := func(err error) {
		t.State = Dead
		t.Err = err
		v.tracef("thread %d killed: %v", t.ID, err)
	}

	for {
		if len(t.Frames) == 0 {
			t.State = Dead
			return
		}
		f := t.Frames[len(t.Frames)-1]
		if f.PC < 0 || f.PC >= len(f.CM.Code) {
			kill(fmt.Errorf("vm: pc %d out of range in %s", f.PC, f.Method().FullName()))
			return
		}
		ins := f.CM.Code[f.PC]
		t.Steps++
		v.TotalSteps++

		// Stack helpers. Verified code cannot underflow, but compiled
		// code could be produced by a buggy pipeline; fail safely.
		pop := func() rt.Value {
			n := len(f.Stack)
			val := f.Stack[n-1]
			f.Stack = f.Stack[:n-1]
			return val
		}
		push := func(val rt.Value) { f.Stack = append(f.Stack, val) }

		if len(f.Stack) < stackNeed(ins) {
			kill(fmt.Errorf("vm: operand stack underflow at %s pc=%d", f.Method().FullName(), f.PC))
			return
		}

		switch ins.Op {
		case bytecode.NOP, bytecode.LEAVEINL_R:
			// nothing

		case bytecode.CONST, bytecode.CONST_R:
			push(rt.IntVal(ins.A))
		case bytecode.NULL:
			push(rt.NullVal)
		case bytecode.LDC_R:
			root := &v.Reg.InternRoots[ins.A]
			if root.Bits == 0 {
				a, err := v.NewString(v.Reg.InternLits[ins.A])
				if err != nil {
					kill(err)
					return
				}
				*root = rt.RefVal(a)
			}
			push(*root)

		case bytecode.LOAD:
			push(f.Locals[ins.A])
		case bytecode.STORE:
			f.Locals[ins.A] = pop()

		case bytecode.POP:
			pop()
		case bytecode.DUP:
			val := f.Stack[len(f.Stack)-1]
			push(val)
		case bytecode.DUP_X1:
			a := pop()
			b := pop()
			push(a)
			push(b)
			push(a)
		case bytecode.SWAP:
			a := pop()
			b := pop()
			push(a)
			push(b)

		case bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.DIV, bytecode.REM,
			bytecode.AND, bytecode.OR, bytecode.XOR, bytecode.SHL, bytecode.SHR:
			b := pop().Int()
			a := pop().Int()
			var r int64
			switch ins.Op {
			case bytecode.ADD:
				r = a + b
			case bytecode.SUB:
				r = a - b
			case bytecode.MUL:
				r = a * b
			case bytecode.DIV:
				if b == 0 {
					kill(fmt.Errorf("vm: division by zero in %s", f.Method().FullName()))
					return
				}
				r = a / b
			case bytecode.REM:
				if b == 0 {
					kill(fmt.Errorf("vm: division by zero in %s", f.Method().FullName()))
					return
				}
				r = a % b
			case bytecode.AND:
				r = a & b
			case bytecode.OR:
				r = a | b
			case bytecode.XOR:
				r = a ^ b
			case bytecode.SHL:
				r = a << uint(b&63)
			case bytecode.SHR:
				r = a >> uint(b&63)
			}
			push(rt.IntVal(r))
		case bytecode.NEG:
			push(rt.IntVal(-pop().Int()))

		case bytecode.GOTO:
			if v.branch(t, f, int(ins.A), &budget) {
				return
			}
			continue
		case bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT, bytecode.IFLE,
			bytecode.IFGT, bytecode.IFGE:
			a := pop().Int()
			var taken bool
			switch ins.Op {
			case bytecode.IFEQ:
				taken = a == 0
			case bytecode.IFNE:
				taken = a != 0
			case bytecode.IFLT:
				taken = a < 0
			case bytecode.IFLE:
				taken = a <= 0
			case bytecode.IFGT:
				taken = a > 0
			case bytecode.IFGE:
				taken = a >= 0
			}
			if taken {
				if v.branch(t, f, int(ins.A), &budget) {
					return
				}
				continue
			}
		case bytecode.IF_ICMPEQ, bytecode.IF_ICMPNE, bytecode.IF_ICMPLT,
			bytecode.IF_ICMPLE, bytecode.IF_ICMPGT, bytecode.IF_ICMPGE:
			b := pop().Int()
			a := pop().Int()
			var taken bool
			switch ins.Op {
			case bytecode.IF_ICMPEQ:
				taken = a == b
			case bytecode.IF_ICMPNE:
				taken = a != b
			case bytecode.IF_ICMPLT:
				taken = a < b
			case bytecode.IF_ICMPLE:
				taken = a <= b
			case bytecode.IF_ICMPGT:
				taken = a > b
			case bytecode.IF_ICMPGE:
				taken = a >= b
			}
			if taken {
				if v.branch(t, f, int(ins.A), &budget) {
					return
				}
				continue
			}
		case bytecode.IF_ACMPEQ, bytecode.IF_ACMPNE:
			b := pop().Ref()
			a := pop().Ref()
			taken := a == b
			if ins.Op == bytecode.IF_ACMPNE {
				taken = !taken
			}
			if taken {
				if v.branch(t, f, int(ins.A), &budget) {
					return
				}
				continue
			}
		case bytecode.IFNULL, bytecode.IFNONNULL:
			a := pop().Ref()
			taken := a == rt.Null
			if ins.Op == bytecode.IFNONNULL {
				taken = !taken
			}
			if taken {
				if v.branch(t, f, int(ins.A), &budget) {
					return
				}
				continue
			}

		case bytecode.NEW_R:
			a, err := v.allocObject(ins.Cls)
			if err != nil {
				kill(err)
				return
			}
			push(rt.RefVal(a))
		case bytecode.NEWARRAY_R:
			n := pop().Int()
			a, err := v.allocArray(ins.B == 1, int(n))
			if err != nil {
				kill(err)
				return
			}
			push(rt.RefVal(a))
		case bytecode.ARRAYLEN:
			a := pop().Ref()
			if a == rt.Null {
				kill(fmt.Errorf("vm: null dereference (arraylen) in %s", f.Method().FullName()))
				return
			}
			push(rt.IntVal(int64(v.Heap.ArrayLen(a))))
		case bytecode.AGET:
			i := pop().Int()
			a := pop().Ref()
			if a == rt.Null {
				kill(fmt.Errorf("vm: null dereference (aget) in %s", f.Method().FullName()))
				return
			}
			if i < 0 || int(i) >= v.Heap.ArrayLen(a) {
				kill(fmt.Errorf("vm: index %d out of bounds (len %d) in %s", i, v.Heap.ArrayLen(a), f.Method().FullName()))
				return
			}
			push(v.Heap.Elem(a, int(i)))
		case bytecode.ASET:
			val := pop()
			i := pop().Int()
			a := pop().Ref()
			if a == rt.Null {
				kill(fmt.Errorf("vm: null dereference (aset) in %s", f.Method().FullName()))
				return
			}
			if i < 0 || int(i) >= v.Heap.ArrayLen(a) {
				kill(fmt.Errorf("vm: index %d out of bounds (len %d) in %s", i, v.Heap.ArrayLen(a), f.Method().FullName()))
				return
			}
			v.Heap.SetElem(a, int(i), val)

		case bytecode.GETFIELD_R:
			a := pop().Ref()
			if a == rt.Null {
				kill(fmt.Errorf("vm: null dereference (getfield) in %s pc=%d", f.Method().FullName(), f.PC))
				return
			}
			if v.IndirectionCheck {
				v.indirectionProbe(a)
			}
			push(v.Heap.FieldValue(a, int(ins.A), ins.B == 1))
		case bytecode.PUTFIELD_R:
			val := pop()
			a := pop().Ref()
			if a == rt.Null {
				kill(fmt.Errorf("vm: null dereference (putfield) in %s pc=%d", f.Method().FullName(), f.PC))
				return
			}
			if v.IndirectionCheck {
				v.indirectionProbe(a)
			}
			v.Heap.SetFieldValue(a, int(ins.A), val)
		case bytecode.GETSTATIC_R:
			push(v.Reg.JTOC[ins.A])
		case bytecode.PUTSTATIC_R:
			val := pop()
			v.Reg.JTOC[ins.A] = rt.Value{Bits: val.Bits, IsRef: ins.B == 1}

		case bytecode.INSTOF_R:
			a := pop().Ref()
			res := false
			if a != rt.Null && !v.Heap.IsArray(a) {
				cls := v.Reg.ClassByID(v.Heap.ClassID(a))
				res = cls != nil && cls.IsSubclassOf(ins.Cls)
			} else if a != rt.Null && v.Heap.IsArray(a) {
				res = ins.Cls.Name == "Object"
			}
			push(rt.BoolVal(res))
		case bytecode.CHECKCAST_R:
			a := f.Stack[len(f.Stack)-1].Ref()
			if a != rt.Null {
				ok := false
				if v.Heap.IsArray(a) {
					ok = ins.Cls.Name == "Object"
				} else {
					cls := v.Reg.ClassByID(v.Heap.ClassID(a))
					ok = cls != nil && cls.IsSubclassOf(ins.Cls)
				}
				if !ok {
					kill(fmt.Errorf("vm: checkcast to %s failed in %s", ins.Cls.Name, f.Method().FullName()))
					return
				}
			}

		case bytecode.INVOKEVIRT_R:
			nargs := int(ins.B)
			recv := f.Stack[len(f.Stack)-nargs]
			if recv.Ref() == rt.Null {
				kill(fmt.Errorf("vm: null receiver calling %s in %s", ins.Ref.FullName(), f.Method().FullName()))
				return
			}
			if v.Heap.IsArray(recv.Ref()) {
				kill(fmt.Errorf("vm: virtual call on array in %s", f.Method().FullName()))
				return
			}
			cls := v.Reg.ClassByID(v.Heap.ClassID(recv.Ref()))
			if cls == nil || int(ins.A) >= len(cls.TIB) {
				kill(fmt.Errorf("vm: bad dispatch (class id %d, slot %d) in %s",
					v.Heap.ClassID(recv.Ref()), ins.A, f.Method().FullName()))
				return
			}
			target := cls.TIB[ins.A]
			if stop := v.invoke(t, f, target, nargs, kill, &budget); stop {
				return
			}
			continue
		case bytecode.INVOKESTAT_R, bytecode.INVOKESPEC_R:
			nargs := int(ins.B)
			if ins.Op == bytecode.INVOKESPEC_R {
				recv := f.Stack[len(f.Stack)-nargs]
				if recv.Ref() == rt.Null {
					kill(fmt.Errorf("vm: null receiver calling %s in %s", ins.Ref.FullName(), f.Method().FullName()))
					return
				}
			}
			// A class update replaces rt.Method objects; stale compiled
			// code is invalidated, so ins.Ref is always current here.
			if stop := v.invoke(t, f, ins.Ref, nargs, kill, &budget); stop {
				return
			}
			continue
		case bytecode.INVOKENAT_R:
			// Blocking natives park the thread with the args still on
			// the stack and the pc unchanged: the call retries on wake,
			// stopped at an instruction boundary (a VM safe point).
			if stop := v.invoke(t, f, ins.Ref, int(ins.B), kill, &budget); stop {
				return
			}
			continue

		case bytecode.ENTERINL_R:
			nargs := int(ins.B)
			base := int(ins.A)
			for i := nargs - 1; i >= 0; i-- {
				f.Locals[base+i] = pop()
			}

		case bytecode.RETURN:
			var ret rt.Value
			if !ins.RetVoid {
				ret = pop()
			}
			popped := t.pop()
			if len(t.Frames) > 0 && !ins.RetVoid {
				caller := t.Frames[len(t.Frames)-1]
				caller.Stack = append(caller.Stack, ret)
			}
			if popped.Barrier && v.updatePending {
				// Return barrier fired: park the thread and let the
				// DSU engine retry at the next scheduling boundary.
				v.tracef("return barrier fired in %s (thread %d)", popped.Method().FullName(), t.ID)
				if len(t.Frames) == 0 {
					t.State = Dead
				} else {
					t.State = UpdateWait
				}
				return
			}
			if len(t.Frames) == 0 {
				t.State = Dead
				return
			}
			// Method-exit yield point.
			budget--
			if budget <= 0 || v.yieldFlag {
				return
			}
			continue

		case bytecode.TRAP:
			kill(fmt.Errorf("vm: trap in %s: %s", f.Method().FullName(), ins.Str))
			return
		case bytecode.YIELD:
			f.PC++
			budget--
			if budget <= 0 || v.yieldFlag {
				return
			}
			continue

		default:
			kill(fmt.Errorf("vm: cannot execute opcode %s in %s (unresolved code?)", ins.Op, f.Method().FullName()))
			return
		}
		f.PC++
	}
}

// branch moves the pc; taken backedges are yield points. It reports whether
// the interpreter should return to the scheduler.
func (v *VM) branch(t *Thread, f *Frame, target int, budget *int) bool {
	backedge := target <= f.PC
	f.PC = target
	if backedge {
		*budget--
		if *budget <= 0 || v.yieldFlag {
			return true
		}
	}
	return false
}

// invoke pushes an activation of target consuming nargs stacked arguments.
// A virtual dispatch may land on a native method; those execute inline. It
// reports whether the interpreter should return to the scheduler (entry
// yield point, block, or error).
func (v *VM) invoke(t *Thread, f *Frame, target *rt.Method, nargs int, kill func(error), budget *int) bool {
	if target.Def.Native {
		args := f.Stack[len(f.Stack)-nargs:]
		fn := v.natives[nativeKey(target)]
		if fn == nil {
			kill(fmt.Errorf("vm: unbound native %s", target.FullName()))
			return true
		}
		ret, block, err := fn(v, t, args)
		if err != nil {
			kill(fmt.Errorf("vm: native %s: %w", target.FullName(), err))
			return true
		}
		if block != nil {
			t.State = Blocked
			t.WakeWhen = block
			return true // pc unchanged; the call retries on wake
		}
		if t.State == Dead {
			return true // the native terminated the thread (System.exit)
		}
		f.Stack = f.Stack[:len(f.Stack)-nargs]
		if target.Def.Sig.Ret() != "V" {
			f.Stack = append(f.Stack, ret)
		}
		f.PC++
		return false
	}
	f.PC++ // the call completes; the callee returns past it
	cm, err := v.resolveCompiled(target)
	if err != nil {
		kill(err)
		return true
	}
	nf := &Frame{CM: cm, Locals: make([]rt.Value, cm.MaxLocals)}
	copy(nf.Locals, f.Stack[len(f.Stack)-nargs:])
	f.Stack = f.Stack[:len(f.Stack)-nargs]
	t.push(nf)
	// Method-entry yield point.
	*budget--
	return *budget <= 0 || v.yieldFlag
}

// stackNeed returns the minimum operand stack depth an instruction needs.
func stackNeed(ins rt.Ins) int {
	switch ins.Op {
	case bytecode.POP, bytecode.DUP, bytecode.STORE, bytecode.NEG,
		bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT, bytecode.IFLE,
		bytecode.IFGT, bytecode.IFGE, bytecode.IFNULL, bytecode.IFNONNULL,
		bytecode.ARRAYLEN, bytecode.GETFIELD_R, bytecode.NEWARRAY_R,
		bytecode.INSTOF_R, bytecode.CHECKCAST_R:
		return 1
	case bytecode.DUP_X1, bytecode.SWAP,
		bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.DIV, bytecode.REM,
		bytecode.AND, bytecode.OR, bytecode.XOR, bytecode.SHL, bytecode.SHR,
		bytecode.IF_ICMPEQ, bytecode.IF_ICMPNE, bytecode.IF_ICMPLT,
		bytecode.IF_ICMPLE, bytecode.IF_ICMPGT, bytecode.IF_ICMPGE,
		bytecode.IF_ACMPEQ, bytecode.IF_ACMPNE,
		bytecode.AGET, bytecode.PUTFIELD_R:
		return 2
	case bytecode.ASET:
		return 3
	case bytecode.RETURN:
		if ins.RetVoid {
			return 0
		}
		return 1
	case bytecode.PUTSTATIC_R:
		return 1
	case bytecode.INVOKEVIRT_R, bytecode.INVOKESTAT_R, bytecode.INVOKESPEC_R,
		bytecode.INVOKENAT_R, bytecode.ENTERINL_R:
		return int(ins.B)
	default:
		return 0
	}
}

// indirectionProbe simulates the per-dereference cost of lazy-update DSU
// systems. JDrums "traps all object pointer dereferences to apply VM object
// transformer function(s) when the object's class changes": an out-of-line
// call per access that reads the object header, resolves its class, and
// tests whether it needs transformation. It exists only for the ablation
// experiment; JVOLVE's eager design has no analog on the hot path.
//
//go:noinline
func (v *VM) indirectionProbe(a rt.Addr) {
	v.indirections++
	cls := v.Reg.ClassByID(v.Heap.ClassID(a))
	if cls != nil && cls.UpdatedTo != nil {
		// A lazy system would transform here; the eager system never
		// reaches this line during steady state.
		v.indirections++
	}
}
