package vm

import (
	"fmt"

	"govolve/internal/rt"
)

// stringClass returns the bootstrap String class.
func (v *VM) stringClass() *rt.Class { return v.strCls }

// NewString allocates a String object holding the given Go string. Each
// rune occupies one word of the backing char array.
func (v *VM) NewString(s string) (rt.Addr, error) {
	runes := []rune(s)
	arr, err := v.allocArray(false, len(runes))
	if err != nil {
		return 0, err
	}
	for i, r := range runes {
		v.Heap.SetElem(arr, i, rt.IntVal(int64(r)))
	}
	h := v.PushHandle(arr)
	obj, err := v.allocObject(v.strCls)
	if err != nil {
		v.PopHandle(1)
		return 0, err
	}
	v.Heap.SetFieldValue(obj, v.strCharsOff, rt.RefVal(h.Ref()))
	v.PopHandle(1)
	return obj, nil
}

// GoString reads a String object back into a Go string. It accepts null
// (returning "" and false).
func (v *VM) GoString(a rt.Addr) (string, bool) {
	if a == rt.Null {
		return "", false
	}
	arr := v.Heap.FieldValue(a, v.strCharsOff, true).Ref()
	if arr == rt.Null {
		return "", true
	}
	n := v.Heap.ArrayLen(arr)
	runes := make([]rune, n)
	for i := 0; i < n; i++ {
		runes[i] = rune(v.Heap.Elem(arr, i).Int())
	}
	return string(runes), true
}

// MustGoString reads a String object, failing on null.
func (v *VM) MustGoString(a rt.Addr) (string, error) {
	s, ok := v.GoString(a)
	if !ok {
		return "", fmt.Errorf("vm: null String")
	}
	return s, nil
}
