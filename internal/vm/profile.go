package vm

// Scheduler-side half of the version-attributed sampling profiler
// (obs.Profiler). The scheduler already owns a natural sampling point —
// the slice boundary, right after interpret returns — so sampling costs no
// extra interrupts and no per-instruction work: one nil-check per slice
// when disabled, a frame walk over the just-run thread when enabled,
// weighted by the instructions that slice actually executed.
//
// Frame identity is (method global id × class id). Class IDs are the
// version discriminator: a DSU update renames the old class in place
// (keeping its id) and loads the new version under a fresh id, so samples
// taken before and after an update land on distinct keys and the folded
// stacks show exactly which code version the time went to.

import (
	"fmt"

	"govolve/internal/obs"
)

// AttachProfiler arms (or, with nil, disarms) slice-boundary stack
// sampling into p.
func (v *VM) AttachProfiler(p *obs.Profiler) {
	v.Prof = p
}

// profileSlice records one stack sample of t, weighted by the instructions
// the finished slice executed. Called only from runSlice with v.Prof
// non-nil; steady state allocates nothing (the frame-key scratch buffer is
// reused, name registration happens once per key).
func (v *VM) profileSlice(t *Thread, weight int64) {
	p := v.Prof
	if !p.Enabled() || weight <= 0 || len(t.Frames) == 0 {
		return
	}
	frames := v.profScratch[:0]
	for _, f := range t.Frames {
		m := f.CM.Method
		key := obs.ProfKey(m.GlobalID, m.Class.ID)
		if !v.profSeen[key] {
			if v.profSeen == nil {
				v.profSeen = make(map[uint64]bool)
			}
			v.profSeen[key] = true
			p.RegisterName(key, fmt.Sprintf("%s@c%d.%s%s", m.Class.Name, m.Class.ID, m.Def.Name, m.Def.Sig))
		}
		frames = append(frames, key)
	}
	v.profScratch = frames
	p.Sample(int32(t.ID), weight, frames)
}
