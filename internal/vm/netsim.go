package vm

import "fmt"

// NetSim is the simulated network: line-oriented connections between the
// Go-side workload driver and the Net.* natives inside the VM. The driver
// and the VM scheduler must share one goroutine (call driver methods
// between vm.Step calls); the VM is a deterministic green-thread machine.
type NetSim struct {
	listeners map[int64]*SimListener
	conns     map[int64]*SimConn
	nextConn  int64
}

// SimListener is a listening port with a backlog of unaccepted connections.
type SimListener struct {
	Port    int64
	Backlog []int64
	Open    bool
}

// SimConn is one connection: two line queues.
type SimConn struct {
	ID       int64
	ToServer []string
	ToClient []string
	Closed   bool
}

// NewNetSim builds an empty network.
func NewNetSim() *NetSim {
	return &NetSim{
		listeners: make(map[int64]*SimListener),
		conns:     make(map[int64]*SimConn),
	}
}

// --- server (native) side -------------------------------------------------

func (n *NetSim) listen(port int64) (int64, error) {
	if _, dup := n.listeners[port]; dup {
		return 0, fmt.Errorf("net: port %d already bound", port)
	}
	n.listeners[port] = &SimListener{Port: port, Open: true}
	return port, nil
}

func (n *NetSim) hasPending(port int64) bool {
	l := n.listeners[port]
	return l != nil && (len(l.Backlog) > 0 || !l.Open)
}

func (n *NetSim) accept(port int64) (int64, bool) {
	l := n.listeners[port]
	if l == nil || len(l.Backlog) == 0 {
		return -1, l == nil || !l.Open
	}
	id := l.Backlog[0]
	l.Backlog = l.Backlog[1:]
	return id, true
}

func (n *NetSim) hasLine(id int64) bool {
	c := n.conns[id]
	return c == nil || c.Closed || len(c.ToServer) > 0
}

func (n *NetSim) recvLine(id int64) (string, bool) {
	c := n.conns[id]
	if c == nil || (c.Closed && len(c.ToServer) == 0) {
		return "", false
	}
	if len(c.ToServer) == 0 {
		return "", false
	}
	line := c.ToServer[0]
	c.ToServer = c.ToServer[1:]
	return line, true
}

func (n *NetSim) send(id int64, line string) {
	if c := n.conns[id]; c != nil && !c.Closed {
		c.ToClient = append(c.ToClient, line)
	}
}

func (n *NetSim) close(id int64) {
	if c := n.conns[id]; c != nil {
		c.Closed = true
	}
}

// --- client (driver) side -------------------------------------------------

// Connect opens a client connection to a listening port.
func (n *NetSim) Connect(port int64) (int64, error) {
	l := n.listeners[port]
	if l == nil || !l.Open {
		return 0, fmt.Errorf("net: connection refused on port %d", port)
	}
	n.nextConn++
	id := n.nextConn
	n.conns[id] = &SimConn{ID: id}
	l.Backlog = append(l.Backlog, id)
	return id, nil
}

// ClientSend queues a request line toward the server.
func (n *NetSim) ClientSend(id int64, line string) error {
	c := n.conns[id]
	if c == nil || c.Closed {
		return fmt.Errorf("net: conn %d closed", id)
	}
	c.ToServer = append(c.ToServer, line)
	return nil
}

// ClientRecv dequeues one response line, reporting whether one was ready.
func (n *NetSim) ClientRecv(id int64) (string, bool) {
	c := n.conns[id]
	if c == nil || len(c.ToClient) == 0 {
		return "", false
	}
	line := c.ToClient[0]
	c.ToClient = c.ToClient[1:]
	return line, true
}

// ClientClosed reports whether the server closed the connection.
func (n *NetSim) ClientClosed(id int64) bool {
	c := n.conns[id]
	return c == nil || c.Closed
}

// ClientClose closes the connection from the client side.
func (n *NetSim) ClientClose(id int64) { n.close(id) }

// Listening reports whether a port is bound.
func (n *NetSim) Listening(port int64) bool {
	l := n.listeners[port]
	return l != nil && l.Open
}
