package vm

import "fmt"

// NetSim is the simulated network: line-oriented connections between the
// Go-side workload driver and the Net.* natives inside the VM. The driver
// and the VM scheduler must share one goroutine (call driver methods
// between vm.Step calls); the VM is a deterministic green-thread machine.
//
// Resource lifecycle: a connection is reaped from the conns map once both
// sides are finished with it — the server (or client) closed it, the client
// has observed the close (via ClientClosed or its own ClientClose), and both
// line queues have drained. A listening port is released by unlisten; the
// listener entry is kept as a closed tombstone (so a blocked accept wakes
// and observes the close) until the port is rebound. Sustained load with
// well-behaved peers therefore keeps both maps bounded.
type NetSim struct {
	listeners map[int64]*SimListener
	conns     map[int64]*SimConn
	nextConn  int64
}

// SimListener is a listening port with a backlog of unaccepted connections.
// Open is cleared by unlisten; a closed listener stays in the map as a
// tombstone until the port is rebound, so server code blocked in accept
// observes the close instead of hanging forever.
type SimListener struct {
	Port    int64
	Backlog []int64
	Open    bool
}

// SimConn is one connection: two line queues.
type SimConn struct {
	ID       int64
	ToServer []string
	ToClient []string
	Closed   bool

	// ClientDone records that the client side has finished with the
	// connection: it either closed it or observed the server's close.
	// Once both sides are done and the queues are drained, the conn is
	// reaped from the map.
	ClientDone bool
}

// NewNetSim builds an empty network.
func NewNetSim() *NetSim {
	return &NetSim{
		listeners: make(map[int64]*SimListener),
		conns:     make(map[int64]*SimConn),
	}
}

// maybeReap deletes a connection once it is closed, the client has observed
// the close, and both queues have drained — after which every operation on
// the id behaves exactly like an operation on a closed connection (nil
// lookups take the closed path everywhere).
func (n *NetSim) maybeReap(c *SimConn) {
	if c.Closed && c.ClientDone && len(c.ToServer) == 0 && len(c.ToClient) == 0 {
		delete(n.conns, c.ID)
	}
}

// ConnCount reports live (unreaped) connections — for leak tests and stats.
func (n *NetSim) ConnCount() int { return len(n.conns) }

// ListenerCount reports listener map entries, including closed tombstones.
func (n *NetSim) ListenerCount() int { return len(n.listeners) }

// --- server (native) side -------------------------------------------------

// listen binds a port. Rebinding over a closed tombstone (a port released
// by unlisten) replaces it — the restart-across-update path.
func (n *NetSim) listen(port int64) (int64, error) {
	if l := n.listeners[port]; l != nil && l.Open {
		return 0, fmt.Errorf("net: port %d already bound", port)
	}
	n.listeners[port] = &SimListener{Port: port, Open: true}
	return port, nil
}

// unlisten closes a listening port: queued-but-unaccepted connections are
// refused (closed), the backlog is dropped, and the listener remains as a
// closed tombstone so a thread blocked in accept wakes and sees the close.
// A later listen on the same port replaces the tombstone.
func (n *NetSim) unlisten(port int64) {
	l := n.listeners[port]
	if l == nil || !l.Open {
		return
	}
	l.Open = false
	for _, id := range l.Backlog {
		if c := n.conns[id]; c != nil {
			c.Closed = true
			n.maybeReap(c)
		}
	}
	l.Backlog = nil
}

// hasPending reports whether accept would complete without blocking: either
// a connection is queued, or the listener is closed/unbound-after-close so
// accept must report done. A port that was never bound stays pending-free
// (a blocked accept on it never wakes — that is the deadlock the scheduler
// detects).
func (n *NetSim) hasPending(port int64) bool {
	l := n.listeners[port]
	return l != nil && (len(l.Backlog) > 0 || !l.Open)
}

// accept dequeues the oldest backlog connection, in FIFO order.
//
// Contract — accept returns (id, done):
//
//	(conn, true)  a queued connection was accepted
//	(-1, true)    the listener is gone or closed: the call is complete and
//	              there is no connection; callers must treat a negative id
//	              as "listener closed", not as a connection
//	(-1, false)   the listener is open but the backlog is empty: not done,
//	              the caller should block until hasPending
func (n *NetSim) accept(port int64) (int64, bool) {
	l := n.listeners[port]
	if l == nil || len(l.Backlog) == 0 {
		return -1, l == nil || !l.Open
	}
	id := l.Backlog[0]
	l.Backlog = l.Backlog[1:]
	if len(l.Backlog) == 0 {
		l.Backlog = nil
	}
	return id, true
}

func (n *NetSim) hasLine(id int64) bool {
	c := n.conns[id]
	return c == nil || c.Closed || len(c.ToServer) > 0
}

func (n *NetSim) recvLine(id int64) (string, bool) {
	c := n.conns[id]
	if c == nil || len(c.ToServer) == 0 {
		return "", false
	}
	line := c.ToServer[0]
	c.ToServer = c.ToServer[1:]
	n.maybeReap(c)
	return line, true
}

func (n *NetSim) send(id int64, line string) {
	if c := n.conns[id]; c != nil && !c.Closed {
		c.ToClient = append(c.ToClient, line)
	}
}

func (n *NetSim) close(id int64) {
	if c := n.conns[id]; c != nil {
		c.Closed = true
		n.maybeReap(c)
	}
}

// --- client (driver) side -------------------------------------------------

// Connect opens a client connection to a listening port.
func (n *NetSim) Connect(port int64) (int64, error) {
	l := n.listeners[port]
	if l == nil || !l.Open {
		return 0, fmt.Errorf("net: connection refused on port %d", port)
	}
	n.nextConn++
	id := n.nextConn
	n.conns[id] = &SimConn{ID: id}
	l.Backlog = append(l.Backlog, id)
	return id, nil
}

// ClientSend queues a request line toward the server.
func (n *NetSim) ClientSend(id int64, line string) error {
	c := n.conns[id]
	if c == nil || c.Closed {
		return fmt.Errorf("net: conn %d closed", id)
	}
	c.ToServer = append(c.ToServer, line)
	return nil
}

// ClientRecv dequeues one response line, reporting whether one was ready.
func (n *NetSim) ClientRecv(id int64) (string, bool) {
	c := n.conns[id]
	if c == nil || len(c.ToClient) == 0 {
		return "", false
	}
	line := c.ToClient[0]
	c.ToClient = c.ToClient[1:]
	n.maybeReap(c)
	return line, true
}

// ClientClosed reports whether the server closed the connection. Observing
// the close marks the client side done, which lets a fully-drained
// connection be reaped.
func (n *NetSim) ClientClosed(id int64) bool {
	c := n.conns[id]
	if c == nil {
		return true
	}
	if c.Closed {
		c.ClientDone = true
		n.maybeReap(c)
		return true
	}
	return false
}

// ClientClose closes the connection from the client side.
func (n *NetSim) ClientClose(id int64) {
	c := n.conns[id]
	if c == nil {
		return
	}
	c.ClientDone = true
	c.Closed = true
	n.maybeReap(c)
}

// Listening reports whether a port is bound.
func (n *NetSim) Listening(port int64) bool {
	l := n.listeners[port]
	return l != nil && l.Open
}

// CheckIntegrity audits the NetSim tables against their documented
// lifecycle invariants — used by the storm harness's whole-VM checker.
// It verifies that no connection that should have been reaped is still
// resident, that listener tombstones carry no backlog (unlisten drops it),
// and that map keys agree with the entries stored under them. A backlog id
// whose connection was client-closed (and possibly already reaped) is a
// legal state: accept hands it out and every operation takes the
// closed-connection path.
func (n *NetSim) CheckIntegrity() error {
	for id, c := range n.conns {
		if c == nil {
			return fmt.Errorf("netsim: conn table holds nil entry for id %d", id)
		}
		if c.ID != id {
			return fmt.Errorf("netsim: conn %d stored under key %d", c.ID, id)
		}
		if c.Closed && c.ClientDone && len(c.ToServer) == 0 && len(c.ToClient) == 0 {
			return fmt.Errorf("netsim: conn %d is fully finished but was not reaped", id)
		}
	}
	for port, l := range n.listeners {
		if l == nil {
			return fmt.Errorf("netsim: listener table holds nil entry for port %d", port)
		}
		if l.Port != port {
			return fmt.Errorf("netsim: listener for port %d stored under key %d", l.Port, port)
		}
		if !l.Open && len(l.Backlog) != 0 {
			return fmt.Errorf("netsim: closed listener on port %d still queues %d connections", port, len(l.Backlog))
		}
	}
	return nil
}
