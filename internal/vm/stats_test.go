package vm

import (
	"io"
	"strings"
	"testing"

	"govolve/internal/obs"
)

// TestStatsDelta pins the Delta contract: monotonic counters subtract, the
// point-in-time gauges (queue depths, thread counts) pass through from the
// later snapshot untouched.
func TestStatsDelta(t *testing.T) {
	prev := Stats{
		Instructions:   100,
		Slices:         10,
		SchedulerScans: 20,
		WakeChecks:     30,
		ThreadsSpawned: 4,
		ThreadsReaped:  3,
		AllocObjects:   50,
		AllocArrays:    5,
		GCCollections:  1,
		RunnableQueue:  9, // gauges in prev must be ignored
		BlockedThreads: 9,
		LiveThreads:    9,
		TableThreads:   9,
		DeadErrorCount: 9,
	}
	now := Stats{
		Instructions:   175,
		Slices:         16,
		SchedulerScans: 29,
		WakeChecks:     44,
		ThreadsSpawned: 6,
		ThreadsReaped:  5,
		AllocObjects:   71,
		AllocArrays:    8,
		GCCollections:  3,
		RunnableQueue:  2,
		BlockedThreads: 1,
		LiveThreads:    4,
		TableThreads:   7,
		DeadErrorCount: 0,
	}
	d := now.Delta(prev)
	want := Stats{
		Instructions:   75,
		Slices:         6,
		SchedulerScans: 9,
		WakeChecks:     14,
		ThreadsSpawned: 2,
		ThreadsReaped:  2,
		AllocObjects:   21,
		AllocArrays:    3,
		GCCollections:  2,
		// Gauges: exactly the later snapshot's values.
		RunnableQueue:  2,
		BlockedThreads: 1,
		LiveThreads:    4,
		TableThreads:   7,
		DeadErrorCount: 0,
	}
	if d != want {
		t.Fatalf("Delta mismatch:\n got %+v\nwant %+v", d, want)
	}
	// Delta against a zero snapshot is the identity on counters.
	if z := now.Delta(Stats{}); z != now {
		t.Fatalf("Delta(zero) changed the snapshot:\n got %+v\nwant %+v", z, now)
	}
}

// TestPublishMetricsDeltaAdd checks that PublishMetrics adds only the delta
// since the previous publish, so registry counters track the VM counters
// cumulatively instead of double-counting on every snapshot.
func TestPublishMetricsDeltaAdd(t *testing.T) {
	v, err := New(Options{HeapWords: 1 << 12, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	v.AttachObs(nil, reg)

	v.TotalSteps = 100
	v.PublishMetrics()
	if got := reg.Counter(obs.MInstructions).Value(); got != 100 {
		t.Fatalf("after first publish: instructions counter = %d, want 100", got)
	}
	v.TotalSteps = 160
	v.PublishMetrics()
	if got := reg.Counter(obs.MInstructions).Value(); got != 160 {
		t.Fatalf("after second publish: instructions counter = %d, want 160 (delta-add, not 260)", got)
	}
	// Idempotent when nothing moved.
	v.PublishMetrics()
	if got := reg.Counter(obs.MInstructions).Value(); got != 160 {
		t.Fatalf("idle publish moved the counter to %d", got)
	}
}

// TestTracefRoutesToRecorder checks the tracef fan-out satellite: one
// formatted line reaches both the legacy Trace writer and the flight
// recorder as a KTrace event, and a disabled recorder gets nothing.
func TestTracefRoutesToRecorder(t *testing.T) {
	v, err := New(Options{HeapWords: 1 << 12, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rec := obs.NewRecorder(16)
	v.Trace = &sb
	v.AttachObs(rec, nil)

	v.tracef("hello %d", 42)
	if !strings.Contains(sb.String(), "hello 42") {
		t.Fatalf("legacy Trace writer missed the line: %q", sb.String())
	}
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != obs.KTrace || evs[0].Str != "hello 42" {
		t.Fatalf("recorder events = %+v, want one KTrace 'hello 42'", evs)
	}

	rec.SetEnabled(false)
	v.tracef("dropped %d", 7)
	if !strings.Contains(sb.String(), "dropped 7") {
		t.Fatalf("legacy writer must keep working with the recorder off")
	}
	if n := len(rec.Events()); n != 1 {
		t.Fatalf("disabled recorder grew to %d events", n)
	}
}
