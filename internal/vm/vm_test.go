package vm

import (
	"bytes"
	"strings"
	"testing"

	"govolve/internal/asm"
	"govolve/internal/classfile"
	"govolve/internal/rt"
)

func newTestVM(t *testing.T, heapWords int) (*VM, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	v, err := New(Options{HeapWords: heapWords, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	return v, &out
}

func loadSrc(t *testing.T, v *VM, src string) {
	t.Helper()
	prog, err := asm.AssembleProgram("test.jva", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
}

func runMain(t *testing.T, v *VM, class string) {
	t.Helper()
	if _, err := v.SpawnMain(class); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	for _, th := range v.Threads {
		if th.Err != nil {
			t.Fatalf("thread %s: %v\n%s", th.Name, th.Err, th.Backtrace())
		}
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	v, out := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class T {
  static method fib(I)I {
    load 0
    const 2
    if_icmpge rec
    load 0
    return
  rec:
    load 0
    const 1
    sub
    invokestatic T.fib(I)I
    load 0
    const 2
    sub
    invokestatic T.fib(I)I
    add
    return
  }
  static method main()V {
    const 15
    invokestatic T.fib(I)I
    invokestatic System.printInt(I)V
    return
  }
}`)
	runMain(t, v, "T")
	if got := strings.TrimSpace(out.String()); got != "610" {
		t.Fatalf("fib(15) = %q, want 610", got)
	}
}

func TestObjectsVirtualDispatchAndInheritance(t *testing.T) {
	v, out := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class Shape {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method area()I {
    const 0
    return
  }
  method describe()I {
    load 0
    invokevirtual Shape.area()I
    const 1000
    add
    return
  }
}
class Square extends Shape {
  field side I
  method <init>(I)V {
    load 0
    invokespecial Shape.<init>()V
    load 0
    load 1
    putfield Square.side I
    return
  }
  method area()I {
    load 0
    getfield Square.side I
    load 0
    getfield Square.side I
    mul
    return
  }
}
class T {
  static method main()V {
    new Square
    dup
    const 6
    invokespecial Square.<init>(I)V
    invokevirtual Shape.describe()I
    invokestatic System.printInt(I)V
    return
  }
}`)
	runMain(t, v, "T")
	if got := strings.TrimSpace(out.String()); got != "1036" {
		t.Fatalf("describe = %q, want 1036 (virtual dispatch through base method)", got)
	}
}

func TestStringNatives(t *testing.T) {
	v, out := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class T {
  static method main()V {
    ldc "user@example.com"
    const 64
    const 0
    invokevirtual String.indexOf(CI)I
    store 0
    ldc "user@example.com"
    const 0
    load 0
    invokevirtual String.substring(II)LString;
    invokestatic System.println(LString;)V
    const 42
    invokestatic String.fromInt(I)LString;
    invokevirtual String.toInt()I
    invokestatic System.printInt(I)V
    ldc "  padded  "
    invokevirtual String.trim()LString;
    invokestatic System.println(LString;)V
    ldc "a,b,c"
    const 44
    invokevirtual String.split(C)[LString;
    arraylen
    invokestatic System.printInt(I)V
    return
  }
}`)
	runMain(t, v, "T")
	want := "user\n42\npadded\n3\n"
	if out.String() != want {
		t.Fatalf("output = %q, want %q", out.String(), want)
	}
}

func TestClinitRunsAtLoad(t *testing.T) {
	v, out := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class T {
  static field x I
  static method <clinit>()V {
    const 7
    putstatic T.x I
    return
  }
  static method main()V {
    getstatic T.x I
    invokestatic System.printInt(I)V
    return
  }
}`)
	runMain(t, v, "T")
	if got := strings.TrimSpace(out.String()); got != "7" {
		t.Fatalf("clinit result = %q", got)
	}
}

func TestGCTriggeredByAllocation(t *testing.T) {
	// A heap just big enough that the loop of garbage allocations forces
	// several collections while a live linked list survives.
	v, out := newTestVM(t, 3000)
	loadSrc(t, v, `
class Node {
  field next LNode;
  field val I
  method <init>(LNode;I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Node.next LNode;
    load 0
    load 2
    putfield Node.val I
    return
  }
}
class T {
  static method main()V {
    null
    store 0
    const 0
    store 1
  keep:
    load 1
    const 50
    if_icmpge churn
    new Node
    dup
    load 0
    load 1
    invokespecial Node.<init>(LNode;I)V
    store 0
    load 1
    const 1
    add
    store 1
    goto keep
  churn:
    const 0
    store 2
  loop:
    load 2
    const 2000
    if_icmpge check
    new Node
    dup
    null
    const 0
    invokespecial Node.<init>(LNode;I)V
    pop
    load 2
    const 1
    add
    store 2
    goto loop
  check:
    const 0
    store 3
  sum:
    load 0
    ifnull done
    load 3
    load 0
    getfield Node.val I
    add
    store 3
    load 0
    getfield Node.next LNode;
    store 0
    goto sum
  done:
    load 3
    invokestatic System.printInt(I)V
    return
  }
}`)
	runMain(t, v, "T")
	if v.GC.Collections == 0 {
		t.Fatal("expected at least one collection")
	}
	// Sum 0..49 = 1225 — the live list survived collection intact.
	if got := strings.TrimSpace(out.String()); got != "1225" {
		t.Fatalf("sum = %q, want 1225", got)
	}
}

func TestRuntimeErrorsKillOnlyTheThread(t *testing.T) {
	v, _ := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class Bad {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method run()V {
    null
    checkcast Bad
    store 1
    load 1
    invokevirtual Bad.run()V
    return
  }
}
class T {
  static method main()V {
    new Bad
    dup
    invokespecial Bad.<init>()V
    invokestatic Thread.spawn(LObject;)V
    const 0
    store 0
  loop:
    load 0
    const 100
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    const 1
    invokestatic System.printInt(I)V
    return
  }
}`)
	if _, err := v.SpawnMain("T"); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	var mainErr, spawnErr error
	for _, th := range v.Threads {
		if th.Name == "main" {
			mainErr = th.Err
		} else if strings.Contains(th.Name, "Bad.run") {
			spawnErr = th.Err
		}
	}
	if mainErr != nil {
		t.Fatalf("main should survive, got %v", mainErr)
	}
	if spawnErr == nil || !strings.Contains(spawnErr.Error(), "null receiver") {
		t.Fatalf("spawned thread should die with null receiver, got %v", spawnErr)
	}
}

func TestDivisionByZeroAndBounds(t *testing.T) {
	for _, c := range []struct{ name, body, wantSub string }{
		{"div", "const 1\n const 0\n div\n pop\n return", "division by zero"},
		{"bounds", "const 2\n newarray I\n const 5\n aget\n pop\n return", "out of bounds"},
		{"nullfield", "null\n arraylen\n pop\n return", "null dereference"},
	} {
		t.Run(c.name, func(t *testing.T) {
			v, _ := newTestVM(t, 1<<16)
			loadSrc(t, v, "class T {\n static method main()V {\n "+c.body+"\n }\n}")
			if _, err := v.SpawnMain("T"); err != nil {
				t.Fatal(err)
			}
			_ = v.Run()
			th := v.Threads[0]
			if th.Err == nil || !strings.Contains(th.Err.Error(), c.wantSub) {
				t.Fatalf("err = %v, want %q", th.Err, c.wantSub)
			}
		})
	}
}

func TestNetSimEndToEnd(t *testing.T) {
	v, _ := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class Echo {
  static method main()V {
    const 80
    invokestatic Net.listen(I)I
    store 0
  acceptloop:
    load 0
    invokestatic Net.accept(I)I
    store 1
  lineloop:
    load 1
    invokestatic Net.recvLine(I)LString;
    store 2
    load 2
    ifnull closed
    load 1
    ldc "echo: "
    load 2
    invokevirtual String.concat(LString;)LString;
    invokestatic Net.send(ILString;)V
    goto lineloop
  closed:
    load 1
    invokestatic Net.close(I)V
    goto acceptloop
  }
}`)
	if _, err := v.SpawnMain("Echo"); err != nil {
		t.Fatal(err)
	}
	// Server blocks on accept.
	v.Step(5)
	if !v.Net.Listening(80) {
		t.Fatal("server not listening")
	}
	conn, err := v.Net.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Net.ClientSend(conn, "hello"); err != nil {
		t.Fatal(err)
	}
	v.Step(50)
	got, ok := v.Net.ClientRecv(conn)
	if !ok || got != "echo: hello" {
		t.Fatalf("response = %q, %v", got, ok)
	}
	// Second request on same connection.
	_ = v.Net.ClientSend(conn, "again")
	v.Step(50)
	got, ok = v.Net.ClientRecv(conn)
	if !ok || got != "echo: again" {
		t.Fatalf("second response = %q, %v", got, ok)
	}
	v.Net.ClientClose(conn)
	v.Step(50)
	// Server loops back to accept; another client connects fine.
	conn2, err := v.Net.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	_ = v.Net.ClientSend(conn2, "two")
	v.Step(50)
	if got, ok := v.Net.ClientRecv(conn2); !ok || got != "echo: two" {
		t.Fatalf("conn2 response = %q, %v", got, ok)
	}
}

func TestAdaptiveRecompilation(t *testing.T) {
	v, _ := newTestVM(t, 1<<16)
	v.JIT.OptThreshold = 10
	loadSrc(t, v, `
class T {
  static method hot()I {
    const 1
    const 2
    add
    return
  }
  static method main()V {
    const 0
    store 0
  loop:
    load 0
    const 50
    if_icmpge done
    invokestatic T.hot()I
    pop
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    return
  }
}`)
	runMain(t, v, "T")
	hot := v.Reg.LookupClass("T").Method("hot", "()I")
	if hot.Compiled == nil || hot.Compiled.Level != rt.Opt {
		t.Fatalf("hot method not opt-compiled: %+v", hot.Compiled)
	}
	if v.JIT.OptCompiles == 0 {
		t.Fatal("no opt compiles recorded")
	}
}

func TestOSRReplaceChecks(t *testing.T) {
	v, _ := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class T {
  static method m()V {
    nop
    return
  }
}`)
	m := v.Reg.LookupClass("T").Method("m", "()V")
	cm1, err := v.JIT.Compile(m, rt.Base)
	if err != nil {
		t.Fatal(err)
	}
	cm2, err := v.JIT.Compile(m, rt.Base)
	if err != nil {
		t.Fatal(err)
	}
	f := &Frame{CM: cm1, Locals: make([]rt.Value, cm1.MaxLocals)}
	if err := v.OSRReplace(f, cm2); err != nil {
		t.Fatalf("identity OSR failed: %v", err)
	}
	opt, err := v.JIT.Compile(m, rt.Opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.OSRReplace(f, opt); err == nil {
		t.Fatal("OSR to opt code accepted")
	}
}

func TestDeadlockDetection(t *testing.T) {
	v, _ := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class T {
  static method main()V {
    const 99
    invokestatic Net.accept(I)I
    pop
    return
  }
}`)
	if _, err := v.SpawnMain("T"); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestHandlesSurviveGC(t *testing.T) {
	v, _ := newTestVM(t, 2048)
	a, err := v.NewString("pinned")
	if err != nil {
		t.Fatal(err)
	}
	h := v.PushHandle(a)
	if _, err := v.CollectGarbage(); err != nil {
		t.Fatal(err)
	}
	s, ok := v.GoString(h.Ref())
	if !ok || s != "pinned" {
		t.Fatalf("handle content after GC = %q, %v", s, ok)
	}
	v.PopHandle(1)
}

func TestProgramVerificationRejectsAtLoad(t *testing.T) {
	v, _ := newTestVM(t, 1<<16)
	prog, err := asm.AssembleProgram("bad.jva", `
class T {
  static method main()V {
    add
    return
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.LoadProgram(prog); err == nil {
		t.Fatal("unverifiable program loaded")
	}
	var _ = classfile.Desc("I")
}
