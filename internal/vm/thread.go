package vm

import (
	"fmt"

	"govolve/internal/rt"
)

// ThreadState is the scheduler-visible state of a green thread.
type ThreadState int

const (
	// Runnable threads are scheduled round-robin.
	Runnable ThreadState = iota
	// Blocked threads wait on a native condition (e.g. a simulated
	// socket). A blocked thread is stopped at an instruction boundary,
	// which is a VM safe point: its stack is walkable, exactly like a
	// Jikes RVM thread parked in a blocking call.
	Blocked
	// UpdateWait threads hit a DSU return barrier and are parked until
	// the update completes or aborts (paper §3.2: "the thread will block
	// and JVOLVE will restart the update process").
	UpdateWait
	// Dead threads finished or were killed by a runtime error.
	Dead
)

func (s ThreadState) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Blocked:
		return "blocked"
	case UpdateWait:
		return "update-wait"
	default:
		return "dead"
	}
}

// Frame is one activation record: compiled code, pc, tagged locals and
// operand stack. Tags make every frame an exact GC stack map.
type Frame struct {
	CM     *rt.CompiledMethod
	PC     int
	Locals []rt.Value
	Stack  []rt.Value

	// Barrier marks a DSU return barrier: when this frame returns, the
	// thread parks and the update process restarts.
	Barrier bool
}

// Method returns the frame's method.
func (f *Frame) Method() *rt.Method { return f.CM.Method }

// Thread is a VM green thread. The scheduler runs threads one at a time,
// switching only at yield points (method entry, method exit, loop
// backedges) — Jikes RVM's three yield point kinds.
type Thread struct {
	ID     int
	Name   string
	State  ThreadState
	Frames []*Frame

	// WakeWhen is the wake predicate for Blocked threads.
	WakeWhen func() bool

	// SleepUntil is Thread.sleep's deadline (simulated steps). Blocking
	// natives retry their whole call on wake, so the deadline must live
	// across retries; zero means no sleep in progress.
	SleepUntil int64

	// Err records the runtime error that killed the thread, if any.
	Err error

	// Steps counts executed instructions, for scheduling fairness stats.
	Steps int64
}

// Top returns the innermost frame, or nil.
func (t *Thread) Top() *Frame {
	if len(t.Frames) == 0 {
		return nil
	}
	return t.Frames[len(t.Frames)-1]
}

// push adds a new activation.
func (t *Thread) push(f *Frame) { t.Frames = append(t.Frames, f) }

// pop removes the innermost activation.
func (t *Thread) pop() *Frame {
	f := t.Frames[len(t.Frames)-1]
	t.Frames = t.Frames[:len(t.Frames)-1]
	return f
}

// Backtrace renders the stack for diagnostics, innermost first.
func (t *Thread) Backtrace() string {
	s := fmt.Sprintf("thread %d (%s) %s:\n", t.ID, t.Name, t.State)
	for i := len(t.Frames) - 1; i >= 0; i-- {
		f := t.Frames[i]
		s += fmt.Sprintf("  at %s pc=%d (%s)\n", f.Method().FullName(), f.PC, f.CM.Level)
	}
	return s
}

// OnStack reports whether any activation of the given method set is live on
// this thread's stack — the DSU safe point check.
func (t *Thread) OnStack(restricted map[*rt.Method]bool) *Frame {
	for i := len(t.Frames) - 1; i >= 0; i-- {
		if restricted[t.Frames[i].Method()] {
			return t.Frames[i]
		}
	}
	return nil
}
