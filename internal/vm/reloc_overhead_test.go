package vm

import (
	"runtime"
	"testing"

	"govolve/internal/rt"
)

// Overhead gates for the concurrent-relocation load barrier, mirroring the
// lazy-transform gates in lazy_overhead_test.go and reusing their
// ref-load-heavy dispatch loop (loadLoopSrc / newLoadDispatchVM). Two states
// matter: disabled (no drain in flight — one nil check on the heap's access
// paths and one nil check per slice for the tick hook) and armed-but-drained
// (barrier armed, from-space interval already empty — every reference load
// pays the atomic word load plus the interval test but never heals).

// armRelocDrained arms the relocation barrier with an empty from-space
// interval and a heal hook that must never fire, plus a no-op scheduler
// tick: the steady state of a drain that the workers have already run dry
// but that has not yet been finalized.
func armRelocDrained(tb testing.TB, v *VM) {
	tb.Helper()
	v.Heap.ArmReloc(1, 1, func(a rt.Addr) rt.Addr {
		tb.Fatalf("reloc heal hook fired at @%d with an empty from-space", a)
		return a
	})
	v.DSURelocTick = func() {}
}

// BenchmarkRelocDisabledDispatch measures the load-heavy dispatch loop with
// the relocation barrier disabled — the state every instruction between
// updates runs in. Compare with BenchmarkRelocArmedDrainedDispatch.
func BenchmarkRelocDisabledDispatch(b *testing.B) {
	v := newLoadDispatchVM(b)
	b.ReportAllocs()
	start := v.TotalSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Step(1)
	}
	b.StopTimer()
	executed := v.TotalSteps - start
	if executed == 0 {
		b.Fatal("no instructions executed")
	}
	b.ReportMetric(float64(executed)/float64(b.N), "instructions/op")
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "instructions/s")
}

// BenchmarkRelocArmedDrainedDispatch is the armed-but-drained tripwire: the
// barrier is armed with an empty from-space, so every reference load pays
// the full barrier sequence (atomic load + interval test) without ever
// healing. This is the worst steady-state tax a mutator sees near the end of
// a drain, and the benchmark that catches an accidentally expensive armed
// path.
func BenchmarkRelocArmedDrainedDispatch(b *testing.B) {
	v := newLoadDispatchVM(b)
	armRelocDrained(b, v)
	b.ReportAllocs()
	start := v.TotalSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Step(1)
	}
	b.StopTimer()
	executed := v.TotalSteps - start
	if executed == 0 {
		b.Fatal("no instructions executed")
	}
	b.ReportMetric(float64(executed)/float64(b.N), "instructions/op")
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "instructions/s")
}

// TestRelocArmedDrainedZeroAlloc: the armed load barrier must not allocate —
// healing is CAS-on-heap-words and the drained fast path is a pure read.
func TestRelocArmedDrainedZeroAlloc(t *testing.T) {
	v := newLoadDispatchVM(t)
	armRelocDrained(t, v)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	before := v.TotalSteps
	allocs := testing.AllocsPerRun(50, func() {
		v.Step(10)
	})
	executed := v.TotalSteps - before
	if executed < 1000 {
		t.Fatalf("fast path barely ran: %d instructions", executed)
	}
	if allocs != 0 {
		t.Fatalf("armed-drained load path allocates: %.1f allocs per 10 slices", allocs)
	}
}

// TestRelocDisabledOverheadGate bounds the relocation barrier's dispatch
// cost. As with the lazy gate, the disabled path (barrier disarmed, no tick
// hook) is nil checks compiled in unconditionally, with no in-binary
// baseline to diff against — its ≤2% claim rides on the zero-alloc tests and
// the printed benchmark pair. What this gate pins is the armed-but-drained
// tax: atomic loads plus an interval test on every reference load. The 95%
// floor is a tripwire for something accidentally expensive (a map lookup, an
// allocation, a lock) creeping into the armed fast path. Interleaved
// best-of rounds, retried, ride out scheduler noise on loaded 1-vCPU CI
// boxes and under -race.
func TestRelocDisabledOverheadGate(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	disabled := newLoadDispatchVM(t)
	armed := newLoadDispatchVM(t)
	armRelocDrained(t, armed)

	const (
		slices   = 400
		rounds   = 5
		attempts = 4
		floor    = 0.95 // armed-drained must hold ≥95% of disabled throughput
	)
	var lastRatio float64
	for attempt := 0; attempt < attempts; attempt++ {
		disBest, armBest := 0.0, 0.0
		for r := 0; r < rounds; r++ {
			// Interleave so clock drift and background load hit both sides.
			if d := dispatchRate(t, disabled, slices); d > disBest {
				disBest = d
			}
			if a := dispatchRate(t, armed, slices); a > armBest {
				armBest = a
			}
		}
		lastRatio = armBest / disBest
		if lastRatio >= floor {
			return
		}
	}
	t.Fatalf("armed-drained dispatch at %.1f%% of disabled after %d attempts, want ≥%.0f%%",
		lastRatio*100, attempts, floor*100)
}
