// Package vm implements the govolve virtual machine: a green-thread
// scheduler with yield points, an interpreter of JIT-resolved code, native
// methods (console, time, simulated network), the string runtime, GC
// triggering, return barriers, and on-stack replacement. The DSU engine
// (internal/core) drives it through the exported hooks.
package vm

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
	"govolve/internal/gc"
	"govolve/internal/heap"
	"govolve/internal/jit"
	"govolve/internal/obs"
	"govolve/internal/rt"
	"govolve/internal/verifier"
)

// Options configures VM construction.
type Options struct {
	// HeapWords is the size of one semispace in words (default 1<<20).
	HeapWords int
	// ScratchWords, if positive, reserves a scratch region for DSU old
	// copies, reclaimed right after each update's transformer phase — the
	// paper's §3.5 alternative to keeping old copies in to-space until
	// the next collection.
	ScratchWords int
	// Quantum is the number of instructions a thread runs before the
	// scheduler switches at the next yield point (default 400).
	Quantum int
	// GCWorkers selects the collection strategy: 0 or 1 runs the serial
	// collector (default), N>1 the parallel copy/scan collector with N
	// workers, gc.AutoWorkers one worker per CPU. Parallelism shortens the
	// stop-the-world DSU pause; application threads stay green either way.
	GCWorkers int
	// GCConcurrentMark opts the DSU engine into concurrent snapshot-at-the-
	// beginning marking: updated-instance discovery runs as a concurrent
	// trace between the update request and the safe point, and the pause
	// itself only re-scans the SATB deletion log and roots before copying.
	// Ordinary allocation-triggered collections are unaffected. False
	// preserves the fused stop-the-world discovery exactly.
	GCConcurrentMark bool
	// ConcurrentReloc opts the DSU engine into concurrent relocation: the
	// pause stops at flip preparation (discovery, flip, eager evacuation of
	// updated-class instances only, root remap) and the remaining live set
	// is evacuated after the world resumes — by background relocator
	// workers and by the mutator through a self-healing load barrier on the
	// heap's reference read paths. From-space stays live until the drain
	// completes; collections and follow-up updates force-complete it first.
	// Composes with GCConcurrentMark (discovery leaves the pause too) and
	// with LazyTransform (pair creation defers into the drain as well). The
	// disabled state costs one nil check on the heap access paths.
	ConcurrentReloc bool
	// Out receives System.print output (default os.Stdout).
	Out io.Writer
	// OptThreshold overrides the adaptive recompilation threshold.
	OptThreshold int
	// TraceThreshold is the number of consecutive scheduling slices a
	// base-compiled method must spend on top of a thread's stack before
	// trace promotion swaps its frame onto fused-tier code (in-place
	// superinstruction fusion + inline caches). Loop-pinned methods never
	// return, so invocation counting alone can't reach them — this is the
	// backedge-flavored signal that does. 0 selects the default (3);
	// negative disables trace promotion entirely (the base-tier-only
	// configuration the storm equivalence tests run).
	TraceThreshold int
	// NoInlineCache disables inline caches in fused/opt code; the dispatch
	// benchmark uses it to separate the fusion win from the IC win.
	NoInlineCache bool
	// IndirectionCheck enables the ablation mode: every field access pays
	// a handle-space indirection plus an is-updated check, simulating
	// JDrums/DVM-style lazy-update VMs (paper §5). Steady-state overhead
	// becomes nonzero; JVOLVE's eager approach keeps it zero.
	IndirectionCheck bool
	// LazyTransform defers object transformation out of the DSU pause: the
	// pause copies objects and tags each updated-class instance, and a read
	// barrier on the interpreter's access fast paths transforms an object
	// on first touch (the paper's §5 on-first-use hybrid, opt-in). The
	// barrier's disabled state costs one nil-check, like the SATB barrier.
	LazyTransform bool
	// Recorder, if non-nil, is the flight recorder every VM layer emits
	// typed events into (scheduler, DSU engine, GC workers). A nil
	// recorder is fully disabled: emission sites pay one nil check.
	Recorder *obs.Recorder
	// Metrics, if non-nil, receives counter/gauge/histogram updates; see
	// VM.PublishMetrics and the engine's pause histograms.
	Metrics *obs.Registry
	// Profiler, if non-nil, arms the version-attributed sampling profiler:
	// the scheduler samples the just-run thread's interpreter stack at
	// every slice boundary, weighted by the instructions the slice
	// executed. Nil is the disabled state: one nil-check per slice.
	Profiler *obs.Profiler
}

// VM is one virtual machine instance.
type VM struct {
	Reg  *rt.Registry
	Heap *heap.Heap
	GC   *gc.Collector
	JIT  *jit.Compiler
	Net  *NetSim
	Out  io.Writer

	// Threads is every thread the scheduler knows about (the GC root set
	// and the DSU engine's safe-point scan walk it). Scheduling itself
	// never scans it: runnable threads live in runq (a FIFO ring) and
	// threads parked on a wake predicate live in blocked, so picking the
	// next thread is O(blocked)+O(1) instead of O(all threads ever
	// created).
	Threads []*Thread
	nextTID int

	// runq is the runnable ring: a FIFO with a head cursor, compacted in
	// place so steady-state scheduling allocates nothing.
	runq     []*Thread
	runqHead int

	// blocked holds threads parked on WakeWhen; only these are polled
	// between slices.
	blocked []*Thread

	// deadPending counts finished threads not yet reaped from Threads.
	deadPending int

	// DeadErrors is a bounded log of threads that died with a runtime
	// error and were reaped. Before reaping, an errored thread is still
	// in Threads with its Err set (so drivers and tests can inspect it);
	// reaping moves the error here instead of retaining the whole thread
	// — error-dead threads no longer inflate every GC root scan forever.
	DeadErrors []DeadError

	// Quantum is instructions per scheduling slice.
	Quantum int

	// yieldFlag asks running code to stop at the next yield point; the
	// DSU engine sets it through RequestStop.
	yieldFlag bool

	// UpdateHandler is installed by the DSU engine; the scheduler calls
	// it between slices while updatePending. It returns true when the
	// update attempt is finished (applied or aborted).
	UpdateHandler func() bool
	updatePending bool

	// Handles are pinned references (GC roots) used by natives and
	// drivers across allocations.
	Handles []rt.Value

	natives map[string]NativeFunc

	// Clock is the simulated millisecond clock, advanced by execution.
	Clock int64

	// TotalSteps counts all executed instructions.
	TotalSteps int64

	// TraceThreshold is the trace-promotion slice count (see Options);
	// <= 0 disables promotion.
	TraceThreshold int

	// icHits/icMisses count inline-cache dispatch outcomes at cached call
	// sites (fused/opt code only). Plain fields on the interpreter's own
	// goroutine; PublishMetrics exports them with the delta discipline.
	icHits   int64
	icMisses int64

	// IndirectionCheck is the ablation switch (see Options).
	IndirectionCheck bool
	indirections     int64

	// stats holds the cheap steady-state counters exposed via Stats().
	stats statCounters

	// Trace, when set, receives scheduler/DSU diagnostics as text lines.
	// The same lines are routed into Rec (as obs.KTrace events) when a
	// flight recorder is attached, so the legacy writer and the recorder
	// stay consistent.
	Trace io.Writer

	// Rec is the attached flight recorder (nil = recording disabled; every
	// emission site is a single nil/flag check with zero allocations).
	Rec *obs.Recorder

	// Metrics is the attached metrics registry (nil = disabled). The VM
	// itself only writes it from PublishMetrics — never on the hot path;
	// the DSU engine records its pause histograms here.
	Metrics *obs.Registry

	// Prof is the attached sampling profiler (nil = sampling disabled; the
	// scheduler pays a single nil-check per slice). profScratch is the
	// reused frame-key buffer and profSeen the keys whose display names
	// have been registered — both written only by the scheduler goroutine.
	Prof        *obs.Profiler
	profScratch []uint64
	profSeen    map[uint64]bool

	// created anchors the govolve_vm_uptime_seconds gauge.
	created time.Time

	// published remembers the last snapshot PublishMetrics exported, so
	// monotonic VM counters map onto monotonic registry counters.
	published       Stats
	publishedCopied int64
	// publishedJIT* are the delta anchors for the compiler-activity and
	// inline-cache counters, same discipline as published.
	publishedJITBase  int64
	publishedJITOpt   int64
	publishedJITFused int64
	// publishedEvDropped / publishedProf* are the delta anchors for the
	// recorder-loss and profiler counters, same discipline as published.
	publishedEvDropped   uint64
	publishedProfTotal   int64
	publishedProfDropped int64

	// Exited is set by System.exit; ExitCode carries its argument.
	Exited   bool
	ExitCode int

	// GCDisabled blocks allocation-triggered collections while the DSU
	// transformer phase holds raw heap addresses in its update log.
	GCDisabled bool

	// FatalHeap is set when a collection fails (gc.ErrToSpaceExhausted):
	// the semispace flip already happened and the roots are partially
	// forwarded, so the heap is unusable. Every subsequent allocation
	// short-circuits with this error instead of re-collecting a broken
	// heap; threads die with it and the OOM is flagged in DeadErrors.
	FatalHeap error

	// DSUForceTransform is installed by the DSU engine while transformers
	// run; the Jvolve.forceTransform native calls it. In LazyTransform mode
	// it stays installed for the whole drain window so transformers invoked
	// from barrier context keep their force-transform (and cycle-detection)
	// semantics.
	DSUForceTransform func(rt.Addr) error

	// LazyTransform is the lazy-mode switch (see Options); the DSU engine
	// reads it to pick eager or lazy transformation at apply time.
	LazyTransform bool

	// DSULazyTouch is the lazy read barrier's slow path, installed by the
	// DSU engine between an applied LazyTransform update and the end of its
	// drain. Non-nil is the armed state: the interpreter's access fast
	// paths call it for objects whose header carries the untransformed tag.
	// Disabled (nil) costs one pointer nil-check — the SATB discipline.
	DSULazyTouch func(rt.Addr) error

	// DSULazyDrain force-completes the lazy-transform residue; collections
	// call it first because a flip would invalidate the pair log's raw
	// addresses and reclaim the scratch-region old copies.
	DSULazyDrain func() error

	// DSURelocTick is installed by the DSU engine while a concurrent
	// relocation drain is in flight; the scheduler calls it between slices
	// so the engine can finalize (disarm the load barrier, release
	// from-space) the moment the background workers run it dry. Nil is the
	// disabled state: one pointer nil-check per slice.
	DSURelocTick func()

	// DSURelocForce force-completes an in-flight concurrent relocation
	// drain; collections call it first (before DSULazyDrain) because a flip
	// cannot run with the load barrier armed and from-space held, and the
	// lazy residue's old copies want their slots healed before transformers
	// read them.
	DSURelocForce func() error

	// Bootstrap class caches.
	strCls      *rt.Class
	strCharsOff int
	objectCls   *rt.Class
}

// ObjectClass returns the bootstrap root class.
func (v *VM) ObjectClass() *rt.Class { return v.objectCls }

// ErrDeadlock is returned by Run when no thread can make progress.
var ErrDeadlock = errors.New("vm: all threads blocked (deadlock)")

// New constructs a VM with bootstrap classes loaded.
func New(opts Options) (*VM, error) {
	if opts.HeapWords <= 0 {
		opts.HeapWords = 1 << 20
	}
	if opts.Quantum <= 0 {
		opts.Quantum = 400
	}
	if opts.Out == nil {
		opts.Out = os.Stdout
	}
	reg := rt.NewRegistry()
	h := heap.NewWithScratch(opts.HeapWords, opts.ScratchWords)
	v := &VM{
		Reg:  reg,
		Heap: h,
		GC: gc.NewWithOptions(h, reg, gc.Options{
			Workers:         opts.GCWorkers,
			ConcurrentMark:  opts.GCConcurrentMark,
			ConcurrentReloc: opts.ConcurrentReloc,
		}),
		JIT:              jit.New(reg),
		Net:              NewNetSim(),
		Out:              opts.Out,
		Quantum:          opts.Quantum,
		natives:          make(map[string]NativeFunc),
		IndirectionCheck: opts.IndirectionCheck,
		LazyTransform:    opts.LazyTransform,
		created:          time.Now(),
	}
	if opts.OptThreshold > 0 {
		v.JIT.OptThreshold = opts.OptThreshold
	}
	switch {
	case opts.TraceThreshold > 0:
		v.TraceThreshold = opts.TraceThreshold
	case opts.TraceThreshold == 0:
		v.TraceThreshold = 3
	default:
		v.TraceThreshold = 0 // disabled
	}
	v.JIT.NoIC = opts.NoInlineCache
	if opts.Recorder != nil || opts.Metrics != nil {
		v.AttachObs(opts.Recorder, opts.Metrics)
	}
	if opts.Profiler != nil {
		v.AttachProfiler(opts.Profiler)
	}
	if err := v.bootstrap(); err != nil {
		return nil, err
	}
	return v, nil
}

// AttachObs attaches a flight recorder and/or metrics registry to the VM
// and propagates the recorder to the collector (whose workers emit
// per-worker copy/steal events). Either argument may be nil; attaching nil
// detaches that plane.
func (v *VM) AttachObs(rec *obs.Recorder, metrics *obs.Registry) {
	v.Rec = rec
	v.Metrics = metrics
	v.GC.Rec = rec
}

// LoadProgram verifies and loads an application program, running class
// initializers. Bootstrap classes are already present and resolvable.
func (v *VM) LoadProgram(p *classfile.Program) error {
	ver := verifier.New(regEnv{v.Reg, p}, verifier.Strict)
	for _, def := range p.Sorted() {
		if err := def.Validate(); err != nil {
			return err
		}
	}
	order, err := rt.SuperFirst(p)
	if err != nil {
		return err
	}
	// Verification happens per class against the merged environment
	// (loaded classes + the program being loaded), mirroring classloading
	// with bytecode verification.
	for _, def := range order {
		if err := ver.VerifyClass(def); err != nil {
			return err
		}
	}
	// Two-phase: load (and link) every class first, then run class
	// initializers in load order, so a <clinit> may reference any class
	// of the program regardless of load order.
	loaded := make([]*rt.Class, 0, len(order))
	for _, def := range order {
		cls, err := v.Reg.Load(def)
		if err != nil {
			return err
		}
		loaded = append(loaded, cls)
	}
	for _, cls := range loaded {
		if err := v.RunClinit(cls); err != nil {
			return err
		}
	}
	return nil
}

// regEnv resolves classes from the registry first, then the program being
// loaded (so forward references within a program verify).
type regEnv struct {
	reg *rt.Registry
	p   *classfile.Program
}

func (e regEnv) LookupClass(name string) *classfile.Class {
	if def := e.reg.LookupDef(name); def != nil {
		return def
	}
	return e.p.Classes[name]
}

// RunClinit executes a class's <clinit> synchronously, if present.
func (v *VM) RunClinit(cls *rt.Class) error {
	m := cls.Method("<clinit>", "()V")
	if m == nil || m.Class != cls {
		return nil
	}
	return v.RunSynchronous("<clinit:"+cls.Name+">", m, nil)
}

// RunSynchronous executes a method to completion on a temporary thread
// registered with the VM (so its frames are GC roots), with the yield flag
// suspended — the DSU engine uses it for class initializers and transformer
// functions, which run while application threads are stopped.
func (v *VM) RunSynchronous(name string, m *rt.Method, args []rt.Value) error {
	t := v.newThread(name)
	if err := v.callOn(t, m, args); err != nil {
		return err
	}
	v.Threads = append(v.Threads, t)
	defer func() {
		for i, th := range v.Threads {
			if th == t {
				v.Threads = append(v.Threads[:i], v.Threads[i+1:]...)
				break
			}
		}
	}()
	saved := v.yieldFlag
	v.yieldFlag = false
	defer func() { v.yieldFlag = saved }()
	for t.State == Runnable {
		v.interpret(t, 1<<30)
		if t.State == Blocked {
			return fmt.Errorf("vm: synchronous thread %s blocked:\n%s", name, t.Backtrace())
		}
	}
	return t.Err
}

// Spawn creates a thread running a static method with the given arguments.
func (v *VM) Spawn(name string, m *rt.Method, args []rt.Value) (*Thread, error) {
	t := v.newThread(name)
	if err := v.callOn(t, m, args); err != nil {
		t.State = Dead
		return nil, err
	}
	v.addThread(t)
	return t, nil
}

// addThread registers a thread with the scheduler: the global table (GC
// roots, DSU scans) plus the runnable ring.
func (v *VM) addThread(t *Thread) {
	v.Threads = append(v.Threads, t)
	if t.State == Runnable {
		v.enqueue(t)
	}
}

// SpawnMain starts className.main()V.
func (v *VM) SpawnMain(className string) (*Thread, error) {
	cls := v.Reg.LookupClass(className)
	if cls == nil {
		return nil, fmt.Errorf("vm: no class %s", className)
	}
	m := cls.Method("main", "()V")
	if m == nil {
		return nil, fmt.Errorf("vm: no method %s.main()V", className)
	}
	return v.Spawn("main", m, nil)
}

func (v *VM) newThread(name string) *Thread {
	v.nextTID++
	v.stats.ThreadsSpawned++
	return &Thread{ID: v.nextTID, Name: name, State: Runnable}
}

// callOn pushes an initial activation of m with args onto t.
func (v *VM) callOn(t *Thread, m *rt.Method, args []rt.Value) error {
	cm, err := v.resolveCompiled(m)
	if err != nil {
		return err
	}
	f := &Frame{CM: cm, Locals: make([]rt.Value, cm.MaxLocals)}
	copy(f.Locals, args)
	t.push(f)
	return nil
}

// resolveCompiled returns current valid code for m, compiling or
// recompiling as the adaptive system dictates.
func (v *VM) resolveCompiled(m *rt.Method) (*rt.CompiledMethod, error) {
	m.Invocations++
	needs := m.Compiled == nil || m.Compiled.Invalid
	wantOpt := !m.Pinned && m.Invocations >= v.JIT.OptThreshold
	if !needs && wantOpt && m.Compiled.Level == rt.Base && m.Invocations == v.JIT.OptThreshold {
		needs = true
	}
	if !needs {
		return m.Compiled, nil
	}
	level := rt.Base
	if wantOpt {
		level = rt.Opt
	}
	cm, err := v.JIT.Compile(m, level)
	if err != nil {
		return nil, err
	}
	m.Compiled = cm
	return cm, nil
}

// RequestStop sets the yield flag so all threads stop at their next yield
// point; the DSU engine calls it when an update arrives.
func (v *VM) RequestStop() { v.yieldFlag = true }

// ClearStop clears the yield flag.
func (v *VM) ClearStop() { v.yieldFlag = false }

// SetUpdatePending arms the scheduler to call UpdateHandler between slices.
func (v *VM) SetUpdatePending(p bool) {
	v.updatePending = p
	if p {
		v.yieldFlag = true
	} else {
		v.yieldFlag = false
	}
}

// UpdatePending reports whether an update attempt is armed.
func (v *VM) UpdatePending() bool { return v.updatePending }

// ReleaseThread returns one UpdateWait thread to the run queue. The DSU
// engine uses it for a thread that parked on an inner frame's return
// barrier while an outer restricted frame — with its barrier already
// installed — still pins the stack: keeping it parked would deadlock the
// safe-point search, since the outer barrier can only fire if the thread
// runs on. No-op for any other state.
func (v *VM) ReleaseThread(t *Thread) {
	if t.State == UpdateWait {
		t.State = Runnable
		v.enqueue(t)
	}
}

// ReleaseUpdateWaiters returns UpdateWait threads to the run queue after an
// update completes or aborts. UpdateWait threads sit in neither scheduler
// list (they parked mid-slice on a return barrier), so this is the one walk
// of the full table left on an update boundary — never the steady path.
func (v *VM) ReleaseUpdateWaiters() {
	for _, t := range v.Threads {
		if t.State == UpdateWait {
			t.State = Runnable
			v.enqueue(t)
		}
	}
}

// Step runs up to maxSlices scheduling slices, returning the number of
// slices in which a thread actually ran. Between slices, if an update is
// pending, the DSU handler runs — at that moment every thread is stopped at
// a VM safe point. Step returns 0 when no thread is runnable.
func (v *VM) Step(maxSlices int) int {
	ran := 0
	for s := 0; s < maxSlices; s++ {
		if v.DSURelocTick != nil {
			v.DSURelocTick()
		}
		if v.updatePending && v.UpdateHandler != nil {
			if v.UpdateHandler() {
				v.SetUpdatePending(false)
			}
		}
		t := v.pickThread()
		if t == nil {
			return ran
		}
		v.runSlice(t)
		ran++
	}
	return ran
}

// Run drives the scheduler until no thread is alive. It returns
// ErrDeadlock if live threads remain but none can run.
func (v *VM) Run() error {
	for {
		if v.DSURelocTick != nil {
			v.DSURelocTick()
		}
		if v.updatePending && v.UpdateHandler != nil {
			if v.UpdateHandler() {
				v.SetUpdatePending(false)
			}
		}
		t := v.pickThread()
		if t == nil {
			if v.liveThreads() == 0 {
				return nil
			}
			if v.updatePending {
				// Blocked threads plus a pending update: let the
				// handler keep trying (it has its own timeout).
				continue
			}
			return ErrDeadlock
		}
		v.runSlice(t)
	}
}

// reapThreshold is how many finished threads may accumulate in Threads
// before a reap pass compacts the table. Below the threshold, dead threads
// (including errored ones) remain inspectable in Threads.
const reapThreshold = 32

// maxDeadErrors bounds the DeadErrors log; beyond it the oldest entries are
// dropped, so a crash-looping workload cannot grow memory without bound.
const maxDeadErrors = 128

// DeadError is one reaped thread's terminal runtime error.
type DeadError struct {
	ThreadID int
	Name     string
	Err      error
	// OOM is set when the thread died of the fatal collection failure
	// (gc.ErrToSpaceExhausted): the heap is unusable and the death is a
	// machine-level out-of-memory, not a bug in the thread's own code.
	OOM bool
}

// ReapDeadThreads immediately reaps finished threads (errors move to
// DeadErrors) instead of waiting for reapThreshold to accumulate. Drivers
// use it to observe terminal thread errors promptly — e.g. the typed OOM
// flag after a fatal collection failure.
func (v *VM) ReapDeadThreads() { v.reapDead() }

// reapDead drops finished threads from the thread table. Long-running
// servers spawn a handler thread per connection; without reaping, the table
// (a GC root set and the DSU engine's scan list) grows forever. Errored
// threads are reaped too — their errors move to the bounded DeadErrors log
// instead of pinning the whole thread (stack, frames, locals) permanently.
func (v *VM) reapDead() {
	live := v.Threads[:0]
	for _, t := range v.Threads {
		if t.State != Dead {
			live = append(live, t)
			continue
		}
		if t.Err != nil {
			v.DeadErrors = append(v.DeadErrors, DeadError{
				ThreadID: t.ID,
				Name:     t.Name,
				Err:      t.Err,
				OOM:      errors.Is(t.Err, gc.ErrToSpaceExhausted),
			})
			if len(v.DeadErrors) > maxDeadErrors {
				v.DeadErrors = v.DeadErrors[len(v.DeadErrors)-maxDeadErrors:]
			}
		}
		v.stats.ThreadsReaped++
	}
	// Clear the tail so reaped threads are collectable.
	for i := len(live); i < len(v.Threads); i++ {
		v.Threads[i] = nil
	}
	v.Threads = live
	v.deadPending = 0
}

// enqueue appends a thread to the runnable ring, compacting the ring in
// place when the head cursor has drifted — steady-state scheduling of a
// stable thread set allocates nothing.
func (v *VM) enqueue(t *Thread) {
	if v.runqHead > 0 {
		if v.runqHead == len(v.runq) {
			v.runq = v.runq[:0]
			v.runqHead = 0
		} else if v.runqHead > 32 && v.runqHead*2 >= len(v.runq) {
			n := copy(v.runq, v.runq[v.runqHead:])
			v.runq = v.runq[:n]
			v.runqHead = 0
		}
	}
	v.runq = append(v.runq, t)
}

// popRunnable dequeues the next runnable thread from the ring, skipping
// entries whose state changed while queued (e.g. killed by System.exit).
func (v *VM) popRunnable() *Thread {
	for v.runqHead < len(v.runq) {
		t := v.runq[v.runqHead]
		v.runq[v.runqHead] = nil
		v.runqHead++
		if t.State == Runnable {
			return t
		}
		if t.State == Dead {
			v.deadPending++
		}
	}
	v.runq = v.runq[:0]
	v.runqHead = 0
	return nil
}

// pickThread wakes blocked threads whose condition holds and returns the
// next runnable thread, or nil. Cost is O(blocked)+O(1): only threads
// actually parked on a wake predicate are polled, and the runnable ring
// pops in FIFO order — dead or long-retired threads are never rescanned.
func (v *VM) pickThread() *Thread {
	v.stats.SchedulerScans++
	if len(v.blocked) > 0 {
		keep := v.blocked[:0]
		for _, t := range v.blocked {
			if t.State == Blocked && t.WakeWhen != nil {
				v.stats.WakeChecks++
				if t.WakeWhen() {
					t.State = Runnable
					t.WakeWhen = nil
					v.enqueue(t)
				} else {
					keep = append(keep, t)
				}
				continue
			}
			// State changed while parked (System.exit, DSU release):
			// drop from the blocked list; a Runnable thread re-enters
			// through the ring.
			switch t.State {
			case Runnable:
				v.enqueue(t)
			case Dead:
				v.deadPending++
			}
		}
		for i := len(keep); i < len(v.blocked); i++ {
			v.blocked[i] = nil
		}
		v.blocked = keep
	}
	return v.popRunnable()
}

func (v *VM) liveThreads() int {
	live := 0
	for _, t := range v.Threads {
		if t.State != Dead {
			live++
		}
	}
	return live
}

// runSlice executes one scheduling slice of t and re-files the thread in
// the scheduler list matching its post-slice state.
func (v *VM) runSlice(t *Thread) {
	v.stats.Slices++
	if v.Prof == nil {
		// Disabled-path discipline: profiling off costs exactly this one
		// nil-check per slice (gated by TestProfDisabled* / obs-verdict-gate).
		v.interpret(t, v.Quantum)
	} else {
		before := v.TotalSteps
		v.interpret(t, v.Quantum)
		v.profileSlice(t, v.TotalSteps-before)
	}
	if v.TraceThreshold > 0 && t.State == Runnable {
		v.maybePromote(t)
	}
	switch t.State {
	case Runnable:
		v.enqueue(t)
	case Blocked:
		v.blocked = append(v.blocked, t)
	case Dead:
		v.deadPending++
		if v.deadPending > reapThreshold {
			v.reapDead()
		}
	}
	// UpdateWait threads sit in neither list; ReleaseUpdateWaiters
	// re-enqueues them when the update resolves.
}

// maybePromote is the trace-promotion hook, run once per scheduling slice
// on the just-run thread. A base-compiled method that stays on top of the
// stack for TraceThreshold consecutive-ish slices is a hot loop the
// invocation counter can never see (it never returns, so resolveCompiled
// never runs for it); its frame is swapped in place onto fused-tier code.
// The swap keeps the same pc: in-place fusion makes fused code
// index-aligned with base code, and resting pcs are always resumption
// points (branch targets, post-call pcs, post-yield pcs), which the fusion
// pass never buries inside a pair — the FPAD check below is a pure
// defensive backstop. Steady state (top frame already fused) costs one
// level compare and allocates nothing.
func (v *VM) maybePromote(t *Thread) {
	if len(t.Frames) == 0 {
		return
	}
	f := t.Frames[len(t.Frames)-1]
	cm := f.CM
	if cm.Level != rt.Base || cm.Invalid {
		return
	}
	m := cm.Method
	if m.Pinned || m.Compiled != cm {
		return
	}
	m.HotSlices++
	if m.HotSlices < v.TraceThreshold {
		return
	}
	m.HotSlices = 0
	fcm, err := v.JIT.Compile(m, rt.Fused)
	if err != nil {
		return // unresolvable now; the counter restarts
	}
	if f.PC < 0 || f.PC >= len(fcm.Code) || fcm.Code[f.PC].Op == bytecode.FPAD {
		return // not a landing pc; retry next slice
	}
	v.stats.TracePromotions++
	v.tracef("trace promotion: %s -> fused at pc %d (thread %d)", m.FullName(), f.PC, t.ID)
	f.CM = fcm
	m.Compiled = fcm
}

// --- GC integration -------------------------------------------------------

// ForEachRoot enumerates every root: JTOC reference slots, interned
// strings, pinned handles, and all frame locals and operand stacks.
func (v *VM) ForEachRoot(fn func(*rt.Value)) {
	v.forEachGlobalRoot(fn)
	for _, t := range v.Threads {
		forEachThreadRoot(t, fn)
	}
}

// forEachGlobalRoot covers the non-stack roots: JTOC, interns, handles.
func (v *VM) forEachGlobalRoot(fn func(*rt.Value)) {
	for i := range v.Reg.JTOC {
		if v.Reg.JTOC[i].IsRef {
			fn(&v.Reg.JTOC[i])
		}
	}
	for i := range v.Reg.InternRoots {
		if v.Reg.InternRoots[i].IsRef {
			fn(&v.Reg.InternRoots[i])
		}
	}
	for i := range v.Handles {
		if v.Handles[i].IsRef {
			fn(&v.Handles[i])
		}
	}
}

// forEachThreadRoot covers one thread's frame locals and operand stacks.
func forEachThreadRoot(t *Thread, fn func(*rt.Value)) {
	for _, f := range t.Frames {
		for i := range f.Locals {
			if f.Locals[i].IsRef {
				fn(&f.Locals[i])
			}
		}
		for i := range f.Stack {
			if f.Stack[i].IsRef {
				fn(&f.Stack[i])
			}
		}
	}
}

// RootChunks implements gc.ChunkedRoots: it splits the root set into n
// disjoint enumerators for the parallel collector. Chunk 0 takes the
// global tables (JTOC, interns, handles); thread stacks — in a server the
// bulk of the slot count — are dealt round-robin across all n chunks. The
// chunks only partition existing slots, so they are safe to enumerate
// concurrently while the world is stopped.
func (v *VM) RootChunks(n int) []gc.Roots {
	if n <= 1 {
		return []gc.Roots{gc.RootsFunc(v.ForEachRoot)}
	}
	chunks := make([]gc.Roots, n)
	for i := 0; i < n; i++ {
		i := i
		chunks[i] = gc.RootsFunc(func(fn func(*rt.Value)) {
			if i == 0 {
				v.forEachGlobalRoot(fn)
			}
			for ti := i; ti < len(v.Threads); ti += n {
				forEachThreadRoot(v.Threads[ti], fn)
			}
		})
	}
	return chunks
}

// The VM is the parallel collector's partitioned root provider.
var _ gc.ChunkedRoots = (*VM)(nil)

// LazyDrainActive reports whether a lazy-transform drain is in flight: the
// window between an applied LazyTransform update and the moment its last
// tagged object has been transformed (or force-completed). During this
// window the renamed old class versions, UpdatedTo links, transformer class
// and scratch region legitimately outlive the pause.
func (v *VM) LazyDrainActive() bool { return v.DSULazyTouch != nil }

// RelocDrainActive reports whether a concurrent relocation drain is in
// flight: the window between an applied ConcurrentReloc update and drain
// finalize, during which from-space is held live behind the load barrier
// and (as with the lazy drain) the renamed old class versions, transformer
// class and scratch region legitimately outlive the pause.
func (v *VM) RelocDrainActive() bool { return v.DSURelocForce != nil }

// CollectGarbage runs a non-DSU collection. A collection error is fatal:
// the heap is left unusable (see gc.ErrToSpaceExhausted) and the VM is
// marked accordingly.
func (v *VM) CollectGarbage() (*gc.Result, error) {
	if v.DSURelocForce != nil {
		// A flip cannot run with the relocation load barrier armed and
		// from-space held; force-complete the drain first. It runs before
		// the lazy drain below: the lazy transformers read old copies whose
		// slots the relocation heals, and in deferred-pair mode the forced
		// finalize is what makes the lazy pair log final. A drain failure is
		// a failed collection — the heap is already marked unusable.
		if err := v.DSURelocForce(); err != nil {
			v.MarkHeapUnusable(err)
			return nil, v.FatalHeap
		}
	}
	if v.DSULazyDrain != nil {
		// A flip would invalidate the lazy pair log's raw addresses and
		// reclaim the old copies, so the residue is force-completed first.
		// Individual transformer failures during the forced drain are data
		// loss on the affected objects (they keep default field values, the
		// documented lazy failure mode); the collection itself then proceeds
		// on the consistent, fully drained heap.
		_ = v.DSULazyDrain()
	}
	res, err := v.GC.Collect(v, false)
	if err != nil {
		v.MarkHeapUnusable(err)
	}
	return res, err
}

// MarkHeapUnusable records a fatal collection failure. It is idempotent;
// the first cause wins.
func (v *VM) MarkHeapUnusable(err error) {
	if v.FatalHeap == nil {
		v.FatalHeap = fmt.Errorf("vm: heap unusable after failed collection: %w", err)
	}
}

// allocObject allocates an instance, collecting once on failure.
func (v *VM) allocObject(c *rt.Class) (rt.Addr, error) {
	v.stats.AllocObjects++
	if a, ok := v.Heap.AllocObject(c); ok {
		return a, nil
	}
	if err := v.gcForAlloc(); err != nil {
		return 0, err
	}
	if a, ok := v.Heap.AllocObject(c); ok {
		return a, nil
	}
	return 0, fmt.Errorf("vm: out of memory allocating %s (%d words)", c.Name, c.Size)
}

// allocArray allocates an array, collecting once on failure.
func (v *VM) allocArray(elemRef bool, n int) (rt.Addr, error) {
	if n < 0 {
		return 0, fmt.Errorf("vm: negative array size %d", n)
	}
	v.stats.AllocArrays++
	if a, ok := v.Heap.AllocArray(elemRef, n); ok {
		return a, nil
	}
	if err := v.gcForAlloc(); err != nil {
		return 0, err
	}
	if a, ok := v.Heap.AllocArray(elemRef, n); ok {
		return a, nil
	}
	return 0, fmt.Errorf("vm: out of memory allocating array of %d", n)
}

// gcForAlloc collects to satisfy an allocation. While the DSU engine's
// transformer phase runs, collection is disabled — the update log holds raw
// addresses a collection would invalidate — so allocation failure there is
// an immediate OOM (the paper sidesteps the same issue with a generous
// heap: "five times the minimum required size, such that the only
// collections are those DSU triggers").
func (v *VM) gcForAlloc() error {
	if v.FatalHeap != nil {
		return v.FatalHeap
	}
	if v.GCDisabled {
		return fmt.Errorf("vm: allocation failed while GC is disabled (transformer phase)")
	}
	_, err := v.CollectGarbage()
	return err
}

// PushHandle pins a reference across allocations; PopHandle releases it.
func (v *VM) PushHandle(a rt.Addr) *rt.Value {
	v.Handles = append(v.Handles, rt.RefVal(a))
	return &v.Handles[len(v.Handles)-1]
}

// PopHandle releases the most recent n handles.
func (v *VM) PopHandle(n int) {
	v.Handles = v.Handles[:len(v.Handles)-n]
}

// OSRReplace swaps a frame's code for freshly compiled base code of the
// same method (same bytecode, possibly a new class version's metadata).
//
// For a base-compiled frame the pc map is the identity — the precise
// analog of Jikes RVM OSR on base-compiled methods. For an opt-compiled
// frame (extension; the paper leaves it as future work) the compiled
// code's PCMap translates the pc, provided the frame is parked outside any
// inlined region; frames only rest at yield points and call boundaries,
// where opt and base operand stacks agree.
func (v *VM) OSRReplace(f *Frame, cm *rt.CompiledMethod) error {
	if cm.Level != rt.Base {
		return fmt.Errorf("vm: OSR target must be base-compiled (%s)", f.Method().FullName())
	}
	if f.CM.Method.Def != cm.Method.Def && f.CM.Method.ID() != cm.Method.ID() {
		return fmt.Errorf("vm: OSR across different methods")
	}
	newPC := f.PC
	switch f.CM.Level {
	case rt.Base:
		if len(cm.Code) != len(f.CM.Code) {
			return fmt.Errorf("vm: OSR pc map not identity for %s", f.Method().FullName())
		}
	case rt.Opt, rt.Fused:
		// The fused tier's pc map is total (the identity — in-place fusion
		// keeps indices aligned with base code), so unlike opt code a fused
		// frame is always mappable; a fused pc deoptimizes to its first
		// constituent's bytecode pc, which at a resting point has executed
		// neither constituent.
		if !OSRMappable(f) {
			return fmt.Errorf("vm: %s frame of %s not at a mappable pc (inlined region?)", f.CM.Level, f.Method().FullName())
		}
		newPC = f.CM.PCMap[f.PC]
		if newPC >= len(cm.Code) {
			return fmt.Errorf("vm: %s pc map out of range for %s", f.CM.Level, f.Method().FullName())
		}
	}
	if cm.MaxLocals > len(f.Locals) {
		grown := make([]rt.Value, cm.MaxLocals)
		copy(grown, f.Locals)
		f.Locals = grown
	}
	f.CM = cm
	f.PC = newPC
	return nil
}

// OSRRewrite forcibly moves a frame onto new base code at the given pc,
// with an optional locals remap (identity when nil). This implements the
// UpStare-style active-method update of the paper's §3.5: the method's
// bytecode *changed*, and the user-provided yield-point map asserts that
// the old frame state is meaningful at newPC in the new body.
func (v *VM) OSRRewrite(f *Frame, cm *rt.CompiledMethod, newPC int, locals map[int]int) error {
	if cm.Level != rt.Base {
		return fmt.Errorf("vm: active-method rewrite target must be base-compiled")
	}
	if newPC < 0 || newPC >= len(cm.Code) {
		return fmt.Errorf("vm: active-method rewrite pc %d out of range (len %d)", newPC, len(cm.Code))
	}
	size := cm.MaxLocals
	if len(f.Locals) > size {
		size = len(f.Locals)
	}
	newLocals := make([]rt.Value, size)
	if locals == nil {
		copy(newLocals, f.Locals)
	} else {
		for oldSlot, newSlot := range locals {
			if oldSlot < 0 || oldSlot >= len(f.Locals) || newSlot < 0 || newSlot >= size {
				return fmt.Errorf("vm: active-method locals map %d->%d out of range", oldSlot, newSlot)
			}
			newLocals[newSlot] = f.Locals[oldSlot]
		}
	}
	f.CM = cm
	f.PC = newPC
	f.Locals = newLocals
	return nil
}

// OSRMappable reports whether an opt- or fused-compiled frame's pc can be
// mapped back to bytecode. For opt code that means the pc is outside every
// inlined region; fused code's map is total, so fused frames are always
// mappable at any in-range pc.
func OSRMappable(f *Frame) bool {
	cm := f.CM
	return (cm.Level == rt.Opt || cm.Level == rt.Fused) && cm.PCMap != nil &&
		f.PC >= 0 && f.PC < len(cm.PCMap) && cm.PCMap[f.PC] >= 0
}

// statCounters are the raw steady-state counters, incremented on the cheap
// side of every scheduler/allocator path (never per instruction — the
// per-instruction counter is TotalSteps, which the simulated clock already
// pays for).
type statCounters struct {
	Slices          int64
	SchedulerScans  int64
	WakeChecks      int64
	ThreadsSpawned  int64
	ThreadsReaped   int64
	AllocObjects    int64
	AllocArrays     int64
	TracePromotions int64
}

// Stats is a snapshot of the VM's steady-state counters — the paper's
// Figure 5 claim ("stock ≈ DSU-capable ≈ updated") as numbers rather than
// an assertion. Instructions is total executed instructions; Slices is
// scheduling slices run; SchedulerScans is pickThread invocations;
// WakeChecks is blocked-thread wake-predicate evaluations; AllocObjects/
// AllocArrays count heap allocations triggered by executed code;
// RunnableQueue/BlockedThreads/LiveThreads/TableThreads describe the
// scheduler lists at snapshot time.
type Stats struct {
	Instructions   int64
	Slices         int64
	SchedulerScans int64
	WakeChecks     int64
	ThreadsSpawned int64
	ThreadsReaped  int64
	AllocObjects   int64
	AllocArrays    int64
	GCCollections  int64

	// TracePromotions counts frames hot-swapped onto the fused tier;
	// ICHits/ICMisses count inline-cache dispatch outcomes at cached
	// virtual call sites (fused/opt code only).
	TracePromotions int64
	ICHits          int64
	ICMisses        int64

	RunnableQueue  int
	BlockedThreads int
	LiveThreads    int
	TableThreads   int
	DeadErrorCount int
}

// Stats snapshots the steady-state counter block.
func (v *VM) Stats() Stats {
	return Stats{
		Instructions:   v.TotalSteps,
		Slices:         v.stats.Slices,
		SchedulerScans: v.stats.SchedulerScans,
		WakeChecks:     v.stats.WakeChecks,
		ThreadsSpawned: v.stats.ThreadsSpawned,
		ThreadsReaped:  v.stats.ThreadsReaped,
		AllocObjects:   v.stats.AllocObjects,
		AllocArrays:    v.stats.AllocArrays,
		GCCollections:  int64(v.GC.Collections),
		TracePromotions: v.stats.TracePromotions,
		ICHits:          v.icHits,
		ICMisses:        v.icMisses,
		RunnableQueue:  len(v.runq) - v.runqHead,
		BlockedThreads: len(v.blocked),
		LiveThreads:    v.liveThreads(),
		TableThreads:   len(v.Threads),
		DeadErrorCount: len(v.DeadErrors),
	}
}

// Delta subtracts a previous snapshot's monotonic counters from s, leaving
// the point-in-time gauges (queue depths, live threads) as observed in s.
// Use it to isolate the work done inside a measurement window.
func (s Stats) Delta(prev Stats) Stats {
	d := s
	d.Instructions -= prev.Instructions
	d.Slices -= prev.Slices
	d.SchedulerScans -= prev.SchedulerScans
	d.WakeChecks -= prev.WakeChecks
	d.ThreadsSpawned -= prev.ThreadsSpawned
	d.ThreadsReaped -= prev.ThreadsReaped
	d.AllocObjects -= prev.AllocObjects
	d.AllocArrays -= prev.AllocArrays
	d.GCCollections -= prev.GCCollections
	d.TracePromotions -= prev.TracePromotions
	d.ICHits -= prev.ICHits
	d.ICMisses -= prev.ICMisses
	return d
}

// Indirections reports the ablation counter.
func (v *VM) Indirections() int64 { return v.indirections }

// tracef emits one scheduler/DSU diagnostic line. The line goes to the
// legacy Trace writer (when set) and, consistently, into the flight
// recorder as an obs.KTrace event (when attached and enabled). With
// neither destination armed the cost is two nil checks and no formatting.
func (v *VM) tracef(format string, args ...any) {
	w := v.Trace
	rec := v.Rec.Enabled()
	if w == nil && !rec {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if w != nil {
		fmt.Fprintln(w, msg)
	}
	if rec {
		v.Rec.Emit(obs.KTrace, obs.LaneEngine, 0, msg)
	}
}

// PublishMetrics exports the VM's steady-state counters and gauges into
// the attached metrics registry: monotonic VM counters become monotonic
// registry counters (only the delta since the previous publish is added),
// scheduler-list depths become gauges. It is snapshot-based — nothing on
// the interpreter or scheduler hot path ever touches the registry.
func (v *VM) PublishMetrics() {
	if v.Metrics == nil {
		return
	}
	s := v.Stats()
	d := s.Delta(v.published)
	v.published = s
	m := v.Metrics
	m.Counter(obs.MInstructions).Add(d.Instructions)
	m.Counter(obs.MSlices).Add(d.Slices)
	m.Counter(obs.MHeapAllocObjects).Add(d.AllocObjects)
	m.Counter(obs.MHeapAllocArrays).Add(d.AllocArrays)
	m.Counter(obs.MGCCollections).Add(d.GCCollections)
	m.Counter(obs.MObjectsCopied).Add(int64(v.GC.CopiedObjects) - v.publishedCopied)
	v.publishedCopied = int64(v.GC.CopiedObjects)
	// JIT/IC activity (satellite of the fused tier): per-tier compile
	// counters, trace promotions, IC hit/miss counters, and the hit-rate
	// gauge — all delta-published, never written on the dispatch path.
	m.Counter(obs.MJITCompilesBase).Add(int64(v.JIT.BaseCompiles) - v.publishedJITBase)
	m.Counter(obs.MJITCompilesOpt).Add(int64(v.JIT.OptCompiles) - v.publishedJITOpt)
	m.Counter(obs.MJITCompilesFused).Add(int64(v.JIT.FusedCompiles) - v.publishedJITFused)
	v.publishedJITBase = int64(v.JIT.BaseCompiles)
	v.publishedJITOpt = int64(v.JIT.OptCompiles)
	v.publishedJITFused = int64(v.JIT.FusedCompiles)
	m.Counter(obs.MJITTracePromotions).Add(d.TracePromotions)
	m.Counter(obs.MJITICHits).Add(d.ICHits)
	m.Counter(obs.MJITICMisses).Add(d.ICMisses)
	if total := v.icHits + v.icMisses; total > 0 {
		m.Gauge(obs.MJITICHitRate).Set(float64(v.icHits) / float64(total))
	}
	m.Gauge(obs.MThreadsLive).Set(float64(s.LiveThreads))
	m.Gauge(obs.MThreadsBlocked).Set(float64(s.BlockedThreads))
	m.Gauge(obs.MRunnableQueue).Set(float64(s.RunnableQueue))
	m.Gauge(obs.MVMUptime).Set(time.Since(v.created).Seconds())
	if v.Rec != nil {
		// Flight-recorder ring overwrite loss, delta-published. A Reset()
		// rewinds the recorder's totals; resync instead of going negative.
		dropped := v.Rec.Dropped()
		if dropped >= v.publishedEvDropped {
			m.Counter(obs.MObsEventsDropped).Add(int64(dropped - v.publishedEvDropped))
		}
		v.publishedEvDropped = dropped
	}
	if v.Prof != nil {
		tot, drop := v.Prof.TotalSamples(), v.Prof.DroppedSamples()
		if tot >= v.publishedProfTotal {
			m.Counter(obs.MProfSamples).Add(tot - v.publishedProfTotal)
		}
		if drop >= v.publishedProfDropped {
			m.Counter(obs.MProfSamplesDropped).Add(drop - v.publishedProfDropped)
		}
		v.publishedProfTotal, v.publishedProfDropped = tot, drop
	}
}
