package vm

import (
	"runtime"
	"strings"
	"testing"

	"govolve/internal/obs"
)

// newProfDispatchVM is newDispatchVM plus an attached-but-disabled sampling
// profiler — the configuration a production VM runs in when profiling is
// armed but switched off. The disabled cost the gates below enforce is one
// nil-check in runSlice plus one atomic load in profileSlice, never anything
// per instruction.
func newProfDispatchVM(tb testing.TB) *VM {
	tb.Helper()
	v := newDispatchVM(tb)
	p := obs.NewProfiler(0)
	p.SetEnabled(false)
	v.AttachProfiler(p)
	v.Step(100) // re-warm after attach
	return v
}

// BenchmarkProfDisabledOverhead is BenchmarkInterpDispatch with a disabled
// profiler attached; compare against the bare benchmark to see what sampling
// costs when off.
func BenchmarkProfDisabledOverhead(b *testing.B) {
	v := newProfDispatchVM(b)
	b.ReportAllocs()
	start := v.TotalSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Step(1)
	}
	b.StopTimer()
	executed := v.TotalSteps - start
	if executed == 0 {
		b.Fatal("no instructions executed")
	}
	b.ReportMetric(float64(executed)/float64(b.N), "instructions/op")
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "instructions/s")
}

// TestProfDisabledZeroAlloc: with the profiler attached but disabled, the
// interpreter fast path still allocates nothing.
func TestProfDisabledZeroAlloc(t *testing.T) {
	v := newProfDispatchVM(t)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	before := v.TotalSteps
	allocs := testing.AllocsPerRun(50, func() {
		v.Step(10)
	})
	executed := v.TotalSteps - before
	if executed < 1000 {
		t.Fatalf("fast path barely ran: %d instructions", executed)
	}
	if allocs != 0 {
		t.Fatalf("disabled-profiler fast path allocates: %.1f allocs per 10 slices", allocs)
	}
}

// TestProfEnabledSteadyStateZeroAlloc: even with sampling ON, the steady
// state allocates nothing once every frame key has been seen — the scratch
// buffer is reused and names register once.
func TestProfEnabledSteadyStateZeroAlloc(t *testing.T) {
	v := newDispatchVM(t)
	v.AttachProfiler(obs.NewProfiler(64))
	v.Step(200) // populate profSeen and size the scratch buffer
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	allocs := testing.AllocsPerRun(50, func() {
		v.Step(10)
	})
	if allocs != 0 {
		t.Fatalf("enabled-profiler steady state allocates: %.1f allocs per 10 slices", allocs)
	}
}

// TestProfDisabledOverheadGate is the profiler's ≤2% dispatch gate. Skipped
// under -race: tsan instruments every access with a function call, so a
// relative throughput bound would measure the instrumentation, not the
// dispatch loop (same policy as the heap barrier gates).
func TestProfDisabledOverheadGate(t *testing.T) {
	if raceEnabled {
		t.Skip("throughput gate is meaningless under the race detector")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	base := newDispatchVM(t)
	inst := newProfDispatchVM(t)

	const (
		slices   = 400
		rounds   = 5
		attempts = 4
		floor    = 0.98 // instrumented must hit ≥98% of baseline throughput
	)
	var lastRatio float64
	for attempt := 0; attempt < attempts; attempt++ {
		baseBest, instBest := 0.0, 0.0
		for r := 0; r < rounds; r++ {
			// Interleave so clock drift and background load hit both sides.
			if b := dispatchRate(t, base, slices); b > baseBest {
				baseBest = b
			}
			if i := dispatchRate(t, inst, slices); i > instBest {
				instBest = i
			}
		}
		lastRatio = instBest / baseBest
		if lastRatio >= floor {
			return
		}
	}
	t.Fatalf("disabled-profiler dispatch at %.1f%% of baseline after %d attempts, want ≥%.0f%%",
		lastRatio*100, attempts, floor*100)
}

// TestProfilerSamplesInterpreterFrames: an enabled profiler attached to a
// running VM collects weighted, version-attributed samples at slice
// boundaries.
func TestProfilerSamplesInterpreterFrames(t *testing.T) {
	v := newDispatchVM(t)
	p := obs.NewProfiler(256)
	v.AttachProfiler(p)
	before := v.TotalSteps
	v.Step(50)
	executed := v.TotalSteps - before
	if p.TotalSamples() == 0 {
		t.Fatal("no samples after 50 slices")
	}
	var weight int64
	for _, l := range p.Folded() {
		weight += l.Weight
		if !strings.Contains(l.Stack, "@c") {
			t.Fatalf("stack %q lacks a class-version discriminator", l.Stack)
		}
	}
	// Every interpreted instruction of the sampled slices is attributed.
	if weight <= 0 || weight > executed {
		t.Fatalf("folded weight %d vs %d instructions executed", weight, executed)
	}
}
