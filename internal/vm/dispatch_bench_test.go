package vm

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"govolve/internal/asm"
)

// dispatchLoopSrc is a tight arithmetic loop: the interpreter fast path with
// no calls, no allocation, and one taken backedge per iteration. An infinite
// loop lets the harness pump as many slices as it likes.
const dispatchLoopSrc = `
class Hot {
  static method main()V {
    const 0
    store 0
    const 1
    store 1
  loop:
    load 0
    load 1
    add
    const 3
    mul
    const 7
    rem
    store 0
    load 1
    const 1
    add
    const 1048575
    and
    store 1
    goto loop
  }
}
`

// newDispatchVM builds a VM running the arithmetic loop and warms it past
// JIT recompilation and slice-ring growth so steady state is measured.
// With default options the hot loop trace-promotes onto the fused tier
// during warmup, so this measures the current production configuration.
func newDispatchVM(tb testing.TB) *VM {
	return newDispatchVMOpts(tb, Options{})
}

// newDispatchVMOpts is newDispatchVM with tier selection: pass
// TraceThreshold -1 + a huge OptThreshold for the base-only interpreter,
// or NoInlineCache to isolate the fusion win from the IC win.
func newDispatchVMOpts(tb testing.TB, opts Options) *VM {
	tb.Helper()
	var out bytes.Buffer
	opts.HeapWords = 1 << 14
	opts.Out = &out
	v, err := New(opts)
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := asm.AssembleProgram("dispatch.jva", dispatchLoopSrc)
	if err != nil {
		tb.Fatal(err)
	}
	if err := v.LoadProgram(prog); err != nil {
		tb.Fatal(err)
	}
	if _, err := v.SpawnMain("Hot"); err != nil {
		tb.Fatal(err)
	}
	// Warmup: enough slices for adaptive recompilation and for the frame's
	// operand stack and scheduler structures to reach their final capacity.
	v.Step(500)
	return v
}

// BenchmarkInterpDispatch measures steady-state interpreter dispatch: one op
// is one scheduling slice (Quantum instructions). It reports instructions
// per op and per second, plus allocs/op — the inner loop must be
// allocation-free.
func BenchmarkInterpDispatch(b *testing.B) {
	benchDispatch(b, newDispatchVM(b))
}

// benchDispatch measures steady-state dispatch on an already-warm VM.
func benchDispatch(b *testing.B, v *VM) {
	b.Helper()
	b.ReportAllocs()
	start := v.TotalSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Step(1)
	}
	b.StopTimer()
	executed := v.TotalSteps - start
	if executed == 0 {
		b.Fatal("no instructions executed")
	}
	b.ReportMetric(float64(executed)/float64(b.N), "instructions/op")
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "instructions/s")
}

// BenchmarkInterpDispatchBase pins the pre-fusion interpreter: trace
// promotion disabled, opt recompilation out of reach. This is the PR 1
// number — the denominator of the fused-tier speedup claim.
func BenchmarkInterpDispatchBase(b *testing.B) {
	v := newDispatchVMOpts(b, Options{TraceThreshold: -1, OptThreshold: 1 << 30})
	benchDispatch(b, v)
}

// BenchmarkInterpDispatchFused measures the fused tier explicitly (trace
// promotion fires during warmup; the loop runs as superinstructions).
func BenchmarkInterpDispatchFused(b *testing.B) {
	v := newDispatchVMOpts(b, Options{})
	if v.Stats().TracePromotions == 0 {
		b.Fatal("warmup did not trace-promote the hot loop")
	}
	benchDispatch(b, v)
}

// TestInterpFastPathZeroAlloc is the guard: after warmup, interpreting the
// arithmetic fast path performs zero heap allocations per instruction —
// no closure churn, no boxing, no scheduler garbage. Runs the base tier
// explicitly; TestFusedDispatchZeroAlloc covers the fused tier.
func TestInterpFastPathZeroAlloc(t *testing.T) {
	v := newDispatchVMOpts(t, Options{TraceThreshold: -1, OptThreshold: 1 << 30})
	// One more warm round so every slice-local structure has grown.
	v.Step(100)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	before := v.TotalSteps
	allocs := testing.AllocsPerRun(50, func() {
		v.Step(10)
	})
	executed := v.TotalSteps - before
	if executed < 1000 {
		t.Fatalf("fast path barely ran: %d instructions", executed)
	}
	if allocs != 0 {
		t.Fatalf("interpreter fast path allocates: %.1f allocs per 10 slices (%d instructions executed)", allocs, executed)
	}
}

// TestFusedDispatchZeroAlloc is the fused-tier guard: after trace promotion
// the superinstruction fast path — fused dispatch plus inline-cache-carrying
// code — must also run allocation-free. A single alloc per op here would
// erase the tier's win under GC pressure.
func TestFusedDispatchZeroAlloc(t *testing.T) {
	v := newDispatchVMOpts(t, Options{})
	v.Step(100)
	if v.Stats().TracePromotions == 0 {
		t.Fatal("warmup did not trace-promote the hot loop")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	before := v.TotalSteps
	allocs := testing.AllocsPerRun(50, func() {
		v.Step(10)
	})
	executed := v.TotalSteps - before
	if executed < 1000 {
		t.Fatalf("fused fast path barely ran: %d instructions", executed)
	}
	if allocs != 0 {
		t.Fatalf("fused fast path allocates: %.1f allocs per 10 slices (%d instructions executed)", allocs, executed)
	}
}

// TestFusedSpeedupRatio is the perf tripwire: the fused tier must execute
// the arithmetic loop at least 1.5x as fast as the base interpreter. Skipped
// under the race detector, whose instrumentation swamps dispatch cost.
// Best-of-three on each side to shrug off scheduler noise.
func TestFusedSpeedupRatio(t *testing.T) {
	if raceEnabled {
		t.Skip("dispatch timing is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	measure := func(v *VM) float64 {
		best := 0.0
		for round := 0; round < 3; round++ {
			start := v.TotalSteps
			t0 := time.Now()
			v.Step(2000)
			el := time.Since(t0)
			if el <= 0 {
				continue
			}
			if r := float64(v.TotalSteps-start) / el.Seconds(); r > best {
				best = r
			}
		}
		return best
	}
	base := measure(newDispatchVMOpts(t, Options{TraceThreshold: -1, OptThreshold: 1 << 30}))
	fused := measure(newDispatchVMOpts(t, Options{}))
	if base == 0 {
		t.Fatal("base tier measured zero throughput")
	}
	ratio := fused / base
	t.Logf("base %.0f ins/s, fused %.0f ins/s, ratio %.2fx", base, fused, ratio)
	if ratio < 1.5 {
		t.Fatalf("fused tier only %.2fx over base, want >= 1.5x", ratio)
	}
}
