package vm

import (
	"bytes"
	"runtime"
	"testing"

	"govolve/internal/asm"
)

// dispatchLoopSrc is a tight arithmetic loop: the interpreter fast path with
// no calls, no allocation, and one taken backedge per iteration. An infinite
// loop lets the harness pump as many slices as it likes.
const dispatchLoopSrc = `
class Hot {
  static method main()V {
    const 0
    store 0
    const 1
    store 1
  loop:
    load 0
    load 1
    add
    const 3
    mul
    const 7
    rem
    store 0
    load 1
    const 1
    add
    const 1048575
    and
    store 1
    goto loop
  }
}
`

// newDispatchVM builds a VM running the arithmetic loop and warms it past
// JIT recompilation and slice-ring growth so steady state is measured.
func newDispatchVM(tb testing.TB) *VM {
	tb.Helper()
	var out bytes.Buffer
	v, err := New(Options{HeapWords: 1 << 14, Out: &out})
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := asm.AssembleProgram("dispatch.jva", dispatchLoopSrc)
	if err != nil {
		tb.Fatal(err)
	}
	if err := v.LoadProgram(prog); err != nil {
		tb.Fatal(err)
	}
	if _, err := v.SpawnMain("Hot"); err != nil {
		tb.Fatal(err)
	}
	// Warmup: enough slices for adaptive recompilation and for the frame's
	// operand stack and scheduler structures to reach their final capacity.
	v.Step(500)
	return v
}

// BenchmarkInterpDispatch measures steady-state interpreter dispatch: one op
// is one scheduling slice (Quantum instructions). It reports instructions
// per op and per second, plus allocs/op — the inner loop must be
// allocation-free.
func BenchmarkInterpDispatch(b *testing.B) {
	v := newDispatchVM(b)
	b.ReportAllocs()
	start := v.TotalSteps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Step(1)
	}
	b.StopTimer()
	executed := v.TotalSteps - start
	if executed == 0 {
		b.Fatal("no instructions executed")
	}
	b.ReportMetric(float64(executed)/float64(b.N), "instructions/op")
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "instructions/s")
}

// TestInterpFastPathZeroAlloc is the guard: after warmup, interpreting the
// arithmetic fast path performs zero heap allocations per instruction —
// no closure churn, no boxing, no scheduler garbage.
func TestInterpFastPathZeroAlloc(t *testing.T) {
	v := newDispatchVM(t)
	// One more warm round so every slice-local structure has grown.
	v.Step(100)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	before := v.TotalSteps
	allocs := testing.AllocsPerRun(50, func() {
		v.Step(10)
	})
	executed := v.TotalSteps - before
	if executed < 1000 {
		t.Fatalf("fast path barely ran: %d instructions", executed)
	}
	if allocs != 0 {
		t.Fatalf("interpreter fast path allocates: %.1f allocs per 10 slices (%d instructions executed)", allocs, executed)
	}
}
