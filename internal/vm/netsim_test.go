package vm

import (
	"strings"
	"testing"
)

// TestAcceptContract pins NetSim.accept's (id, done) semantics: done=true
// with id=-1 means "the listener is gone or closed" (the call completes
// without a connection), done=false means "open but empty backlog" (the
// caller should block), and backlog delivery is FIFO.
func TestAcceptContract(t *testing.T) {
	cases := []struct {
		name     string
		setup    func(n *NetSim)
		port     int64
		wantID   int64
		wantDone bool
	}{
		{
			name:     "nil listener (never bound)",
			setup:    func(n *NetSim) {},
			port:     80,
			wantID:   -1,
			wantDone: true,
		},
		{
			name: "closed listener (unlisten tombstone)",
			setup: func(n *NetSim) {
				if _, err := n.listen(80); err != nil {
					t.Fatal(err)
				}
				n.unlisten(80)
			},
			port:     80,
			wantID:   -1,
			wantDone: true,
		},
		{
			name: "empty open backlog blocks",
			setup: func(n *NetSim) {
				if _, err := n.listen(80); err != nil {
					t.Fatal(err)
				}
			},
			port:     80,
			wantID:   -1,
			wantDone: false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := NewNetSim()
			c.setup(n)
			id, done := n.accept(c.port)
			if id != c.wantID || done != c.wantDone {
				t.Fatalf("accept(%d) = (%d, %v), want (%d, %v)", c.port, id, done, c.wantID, c.wantDone)
			}
		})
	}

	t.Run("FIFO order", func(t *testing.T) {
		n := NewNetSim()
		if _, err := n.listen(80); err != nil {
			t.Fatal(err)
		}
		var want []int64
		for i := 0; i < 3; i++ {
			id, err := n.Connect(80)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, id)
		}
		for i, w := range want {
			id, done := n.accept(80)
			if !done || id != w {
				t.Fatalf("accept #%d = (%d, %v), want (%d, true)", i, id, done, w)
			}
		}
		if id, done := n.accept(80); id != -1 || done {
			t.Fatalf("drained accept = (%d, %v), want (-1, false)", id, done)
		}
	})
}

// TestListenerUnlistenAndRebind exercises the restart-across-update path:
// a server releases its port with Net.unlisten and a later Net.listen on
// the same port succeeds (the seed VM returned "port already bound"
// forever). Queued-but-unaccepted connections are refused at unlisten.
func TestListenerUnlistenAndRebind(t *testing.T) {
	v, _ := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class S {
  static method serve(I)V {
    load 0
    invokestatic Net.listen(I)I
    pop
    load 0
    invokestatic Net.accept(I)I
    store 1
    load 1
    iflt done
    load 1
    ldc "hi"
    invokestatic Net.send(ILString;)V
    load 1
    invokestatic Net.close(I)V
  done:
    load 0
    invokestatic Net.unlisten(I)V
    return
  }
  static method main()V {
    const 80
    invokestatic S.serve(I)V
    const 80
    invokestatic S.serve(I)V
    return
  }
}`)
	if _, err := v.SpawnMain("S"); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		// Wait for the (re)bound listener.
		ok := false
		for i := 0; i < 200; i++ {
			v.Step(5)
			if v.Net.Listening(80) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("round %d: port 80 never (re)bound", round)
		}
		conn, err := v.Net.Connect(80)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := ""
		for i := 0; i < 200; i++ {
			v.Step(5)
			if line, ready := v.Net.ClientRecv(conn); ready {
				got = line
				break
			}
		}
		if got != "hi" {
			t.Fatalf("round %d: response = %q, want \"hi\"", round, got)
		}
		if !v.Net.ClientClosed(conn) {
			// Let the server's close land, then observe it (which also
			// lets the conn be reaped).
			v.Step(20)
			v.Net.ClientClosed(conn)
		}
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	for _, th := range v.Threads {
		if th.Err != nil {
			t.Fatalf("thread %s: %v", th.Name, th.Err)
		}
	}
	if v.Net.Listening(80) {
		t.Fatal("port 80 still listening after final unlisten")
	}
}

// TestAcceptWakesOnUnlisten: a thread blocked in Net.accept must wake when
// the port is unlistened — the hasPending !Open branch the seed VM could
// never reach — and observe id=-1 instead of hanging forever.
func TestAcceptWakesOnUnlisten(t *testing.T) {
	v, out := newTestVM(t, 1<<16)
	loadSrc(t, v, `
class S {
  static method main()V {
    const 80
    invokestatic Net.listen(I)I
    pop
    const 80
    invokestatic Net.accept(I)I
    invokestatic System.printInt(I)V
    return
  }
}`)
	if _, err := v.SpawnMain("S"); err != nil {
		t.Fatal(err)
	}
	v.Step(50) // server is now blocked in accept
	if got := v.Step(10); got != 0 {
		t.Fatalf("server should be blocked, ran %d slices", got)
	}
	v.Net.unlisten(80)
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "-1" {
		t.Fatalf("accept after unlisten printed %q, want -1", got)
	}
}

// TestNetSimConnReaping: sustained request load against a spawning server
// must not grow the conns map, the listener map, or the VM thread table —
// the Fig. 5 steady-state leak fixed in this change. The seed VM grew
// n.conns by one per request cycle, forever.
func TestNetSimConnReaping(t *testing.T) {
	v, _ := newTestVM(t, 1<<18)
	loadSrc(t, v, `
class Handler {
  field conn I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Handler.conn I
    return
  }
  method run()V {
  lineloop:
    load 0
    getfield Handler.conn I
    invokestatic Net.recvLine(I)LString;
    store 1
    load 1
    ifnull closed
    load 0
    getfield Handler.conn I
    ldc "ok: "
    load 1
    invokevirtual String.concat(LString;)LString;
    invokestatic Net.send(ILString;)V
    goto lineloop
  closed:
    load 0
    getfield Handler.conn I
    invokestatic Net.close(I)V
    return
  }
}
class Srv {
  static method main()V {
    const 80
    invokestatic Net.listen(I)I
    store 0
  acceptloop:
    load 0
    invokestatic Net.accept(I)I
    store 1
    load 1
    iflt out
    new Handler
    dup
    load 1
    invokespecial Handler.<init>(I)V
    invokestatic Thread.spawn(LObject;)V
    goto acceptloop
  out:
    return
  }
}`)
	if _, err := v.SpawnMain("Srv"); err != nil {
		t.Fatal(err)
	}
	v.Step(20)
	const cycles = 150
	for c := 0; c < cycles; c++ {
		conn, err := v.Net.Connect(80)
		if err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		if err := v.Net.ClientSend(conn, "ping"); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		got := false
		for i := 0; i < 2000; i++ {
			v.Step(2)
			if _, ok := v.Net.ClientRecv(conn); ok {
				got = true
				break
			}
		}
		if !got {
			t.Fatalf("cycle %d: request timed out", c)
		}
		v.Net.ClientClose(conn)
		v.Step(30) // let the handler observe the close, close its side, and exit
	}
	if n := v.Net.ConnCount(); n > 4 {
		t.Fatalf("conns map grew: %d live conns after %d cycles (leak)", n, cycles)
	}
	if n := v.Net.ListenerCount(); n > 2 {
		t.Fatalf("listener map grew: %d entries", n)
	}
	// One handler thread was spawned per cycle; cleanly-dead handlers must
	// be reaped so the table stays bounded by the reap threshold, not by
	// total connections served.
	if n := len(v.Threads); n > reapThreshold+8 {
		t.Fatalf("thread table grew: %d threads after %d cycles (reap broken)", n, cycles)
	}
	st := v.Stats()
	if st.ThreadsReaped == 0 {
		t.Fatal("no threads reaped during sustained load")
	}
	if st.ThreadsSpawned < cycles {
		t.Fatalf("expected ≥%d spawns, got %d", cycles, st.ThreadsSpawned)
	}
}

// TestErrorDeadThreadsReapedIntoLog: threads killed by runtime errors are
// eventually reaped like clean deaths — their errors land in the bounded
// DeadErrors log instead of retaining whole thread objects (stacks and all)
// on every scheduler scan and GC root walk forever.
func TestErrorDeadThreadsReapedIntoLog(t *testing.T) {
	v, _ := newTestVM(t, 1<<18)
	loadSrc(t, v, `
class Crasher {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method run()V {
    trap "handler crashed"
  }
}
class T {
  static method main()V {
    const 0
    store 0
  loop:
    load 0
    const 200
    if_icmpge done
    new Crasher
    dup
    invokespecial Crasher.<init>()V
    invokestatic Thread.spawn(LObject;)V
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    return
  }
}`)
	if _, err := v.SpawnMain("T"); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(v.Threads); n > reapThreshold+8 {
		t.Fatalf("error-dead threads retained: table has %d threads", n)
	}
	if len(v.DeadErrors) == 0 {
		t.Fatal("no DeadErrors recorded for reaped crashers")
	}
	if len(v.DeadErrors) > maxDeadErrors {
		t.Fatalf("DeadErrors unbounded: %d entries (cap %d)", len(v.DeadErrors), maxDeadErrors)
	}
	for _, de := range v.DeadErrors {
		if !strings.Contains(de.Err.Error(), "handler crashed") {
			t.Fatalf("unexpected dead error: %v", de.Err)
		}
		if de.Name != "Crasher.run" {
			t.Fatalf("unexpected dead thread name: %q", de.Name)
		}
	}
}
