package upt

import (
	"testing"

	"govolve/internal/asm"
	"govolve/internal/classfile"
)

func methodOf(t *testing.T, src, class, name string, sig classfile.Sig) *classfile.Method {
	t.Helper()
	classes, err := asm.Assemble("m.jva", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range classes {
		if c.Name == class {
			if m := c.Method(name, sig); m != nil {
				return m
			}
		}
	}
	t.Fatalf("no %s.%s", class, name)
	return nil
}

func TestInferPCMapInsertion(t *testing.T) {
	old := methodOf(t, `
class A {
  static method run()V {
  top:
    const 1
    invokestatic System.printInt(I)V
    goto top
  }
}`, "A", "run", "()V")
	new_ := methodOf(t, `
class A {
  static method run()V {
  top:
    const 1
    invokestatic System.printInt(I)V
    const 2
    invokestatic System.printInt(I)V
    goto top
  }
}`, "A", "run", "()V")
	m, ok := InferPCMap(old, new_)
	if !ok {
		t.Fatal("inference failed for pure insertion")
	}
	// The shared prefix maps identically; the goto maps to its shifted
	// position with an unmoved target.
	if m.PC[0] != 0 || m.PC[1] != 1 {
		t.Fatalf("prefix map wrong: %v", m.PC)
	}
	if got, ok := m.PC[2]; !ok || got != 4 {
		t.Fatalf("goto map = %v (%v), want 4", got, ok)
	}
}

func TestInferPCMapDeletion(t *testing.T) {
	old := methodOf(t, `
class A {
  static method run()V {
  top:
    const 1
    invokestatic System.printInt(I)V
    const 2
    invokestatic System.printInt(I)V
    goto top
  }
}`, "A", "run", "()V")
	new_ := methodOf(t, `
class A {
  static method run()V {
  top:
    const 1
    invokestatic System.printInt(I)V
    goto top
  }
}`, "A", "run", "()V")
	m, ok := InferPCMap(old, new_)
	if !ok {
		t.Fatal("inference failed for pure deletion")
	}
	if m.PC[0] != 0 || m.PC[1] != 1 {
		t.Fatalf("map = %v", m.PC)
	}
	if _, mapped := m.PC[2]; mapped {
		t.Fatal("deleted instruction should be unmapped")
	}
}

func TestInferPCMapRejectsTotalRewrite(t *testing.T) {
	old := methodOf(t, `
class A {
  static method run()V {
    const 1
    const 2
    add
    pop
    return
  }
}`, "A", "run", "()V")
	new_ := methodOf(t, `
class A {
  static method run()V {
    null
    ifnull done
  done:
    return
  }
}`, "A", "run", "()V")
	if _, ok := InferPCMap(old, new_); ok {
		t.Fatal("inference accepted a total rewrite")
	}
}

func TestInferPCMapRejectsMovedBranchTargets(t *testing.T) {
	// The branch instruction itself matches textually only if its target
	// index matches; a target that moved makes the branch instruction
	// unequal, so it must not be mapped.
	old := methodOf(t, `
class A {
  static method run(I)V {
  top:
    load 0
    ifeq top
    return
  }
}`, "A", "run", "(I)V")
	new_ := methodOf(t, `
class A {
  static method run(I)V {
    nop
    nop
    nop
  top:
    load 0
    ifeq top
    return
  }
}`, "A", "run", "(I)V")
	m, ok := InferPCMap(old, new_)
	if ok {
		// If enough aligned, the branch (old ifeq A=0 vs new ifeq A=3)
		// must be unmapped.
		if _, mapped := m.PC[1]; mapped {
			t.Fatalf("moved-target branch mapped: %v", m.PC)
		}
	}
}

func TestInferActiveUpdatesOnSpec(t *testing.T) {
	oldP, err := asm.AssembleProgram("o.jva", `
class L {
  static method run()V {
  top:
    const 1
    invokestatic System.printInt(I)V
    goto top
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	newP, err := asm.AssembleProgram("n.jva", `
class L {
  static method run()V {
  top:
    const 1
    invokestatic System.printInt(I)V
    const 9
    invokestatic System.printInt(I)V
    goto top
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Prepare("1", oldP, newP)
	if err != nil {
		t.Fatal(err)
	}
	unmapped := s.InferActiveUpdates()
	if len(unmapped) != 0 {
		t.Fatalf("unmapped: %v", unmapped)
	}
	ref := MethodRef{Class: "L", Name: "run", Sig: "()V"}
	if _, ok := s.ActiveUpdates[ref]; !ok {
		t.Fatalf("no active update for %v: %v", ref, s.ActiveUpdates)
	}
}
