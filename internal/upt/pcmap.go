package upt

import (
	"govolve/internal/bytecode"
	"govolve/internal/classfile"
)

// InferPCMap computes a yield-point map between two bodies of the same
// method by longest-common-subsequence alignment of their instructions.
// It supports the common shape of active-method updates — instructions
// inserted into or deleted from a loop — automatically, the tooling role
// UpStare's mapping generator plays. Instructions that do not align (and
// branches whose resolved targets moved) are simply absent from the map;
// a frame parked at an unmapped pc blocks the update as usual, and the
// next attempt retries.
//
// ok is false when the bodies share no structure at all (under half the
// old body aligns), in which case a hand-written map is required.
func InferPCMap(old, new_ *classfile.Method) (ActivePCMap, bool) {
	n, m := len(old.Code), len(new_.Code)
	if n == 0 || m == 0 {
		return ActivePCMap{}, false
	}
	// LCS table over instruction equality.
	dp := make([][]int16, n+1)
	for i := range dp {
		dp[i] = make([]int16, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if old.Code[i].Equal(new_.Code[j]) {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	pc := make(map[int]int)
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case old.Code[i].Equal(new_.Code[j]):
			pc[i] = j
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	// Drop alignments whose branch targets are themselves unmapped or
	// moved inconsistently: resuming at such a pc could jump into code
	// with different meaning.
	for i, j := range pc {
		ins := old.Code[i]
		if !ins.Op.IsBranch() {
			continue
		}
		tgt, ok := pc[int(ins.A)]
		if !ok || int64(tgt) != new_.Code[j].A {
			delete(pc, i)
		}
	}
	if len(pc)*2 < n {
		return ActivePCMap{}, false
	}
	return ActivePCMap{PC: pc}, true
}

// InferActiveUpdates fills the spec's ActiveUpdates with inferred maps for
// every method-body update whose bodies align, enabling the UpStare-style
// path for updates that would otherwise abort on always-running methods.
// It returns the methods that could not be mapped.
func (s *Spec) InferActiveUpdates() []MethodRef {
	var unmapped []MethodRef
	addFor := func(ref MethodRef, om, nm *classfile.Method) {
		if om == nil || nm == nil || om.Native || nm.Native {
			return
		}
		if bytecode.CodeEqual(om.Code, nm.Code) {
			return
		}
		if m, ok := InferPCMap(om, nm); ok {
			s.AddActiveUpdate(ref, m)
		} else {
			unmapped = append(unmapped, ref)
		}
	}
	for _, ref := range s.MethodBodyUpdates {
		oc, nc := s.Old.Classes[ref.Class], s.New.Classes[ref.Class]
		if oc == nil || nc == nil {
			continue
		}
		addFor(ref, oc.Method(ref.Name, ref.Sig), nc.Method(ref.Name, ref.Sig))
	}
	// Changed methods inside class updates can be actively updated too,
	// as long as their signatures survived.
	for _, name := range s.ClassUpdates {
		oc, nc := s.Old.Classes[name], s.New.Classes[name]
		if oc == nil || nc == nil {
			continue
		}
		for _, nm := range nc.Methods {
			om := oc.Method(nm.Name, nm.Sig)
			if om == nil {
				continue
			}
			addFor(MethodRef{name, nm.Name, nm.Sig}, om, nm)
		}
	}
	return unmapped
}
