package upt

import (
	"govolve/internal/classfile"
)

// generateTransformers builds the default JvolveTransformers class: for
// every class update C, a class transformer jvolveClass(LC;)V copying
// unchanged static fields from the renamed old class, and an object
// transformer jvolveObject(LC;Lv<tag>_C;)V copying unchanged instance
// fields. New and type-changed fields keep their default (zero/null)
// values, exactly like the paper's UPT-generated defaults; programmers
// customize via Spec.OverrideTransformer. Java-style overloading
// distinguishes the transformers of different classes — our method
// identities include the full signature, so overloading just works.
func generateTransformers(s *Spec) (*classfile.Class, error) {
	b := classfile.NewClass(TransformersClassName, "Object")
	s.DefaultObjectTransformers = make(map[string]bool)
	s.DefaultClassTransformers = make(map[string]bool)
	for _, name := range s.ClassUpdates {
		odef := s.Old.Classes[name]
		ndef := s.New.Classes[name]
		if odef == nil || ndef == nil {
			continue
		}
		renamed := s.RenamedName(name)
		flat := s.OldFlatDefs[renamed]

		// Class transformer: copy statics with unchanged name+type.
		cb := b.StaticMethod("jvolveClass", classfile.Sig("(L"+name+";)V"))
		for _, nf := range ndef.StaticFields() {
			of := flat.Field(nf.Name)
			if of == nil || !of.Static || of.Desc != nf.Desc {
				continue
			}
			cb.GetStatic(renamed, nf.Name, nf.Desc)
			cb.PutStatic(name, nf.Name, nf.Desc)
		}
		b = cb.Ret().Done()

		// Object transformer: copy the full flattened instance field set
		// (inherited fields included — each object transforms exactly
		// once, as a whole).
		ob := b.StaticMethod("jvolveObject",
			classfile.Sig("(L"+name+";L"+renamed+";)V"))
		newLayout := instanceLayout(s.New, ndef)
		for _, nf := range newLayout {
			of := flat.Field(nf.Name)
			if of == nil || of.Static || of.Desc != nf.Desc {
				continue
			}
			ob.Load(0)
			ob.Load(1)
			ob.GetField(renamed, nf.Name, nf.Desc)
			ob.PutField(name, nf.Name, nf.Desc)
		}
		b = ob.Ret().Done()
		s.DefaultObjectTransformers[name] = true
		s.DefaultClassTransformers[name] = true
	}
	return b.Build()
}

// instanceLayout returns a class's full instance field list, inherited
// fields first, matching runtime layout order.
func instanceLayout(p *classfile.Program, def *classfile.Class) []classfile.Field {
	var chain []*classfile.Class
	for c := def; c != nil; {
		chain = append([]*classfile.Class{c}, chain...)
		if c.Super == "" {
			break
		}
		c = p.Classes[c.Super]
	}
	var out []classfile.Field
	for _, c := range chain {
		out = append(out, c.InstanceFields()...)
	}
	return out
}
