package upt

import (
	"testing"
	"testing/quick"

	"govolve/internal/asm"
	"govolve/internal/classfile"
)

func prog(t *testing.T, src string) *classfile.Program {
	t.Helper()
	p, err := asm.AssembleProgram("t.jva", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const v1 = `
class User {
  private field name LString;
  field age I
  static field count I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method getName()LString; {
    load 0
    getfield User.name LString;
    return
  }
  method setAge(I)V {
    load 0
    load 1
    putfield User.age I
    return
  }
}
class Admin extends User {
  field level I
  method promote()V {
    load 0
    load 0
    getfield Admin.level I
    const 1
    add
    putfield Admin.level I
    return
  }
}
class Report {
  static method describe(LUser;)LString; {
    load 0
    invokevirtual User.getName()LString;
    return
  }
  static method untouched()I {
    const 1
    return
  }
}
`

// v2: User gains a field (class update), getName body changes, setAge's
// signature changes, Report.describe bytecode unchanged (indirect), a new
// class appears, and Admin is transitively affected.
const v2 = `
class User {
  private field name LString;
  field age I
  field email LString;
  static field count I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method getName()LString; {
    load 0
    getfield User.name LString;
    ifnull anon
    load 0
    getfield User.name LString;
    return
  anon:
    ldc "anonymous"
    return
  }
  method setAge(II)V {
    load 0
    load 1
    load 2
    add
    putfield User.age I
    return
  }
}
class Admin extends User {
  field level I
  method promote()V {
    load 0
    load 0
    getfield Admin.level I
    const 1
    add
    putfield Admin.level I
    return
  }
}
class Report {
  static method describe(LUser;)LString; {
    load 0
    invokevirtual User.getName()LString;
    return
  }
  static method untouched()I {
    const 1
    return
  }
}
class Audit {
  static method check()I {
    const 0
    return
  }
}
`

func TestPrepareClassifiesChanges(t *testing.T) {
	old, new_ := prog(t, v1), prog(t, v2)
	s, err := Prepare("1", old, new_)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.AddedClasses) != 1 || s.AddedClasses[0] != "Audit" {
		t.Fatalf("added = %v", s.AddedClasses)
	}
	if len(s.DeletedClasses) != 0 {
		t.Fatalf("deleted = %v", s.DeletedClasses)
	}
	if !s.IsClassUpdate("User") {
		t.Fatal("User should be a class update (field added, sig changed)")
	}
	if !s.IsClassUpdate("Admin") {
		t.Fatal("Admin should be transitively affected (superclass layout shifts)")
	}
	for _, c := range s.DirectClassUpdates {
		if c == "Admin" {
			t.Fatal("Admin should not be a *direct* class update")
		}
	}
	if s.IsClassUpdate("Report") {
		t.Fatal("Report is not a class update")
	}

	d := s.Diffs["User"]
	if d == nil {
		t.Fatal("no diff for User")
	}
	if len(d.FieldsAdded) != 1 || d.FieldsAdded[0] != "email" {
		t.Fatalf("fields added = %v", d.FieldsAdded)
	}
	if len(d.MethodsBodyChanged) != 1 || d.MethodsBodyChanged[0].Name != "getName" {
		t.Fatalf("body changed = %v", d.MethodsBodyChanged)
	}
	if len(d.MethodsSigChanged) != 1 || d.MethodsSigChanged[0][0].Name != "setAge" {
		t.Fatalf("sig changed = %v", d.MethodsSigChanged)
	}

	// Report.describe references User with unchanged bytecode: indirect.
	foundDescribe, foundUntouched := false, false
	for _, m := range s.IndirectMethods {
		if m.Class == "Report" && m.Name == "describe" {
			foundDescribe = true
		}
		if m.Name == "untouched" {
			foundUntouched = true
		}
	}
	if !foundDescribe {
		t.Fatalf("describe should be indirect; got %v", s.IndirectMethods)
	}
	if foundUntouched {
		t.Fatal("untouched references nothing updated; must not be indirect")
	}
}

func TestFlattenedOldDefs(t *testing.T) {
	s, err := Prepare("1", prog(t, v1), prog(t, v2))
	if err != nil {
		t.Fatal(err)
	}
	flatAdmin := s.OldFlatDefs["v1_Admin"]
	if flatAdmin == nil {
		t.Fatal("no flattened def for Admin")
	}
	// Flattened: User's instance fields first, then Admin's, no methods.
	var names []string
	for _, f := range flatAdmin.Fields {
		if !f.Static {
			names = append(names, f.Name)
		}
	}
	want := []string{"name", "age", "level"}
	if len(names) != len(want) {
		t.Fatalf("flat fields = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("flat fields = %v, want %v", names, want)
		}
	}
	if len(flatAdmin.Methods) != 0 {
		t.Fatal("flattened def kept methods")
	}
	if flatAdmin.Super != "Object" {
		t.Fatalf("flattened super = %q", flatAdmin.Super)
	}
	// User's flat def carries its statics.
	flatUser := s.OldFlatDefs["v1_User"]
	if f := flatUser.Field("count"); f == nil || !f.Static {
		t.Fatal("statics missing from flattened def")
	}
}

func TestDefaultTransformerGeneration(t *testing.T) {
	s, err := Prepare("1", prog(t, v1), prog(t, v2))
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Transformers
	if tr.Name != TransformersClassName {
		t.Fatalf("transformer class name = %q", tr.Name)
	}
	// jvolveObject for User copies name and age, not email (new).
	m := tr.Method("jvolveObject", "(LUser;Lv1_User;)V")
	if m == nil {
		t.Fatalf("missing User object transformer; methods: %v", methodIDs(tr))
	}
	copies := 0
	for _, ins := range m.Code {
		if ins.Op.String() == "getfield" {
			copies++
			if ins.SymMember() == "email" {
				t.Fatal("default transformer must not copy a new field")
			}
		}
	}
	if copies != 2 {
		t.Fatalf("User transformer copies %d fields, want 2", copies)
	}
	// jvolveClass for User copies the count static.
	cm := tr.Method("jvolveClass", "(LUser;)V")
	if cm == nil {
		t.Fatal("missing class transformer")
	}
	statics := 0
	for _, ins := range cm.Code {
		if ins.Op.String() == "getstatic" {
			statics++
		}
	}
	if statics != 1 {
		t.Fatalf("class transformer copies %d statics, want 1", statics)
	}
	// Admin's transformer copies inherited fields too (3 copies).
	am := tr.Method("jvolveObject", "(LAdmin;Lv1_Admin;)V")
	if am == nil {
		t.Fatal("missing Admin transformer")
	}
	acopies := 0
	for _, ins := range am.Code {
		if ins.Op.String() == "getfield" {
			acopies++
		}
	}
	if acopies != 3 {
		t.Fatalf("Admin transformer copies %d fields, want 3 (inherited included)", acopies)
	}
}

func methodIDs(c *classfile.Class) []string {
	var out []string
	for _, m := range c.Methods {
		out = append(out, m.ID())
	}
	return out
}

func TestOverrideTransformer(t *testing.T) {
	s, err := Prepare("1", prog(t, v1), prog(t, v2))
	if err != nil {
		t.Fatal(err)
	}
	n := len(s.Transformers.Methods)
	repl := &classfile.Method{Name: "jvolveObject", Sig: "(LUser;Lv1_User;)V", Static: true}
	s.OverrideTransformer(repl)
	if len(s.Transformers.Methods) != n {
		t.Fatal("override appended instead of replacing")
	}
	if s.Transformers.Method("jvolveObject", "(LUser;Lv1_User;)V") != repl {
		t.Fatal("override did not take effect")
	}
	extra := &classfile.Method{Name: "helper", Sig: "()V", Static: true}
	s.OverrideTransformer(extra)
	if len(s.Transformers.Methods) != n+1 {
		t.Fatal("new helper method not appended")
	}
}

func TestDiffSelfIsEmpty(t *testing.T) {
	p := prog(t, v1)
	diffs, added, deleted := Diff(p, p)
	if len(diffs) != 0 || len(added) != 0 || len(deleted) != 0 {
		t.Fatalf("self diff not empty: %v %v %v", diffs, added, deleted)
	}
}

func TestDeletedClass(t *testing.T) {
	old := prog(t, v1)
	newSrc := `
class User {
  private field name LString;
  field age I
  static field count I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method getName()LString; {
    load 0
    getfield User.name LString;
    return
  }
  method setAge(I)V {
    load 0
    load 1
    putfield User.age I
    return
  }
}
class Admin extends User {
  field level I
  method promote()V {
    load 0
    load 0
    getfield Admin.level I
    const 1
    add
    putfield Admin.level I
    return
  }
}
`
	s, err := Prepare("1", old, prog(t, newSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.DeletedClasses) != 1 || s.DeletedClasses[0] != "Report" {
		t.Fatalf("deleted = %v", s.DeletedClasses)
	}
	if len(s.ClassUpdates) != 0 {
		t.Fatalf("class updates = %v", s.ClassUpdates)
	}
}

func TestHierarchyPermutationRejected(t *testing.T) {
	old := prog(t, `
class A {
  method m()V {
    return
  }
}
class B extends A {
  method n()V {
    return
  }
}
`)
	new_ := prog(t, `
class B {
  method n()V {
    return
  }
}
class A extends B {
  method m()V {
    return
  }
}
`)
	if _, err := Prepare("1", old, new_); err == nil {
		t.Fatal("hierarchy permutation accepted")
	}
}

// Property: swapping old and new swaps added and deleted classes, and the
// diff of identical single classes is empty.
func TestDiffSymmetryProperty(t *testing.T) {
	mk := func(fields uint8) *classfile.Program {
		b := classfile.NewClass("C", "Object")
		for i := 0; i < int(fields%6); i++ {
			b.Field("f"+string(rune('a'+i)), "I")
		}
		b.Method("m", "()V").Ret().Done()
		p, _ := classfile.NewProgram(b.MustBuild())
		return p
	}
	f := func(a, b uint8) bool {
		pa, pb := mk(a), mk(b)
		da, addA, delA := Diff(pa, pb)
		db, addB, delB := Diff(pb, pa)
		if len(addA) != len(delB) || len(delA) != len(addB) {
			return false
		}
		if a%6 == b%6 {
			return len(da) == 0 && len(db) == 0
		}
		dab, ok := da["C"]
		dba, ok2 := db["C"]
		if !ok || !ok2 {
			return false
		}
		return len(dab.FieldsAdded) == len(dba.FieldsDeleted) &&
			len(dab.FieldsDeleted) == len(dba.FieldsAdded)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
