package upt

import (
	"fmt"
	"testing"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
)

// buildFuzzProgram deterministically expands a byte string into a small
// program: each byte contributes a class, field, or method. The decoder is
// total — any input produces a well-formed program — so the fuzzer can
// explore the diff algebra rather than parser edge cases.
func buildFuzzProgram(data []byte) *classfile.Program {
	prog := &classfile.Program{Classes: map[string]*classfile.Class{}}
	object := &classfile.Class{Name: "Object", Methods: []*classfile.Method{
		{Name: "<init>", Sig: "()V", Code: []bytecode.Ins{{Op: bytecode.RETURN}}, MaxLocals: 1},
	}}
	prog.Classes["Object"] = object

	var classes []*classfile.Class
	cur := object
	for i, b := range data {
		switch b % 4 {
		case 0: // new class, super picked from those already defined
			super := "Object"
			if len(classes) > 0 {
				super = classes[int(b/4)%len(classes)].Name
			}
			c := &classfile.Class{Name: fmt.Sprintf("K%d", len(classes)), Super: super}
			classes = append(classes, c)
			prog.Classes[c.Name] = c
			cur = c
		case 1: // field on the current class
			if cur == object {
				continue
			}
			desc := classfile.Desc("I")
			if b&8 != 0 {
				desc = "LObject;"
			}
			cur.Fields = append(cur.Fields, classfile.Field{
				Name:   fmt.Sprintf("g%d", i),
				Desc:   desc,
				Static: b&16 != 0,
				Final:  b&32 != 0,
			})
		case 2: // method on the current class
			if cur == object {
				continue
			}
			sig := classfile.Sig("(I)I")
			if b&8 != 0 {
				sig = "()V"
			}
			body := []bytecode.Ins{{Op: bytecode.CONST, A: int64(b)}, {Op: bytecode.RETURN}}
			if sig == "()V" {
				body = []bytecode.Ins{{Op: bytecode.RETURN}}
			}
			cur.Methods = append(cur.Methods, &classfile.Method{
				Name: fmt.Sprintf("m%d", i), Sig: sig,
				Static: b&16 != 0, Code: body, MaxLocals: 2,
			})
		default: // tweak a method body (diff fodder)
			if cur == object || len(cur.Methods) == 0 {
				continue
			}
			m := cur.Methods[int(b/4)%len(cur.Methods)]
			if m.Sig == "(I)I" {
				m.Code = []bytecode.Ins{{Op: bytecode.CONST, A: int64(i) + 1000}, {Op: bytecode.RETURN}}
			}
		}
	}
	return prog
}

// FuzzUPTDiff checks the diff algebra on generated program pairs:
//
//   - Diff(p, p) is empty: no added/deleted classes, every per-class diff
//     empty (reflexivity);
//   - Diff(old, new) and Diff(new, old) are mirror images: added classes
//     swap with deleted ones, and per-class added/deleted field and method
//     sets swap (symmetry);
//   - DiffClass never panics on any pair of generated classes.
func FuzzUPTDiff(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0}, []byte{0, 1})                   // one class vs class+field
	f.Add([]byte{0, 1, 2}, []byte{0, 1, 2, 3})       // body tweak
	f.Add([]byte{0, 2, 0, 2}, []byte{0, 2})          // class deletion
	f.Add([]byte{0, 4, 0}, []byte{0, 0})             // hierarchy variation
	f.Add([]byte{0, 1, 17, 2, 18}, []byte{0, 9, 2})  // static/desc variation

	f.Fuzz(func(t *testing.T, a, b []byte) {
		old := buildFuzzProgram(a)
		new_ := buildFuzzProgram(b)

		// Reflexivity on both programs.
		for _, p := range []*classfile.Program{old, new_} {
			diffs, added, deleted := Diff(p, p)
			if len(added) != 0 || len(deleted) != 0 {
				t.Fatalf("Diff(p,p) reports added=%v deleted=%v", added, deleted)
			}
			for name, d := range diffs {
				if !d.IsEmpty() {
					t.Fatalf("Diff(p,p): class %s not empty: %+v", name, d)
				}
			}
		}

		// Symmetry of the forward and reverse diffs.
		fwd, fwdAdded, fwdDeleted := Diff(old, new_)
		rev, revAdded, revDeleted := Diff(new_, old)
		if !sameStringSet(fwdAdded, revDeleted) || !sameStringSet(fwdDeleted, revAdded) {
			t.Fatalf("class add/delete not symmetric: fwd +%v -%v, rev +%v -%v",
				fwdAdded, fwdDeleted, revAdded, revDeleted)
		}
		for name, fd := range fwd {
			rd := rev[name]
			if rd == nil {
				if !fd.IsEmpty() {
					t.Fatalf("class %s: forward diff %+v but no reverse diff", name, fd)
				}
				continue
			}
			if !sameStringSet(fd.FieldsAdded, rd.FieldsDeleted) ||
				!sameStringSet(fd.FieldsDeleted, rd.FieldsAdded) {
				t.Fatalf("class %s: field add/delete not symmetric: fwd +%v -%v, rev +%v -%v",
					name, fd.FieldsAdded, fd.FieldsDeleted, rd.FieldsAdded, rd.FieldsDeleted)
			}
			if !sameStringSet(fd.FieldsChanged, rd.FieldsChanged) {
				t.Fatalf("class %s: changed-field sets differ: fwd %v, rev %v",
					name, fd.FieldsChanged, rd.FieldsChanged)
			}
			if !sameMethodSet(refIDs(fd.MethodsAdded), refIDs(rd.MethodsDeleted)) ||
				!sameMethodSet(refIDs(fd.MethodsDeleted), refIDs(rd.MethodsAdded)) {
				t.Fatalf("class %s: method add/delete not symmetric: fwd +%v -%v, rev +%v -%v",
					name, fd.MethodsAdded, fd.MethodsDeleted, rd.MethodsAdded, rd.MethodsDeleted)
			}
			if fd.SuperChanged != rd.SuperChanged {
				t.Fatalf("class %s: SuperChanged asymmetric", name)
			}
			if !sameMethodSet(refIDs(fd.MethodsBodyChanged), refIDs(rd.MethodsBodyChanged)) {
				t.Fatalf("class %s: body-changed sets differ: fwd %v, rev %v",
					name, fd.MethodsBodyChanged, rd.MethodsBodyChanged)
			}
		}
	})
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]int, len(a))
	for _, s := range a {
		set[s]++
	}
	for _, s := range b {
		set[s]--
		if set[s] < 0 {
			return false
		}
	}
	return true
}

func refIDs(refs []MethodRef) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.ID()
	}
	return out
}

func sameMethodSet(a, b []string) bool { return sameStringSet(a, b) }
