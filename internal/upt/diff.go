// Package upt implements the Update Preparation Tool (JVOLVE paper §3.1):
// it diffs an old and a new program version, classifies every change into
// the paper's three categories (class updates, method body updates, and
// indirect methods), propagates transitive effects down the class
// hierarchy, and generates the update specification plus default class and
// object transformers.
package upt

import (
	"fmt"
	"sort"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
)

// MethodRef names one method.
type MethodRef struct {
	Class string
	Name  string
	Sig   classfile.Sig
}

func (m MethodRef) String() string { return m.Class + "." + m.Name + string(m.Sig) }

// ID returns the method's name+sig identity within its class.
func (m MethodRef) ID() string { return m.Name + string(m.Sig) }

// ClassDiff describes how one class changed between versions.
type ClassDiff struct {
	Name string

	// Signature-level changes (any of these makes the class a "class
	// update" requiring metadata replacement and object transformation).
	FieldsAdded    []string
	FieldsDeleted  []string
	FieldsChanged  []string // same name, different type/static-ness
	MethodsAdded   []MethodRef
	MethodsDeleted []MethodRef
	// MethodsSigChanged pairs old and new signatures for methods whose
	// name survives but whose signature changed.
	MethodsSigChanged [][2]MethodRef
	SuperChanged      bool

	// MethodsBodyChanged lists methods present in both versions whose
	// signatures match but whose bytecode differs.
	MethodsBodyChanged []MethodRef
}

// IsClassUpdate reports whether the diff requires a class update (layout or
// method-table change) as opposed to method-body-only replacement.
func (d *ClassDiff) IsClassUpdate() bool {
	return len(d.FieldsAdded) > 0 || len(d.FieldsDeleted) > 0 ||
		len(d.FieldsChanged) > 0 || len(d.MethodsAdded) > 0 ||
		len(d.MethodsDeleted) > 0 || len(d.MethodsSigChanged) > 0 ||
		d.SuperChanged
}

// IsEmpty reports an unchanged class.
func (d *ClassDiff) IsEmpty() bool {
	return !d.IsClassUpdate() && len(d.MethodsBodyChanged) == 0
}

// DiffClass compares two versions of one class.
func DiffClass(old, new_ *classfile.Class) *ClassDiff {
	d := &ClassDiff{Name: new_.Name, SuperChanged: old.Super != new_.Super}

	oldFields := make(map[string]classfile.Field)
	for _, f := range old.Fields {
		oldFields[f.Name] = f
	}
	newFields := make(map[string]classfile.Field)
	for _, f := range new_.Fields {
		newFields[f.Name] = f
		of, ok := oldFields[f.Name]
		switch {
		case !ok:
			d.FieldsAdded = append(d.FieldsAdded, f.Name)
		case of.Key() != f.Key():
			d.FieldsChanged = append(d.FieldsChanged, f.Name)
		}
	}
	for _, f := range old.Fields {
		if _, ok := newFields[f.Name]; !ok {
			d.FieldsDeleted = append(d.FieldsDeleted, f.Name)
		}
	}

	oldMethods := make(map[string]*classfile.Method)
	for _, m := range old.Methods {
		oldMethods[m.ID()] = m
	}
	newMethods := make(map[string]*classfile.Method)
	var added, deleted []MethodRef
	for _, m := range new_.Methods {
		newMethods[m.ID()] = m
		om, ok := oldMethods[m.ID()]
		if !ok {
			added = append(added, MethodRef{new_.Name, m.Name, m.Sig})
			continue
		}
		if om.Static != m.Static || om.Native != m.Native || om.Access != m.Access {
			// Dispatch-kind change (static vs instance, native vs
			// bytecode, or an access change — private methods dispatch
			// directly, public ones through the TIB): treat as
			// delete+add, forcing a class update.
			deleted = append(deleted, MethodRef{new_.Name, om.Name, om.Sig})
			added = append(added, MethodRef{new_.Name, m.Name, m.Sig})
			continue
		}
		if !bytecode.CodeEqual(om.Code, m.Code) {
			d.MethodsBodyChanged = append(d.MethodsBodyChanged,
				MethodRef{new_.Name, m.Name, m.Sig})
		}
	}
	for _, m := range old.Methods {
		if _, ok := newMethods[m.ID()]; !ok {
			deleted = append(deleted, MethodRef{new_.Name, m.Name, m.Sig})
		}
	}

	// Pair deleted/added methods with the same name as signature changes —
	// the paper's "y methods changed their type signature as well".
	usedAdd := make([]bool, len(added))
	for _, del := range deleted {
		paired := false
		for i, add := range added {
			if !usedAdd[i] && add.Name == del.Name {
				d.MethodsSigChanged = append(d.MethodsSigChanged, [2]MethodRef{del, add})
				usedAdd[i] = true
				paired = true
				break
			}
		}
		if !paired {
			d.MethodsDeleted = append(d.MethodsDeleted, del)
		}
	}
	for i, add := range added {
		if !usedAdd[i] {
			d.MethodsAdded = append(d.MethodsAdded, add)
		}
	}
	return d
}

// Diff compares two program versions, returning per-class diffs plus the
// lists of added and deleted classes.
func Diff(old, new_ *classfile.Program) (diffs map[string]*ClassDiff, addedClasses, deletedClasses []string) {
	diffs = make(map[string]*ClassDiff)
	for _, name := range new_.Names() {
		if oc, ok := old.Classes[name]; ok {
			d := DiffClass(oc, new_.Classes[name])
			if !d.IsEmpty() {
				diffs[name] = d
			}
		} else {
			addedClasses = append(addedClasses, name)
		}
	}
	for _, name := range old.Names() {
		if _, ok := new_.Classes[name]; !ok {
			deletedClasses = append(deletedClasses, name)
		}
	}
	sort.Strings(addedClasses)
	sort.Strings(deletedClasses)
	return diffs, addedClasses, deletedClasses
}

// transitiveClassUpdates expands the set of directly-updated classes with
// every descendant in the new program: a subclass's instance layout embeds
// its superclass's, so a superclass layout change shifts subclass offsets,
// and the subclass needs new metadata and object transformation too (the
// paper's "changed and transitively-affected classes").
func transitiveClassUpdates(new_ *classfile.Program, direct map[string]bool) map[string]bool {
	all := make(map[string]bool, len(direct))
	for k := range direct {
		all[k] = true
	}
	var affected func(name string) bool
	memo := make(map[string]bool)
	var seen map[string]bool
	affected = func(name string) bool {
		if v, ok := memo[name]; ok {
			return v
		}
		if all[name] {
			memo[name] = true
			return true
		}
		if seen[name] {
			return false // hierarchy cycle; validation rejects it elsewhere
		}
		seen[name] = true
		def, ok := new_.Classes[name]
		res := false
		if ok && def.Super != "" {
			res = affected(def.Super)
		}
		memo[name] = res
		return res
	}
	for _, name := range new_.Names() {
		seen = make(map[string]bool)
		if affected(name) {
			all[name] = true
		}
	}
	return all
}

// indirectMethods finds methods whose bytecode is unchanged between
// versions but which reference a class-updated class — the paper's category
// (2): their compiled representation bakes in offsets that the update
// changes. The DSU engine re-derives the on-stack subset dynamically from
// compiled-code dependencies; this static list feeds the update spec and
// the experience tables.
func indirectMethods(old, new_ *classfile.Program, classUpdates map[string]bool, diffs map[string]*ClassDiff) []MethodRef {
	changedBody := make(map[string]bool)
	for _, d := range diffs {
		for _, m := range d.MethodsBodyChanged {
			changedBody[m.String()] = true
		}
	}
	var out []MethodRef
	for _, name := range new_.Names() {
		nc := new_.Classes[name]
		oc := old.Classes[name]
		if oc == nil {
			continue // brand new class: nothing on stack yet
		}
		for _, m := range nc.Methods {
			if m.Native {
				continue
			}
			om := oc.Method(m.Name, m.Sig)
			if om == nil || !bytecode.CodeEqual(om.Code, m.Code) {
				continue // changed or added: category (1), not (2)
			}
			refs := bytecode.ReferencedClasses(m.Code)
			for r := range refs {
				if classUpdates[r] {
					out = append(out, MethodRef{name, m.Name, m.Sig})
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ValidateHierarchy rejects super-class permutations between versions, which
// JVOLVE does not support (paper §2.2): a class may not swap its position
// with a former subclass.
func ValidateHierarchy(old, new_ *classfile.Program) error {
	superChain := func(p *classfile.Program, name string) map[string]bool {
		chain := make(map[string]bool)
		for cur := name; ; {
			def, ok := p.Classes[cur]
			if !ok || def.Super == "" {
				break
			}
			if chain[def.Super] {
				break
			}
			chain[def.Super] = true
			cur = def.Super
		}
		return chain
	}
	for name, odef := range old.Classes {
		ndef, ok := new_.Classes[name]
		if !ok {
			continue
		}
		_ = odef
		oldChain := superChain(old, name)
		newChain := superChain(new_, name)
		for anc := range newChain {
			// If anc was a descendant of name before and is an ancestor
			// now, the hierarchy was permuted.
			if _, existed := old.Classes[anc]; existed && !oldChain[anc] {
				if superChain(old, anc)[name] {
					return fmt.Errorf("upt: unsupported class hierarchy permutation between %s and %s", name, anc)
				}
			}
		}
		_ = ndef
	}
	return nil
}
