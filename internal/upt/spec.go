package upt

import (
	"fmt"
	"sort"
	"strings"

	"govolve/internal/classfile"
)

// TransformersClassName is the class holding class and object transformer
// methods, mirroring the paper's JvolveTransformers.
const TransformersClassName = "JvolveTransformers"

// Spec is an update specification: everything the DSU engine needs to apply
// one version transition.
type Spec struct {
	// OldTag prefixes renamed old classes: tag "131" renames User to
	// v131_User.
	OldTag string

	Old *classfile.Program
	New *classfile.Program

	// Diffs holds the per-class diff for every changed class.
	Diffs map[string]*ClassDiff

	AddedClasses   []string
	DeletedClasses []string

	// DirectClassUpdates are classes whose own signature changed;
	// ClassUpdates additionally includes transitively-affected
	// descendants (their layouts shift).
	DirectClassUpdates []string
	ClassUpdates       []string

	// MethodBodyUpdates lists body-only changes in classes that are NOT
	// class updates (class updates reinstall all their methods anyway).
	MethodBodyUpdates []MethodRef

	// IndirectMethods is the static estimate of category-(2) methods:
	// bytecode unchanged but referencing an updated class.
	IndirectMethods []MethodRef

	// Blacklist is the user-specified restricted set (category 3).
	Blacklist []MethodRef

	// OldFlatDefs maps each renamed old class name (v131_User) to its
	// flattened fields-only definition, used to verify transformer code
	// and to type the renamed runtime class.
	OldFlatDefs map[string]*classfile.Class

	// Transformers is the JvolveTransformers class: generated defaults,
	// optionally overridden by user-supplied methods.
	Transformers *classfile.Class

	// DefaultObjectTransformers and DefaultClassTransformers record which
	// classes still use the UPT-generated defaults (not user-overridden).
	// The DSU engine's fast-transformer mode exploits this: a default is
	// a pure field-by-field copy, so it can run as a native bulk copy
	// instead of interpreted bytecode — the optimization the paper
	// sketches in §4.1 ("a naively compiled field-by-field copy is much
	// slower than the collector's highly-optimized copying loop").
	DefaultObjectTransformers map[string]bool
	DefaultClassTransformers  map[string]bool

	// ActiveUpdates enables updating a *changed* method while it runs —
	// the UpStare-style extension the paper sketches in §3.5: "the user
	// would map the yield point at the end of the old loop to the yield
	// point at the end of the new loop". Without an entry, a changed
	// on-stack method blocks the update (category 1); with one, the DSU
	// engine rewrites the live frame onto the new method body at the
	// mapped pc. Correctness of the mapping is the user's assertion,
	// exactly as in UpStare.
	ActiveUpdates map[MethodRef]ActivePCMap
}

// ActivePCMap maps yield points of an old method body to equivalent points
// in the new body, with an optional local-variable remap (identity if nil).
type ActivePCMap struct {
	PC     map[int]int
	Locals map[int]int
}

// AddActiveUpdate registers a yield-point map for a changed method.
func (s *Spec) AddActiveUpdate(ref MethodRef, m ActivePCMap) {
	if s.ActiveUpdates == nil {
		s.ActiveUpdates = make(map[MethodRef]ActivePCMap)
	}
	s.ActiveUpdates[ref] = m
}

// RenamedName returns the renamed old-version name of a class.
func (s *Spec) RenamedName(class string) string {
	return "v" + s.OldTag + "_" + class
}

// IsClassUpdate reports whether class is updated (directly or transitively).
func (s *Spec) IsClassUpdate(class string) bool {
	for _, c := range s.ClassUpdates {
		if c == class {
			return true
		}
	}
	return false
}

// Prepare diffs two program versions and builds the full update
// specification with generated default transformers. oldTag becomes the
// rename prefix for old class versions.
func Prepare(oldTag string, old, new_ *classfile.Program) (*Spec, error) {
	if strings.ContainsAny(oldTag, " .\t") {
		oldTag = strings.Map(func(r rune) rune {
			switch r {
			case ' ', '.', '\t':
				return -1
			}
			return r
		}, oldTag)
	}
	if err := ValidateHierarchy(old, new_); err != nil {
		return nil, err
	}
	diffs, added, deleted := Diff(old, new_)

	direct := make(map[string]bool)
	for name, d := range diffs {
		if d.IsClassUpdate() {
			direct[name] = true
		}
	}
	all := transitiveClassUpdates(new_, direct)

	s := &Spec{
		OldTag:         oldTag,
		Old:            old,
		New:            new_,
		Diffs:          diffs,
		AddedClasses:   added,
		DeletedClasses: deleted,
		OldFlatDefs:    make(map[string]*classfile.Class),
	}
	for name := range direct {
		s.DirectClassUpdates = append(s.DirectClassUpdates, name)
	}
	sort.Strings(s.DirectClassUpdates)
	for name := range all {
		s.ClassUpdates = append(s.ClassUpdates, name)
	}
	sort.Strings(s.ClassUpdates)

	for name, d := range diffs {
		if all[name] {
			continue
		}
		s.MethodBodyUpdates = append(s.MethodBodyUpdates, d.MethodsBodyChanged...)
	}
	sort.Slice(s.MethodBodyUpdates, func(i, j int) bool {
		return s.MethodBodyUpdates[i].String() < s.MethodBodyUpdates[j].String()
	})

	s.IndirectMethods = indirectMethods(old, new_, all, diffs)

	deletedSet := make(map[string]bool, len(deleted))
	for _, name := range deleted {
		deletedSet[name] = true
	}
	for _, name := range s.ClassUpdates {
		odef := old.Classes[name]
		if odef == nil {
			return nil, fmt.Errorf("upt: class update %s has no old version", name)
		}
		flat, err := flattenOldClass(old, odef, s.RenamedName(name), deletedSet, all, s)
		if err != nil {
			return nil, err
		}
		s.OldFlatDefs[flat.Name] = flat
	}

	tr, err := generateTransformers(s)
	if err != nil {
		return nil, err
	}
	s.Transformers = tr
	return s, nil
}

// AddBlacklist appends user-restricted methods (category 3).
func (s *Spec) AddBlacklist(refs ...MethodRef) { s.Blacklist = append(s.Blacklist, refs...) }

// OverrideTransformer replaces (or adds) a transformer method with a
// user-written one — the paper's "programmers may customize the default
// transformers". The method must be a static member intended for the
// JvolveTransformers class.
func (s *Spec) OverrideTransformer(m *classfile.Method) {
	if args, _, err := classfile.ParseSig(m.Sig); err == nil && len(args) > 0 {
		cls := args[0].ClassName()
		switch m.Name {
		case "jvolveObject":
			delete(s.DefaultObjectTransformers, cls)
		case "jvolveClass":
			delete(s.DefaultClassTransformers, cls)
		}
	}
	for i, existing := range s.Transformers.Methods {
		if existing.ID() == m.ID() {
			s.Transformers.Methods[i] = m
			return
		}
	}
	s.Transformers.Methods = append(s.Transformers.Methods, m)
}

// flattenOldClass produces the fields-only renamed definition of an old
// class: instance fields of the whole superclass chain flattened in layout
// order, plus the class's own statics. Field types naming deleted classes
// are rewritten to Object (the values can no longer be typed); types naming
// updated classes are kept — after GC those fields point at transformed
// objects of the new version, which is exactly the paper's transformer
// interface.
func flattenOldClass(old *classfile.Program, def *classfile.Class, newName string, deleted map[string]bool, updated map[string]bool, s *Spec) (*classfile.Class, error) {
	flat := &classfile.Class{Name: newName, Super: "Object"}
	var chain []*classfile.Class
	for c := def; c != nil; {
		chain = append([]*classfile.Class{c}, chain...)
		if c.Super == "" {
			break
		}
		c = old.Classes[c.Super]
	}
	for _, c := range chain {
		for _, f := range c.InstanceFields() {
			ff := f
			ff.Desc = rewriteDeletedDesc(f.Desc, deleted)
			flat.Fields = append(flat.Fields, ff)
		}
	}
	for _, f := range def.StaticFields() {
		ff := f
		ff.Desc = rewriteDeletedDesc(f.Desc, deleted)
		flat.Fields = append(flat.Fields, ff)
	}
	if err := flat.Validate(); err != nil {
		return nil, fmt.Errorf("upt: flattening %s: %w", def.Name, err)
	}
	return flat, nil
}

// rewriteDeletedDesc maps references to deleted classes to Object.
func rewriteDeletedDesc(d classfile.Desc, deleted map[string]bool) classfile.Desc {
	switch d.Kind() {
	case classfile.KRef:
		if deleted[d.ClassName()] {
			return classfile.RefOf("Object")
		}
	case classfile.KArray:
		return classfile.ArrayOf(rewriteDeletedDesc(d.Elem(), deleted))
	}
	return d
}
