package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"govolve/internal/stream"
)

// The stream experiment measures long-horizon updatability: a seeded
// version chain of sequential releases replayed against a live VM in every
// engine mode, with the chain-wide oracle armed at each step. Where pausecmp
// measures one update's pause decomposition, stream measures what operators
// of a dynamically-updated service actually live with — how many updates per
// minute the engine sustains over a whole release history, the p50/p99 pause
// across that history, and (lazy modes) how large the post-pause drain
// backlog grows under hostile back-to-back schedules.

// StreamSweep configures the chain-length × mode grid.
type StreamSweep struct {
	// Seed is the chain seed; every (length, mode) cell replays the same
	// generated release history.
	Seed int64
	// Lengths is the chain-length axis (default 20 and 50 releases).
	Lengths []int
	// Modes is the engine-mode axis (default all five).
	Modes []string
	// Hostile schedules back-to-back updates and drain overlaps instead of
	// the benign era cadence (default true — the operator's bad day).
	Hostile bool
	// FastDefaults enables the native bulk transformer path.
	FastDefaults bool
}

// StreamRow is one replayed chain in one mode.
type StreamRow struct {
	Mode    string `json:"mode"`
	Length  int    `json:"length"`
	Seed    int64  `json:"seed"`
	Hostile bool   `json:"hostile"`

	Applied  int `json:"applied"`
	Aborted  int `json:"aborted"`
	Rejected int `json:"rejected"` // generator batches UPT refused chain-wide

	WallMillis    float64 `json:"wall_ms"`
	UpdatesPerMin float64 `json:"updates_per_min"`

	PauseP50Millis float64 `json:"pause_p50_ms"`
	PauseP99Millis float64 `json:"pause_p99_ms"`
	PauseMaxMillis float64 `json:"pause_max_ms"`

	// Lazy modes: the largest drain backlog any step left behind, and what
	// remained when the chain ended (always 0 — the terminal drain is part
	// of the replay contract; recorded so the JSON proves it).
	MaxDrainBacklog   int `json:"max_drain_backlog"`
	FinalDrainBacklog int `json:"final_drain_backlog"`
}

// StreamReport is the BENCH_stream.json document.
type StreamReport struct {
	Experiment string      `json:"experiment"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Note       string      `json:"note"`
	Rows       []StreamRow `json:"rows"`
}

// pctl is the interpolated percentile of an unsorted sample.
func pctl(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := p * float64(len(s)-1)
	lo := int(pos)
	hi := lo
	if lo+1 < len(s) {
		hi = lo + 1
	}
	frac := pos - float64(lo)
	return s[lo] + (s[hi]-s[lo])*frac
}

// RunStream replays the grid. Every cell must complete its whole chain with
// the oracle clean — a replay error is a bench failure, not a data point.
func RunStream(sw StreamSweep, progress io.Writer) (*StreamReport, error) {
	if sw.Seed == 0 {
		sw.Seed = 1905
	}
	if len(sw.Lengths) == 0 {
		sw.Lengths = []int{20, 50}
	}
	if len(sw.Modes) == 0 {
		for _, m := range stream.Modes() {
			sw.Modes = append(sw.Modes, m.Name)
		}
	}
	rep := &StreamReport{
		Experiment: "stream",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "each row replays one seeded version chain end to end with the " +
			"chain-wide oracle checked at every step; updates_per_min is applied " +
			"updates over replay wall time (oracle sweeps included, so it is a " +
			"sustained-operation figure, not a pause reciprocal). Pause percentiles " +
			"are over the chain's per-update total pauses. Lazy rows must end with " +
			"final_drain_backlog = 0.",
	}
	for _, length := range sw.Lengths {
		for _, name := range sw.Modes {
			mode, ok := stream.ModeByName(name)
			if !ok {
				return nil, fmt.Errorf("bench: stream: unknown mode %q", name)
			}
			start := time.Now()
			r, err := stream.Replay(stream.Config{
				Seed:         sw.Seed,
				Length:       length,
				Mode:         mode,
				Hostile:      sw.Hostile,
				FastDefaults: sw.FastDefaults,
				ScratchWords: 1 << 14,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: stream length=%d mode=%s: %w", length, name, err)
			}
			wall := time.Since(start)
			var pauses []float64
			for i := range r.Records {
				pauses = append(pauses, r.Records[i].PauseTotalMs)
			}
			finalBacklog := 0
			if n := len(r.Records); n > 0 {
				finalBacklog = r.Records[n-1].Backlog
			}
			row := StreamRow{
				Mode:    name,
				Length:  length,
				Seed:    sw.Seed,
				Hostile: sw.Hostile,

				Applied:  r.Applied,
				Aborted:  r.Aborted,
				Rejected: r.Rejected,

				WallMillis:     Millis(wall),
				PauseP50Millis: pctl(pauses, 0.50),
				PauseP99Millis: pctl(pauses, 0.99),
				PauseMaxMillis: pctl(pauses, 1.0),

				MaxDrainBacklog:   r.MaxBacklog,
				FinalDrainBacklog: finalBacklog,
			}
			if wall > 0 {
				row.UpdatesPerMin = float64(r.Applied) / wall.Minutes()
			}
			rep.Rows = append(rep.Rows, row)
			if progress != nil {
				fmt.Fprintf(progress, ".")
			}
		}
		if progress != nil {
			fmt.Fprintln(progress)
		}
	}
	return rep, nil
}

// WriteStreamJSON writes the report as indented JSON (BENCH_stream.json).
func WriteStreamJSON(path string, rep *StreamReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintStream renders the grid as text.
func PrintStream(w io.Writer, rep *StreamReport) {
	fmt.Fprintf(w, "Long-horizon update streams (gomaxprocs=%d, cpus=%d)\n",
		rep.GOMAXPROCS, rep.NumCPU)
	fmt.Fprintf(w, "%12s %7s %8s %8s %9s %9s %12s %9s %9s %11s\n",
		"mode", "length", "applied", "aborted", "wall(ms)", "upd/min", "p50-pause", "p99-pause", "max-pause", "max-backlog")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%12s %7d %8d %8d %9.1f %9.0f %11.2fms %7.2fms %7.2fms %11d\n",
			r.Mode, r.Length, r.Applied, r.Aborted, r.WallMillis, r.UpdatesPerMin,
			r.PauseP50Millis, r.PauseP99Millis, r.PauseMaxMillis, r.MaxDrainBacklog)
	}
	fmt.Fprintf(w, "note: %s\n", rep.Note)
}
