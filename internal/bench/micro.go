package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"govolve/internal/asm"
	"govolve/internal/core"
	"govolve/internal/obs"
	"govolve/internal/rt"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

// The Table 1 / Figure 6 microbenchmark, following the paper §4.1 exactly:
// "two simple classes, Change and NoChange. Both contain three integer
// fields, and three reference fields that are always null. The update adds
// an integer field to Change. The user-provided object transformation
// function copies the existing fields and initializes the new field to
// zero" — which is precisely UPT's generated default transformer.

const microV1 = `
class Change {
  field i1 I
  field i2 I
  field i3 I
  field r1 LChange;
  field r2 LChange;
  field r3 LChange;
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class NoChange {
  field i1 I
  field i2 I
  field i3 I
  field r1 LNoChange;
  field r2 LNoChange;
  field r3 LNoChange;
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
`

var microV2 = strings.Replace(microV1,
	"class Change {\n  field i1 I",
	"class Change {\n  field i1 I\n  field i4 I", 1)

// MicroConfig sizes one microbenchmark cell.
type MicroConfig struct {
	// Objects is the total object count. The paper uses 280k–3.67M
	// (heaps of 160–1280 MB).
	Objects int
	// FracUpdated is the fraction of objects of class Change (0..1).
	FracUpdated float64
	// HeapLabel annotates output rows (e.g. "160 MB").
	HeapLabel string
	// FastDefaults runs default transformers as native bulk copies
	// (the §4.1 optimization) instead of interpreted bytecode.
	FastDefaults bool
	// ScratchWords reserves a scratch region so DSU old copies bypass
	// to-space (the §3.5 alternative).
	ScratchWords int
	// Workers selects the collection strategy: <=1 the serial Cheney
	// collector, N>1 the parallel copy/scan collector with N workers
	// (gc.AutoWorkers picks one per CPU). The parallel transformer bulk
	// pass uses the same width.
	Workers int
	// ConcurrentMark discovers updated-class instances with the SATB
	// concurrent mark before the pause; the stop-the-world window then
	// runs only rescan + copy + transform.
	ConcurrentMark bool
	// Lazy defers per-object transformation past the pause: objects are
	// tagged untransformed and drained on first touch through the read
	// barrier. The measured pause then excludes transformer execution;
	// the forced drain is timed separately.
	Lazy bool
	// Metrics, when non-nil, attaches the registry to the VM so the engine
	// publishes its pause/update series, and arms a default gate engine
	// under the observe policy so every micro update is judged. The
	// resulting verdict is reported on MicroResult.
	Metrics *obs.Registry
	// ConcurrentReloc moves the DSU copy itself out of the pause: the
	// pause shrinks to flip preparation (discovery, flip, eager evacuation
	// of updated-class instances only — or none at all with Lazy), and the
	// remaining live set is evacuated afterwards by background relocator
	// workers and the self-healing load barrier. The measured pause then
	// excludes the bulk copy; the relocation drain is reported separately.
	ConcurrentReloc bool
}

// MicroResult reports one run's pause decomposition — the three row groups
// of Table 1 — plus the space accounting behind the §3.5 scratch ablation.
type MicroResult struct {
	Config       MicroConfig
	GC           time.Duration
	Transform    time.Duration
	Total        time.Duration
	Transformed  int
	CopiedWords  int // words the DSU collection placed in to-space
	ScratchWords int // old-copy words diverted to the scratch region

	// Lazy-transform decomposition (pausecmp experiment).
	LazyPending int           // objects left tagged when the pause ended
	Drain       time.Duration // forced post-pause drain wall-clock (outside the pause)

	// Verdict is the gate judgment for this update (nil unless
	// MicroConfig.Metrics armed the gate engine).
	Verdict *obs.Verdict

	// Parallel-collection decomposition (gcpause experiment).
	GCWorkers     int   // copy/scan workers the DSU collection ran
	GCWorkerWords []int // words copied per worker (nil when serial)
	GCSteals      int64 // work-stealing deque pops
	PairsLogged   int   // pairs the collection scheduled for transformation

	// Mark decomposition (pausecmp experiment). The decomposition is
	// uniform across modes: PauseMark is in-pause discovery only (zero for
	// STW, whose fused trace+copy is all PauseCopy), PauseRescan the SATB
	// drain + root re-trace, PauseCopy the in-pause copy/fixup work.
	GCMarkConcurrent bool          // the trace ran outside the pause
	MarkOutside      time.Duration // concurrent trace wall-clock, outside the pause
	PauseMark        time.Duration // in-pause mark/discovery time
	PauseRescan      time.Duration // SATB drain + root re-trace, inside the pause
	PauseCopy        time.Duration // in-pause copy + fixup (STW: the fused trace+copy)
	MarkedObjects    int           // objects the concurrent trace discovered
	RescanMarked     int           // objects only the in-pause rescan found

	// Relocation decomposition (pausecmp experiment).
	RelocConcurrent bool          // the copy ran as a concurrent drain
	RelocObjects    int           // objects evacuated outside the pause
	RelocDrain      time.Duration // flip-to-finalize drain wall clock, outside the pause
}

// RunMicro builds a heap with the requested population and applies the
// Change-gains-a-field update, measuring the collection time, the
// transformer-execution time, and the total update pause.
func RunMicro(cfg MicroConfig) (*MicroResult, error) {
	if cfg.Objects <= 0 {
		return nil, fmt.Errorf("bench: objects must be positive")
	}
	if cfg.FracUpdated < 0 || cfg.FracUpdated > 1 {
		return nil, fmt.Errorf("bench: fraction out of range")
	}
	// One object is 8 words (2 header + 6 fields); during the DSU
	// collection an updated object costs its copy plus a 9-word shell.
	// A factor-5 heap over the live size keeps the only collection the
	// DSU-triggered one, matching the paper's methodology.
	live := cfg.Objects*8 + cfg.Objects + 2*rt.HeaderWords + 64
	machine, err := vm.New(vm.Options{
		HeapWords: 5 * live, ScratchWords: cfg.ScratchWords,
		GCWorkers: cfg.Workers, GCConcurrentMark: cfg.ConcurrentMark,
		LazyTransform:   cfg.Lazy,
		ConcurrentReloc: cfg.ConcurrentReloc,
		Out:             io.Discard,
	})
	if err != nil {
		return nil, err
	}
	v1, err := asm.AssembleProgram("micro-v1.jva", microV1)
	if err != nil {
		return nil, err
	}
	v2, err := asm.AssembleProgram("micro-v2.jva", microV2)
	if err != nil {
		return nil, err
	}
	if err := machine.LoadProgram(v1); err != nil {
		return nil, err
	}

	change := machine.Reg.LookupClass("Change")
	noChange := machine.Reg.LookupClass("NoChange")
	nChange := int(float64(cfg.Objects)*cfg.FracUpdated + 0.5)

	// Populate the heap from the driver side (the paper's harness builds
	// the array before triggering the update; allocation cost is not part
	// of the measured pause). The array pins everything.
	arr, ok := machine.Heap.AllocArray(true, cfg.Objects)
	if !ok {
		return nil, fmt.Errorf("bench: heap too small for %d objects", cfg.Objects)
	}
	h := machine.PushHandle(arr)
	defer machine.PopHandle(1)
	for i := 0; i < cfg.Objects; i++ {
		cls := noChange
		if i < nChange {
			cls = change
		}
		obj, ok := machine.Heap.AllocObject(cls)
		if !ok {
			return nil, fmt.Errorf("bench: heap exhausted at object %d", i)
		}
		machine.Heap.SetFieldValue(obj, rt.HeaderWords+0, rt.IntVal(int64(i)))
		machine.Heap.SetFieldValue(obj, rt.HeaderWords+1, rt.IntVal(int64(i*2)))
		machine.Heap.SetFieldValue(obj, rt.HeaderWords+2, rt.IntVal(int64(i*3)))
		machine.Heap.SetElem(h.Ref(), i, rt.RefVal(obj))
	}

	spec, err := upt.Prepare("m", v1, v2)
	if err != nil {
		return nil, err
	}
	engine := core.NewEngine(machine)
	if cfg.Metrics != nil {
		machine.AttachObs(nil, cfg.Metrics)
		engine.AttachGates(obs.NewGateEngine(nil, 0, cfg.Metrics), core.GateObserve)
	}
	res, err := engine.ApplyNow(spec, core.Options{FastDefaults: cfg.FastDefaults})
	if err != nil {
		return nil, err
	}
	if res.Outcome != core.Applied {
		return nil, fmt.Errorf("bench: micro update %v: %v", res.Outcome, res.Err)
	}
	var drain time.Duration
	if cfg.Lazy && !cfg.ConcurrentReloc {
		// The pause tags instead of transforming; every updated instance
		// must still be pending when it ends. (Composed with ConcurrentReloc
		// the pause creates almost no pairs at all — discovery itself rides
		// the drain — so the pending count at apply is near zero instead.)
		if res.Stats.LazyPending != nChange {
			return nil, fmt.Errorf("bench: lazy pause tagged %d, want %d", res.Stats.LazyPending, nChange)
		}
	}
	if cfg.Lazy || cfg.ConcurrentReloc {
		// The driver forces the whole drain and times it — the work the
		// pause no longer does. With ConcurrentReloc the relocation drains
		// first, then any lazy residue; the relocation's own flip-to-finalize
		// wall clock is reported separately from the stats.
		t0 := time.Now()
		if err := engine.ForceDrain(); err != nil {
			return nil, fmt.Errorf("bench: forced drain: %w", err)
		}
		if cfg.Lazy {
			drain = time.Since(t0)
		}
	}
	if res.Stats.TransformedObjects != nChange {
		return nil, fmt.Errorf("bench: transformed %d, want %d", res.Stats.TransformedObjects, nChange)
	}
	return &MicroResult{
		Config:        cfg,
		GC:            res.Stats.PauseGC,
		Transform:     res.Stats.PauseTransform,
		Total:         res.Stats.PauseTotal,
		Transformed:   res.Stats.TransformedObjects,
		CopiedWords:   res.Stats.CopiedWords - res.Stats.ScratchWords,
		ScratchWords:  res.Stats.ScratchWords,
		LazyPending:   res.Stats.LazyPending,
		Drain:         drain,
		GCWorkers:     res.Stats.GCWorkers,
		GCWorkerWords: res.Stats.GCWorkerWords,
		GCSteals:      res.Stats.GCSteals,
		PairsLogged:   res.Stats.PairsLogged,

		GCMarkConcurrent: res.Stats.GCMarkConcurrent,
		MarkOutside:      res.Stats.GCMarkOutside,
		PauseMark:        res.Stats.PauseGCMark,
		PauseRescan:      res.Stats.PauseGCRescan,
		PauseCopy:        res.Stats.PauseGCCopy,
		MarkedObjects:    res.Stats.GCMarkedObjects,
		RescanMarked:     res.Stats.GCRescanMarked,

		Verdict: res.Verdict,

		RelocConcurrent: res.Stats.RelocConcurrent,
		RelocObjects:    res.Stats.RelocObjects,
		RelocDrain:      res.Stats.RelocDrain,
	}, nil
}

// MicroSweep is the full Table 1 grid: for each size, pause times over the
// fraction sweep 0%..100% in steps of 10%.
type MicroSweep struct {
	Sizes     []MicroConfig // FracUpdated ignored; one row group per size
	Fractions []float64
	Runs      int // runs per cell; the median is reported
}

// DefaultFractions is the paper's 0..100% in steps of 10.
func DefaultFractions() []float64 {
	out := make([]float64, 11)
	for i := range out {
		out[i] = float64(i) / 10
	}
	return out
}

// PaperSizes returns the paper's four configurations. The heap labels keep
// the paper's names; object counts are the paper's.
func PaperSizes() []MicroConfig {
	return []MicroConfig{
		{Objects: 280_000, HeapLabel: "160 MB"},
		{Objects: 770_000, HeapLabel: "320 MB"},
		{Objects: 1_760_000, HeapLabel: "640 MB"},
		{Objects: 3_670_000, HeapLabel: "1280 MB"},
	}
}

// ScaledSizes returns the paper's configurations divided by the given
// factor, for quick runs (go test -bench uses factor 10).
func ScaledSizes(factor int) []MicroConfig {
	sizes := PaperSizes()
	for i := range sizes {
		sizes[i].Objects /= factor
		sizes[i].HeapLabel += fmt.Sprintf(" ÷%d", factor)
	}
	return sizes
}

// Cell is one measured grid cell.
type Cell struct {
	Size     MicroConfig
	Fraction float64
	GC       Summary
	Tr       Summary
	Total    Summary
}

// RunSweep measures the whole grid.
func RunSweep(sw MicroSweep, progress io.Writer) ([]Cell, error) {
	if sw.Runs <= 0 {
		sw.Runs = 1
	}
	if len(sw.Fractions) == 0 {
		sw.Fractions = DefaultFractions()
	}
	var cells []Cell
	for _, size := range sw.Sizes {
		for _, frac := range sw.Fractions {
			var gcs, trs, tots []float64
			for r := 0; r < sw.Runs; r++ {
				cfg := size
				cfg.FracUpdated = frac
				res, err := RunMicro(cfg)
				if err != nil {
					return nil, err
				}
				gcs = append(gcs, Millis(res.GC))
				trs = append(trs, Millis(res.Transform))
				tots = append(tots, Millis(res.Total))
			}
			cells = append(cells, Cell{
				Size: size, Fraction: frac,
				GC: Summarize(gcs), Tr: Summarize(trs), Total: Summarize(tots),
			})
			if progress != nil {
				fmt.Fprintf(progress, ".")
			}
		}
		if progress != nil {
			fmt.Fprintln(progress)
		}
	}
	return cells, nil
}

// PrintTable1 renders the grid in the paper's three row groups.
func PrintTable1(w io.Writer, sizes []MicroConfig, fractions []float64, cells []Cell) {
	get := func(size MicroConfig, frac float64) *Cell {
		for i := range cells {
			if cells[i].Size.HeapLabel == size.HeapLabel && cells[i].Fraction == frac {
				return &cells[i]
			}
		}
		return nil
	}
	header := func() {
		fmt.Fprintf(w, "%10s %12s", "# objects", "Heap size")
		for _, f := range fractions {
			fmt.Fprintf(w, " %7.0f%%", f*100)
		}
		fmt.Fprintln(w)
	}
	group := func(title string, pick func(*Cell) float64) {
		fmt.Fprintf(w, "%s (ms)\n", title)
		header()
		for _, size := range sizes {
			fmt.Fprintf(w, "%10d %12s", size.Objects, size.HeapLabel)
			for _, f := range fractions {
				c := get(size, f)
				if c == nil {
					fmt.Fprintf(w, " %8s", "-")
					continue
				}
				fmt.Fprintf(w, " %8.1f", pick(c))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	group("Garbage collection time", func(c *Cell) float64 { return c.GC.Median })
	group("Running transformation functions", func(c *Cell) float64 { return c.Tr.Median })
	group("Total DSU pause time", func(c *Cell) float64 { return c.Total.Median })
}

// PrintFig6 renders the largest size's three series against the fraction
// axis (the paper's Figure 6 plot, as data).
func PrintFig6(w io.Writer, sizes []MicroConfig, fractions []float64, cells []Cell) {
	if len(sizes) == 0 {
		return
	}
	big := sizes[len(sizes)-1]
	fmt.Fprintf(w, "Figure 6: pause decomposition, %d objects (%s)\n", big.Objects, big.HeapLabel)
	fmt.Fprintf(w, "%9s %12s %14s %12s\n", "fraction", "GC (ms)", "transform (ms)", "total (ms)")
	for _, f := range fractions {
		for i := range cells {
			c := &cells[i]
			if c.Size.HeapLabel == big.HeapLabel && c.Fraction == f {
				fmt.Fprintf(w, "%8.0f%% %12.1f %14.1f %12.1f\n",
					f*100, c.GC.Median, c.Tr.Median, c.Total.Median)
			}
		}
	}
}
