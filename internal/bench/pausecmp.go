package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
)

// The pausecmp experiment is the headline measurement of the pause-
// shrinking work: the Table 1 microbenchmark update run under the fused
// stop-the-world pipeline and under each concurrent pipeline — SATB
// concurrent mark, lazy transformation, concurrent relocation, and their
// compositions — over a sizes × updated-fraction grid. For each cell it
// reports the same uniform pause decomposition — mark-in-pause / rescan /
// copy / transform — so every claim is checkable from the JSON itself:
// cmark rows show mark_in_pause_ms = 0 with the trace's wall time in
// mark_outside_ms; lazy rows show transform_ms ≈ 0 with the forced drain in
// drain_ms; reloc rows show copy_ms collapsing to the eager evacuation of
// updated instances only (near zero at small fractions) with the bulk copy's
// wall time in reloc_drain_ms; cmark-reloc-lazy rows show all three at once,
// the pause down to flip preparation.
//
// Interpretation caveat (same as gcpause): concurrent phases only overlap
// mutator work if the host has a spare CPU. On GOMAXPROCS=1 they are
// time-sliced with everything else — the *pause* still excludes them (the
// decomposition claim holds), but total wall-clock improves only with
// hardware parallelism. The JSON records gomaxprocs/cpus.

// PauseCmpSweep configures the grid.
type PauseCmpSweep struct {
	// Sizes is the object-count axis (heap sized 5× live, as in RunMicro).
	Sizes []int
	// Fractions is the updated-instance fraction axis (default .05/.2/.5).
	Fractions []float64
	// Workers is the in-pause copy width for BOTH modes (default 4) so the
	// comparison isolates where marking runs, not how wide the copy is.
	Workers int
	// Runs per cell; the median is reported (default 3).
	Runs int
	// FastDefaults enables the native bulk transformer path in both modes.
	FastDefaults bool
}

// PauseCmpRow is one measured cell in one mode.
type PauseCmpRow struct {
	Objects     int     `json:"objects"`
	HeapWords   int     `json:"heap_words"`
	FracUpdated float64 `json:"frac_updated"`
	Workers     int     `json:"workers"`
	Mode        string  `json:"mode"` // "stw", "cmark", "lazy", "reloc", "cmark-reloc" or "cmark-reloc-lazy"

	PauseTotalMillis  Summary `json:"pause_total_ms"`
	GCMillis          Summary `json:"gc_ms"`
	MarkInPauseMillis Summary `json:"mark_in_pause_ms"`
	RescanMillis      Summary `json:"rescan_ms"`
	CopyMillis        Summary `json:"copy_ms"`
	TransformMillis   Summary `json:"transform_ms"`
	MarkOutsideMillis Summary `json:"mark_outside_ms"`

	// Lazy rows: the transform work leaves the pause entirely —
	// transform_ms ≈ 0, lazy_pending pairs stay tagged behind the read
	// barrier, and the forced drain's wall time appears in drain_ms.
	DrainMillis Summary `json:"drain_ms"`
	LazyPending int     `json:"lazy_pending,omitempty"`

	// Reloc rows: the bulk copy leaves the pause — copy_ms keeps only the
	// eager evacuation of updated-class instances (none at all composed
	// with lazy), reloc_objects are evacuated after the world resumes, and
	// the flip-to-finalize drain wall time appears in reloc_drain_ms.
	RelocDrainMillis Summary `json:"reloc_drain_ms"`
	RelocObjects     int     `json:"reloc_objects,omitempty"`

	MarkedObjects int `json:"marked_objects,omitempty"`
	RescanMarked  int `json:"rescan_marked,omitempty"`
	PairsLogged   int `json:"pairs_logged"`

	// SpeedupPause is the stw row's median total pause divided by this
	// row's, for the same size × fraction (1.0 on stw rows).
	SpeedupPause float64 `json:"speedup_pause"`
}

// PauseCmpReport is the BENCH_pause.json document.
type PauseCmpReport struct {
	Experiment string        `json:"experiment"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Note       string        `json:"note"`
	Rows       []PauseCmpRow `json:"rows"`
}

// RunPauseCmp measures the grid: for each size × fraction, the stw row
// first (the baseline for speedup_pause), then the cmark row.
func RunPauseCmp(sw PauseCmpSweep, progress io.Writer) (*PauseCmpReport, error) {
	if len(sw.Sizes) == 0 {
		sw.Sizes = DefaultGCPauseSizes()
	}
	if len(sw.Fractions) == 0 {
		sw.Fractions = []float64{0.05, 0.2, 0.5}
	}
	if sw.Workers <= 0 {
		sw.Workers = 4
	}
	if sw.Runs <= 0 {
		sw.Runs = 3
	}
	rep := &PauseCmpReport{
		Experiment: "pausecmp",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "speedup_pause is stw-median / row-median total pause for the same " +
			"size and fraction. The decomposition is uniform across modes: " +
			"mark_in_pause_ms is in-pause discovery only (stw's fused trace+copy is " +
			"all copy_ms). cmark rows must show mark_in_pause_ms = 0 with the trace " +
			"wall time in mark_outside_ms; lazy rows transform_ms = 0 with " +
			"lazy_pending pairs drained post-pause in drain_ms; reloc rows keep only " +
			"the eager evacuation of updated instances in copy_ms with the bulk copy " +
			"in reloc_drain_ms (composed with lazy, copy_ms = 0). Pause shrinkage is " +
			"a decomposition property and holds on any host; wall-clock overlap of " +
			"concurrent phases with mutator work additionally requires gomaxprocs > 1.",
	}
	for _, objects := range sw.Sizes {
		for _, frac := range sw.Fractions {
			stwMedian := 0.0
			for _, mode := range []string{"stw", "cmark", "lazy", "reloc", "cmark-reloc", "cmark-reloc-lazy"} {
				cmark := strings.Contains(mode, "cmark")
				lazy := strings.Contains(mode, "lazy")
				reloc := strings.Contains(mode, "reloc")
				var tots, gcs, marks, rescans, copies, trs, outs, drains, rdrains []float64
				var last *MicroResult
				for r := 0; r < sw.Runs; r++ {
					res, err := RunMicro(MicroConfig{
						Objects:         objects,
						FracUpdated:     frac,
						HeapLabel:       fmt.Sprintf("%d objects", objects),
						FastDefaults:    sw.FastDefaults,
						Workers:         sw.Workers,
						ConcurrentMark:  cmark,
						Lazy:            lazy,
						ConcurrentReloc: reloc,
					})
					if err != nil {
						return nil, fmt.Errorf("bench: pausecmp objects=%d frac=%.2f mode=%s: %w",
							objects, frac, mode, err)
					}
					// cmark+reloc+lazy skips the pre-pause trace by design
					// (discovery rides the drain), so the fallback check only
					// applies where the mark actually runs.
					if cmark && !(reloc && lazy) && !res.GCMarkConcurrent {
						return nil, fmt.Errorf("bench: pausecmp objects=%d frac=%.2f: concurrent mark fell back to STW",
							objects, frac)
					}
					if reloc && !res.RelocConcurrent {
						return nil, fmt.Errorf("bench: pausecmp objects=%d frac=%.2f: concurrent relocation fell back to STW",
							objects, frac)
					}
					tots = append(tots, Millis(res.Total))
					gcs = append(gcs, Millis(res.GC))
					marks = append(marks, Millis(res.PauseMark))
					rescans = append(rescans, Millis(res.PauseRescan))
					copies = append(copies, Millis(res.PauseCopy))
					trs = append(trs, Millis(res.Transform))
					outs = append(outs, Millis(res.MarkOutside))
					drains = append(drains, Millis(res.Drain))
					rdrains = append(rdrains, Millis(res.RelocDrain))
					last = res
				}
				row := PauseCmpRow{
					Objects:     objects,
					HeapWords:   5 * (objects*8 + objects + 2*2 + 64),
					FracUpdated: frac,
					Workers:     sw.Workers,
					Mode:        mode,

					PauseTotalMillis:  Summarize(tots),
					GCMillis:          Summarize(gcs),
					MarkInPauseMillis: Summarize(marks),
					RescanMillis:      Summarize(rescans),
					CopyMillis:        Summarize(copies),
					TransformMillis:   Summarize(trs),
					MarkOutsideMillis: Summarize(outs),
					DrainMillis:       Summarize(drains),
					LazyPending:       last.LazyPending,
					RelocDrainMillis:  Summarize(rdrains),
					RelocObjects:      last.RelocObjects,

					MarkedObjects: last.MarkedObjects,
					RescanMarked:  last.RescanMarked,
					PairsLogged:   last.PairsLogged,
				}
				if mode == "stw" {
					stwMedian = row.PauseTotalMillis.Median
				}
				if stwMedian > 0 && row.PauseTotalMillis.Median > 0 {
					row.SpeedupPause = stwMedian / row.PauseTotalMillis.Median
				}
				rep.Rows = append(rep.Rows, row)
				if progress != nil {
					fmt.Fprintf(progress, ".")
				}
			}
		}
		if progress != nil {
			fmt.Fprintln(progress)
		}
	}
	return rep, nil
}

// WritePauseCmpJSON writes the report as indented JSON (BENCH_pause.json).
func WritePauseCmpJSON(path string, rep *PauseCmpReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintPauseCmp renders the grid as text.
func PrintPauseCmp(w io.Writer, rep *PauseCmpReport) {
	fmt.Fprintf(w, "DSU pause: STW vs concurrent mark / lazy transform / concurrent reloc (gomaxprocs=%d, cpus=%d)\n",
		rep.GOMAXPROCS, rep.NumCPU)
	fmt.Fprintf(w, "%9s %6s %16s %10s %9s %9s %9s %11s %10s %9s %10s %9s\n",
		"objects", "frac", "mode", "pause(ms)", "mark(ms)", "rescan", "copy(ms)", "transf(ms)", "mark-out", "drain(ms)", "reloc(ms)", "speedup")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%9d %5.0f%% %16s %10.2f %9.2f %9.2f %9.2f %11.2f %10.2f %9.2f %10.2f %8.2fx\n",
			r.Objects, r.FracUpdated*100, r.Mode,
			r.PauseTotalMillis.Median, r.MarkInPauseMillis.Median, r.RescanMillis.Median,
			r.CopyMillis.Median, r.TransformMillis.Median, r.MarkOutsideMillis.Median,
			r.DrainMillis.Median, r.RelocDrainMillis.Median, r.SpeedupPause)
	}
	fmt.Fprintf(w, "note: %s\n", rep.Note)
}
