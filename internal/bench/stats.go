// Package bench implements the paper's evaluation harness: the update-pause
// microbenchmark behind Table 1 and Figure 6, the steady-state
// throughput/latency experiment behind Figure 5, the UPT summary tables
// behind Tables 2–4, the §4 update-applicability matrix, and the
// indirection-overhead ablation motivated by §5's comparison with
// JDrums/DVM.
package bench

import (
	"fmt"
	"sort"
	"time"
)

// Summary reports a sample's median and quartiles — the paper reports
// medians and inter-quartile ranges over 21 runs ("With 21 runs, the range
// between the quartiles serves as a 98% confidence interval").
type Summary struct {
	N        int
	Median   float64
	Q1, Q3   float64
	Min, Max float64
}

// Summarize computes the five-number-ish summary of a sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		pos := p * float64(len(s)-1)
		lo := int(pos)
		hi := lo
		if lo+1 < len(s) {
			hi = lo + 1
		}
		frac := pos - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	return Summary{
		N:      len(s),
		Median: q(0.5),
		Q1:     q(0.25),
		Q3:     q(0.75),
		Min:    s[0],
		Max:    s[len(s)-1],
	}
}

// IQR returns the inter-quartile range.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

func (s Summary) String() string {
	return fmt.Sprintf("median %.3f (q1 %.3f, q3 %.3f, n=%d)", s.Median, s.Q1, s.Q3, s.N)
}

// Millis converts a duration to float milliseconds.
func Millis(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
