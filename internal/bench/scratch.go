package bench

import (
	"fmt"
	"io"
)

// Scratch-region experiment (paper §3.5): "Our implementation of object
// transformers uses an extra copy of all updated objects and adds temporary
// memory pressure. We could instead copy the old versions to a special
// block of memory and reclaim it when the collection completes." This
// measures that pressure: to-space words consumed by the DSU collection
// with old copies kept in to-space (the paper's implementation) vs.
// diverted to a scratch block, across update fractions.
type ScratchRow struct {
	Fraction       float64
	LiveWords      int // approximate live set (objects + array)
	ToSpacePlain   int // to-space words, old copies in to-space
	ToSpaceScratch int // to-space words with the scratch region
	ScratchWords   int // size of the diverted old copies
}

// RunScratchPressure measures the rows for one object count.
func RunScratchPressure(objects int, fractions []float64, progress io.Writer) ([]ScratchRow, error) {
	if len(fractions) == 0 {
		fractions = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	live := objects*8 + objects + 4
	var rows []ScratchRow
	for _, frac := range fractions {
		plain, err := RunMicro(MicroConfig{Objects: objects, FracUpdated: frac, FastDefaults: true})
		if err != nil {
			return nil, err
		}
		scratch, err := RunMicro(MicroConfig{
			Objects: objects, FracUpdated: frac, FastDefaults: true,
			ScratchWords: objects*8 + 64,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScratchRow{
			Fraction:       frac,
			LiveWords:      live,
			ToSpacePlain:   plain.CopiedWords + plain.ScratchWords,
			ToSpaceScratch: scratch.CopiedWords,
			ScratchWords:   scratch.ScratchWords,
		})
		if progress != nil {
			fmt.Fprintf(progress, ".")
		}
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return rows, nil
}

// PrintScratch renders the memory-pressure comparison.
func PrintScratch(w io.Writer, objects int, rows []ScratchRow) {
	fmt.Fprintf(w, "DSU memory pressure, %d objects (words; live set ≈ %d)\n", objects, rows[0].LiveWords)
	fmt.Fprintf(w, "%9s %14s %16s %14s %9s\n",
		"fraction", "to-space", "to-space+scratch", "scratch", "saved")
	for _, r := range rows {
		saved := 0.0
		if r.ToSpacePlain > 0 {
			saved = 100 * (1 - float64(r.ToSpaceScratch)/float64(r.ToSpacePlain))
		}
		fmt.Fprintf(w, "%8.0f%% %14d %16d %14d %8.1f%%\n",
			r.Fraction*100, r.ToSpacePlain, r.ToSpaceScratch, r.ScratchWords, saved)
	}
	fmt.Fprintln(w, "(to-space pressure at full update drops by the old copies' share; the scratch")
	fmt.Fprintln(w, " block is reclaimed the moment the transformer phase ends)")
}
