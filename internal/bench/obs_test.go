package bench

import (
	"io"
	"strings"
	"testing"
	"time"

	"govolve/internal/apps"
	"govolve/internal/obs"
)

// TestFig5TraceCapturesUpdateLifecycle pins the headline observability
// acceptance criterion end-to-end: running the updated fig5 configuration
// with a flight recorder attached yields a timeline containing the
// install/gc/transform phase spans and at least one safe-point-attempt
// instant, and the exported Chrome trace is valid for Perfetto.
func TestFig5TraceCapturesUpdateLifecycle(t *testing.T) {
	app := apps.Webserver()
	rec := obs.NewRecorder(obs.DefaultCapacity)
	reg := obs.NewRegistry()
	cfg := Fig5Config{Label: "updated", Engine: true, UpdateFrom: 5, MeasureVersion: 6}
	opts := Fig5Options{
		Runs:     1,
		Duration: 30 * time.Millisecond,
		Heap:     1 << 20,
		Recorder: rec,
		Metrics:  reg,
	}
	if _, err := RunFig5(app, []Fig5Config{cfg}, opts, io.Discard); err != nil {
		t.Fatal(err)
	}

	doc := obs.BuildTrace(rec.Events())
	spans := map[string]int{}
	instants := map[string]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans[e.Name]++
		case "i":
			instants[e.Name]++
		}
	}
	for _, want := range []string{"update pause", "install", "gc", "transform"} {
		if spans[want] == 0 {
			t.Errorf("trace has no %q span (spans: %v)", want, spans)
		}
	}
	if instants["safe-point attempt"] == 0 {
		t.Errorf("trace has no safe-point-attempt instant (instants: %v)", instants)
	}
	if instants["update applied"] == 0 {
		t.Errorf("trace has no update-applied instant (instants: %v)", instants)
	}

	// The engine observed the applied update into the pause histograms.
	if n := reg.Histogram(obs.MPauseTotal, obs.DurationBuckets()).Count(); n == 0 {
		t.Error("MPauseTotal histogram is empty after an applied update")
	}
	if n := reg.Counter(obs.MUpdatesApplied).Value(); n != 1 {
		t.Errorf("MUpdatesApplied = %d, want 1", n)
	}

	// The exported trace document round-trips as JSON (WriteChromeTrace is
	// unit-tested in obs; here we only check it accepts the real event set).
	var b strings.Builder
	if err := obs.WriteChromeTrace(&b, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(b.String()), "{") {
		t.Fatal("trace export is not a JSON object")
	}
}

// TestRunObsPauseSmall exercises the obs experiment end to end at a tiny
// size: both the E1 (webserver under the engine) and E10 (micro) rows must
// populate their histograms.
func TestRunObsPauseSmall(t *testing.T) {
	rep, err := RunObsPause(ObsPauseOptions{
		Runs:         1,
		MicroObjects: 5000,
		MicroWorkers: []int{1},
		Heap:         1 << 20,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (E1 + one E10)", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Updates == 0 {
			t.Errorf("row %q observed no updates", row.Config)
		}
		if row.TotalMs.Count == 0 || row.TotalMs.P99Ms < row.TotalMs.P50Ms {
			t.Errorf("row %q total histogram %+v", row.Config, row.TotalMs)
		}
		// Every sampled update was judged, and an all-green run passes.
		if row.GatePass != int64(row.Updates) || row.GateFail != 0 {
			t.Errorf("row %q gates %d pass / %d fail, want %d / 0",
				row.Config, row.GatePass, row.GateFail, row.Updates)
		}
		if !strings.Contains(row.LastVerdict, "PASS") {
			t.Errorf("row %q last verdict %q", row.Config, row.LastVerdict)
		}
	}
	// The E1 row carries the profiler's version-attributed view.
	e1 := rep.Rows[0]
	if e1.ProfileSamples == 0 || len(e1.ProfileTop) == 0 {
		t.Fatalf("E1 row has no profile columns: %d samples, top %v",
			e1.ProfileSamples, e1.ProfileTop)
	}
	if !strings.Contains(e1.ProfileTop[0], "@c") {
		t.Errorf("top folded stack %q lacks a class-version discriminator", e1.ProfileTop[0])
	}
}
