package bench

import (
	"io"
	"testing"
)

// TestPauseCmpAllModes runs one tiny cell through every pausecmp mode and
// pins the uniform decomposition contract the JSON report advertises:
// cmark rows carry no in-pause mark, lazy rows no in-pause transform, reloc
// rows almost no in-pause copy (the bulk copy appears in reloc_drain_ms),
// and the full composition shrinks the pause to flip preparation.
func TestPauseCmpAllModes(t *testing.T) {
	rep, err := RunPauseCmp(PauseCmpSweep{
		Sizes: []int{4000}, Fractions: []float64{0.2}, Runs: 1, FastDefaults: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"stw", "cmark", "lazy", "reloc", "cmark-reloc", "cmark-reloc-lazy"}
	if len(rep.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(want))
	}
	rows := map[string]*PauseCmpRow{}
	for i := range rep.Rows {
		r := &rep.Rows[i]
		if r.Mode != want[i] {
			t.Fatalf("row %d mode %q, want %q", i, r.Mode, want[i])
		}
		rows[r.Mode] = r
	}
	// STW: fused trace+copy is all copy_ms under the uniform decomposition.
	if stw := rows["stw"]; stw.MarkInPauseMillis.Median != 0 || stw.CopyMillis.Median == 0 {
		t.Fatalf("stw decomposition: mark=%v copy=%v", stw.MarkInPauseMillis, stw.CopyMillis)
	}
	if cm := rows["cmark"]; cm.MarkInPauseMillis.Median != 0 || cm.MarkOutsideMillis.Median == 0 {
		t.Fatalf("cmark decomposition: mark-in-pause=%v mark-outside=%v",
			cm.MarkInPauseMillis, cm.MarkOutsideMillis)
	}
	for _, mode := range []string{"reloc", "cmark-reloc", "cmark-reloc-lazy"} {
		r := rows[mode]
		if r.RelocObjects == 0 || r.RelocDrainMillis.Median == 0 {
			t.Fatalf("%s: no concurrent relocation recorded: objs=%d drain=%v",
				mode, r.RelocObjects, r.RelocDrainMillis)
		}
		// The in-pause copy keeps only the eager evacuation of updated
		// instances (or nothing composed with lazy) — the bulk copy has
		// left the pause.
		if r.CopyMillis.Median >= rows["stw"].CopyMillis.Median {
			t.Fatalf("%s: in-pause copy %.3fms did not shrink vs stw %.3fms",
				mode, r.CopyMillis.Median, rows["stw"].CopyMillis.Median)
		}
	}
	PrintPauseCmp(io.Discard, rep)
}
