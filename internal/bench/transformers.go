package bench

import (
	"fmt"
	"io"
)

// Transformer-strategy experiment: the paper observes (§4.1) that "the cost
// of running transformers is higher than the extra copying cost incurred
// during GC … a naively compiled field-by-field copy is much slower than
// the collector's highly-optimized copying loop", and sketches optimizing
// it. This experiment quantifies that remark by running the Table 1
// microbenchmark at 100% updated objects with the interpreted default
// transformers (the paper's configuration) and with the native bulk-copy
// fast path.
type TransformerStrategyResult struct {
	Objects          int
	InterpretedMs    Summary // transformer phase, interpreted defaults
	NativeMs         Summary // transformer phase, bulk-copy fast path
	InterpretedTotal Summary // total pause
	NativeTotal      Summary
	Speedup          float64 // interpreted / native (transformer phase medians)
}

// RunTransformerStrategy measures both strategies.
func RunTransformerStrategy(objects, runs int, progress io.Writer) (*TransformerStrategyResult, error) {
	if runs <= 0 {
		runs = 3
	}
	measure := func(fast bool) (tr, tot []float64, err error) {
		for r := 0; r < runs; r++ {
			res, err := RunMicro(MicroConfig{
				Objects: objects, FracUpdated: 1, FastDefaults: fast,
			})
			if err != nil {
				return nil, nil, err
			}
			tr = append(tr, Millis(res.Transform))
			tot = append(tot, Millis(res.Total))
			if progress != nil {
				fmt.Fprintf(progress, ".")
			}
		}
		return tr, tot, nil
	}
	itr, itot, err := measure(false)
	if err != nil {
		return nil, err
	}
	ntr, ntot, err := measure(true)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	res := &TransformerStrategyResult{
		Objects:          objects,
		InterpretedMs:    Summarize(itr),
		NativeMs:         Summarize(ntr),
		InterpretedTotal: Summarize(itot),
		NativeTotal:      Summarize(ntot),
	}
	if res.NativeMs.Median > 0 {
		res.Speedup = res.InterpretedMs.Median / res.NativeMs.Median
	}
	return res, nil
}

// PrintTransformerStrategy renders the comparison.
func PrintTransformerStrategy(w io.Writer, r *TransformerStrategyResult) {
	fmt.Fprintf(w, "Transformer execution strategy (%d objects, 100%% updated)\n", r.Objects)
	fmt.Fprintf(w, "%-36s %14s %14s\n", "strategy", "transform (ms)", "total pause (ms)")
	fmt.Fprintf(w, "%-36s %14.1f %14.1f\n", "interpreted defaults (paper's setup)",
		r.InterpretedMs.Median, r.InterpretedTotal.Median)
	fmt.Fprintf(w, "%-36s %14.1f %14.1f\n", "native bulk copy (§4.1 optimization)",
		r.NativeMs.Median, r.NativeTotal.Median)
	fmt.Fprintf(w, "transformer-phase speedup: %.1fx\n", r.Speedup)
}
