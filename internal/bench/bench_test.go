package bench

import (
	"io"
	"math"
	"testing"
	"time"

	"govolve/internal/apps"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.Median != 3 || s.Min != 1 || s.Max != 5 || s.N != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %v, %v", s.Q1, s.Q3)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatal("empty sample")
	}
	one := Summarize([]float64{7})
	if one.Median != 7 || one.Q1 != 7 || one.Q3 != 7 {
		t.Fatalf("singleton = %+v", one)
	}
}

func TestRunMicroCountsAndShape(t *testing.T) {
	// Small grid; checks the invariants the paper's Table 1 exhibits:
	// transformer time ≈ 0 at fraction 0 and grows with the fraction,
	// and total ≥ GC + transform parts.
	r0, err := RunMicro(MicroConfig{Objects: 20000, FracUpdated: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r0.Transformed != 0 {
		t.Fatalf("fraction 0 transformed %d objects", r0.Transformed)
	}
	r100, err := RunMicro(MicroConfig{Objects: 20000, FracUpdated: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r100.Transformed != 20000 {
		t.Fatalf("fraction 1 transformed %d objects", r100.Transformed)
	}
	if r100.Transform <= r0.Transform {
		t.Fatalf("transform time did not grow: %v vs %v", r0.Transform, r100.Transform)
	}
	if r100.Total < r100.GC || r100.Total < r100.Transform {
		t.Fatalf("total %v below components (%v gc, %v tr)", r100.Total, r100.GC, r100.Transform)
	}
}

// TestRunMicroLazy pins the lazy-transform decomposition: the measured
// pause excludes transformer execution entirely (the pause only tags), the
// whole population drains post-pause, and the final count matches eager.
func TestRunMicroLazy(t *testing.T) {
	lazy, err := RunMicro(MicroConfig{Objects: 20000, FracUpdated: 1, FastDefaults: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.LazyPending != 20000 {
		t.Fatalf("lazy pause tagged %d objects, want 20000", lazy.LazyPending)
	}
	if lazy.Transformed != 20000 {
		t.Fatalf("drain transformed %d objects, want 20000", lazy.Transformed)
	}
	if lazy.Drain <= 0 {
		t.Fatalf("forced drain took %v, want > 0", lazy.Drain)
	}
	eager, err := RunMicro(MicroConfig{Objects: 20000, FracUpdated: 1, FastDefaults: true})
	if err != nil {
		t.Fatal(err)
	}
	// The lazy pause omits the transformer pass; with the whole heap
	// updated that pass dominates, so the in-pause transform time must be
	// a small fraction of the eager one (≈0; allow scheduler noise).
	if eager.Transform <= 0 {
		t.Fatalf("eager transform time %v, want > 0", eager.Transform)
	}
	if lazy.Transform > eager.Transform/4 {
		t.Fatalf("lazy in-pause transform %v not ≈0 (eager %v)", lazy.Transform, eager.Transform)
	}
}

func TestRunMicroValidation(t *testing.T) {
	if _, err := RunMicro(MicroConfig{Objects: 0}); err == nil {
		t.Fatal("zero objects accepted")
	}
	if _, err := RunMicro(MicroConfig{Objects: 10, FracUpdated: 2}); err == nil {
		t.Fatal("fraction 2 accepted")
	}
}

func TestRunSweepSmall(t *testing.T) {
	cells, err := RunSweep(MicroSweep{
		Sizes:     []MicroConfig{{Objects: 5000, HeapLabel: "tiny"}},
		Fractions: []float64{0, 0.5, 1},
		Runs:      1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("%d cells", len(cells))
	}
	// Monotone-ish: the 100% cell must cost more than the 0% cell.
	if !(cells[2].Total.Median > cells[0].Total.Median) {
		t.Fatalf("pause not increasing with fraction: %v vs %v",
			cells[0].Total.Median, cells[2].Total.Median)
	}
	PrintTable1(io.Discard, []MicroConfig{{Objects: 5000, HeapLabel: "tiny"}},
		[]float64{0, 0.5, 1}, cells)
	PrintFig6(io.Discard, []MicroConfig{{Objects: 5000, HeapLabel: "tiny"}},
		[]float64{0, 0.5, 1}, cells)
}

func TestSummarizeTables(t *testing.T) {
	for _, app := range apps.All() {
		rows, err := SummarizeApp(app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if len(rows) != app.UpdateCount() {
			t.Fatalf("%s: %d rows", app.Name, len(rows))
		}
		PrintTable(io.Discard, app, rows)
	}
	// Spot-check the Figure 2 release: 1.3.2 adds EmailAddress and
	// changes User signatures.
	email := apps.EmailServer()
	rows, err := SummarizeApp(email)
	if err != nil {
		t.Fatal(err)
	}
	var r132 *TableRow
	for i := range rows {
		if rows[i].Version == "1.3.2" {
			r132 = &rows[i]
		}
	}
	if r132 == nil {
		t.Fatal("no 1.3.2 row")
	}
	if r132.ClassesAdded != 1 {
		t.Fatalf("1.3.2 classes added = %d, want 1 (EmailAddress)", r132.ClassesAdded)
	}
	if r132.MethodsSig < 2 {
		t.Fatalf("1.3.2 signature changes = %d, want ≥2 (get/setForwardedAddresses)", r132.MethodsSig)
	}
	if r132.FieldsChg < 1 {
		t.Fatalf("1.3.2 field type changes = %d, want ≥1 (forwardAddresses)", r132.FieldsChg)
	}
}

func TestFig5Tiny(t *testing.T) {
	app := apps.Webserver()
	results, err := RunFig5(app, DefaultFig5Configs(app),
		Fig5Options{Runs: 2, Duration: 40 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d configs", len(results))
	}
	for _, r := range results {
		if r.Throughput.Median <= 0 {
			t.Fatalf("%s: zero throughput", r.Config.Label)
		}
		if math.IsNaN(r.Latency.Median) || r.Latency.Median <= 0 {
			t.Fatalf("%s: bad latency", r.Config.Label)
		}
	}
	PrintFig5(io.Discard, results)
}

func TestAblationTiny(t *testing.T) {
	res, err := RunAblation(apps.Webserver(), 2, 40*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Indirections == 0 {
		t.Fatal("lazy run recorded no indirections")
	}
	PrintAblation(io.Discard, res)
}
