package bench

import (
	"fmt"
	"io"
	"time"

	"govolve/internal/asm"
	"govolve/internal/vm"
)

// Ablation: the paper's §5 argues that lazy-update VMs (JDrums, DVM) pay a
// persistent steady-state cost because every object dereference goes
// through a check — JDrums "traps all object pointer dereferences", and DVM
// pays roughly 10% over an interpreter. JVOLVE's eager GC-based design pays
// nothing. The VM's IndirectionCheck option simulates the lazy design's
// per-dereference work; this experiment measures a field-access-heavy
// program (pointer-chasing over a linked list, the worst case for a
// per-dereference tax) under both designs.

const ablationProgram = `
class Node {
  field next LNode;
  field val I
  method <init>(LNode;I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Node.next LNode;
    load 0
    load 2
    putfield Node.val I
    return
  }
}
class Chase {
  static field head LNode;
  static method <clinit>()V {
    null
    store 0
    const 0
    store 1
  build:
    load 1
    const 400
    if_icmpge built
    new Node
    dup
    load 0
    load 1
    invokespecial Node.<init>(LNode;I)V
    store 0
    load 1
    const 1
    add
    store 1
    goto build
  built:
    load 0
    putstatic Chase.head LNode;
    return
  }
  static method sweep()I {
    const 0
    store 0
    getstatic Chase.head LNode;
    store 1
  walk:
    load 1
    ifnull done
    load 0
    load 1
    getfield Node.val I
    add
    store 0
    load 1
    getfield Node.next LNode;
    store 1
    goto walk
  done:
    load 0
    return
  }
  static method main()V {
    const 0
    store 0
  rounds:
    load 0
    const 1000000
    if_icmpge done
    invokestatic Chase.sweep()I
    pop
    load 0
    const 1
    add
    store 0
    goto rounds
  done:
    return
  }
}
`

// AblationResult compares the two designs on the pointer-chasing workload.
type AblationResult struct {
	Eager        Summary // million interpreted instructions per second
	Lazy         Summary
	Indirections int64 // dereferences that paid the check in the last lazy run
	SlowdownPct  float64
}

// RunAblation measures both configurations, interleaved, with a warmup run
// per configuration discarded.
func RunAblation(_ interface{}, runs int, duration time.Duration, progress io.Writer) (*AblationResult, error) {
	if runs <= 0 {
		runs = 5
	}
	if duration <= 0 {
		duration = 300 * time.Millisecond
	}
	prog, err := asm.AssembleProgram("chase.jva", ablationProgram)
	if err != nil {
		return nil, err
	}
	measureOnce := func(indirection bool) (float64, int64, error) {
		machine, err := vm.New(vm.Options{
			HeapWords: 1 << 16, Out: io.Discard, IndirectionCheck: indirection,
		})
		if err != nil {
			return 0, 0, err
		}
		if err := machine.LoadProgram(prog); err != nil {
			return 0, 0, err
		}
		if _, err := machine.SpawnMain("Chase"); err != nil {
			return 0, 0, err
		}
		machine.Step(20) // warm the code paths
		start := machine.TotalSteps
		t0 := time.Now()
		for time.Since(t0) < duration {
			if machine.Step(50) == 0 {
				break
			}
		}
		elapsed := time.Since(t0).Seconds()
		mips := float64(machine.TotalSteps-start) / 1e6 / elapsed
		return mips, machine.Indirections(), nil
	}

	var eager, lazy []float64
	var probes int64
	// One discarded warmup per configuration levels out process effects.
	if _, _, err := measureOnce(false); err != nil {
		return nil, err
	}
	if _, _, err := measureOnce(true); err != nil {
		return nil, err
	}
	for r := 0; r < runs; r++ {
		e, _, err := measureOnce(false)
		if err != nil {
			return nil, err
		}
		l, p, err := measureOnce(true)
		if err != nil {
			return nil, err
		}
		eager = append(eager, e)
		lazy = append(lazy, l)
		probes = p
		if progress != nil {
			fmt.Fprintf(progress, ".")
		}
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	res := &AblationResult{
		Eager:        Summarize(eager),
		Lazy:         Summarize(lazy),
		Indirections: probes,
	}
	if res.Eager.Median > 0 {
		res.SlowdownPct = 100 * (1 - res.Lazy.Median/res.Eager.Median)
	}
	return res, nil
}

// PrintAblation renders the comparison.
func PrintAblation(w io.Writer, r *AblationResult) {
	fmt.Fprintln(w, "Ablation: eager GC-based updates (JVOLVE) vs per-dereference checks (JDrums/DVM style)")
	fmt.Fprintln(w, "workload: pointer-chasing linked-list sweeps (field-access dominated)")
	fmt.Fprintf(w, "%-44s %10.1f Minstr/s (q1 %.1f, q3 %.1f)\n", "eager (no steady-state checks)", r.Eager.Median, r.Eager.Q1, r.Eager.Q3)
	fmt.Fprintf(w, "%-44s %10.1f Minstr/s (q1 %.1f, q3 %.1f)\n", "lazy-style (check per dereference)", r.Lazy.Median, r.Lazy.Q1, r.Lazy.Q3)
	fmt.Fprintf(w, "lazy design slowdown: %.1f%% (%d checked dereferences)\n", r.SlowdownPct, r.Indirections)
}
