package bench

import (
	"fmt"
	"io"
	"time"

	"govolve/internal/apps"
	"govolve/internal/core"
	"govolve/internal/obs"
	"govolve/internal/vm"
)

// Figure 5: steady-state throughput and latency of the webserver under
// three configurations, mirroring the paper's Jetty experiment:
//
//	stock       — the VM without a DSU engine attached
//	dsu         — the VM with the DSU engine attached but no update applied
//	dsu-updated — started one release back and dynamically updated first
//
// The paper's claim is relative: all three perform essentially identically,
// because JVOLVE adds no steady-state work — no indirection, no read
// barriers, nothing on the hot path. The same is true here by construction,
// and the ablation (ablation.go) shows what the alternative costs.

// Fig5Config selects one configuration.
type Fig5Config struct {
	Label string
	// Engine attaches a DSU engine (all configs run the same VM).
	Engine bool
	// UpdateFrom, if >= 0, starts at that version index and updates to
	// the measurement version before the run.
	UpdateFrom int
	// MeasureVersion is the version index measured.
	MeasureVersion int
}

// Fig5Result is one configuration's summary over runs.
type Fig5Result struct {
	Config     Fig5Config
	Throughput Summary // responses per wall second
	Latency    Summary // ms per request (mean within each run)

	// InsRate summarizes interpreted instructions per wall second over the
	// measurement windows — the steady-state dispatch speed under load.
	InsRate Summary
	// Stats is the VM counter delta over the last run's measurement window
	// (monotonic counters) plus end-of-run gauges (queue depths, live
	// threads). It makes the paper's "no steady-state work" claim auditable:
	// scheduler scans and wake checks should scale with slices, not with
	// history, and the thread/conn gauges should be flat.
	Stats vm.Stats
}

// Fig5Options sizes the experiment.
type Fig5Options struct {
	Runs     int           // paper: 21
	Duration time.Duration // measurement window per run (paper: 60 s)
	Heap     int

	// Recorder, when set, is attached to every measured VM — the flight
	// recorder then captures the DSU lifecycle of the updated configuration
	// (safe-point attempts, phase spans, transformer events) for the
	// -trace timeline export.
	Recorder *obs.Recorder
	// Metrics, when set, receives the DSU pause histograms (via the engine)
	// and a per-request latency histogram (MRequestLatency) from the
	// measurement loop.
	Metrics *obs.Registry
	// Gates, when set, is attached to every engine-bearing configuration
	// under the observe policy, so the measured update is judged.
	Gates *obs.GateEngine
	// Profiler, when set, samples interpreter frames at slice boundaries
	// on every measured VM (the -serve /profile and -trace counter lane).
	Profiler *obs.Profiler
}

// DefaultFig5Configs mirrors the paper's three rows, measured on the last
// webserver release that has a predecessor (5.1.6 updated from 5.1.5).
func DefaultFig5Configs(app *apps.App) []Fig5Config {
	measure := 6 // 5.1.6
	return []Fig5Config{
		{Label: "stock VM (no DSU engine)", Engine: false, UpdateFrom: -1, MeasureVersion: measure},
		{Label: "govolve (DSU engine idle)", Engine: true, UpdateFrom: -1, MeasureVersion: measure},
		{Label: "govolve, updated 5.1.5→5.1.6", Engine: true, UpdateFrom: measure - 1, MeasureVersion: measure},
	}
}

// RunFig5 measures all configurations.
func RunFig5(app *apps.App, configs []Fig5Config, opts Fig5Options, progress io.Writer) ([]Fig5Result, error) {
	if opts.Runs <= 0 {
		opts.Runs = 5
	}
	if opts.Duration <= 0 {
		opts.Duration = 300 * time.Millisecond
	}
	if opts.Heap <= 0 {
		opts.Heap = 1 << 20
	}
	var results []Fig5Result
	for _, cfg := range configs {
		var thr, lat, ins []float64
		var last vm.Stats
		for r := 0; r < opts.Runs; r++ {
			t, l, st, secs, err := runFig5Once(app, cfg, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: fig5 %q run %d: %w", cfg.Label, r, err)
			}
			thr = append(thr, t)
			lat = append(lat, l)
			ins = append(ins, float64(st.Instructions)/secs)
			last = st
			if progress != nil {
				fmt.Fprintf(progress, ".")
			}
		}
		if progress != nil {
			fmt.Fprintln(progress)
		}
		results = append(results, Fig5Result{
			Config:     cfg,
			Throughput: Summarize(thr),
			Latency:    Summarize(lat),
			InsRate:    Summarize(ins),
			Stats:      last,
		})
	}
	return results, nil
}

func runFig5Once(app *apps.App, cfg Fig5Config, opts Fig5Options) (throughput, latencyMs float64, stats vm.Stats, seconds float64, err error) {
	start := cfg.MeasureVersion
	if cfg.UpdateFrom >= 0 {
		start = cfg.UpdateFrom
	}
	s, err := apps.Launch(app, apps.LaunchOptions{Version: start, HeapWords: opts.Heap})
	if err != nil {
		return 0, 0, stats, 0, err
	}
	if opts.Recorder != nil || opts.Metrics != nil {
		s.VM.AttachObs(opts.Recorder, opts.Metrics)
	}
	if opts.Profiler != nil {
		s.VM.AttachProfiler(opts.Profiler)
	}
	if opts.Gates != nil && cfg.Engine {
		s.Engine.AttachGates(opts.Gates, core.GateObserve)
	}
	reqHist := opts.Metrics.Histogram(obs.MRequestLatency, obs.DurationBuckets())
	if !cfg.Engine {
		// Detach the engine: a stock VM has no update handler.
		s.VM.UpdateHandler = nil
	}
	if cfg.UpdateFrom >= 0 {
		res, err := s.ApplyNext(core.Options{MaxAttempts: 500}, true)
		if err != nil {
			return 0, 0, stats, 0, err
		}
		if res.Outcome != core.Applied {
			return 0, 0, stats, 0, fmt.Errorf("pre-measurement update: %v (%v)", res.Outcome, res.Err)
		}
	}
	if err := s.VerifyActive(); err != nil {
		return 0, 0, stats, 0, err
	}
	// Warmup lets the adaptive compiler reach steady state.
	for i := 0; i < 10; i++ {
		if _, err := s.DoBatch(); err != nil {
			return 0, 0, stats, 0, err
		}
	}

	requests := 0
	var latTotal time.Duration
	before := s.VM.Stats()
	t0 := time.Now()
	for time.Since(t0) < opts.Duration {
		w := app.Workloads[0]
		conn, err := s.VM.Net.Connect(w.Port)
		if err != nil {
			return 0, 0, stats, 0, err
		}
		for _, line := range w.Lines {
			q0 := time.Now()
			if err := s.VM.Net.ClientSend(conn, line); err != nil {
				break
			}
			ok := false
			for i := 0; i < 5000; i++ {
				s.VM.Step(2)
				if _, got := s.VM.Net.ClientRecv(conn); got {
					ok = true
					break
				}
				if s.VM.Net.ClientClosed(conn) {
					break
				}
			}
			if !ok {
				return 0, 0, stats, 0, fmt.Errorf("request %q timed out", line)
			}
			d := time.Since(q0)
			latTotal += d
			reqHist.Observe(d.Seconds())
			requests++
		}
		s.VM.Net.ClientClose(conn)
		s.VM.Step(5)
	}
	elapsed := time.Since(t0)
	if requests == 0 {
		return 0, 0, stats, 0, fmt.Errorf("no requests completed")
	}
	stats = s.VM.Stats().Delta(before)
	if opts.Metrics != nil {
		s.VM.PublishMetrics()
	}
	return float64(requests) / elapsed.Seconds(),
		Millis(latTotal) / float64(requests), stats, elapsed.Seconds(), nil
}

// PrintFig5 renders the three-row comparison plus the VM steady-state
// counter block for each configuration (deltas over the last measurement
// window). The counters back the paper's claim quantitatively: all three
// configurations should show the same instruction rate, scheduler scans
// proportional to slices, and flat thread/queue gauges.
func PrintFig5(w io.Writer, results []Fig5Result) {
	fmt.Fprintf(w, "Figure 5: steady-state webserver performance\n")
	fmt.Fprintf(w, "%-34s %22s %22s\n", "Configuration", "Throughput (req/s)", "Latency (ms/req)")
	for _, r := range results {
		fmt.Fprintf(w, "%-34s %10.0f (%0.0f–%0.0f) %12.4f (%0.4f–%0.4f)\n",
			r.Config.Label,
			r.Throughput.Median, r.Throughput.Q1, r.Throughput.Q3,
			r.Latency.Median, r.Latency.Q1, r.Latency.Q3)
	}
	fmt.Fprintf(w, "\nVM steady-state counters (per measurement window):\n")
	for _, r := range results {
		st := r.Stats
		fmt.Fprintf(w, "  %s\n", r.Config.Label)
		fmt.Fprintf(w, "    instructions/s %14.0f (median over runs; window delta %d)\n",
			r.InsRate.Median, st.Instructions)
		fmt.Fprintf(w, "    slices %-8d scans %-8d wake-checks %-8d (%.2f checks/scan)\n",
			st.Slices, st.SchedulerScans, st.WakeChecks,
			safeRatio(float64(st.WakeChecks), float64(st.SchedulerScans)))
		fmt.Fprintf(w, "    spawned %-6d reaped %-6d allocs obj %-8d arr %-8d gc %d\n",
			st.ThreadsSpawned, st.ThreadsReaped, st.AllocObjects, st.AllocArrays, st.GCCollections)
		fmt.Fprintf(w, "    gauges: runq %d blocked %d live %d table %d dead-errors %d\n",
			st.RunnableQueue, st.BlockedThreads, st.LiveThreads, st.TableThreads, st.DeadErrorCount)
	}
}

func safeRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
