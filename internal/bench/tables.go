package bench

import (
	"fmt"
	"io"

	"govolve/internal/apps"
	"govolve/internal/core"
	"govolve/internal/upt"
)

// Tables 2–4: per-release update summaries produced by the Update
// Preparation Tool over each application's version stream — the analog of
// the paper's "Summary of updates to Jetty / JavaEmailServer / CrossFTP".

// TableRow summarizes one release's diff.
type TableRow struct {
	Version      string
	ExpectAbort  bool
	ClassesAdded int
	ClassesDel   int
	ClassesChg   int // classes with any change (the paper's "# changed classes")
	MethodsAdded int
	MethodsDel   int
	MethodsBody  int // changed body only (the paper's x in x/y)
	MethodsSig   int // changed signature too (the paper's y)
	FieldsAdded  int
	FieldsDel    int
	FieldsChg    int
	Indirect     int // category-(2) methods (unchanged bytecode, stale code)
	BodyOnly     bool
}

// SummarizeApp runs UPT across the app's releases.
func SummarizeApp(app *apps.App) ([]TableRow, error) {
	var rows []TableRow
	for i := 0; i < app.UpdateCount(); i++ {
		spec, err := app.Spec(i)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowFromSpec(app.Versions[i+1], spec))
	}
	return rows, nil
}

func rowFromSpec(target apps.Version, spec *upt.Spec) TableRow {
	row := TableRow{
		Version:      target.Name,
		ExpectAbort:  target.ExpectAbort,
		ClassesAdded: len(spec.AddedClasses),
		ClassesDel:   len(spec.DeletedClasses),
		ClassesChg:   len(spec.Diffs),
		Indirect:     len(spec.IndirectMethods),
		BodyOnly:     target.BodyOnly,
	}
	for _, d := range spec.Diffs {
		row.MethodsAdded += len(d.MethodsAdded)
		row.MethodsDel += len(d.MethodsDeleted)
		row.MethodsBody += len(d.MethodsBodyChanged)
		row.MethodsSig += len(d.MethodsSigChanged)
		row.FieldsAdded += len(d.FieldsAdded)
		row.FieldsDel += len(d.FieldsDeleted)
		row.FieldsChg += len(d.FieldsChanged)
	}
	return row
}

// PrintTable renders one app's summary in the paper's column style (the
// "x/y" method notation means x body-only changes, y signature changes).
func PrintTable(w io.Writer, app *apps.App, rows []TableRow) {
	fmt.Fprintf(w, "Summary of updates to %s\n", app.Name)
	fmt.Fprintf(w, "%-9s %7s %7s %7s | %7s %7s %9s | %7s %7s %7s | %8s\n",
		"Ver.", "cls+", "cls-", "cls~", "mth+", "mth-", "mth~(x/y)", "fld+", "fld-", "fld~", "indirect")
	for _, r := range rows {
		name := r.Version
		if r.ExpectAbort {
			name += "*"
		}
		fmt.Fprintf(w, "%-9s %7d %7d %7d | %7d %7d %6d/%-2d | %7d %7d %7d | %8d\n",
			name, r.ClassesAdded, r.ClassesDel, r.ClassesChg,
			r.MethodsAdded, r.MethodsDel, r.MethodsBody, r.MethodsSig,
			r.FieldsAdded, r.FieldsDel, r.FieldsChg, r.Indirect)
	}
	fmt.Fprintln(w, "(* = update cannot be applied dynamically: a changed method never leaves the stack)")
	fmt.Fprintln(w)
}

// PrintMatrix renders the §4 update-applicability experiment.
func PrintMatrix(w io.Writer, entries []apps.MatrixEntry) {
	fmt.Fprintf(w, "%-12s %-9s %-9s %-8s %5s %4s %6s  %s\n",
		"App", "From", "To", "Outcome", "barr", "OSR", "pause", "Note")
	applied, aborted, bodyOnly := 0, 0, 0
	for _, e := range entries {
		fmt.Fprintf(w, "%-12s %-9s %-9s %-8s %5d %4d %5.1fms  %s\n",
			e.App, e.From, e.To, e.Outcome,
			e.Stats.BarriersInstalled, e.Stats.OSRFrames,
			Millis(e.Stats.PauseTotal), e.Note)
		switch e.Outcome {
		case core.Applied:
			applied++
		case core.Aborted:
			aborted++
		}
		if e.BodyOnly {
			bodyOnly++
		}
	}
	fmt.Fprintf(w, "\napplied %d of %d updates (%d aborted: changed methods always on stack)\n",
		applied, len(entries), aborted)
	fmt.Fprintf(w, "a method-body-only DSU system could support %d of %d\n", bodyOnly, len(entries))
}
