package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"govolve/internal/apps"
	"govolve/internal/core"
	"govolve/internal/obs"
)

// The obs experiment records the DSU pause decomposition through the
// observability plane itself: updates run with a metrics registry attached,
// the engine publishes its pause histograms (install/GC/transform/total plus
// the safe-point delay), and the report carries the medians and p99s read
// back out of those histograms. Two configurations, mirroring the repo's
// experiment naming:
//
//	E1  — the webserver updated 5.1.5→5.1.6 under synthetic load (the
//	      fig5 "updated" row), serial collector, FastDefaults. The full
//	      decomposition comes from the engine's own instrumentation.
//	E10 — the Table 1 microbenchmark update at increasing collection
//	      worker counts (the gcpause axis), pauses observed into the same
//	      histogram shapes.
//
// Interpretation caveat (inherited from the gcpause experiment): wall-clock
// benefit from workers > 1 requires hardware parallelism. On a 1-vCPU host
// (GOMAXPROCS=1) the workers are time-sliced and the parallel rows only
// measure coordination overhead; the JSON records gomaxprocs/cpus so the
// numbers are judged in context.

// ObsPauseOptions sizes the experiment.
type ObsPauseOptions struct {
	Runs         int   // updates sampled per configuration (default 5)
	MicroObjects int   // E10 heap population (default 30_000)
	MicroWorkers []int // E10 worker axis (default 1, 4)
	Heap         int   // E1 webserver heap words (default 1<<20)
}

// ObsHist is one histogram's report form: sample count plus the bucket-
// interpolated median and p99, in milliseconds.
type ObsHist struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

func obsHistMs(h *obs.Histogram) ObsHist {
	return ObsHist{
		Count: h.Count(),
		P50Ms: h.Quantile(0.5) * 1000,
		P99Ms: h.Quantile(0.99) * 1000,
	}
}

// ObsPauseRow is one configuration's pause decomposition, plus the gate
// judgment for the sampled updates and (E1 only) the profiler's view of
// where interpreter time went while the updates landed.
type ObsPauseRow struct {
	Config  string `json:"config"`
	Workers int    `json:"workers"`
	Updates int    `json:"updates"`

	InstallMs        *ObsHist `json:"install_ms,omitempty"`
	GCMs             ObsHist  `json:"gc_ms"`
	TransformMs      ObsHist  `json:"transform_ms"`
	TotalMs          ObsHist  `json:"total_ms"`
	SafePointDelayMs *ObsHist `json:"safe_point_delay_ms,omitempty"`

	// Verdict columns: every sampled update is judged against the default
	// gate specs under the observe policy.
	GatePass    int64  `json:"gate_pass"`
	GateFail    int64  `json:"gate_fail"`
	LastVerdict string `json:"last_verdict,omitempty"`

	// Profile columns (E1 only): version-attributed samples collected at
	// scheduler-slice boundaries while the updates applied, and the
	// heaviest folded stacks.
	ProfileSamples int64    `json:"profile_samples,omitempty"`
	ProfileTop     []string `json:"profile_top,omitempty"`
}

// ObsPauseReport is the BENCH_obs.json document.
type ObsPauseReport struct {
	Experiment string        `json:"experiment"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Note       string        `json:"note"`
	Rows       []ObsPauseRow `json:"rows"`
}

// RunObsPause measures both configurations.
func RunObsPause(opts ObsPauseOptions, progress io.Writer) (*ObsPauseReport, error) {
	if opts.Runs <= 0 {
		opts.Runs = 5
	}
	if opts.MicroObjects <= 0 {
		opts.MicroObjects = 30_000
	}
	if len(opts.MicroWorkers) == 0 {
		opts.MicroWorkers = []int{1, 4}
	}
	if opts.Heap <= 0 {
		opts.Heap = 1 << 20
	}
	rep := &ObsPauseReport{
		Experiment: "obs",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "p50/p99 are bucket-interpolated from fixed-bucket histograms " +
			"(obs.DurationBuckets), so they quantize to the bucket grid; " +
			"worker counts > 1 only help wall-clock with gomaxprocs > 1 — " +
			"on a 1-vCPU host the parallel rows measure coordination " +
			"overhead, which is the expected honest result there",
	}

	// --- E1: webserver update under load, engine-instrumented --------------
	e1, err := runObsE1(opts, progress)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, *e1)

	// --- E10: microbenchmark update across worker counts --------------------
	for _, w := range opts.MicroWorkers {
		row, err := runObsE10(opts, w, progress)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, *row)
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return rep, nil
}

func runObsE1(opts ObsPauseOptions, progress io.Writer) (*ObsPauseRow, error) {
	reg := obs.NewRegistry()
	ge := obs.NewGateEngine(nil, 0, reg)
	prof := obs.NewProfiler(0)
	app := apps.Webserver()
	applied := 0
	for r := 0; r < opts.Runs; r++ {
		s, err := apps.Launch(app, apps.LaunchOptions{Version: 5, HeapWords: opts.Heap})
		if err != nil {
			return nil, fmt.Errorf("bench: obs E1 run %d: %w", r, err)
		}
		s.VM.AttachObs(nil, reg)
		s.VM.AttachProfiler(prof)
		s.Engine.AttachGates(ge, core.GateObserve)
		// Warm the server so the update lands on a live, steady VM.
		for i := 0; i < 5; i++ {
			if _, err := s.DoBatch(); err != nil {
				return nil, fmt.Errorf("bench: obs E1 warmup: %w", err)
			}
		}
		res, err := s.ApplyNext(core.Options{MaxAttempts: 500, FastDefaults: true}, true)
		if err != nil {
			return nil, fmt.Errorf("bench: obs E1 update: %w", err)
		}
		if res.Outcome != core.Applied {
			return nil, fmt.Errorf("bench: obs E1 update %v: %v", res.Outcome, res.Err)
		}
		applied++
		if progress != nil {
			fmt.Fprintf(progress, ".")
		}
	}
	install := obsHistMs(reg.Histogram(obs.MPauseInstall, obs.DurationBuckets()))
	delay := obsHistMs(reg.Histogram(obs.MSafePointDelay, obs.DurationBuckets()))
	row := &ObsPauseRow{
		Config:           "E1 webserver 5.1.5→5.1.6 under load (serial, FastDefaults)",
		Workers:          1,
		Updates:          applied,
		InstallMs:        &install,
		GCMs:             obsHistMs(reg.Histogram(obs.MPauseGC, obs.DurationBuckets())),
		TransformMs:      obsHistMs(reg.Histogram(obs.MPauseTransform, obs.DurationBuckets())),
		TotalMs:          obsHistMs(reg.Histogram(obs.MPauseTotal, obs.DurationBuckets())),
		SafePointDelayMs: &delay,
		ProfileSamples:   prof.TotalSamples(),
	}
	row.GatePass, row.GateFail = ge.Counts()
	if v := ge.Last(); v != nil {
		row.LastVerdict = v.String()
	}
	for i, l := range prof.Folded() {
		if i == 3 {
			break
		}
		row.ProfileTop = append(row.ProfileTop, fmt.Sprintf("%s %d", l.Stack, l.Weight))
	}
	return row, nil
}

func runObsE10(opts ObsPauseOptions, workers int, progress io.Writer) (*ObsPauseRow, error) {
	reg := obs.NewRegistry()
	gcH := reg.Histogram(obs.MPauseGC, obs.DurationBuckets())
	trH := reg.Histogram(obs.MPauseTransform, obs.DurationBuckets())
	totH := reg.Histogram(obs.MPauseTotal, obs.DurationBuckets())
	row := &ObsPauseRow{
		Config:  fmt.Sprintf("E10 micro %d objects, 20%% updated, workers=%d", opts.MicroObjects, workers),
		Workers: workers,
		Updates: opts.Runs,
	}
	for r := 0; r < opts.Runs; r++ {
		// The registry rides into the micro VM, so the engine's own
		// instrumentation fills the pause histograms (same plane as E1)
		// and the gate engine judges every update.
		res, err := RunMicro(MicroConfig{
			Objects:      opts.MicroObjects,
			FracUpdated:  0.2,
			HeapLabel:    fmt.Sprintf("%d objects", opts.MicroObjects),
			FastDefaults: true,
			Workers:      workers,
			Metrics:      reg,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: obs E10 workers=%d: %w", workers, err)
		}
		if v := res.Verdict; v != nil {
			if v.Pass {
				row.GatePass++
			} else {
				row.GateFail++
			}
			row.LastVerdict = v.String()
		}
		if progress != nil {
			fmt.Fprintf(progress, ".")
		}
	}
	row.GCMs = obsHistMs(gcH)
	row.TransformMs = obsHistMs(trH)
	row.TotalMs = obsHistMs(totH)
	return row, nil
}

// WriteObsPauseJSON writes the report as indented JSON (BENCH_obs.json).
func WriteObsPauseJSON(path string, rep *ObsPauseReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintObsPause renders the report as text.
func PrintObsPause(w io.Writer, rep *ObsPauseReport) {
	fmt.Fprintf(w, "DSU pause decomposition via obs histograms (gomaxprocs=%d, cpus=%d)\n",
		rep.GOMAXPROCS, rep.NumCPU)
	fmt.Fprintf(w, "%-58s %8s %18s %18s %18s\n", "configuration", "updates",
		"GC p50/p99 (ms)", "transform (ms)", "total (ms)")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-58s %8d %8.2f/%8.2f %8.2f/%8.2f %8.2f/%8.2f\n",
			r.Config, r.Updates,
			r.GCMs.P50Ms, r.GCMs.P99Ms,
			r.TransformMs.P50Ms, r.TransformMs.P99Ms,
			r.TotalMs.P50Ms, r.TotalMs.P99Ms)
		if r.InstallMs != nil && r.SafePointDelayMs != nil {
			fmt.Fprintf(w, "%-58s %8s install p50/p99 %.2f/%.2f ms, safe-point delay p50/p99 %.2f/%.2f ms\n",
				"", "", r.InstallMs.P50Ms, r.InstallMs.P99Ms,
				r.SafePointDelayMs.P50Ms, r.SafePointDelayMs.P99Ms)
		}
		fmt.Fprintf(w, "%-58s %8s gates %d pass / %d fail", "", "", r.GatePass, r.GateFail)
		if r.LastVerdict != "" {
			fmt.Fprintf(w, "; last %s", r.LastVerdict)
		}
		fmt.Fprintln(w)
		if r.ProfileSamples > 0 {
			fmt.Fprintf(w, "%-58s %8s profile: %d samples", "", "", r.ProfileSamples)
			for _, top := range r.ProfileTop {
				fmt.Fprintf(w, "\n%-58s %8s   %s", "", "", top)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "note: %s\n", rep.Note)
}
