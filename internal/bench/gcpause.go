package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
)

// The gcpause experiment measures the stop-the-world DSU window as a
// function of collection workers: for each heap size it runs the Table 1
// microbenchmark update under the serial collector and under the parallel
// copy/scan collector at increasing worker counts, and reports the GC-phase
// pause plus the speedup relative to the serial baseline. The per-worker
// copied-word split and steal counts are recorded so load imbalance is
// visible, not just the aggregate.
//
// Interpretation caveat: wall-clock speedup requires hardware parallelism.
// On a single-CPU host (GOMAXPROCS=1) the Go scheduler time-slices the
// workers, so the parallel collector pays its coordination overhead without
// any win — speedups near or below 1.0 are the *expected* honest result
// there. The emitted JSON records gomaxprocs/cpus so the numbers can be
// judged in context.

// GCPauseSweep configures the experiment grid.
type GCPauseSweep struct {
	// Sizes is the object-count axis (heap is sized 5× live, as in
	// RunMicro). Zero means DefaultGCPauseSizes.
	Sizes []int
	// FracUpdated is the fraction of updated-class instances (default 0.2).
	FracUpdated float64
	// WorkerCounts is the worker axis; 1 is the serial baseline and must
	// come first for the speedup column (default 1,2,4,8).
	WorkerCounts []int
	// Runs per cell; the median is reported (default 3).
	Runs int
	// FastDefaults enables the native bulk transformer path (and, with
	// workers>1, its parallel fan-out), so the transform column scales too.
	FastDefaults bool
}

// DefaultGCPauseSizes returns the object-count axis. The larger size puts
// the live set past 1M heap words (each object is 8 words plus its array
// slot), the regime the paper's Table 1 covers.
func DefaultGCPauseSizes() []int { return []int{30_000, 120_000} }

// GCPauseRow is one measured cell.
type GCPauseRow struct {
	Objects     int     `json:"objects"`
	HeapWords   int     `json:"heap_words"`
	FracUpdated float64 `json:"frac_updated"`
	Workers     int     `json:"workers"`

	GCMillis        Summary `json:"gc_ms"`
	TransformMillis Summary `json:"transform_ms"`
	TotalMillis     Summary `json:"total_ms"`

	// SpeedupGC is serial median GC pause / this row's median GC pause
	// (1.0 for the serial row itself).
	SpeedupGC float64 `json:"speedup_gc"`

	PairsLogged int   `json:"pairs_logged"`
	Steals      int64 `json:"steals"`
	WorkerWords []int `json:"worker_words,omitempty"`
}

// GCPauseReport is the BENCH_gc.json document.
type GCPauseReport struct {
	Experiment string       `json:"experiment"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Note       string       `json:"note"`
	Rows       []GCPauseRow `json:"rows"`
}

// RunGCPause measures the grid. Worker count 1 rows are the serial
// baseline for their size; speedups are computed against them.
func RunGCPause(sw GCPauseSweep, progress io.Writer) (*GCPauseReport, error) {
	if len(sw.Sizes) == 0 {
		sw.Sizes = DefaultGCPauseSizes()
	}
	if sw.FracUpdated == 0 {
		sw.FracUpdated = 0.2
	}
	if len(sw.WorkerCounts) == 0 {
		sw.WorkerCounts = []int{1, 2, 4, 8}
	}
	if sw.Runs <= 0 {
		sw.Runs = 3
	}
	rep := &GCPauseReport{
		Experiment: "gcpause",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "speedup_gc is serial-median / row-median for the same size; " +
			"wall-clock speedup > 1 requires gomaxprocs > 1 (single-CPU hosts " +
			"time-slice the workers and only measure coordination overhead)",
	}
	for _, objects := range sw.Sizes {
		serialMedian := 0.0
		for _, workers := range sw.WorkerCounts {
			var gcs, trs, tots []float64
			var last *MicroResult
			for r := 0; r < sw.Runs; r++ {
				res, err := RunMicro(MicroConfig{
					Objects:      objects,
					FracUpdated:  sw.FracUpdated,
					HeapLabel:    fmt.Sprintf("%d objects", objects),
					FastDefaults: sw.FastDefaults,
					Workers:      workers,
				})
				if err != nil {
					return nil, fmt.Errorf("bench: gcpause objects=%d workers=%d: %w", objects, workers, err)
				}
				gcs = append(gcs, Millis(res.GC))
				trs = append(trs, Millis(res.Transform))
				tots = append(tots, Millis(res.Total))
				last = res
			}
			row := GCPauseRow{
				Objects:         objects,
				HeapWords:       5 * (objects*8 + objects + 2*2 + 64),
				FracUpdated:     sw.FracUpdated,
				Workers:         workers,
				GCMillis:        Summarize(gcs),
				TransformMillis: Summarize(trs),
				TotalMillis:     Summarize(tots),
				PairsLogged:     last.PairsLogged,
				Steals:          last.GCSteals,
				WorkerWords:     last.GCWorkerWords,
			}
			if workers <= 1 {
				serialMedian = row.GCMillis.Median
			}
			if serialMedian > 0 && row.GCMillis.Median > 0 {
				row.SpeedupGC = serialMedian / row.GCMillis.Median
			}
			rep.Rows = append(rep.Rows, row)
			if progress != nil {
				fmt.Fprintf(progress, ".")
			}
		}
		if progress != nil {
			fmt.Fprintln(progress)
		}
	}
	return rep, nil
}

// WriteGCPauseJSON writes the report as indented JSON (BENCH_gc.json).
func WriteGCPauseJSON(path string, rep *GCPauseReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintGCPause renders the grid as text.
func PrintGCPause(w io.Writer, rep *GCPauseReport) {
	fmt.Fprintf(w, "GC-phase pause vs collection workers (gomaxprocs=%d, cpus=%d)\n",
		rep.GOMAXPROCS, rep.NumCPU)
	fmt.Fprintf(w, "%10s %9s %8s %10s %14s %12s %9s %7s\n",
		"objects", "heapwords", "workers", "GC (ms)", "transform (ms)", "total (ms)", "speedup", "steals")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%10d %9d %8d %10.2f %14.2f %12.2f %8.2fx %7d\n",
			r.Objects, r.HeapWords, r.Workers,
			r.GCMillis.Median, r.TransformMillis.Median, r.TotalMillis.Median,
			r.SpeedupGC, r.Steals)
		if len(r.WorkerWords) > 1 {
			fmt.Fprintf(w, "%29s per-worker words copied: %v\n", "", r.WorkerWords)
		}
	}
	fmt.Fprintf(w, "note: %s\n", rep.Note)
}
