package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"govolve/internal/asm"
	"govolve/internal/vm"
)

// The dispatch experiment measures raw interpreter throughput across the
// tier ladder: the base threaded interpreter, the fused superinstruction
// tier with inline caches disabled, and the full fused+IC configuration.
// Two opcode mixes pin down where each mechanism pays: a pure arithmetic
// loop (fusion dominates; ICs are irrelevant) and a virtual-call loop
// (fusion collapses the load+invoke pair and the monomorphic IC bypasses
// the TIB walk). This is the evidence behind the PR's >=2x fused-dispatch
// claim and the IC hit-rate numbers in EXPERIMENTS.md E17.

// dispatchArithSrc is the arithmetic mix: the same loop the
// BenchmarkInterpDispatch family in internal/vm measures — no calls, no
// allocation, one taken backedge per iteration.
const dispatchArithSrc = `
class Hot {
  static method main()V {
    const 0
    store 0
    const 1
    store 1
  loop:
    load 0
    load 1
    add
    const 3
    mul
    const 7
    rem
    store 0
    load 1
    const 1
    add
    const 1048575
    and
    store 1
    goto loop
  }
}
`

// dispatchVirtualSrc is the virtual-call mix: a monomorphic invokevirtual
// in the hot loop, so the load+invoke pair fuses to FLOADINVOKE and the
// call site's inline cache stays monomorphic — the best case ICs exist for.
const dispatchVirtualSrc = `
class Hot {
  field v I

  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }

  method step(I)I {
    load 0
    getfield Hot.v I
    load 1
    add
    return
  }

  static method main()V {
    new Hot
    dup
    invokespecial Hot.<init>()V
    store 0
    const 1
    store 1
  loop:
    load 0
    load 1
    invokevirtual Hot.step(I)I
    const 1048575
    and
    store 1
    goto loop
  }
}
`

// DispatchSweep configures the mix x tier grid.
type DispatchSweep struct {
	// Rounds is the best-of count per cell (default 3). Each round pumps
	// the VM for at least MinRoundMillis of wall time.
	Rounds int
	// MinRoundMillis is the minimum timed window per round (default 50).
	MinRoundMillis int
}

// DispatchRow is one measured (mix, tier) cell.
type DispatchRow struct {
	Mix  string `json:"mix"`
	Tier string `json:"tier"`

	// InsPerSec is the best-of-Rounds steady-state throughput.
	InsPerSec float64 `json:"ins_per_sec"`
	// SpeedupVsBase is InsPerSec over the same mix's base-tier row.
	SpeedupVsBase float64 `json:"speedup_vs_base"`

	// AllocsPerSlice is heap allocations per scheduling slice at steady
	// state (mallocs delta over 200 slices). The dispatch fast-path
	// contract is 0 for the arith mix on every tier; the virtual mix pays
	// per-call frame allocation, which dispatch tiers don't touch.
	AllocsPerSlice float64 `json:"allocs_per_slice"`

	// TracePromotions confirms (or, for the base tier, denies) that the
	// hot loop actually ran on the fused tier during measurement.
	TracePromotions int64 `json:"trace_promotions"`
	ICHits          int64 `json:"ic_hits"`
	ICMisses        int64 `json:"ic_misses"`
	// ICHitRate is hits/(hits+misses), 0 when the mix has no cached sites.
	ICHitRate float64 `json:"ic_hit_rate"`
}

// DispatchReport is the BENCH_dispatch.json document.
type DispatchReport struct {
	Experiment string        `json:"experiment"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Note       string        `json:"note"`
	Rows       []DispatchRow `json:"rows"`
}

// dispatchTiers is the tier axis. Base pins the pre-fusion interpreter
// (trace promotion off, opt recompilation out of reach); fused runs
// superinstructions with inline caches disabled; fused+ic is the default
// production configuration.
var dispatchTiers = []struct {
	Name string
	Opts vm.Options
}{
	{"base", vm.Options{TraceThreshold: -1, OptThreshold: 1 << 30}},
	{"fused", vm.Options{NoInlineCache: true}},
	{"fused+ic", vm.Options{}},
}

var dispatchMixes = []struct {
	Name string
	Src  string
}{
	{"arith", dispatchArithSrc},
	{"virtual", dispatchVirtualSrc},
}

// runDispatchCell builds, warms, and measures one VM configuration.
func runDispatchCell(src string, opts vm.Options, rounds, minRoundMs int) (DispatchRow, error) {
	var out bytes.Buffer
	opts.HeapWords = 1 << 14
	opts.Out = &out
	v, err := vm.New(opts)
	if err != nil {
		return DispatchRow{}, err
	}
	prog, err := asm.AssembleProgram("dispatch.jva", src)
	if err != nil {
		return DispatchRow{}, err
	}
	if err := v.LoadProgram(prog); err != nil {
		return DispatchRow{}, err
	}
	if _, err := v.SpawnMain("Hot"); err != nil {
		return DispatchRow{}, err
	}
	// Warmup: past adaptive recompilation, trace promotion, and capacity
	// growth in the frame and scheduler structures.
	v.Step(500)

	best := 0.0
	for r := 0; r < rounds; r++ {
		start := v.TotalSteps
		t0 := time.Now()
		deadline := t0.Add(time.Duration(minRoundMs) * time.Millisecond)
		for time.Now().Before(deadline) {
			v.Step(2000)
		}
		el := time.Since(t0)
		if el <= 0 {
			continue
		}
		if rate := float64(v.TotalSteps-start) / el.Seconds(); rate > best {
			best = rate
		}
	}
	if best == 0 {
		return DispatchRow{}, fmt.Errorf("bench: dispatch cell measured zero throughput")
	}
	// Steady-state allocation check: mallocs delta over 200 slices,
	// recorded in the JSON alongside the throughput number (0 for the
	// arith mix on every tier — the zero-alloc fast-path evidence).
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < 200; i++ {
		v.Step(1)
	}
	runtime.ReadMemStats(&after)

	st := v.Stats()
	row := DispatchRow{
		InsPerSec:       best,
		AllocsPerSlice:  float64(after.Mallocs-before.Mallocs) / 200,
		TracePromotions: st.TracePromotions,
		ICHits:          st.ICHits,
		ICMisses:        st.ICMisses,
	}
	if total := st.ICHits + st.ICMisses; total > 0 {
		row.ICHitRate = float64(st.ICHits) / float64(total)
	}
	return row, nil
}

// RunDispatch measures the full grid. A cell that fails to build or runs
// zero instructions is a bench failure, not a data point. The base tier is
// additionally required to have stayed off the fused tier and the other
// tiers to have trace-promoted, so a row can't silently measure the wrong
// interpreter.
func RunDispatch(sw DispatchSweep, progress io.Writer) (*DispatchReport, error) {
	if sw.Rounds <= 0 {
		sw.Rounds = 3
	}
	if sw.MinRoundMillis <= 0 {
		sw.MinRoundMillis = 50
	}
	rep := &DispatchReport{
		Experiment: "dispatch",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "ins_per_sec is best-of-" + fmt.Sprint(sw.Rounds) + " steady-state " +
			"interpreter throughput after warmup; speedup_vs_base divides by the " +
			"same mix's base-tier row. The arith mix isolates superinstruction " +
			"fusion; the virtual mix adds a monomorphic call so inline caches " +
			"matter. trace_promotions proves which tier actually executed.",
	}
	for _, mix := range dispatchMixes {
		var baseRate float64
		for _, tier := range dispatchTiers {
			row, err := runDispatchCell(mix.Src, tier.Opts, sw.Rounds, sw.MinRoundMillis)
			if err != nil {
				return nil, fmt.Errorf("bench: dispatch mix=%s tier=%s: %w", mix.Name, tier.Name, err)
			}
			row.Mix, row.Tier = mix.Name, tier.Name
			if tier.Name == "base" {
				if row.TracePromotions != 0 {
					return nil, fmt.Errorf("bench: dispatch mix=%s: base tier trace-promoted", mix.Name)
				}
				baseRate = row.InsPerSec
			} else if row.TracePromotions == 0 {
				return nil, fmt.Errorf("bench: dispatch mix=%s tier=%s: hot loop never trace-promoted", mix.Name, tier.Name)
			}
			if baseRate > 0 {
				row.SpeedupVsBase = row.InsPerSec / baseRate
			}
			rep.Rows = append(rep.Rows, row)
			if progress != nil {
				fmt.Fprintf(progress, ".")
			}
		}
		if progress != nil {
			fmt.Fprintln(progress)
		}
	}
	return rep, nil
}

// WriteDispatchJSON writes the report as indented JSON (BENCH_dispatch.json).
func WriteDispatchJSON(path string, rep *DispatchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintDispatch renders the grid as text.
func PrintDispatch(w io.Writer, rep *DispatchReport) {
	fmt.Fprintf(w, "Interpreter dispatch tiers (gomaxprocs=%d, cpus=%d)\n",
		rep.GOMAXPROCS, rep.NumCPU)
	fmt.Fprintf(w, "%8s %9s %14s %9s %12s %12s %10s %10s %9s\n",
		"mix", "tier", "ins/s", "speedup", "allocs/slice", "promotions", "ic-hits", "ic-misses", "hit-rate")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%8s %9s %14.0f %8.2fx %12.2f %12d %10d %10d %9.3f\n",
			r.Mix, r.Tier, r.InsPerSec, r.SpeedupVsBase, r.AllocsPerSlice,
			r.TracePromotions, r.ICHits, r.ICMisses, r.ICHitRate)
	}
	fmt.Fprintf(w, "note: %s\n", rep.Note)
}
