package core_test

import (
	"bytes"
	"strings"
	"testing"

	"govolve/internal/asm"
	"govolve/internal/classfile"
	"govolve/internal/core"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

type fixture struct {
	t      *testing.T
	vm     *vm.VM
	out    *bytes.Buffer
	engine *core.Engine
}

func newFixture(t *testing.T, heapWords int) *fixture {
	t.Helper()
	var out bytes.Buffer
	v, err := vm.New(vm.Options{HeapWords: heapWords, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, vm: v, out: &out, engine: core.NewEngine(v)}
}

func (f *fixture) prog(src string) *classfile.Program {
	f.t.Helper()
	p, err := asm.AssembleProgram("t.jva", src)
	if err != nil {
		f.t.Fatal(err)
	}
	return p
}

func (f *fixture) load(src string) *classfile.Program {
	f.t.Helper()
	p := f.prog(src)
	if err := f.vm.LoadProgram(p); err != nil {
		f.t.Fatal(err)
	}
	return p
}

func (f *fixture) spawn(class string) {
	f.t.Helper()
	if _, err := f.vm.SpawnMain(class); err != nil {
		f.t.Fatal(err)
	}
}

// update prepares and applies old→new, with optional custom transformer
// source (a JvolveTransformers class) and blacklist.
func (f *fixture) update(tag string, old, new_ *classfile.Program, custom string, opts core.Options, blacklist ...upt.MethodRef) (*core.Result, error) {
	f.t.Helper()
	spec, err := upt.Prepare(tag, old, new_)
	if err != nil {
		return nil, err
	}
	spec.AddBlacklist(blacklist...)
	if custom != "" {
		classes, err := asm.Assemble("custom.jva", custom)
		if err != nil {
			f.t.Fatal(err)
		}
		for _, m := range classes[0].Methods {
			spec.OverrideTransformer(m)
		}
	}
	return f.engine.ApplyNow(spec, opts)
}

func (f *fixture) mustApply(tag string, old, new_ *classfile.Program, custom string) *core.Result {
	f.t.Helper()
	res, err := f.update(tag, old, new_, custom, core.Options{})
	if err != nil {
		f.t.Fatal(err)
	}
	if res.Outcome != core.Applied {
		f.t.Fatalf("outcome = %v, err = %v", res.Outcome, res.Err)
	}
	return res
}

func (f *fixture) finish() string {
	f.t.Helper()
	if err := f.vm.Run(); err != nil {
		f.t.Fatal(err)
	}
	for _, th := range f.vm.Threads {
		if th.Err != nil {
			f.t.Fatalf("thread %s: %v\n%s", th.Name, th.Err, th.Backtrace())
		}
	}
	return f.out.String()
}

// --- 1. method body update ------------------------------------------------

const bodyV1 = `
class Worker {
  static method answer()I {
    const 1
    return
  }
}
class App {
  static method main()V {
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    invokestatic Worker.answer()I
    invokestatic System.printInt(I)V
    return
  }
}
`

func TestMethodBodyUpdate(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(bodyV1)
	v2 := f.prog(strings.Replace(bodyV1, "const 1\n    return", "const 2\n    return", 1))
	f.spawn("App")
	f.vm.Step(1)
	res := f.mustApply("1", v1, v2, "")
	if res.Stats.TransformedObjects != 0 {
		t.Fatalf("body-only update transformed %d objects", res.Stats.TransformedObjects)
	}
	if got := strings.TrimSpace(f.finish()); got != "2" {
		t.Fatalf("answer = %q, want 2 (new body)", got)
	}
}

// --- 2. field delete + type change ------------------------------------------

const shapeV1 = `
class Box {
  field w I
  field h I
  field label LString;
  field junk I
  method <init>(II)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Box.w I
    load 0
    load 2
    putfield Box.h I
    load 0
    ldc "box"
    putfield Box.label LString;
    load 0
    const 99
    putfield Box.junk I
    return
  }
  method area()I {
    load 0
    getfield Box.w I
    load 0
    getfield Box.h I
    mul
    return
  }
}
class App {
  static field b LBox;
  static method main()V {
    new Box
    dup
    const 6
    const 7
    invokespecial Box.<init>(II)V
    putstatic App.b LBox;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.b LBox;
    invokevirtual Box.area()I
    invokestatic System.printInt(I)V
    return
  }
}
`

// v2 deletes junk, changes label's type to an array, keeps w/h.
const shapeV2 = `
class Box {
  field w I
  field h I
  field label [C
  method <init>(II)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Box.w I
    load 0
    load 2
    putfield Box.h I
    return
  }
  method area()I {
    load 0
    getfield Box.w I
    load 0
    getfield Box.h I
    mul
    return
  }
}
class App {
  static field b LBox;
  static method main()V {
    new Box
    dup
    const 6
    const 7
    invokespecial Box.<init>(II)V
    putstatic App.b LBox;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.b LBox;
    invokevirtual Box.area()I
    invokestatic System.printInt(I)V
    return
  }
}
`

func TestFieldDeleteAndTypeChange(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(shapeV1)
	v2 := f.prog(shapeV2)
	f.spawn("App")
	f.vm.Step(2)
	res := f.mustApply("1", v1, v2, "")
	if res.Stats.TransformedObjects == 0 {
		t.Fatal("no objects transformed")
	}
	if got := strings.TrimSpace(f.finish()); got != "42" {
		t.Fatalf("area = %q, want 42 (w,h preserved through delete/retype)", got)
	}
}

// --- 3. statics via class transformer ----------------------------------------

// App.main is version-invariant (a method whose bytecode changes and never
// leaves the stack would rightly block the update — see the abort test);
// the version-varying code lives in report().
const staticsShell = `
class App {
  static method main()V {
    const 0
    store 0
  loop:
    load 0
    const 9000
    if_icmpge done
    invokestatic Config.bump()V
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    invokestatic App.report()V
    return
  }
  static method report()V {
%REPORT%
    return
  }
}
`

const staticsV1 = `
class Config {
  static field hits I
  static field banner LString;
  static method bump()V {
    getstatic Config.hits I
    const 1
    add
    putstatic Config.hits I
    return
  }
}
`

const staticsV2 = `
class Config {
  static field hits I
  static field banner LString;
  static field retries I
  static method bump()V {
    getstatic Config.hits I
    const 1
    add
    putstatic Config.hits I
    return
  }
}
`

func TestStaticsCarriedByClassTransformer(t *testing.T) {
	f := newFixture(t, 1<<16)
	report1 := "    getstatic Config.hits I\n    invokestatic System.printInt(I)V"
	report2 := "    getstatic Config.hits I\n    invokestatic System.printInt(I)V\n    getstatic Config.retries I\n    invokestatic System.printInt(I)V"
	v1 := f.load(staticsV1 + strings.Replace(staticsShell, "%REPORT%", report1, 1))
	v2 := f.prog(staticsV2 + strings.Replace(staticsShell, "%REPORT%", report2, 1))
	f.spawn("App")
	f.vm.Step(2)
	custom := `
class JvolveTransformers {
  static method jvolveClass(LConfig;)V {
    getstatic v1_Config.hits I
    putstatic Config.hits I
    const 3
    putstatic Config.retries I
    return
  }
}
`
	f.mustApply("1", v1, v2, custom)
	out := strings.Split(strings.TrimSpace(f.finish()), "\n")
	if out[0] != "9000" {
		t.Fatalf("hits = %q, want 9000 (carried across update)", out[0])
	}
	if out[len(out)-1] != "3" {
		t.Fatalf("retries = %q, want 3 (custom class transformer)", out[len(out)-1])
	}
}

// --- 4. OSR of on-stack indirect method -------------------------------------

const osrV1 = `
class Cell {
  field x I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Cell.x I
    return
  }
}
class App {
  static field c LCell;
  static method main()V {
    new Cell
    dup
    const 5
    invokespecial Cell.<init>(I)V
    putstatic App.c LCell;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.c LCell;
    getfield Cell.x I
    invokestatic System.printInt(I)V
    return
  }
}
`

// v2 prepends a new field before x, shifting x's offset — stale compiled
// code in App.main would read the wrong slot without OSR.
const osrV2 = `
class Cell {
  field pad LString;
  field x I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Cell.x I
    return
  }
}
class App {
  static field c LCell;
  static method main()V {
    new Cell
    dup
    const 5
    invokespecial Cell.<init>(I)V
    putstatic App.c LCell;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.c LCell;
    getfield Cell.x I
    invokestatic System.printInt(I)V
    return
  }
}
`

func TestOSRRewritesStaleOnStackFrame(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(osrV1)
	v2 := f.prog(osrV2)
	f.spawn("App")
	f.vm.Step(2) // main is mid-loop with Cell offsets baked in
	res := f.mustApply("1", v1, v2, "")
	if res.Stats.OSRFrames == 0 {
		t.Fatal("expected OSR of App.main (bytecode unchanged, offsets stale)")
	}
	if got := strings.TrimSpace(f.finish()); got != "5" {
		t.Fatalf("x = %q, want 5 — stale offset read after field insertion", got)
	}
}

// --- 5. return barrier ---------------------------------------------------------

const barrierV1 = `
class Job {
  static method work(I)I {
    const 0
    store 1
  loop:
    load 1
    load 0
    if_icmpge done
    load 1
    const 1
    add
    store 1
    goto loop
  done:
    const 10
    return
  }
}
class App {
  static method main()V {
    const 0
    store 0
  outer:
    load 0
    const 40
    if_icmpge done
    const 9000
    invokestatic Job.work(I)I
    pop
    load 0
    const 1
    add
    store 0
    goto outer
  done:
    const 9000
    invokestatic Job.work(I)I
    invokestatic System.printInt(I)V
    return
  }
}
`

func TestReturnBarrierDefersUpdate(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(barrierV1)
	v2 := f.prog(strings.Replace(barrierV1, "const 10\n    return", "const 20\n    return", 1))
	f.spawn("App")
	// Step into the middle of a work() call so the changed method is on
	// stack at the first attempt.
	f.vm.Step(2)
	onStack := false
	for _, fr := range f.vm.Threads[0].Frames {
		if strings.Contains(fr.Method().FullName(), "work") {
			onStack = true
		}
	}
	if !onStack {
		t.Skip("scheduling did not land inside work(); quantum changed?")
	}
	res := f.mustApply("1", v1, v2, "")
	if res.Stats.BarriersInstalled == 0 {
		t.Fatalf("expected a return barrier; stats %+v", res.Stats)
	}
	if res.Stats.Immediate {
		t.Fatal("update claims immediate safe point with work() on stack")
	}
	if got := strings.TrimSpace(f.finish()); got != "20" {
		t.Fatalf("work = %q, want 20", got)
	}
}

// --- 6. abort on method that never leaves the stack ---------------------------

const foreverV1 = `
class Loop {
  static method spin()V {
  top:
    const 1
    ifne top
    return
  }
}
class App {
  static method main()V {
    invokestatic Loop.spin()V
    return
  }
}
`

func TestAbortWhenChangedMethodAlwaysOnStack(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(foreverV1)
	v2 := f.prog(strings.Replace(foreverV1, "const 1\n    ifne top", "const 2\n    ifne top", 1))
	f.spawn("App")
	f.vm.Step(2)
	res, err := f.update("1", v1, v2, "", core.Options{MaxAttempts: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Aborted {
		t.Fatalf("outcome = %v, want Aborted (spin never returns)", res.Outcome)
	}
	// The program is unharmed and still running version 1.
	if f.vm.Threads[0].State == vm.Dead {
		t.Fatal("application thread died during aborted update")
	}
	if f.vm.Reg.LookupClass("v1_Loop") != nil {
		t.Fatal("abort left renamed classes behind")
	}
	f.vm.Step(5)
	if f.vm.Threads[0].Err != nil {
		t.Fatalf("thread error after abort: %v", f.vm.Threads[0].Err)
	}
}

// --- 7. added + deleted classes ----------------------------------------------

const addDelV1 = `
class Legacy {
  static method old()I {
    const 1
    return
  }
}
class App {
  static method main()V {
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    invokestatic App.report()V
    return
  }
  static method report()V {
    invokestatic Legacy.old()I
    invokestatic System.printInt(I)V
    return
  }
}
`

const addDelV2 = `
class Fresh {
  static field seed I
  static method <clinit>()V {
    const 77
    putstatic Fresh.seed I
    return
  }
  static method neo()I {
    getstatic Fresh.seed I
    return
  }
}
class App {
  static method main()V {
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    invokestatic App.report()V
    return
  }
  static method report()V {
    invokestatic Fresh.neo()I
    invokestatic System.printInt(I)V
    return
  }
}
`

func TestAddAndDeleteClasses(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(addDelV1)
	v2 := f.prog(addDelV2)
	f.spawn("App")
	f.vm.Step(1)
	f.mustApply("1", v1, v2, "")
	if f.vm.Reg.LookupClass("Legacy") != nil {
		t.Fatal("deleted class still registered")
	}
	if f.vm.Reg.LookupClass("Fresh") == nil {
		t.Fatal("added class missing")
	}
	if got := strings.TrimSpace(f.finish()); got != "77" {
		t.Fatalf("report = %q, want 77 (added class with <clinit>)", got)
	}
}

// --- 8. verification gate -------------------------------------------------------

func TestUpdateRejectedByVerifier(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(bodyV1)
	// New version deletes Worker.answer but App still calls it.
	bad := f.prog(`
class Worker {
  static method other()I {
    const 3
    return
  }
}
class App {
  static method main()V {
    invokestatic Worker.answer()I
    invokestatic System.printInt(I)V
    return
  }
}
`)
	f.spawn("App")
	f.vm.Step(1)
	_, err := f.update("1", v1, bad, "", core.Options{})
	if err == nil || !strings.Contains(err.Error(), "update rejected") {
		t.Fatalf("err = %v, want verification rejection", err)
	}
	// The running program is untouched.
	if got := strings.TrimSpace(f.finish()); got != "1" {
		t.Fatalf("output = %q, want 1 (still v1)", got)
	}
}

// --- 9. blacklist (category 3) ---------------------------------------------------

func TestBlacklistRestrictsUnchangedMethod(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(foreverV1)
	// Change nothing structurally except an unrelated new class; blacklist
	// the spinning method: no safe point can be reached.
	v2 := f.prog(foreverV1 + `
class Extra {
  static method e()I {
    const 0
    return
  }
}
`)
	f.spawn("App")
	f.vm.Step(2)
	res, err := f.update("1", v1, v2, "", core.Options{MaxAttempts: 10},
		upt.MethodRef{Class: "Loop", Name: "spin", Sig: "()V"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Aborted {
		t.Fatalf("outcome = %v, want Aborted via blacklist", res.Outcome)
	}
}

// --- 10. transformer cycle detection ---------------------------------------------

const cycleV1 = `
class Link {
  field peer LLink;
  field v I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class App {
  static field a LLink;
  static method main()V {
    new Link
    dup
    invokespecial Link.<init>()V
    putstatic App.a LLink;
    new Link
    dup
    invokespecial Link.<init>()V
    getstatic App.a LLink;
    swap
    putfield Link.peer LLink;
    getstatic App.a LLink;
    getfield Link.peer LLink;
    getstatic App.a LLink;
    putfield Link.peer LLink;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    return
  }
}
`

func TestTransformerCycleAbortsUpdate(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(cycleV1)
	v2 := f.prog(strings.Replace(cycleV1, "field v I", "field v I\n  field extra I", 1))
	f.spawn("App")
	f.vm.Step(2)
	// A pathological transformer that force-transforms its peer before
	// copying: with the two Links pointing at each other, forcing the
	// peer recurses back and must be detected as a cycle.
	custom := `
class JvolveTransformers {
  static method jvolveObject(LLink;Lv1_Link;)V {
    load 1
    getfield v1_Link.peer LLink;
    ifnull nopeer
    load 1
    getfield v1_Link.peer LLink;
    invokestatic Jvolve.forceTransform(LObject;)V
  nopeer:
    load 0
    load 1
    getfield v1_Link.v I
    putfield Link.v I
    return
  }
}
`
	res, err := f.update("1", v1, v2, custom, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Failed || res.Err == nil ||
		!strings.Contains(res.Err.Error(), "cycle") {
		t.Fatalf("outcome = %v err = %v, want cycle failure", res.Outcome, res.Err)
	}
}

// --- 11. forceTransform happy path ------------------------------------------------

func TestForceTransformOrdersDependentObjects(t *testing.T) {
	f := newFixture(t, 1<<16)
	shell := `
class App {
  static field h LHolder;
  static method main()V {
    new Item
    dup
    const 21
    invokespecial Item.<init>(I)V
    store 0
    new Holder
    dup
    load 0
    invokespecial Holder.<init>(LItem;)V
    putstatic App.h LHolder;
    const 0
    store 1
  loop:
    load 1
    const 60000
    if_icmpge done
    load 1
    const 1
    add
    store 1
    goto loop
  done:
    invokestatic App.report()V
    return
  }
  static method report()V {
%REPORT%
    return
  }
}
`
	v1 := f.load(`
class Item {
  field n I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Item.n I
    return
  }
}
class Holder {
  field item LItem;
  method <init>(LItem;)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Holder.item LItem;
    return
  }
}
` + strings.Replace(shell, "%REPORT%",
		"    getstatic App.h LHolder;\n    getfield Holder.item LItem;\n    getfield Item.n I\n    invokestatic System.printInt(I)V", 1))
	// In v2 Item.n becomes doubled (renamed field → default 0), and
	// Holder gains a cached copy of the item's doubled value — its
	// transformer must dereference the item, so the item must be
	// transformed first via forceTransform.
	v2 := f.prog(`
class Item {
  field doubled I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Item.doubled I
    return
  }
}
class Holder {
  field item LItem;
  field cache I
  method <init>(LItem;)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Holder.item LItem;
    return
  }
}
` + strings.Replace(shell, "%REPORT%",
		"    getstatic App.h LHolder;\n    getfield Holder.cache I\n    invokestatic System.printInt(I)V", 1))
	custom := `
class JvolveTransformers {
  static method jvolveObject(LItem;Lv1_Item;)V {
    load 0
    load 1
    getfield v1_Item.n I
    const 2
    mul
    putfield Item.doubled I
    return
  }
  static method jvolveObject(LHolder;Lv1_Holder;)V {
    load 1
    getfield v1_Holder.item LItem;
    invokestatic Jvolve.forceTransform(LObject;)V
    load 0
    load 1
    getfield v1_Holder.item LItem;
    putfield Holder.item LItem;
    load 0
    load 1
    getfield v1_Holder.item LItem;
    getfield Item.doubled I
    putfield Holder.cache I
    return
  }
}
`
	f.spawn("App")
	f.vm.Step(2)
	f.mustApply("1", v1, v2, custom)
	if got := strings.TrimSpace(f.finish()); got != "42" {
		t.Fatalf("doubled = %q, want 42 (force-transform ordering)", got)
	}
}

// --- 12. sequential updates --------------------------------------------------------

func TestThreeSequentialUpdates(t *testing.T) {
	f := newFixture(t, 1<<17)
	mk := func(extra string, target int) string {
		return `
class Acc {
  field total I
` + extra + `
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method add(I)V {
    load 0
    load 0
    getfield Acc.total I
    load 1
    add
    putfield Acc.total I
    return
  }
}
class App {
  static field a LAcc;
  static method main()V {
    new Acc
    dup
    invokespecial Acc.<init>()V
    putstatic App.a LAcc;
    const 0
    store 0
  loop:
    load 0
    const ` + itoa(target) + `
    if_icmpge done
    getstatic App.a LAcc;
    const 1
    invokevirtual Acc.add(I)V
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.a LAcc;
    getfield Acc.total I
    invokestatic System.printInt(I)V
    return
  }
}
`
	}
	v1 := f.load(mk("", 3000))
	v2 := f.prog(mk("  field x1 I\n", 3000))
	v3 := f.prog(mk("  field x1 I\n  field x2 I\n", 3000))
	v4 := f.prog(mk("  field x1 I\n  field x2 I\n  field x3 LString;\n", 3000))
	f.spawn("App")
	f.vm.Step(2)
	f.mustApply("1", v1, v2, "")
	f.vm.Step(2)
	f.mustApply("2", v2, v3, "")
	f.vm.Step(2)
	f.mustApply("3", v3, v4, "")
	if got := strings.TrimSpace(f.finish()); got != "3000" {
		t.Fatalf("total = %q, want 3000 across three updates", got)
	}
	if len(f.engine.Updates) != 3 {
		t.Fatalf("recorded %d updates", len(f.engine.Updates))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// --- 13. arrays of updated classes ---------------------------------------------

const arrayV1 = `
class P {
  field v I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield P.v I
    return
  }
}
class App {
  static field arr [LP;
  static method main()V {
    const 8
    newarray LP;
    putstatic App.arr [LP;
    const 0
    store 0
  fill:
    load 0
    const 8
    if_icmpge spin
    getstatic App.arr [LP;
    load 0
    new P
    dup
    load 0
    invokespecial P.<init>(I)V
    aset
    load 0
    const 1
    add
    store 0
    goto fill
  spin:
    const 0
    store 1
  loop:
    load 1
    const 60000
    if_icmpge done
    load 1
    const 1
    add
    store 1
    goto loop
  done:
    const 0
    store 2
    const 0
    store 3
  sum:
    load 3
    const 8
    if_icmpge out
    load 2
    getstatic App.arr [LP;
    load 3
    aget
    getfield P.v I
    add
    store 2
    load 3
    const 1
    add
    store 3
    goto sum
  out:
    load 2
    invokestatic System.printInt(I)V
    return
  }
}
`

func TestArrayElementsForwardToTransformedObjects(t *testing.T) {
	f := newFixture(t, 1<<17)
	v1 := f.load(arrayV1)
	// v2 prepends a field to P, shifting v; the array's elements must all
	// point at transformed objects afterwards.
	v2 := f.prog(strings.Replace(arrayV1, "class P {\n  field v I", "class P {\n  field pad LString;\n  field v I", 1))
	f.spawn("App")
	f.vm.Step(2)
	res := f.mustApply("1", v1, v2, "")
	if res.Stats.TransformedObjects != 8 {
		t.Fatalf("transformed %d objects, want 8", res.Stats.TransformedObjects)
	}
	// Sum 0..7 = 28, readable through the array after transformation.
	if got := strings.TrimSpace(f.finish()); got != "28" {
		t.Fatalf("sum = %q, want 28", got)
	}
}

// updateSpec prepares an update spec without applying it.
func (f *fixture) updateSpec(tag string, old, new_ *classfile.Program) (*upt.Spec, error) {
	return upt.Prepare(tag, old, new_)
}

// updateOpts returns default options for direct ApplyNow calls in tests.
func updateOpts() core.Options { return core.Options{} }
