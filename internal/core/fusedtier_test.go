package core_test

import (
	"strings"
	"testing"

	"govolve/internal/rt"
)

// These tests pin the DSU-honesty contract of the new interpreter tier:
// a frame running trace-promoted fused code must OSR through the fused
// pc-map when its baked assumptions go stale, and a hot monomorphic
// inline cache must be flushed when the class behind it is replaced —
// a stale IC entry would silently dispatch to the old version.

// fusedOSRV1: App.main spins forever reading Loop.bias through a baked
// field offset and publishing it to Hub.out. The loop is exactly the
// shape trace promotion hunts for (loop-pinned thread, one backedge per
// iteration), so after a few slices main runs on the fused tier.
const fusedOSRV1 = `
class Hub {
  static field out I
}
class Loop {
  field bias I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    load 0
    const 7
    putfield Loop.bias I
    return
  }
}
class App {
  static method main()V {
    new Loop
    dup
    invokespecial Loop.<init>()V
    store 0
  spin:
    load 0
    getfield Loop.bias I
    putstatic Hub.out I
    goto spin
  }
}
`

// warmToFused steps the VM until the first trace promotion lands and the
// spinning main frame is actually executing fused code.
func warmToFused(t *testing.T, f *fixture) {
	t.Helper()
	for i := 0; i < 400 && f.vm.Stats().TracePromotions == 0; i++ {
		f.vm.Step(5)
	}
	if f.vm.Stats().TracePromotions == 0 {
		t.Fatal("main never trace-promoted to the fused tier")
	}
	// Step until the thread is resting in main's fused code (a callee
	// frame — e.g. an opt-recompiled probe — may be on top right after a
	// slice boundary).
	for i := 0; i < 400; i++ {
		top := f.vm.Threads[0].Top()
		if top.CM.Level == rt.Fused && top.Method().Def.Name == "main" {
			return
		}
		f.vm.Step(1)
	}
	top := f.vm.Threads[0].Top()
	t.Fatalf("main never rested on the fused tier (top = %s, %v)",
		top.Method().FullName(), top.CM.Level)
}

// hubOut reads Hub.out straight from the JTOC.
func hubOut(t *testing.T, f *fixture) int64 {
	t.Helper()
	hub := f.vm.Reg.LookupClass("Hub")
	if hub == nil {
		t.Fatal("Hub class missing")
	}
	return int64(f.vm.Reg.JTOC[hub.StaticField("out").Slot].Bits)
}

// TestFusedFrameOSRUpdate lands a field-layout update on Loop while main
// is pinned inside a fused loop whose code baked Loop.bias's old offset.
// The update must OSR the fused frame (the pc-map identity mapping lets
// deopt happen at any resting pc), after which the loop must keep
// publishing bias at its *new* offset — a stale offset would read the
// freshly inserted pad field (0) instead of 7.
func TestFusedFrameOSRUpdate(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(fusedOSRV1)
	v2 := f.prog(strings.Replace(fusedOSRV1, "field bias I",
		"field pad I\n  field bias I", 1))
	f.spawn("App")
	warmToFused(t, f)

	promoted := f.vm.Stats().TracePromotions
	res := f.mustApply("1", v1, v2, "")
	if res.Stats.OSRFrames == 0 {
		t.Fatal("no OSR frames: the fused main frame was not rewritten")
	}
	if res.Stats.OSRFusedFrames == 0 {
		t.Fatal("OSR frames recorded, but none was on the fused tier")
	}
	if res.Stats.InvalidatedLayout == 0 {
		t.Fatal("no layout invalidations: App.main's baked Loop.bias offset survived")
	}

	// The loop must re-warm back onto the fused tier and still read 7.
	for i := 0; i < 400 && f.vm.Stats().TracePromotions == promoted; i++ {
		f.vm.Step(5)
	}
	if f.vm.Stats().TracePromotions == promoted {
		t.Fatal("main never re-promoted after OSR deopt")
	}
	if got := hubOut(t, f); got != 7 {
		t.Fatalf("Hub.out = %d after update, want 7 (stale field offset?)", got)
	}
}

// staleICV1: App.main hammers a monomorphic invokevirtual, so once main
// is trace-promoted the call site runs through a fused FLOADINVOKE with
// an inline cache caching (T's class id -> T.probe). The call site is
// declared against the unchanged supertype B and the T instance is built
// in a separate factory, so App.main's compiled code bakes nothing from
// T itself — it survives the update and its warm IC entry is exactly the
// stale state the install-phase flush exists for.
const staleICV1 = `
class Hub {
  static field out I
}
class B {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method probe()I {
    const 0
    return
  }
}
class T extends B {
  field base I
  method <init>()V {
    load 0
    invokespecial B.<init>()V
    load 0
    const 1
    putfield T.base I
    return
  }
  method probe()I {
    load 0
    getfield T.base I
    return
  }
}
class Maker {
  static method make()LB; {
    new T
    dup
    invokespecial T.<init>()V
    return
  }
}
class App {
  static method main()V {
    invokestatic Maker.make()LB;
    store 0
  loop:
    load 0
    invokevirtual B.probe()I
    putstatic Hub.out I
    goto loop
  }
}
`

// TestStaleICFlushOnClassReplacement replaces the class behind a hot
// monomorphic call site: v2 both shifts T's field layout (forcing a real
// class replacement, not a body-only swap) and changes probe to return
// base+1. The install phase must flush the warmed IC entry — a stale
// (old class id -> old probe) entry that kept hitting would dispatch the
// v1 method and Hub.out would stay 1.
func TestStaleICFlushOnClassReplacement(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(staleICV1)
	v2src := strings.Replace(staleICV1, "field base I",
		"field pad I\n  field base I", 1)
	v2src = strings.Replace(v2src, "getfield T.base I\n    return",
		"getfield T.base I\n    const 1\n    add\n    return", 1)
	v2 := f.prog(v2src)
	f.spawn("App")
	warmToFused(t, f)

	for i := 0; i < 400 && f.vm.Stats().ICHits == 0; i++ {
		f.vm.Step(5)
	}
	if f.vm.Stats().ICHits == 0 {
		t.Fatal("call site never hit its inline cache before the update")
	}
	if got := hubOut(t, f); got != 1 {
		t.Fatalf("Hub.out = %d before update, want 1", got)
	}

	res := f.mustApply("1", v1, v2, "")
	if res.Stats.ICFlushed == 0 {
		t.Fatal("no IC entries flushed at install: stale class ids survive in caches")
	}

	// Run on: the site must miss, re-resolve against the new class, and
	// publish the v2 result.
	for i := 0; i < 400 && hubOut(t, f) != 2; i++ {
		f.vm.Step(5)
	}
	if got := hubOut(t, f); got != 2 {
		t.Fatalf("Hub.out = %d after update, want 2 (stale IC dispatched the old probe?)", got)
	}
}
