package core

import (
	"errors"
	"fmt"
	"time"

	"govolve/internal/classfile"
	"govolve/internal/gc"
	"govolve/internal/obs"
	"govolve/internal/rt"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

// apply commits the update at a DSU safe point. Order (paper §3.3–3.4):
// install modified classes and metadata → OSR category-(2) frames (and
// active-method rewrites) → DSU garbage collection → class transformers →
// object transformers → class initializers of brand-new classes → resume.
func (e *Engine) apply(p *Pending, osrJobs []osrJob, cat1 map[*rt.Method]bool) *Result {
	spec := p.Spec
	reg := e.VM.Reg
	totalStart := time.Now()

	// cleanup is assigned once the install phase has loaded the new code
	// (see below); fail runs it on every post-install failure path. Before
	// that it is nil and fail only stamps the pause accounting.
	var cleanup func()
	var curPhase string
	var phaseStart time.Time

	// Until the DSU collection flips the heap, a failed update means the
	// program continues on the OLD version — so the install phase's method
	// body swaps and compiled-code invalidations must come back: a frame
	// parked in a swapped method (e.g. when an OSR rewrite fails) would
	// otherwise keep executing invalidated code with the registry already
	// carrying the new bytecode. After the flip the heap IS the new
	// version and the swaps must stay. fail() rolls back iff !flipped.
	type bodySwap struct {
		m     *rt.Method
		def   *classfile.Method
		cm    *rt.CompiledMethod
		invoc int
	}
	type defSwap struct {
		cls *rt.Class
		def *classfile.Class
	}
	type codeInval struct {
		m  *rt.Method
		cm *rt.CompiledMethod
	}
	var bodySwaps []bodySwap
	var defSwaps []defSwap
	var invalidated []codeInval
	flipped := false

	fail := func(err error) *Result {
		// A failed update stopped the world just like an applied one; the
		// pause histograms must see its true cost, not zero. Fill in the
		// in-progress phase duration (its normal stamp is unreachable on
		// this path) and the total, preserving PauseTotal ≥ install+gc+
		// transform for every outcome.
		el := time.Since(phaseStart)
		switch curPhase {
		case "install":
			if p.stats.PauseInstall == 0 {
				p.stats.PauseInstall = el
			}
		case "gc":
			if p.stats.PauseGC == 0 {
				p.stats.PauseGC = el
			}
		case "transform":
			if p.stats.PauseTransform == 0 {
				p.stats.PauseTransform = el
			}
		}
		p.stats.PauseTotal = time.Since(totalStart)
		if !flipped {
			for _, bs := range bodySwaps {
				bs.m.Def = bs.def
				bs.m.Invocations = bs.invoc
				if bs.cm != nil {
					bs.cm.Invalid = false
					bs.m.Compiled = bs.cm
				}
			}
			for _, ds := range defSwaps {
				ds.cls.Def = ds.def
			}
			for _, ci := range invalidated {
				ci.cm.Invalid = false
				ci.m.Compiled = ci.cm
			}
		}
		if cleanup != nil {
			cleanup()
		}
		return &Result{Outcome: Failed, Err: err}
	}

	// The stop-the-world window: every live thread is parked at a VM safe
	// point for the duration of apply. Mark it on each thread's timeline
	// lane so the pause is visible per thread, not just on the engine lane.
	if rec := e.VM.Rec; rec.Enabled() {
		for _, t := range e.VM.Threads {
			if t.State == vm.Dead {
				continue
			}
			rec.Emit(obs.KThreadStop, obs.LaneThread(t.ID), 0, "dsu pause")
		}
		defer func() {
			for _, t := range e.VM.Threads {
				if t.State == vm.Dead {
					continue
				}
				rec.Emit(obs.KThreadResume, obs.LaneThread(t.ID), 0, "dsu pause")
			}
		}()
	}
	endTotal := e.span("update pause")
	defer endTotal()

	// phase opens a named engine-lane span, closing the previous one; the
	// deferred close makes every fail() return path well-formed.
	var endPhase func()
	phase := func(name string) {
		if endPhase != nil {
			endPhase()
		}
		endPhase = e.span(name)
		curPhase = name
		phaseStart = time.Now()
	}
	defer func() {
		if endPhase != nil {
			endPhase()
		}
	}()

	// --- Install -----------------------------------------------------------
	tInstall := time.Now()
	phase("install")

	for _, name := range spec.DeletedClasses {
		if cls := reg.LookupClass(name); cls != nil {
			reg.DetachSubclass(cls)
			reg.Unregister(cls)
		}
	}

	// Rename all old versions first so their names are free, then load the
	// new versions superclass-first; RVMClass metadata, TIBs and fresh
	// JTOC slots are built by the registry's linker.
	type renamed struct {
		old  *rt.Class
		name string
	}
	var renames []renamed
	for _, name := range spec.ClassUpdates {
		old := reg.LookupClass(name)
		if old == nil {
			continue
		}
		rn := spec.RenamedName(name)
		reg.DetachSubclass(old)
		if err := reg.RenameClass(old, rn, spec.OldFlatDefs[rn]); err != nil {
			return fail(fmt.Errorf("core: install: %w", err))
		}
		renames = append(renames, renamed{old, name})
	}

	toLoad, err := classfile.NewProgram()
	if err != nil {
		return fail(err)
	}
	for _, name := range spec.ClassUpdates {
		if def, ok := spec.New.Classes[name]; ok {
			if err := toLoad.Add(def); err != nil {
				return fail(err)
			}
		}
	}
	for _, name := range spec.AddedClasses {
		if err := toLoad.Add(spec.New.Classes[name]); err != nil {
			return fail(err)
		}
	}
	order, err := rt.SuperFirst(toLoad)
	if err != nil {
		return fail(fmt.Errorf("core: install: %w", err))
	}
	for _, def := range order {
		if _, err := reg.Load(def); err != nil {
			return fail(fmt.Errorf("core: install %s: %w", def.Name, err))
		}
	}
	for _, r := range renames {
		newCls := reg.LookupClass(r.name)
		if newCls == nil {
			return fail(fmt.Errorf("core: install: new version of %s missing", r.name))
		}
		r.old.UpdatedTo = newCls
	}

	// Method-body updates: swap the bytecode behind existing method
	// identities and invalidate their compiled code; the JIT recompiles on
	// next invocation and the adaptive system re-optimizes over time.
	for _, ref := range spec.MethodBodyUpdates {
		cls := reg.LookupClass(ref.Class)
		ndef := spec.New.Classes[ref.Class]
		if cls == nil || ndef == nil {
			continue
		}
		m := cls.Method(ref.Name, ref.Sig)
		nm := ndef.Method(ref.Name, ref.Sig)
		if m == nil || nm == nil {
			return fail(fmt.Errorf("core: method body update %s: method missing", ref))
		}
		bodySwaps = append(bodySwaps, bodySwap{m: m, def: m.Def, cm: m.Compiled, invoc: m.Invocations})
		m.Def = nm
		if m.Compiled != nil {
			m.Compiled.Invalid = true
			m.Compiled = nil
		}
		m.Invocations = 0 // profiles are invalidated (paper §3.3)
		p.stats.InvalidatedMethods++
		p.stats.InvalidatedBody++
	}
	// Refresh whole definitions of body-updated classes so later diffs and
	// verification see current code.
	seen := map[string]bool{}
	for _, ref := range spec.MethodBodyUpdates {
		if seen[ref.Class] {
			continue
		}
		seen[ref.Class] = true
		if cls := reg.LookupClass(ref.Class); cls != nil {
			if ndef := spec.New.Classes[ref.Class]; ndef != nil {
				defSwaps = append(defSwaps, defSwap{cls: cls, def: cls.Def})
				cls.Def = ndef
			}
		}
	}

	// Invalidate every compiled method whose code bakes in an updated
	// class's layout or inlines an updated method — they recompile against
	// the new metadata on next call (category (2), the "indirect" set).
	updatedOldSet := make(map[*rt.Class]bool, len(renames))
	for _, r := range renames {
		updatedOldSet[r.old] = true
	}
	for _, m := range reg.Methods() {
		cm := m.Compiled
		if cm == nil || cm.Invalid {
			continue
		}
		inline := cm.InlinedAny(cat1)
		stale := inline
		if !stale {
			for dep := range cm.LayoutDeps {
				if updatedOldSet[dep] {
					stale = true
					break
				}
			}
		}
		if stale {
			invalidated = append(invalidated, codeInval{m: m, cm: cm})
			cm.Invalid = true
			m.Compiled = nil
			p.stats.InvalidatedMethods++
			if inline {
				p.stats.InvalidatedInline++
			} else {
				p.stats.InvalidatedLayout++
			}
		}
	}

	// Flush every inline cache in the compiled code that survives the
	// update. Monotonic class ids already make a stale hit impossible — the
	// renamed old version keeps its id and the new version gets a fresh one,
	// so post-update receivers self-miss — but leaving dead (old-id →
	// old-method) entries in the fast slots would force every surviving
	// site through its slow path until the entry happened to be evicted.
	// Wiping the caches here re-warms them against new class ids on first
	// dispatch. Always safe (an empty cache is just a TIB lookup), so no
	// rollback entry is recorded.
	for _, m := range reg.Methods() {
		if cm := m.Compiled; cm != nil {
			p.stats.ICFlushed += cm.FlushICs()
		}
	}

	// Load the transformer class (replacing any leftover from a previous
	// update; the VM may delete it after transformation).
	if old := reg.LookupClass(upt.TransformersClassName); old != nil {
		reg.Unregister(old)
	}
	transformers, err := reg.Load(spec.Transformers)
	if err != nil {
		return fail(fmt.Errorf("core: loading transformers: %w", err))
	}
	p.stats.PauseInstall = time.Since(tInstall)

	// cleanup unlinks the renamed old versions and the transformer class so
	// the next collection can reclaim them. It runs on the success path AND
	// on every post-install failure path (via fail): once the new code is
	// installed a failed update must still leave the VM with consistent
	// metadata. The documented failure mode for a transformer error is data
	// loss — some objects keep default field values — never dangling
	// old-version classes, stale UpdatedTo links, or a live scratch region
	// (§3.4). Idempotent: in lazy mode a drain finishing during the clinit
	// phase runs it before the success path does.
	cleanupDone := false
	cleanup = func() {
		if cleanupDone {
			return
		}
		cleanupDone = true
		for _, r := range renames {
			r.old.UpdatedTo = nil
			reg.Unregister(r.old)
		}
		reg.Unregister(transformers)
	}

	// --- OSR ---------------------------------------------------------------
	phase("osr")
	for _, job := range osrJobs {
		f := job.frame
		m := f.CM.Method
		wasFused := f.CM.Level == rt.Fused
		target := m
		if m.Class.Renamed && m.Class.UpdatedTo != nil {
			// The class was replaced; continue in the new version's
			// method of the same identity. (For body-only updates the
			// same rt.Method now carries the new bytecode.)
			target = m.Class.UpdatedTo.Method(m.Def.Name, m.Def.Sig)
			if target == nil {
				return fail(fmt.Errorf("core: OSR: %s has no counterpart in new version", m.FullName()))
			}
		}
		cm, err := e.VM.JIT.Compile(target, rt.Base)
		if err != nil {
			return fail(fmt.Errorf("core: OSR compile %s: %w", target.FullName(), err))
		}
		if target.Compiled == nil {
			target.Compiled = cm
		}
		if job.active != nil {
			newPC, ok := job.active.PC[f.PC]
			if !ok {
				return fail(fmt.Errorf("core: active-method update: pc %d of %s not in yield-point map", f.PC, m.FullName()))
			}
			if err := e.VM.OSRRewrite(f, cm, newPC, job.active.Locals); err != nil {
				return fail(fmt.Errorf("core: active-method update: %w", err))
			}
			p.stats.ActiveRewrites++
			e.VM.Rec.Emit(obs.KOSRRecompile, obs.LaneEngine, 1, target.FullName())
		} else {
			if err := e.VM.OSRReplace(f, cm); err != nil {
				return fail(fmt.Errorf("core: OSR: %w", err))
			}
			e.VM.Rec.Emit(obs.KOSRRecompile, obs.LaneEngine, 0, target.FullName())
		}
		p.stats.OSRFrames++
		if wasFused {
			// The frame was resting in trace-promoted fused code; the
			// identity pc-map let the rewrite land at the fused pc.
			p.stats.OSRFusedFrames++
		}
	}

	// --- DSU garbage collection ---------------------------------------------
	phase("gc")
	tGC := time.Now()
	var gcRes *gc.Result
	var rl *gc.Relocation
	switch {
	case e.VM.GC.Opts.ConcurrentReloc:
		// Concurrent relocation: the pause stops at flip preparation —
		// discover updated-class instances (consuming a sealed concurrent
		// mark when one is waiting), flip, eagerly evacuate only those
		// instances (or, composed with LazyTransform, defer even the pairs
		// to the drain), and remap roots. The world resumes with from-space
		// still live behind the self-healing load barrier; rl is the drain
		// the engine starts after the transformer phase and finalizes once
		// the background workers run it dry.
		gcRes, rl, err = e.VM.GC.CollectReloc(e.VM, e.VM.LazyTransform)
	case e.VM.GC.MarkReady():
		// A sealed concurrent mark is waiting: the pause only drains the
		// SATB log, re-scans roots, and copies the marked ∪ post-watermark
		// set — discovery already happened outside the window.
		gcRes, err = e.VM.GC.CollectWithMark(e.VM, true)
	default:
		gcRes, err = e.VM.GC.Collect(e.VM, true)
	}
	if err != nil {
		if errors.Is(err, gc.ErrPreFlip) {
			// The collection failed before the semispace flip: nothing was
			// copied or forwarded and no root was rewritten, so the heap is
			// fully usable. Fail the update cleanly — fail() restores
			// metadata consistency and the VM runs on, on the old version.
			return fail(fmt.Errorf("core: DSU collection: %w", err))
		}
		// A post-flip failure leaves the heap unusable — the semispace flip
		// already happened and an unknown subset of roots is forwarded. Mark
		// it fatal so allocations fail fast with the typed cause
		// (gc.ErrToSpaceExhausted surfaces in vm.DeadErrors with OOM set);
		// fail() still restores metadata consistency before reporting: even
		// a dead-heap VM must not dangle renamed classes or UpdatedTo links.
		flipped = true
		e.VM.MarkHeapUnusable(err)
		return fail(fmt.Errorf("core: DSU collection: %w", err))
	}
	flipped = true
	p.stats.PauseGC = time.Since(tGC)
	p.stats.PauseGCMark = gcRes.PauseMark
	p.stats.PauseGCRescan = gcRes.PauseRescan
	p.stats.PauseGCCopy = gcRes.PauseCopy
	p.stats.GCMarkConcurrent = gcRes.MarkConcurrent
	p.stats.GCMarkOutside = gcRes.MarkOutside
	p.stats.GCMarkSetup = gcRes.MarkSetup
	p.stats.GCMarkedObjects = gcRes.MarkedObjects
	p.stats.GCSATBDrained = gcRes.SATBDrained
	p.stats.GCRescanMarked = gcRes.RescanMarked
	p.stats.CopiedObjects = gcRes.CopiedObjects
	p.stats.CopiedWords = gcRes.CopiedWords
	p.stats.ScratchWords = gcRes.ScratchWords
	p.stats.GCWorkers = gcRes.Workers
	p.stats.GCWorkerWords = gcRes.WorkerWords
	p.stats.GCSteals = gcRes.Steals
	p.stats.PairsLogged = gcRes.PairsLogged
	p.stats.RelocConcurrent = gcRes.Relocated

	// The relocation drain's engine-side handle. The force hook installs
	// immediately — before the transformer phase — because a clinit-
	// triggered collection must be able to force-complete the drain (a flip
	// cannot run with the load barrier armed and from-space held). The tick
	// hook and the background workers only start on the success path below.
	var rh *relocHandle
	if rl != nil {
		rh = &relocHandle{e: e, rl: rl, stats: &p.stats, cleanup: cleanup,
			scratch: gcRes.ScratchWords > 0 || (e.VM.LazyTransform && e.VM.Heap.HasScratch())}
		e.reloc = rh
		e.VM.DSURelocForce = rh.force
	}

	// --- Transformers --------------------------------------------------------
	phase("transform")
	tTr := time.Now()
	var ld *lazyDrain
	if e.VM.LazyTransform {
		if rl != nil {
			// Full deferral (ConcurrentReloc ∧ LazyTransform): the pause made
			// (almost) no pairs — the drain creates them as it evacuates, and
			// the lazy residue adopts them on first touch or at finalize.
			ld, err = e.prepareLazyDeferred(p, spec, transformers, rl, cleanup)
			if err != nil {
				rh.failApply()
				return fail(err)
			}
			rh.ld = ld
		} else {
			// Lazy mode: class transformers still run here, but the object
			// log is tagged for on-first-touch transformation instead of
			// walked — the transform share of the pause collapses to the
			// class pass.
			ld, err = e.prepareLazy(p, spec, transformers, gcRes, cleanup)
			if err != nil {
				if gcRes.ScratchWords > 0 {
					e.VM.Heap.ResetScratch()
				}
				return fail(err)
			}
			if ld == nil && gcRes.ScratchWords > 0 {
				// The class transformers forced every pair inside the pause;
				// no drain window, so the scratch region retires now.
				e.VM.Heap.ResetScratch()
			}
		}
	} else {
		if err := e.runTransformers(p, spec, transformers, gcRes); err != nil {
			// Partially transformed objects keep default field values (data
			// loss), but the metadata must come back consistent (fail runs
			// cleanup) so the VM stays serviceable.
			if rh != nil {
				rh.failApply()
			} else if gcRes.ScratchWords > 0 {
				e.VM.Heap.ResetScratch()
			}
			return fail(err)
		}
		p.stats.TransformedObjects = len(gcRes.Log)
		if gcRes.ScratchWords > 0 && rh == nil {
			// Old copies lived in the scratch region; reclaim it immediately
			// (§3.5: "reclaim it when the collection completes") instead of
			// waiting for the next collection to sweep them from to-space.
			// (Under concurrent relocation the drain still scans the scratch
			// copies, so reclamation waits for drain finalize.)
			e.VM.Heap.ResetScratch()
		}
	}
	p.stats.PauseTransform = time.Since(tTr)

	// --- Class initializers of brand-new classes -----------------------------
	// In lazy mode the barrier is already armed here, deliberately: a clinit
	// that touches updated-class instances transforms them on first use,
	// keeping its observable behaviour identical to eager mode.
	phase("clinit")
	for _, name := range spec.AddedClasses {
		if cls := reg.LookupClass(name); cls != nil {
			if err := e.VM.RunClinit(cls); err != nil {
				if rh != nil {
					// Force-complete the drain inline before unwinding: the
					// world must not resume with from-space held and no
					// engine handle left to retire it. (Runs before
					// abortPause — abortPause reclaims the scratch region the
					// forced drain still reads.)
					rh.failApply()
				}
				if ld != nil {
					ld.abortPause()
				}
				return fail(fmt.Errorf("core: <clinit> of added class %s: %w", name, err))
			}
		}
	}

	// --- Cleanup --------------------------------------------------------------
	// The old class versions and the transformer class have done their
	// job; unregistering them lets the next collection reclaim everything
	// (the update log is dropped with gcRes). In lazy mode with a live
	// drain both must survive the pause — the drain resolves old-copy
	// class ids through the renamed versions and runs transformer methods
	// — so finishDrain runs cleanup when pending hits zero instead. (A
	// drain completing during the clinit phase already ran it; cleanup is
	// idempotent, and ld.done marks that case.) Under concurrent relocation
	// cleanup is deferred to drain finalize in EVERY mode: the drain sizes
	// old copies by their old class ids, so the renamed versions must stay
	// registered until from-space is fully evacuated.
	if rh == nil && (ld == nil || ld.done) {
		cleanup()
	}

	// Start the relocation drain last, still inside the pause: background
	// workers spawn here, and from the first post-pause slice the scheduler
	// polls rh.tick to finalize the moment they run from-space dry. (If a
	// clinit-triggered collection already forced the drain, Start and the
	// tick hook are skipped — finalize already ran.)
	if rh != nil && !rh.finalized {
		rl.Start()
		e.VM.DSURelocTick = rh.tick
	}

	p.stats.PauseTotal = time.Since(totalStart)
	return &Result{Outcome: Applied}
}

// Transformation status of one update-log pair, keyed by the new object.
const (
	stNone = iota
	stInProgress
	stDone
)

// runTransformers executes class transformers for every updated class, then
// object transformers over the update log. Transformers run on synchronous
// VM threads with collection disabled (the log holds raw addresses). The
// Jvolve.forceTransform native lets a transformer eagerly transform an
// object it must dereference; cycles abort the update (paper §3.4).
//
// With FastDefaults, pairs whose class carries a UPT-generated default
// transformer are bulk-copied natively — and, when the collector is
// configured with multiple workers, fanned out across a worker pool before
// the serial log walk (each bulk transform touches only its own disjoint
// pair, so the fan-out is race-free). Custom bytecode transformers always
// run serially on the VM, which is not re-entrant.
func (e *Engine) runTransformers(p *Pending, spec *upt.Spec, transformers *rt.Class, gcRes *gc.Result) error {
	v := e.VM
	v.GCDisabled = true
	defer func() { v.GCDisabled = false }()

	status := make(map[rt.Addr]int, len(gcRes.Log))

	var transform func(newAddr rt.Addr) error
	transform = func(newAddr rt.Addr) error {
		if newAddr == rt.Null {
			return nil
		}
		switch status[newAddr] {
		case stDone:
			return nil
		case stInProgress:
			return fmt.Errorf("core: transformer cycle detected at object @%d; aborting update", newAddr)
		}
		oldCopy, updated := gcRes.OldForNew[newAddr]
		if !updated {
			return nil // not an updated object: nothing to do
		}
		status[newAddr] = stInProgress
		newCls := v.Reg.ClassByID(v.Heap.ClassID(newAddr))
		oldCls := v.Reg.ClassByID(v.Heap.ClassID(oldCopy))
		if newCls == nil || oldCls == nil {
			return fmt.Errorf("core: transformer: unknown class for pair @%d/@%d", newAddr, oldCopy)
		}
		if p.Opts.FastDefaults && spec.DefaultObjectTransformers[newCls.Name] {
			// A generated default is a pure copy of unchanged fields;
			// run it as a bulk copy, skipping interpretation entirely.
			nativeObjectTransform(v, newCls, oldCls, spec.OldFlatDefs[oldCls.Name], newAddr, oldCopy)
			status[newAddr] = stDone
			p.stats.BulkTransformed++
			v.Rec.Emit(obs.KTransformerApplied, obs.LaneEngine, 1, "default:"+newCls.Name)
			return nil
		}
		sig := classfile.Sig("(L" + newCls.Name + ";L" + oldCls.Name + ";)V")
		tm := transformers.Method("jvolveObject", sig)
		if tm == nil {
			return fmt.Errorf("core: no object transformer jvolveObject%s", sig)
		}
		if err := v.RunSynchronous("jvolveObject:"+newCls.Name, tm,
			[]rt.Value{rt.RefVal(newAddr), rt.RefVal(oldCopy)}); err != nil {
			return fmt.Errorf("core: object transformer for %s: %w", newCls.Name, err)
		}
		status[newAddr] = stDone
		p.stats.BytecodeTransformed++
		v.Rec.Emit(obs.KTransformerApplied, obs.LaneEngine, 1, "jvolveObject:"+newCls.Name)
		return nil
	}

	v.DSUForceTransform = transform
	defer func() { v.DSUForceTransform = nil }()

	// Class transformers first, then objects (paper §3.4).
	if err := e.runClassTransformers(p, spec, transformers); err != nil {
		return err
	}
	// Parallel bulk pass: default-transformer pairs not already force-
	// transformed by a class transformer are pure disjoint field copies —
	// fan them out before the serial walk. Pairs it completes are marked
	// stDone, so the walk below skips them.
	if p.Opts.FastDefaults {
		e.bulkTransformObjects(p, spec, gcRes, status)
	}
	for _, pair := range gcRes.Log {
		if err := transform(pair.New); err != nil {
			return err
		}
	}
	return nil
}

// runClassTransformers executes the class transformer for every updated
// class — the UPT-generated default as a native static copy under
// FastDefaults, interpreted jvolveClass otherwise. Shared by the eager
// transform phase and the lazy prepare phase (class transformers always run
// inside the pause: statics must be correct before the program resumes).
// The caller installs v.DSUForceTransform first so a class transformer can
// force-transform the objects it dereferences.
func (e *Engine) runClassTransformers(p *Pending, spec *upt.Spec, transformers *rt.Class) error {
	v := e.VM
	for _, name := range spec.ClassUpdates {
		cls := v.Reg.LookupClass(name)
		if cls == nil {
			continue
		}
		if p.Opts.FastDefaults && spec.DefaultClassTransformers[name] {
			oldCls := v.Reg.LookupClass(spec.RenamedName(name))
			if oldCls != nil {
				nativeClassTransform(v, cls, oldCls, spec.OldFlatDefs[oldCls.Name])
				v.Rec.Emit(obs.KTransformerApplied, obs.LaneEngine, 0, "defaultClass:"+name)
			}
			continue
		}
		sig := classfile.Sig("(L" + name + ";)V")
		tm := transformers.Method("jvolveClass", sig)
		if tm == nil {
			continue // class never loaded old-side or no statics to carry
		}
		if err := v.RunSynchronous("jvolveClass:"+name, tm, []rt.Value{rt.NullVal}); err != nil {
			return fmt.Errorf("core: class transformer for %s: %w", name, err)
		}
		v.Rec.Emit(obs.KTransformerApplied, obs.LaneEngine, 0, "jvolveClass:"+name)
	}
	return nil
}
