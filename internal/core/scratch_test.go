package core_test

import (
	"bytes"
	"strings"
	"testing"

	"govolve/internal/core"
	"govolve/internal/vm"
)

// A program that fills most of the heap with updatable objects: without a
// scratch region, the DSU collection needs to-space for live objects + old
// copies + new shells and runs out; with one, old copies go to scratch and
// the same update fits.
const scratchApp = `
class Blob {
  field a I
  field b I
  field c I
  field d I
  field e I
  field f I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Blob.a I
    return
  }
}
class App {
  static field arr [LBlob;
  static method main()V {
    const 900
    newarray LBlob;
    putstatic App.arr [LBlob;
    const 0
    store 0
  fill:
    load 0
    const 900
    if_icmpge spin
    getstatic App.arr [LBlob;
    load 0
    new Blob
    dup
    load 0
    invokespecial Blob.<init>(I)V
    aset
    load 0
    const 1
    add
    store 0
    goto fill
  spin:
    const 0
    store 1
  loop:
    load 1
    const 60000
    if_icmpge done
    load 1
    const 1
    add
    store 1
    goto loop
  done:
    getstatic App.arr [LBlob;
    const 899
    aget
    getfield Blob.a I
    invokestatic System.printInt(I)V
    return
  }
}
`

var scratchAppV2 = strings.Replace(scratchApp,
	"class Blob {\n  field a I",
	"class Blob {\n  field z I\n  field a I", 1)

// runScratchScenario builds a tightly-sized heap and applies the update.
func runScratchScenario(t *testing.T, scratchWords int) (*core.Result, *vm.VM, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	// Live: 900 Blob × 8 words + array ~902 + strings/interns. To-space
	// during a non-scratch DSU GC needs live(8) + old(8) + shell(9) per
	// object ≈ 25×900 + array. 16000 words hold the live set comfortably
	// but not the tripled update working set.
	machine, err := vm.New(vm.Options{
		HeapWords: 16000, ScratchWords: scratchWords, Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, vm: machine, out: &out, engine: core.NewEngine(machine)}
	v1 := f.load(scratchApp)
	v2 := f.prog(scratchAppV2)
	f.spawn("App")
	// Step past the fill phase (~4500 yield points) into the spin loop so
	// all 900 Blobs are live at update time.
	f.vm.Step(15)
	res, err := f.update("1", v1, v2, "", core.Options{MaxAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	return res, machine, &out
}

func TestScratchRegionRelievesToSpacePressure(t *testing.T) {
	// Without scratch: live + old copies + shells exceed to-space.
	res, _, _ := runScratchScenario(t, 0)
	if res.Outcome != core.Failed || res.Err == nil ||
		!strings.Contains(res.Err.Error(), "exhausted") {
		t.Fatalf("without scratch: %v (%v), want space exhaustion", res.Outcome, res.Err)
	}

	// With scratch for the old copies, the same update fits and the
	// program finishes correctly on the new layout.
	res2, machine, out := runScratchScenario(t, 8000)
	if res2.Outcome != core.Applied {
		t.Fatalf("with scratch: %v (%v)", res2.Outcome, res2.Err)
	}
	if res2.Stats.TransformedObjects != 900 {
		t.Fatalf("transformed %d", res2.Stats.TransformedObjects)
	}
	// The scratch region is reclaimed immediately after the update.
	if machine.Heap.ScratchUsed() != 0 {
		t.Fatalf("scratch not reclaimed: %d words", machine.Heap.ScratchUsed())
	}
	if err := machine.Run(); err != nil {
		t.Fatal(err)
	}
	for _, th := range machine.Threads {
		if th.Err != nil {
			t.Fatalf("thread: %v", th.Err)
		}
	}
	if got := strings.TrimSpace(out.String()); got != "899" {
		t.Fatalf("output = %q, want 899 (field shifted by update)", got)
	}
}

func TestScratchWithForceTransform(t *testing.T) {
	// Force-transform must work when old copies live in scratch: the
	// Holder/Item ordering scenario, scratch-backed.
	var out bytes.Buffer
	machine, err := vm.New(vm.Options{HeapWords: 1 << 16, ScratchWords: 4096, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, vm: machine, out: &out, engine: core.NewEngine(machine)}
	v1 := f.load(cycleV1)
	v2 := f.prog(strings.Replace(cycleV1, "field v I", "field v I\n  field extra I", 1))
	f.spawn("App")
	f.vm.Step(2)
	custom := `
class JvolveTransformers {
  static method jvolveObject(LLink;Lv1_Link;)V {
    load 0
    load 1
    getfield v1_Link.v I
    putfield Link.v I
    load 0
    load 1
    getfield v1_Link.peer LLink;
    putfield Link.peer LLink;
    return
  }
}
`
	res, err := f.update("1", v1, v2, custom, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Applied {
		t.Fatalf("%v (%v)", res.Outcome, res.Err)
	}
	if machine.Heap.ScratchUsed() != 0 {
		t.Fatal("scratch not reclaimed")
	}
}
