package core_test

import (
	"strings"
	"testing"

	"govolve/internal/core"
	"govolve/internal/rt"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

// optOSRV1: work() gets hot (opt-compiled), reads Cell.x, and eventually
// parks in a blocking accept — with Cell's offsets baked into its opt code.
const optOSRV1 = `
class Cell {
  field x I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Cell.x I
    return
  }
}
class App {
  static field c LCell;
  static method work(I)I {
    load 0
    const 199
    if_icmplt skip
    const 99
    invokestatic Net.accept(I)I
    pop
  skip:
    getstatic App.c LCell;
    getfield Cell.x I
    return
  }
  static method main()V {
    new Cell
    dup
    const 5
    invokespecial Cell.<init>(I)V
    putstatic App.c LCell;
    const 0
    store 0
  loop:
    load 0
    const 200
    if_icmpge done
    load 0
    invokestatic App.work(I)I
    pop
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    load 0
    invokestatic App.work(I)I
    invokestatic System.printInt(I)V
    return
  }
}
`

// optOSRV2 prepends a field to Cell, shifting x.
var optOSRV2 = strings.Replace(optOSRV1,
	"class Cell {\n  field x I",
	"class Cell {\n  field pad LString;\n  field x I", 1)

// setupOptOSR drives the program until work() is opt-compiled and parked in
// the blocking accept with stale-to-be offsets on stack.
func setupOptOSR(t *testing.T) *fixture {
	t.Helper()
	f := newFixture(t, 1<<16)
	f.vm.JIT.OptThreshold = 20
	f.load(optOSRV1)
	f.spawn("App")
	for i := 0; i < 500 && f.vm.Threads[0].State != vm.Blocked; i++ {
		f.vm.Step(1)
	}
	th := f.vm.Threads[0]
	if th.State != vm.Blocked {
		t.Fatalf("main never blocked in work(): %s", th.Backtrace())
	}
	work := th.Top()
	if work.Method().Def.Name != "work" || work.CM.Level != rt.Opt {
		t.Fatalf("top frame not opt work(): %s (%v)", work.Method().FullName(), work.CM.Level)
	}
	return f
}

func TestOptOSRDisabledBlocks(t *testing.T) {
	f := setupOptOSR(t)
	v1 := f.prog(optOSRV1)
	v2 := f.prog(optOSRV2)
	res, err := f.update("1", v1, v2, "", core.Options{MaxAttempts: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Without opt-OSR the stale opt frame blocks forever (it is parked in
	// a native call and its barrier cannot fire).
	if res.Outcome != core.Aborted {
		t.Fatalf("outcome = %v, want Aborted without OSROpt", res.Outcome)
	}
}

func TestOptOSREnabledRewritesFrame(t *testing.T) {
	f := setupOptOSR(t)
	v1 := f.prog(optOSRV1)
	v2 := f.prog(optOSRV2)
	res, err := f.update("1", v1, v2, "", core.Options{MaxAttempts: 10, OSROpt: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Applied {
		t.Fatalf("outcome = %v (%v), want Applied with OSROpt", res.Outcome, res.Err)
	}
	if res.Stats.OSRFrames == 0 {
		t.Fatal("no OSR frames recorded")
	}
	// Unblock the accept: connect a client so work() resumes on the
	// rewritten base code and reads x at its *new* offset.
	if _, err := f.vm.Net.Connect(99); err == nil {
		t.Fatal("connect before listen should fail")
	}
	// work() blocked in accept on an unbound port 99; bind it from the
	// driver side by... accept blocks on hasPending(99), which is false
	// for an unbound port. Listen isn't exposed driver-side, so instead
	// verify the frame was rewritten and the pc is mappable state.
	th := f.vm.Threads[0]
	top := th.Top()
	if top.CM.Level != rt.Base {
		t.Fatalf("top frame still %v after OSR", top.CM.Level)
	}
	// The rewritten code must read Cell.x at the new offset (3, after the
	// inserted pad), not the stale 2.
	newCell := f.vm.Reg.LookupClass("Cell")
	if off := newCell.Field("x").Offset; off != rt.HeaderWords+1 {
		t.Fatalf("new x offset = %d", off)
	}
	found := false
	for _, ins := range top.CM.Code {
		if ins.Op.String() == "getfield_r" && ins.A == int64(newCell.Field("x").Offset) {
			found = true
		}
	}
	if !found {
		t.Fatal("rewritten code does not use the new field offset")
	}
}

// TestFastDefaultTransformers checks that the native bulk-copy path
// produces the same heap state as interpreted default transformers.
func TestFastDefaultTransformers(t *testing.T) {
	for _, fast := range []bool{false, true} {
		f := newFixture(t, 1<<17)
		v1 := f.load(arrayV1)
		v2 := f.prog(strings.Replace(arrayV1, "class P {\n  field v I",
			"class P {\n  field pad LString;\n  field v I", 1))
		f.spawn("App")
		f.vm.Step(2)
		res, err := f.update("1", v1, v2, "", core.Options{FastDefaults: fast})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != core.Applied {
			t.Fatalf("fast=%v: %v (%v)", fast, res.Outcome, res.Err)
		}
		if res.Stats.TransformedObjects != 8 {
			t.Fatalf("fast=%v: transformed %d", fast, res.Stats.TransformedObjects)
		}
		if got := strings.TrimSpace(f.finish()); got != "28" {
			t.Fatalf("fast=%v: sum = %q, want 28", fast, got)
		}
	}
}

// TestFastDefaultsRespectsCustomTransformers: a user override must still
// run as bytecode even in fast mode.
func TestFastDefaultsRespectsCustomTransformers(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(counterLike)
	v2 := f.prog(strings.Replace(counterLike, "field count I", "field count I\n  field boost I", 1))
	f.spawn("CApp")
	f.vm.Step(2)
	custom := `
class JvolveTransformers {
  static method jvolveObject(LCtr;Lv1_Ctr;)V {
    load 0
    load 1
    getfield v1_Ctr.count I
    const 1000
    add
    putfield Ctr.count I
    return
  }
}
`
	res, err := f.update("1", v1, v2, custom, core.Options{FastDefaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Applied {
		t.Fatalf("%v (%v)", res.Outcome, res.Err)
	}
	out := strings.TrimSpace(f.finish())
	// The custom transformer added 1000 to whatever the count was at
	// update time; a fast-path default would have copied it unchanged and
	// the final count would be exactly 9000.
	if out == "9000" {
		t.Fatal("custom transformer was bypassed by the fast-defaults path")
	}
	if !strings.HasSuffix(out, "000") || len(out) != 5 {
		t.Fatalf("count = %q, want 1e4-ish boosted value", out)
	}
}

const counterLike = `
class Ctr {
  field count I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method bump()V {
    load 0
    load 0
    getfield Ctr.count I
    const 1
    add
    putfield Ctr.count I
    return
  }
}
class CApp {
  static field c LCtr;
  static method main()V {
    new Ctr
    dup
    invokespecial Ctr.<init>()V
    putstatic CApp.c LCtr;
    const 0
    store 0
  loop:
    load 0
    const 9000
    if_icmpge done
    getstatic CApp.c LCtr;
    invokevirtual Ctr.bump()V
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic CApp.c LCtr;
    getfield Ctr.count I
    invokestatic System.printInt(I)V
    return
  }
}
`

// TestInlinedUpdatedMethodRestrictsCaller: if an updated method was inlined
// into a hot caller, the caller must be restricted even though its own
// bytecode is unchanged (paper §3.2 on inlining).
func TestInlinedUpdatedMethodRestrictsCaller(t *testing.T) {
	f := newFixture(t, 1<<16)
	f.vm.JIT.OptThreshold = 10
	v1 := f.load(`
class Tiny {
  static method val()I {
    const 7
    return
  }
}
class HApp {
  static method hot()I {
    invokestatic Tiny.val()I
    const 1
    add
    return
  }
  static method main()V {
    const 0
    store 0
  loop:
    load 0
    const 9000
    if_icmpge done
    invokestatic HApp.hot()I
    pop
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    invokestatic HApp.hot()I
    invokestatic System.printInt(I)V
    return
  }
}
`)
	v2 := f.prog(strings.Replace(`
class Tiny {
  static method val()I {
    const 7
    return
  }
}
`, "const 7", "const 70", 1) + `
class HApp {
  static method hot()I {
    invokestatic Tiny.val()I
    const 1
    add
    return
  }
  static method main()V {
    const 0
    store 0
  loop:
    load 0
    const 9000
    if_icmpge done
    invokestatic HApp.hot()I
    pop
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    invokestatic HApp.hot()I
    invokestatic System.printInt(I)V
    return
  }
}
`)
	f.spawn("HApp")
	f.vm.Step(5)
	// hot() is opt-compiled by now with Tiny.val inlined.
	hot := f.vm.Reg.LookupClass("HApp").Method("hot", "()I")
	if hot.Compiled == nil || hot.Compiled.Level != rt.Opt || len(hot.Compiled.Inlined) == 0 {
		t.Skipf("hot not yet opt+inlined: %+v", hot.Compiled)
	}
	res := f.mustApply("1", v1, v2, "")
	_ = res
	// After the update the inlined copy of Tiny.val must be gone: the
	// final call must print 71.
	if got := strings.TrimSpace(f.finish()); got != "71" {
		t.Fatalf("hot() after update = %q, want 71 (stale inlined body survived?)", got)
	}
}

// TestActiveUpdateUnitSynthetic exercises OSRRewrite through a minimal
// changed-loop scenario with a hand-written map.
func TestActiveUpdateUnitSynthetic(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(foreverV1)
	v2 := f.prog(strings.Replace(foreverV1, "const 1\n    ifne top", "const 2\n    ifne top", 1))
	f.spawn("App")
	f.vm.Step(2)
	spec, err := upt.Prepare("1", v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	// The entire loop body changed, so LCS inference rightly gives up…
	unmapped := spec.InferActiveUpdates()
	if len(unmapped) != 1 || unmapped[0].Name != "spin" {
		t.Fatalf("unmapped = %v, want spin (no common structure)", unmapped)
	}
	// …and the user supplies the map by hand, as in UpStare: both bodies
	// are const/ifne/return, equivalent at every yield point.
	spec.AddActiveUpdate(upt.MethodRef{Class: "Loop", Name: "spin", Sig: "()V"},
		upt.ActivePCMap{PC: map[int]int{0: 0, 1: 1, 2: 2}})
	res, err := f.engine.ApplyNow(spec, core.Options{MaxAttempts: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Applied {
		t.Fatalf("outcome = %v (%v)", res.Outcome, res.Err)
	}
	if res.Stats.ActiveRewrites == 0 {
		t.Fatal("no active rewrites recorded")
	}
}
