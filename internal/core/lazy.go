package core

import (
	"fmt"
	"time"

	"govolve/internal/classfile"
	"govolve/internal/gc"
	"govolve/internal/obs"
	"govolve/internal/rt"
	"govolve/internal/upt"
)

// lazyDrain owns the post-pause residue of one LazyTransform update: the
// pair log, the per-pair transformation status, and everything the drain
// still needs from the pause — the renamed old class versions (old-copy
// class ids resolve through them), the transformer class, and the scratch
// region holding the old copies. The paper's §5 on-first-use hybrid: the
// pause ends with objects copied but untransformed, and the read barrier
// (vm.DSULazyTouch) transforms each on first touch.
//
// Lifetime: created inside the pause by prepareLazy, which tags every pair
// not already force-transformed by a class transformer and arms the barrier.
// The drain retires pairs until pending hits zero, then finishDrain
// uninstalls the hooks, runs the update's cleanup (unregistering the old
// versions and the transformer class) and reclaims the scratch region. A
// collection or a follow-up update force-completes the residue first
// (forceAll); a clinit failure while still inside the pause unwinds with
// abortPause instead.
//
// Everything here runs on the mutator goroutine — barrier hits, forced
// drains and collections all happen inside VM.Step — so no locking.
type lazyDrain struct {
	e            *Engine
	spec         *upt.Spec
	opts         Options
	transformers *rt.Class
	log          []gc.Pair
	oldForNew    map[rt.Addr]rt.Addr
	status       map[rt.Addr]int
	pending      int
	stats        *Stats
	cleanup      func()
	scratch      bool
	sealed       time.Time // pause end; drain latency is measured from here
	forcing      bool      // inside forceAll: classify completions as LazyForced
	done         bool
	firstErr     error

	// Deferred-pair composition (ConcurrentReloc ∧ LazyTransform): reloc is
	// the in-flight relocation whose drain creates pairs this lazy drain
	// adopts (via the transform fallback on first touch, or wholesale at
	// drain finalize). hold keeps finishDrain from firing while the
	// relocation can still add pairs — pending may transiently hit zero
	// before the relocation's log is final.
	reloc *gc.Relocation
	hold  bool
}

// prepareLazy replaces the eager transform phase inside the DSU pause. It
// runs the class transformers exactly as eager mode does (statics must be
// correct before the program resumes), then tags every log pair the class
// transformers did not already force-transform and arms the read barrier.
// Returns (nil, nil) when the class transformers drained every pair — the
// caller then finishes the pause exactly like eager mode. On error the
// caller fails the update; no tag or hook survives (tagging happens after
// the only fallible step).
func (e *Engine) prepareLazy(p *Pending, spec *upt.Spec, transformers *rt.Class, gcRes *gc.Result, cleanup func()) (*lazyDrain, error) {
	v := e.VM
	ld := &lazyDrain{
		e:            e,
		spec:         spec,
		opts:         p.Opts,
		transformers: transformers,
		log:          gcRes.Log,
		oldForNew:    gcRes.OldForNew,
		status:       make(map[rt.Addr]int, len(gcRes.Log)),
		stats:        &p.stats,
		cleanup:      cleanup,
		scratch:      gcRes.ScratchWords > 0,
	}

	// Class transformers run in-pause in both modes. forceTransform from
	// one drains pairs early through ld.transform (status stDone, never
	// tagged); collection stays disabled for the duration exactly as in
	// the eager phase.
	v.GCDisabled = true
	v.DSUForceTransform = ld.transform
	err := e.runClassTransformers(p, spec, transformers)
	v.GCDisabled = false
	if err != nil {
		v.DSUForceTransform = nil
		return nil, err
	}

	for _, pair := range ld.log {
		if ld.status[pair.New] != stDone {
			v.Heap.MarkUntransformed(pair.New)
			ld.pending++
		}
	}
	p.stats.LazyPending = ld.pending
	p.stats.TransformedObjects = len(ld.log) - ld.pending
	if ld.pending == 0 {
		// The class transformers forced every pair; nothing to drain.
		v.DSUForceTransform = nil
		return nil, nil
	}

	// Arm. DSUForceTransform stays installed for the whole drain window so
	// Jvolve.forceTransform keeps working from barrier-invoked transformer
	// context, with the same cycle detection as the eager phase.
	ld.sealed = time.Now()
	v.DSULazyTouch = ld.transform
	v.DSULazyDrain = ld.forceAll
	e.lazy = ld
	return ld, nil
}

// transform retires one pair: the read barrier's slow path, the
// Jvolve.forceTransform hook, and the forced-drain worker are all this
// function. Unlike the eager phase, a transformer error after the pause
// cannot fail the update — the program already resumed on the new version —
// so the policy is done-with-defaults: the object keeps whatever fields the
// collector initialized (the §3.4 data-loss failure mode), the error is
// recorded and returned, and the touching thread is killed by the caller.
func (ld *lazyDrain) transform(newAddr rt.Addr) error {
	if newAddr == rt.Null {
		return nil
	}
	v := ld.e.VM
	switch ld.status[newAddr] {
	case stDone:
		return nil
	case stInProgress:
		return fmt.Errorf("core: transformer cycle detected at object @%d; aborting update", newAddr)
	}
	oldCopy, updated := ld.oldForNew[newAddr]
	if !updated && ld.reloc != nil {
		// Deferred-pair mode: the relocation drain creates pairs the pause
		// never saw. Adopt on first touch — the pair joins the log and the
		// pending count exactly as if the pause had tagged it.
		if oc, ok := ld.reloc.DeferredOldFor(newAddr); ok {
			oldCopy, updated = oc, true
			ld.log = append(ld.log, gc.Pair{New: newAddr, OldCopy: oc})
			ld.oldForNew[newAddr] = oc
			ld.pending++
			ld.stats.LazyPending++
			// PairsLogged tracks the pair log wherever pairs are created; in
			// deferred mode that is here rather than in the pause, keeping the
			// chain-wide conservation law (TransformedObjects == PairsLogged
			// after the terminal drain) mode-blind.
			ld.stats.PairsLogged++
		}
	}
	if !updated {
		return nil // not an updated object: nothing to do
	}
	ld.status[newAddr] = stInProgress
	// Clear the tag before running the transformer: its own reads and
	// writes of the half-built object must not re-fire the barrier (the
	// cycle check above still catches true cycles via forceTransform).
	tagged := v.Heap.Untransformed(newAddr)
	if tagged {
		v.Heap.ClearUntransformed(newAddr)
	}
	err := ld.run(newAddr, oldCopy)
	ld.status[newAddr] = stDone
	if err != nil && ld.firstErr == nil {
		ld.firstErr = err
	}
	if tagged {
		// Only pairs tagged at pause end count against pending; a pair
		// drained by a class transformer inside the pause went through
		// here untagged and is accounted eagerly.
		ld.completed()
	}
	return err
}

// run executes one object transformer — the native bulk copy for generated
// defaults under FastDefaults, interpreted jvolveObject otherwise. The log
// and the scratch-resident old copies hold raw addresses, so collection is
// disabled around every (possibly nested) transformer run; the flag nests
// because a barrier-invoked transformer can force-transform its neighbors.
func (ld *lazyDrain) run(newAddr, oldCopy rt.Addr) error {
	v := ld.e.VM
	wasDisabled := v.GCDisabled
	v.GCDisabled = true
	defer func() { v.GCDisabled = wasDisabled }()

	if ld.reloc != nil {
		// Heal the old copy's slots to canonical addresses before the
		// transformer reads them: the native bulk path copies raw words, and
		// a stale from-space reference copied into an already-scanned shell
		// would never be healed again.
		ld.reloc.HealObject(oldCopy)
	}
	newCls := v.Reg.ClassByID(v.Heap.ClassID(newAddr))
	oldCls := v.Reg.ClassByID(v.Heap.ClassID(oldCopy))
	if newCls == nil || oldCls == nil {
		return fmt.Errorf("core: transformer: unknown class for pair @%d/@%d", newAddr, oldCopy)
	}
	if ld.opts.FastDefaults && ld.spec.DefaultObjectTransformers[newCls.Name] {
		nativeObjectTransform(v, newCls, oldCls, ld.spec.OldFlatDefs[oldCls.Name], newAddr, oldCopy)
		ld.stats.BulkTransformed++
		v.Rec.Emit(obs.KTransformerApplied, obs.LaneEngine, 1, "default:"+newCls.Name)
		return nil
	}
	sig := classfile.Sig("(L" + newCls.Name + ";L" + oldCls.Name + ";)V")
	tm := ld.transformers.Method("jvolveObject", sig)
	if tm == nil {
		return fmt.Errorf("core: no object transformer jvolveObject%s", sig)
	}
	if err := v.RunSynchronous("jvolveObject:"+newCls.Name, tm,
		[]rt.Value{rt.RefVal(newAddr), rt.RefVal(oldCopy)}); err != nil {
		return fmt.Errorf("core: object transformer for %s: %w", newCls.Name, err)
	}
	ld.stats.BytecodeTransformed++
	v.Rec.Emit(obs.KTransformerApplied, obs.LaneEngine, 1, "jvolveObject:"+newCls.Name)
	return nil
}

// completed books one retired tagged pair and finishes the drain at zero.
func (ld *lazyDrain) completed() {
	ld.stats.TransformedObjects++
	if ld.forcing {
		ld.stats.LazyForced++
	} else {
		ld.stats.LazyDrained++
	}
	if m := ld.e.VM.Metrics; m != nil {
		if ld.forcing {
			m.Counter(obs.MLazyForced).Add(1)
		} else {
			m.Counter(obs.MLazyDrained).Add(1)
		}
		m.Histogram(obs.MLazyDrainLatency, obs.DurationBuckets()).Observe(time.Since(ld.sealed).Seconds())
	}
	ld.pending--
	if ld.pending == 0 && !ld.hold {
		ld.finishDrain()
	}
}

// forceAll retires every remaining tagged pair. Callers: vm.CollectGarbage
// (a flip would invalidate the log's raw addresses), Engine.handle on a
// follow-up update (the new pause must not find a half-drained heap), and
// the harness-facing Engine.ForceDrain. Individual transformer errors do
// not stop the drain — affected objects keep defaults — and the first one
// is returned for the caller to report.
func (ld *lazyDrain) forceAll() error {
	if ld.done {
		return ld.firstErr
	}
	ld.forcing = true
	for _, pair := range ld.log {
		if ld.done {
			break
		}
		if ld.e.VM.Heap.Untransformed(pair.New) {
			_ = ld.transform(pair.New) // recorded in firstErr; drain must finish
		}
	}
	ld.forcing = false
	if !ld.done && !ld.hold {
		// Defensive: no tagged pair may remain after a full log walk. (With
		// hold set the log is not final — the relocation drain can still add
		// pairs — so the walk above is best-effort and the drain stays open
		// until adoptReloc lifts the hold.)
		ld.pending = 0
		ld.finishDrain()
	}
	return ld.firstErr
}

// finishDrain retires the drain: disarm the barrier, drop the hooks, and
// run the pause's deferred teardown — unregister the renamed old versions
// and transformer class, reclaim the scratch region. After this the VM is
// indistinguishable from one that updated eagerly.
func (ld *lazyDrain) finishDrain() {
	if ld.done {
		return
	}
	ld.done = true
	v := ld.e.VM
	v.DSULazyTouch = nil
	v.DSULazyDrain = nil
	v.DSUForceTransform = nil
	ld.e.lazy = nil
	ld.cleanup()
	if ld.scratch {
		v.Heap.ResetScratch()
	}
}

// abortPause unwinds an armed drain while still inside the pause (a clinit
// of an added class failed after prepareLazy armed the barrier): clear
// every tag, uninstall the hooks, reclaim scratch. The update's cleanup is
// NOT run here — the failure path in apply runs it via fail().
func (ld *lazyDrain) abortPause() {
	if ld.done {
		return
	}
	ld.done = true
	v := ld.e.VM
	for _, pair := range ld.log {
		v.Heap.ClearUntransformed(pair.New)
	}
	v.DSULazyTouch = nil
	v.DSULazyDrain = nil
	v.DSUForceTransform = nil
	ld.e.lazy = nil
	if ld.scratch {
		v.Heap.ResetScratch()
	}
}

// LazyBacklog reports how many pairs are still tagged behind the read
// barrier — the drain backlog — or 0 outside a drain window. It is the
// gauge the stream obs plane samples after every chain step.
func (e *Engine) LazyBacklog() int {
	if e.lazy == nil {
		return 0
	}
	return e.lazy.pending
}

// ForceDrain force-completes any in-flight concurrent relocation drain and
// any in-flight lazy-transform drain, in that order (the lazy transformers
// read old copies whose slots the relocation heals, and in deferred-pair
// mode the relocation's finalize is what makes the lazy log final). It
// returns the first error recorded: a relocation failure is fatal to the
// heap; a transformer error is the affected objects' data loss. No-op
// outside a drain window.
func (e *Engine) ForceDrain() error {
	var firstErr error
	if e.reloc != nil {
		firstErr = e.reloc.force()
	}
	if e.lazy != nil {
		if err := e.lazy.forceAll(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
