package core_test

import (
	"strings"
	"testing"

	"govolve/internal/core"
	"govolve/internal/obs"
)

// armGates attaches a metrics registry and a gate engine to a fixture.
func armGates(f *fixture, specs []obs.GateSpec, policy core.GatePolicy) (*obs.Registry, *obs.GateEngine) {
	reg := obs.NewRegistry()
	f.vm.AttachObs(nil, reg)
	ge := obs.NewGateEngine(specs, 0, reg)
	f.engine.AttachGates(ge, policy)
	return reg, ge
}

// failingPauseGate is the deterministic FAIL injection: a real DSU pause is
// always > 0 seconds, so a zero pause budget trips on every applied update,
// on any host, every run.
func failingPauseGate() []obs.GateSpec {
	return []obs.GateSpec{
		{Name: "pause-budget", Metric: obs.MPauseTotal, Agg: obs.AggSum, Cmp: obs.CmpLE, Threshold: 0, WallClock: true},
	}
}

func TestUpdateVerdictAllGreen(t *testing.T) {
	f := newFixture(t, 1<<16)
	_, ge := armGates(f, nil, core.GateObserve)
	v1 := f.load(bodyV1)
	v2 := f.prog(strings.Replace(bodyV1, "const 1\n    return", "const 2\n    return", 1))
	f.spawn("App")
	f.vm.Step(1)

	res := f.mustApply("1", v1, v2, "")
	v := res.Verdict
	if v == nil {
		t.Fatal("applied update carried no verdict")
	}
	if !v.Pass || v.Violated != "" {
		t.Fatalf("all-green update judged %s", v)
	}
	if v.Outcome != "applied" || v.Tag != "1" {
		t.Fatalf("verdict identity %+v", v)
	}
	if len(v.Results) != len(obs.DefaultGateSpecs()) {
		t.Fatalf("verdict evaluated %d gates, want every default spec", len(v.Results))
	}
	if ge.Last() != v || ge.Total() != 1 {
		t.Fatal("verdict not recorded in the engine ring")
	}
	if f.engine.Halted() != nil {
		t.Fatal("observe policy halted the engine")
	}
}

func TestInjectedRegressionFailsDeterministically(t *testing.T) {
	// Two independent fixtures; both must fail the same gate the same way.
	for run := 0; run < 2; run++ {
		f := newFixture(t, 1<<16)
		reg, _ := armGates(f, failingPauseGate(), core.GateObserve)
		v1 := f.load(bodyV1)
		v2 := f.prog(strings.Replace(bodyV1, "const 1\n    return", "const 2\n    return", 1))
		f.spawn("App")
		f.vm.Step(1)

		res := f.mustApply("1", v1, v2, "")
		v := res.Verdict
		if v == nil || v.Pass {
			t.Fatalf("run %d: zero pause budget passed: %s", run, v)
		}
		if v.Violated != "pause-budget" {
			t.Fatalf("run %d: violated gate %q, want pause-budget", run, v.Violated)
		}
		if !strings.Contains(v.String(), "FAIL gate=pause-budget") {
			t.Fatalf("run %d: verdict line %q does not name the gate", run, v.String())
		}
		// The judgment is on the scrape plane too.
		if reg.Counter(obs.MGateFail).Value() != 1 || reg.Gauge(obs.MGateLastPass).Value() != 0 {
			t.Fatalf("run %d: gate series not published", run)
		}
	}
}

func TestGateHaltPolicyBlocksUpdatesUntilCleared(t *testing.T) {
	f := newFixture(t, 1<<16)
	armGates(f, failingPauseGate(), core.GateHalt)
	v1 := f.load(bodyV1)
	v2 := f.prog(strings.Replace(bodyV1, "const 1\n    return", "const 2\n    return", 1))
	f.spawn("App")
	f.vm.Step(1)

	res := f.mustApply("1", v1, v2, "")
	hv := f.engine.Halted()
	if hv == nil || hv != res.Verdict {
		t.Fatalf("halt verdict %v, want the failing verdict", hv)
	}

	// The chain is stopped: the next request is refused, naming the policy.
	v3 := f.prog(strings.Replace(bodyV1, "const 1\n    return", "const 3\n    return", 1))
	if _, err := f.update("2", v2, v3, "", core.Options{}); err == nil ||
		!strings.Contains(err.Error(), "halted by gate policy") {
		t.Fatalf("post-halt update err = %v, want gate-policy refusal", err)
	}

	// ClearHalt is the operator override: updates flow again.
	f.engine.ClearHalt()
	if f.engine.Halted() != nil {
		t.Fatal("ClearHalt left the engine halted")
	}
	res2, err := f.update("2", v2, v3, "", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcome != core.Applied {
		t.Fatalf("post-clear update %v (%v)", res2.Outcome, res2.Err)
	}
	if got := strings.TrimSpace(f.finish()); got != "3" {
		t.Fatalf("answer = %q, want 3", got)
	}
}

func TestGateForceDrainPolicySettlesLazyResidue(t *testing.T) {
	f := newLazyFixture(t, 1<<16, 1<<12)
	armGates(f, failingPauseGate(), core.GateForceDrain)
	v1 := f.load(lazyV1)
	v2 := f.prog(strings.Replace(lazyV1, "class Box {\n  field v I",
		"class Box {\n  field pad LString;\n  field v I", 1))
	f.spawn("App")
	f.vm.Step(1)

	res := f.mustApply("1", v1, v2, "")
	if res.Verdict == nil || res.Verdict.Pass {
		t.Fatalf("verdict %s, want FAIL", res.Verdict)
	}
	// The FAIL triggered a force drain inside judge: no lazy residue survives
	// the verdict even though the update itself deferred every pair.
	if res.Stats.LazyPending == 0 {
		t.Fatal("update deferred nothing; test needs a lazy residue")
	}
	if f.vm.LazyDrainActive() {
		t.Fatal("force-drain policy left the lazy drain active")
	}
	if got := f.engine.LazyBacklog(); got != 0 {
		t.Fatalf("lazy backlog %d after force-drain policy", got)
	}
}
