package core

import (
	"time"

	"govolve/internal/gc"
	"govolve/internal/obs"
	"govolve/internal/rt"
	"govolve/internal/upt"
)

// relocHandle owns the engine side of one concurrent relocation drain
// (vm.Options.ConcurrentReloc): the post-pause residue that the gc layer's
// Relocation cannot retire by itself, because finalization must happen on the
// mutator goroutine and must be sequenced against the update's deferred
// teardown — unregistering the renamed old class versions (the drain sizes
// old copies by their old class ids), reclaiming the scratch region, and, in
// deferred-pair mode, handing the drain-created pairs to the lazy transform
// pipeline.
//
// Lifetime: apply creates it right after CollectReloc succeeds and installs
// the VM's DSURelocForce hook immediately (a clinit-triggered collection must
// be able to force-complete the drain even before the world resumes). On the
// success path apply calls rl.Start() — still inside the pause — and installs
// DSURelocTick; the scheduler then polls tick between slices and finalize
// runs the moment the background workers report termination. Collections,
// follow-up updates, and Engine.ForceDrain force-complete an unfinished
// drain instead of waiting.
type relocHandle struct {
	e       *Engine
	rl      *gc.Relocation
	stats   *Stats
	cleanup func()
	// scratch records that the scratch region holds old copies the drain
	// still reads (eager pause copies, or deferred-pair copies to come) and
	// must be reclaimed at finalize.
	scratch bool
	// ld is the lazy drain adopting deferred pairs (deferPairs mode), nil in
	// eager-transform mode.
	ld *lazyDrain

	finalized bool
}

// tick is the scheduler's between-slices poll (vm.DSURelocTick). While the
// drain runs it costs two atomic loads; termination (or failure) triggers
// finalize on the mutator goroutine.
func (rh *relocHandle) tick() {
	if rh.finalized || !rh.rl.Done() {
		return
	}
	rh.finalize()
}

// force force-completes the drain on the mutator goroutine and finalizes.
// Installed as vm.DSURelocForce: collections call it before flipping (a flip
// cannot run with from-space held), and follow-up updates call it before
// building their own pause.
func (rh *relocHandle) force() error {
	if rh.finalized {
		return nil
	}
	err := rh.rl.ForceDrain()
	rh.finalize()
	return err
}

// finalize retires the drain: join the workers, disarm the load barrier,
// stamp the drain statistics into the update's Stats, and run the update's
// deferred teardown. In deferred-pair mode the teardown is handed to the lazy
// drain instead — it still needs the old class versions and the scratch-
// resident old copies until its last pair transforms. Idempotent; mutator
// goroutine only.
func (rh *relocHandle) finalize() {
	if rh.finalized {
		return
	}
	rh.finalized = true
	v := rh.e.VM
	stats, err := rh.rl.Finish()
	rh.stamp(stats)
	v.DSURelocTick = nil
	v.DSURelocForce = nil
	if rh.e.reloc == rh {
		rh.e.reloc = nil
	}
	if err != nil {
		// The drain failed post-flip (to-space exhausted mid-evacuation):
		// from-space was never fully evacuated, so some slots still hold
		// from-space addresses and the barrier that made them readable is
		// now gone. The heap is unusable — the same contract as a failed
		// stop-the-world collection.
		v.MarkHeapUnusable(err)
		if rh.ld != nil && !rh.ld.done {
			for _, pair := range rh.rl.DeferredPairs() {
				v.Heap.ClearUntransformed(pair.New)
			}
			rh.ld.hold = false
			rh.ld.abortPause()
		}
		rh.cleanup()
		if rh.scratch && (rh.ld == nil || !rh.ld.scratch) {
			v.Heap.ResetScratch()
		}
		return
	}
	if rh.ld != nil {
		// Deferred-pair mode: the lazy drain adopts every pair the
		// relocation created and owns cleanup + scratch from here.
		rh.ld.adoptReloc(rh.rl.DeferredPairs())
		return
	}
	rh.cleanup()
	if rh.scratch {
		v.Heap.ResetScratch()
	}
}

// failApply retires the drain on an in-pause post-flip failure path (a
// transformer or clinit error after CollectReloc armed the barrier): force-
// complete inline so the world never resumes with from-space held, clear any
// deferred-pair tags (their lazy drain is being unwound), and reclaim
// scratch. The update's cleanup runs via apply's fail(). The heap itself
// stays usable — the forced drain leaves every slot canonical, and the
// failure's data loss is the transformer contract, not heap corruption.
func (rh *relocHandle) failApply() {
	if rh.finalized {
		return
	}
	rh.finalized = true
	v := rh.e.VM
	_ = rh.rl.ForceDrain()
	stats, err := rh.rl.Finish()
	rh.stamp(stats)
	v.DSURelocTick = nil
	v.DSURelocForce = nil
	if rh.e.reloc == rh {
		rh.e.reloc = nil
	}
	if err != nil {
		v.MarkHeapUnusable(err)
	}
	for _, pair := range rh.rl.DeferredPairs() {
		v.Heap.ClearUntransformed(pair.New)
	}
	if rh.scratch {
		v.Heap.ResetScratch()
	}
}

// stamp books the drain's terminal statistics into the update's Stats (which
// finish() repoints at the sealed Result, mirroring the lazy pipeline) and
// publishes the relocation metrics.
func (rh *relocHandle) stamp(st gc.RelocStats) {
	s := rh.stats
	s.RelocObjects = st.Objects
	s.RelocWords = st.Words
	s.RelocScratchWords = st.ScratchWords
	s.RelocHealedSlots = st.HealedSlots
	s.RelocDeferredPairs = st.DeferredPairs
	s.RelocSteals = st.Steals
	s.RelocDrain = st.Drain
	if m := rh.e.VM.Metrics; m != nil {
		m.Counter(obs.MRelocObjects).Add(int64(st.Objects))
		m.Counter(obs.MRelocHealedSlots).Add(int64(st.HealedSlots))
		m.Gauge(obs.MRelocBacklog).Set(0)
		m.Histogram(obs.MRelocDrainLatency, obs.DurationBuckets()).Observe(st.Drain.Seconds())
	}
}

// prepareLazyDeferred is the transform phase when concurrent relocation and
// lazy transformation compose (full deferral): the pause created no pairs
// except those the root remap forced, and the drain will create the rest as
// it discovers updated-class instances. The lazy drain therefore starts with
// a (nearly) empty log and grows: the read barrier adopts drain-created
// pairs on first touch (lazyDrain.transform's DeferredOldFor fallback), and
// relocHandle.finalize adopts whatever the mutator never touched. hold keeps
// the drain from declaring itself finished — and tearing down the old class
// versions the relocation still needs — while pairs can still appear.
//
// Hooks are armed BEFORE the class transformers run, unlike prepareLazy:
// a class transformer that force-transforms an object it dereferences may
// hit a pair only the relocation knows about, and ld.transform needs the
// fallback (and the installed DSUForceTransform) to resolve it.
func (e *Engine) prepareLazyDeferred(p *Pending, spec *upt.Spec, transformers *rt.Class, rl *gc.Relocation, cleanup func()) (*lazyDrain, error) {
	v := e.VM
	ld := &lazyDrain{
		e:            e,
		spec:         spec,
		opts:         p.Opts,
		transformers: transformers,
		oldForNew:    make(map[rt.Addr]rt.Addr),
		status:       make(map[rt.Addr]int),
		stats:        &p.stats,
		cleanup:      cleanup,
		scratch:      v.Heap.HasScratch(),
		reloc:        rl,
		hold:         true,
	}
	// Adopt the pairs the pause itself forced (root-remap evacuations of
	// updated-class instances).
	for _, pair := range rl.DeferredPairs() {
		ld.log = append(ld.log, pair)
		ld.oldForNew[pair.New] = pair.OldCopy
		p.stats.PairsLogged++
		if v.Heap.Untransformed(pair.New) {
			ld.pending++
		}
	}
	ld.sealed = time.Now()
	v.DSULazyTouch = ld.transform
	v.DSULazyDrain = ld.forceAll
	v.DSUForceTransform = ld.transform
	e.lazy = ld

	v.GCDisabled = true
	err := e.runClassTransformers(p, spec, transformers)
	v.GCDisabled = false
	if err != nil {
		v.DSULazyTouch = nil
		v.DSULazyDrain = nil
		v.DSUForceTransform = nil
		e.lazy = nil
		return nil, err
	}
	p.stats.LazyPending = ld.pending
	return ld, nil
}

// adoptReloc hands the relocation's deferred pairs to the lazy drain at
// drain finalize. Pairs the barrier already adopted (and possibly
// transformed) are skipped; the rest join the log as ordinary tagged pairs.
// With the relocation done the log is final, so hold lifts — if the barrier
// drained everything already, the lazy drain finishes here too.
func (ld *lazyDrain) adoptReloc(pairs []gc.Pair) {
	v := ld.e.VM
	for _, pair := range pairs {
		if _, ok := ld.oldForNew[pair.New]; ok {
			continue
		}
		ld.log = append(ld.log, pair)
		ld.oldForNew[pair.New] = pair.OldCopy
		ld.stats.PairsLogged++
		if ld.status[pair.New] == stNone && v.Heap.Untransformed(pair.New) {
			ld.pending++
		}
	}
	ld.stats.LazyPending = ld.stats.LazyDrained + ld.stats.LazyForced + ld.pending
	ld.hold = false
	if ld.pending == 0 && !ld.done {
		ld.finishDrain()
	}
}

// RelocBacklog reports how many words of live data the in-flight relocation
// drain still has to evacuate or scan — 0 outside a drain window. The stream
// obs plane samples it after every chain step, next to LazyBacklog.
func (e *Engine) RelocBacklog() int {
	if e.reloc == nil {
		return 0
	}
	return e.reloc.rl.Backlog()
}

// RelocDrainActive reports whether a concurrent relocation drain is holding
// from-space live (the window between an applied ConcurrentReloc update and
// drain finalize).
func (e *Engine) RelocDrainActive() bool { return e.reloc != nil }
