package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"govolve/internal/core"
	"govolve/internal/rt"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

// TestDefaultTransformerProperty generates random pairs of class versions —
// random subsets of a field pool, some fields changing type between
// versions — populates an instance with known values, applies the update
// with UPT's generated default transformer, and checks the paper's default
// semantics field by field: unchanged name+type ⇒ value preserved; added
// or retyped ⇒ zero. Runs both the interpreted and the native bulk-copy
// strategies.
func TestDefaultTransformerProperty(t *testing.T) {
	type fieldSpec struct {
		name string
		// descV1/descV2: "" = absent in that version, else "I" or "[I".
		descV1, descV2 string
	}
	pool := []string{"fa", "fb", "fc", "fd", "fe", "ff", "fg", "fh"}

	build := func(specs []fieldSpec, version int) string {
		var b strings.Builder
		b.WriteString("class Thing {\n")
		for _, fs := range specs {
			d := fs.descV1
			if version == 2 {
				d = fs.descV2
			}
			if d != "" {
				fmt.Fprintf(&b, "  field %s %s\n", fs.name, d)
			}
		}
		b.WriteString(`  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class Holder {
  static field it LThing;
  static method main()V {
    new Thing
    dup
    invokespecial Thing.<init>()V
    putstatic Holder.it LThing;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    return
  }
}
`)
		return b.String()
	}

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var specs []fieldSpec
		for _, name := range pool {
			fs := fieldSpec{name: name}
			switch rng.Intn(4) {
			case 0: // stable int field
				fs.descV1, fs.descV2 = "I", "I"
			case 1: // added in v2
				fs.descV2 = "I"
			case 2: // deleted in v2
				fs.descV1 = "I"
			case 3: // type change I -> [I
				fs.descV1, fs.descV2 = "I", "[I"
			}
			if fs.descV1 != "" || fs.descV2 != "" {
				specs = append(specs, fs)
			}
		}
		if len(specs) == 0 {
			return true
		}
		fast := rng.Intn(2) == 1

		var out bytes.Buffer
		machine, err := vm.New(vm.Options{HeapWords: 1 << 16, Out: &out})
		if err != nil {
			return false
		}
		f := &fixture{t: t, vm: machine, out: &out, engine: core.NewEngine(machine)}
		v1 := f.prog(build(specs, 1))
		v2 := f.prog(build(specs, 2))
		if err := machine.LoadProgram(v1); err != nil {
			t.Logf("seed %d: load: %v", seed, err)
			return false
		}
		f.spawn("Holder")
		machine.Step(2)

		// Poke known values into the v1 instance via the registry.
		thing := machine.Reg.LookupClass("Thing")
		holder := machine.Reg.LookupClass("Holder")
		addr := machine.Reg.JTOC[holder.StaticField("it").Slot].Ref()
		wantVals := map[string]int64{}
		for i, fs := range specs {
			if fs.descV1 != "I" {
				continue
			}
			val := int64(1000 + i)
			machine.Heap.SetFieldValue(addr, thing.Field(fs.name).Offset, rt.IntVal(val))
			wantVals[fs.name] = val
		}

		spec, err := upt.Prepare("1", v1, v2)
		if err != nil {
			t.Logf("seed %d: prepare: %v", seed, err)
			return false
		}
		res, err := f.engine.ApplyNow(spec, core.Options{FastDefaults: fast})
		if err != nil || res.Outcome != core.Applied {
			t.Logf("seed %d: apply: %v / %v", seed, err, res)
			return false
		}

		newThing := machine.Reg.LookupClass("Thing")
		newAddr := machine.Reg.JTOC[machine.Reg.LookupClass("Holder").StaticField("it").Slot].Ref()
		for _, fs := range specs {
			if fs.descV2 == "" {
				continue
			}
			slot := newThing.Field(fs.name)
			if slot == nil {
				t.Logf("seed %d: field %s missing after update", seed, fs.name)
				return false
			}
			got := machine.Heap.FieldValue(newAddr, slot.Offset, slot.Desc.IsRef())
			switch {
			case fs.descV1 == "I" && fs.descV2 == "I":
				if got.Int() != wantVals[fs.name] {
					t.Logf("seed %d fast=%v: %s = %d, want %d", seed, fast, fs.name, got.Int(), wantVals[fs.name])
					return false
				}
			default: // added or retyped: default value
				if got.Bits != 0 {
					t.Logf("seed %d fast=%v: %s = %v, want zero", seed, fast, fs.name, got)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
