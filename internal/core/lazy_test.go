package core_test

import (
	"bytes"
	"strings"
	"testing"

	"govolve/internal/core"
	"govolve/internal/storm"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

// newLazyFixture is newFixture with lazy per-object transformation enabled.
func newLazyFixture(t *testing.T, heapWords, scratchWords int) *fixture {
	t.Helper()
	var out bytes.Buffer
	v, err := vm.New(vm.Options{
		HeapWords:     heapWords,
		ScratchWords:  scratchWords,
		LazyTransform: true,
		Out:           &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, vm: v, out: &out, engine: core.NewEngine(v)}
}

// lazyV1: two Box instances pinned in statics, set to 7 and 9, a long spin
// loop (the update window), then a read of a.v — the touch that fires the
// read barrier in lazy mode.
const lazyV1 = `
class Box {
  field v I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class App {
  static field a LBox;
  static field b LBox;
  static method main()V {
    new Box
    dup
    invokespecial Box.<init>()V
    putstatic App.a LBox;
    new Box
    dup
    invokespecial Box.<init>()V
    putstatic App.b LBox;
    getstatic App.a LBox;
    const 7
    putfield Box.v I
    getstatic App.b LBox;
    const 9
    putfield Box.v I
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.a LBox;
    getfield Box.v I
    invokestatic System.printInt(I)V
    return
  }
}
`

// rawBoxV reads a Box static's v field straight from the heap (no barrier).
func rawBoxV(t *testing.T, f *fixture, static string) int64 {
	t.Helper()
	app := f.vm.Reg.LookupClass("App")
	sf := app.StaticField(static)
	if sf == nil {
		t.Fatalf("App.%s missing", static)
	}
	a := f.vm.Reg.JTOC[sf.Slot].Ref()
	box := f.vm.Reg.ClassByID(f.vm.Heap.ClassID(a))
	fl := box.Field("v")
	if fl == nil {
		t.Fatalf("%s has no field v", box.Name)
	}
	return f.vm.Heap.FieldValue(a, fl.Offset, false).Int()
}

// TestLazyTransformDrainsOnTouch is the tentpole's end-to-end contract: the
// pause ends with every pair tagged (TransformedObjects=0, transform share
// of the pause ≈ 0), the renamed old version and scratch region outlive the
// pause under a drain-aware CheckVM, the read barrier transforms exactly
// what the program touches, and ForceDrain retires the rest — converging on
// the same final heap state and output as an eager run.
func TestLazyTransformDrainsOnTouch(t *testing.T) {
	f := newLazyFixture(t, 1<<16, 1<<12)
	v1 := f.load(lazyV1)
	v2 := f.prog(strings.Replace(lazyV1, "class Box {\n  field v I",
		"class Box {\n  field pad LString;\n  field v I", 1))
	f.spawn("App")
	f.vm.Step(1)

	res := f.mustApply("1", v1, v2, "")
	if res.Stats.LazyPending != 2 {
		t.Fatalf("LazyPending = %d, want 2", res.Stats.LazyPending)
	}
	if res.Stats.TransformedObjects != 0 {
		t.Fatalf("pause transformed %d objects in lazy mode, want 0", res.Stats.TransformedObjects)
	}
	if !f.vm.LazyDrainActive() {
		t.Fatal("drain not active after lazy update")
	}
	// Mid-drain the renamed old version and the scratch region must
	// survive (the drain needs them), and the drain-aware sweep must hold.
	if f.vm.Reg.LookupClass("v1_Box") == nil {
		t.Fatal("drain dropped the renamed old version it still needs")
	}
	if f.vm.Heap.ScratchUsed() == 0 {
		t.Fatal("scratch region reclaimed while old copies are still needed")
	}
	if err := storm.CheckVM(f.vm); err != nil {
		t.Fatalf("mid-drain invariant sweep: %v", err)
	}

	// The program touches a (prints its v) but never b.
	if got := strings.TrimSpace(f.finish()); got != "7" {
		t.Fatalf("output = %q, want 7 (field carried through lazy transform)", got)
	}
	if res.Stats.LazyDrained != 1 {
		t.Fatalf("LazyDrained = %d, want 1 (only a was touched)", res.Stats.LazyDrained)
	}
	if !f.vm.LazyDrainActive() {
		t.Fatal("drain retired early: b was never touched")
	}

	if err := f.engine.ForceDrain(); err != nil {
		t.Fatalf("ForceDrain: %v", err)
	}
	if res.Stats.LazyForced != 1 || res.Stats.LazyDrained != 1 {
		t.Fatalf("drained/forced = %d/%d, want 1/1", res.Stats.LazyDrained, res.Stats.LazyForced)
	}
	if res.Stats.TransformedObjects != 2 {
		t.Fatalf("TransformedObjects = %d after drain, want 2 (eager count)", res.Stats.TransformedObjects)
	}
	if f.vm.LazyDrainActive() {
		t.Fatal("drain still active after ForceDrain")
	}
	// Post-drain the VM must be indistinguishable from an eager update:
	// no renamed old version, no transformer class, empty scratch, and the
	// untouched object's field carried by the (forced) default transformer.
	if f.vm.Reg.LookupClass("v1_Box") != nil {
		t.Fatal("drain completion left the renamed old version registered")
	}
	if f.vm.Reg.LookupClass(upt.TransformersClassName) != nil {
		t.Fatal("drain completion left the transformer class registered")
	}
	if f.vm.Heap.ScratchUsed() != 0 {
		t.Fatal("drain completion left the scratch region populated")
	}
	if err := storm.CheckVM(f.vm); err != nil {
		t.Fatalf("post-drain invariant sweep: %v", err)
	}
	if got := rawBoxV(t, f, "b"); got != 9 {
		t.Fatalf("b.v = %d after forced drain, want 9", got)
	}
}

// TestLazyEagerSameOutput pins observational equivalence at the fixture
// level (the storm test covers it at scale): the same program and update
// produce identical output and identical final field values either way.
func TestLazyEagerSameOutput(t *testing.T) {
	run := func(lazy bool) (string, int64) {
		var f *fixture
		if lazy {
			f = newLazyFixture(t, 1<<16, 1<<12)
		} else {
			f = newFixture(t, 1<<16)
		}
		v1 := f.load(lazyV1)
		v2 := f.prog(strings.Replace(lazyV1, "class Box {\n  field v I",
			"class Box {\n  field pad LString;\n  field v I", 1))
		f.spawn("App")
		f.vm.Step(1)
		f.mustApply("1", v1, v2, "")
		out := strings.TrimSpace(f.finish())
		if err := f.engine.ForceDrain(); err != nil {
			t.Fatalf("ForceDrain: %v", err)
		}
		return out, rawBoxV(t, f, "b")
	}
	eagerOut, eagerB := run(false)
	lazyOut, lazyB := run(true)
	if eagerOut != lazyOut || eagerB != lazyB {
		t.Fatalf("eager (out=%q b=%d) != lazy (out=%q b=%d)", eagerOut, eagerB, lazyOut, lazyB)
	}
}

// lazyCycleV1 builds two mutually linked Pair objects, spins, then touches
// one — in lazy mode the touch runs the (pathological) transformer from
// barrier context.
const lazyCycleV1 = `
class Pair {
  field peer LPair;
  field w I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class App {
  static field a LPair;
  static method main()V {
    new Pair
    dup
    invokespecial Pair.<init>()V
    putstatic App.a LPair;
    new Pair
    dup
    invokespecial Pair.<init>()V
    getstatic App.a LPair;
    swap
    putfield Pair.peer LPair;
    getstatic App.a LPair;
    getfield Pair.peer LPair;
    getstatic App.a LPair;
    putfield Pair.peer LPair;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.a LPair;
    getfield Pair.w I
    invokestatic System.printInt(I)V
    return
  }
}
`

// TestLazyBarrierCycleLeavesVMServiceable: a transformer cycle detected
// from read-barrier context (post-pause!) kills only the touching thread;
// the drain completes done-with-defaults, the VM stays serviceable, and a
// follow-up update still applies. The eager analogue fails the whole
// update; lazily the update is already committed, so the failure is scoped
// to data loss plus the toucher.
func TestLazyBarrierCycleLeavesVMServiceable(t *testing.T) {
	f := newLazyFixture(t, 1<<16, 0)
	v1 := f.load(lazyCycleV1)
	v2 := f.prog(strings.Replace(lazyCycleV1, "field w I", "field w I\n  field extra I", 1))
	custom := `
class JvolveTransformers {
  static method jvolveObject(LPair;Lv1_Pair;)V {
    load 1
    getfield v1_Pair.peer LPair;
    ifnull done
    load 1
    getfield v1_Pair.peer LPair;
    invokestatic Jvolve.forceTransform(LObject;)V
  done:
    load 0
    load 1
    getfield v1_Pair.w I
    putfield Pair.w I
    return
  }
}
`
	f.spawn("App")
	f.vm.Step(1)
	res := f.mustApply("1", v1, v2, custom)
	if res.Stats.LazyPending != 2 {
		t.Fatalf("LazyPending = %d, want 2", res.Stats.LazyPending)
	}

	// Resume: main's getfield fires the barrier, the transformer chain
	// cycles, and the touching thread dies with the cycle error.
	if err := f.vm.Run(); err != nil {
		t.Fatal(err)
	}
	var killed *vm.Thread
	for _, th := range f.vm.Threads {
		if th.Err != nil {
			killed = th
		}
	}
	if killed == nil || !strings.Contains(killed.Err.Error(), "cycle") {
		t.Fatalf("touching thread not killed by cycle detection (threads: %v)", f.vm.Threads)
	}

	// The cycle unwound done-with-defaults: both chain members retired, so
	// the drain completed and the VM is clean.
	if f.vm.LazyDrainActive() {
		t.Fatal("drain still active after cycle unwound the whole chain")
	}
	// The error was already delivered to the touching thread; the retired
	// drain makes ForceDrain a no-op.
	if err := f.engine.ForceDrain(); err != nil {
		t.Fatalf("ForceDrain after retired drain: %v", err)
	}
	if f.vm.Reg.LookupClass("v1_Pair") != nil || f.vm.Reg.LookupClass(upt.TransformersClassName) != nil {
		t.Fatal("cycle abort left update debris registered")
	}
	if err := storm.CheckVM(f.vm); err != nil {
		t.Fatalf("invariant sweep after barrier cycle: %v", err)
	}

	// A benign follow-up update still applies.
	v3 := f.prog(strings.Replace(lazyCycleV1, "field w I", "field w I\n  field extra I", 1) +
		"\nclass Followup {\n  static method ok()I {\n    const 7\n    return\n  }\n}\n")
	res2, err := f.update("2", v2, v3, "", core.Options{})
	if err != nil {
		t.Fatalf("follow-up update: %v", err)
	}
	if res2.Outcome != core.Applied {
		t.Fatalf("follow-up outcome = %v err = %v, want Applied", res2.Outcome, res2.Err)
	}
}

// TestLazySecondUpdateForcesDrain: a follow-up update arriving mid-drain
// must force-complete the previous residue before its own pause — and the
// values must carry through both layout changes.
func TestLazySecondUpdateForcesDrain(t *testing.T) {
	f := newLazyFixture(t, 1<<16, 1<<12)
	v1 := f.load(lazyV1)
	v2src := strings.Replace(lazyV1, "class Box {\n  field v I",
		"class Box {\n  field pad LString;\n  field v I", 1)
	v2 := f.prog(v2src)
	v3 := f.prog(strings.Replace(v2src, "field v I", "field v I\n  field q I", 1))
	f.spawn("App")
	f.vm.Step(1)

	res1 := f.mustApply("1", v1, v2, "")
	if res1.Stats.LazyPending != 2 || res1.Stats.LazyDrained != 0 {
		t.Fatalf("update 1: pending=%d drained=%d, want 2/0", res1.Stats.LazyPending, res1.Stats.LazyDrained)
	}

	// Nothing touched; the second update must force the residue first.
	res2 := f.mustApply("2", v2, v3, "")
	if res1.Stats.LazyForced != 2 {
		t.Fatalf("update 2 did not force update 1's residue: forced=%d, want 2", res1.Stats.LazyForced)
	}
	if res2.Stats.LazyPending != 2 {
		t.Fatalf("update 2: LazyPending = %d, want 2", res2.Stats.LazyPending)
	}
	if err := f.engine.ForceDrain(); err != nil {
		t.Fatalf("ForceDrain: %v", err)
	}
	if got := rawBoxV(t, f, "a"); got != 7 {
		t.Fatalf("a.v = %d after two lazy updates, want 7", got)
	}
	if got := rawBoxV(t, f, "b"); got != 9 {
		t.Fatalf("b.v = %d after two lazy updates, want 9", got)
	}
	if err := storm.CheckVM(f.vm); err != nil {
		t.Fatalf("invariant sweep: %v", err)
	}
	if got := strings.TrimSpace(f.finish()); got != "7" {
		t.Fatalf("output = %q, want 7", got)
	}
}

// TestLazyDrainForcedByCollection: a collection arriving mid-drain would
// invalidate the pair log's raw addresses and reclaim the old copies, so
// CollectGarbage must force-complete the residue first.
func TestLazyDrainForcedByCollection(t *testing.T) {
	f := newLazyFixture(t, 1<<16, 1<<12)
	v1 := f.load(lazyV1)
	v2 := f.prog(strings.Replace(lazyV1, "class Box {\n  field v I",
		"class Box {\n  field pad LString;\n  field v I", 1))
	f.spawn("App")
	f.vm.Step(1)

	res := f.mustApply("1", v1, v2, "")
	if res.Stats.LazyPending != 2 {
		t.Fatalf("LazyPending = %d, want 2", res.Stats.LazyPending)
	}
	if _, err := f.vm.CollectGarbage(); err != nil {
		t.Fatalf("collection mid-drain: %v", err)
	}
	if f.vm.LazyDrainActive() {
		t.Fatal("collection ran without forcing the drain")
	}
	if res.Stats.LazyForced != 2 {
		t.Fatalf("LazyForced = %d after collection, want 2", res.Stats.LazyForced)
	}
	if got := rawBoxV(t, f, "a"); got != 7 {
		t.Fatalf("a.v = %d after collection-forced drain, want 7", got)
	}
	if got := rawBoxV(t, f, "b"); got != 9 {
		t.Fatalf("b.v = %d after collection-forced drain, want 9", got)
	}
	if err := storm.CheckVM(f.vm); err != nil {
		t.Fatalf("invariant sweep: %v", err)
	}
	if got := strings.TrimSpace(f.finish()); got != "7" {
		t.Fatalf("output = %q, want 7", got)
	}
}
