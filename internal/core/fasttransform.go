package core

import (
	"govolve/internal/rt"
	"govolve/internal/vm"
)

// nativeObjectTransform performs exactly what a UPT-generated default
// object transformer does — copy every instance field whose name and type
// are unchanged, leaving new and retyped fields at their default values —
// as a direct word copy instead of interpreted bytecode. The paper
// identifies this gap in §4.1: "a naively compiled field-by-field copy is
// much slower than the collector's highly-optimized copying loop"; this is
// the optimized path (enabled by Options.FastDefaults).
func nativeObjectTransform(v *vm.VM, newCls, oldCls *rt.Class, newAddr, oldCopy rt.Addr) {
	for i := range newCls.Fields {
		nf := &newCls.Fields[i]
		of := oldCls.Field(nf.Name)
		if of == nil || of.Desc != nf.Desc {
			continue
		}
		v.Heap.SetWord(newAddr+rt.Addr(nf.Offset), v.Heap.Word(oldCopy+rt.Addr(of.Offset)))
	}
}

// nativeClassTransform is the bulk-copy analog of a generated default class
// transformer: statics declared by the old class with unchanged name and
// type are copied JTOC-slot to JTOC-slot.
func nativeClassTransform(v *vm.VM, newCls, oldCls *rt.Class) {
	for i := range newCls.Statics {
		ns := &newCls.Statics[i]
		for j := range oldCls.Statics {
			os := &oldCls.Statics[j]
			if os.Name == ns.Name && os.Desc == ns.Desc {
				v.Reg.JTOC[ns.Slot] = v.Reg.JTOC[os.Slot]
				break
			}
		}
	}
}
