package core_test

import (
	"bytes"
	"testing"

	"govolve/internal/core"
	"govolve/internal/vm"
)

// End-to-end coverage of the concurrent-relocation update pipeline: the DSU
// pause stops at flip preparation, the world resumes with from-space still
// live behind the self-healing load barrier, and the remaining live set is
// evacuated by background relocator workers racing the mutator. The
// observable outcome (program output, update success, transformed state)
// must be identical to the fused stop-the-world pipeline's; only the pause
// decomposition and the drain-side stats differ.

// newRelocFixture builds a fixture with concurrent relocation enabled,
// optionally composed with concurrent marking and lazy transformation.
func newRelocFixture(t *testing.T, heapWords, gcWorkers int, cmark, lazy bool) *fixture {
	t.Helper()
	var out bytes.Buffer
	opts := vm.Options{
		HeapWords:        heapWords,
		Out:              &out,
		GCWorkers:        gcWorkers,
		GCConcurrentMark: cmark,
		ConcurrentReloc:  true,
		LazyTransform:    lazy,
	}
	if lazy {
		opts.ScratchWords = heapWords / 2
	}
	v, err := vm.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, vm: v, out: &out, engine: core.NewEngine(v)}
}

// drain force-completes any in-flight relocation/lazy residue so the final
// stats are stamped and the heap is back to its quiescent state.
func (f *fixture) drain() {
	f.t.Helper()
	if err := f.engine.ForceDrain(); err != nil {
		f.t.Fatalf("ForceDrain: %v", err)
	}
}

// relocV1 is ringV1 with ballast: 300 Pad objects (a class the update does
// NOT touch) are linked into a static list before the Node ring is built.
// At the update's safe point the live set is therefore a mix — the pause
// eagerly evacuates only the Nodes, and the Pads are exactly the population
// the concurrent drain (workers + load barrier) must move afterwards.
const relocV1 = `
class Pad {
  field a I
  field next LPad;
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class Node {
  field val I
  field next LNode;
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Node.val I
    return
  }
}
class App {
  static field head LNode;
  static field first LNode;
  static field pads LPad;
  static method main()V {
    const 0
    store 0
  padloop:
    load 0
    const 300
    if_icmpge seed
    new Pad
    dup
    invokespecial Pad.<init>()V
    store 1
    load 1
    getstatic App.pads LPad;
    putfield Pad.next LPad;
    load 1
    putstatic App.pads LPad;
    load 0
    const 1
    add
    store 0
    goto padloop
  seed:
    new Node
    dup
    const 0
    invokespecial Node.<init>(I)V
    dup
    putstatic App.head LNode;
    putstatic App.first LNode;
    const 1
    store 0
  build:
    load 0
    const 200
    if_icmpge link
    new Node
    dup
    load 0
    invokespecial Node.<init>(I)V
    store 1
    load 1
    getstatic App.head LNode;
    putfield Node.next LNode;
    load 1
    putstatic App.head LNode;
    load 0
    const 1
    add
    store 0
    goto build
  link:
    getstatic App.first LNode;
    getstatic App.head LNode;
    putfield Node.next LNode;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    getstatic App.head LNode;
    getfield Node.next LNode;
    putstatic App.head LNode;
    getstatic App.head LNode;
    getstatic App.head LNode;
    getfield Node.next LNode;
    getfield Node.next LNode;
    putfield Node.next LNode;
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.head LNode;
    getfield Node.val I
    invokestatic System.printInt(I)V
    getstatic App.pads LPad;
    getfield Pad.a I
    invokestatic System.printInt(I)V
    return
  }
}
`

// relocV2 widens Node with a generation counter; Pad and App are unchanged,
// so the program's output is version-invariant.
const relocV2 = `
class Pad {
  field a I
  field next LPad;
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class Node {
  field val I
  field next LNode;
  field gen I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Node.val I
    return
  }
}
class App {
  static field head LNode;
  static field first LNode;
  static field pads LPad;
  static method main()V {
    const 0
    store 0
  padloop:
    load 0
    const 300
    if_icmpge seed
    new Pad
    dup
    invokespecial Pad.<init>()V
    store 1
    load 1
    getstatic App.pads LPad;
    putfield Pad.next LPad;
    load 1
    putstatic App.pads LPad;
    load 0
    const 1
    add
    store 0
    goto padloop
  seed:
    new Node
    dup
    const 0
    invokespecial Node.<init>(I)V
    dup
    putstatic App.head LNode;
    putstatic App.first LNode;
    const 1
    store 0
  build:
    load 0
    const 200
    if_icmpge link
    new Node
    dup
    load 0
    invokespecial Node.<init>(I)V
    store 1
    load 1
    getstatic App.head LNode;
    putfield Node.next LNode;
    load 1
    putstatic App.head LNode;
    load 0
    const 1
    add
    store 0
    goto build
  link:
    getstatic App.first LNode;
    getstatic App.head LNode;
    putfield Node.next LNode;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    getstatic App.head LNode;
    getfield Node.next LNode;
    putstatic App.head LNode;
    getstatic App.head LNode;
    getstatic App.head LNode;
    getfield Node.next LNode;
    getfield Node.next LNode;
    putfield Node.next LNode;
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.head LNode;
    getfield Node.val I
    invokestatic System.printInt(I)V
    getstatic App.pads LPad;
    getfield Pad.a I
    invokestatic System.printInt(I)V
    return
  }
}
`

// runRelocUpdate drives the ballasted ring workload through one update,
// landing it after the Pad list and most of the ring exist (the churn loop
// keeps rewriting ref slots while the drain runs — exactly the traffic the
// self-healing barrier must absorb), and returns (program output, result).
func runRelocUpdate(f *fixture) (string, *core.Result) {
	f.t.Helper()
	v1 := f.load(relocV1)
	v2 := f.prog(relocV2)
	f.spawn("App")
	f.vm.Step(10)
	res := f.mustApply("1", v1, v2, "")
	return f.finish(), res
}

func TestConcurrentRelocPipelineEquivalence(t *testing.T) {
	modes := []struct {
		name        string
		cmark, lazy bool
	}{
		{"reloc", false, false},
		{"cmark-reloc", true, false},
		{"cmark-reloc-lazy", true, true},
	}
	for _, m := range modes {
		for _, workers := range []int{0, 4} {
			stw := newMarkFixture(t, 1<<16, workers, false)
			outSTW, resSTW := runRelocUpdate(stw)

			rf := newRelocFixture(t, 1<<16, workers, m.cmark, m.lazy)
			outRel, resRel := runRelocUpdate(rf)
			// The program may finish before the background workers run the
			// drain dry; force-complete so the stats below are final.
			rf.drain()

			if outSTW != outRel {
				t.Fatalf("%s workers=%d: output diverged: STW %q, reloc %q",
					m.name, workers, outSTW, outRel)
			}
			if outRel == "" {
				t.Fatalf("%s workers=%d: empty program output", m.name, workers)
			}

			s, c := resSTW.Stats, resRel.Stats
			if s.RelocConcurrent {
				t.Fatalf("%s workers=%d: STW run flagged RelocConcurrent", m.name, workers)
			}
			if !c.RelocConcurrent {
				t.Fatalf("%s workers=%d: reloc run fell back to STW copy", m.name, workers)
			}
			// The Pad ballast is live but not updated: it must have moved in
			// the concurrent drain, not in the pause.
			if c.RelocObjects == 0 {
				t.Fatalf("%s workers=%d: concurrent drain relocated nothing: %+v",
					m.name, workers, c)
			}
			if c.RelocDrain == 0 {
				t.Fatalf("%s workers=%d: no drain time recorded", m.name, workers)
			}
			if m.lazy {
				// Full deferral: the pause copies nothing; pairs are created by
				// the drain and adopted into the pair log one-for-one.
				if c.CopiedObjects != 0 {
					t.Fatalf("%s workers=%d: deferred-pair pause still copied eagerly: %+v",
						m.name, workers, c)
				}
				if c.RelocDeferredPairs == 0 {
					t.Fatalf("%s workers=%d: drain registered no deferred pairs", m.name, workers)
				}
				if c.PairsLogged != c.RelocDeferredPairs {
					t.Fatalf("%s workers=%d: adopted %d pairs for %d deferred",
						m.name, workers, c.PairsLogged, c.RelocDeferredPairs)
				}
			} else {
				// Eager pair evacuation: the pause copies exactly shell +
				// old copy per pair, never the whole live set.
				if c.PairsLogged < 1 {
					t.Fatalf("%s workers=%d: eager pause paired nothing", m.name, workers)
				}
				if c.CopiedObjects != 2*c.PairsLogged {
					t.Fatalf("%s workers=%d: pause copied %d objects for %d pairs",
						m.name, workers, c.CopiedObjects, c.PairsLogged)
				}
				if c.CopiedObjects >= s.CopiedObjects {
					t.Fatalf("%s workers=%d: reloc pause copied %d ≥ STW's %d — copy never left the pause",
						m.name, workers, c.CopiedObjects, s.CopiedObjects)
				}
			}
			if m.cmark && c.PauseGCMark != 0 {
				t.Fatalf("%s workers=%d: sealed-mark reloc pause reports in-pause discovery %v",
					m.name, workers, c.PauseGCMark)
			}
			if rf.vm.RelocDrainActive() {
				t.Fatalf("%s workers=%d: drain still active after ForceDrain", m.name, workers)
			}
			if rf.vm.Heap.RelocArmed() {
				t.Fatalf("%s workers=%d: load barrier left armed after drain", m.name, workers)
			}
			if rf.vm.LazyDrainActive() {
				t.Fatalf("%s workers=%d: lazy drain left active after ForceDrain", m.name, workers)
			}
			// The VM must remain collectable and updatable after the drain.
			if _, err := rf.vm.CollectGarbage(); err != nil {
				t.Fatalf("%s workers=%d: post-drain collection: %v", m.name, workers, err)
			}
		}
	}
}

// TestRelocDrainForcedByCollection pins the from-space hold lifecycle: a
// collection requested while the relocation drain is in flight must
// force-complete the drain first (a flip cannot run with the barrier armed),
// then collect normally on a fully healed heap.
func TestRelocDrainForcedByCollection(t *testing.T) {
	f := newRelocFixture(t, 1<<16, 2, false, false)
	v1 := f.load(relocV1)
	v2 := f.prog(relocV2)
	f.spawn("App")
	f.vm.Step(10)
	res := f.mustApply("1", v1, v2, "")

	// Collect immediately: on 1 vCPU the background workers have likely not
	// even been scheduled yet, so this exercises the forced drain for real.
	if _, err := f.vm.CollectGarbage(); err != nil {
		t.Fatalf("collection during drain: %v", err)
	}
	if f.vm.RelocDrainActive() {
		t.Fatal("drain still active after forced collection")
	}
	if f.vm.Heap.RelocArmed() {
		t.Fatal("load barrier left armed after forced collection")
	}
	if out := f.finish(); out == "" {
		t.Fatal("program did not finish after forced drain")
	}
	if !res.Stats.RelocConcurrent || res.Stats.RelocObjects == 0 {
		t.Fatalf("drain stats not stamped: %+v", res.Stats)
	}
}

// TestRelocFollowUpUpdate pins the update-during-drain path: a second update
// arriving while the first one's relocation drain is in flight must
// force-complete that drain (handle() forces reloc before lazy) and then
// apply cleanly. The program output must match a VM that took both updates
// stop-the-world.
func TestRelocFollowUpUpdate(t *testing.T) {
	run := func(f *fixture) string {
		f.t.Helper()
		v1 := f.load(relocV1)
		v2 := f.prog(relocV2)
		f.spawn("App")
		f.vm.Step(10)
		f.mustApply("1", v1, v2, "")
		f.vm.Step(2)
		f.mustApply("2", v2, f.prog(relocV2), "")
		out := f.finish()
		f.drain()
		return out
	}
	stw := newMarkFixture(t, 1<<16, 2, false)
	rel := newRelocFixture(t, 1<<16, 2, false, false)
	outSTW := run(stw)
	outRel := run(rel)
	if outSTW != outRel {
		t.Fatalf("output diverged across chained updates: STW %q, reloc %q", outSTW, outRel)
	}
	if rel.vm.RelocDrainActive() || rel.vm.Heap.RelocArmed() {
		t.Fatal("drain residue after chained updates")
	}
}

// TestRelocLazyDeferredPairs pins full deferral end to end: composed with
// lazy transformation, discovery, pair creation and transformation all ride
// the drain and the read barrier, and every touched instance comes out
// transformed.
func TestRelocLazyDeferredPairs(t *testing.T) {
	f := newRelocFixture(t, 1<<16, 2, false, true)
	v1 := f.load(relocV1)
	v2 := f.prog(relocV2)
	f.spawn("App")
	f.vm.Step(10)
	res := f.mustApply("1", v1, v2, "")
	// The pause itself creates no pairs beyond those the root remap forced;
	// everything else is discovered and paired by the drain afterwards.
	applyPairs := res.Stats.PairsLogged
	out := f.finish()
	f.drain()
	if out == "" {
		t.Fatal("empty program output")
	}
	st := res.Stats
	if st.RelocDeferredPairs == 0 {
		t.Fatalf("drain registered no deferred pairs: %+v", st)
	}
	if st.LazyDrained+st.LazyForced == 0 {
		t.Fatalf("no deferred instance was ever transformed: %+v", st)
	}
	if applyPairs >= st.PairsLogged {
		t.Fatalf("drain created no pairs beyond the pause's %d (final %d)", applyPairs, st.PairsLogged)
	}
	if st.TransformedObjects != st.PairsLogged {
		t.Fatalf("conservation broken after terminal drain: transformed %d != pairs logged %d",
			st.TransformedObjects, st.PairsLogged)
	}
	if f.vm.RelocDrainActive() || f.vm.LazyDrainActive() {
		t.Fatal("drain residue after force-complete")
	}
}
