package core_test

import (
	"strings"
	"testing"
)

// TestSuperclassFieldAdditionPropagatesToSubclasses: the paper's "changes
// may occur at any level of the class hierarchy... programmers may delete a
// field from a parent class and this change will propagate correctly to the
// class's descendants". Here the parent gains a field, shifting every
// subclass's layout; subclass instances must be transformed with their own
// fields preserved and virtual dispatch intact.
const hierV1 = `
class Vehicle {
  field wheels I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Vehicle.wheels I
    return
  }
  method describe()I {
    load 0
    getfield Vehicle.wheels I
    return
  }
}
class Truck extends Vehicle {
  field payload I
  method <init>(II)V {
    load 0
    load 1
    invokespecial Vehicle.<init>(I)V
    load 0
    load 2
    putfield Truck.payload I
    return
  }
  method describe()I {
    load 0
    getfield Vehicle.wheels I
    const 1000
    mul
    load 0
    getfield Truck.payload I
    add
    return
  }
}
class FireTruck extends Truck {
  field ladders I
  method <init>()V {
    load 0
    const 6
    const 20
    invokespecial Truck.<init>(II)V
    load 0
    const 2
    putfield FireTruck.ladders I
    return
  }
  method describe()I {
    load 0
    invokespecial Truck.describe()I
    load 0
    getfield FireTruck.ladders I
    add
    return
  }
}
class App {
  static field v LVehicle;
  static method main()V {
    new FireTruck
    dup
    invokespecial FireTruck.<init>()V
    putstatic App.v LVehicle;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.v LVehicle;
    invokevirtual Vehicle.describe()I
    invokestatic System.printInt(I)V
    return
  }
}
`

func TestSuperclassFieldAdditionPropagatesToSubclasses(t *testing.T) {
	f := newFixture(t, 1<<17)
	v1 := f.load(hierV1)
	// v2 adds a field at the ROOT of the hierarchy, before wheels.
	v2 := f.prog(strings.Replace(hierV1,
		"class Vehicle {\n  field wheels I",
		"class Vehicle {\n  field vin LString;\n  field wheels I", 1))
	f.spawn("App")
	f.vm.Step(2)
	spec, err := f.updateSpec("1", v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	// Truck and FireTruck never changed, but their layouts shift: UPT
	// must mark them transitively affected.
	for _, want := range []string{"Vehicle", "Truck", "FireTruck"} {
		if !spec.IsClassUpdate(want) {
			t.Fatalf("%s not a class update: %v", want, spec.ClassUpdates)
		}
	}
	res, err := f.engine.ApplyNow(spec, updateOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.String() != "applied" {
		t.Fatalf("outcome %v (%v)", res.Outcome, res.Err)
	}
	if res.Stats.TransformedObjects != 1 {
		t.Fatalf("transformed %d, want 1 (the FireTruck)", res.Stats.TransformedObjects)
	}
	// 6 wheels × 1000 + 20 payload + 2 ladders = 6022: all three levels'
	// fields survived the layout shift, and dispatch still reaches
	// FireTruck.describe through the Vehicle-typed reference.
	if got := strings.TrimSpace(f.finish()); got != "6022" {
		t.Fatalf("describe = %q, want 6022", got)
	}
}

// TestAccessModifierChangeIsClassUpdate: the paper lists changing access
// modifiers among supported class signature changes; a private→public field
// must produce a class update (its metadata changes), with the value
// carried by the default transformer.
func TestAccessModifierChangeIsClassUpdate(t *testing.T) {
	f := newFixture(t, 1<<16)
	src := `
class Secretive {
  private field hidden I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    load 0
    const 41
    putfield Secretive.hidden I
    return
  }
  method reveal()I {
    load 0
    getfield Secretive.hidden I
    return
  }
}
class App {
  static field s LSecretive;
  static method main()V {
    new Secretive
    dup
    invokespecial Secretive.<init>()V
    putstatic App.s LSecretive;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    invokestatic App.report()V
    return
  }
  static method report()V {
    getstatic App.s LSecretive;
    invokevirtual Secretive.reveal()I
    invokestatic System.printInt(I)V
    return
  }
}
`
	v1 := f.load(src)
	// v2: hidden becomes public and report() reads it directly.
	v2src := strings.Replace(src, "private field hidden I", "field hidden I", 1)
	v2src = strings.Replace(v2src,
		"getstatic App.s LSecretive;\n    invokevirtual Secretive.reveal()I",
		"getstatic App.s LSecretive;\n    getfield Secretive.hidden I", 1)
	v2 := f.prog(v2src)
	f.spawn("App")
	f.vm.Step(2)
	spec, err := f.updateSpec("1", v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.IsClassUpdate("Secretive") {
		t.Fatalf("modifier change not a class update: %+v", spec.Diffs["Secretive"])
	}
	res, err := f.engine.ApplyNow(spec, updateOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.String() != "applied" {
		t.Fatalf("outcome %v (%v)", res.Outcome, res.Err)
	}
	if got := strings.TrimSpace(f.finish()); got != "41" {
		t.Fatalf("hidden = %q, want 41 (value carried across modifier change)", got)
	}
}
