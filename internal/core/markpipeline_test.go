package core_test

import (
	"bytes"
	"testing"

	"govolve/internal/core"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

// End-to-end coverage of the concurrent-mark update pipeline: the engine
// starts a snapshot-at-the-beginning trace on the update request, lets the
// program keep mutating the heap while the markers run, and consumes the
// sealed result at the safe point. The observable outcome (program output,
// update success, transformed state) must be identical to the fused
// stop-the-world pipeline's; only the pause decomposition differs.

func newMarkFixture(t *testing.T, heapWords, gcWorkers int, concurrent bool) *fixture {
	t.Helper()
	var out bytes.Buffer
	v, err := vm.New(vm.Options{
		HeapWords:        heapWords,
		Out:              &out,
		GCWorkers:        gcWorkers,
		GCConcurrentMark: concurrent,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, vm: v, out: &out, engine: core.NewEngine(v)}
}

// ringV1 builds a 200-node ring, then spends 60000 slices rotating the head
// and unlinking one node per iteration — every iteration overwrites heap ref
// slots, which is exactly the traffic the SATB deletion barrier must log
// while the concurrent mark traces.
const ringV1 = `
class Node {
  field val I
  field next LNode;
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Node.val I
    return
  }
}
class App {
  static field head LNode;
  static field first LNode;
  static method main()V {
    new Node
    dup
    const 0
    invokespecial Node.<init>(I)V
    dup
    putstatic App.head LNode;
    putstatic App.first LNode;
    const 1
    store 0
  build:
    load 0
    const 200
    if_icmpge link
    new Node
    dup
    load 0
    invokespecial Node.<init>(I)V
    store 1
    load 1
    getstatic App.head LNode;
    putfield Node.next LNode;
    load 1
    putstatic App.head LNode;
    load 0
    const 1
    add
    store 0
    goto build
  link:
    getstatic App.first LNode;
    getstatic App.head LNode;
    putfield Node.next LNode;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    getstatic App.head LNode;
    getfield Node.next LNode;
    putstatic App.head LNode;
    getstatic App.head LNode;
    getstatic App.head LNode;
    getfield Node.next LNode;
    getfield Node.next LNode;
    putfield Node.next LNode;
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.head LNode;
    getfield Node.val I
    invokestatic System.printInt(I)V
    return
  }
}
`

// ringV2 widens Node with a generation counter; App is unchanged, so the
// program's output is version-invariant and the two pipelines must print the
// same value no matter which slice the update lands on.
const ringV2 = `
class Node {
  field val I
  field next LNode;
  field gen I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Node.val I
    return
  }
}
class App {
  static field head LNode;
  static field first LNode;
  static method main()V {
    new Node
    dup
    const 0
    invokespecial Node.<init>(I)V
    dup
    putstatic App.head LNode;
    putstatic App.first LNode;
    const 1
    store 0
  build:
    load 0
    const 200
    if_icmpge link
    new Node
    dup
    load 0
    invokespecial Node.<init>(I)V
    store 1
    load 1
    getstatic App.head LNode;
    putfield Node.next LNode;
    load 1
    putstatic App.head LNode;
    load 0
    const 1
    add
    store 0
    goto build
  link:
    getstatic App.first LNode;
    getstatic App.head LNode;
    putfield Node.next LNode;
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    getstatic App.head LNode;
    getfield Node.next LNode;
    putstatic App.head LNode;
    getstatic App.head LNode;
    getstatic App.head LNode;
    getfield Node.next LNode;
    getfield Node.next LNode;
    putfield Node.next LNode;
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    getstatic App.head LNode;
    getfield Node.val I
    invokestatic System.printInt(I)V
    return
  }
}
`

// runRingUpdate drives the ring workload through one update on f and returns
// (program output, update result).
func runRingUpdate(f *fixture) (string, *core.Result) {
	f.t.Helper()
	v1 := f.load(ringV1)
	v2 := f.prog(ringV2)
	f.spawn("App")
	f.vm.Step(2) // land early: the ring is still being built and churned
	res := f.mustApply("1", v1, v2, "")
	return f.finish(), res
}

func TestConcurrentMarkPipelineEquivalence(t *testing.T) {
	for _, workers := range []int{0, 4} {
		stw := newMarkFixture(t, 1<<16, workers, false)
		outSTW, resSTW := runRingUpdate(stw)

		cm := newMarkFixture(t, 1<<16, workers, true)
		outCM, resCM := runRingUpdate(cm)

		if outSTW != outCM {
			t.Fatalf("workers=%d: output diverged: STW %q, concurrent %q", workers, outSTW, outCM)
		}
		if outCM == "" {
			t.Fatalf("workers=%d: empty program output", workers)
		}

		s, c := resSTW.Stats, resCM.Stats
		if s.GCMarkConcurrent {
			t.Fatalf("workers=%d: STW run flagged GCMarkConcurrent", workers)
		}
		// Uniform decomposition: the STW collectors' fused trace+copy is
		// reported as copy time, with the mark slice reserved for collections
		// that run a distinct in-pause trace.
		if s.PauseGCMark != 0 || s.PauseGCCopy == 0 || s.GCMarkOutside != 0 || s.GCRescanMarked != 0 {
			t.Fatalf("workers=%d: STW decomposition wrong: %+v", workers, s)
		}
		if !c.GCMarkConcurrent {
			t.Fatalf("workers=%d: concurrent run fell back to STW discovery", workers)
		}
		if c.PauseGCMark != 0 {
			t.Fatalf("workers=%d: concurrent run reports in-pause mark %v", workers, c.PauseGCMark)
		}
		if c.GCMarkOutside == 0 {
			t.Fatalf("workers=%d: concurrent run reports no outside-pause mark time", workers)
		}
		if c.GCMarkedObjects == 0 {
			t.Fatalf("workers=%d: concurrent mark discovered nothing", workers)
		}
		if c.TransformedObjects == 0 || s.TransformedObjects == 0 {
			t.Fatalf("workers=%d: no objects transformed (STW %d, concurrent %d)",
				workers, s.TransformedObjects, c.TransformedObjects)
		}
		// The concurrent trace may additionally pair floating garbage — dead
		// ring nodes that died mid-trace — but never fewer than the ~200 live
		// nodes plus the ring's survivors.
		if c.PairsLogged < 1 {
			t.Fatalf("workers=%d: concurrent run paired nothing", workers)
		}
		if got := c.PauseGCRescan + c.PauseGCCopy; got > c.PauseGC {
			t.Fatalf("workers=%d: rescan+copy %v exceeds PauseGC %v", workers, got, c.PauseGC)
		}
		if cm.vm.Heap.SATBArmed() {
			t.Fatalf("workers=%d: barrier left armed after update", workers)
		}
	}
}

// TestConcurrentMarkAbortDisarms pins the discard path: an update that never
// reaches its safe point (blacklisted method always on stack) must abort
// with the snapshot discarded and the write barrier disarmed, leaving the
// program to finish on the old version unharmed.
func TestConcurrentMarkAbortDisarms(t *testing.T) {
	f := newMarkFixture(t, 1<<16, 2, true)
	v1 := f.load(ringV1)
	v2 := f.prog(ringV2)
	f.spawn("App")
	f.vm.Step(2)
	res, err := f.update("1", v1, v2, "",
		core.Options{MaxAttempts: 3},
		upt.MethodRef{Class: "App", Name: "main", Sig: "()V"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Aborted {
		t.Fatalf("outcome = %v (err %v), want Aborted", res.Outcome, res.Err)
	}
	if f.vm.Heap.SATBArmed() {
		t.Fatal("barrier left armed after aborted update")
	}
	if f.vm.GC.MarkActive() {
		t.Fatal("collector still holds a marker after aborted update")
	}
	if out := f.finish(); out == "" {
		t.Fatal("program did not finish on the old version")
	}
	// The VM must remain updatable: the same update without the blacklist
	// applies cleanly, concurrent mark and all.
	f2 := newMarkFixture(t, 1<<16, 2, true)
	outSTW, res2 := runRingUpdate(f2)
	if res2.Outcome != core.Applied || outSTW == "" {
		t.Fatalf("follow-up update failed: %v", res2.Err)
	}
}
