// Package core is the JVOLVE DSU engine — the paper's contribution. It
// coordinates the VM services the rest of the repository provides:
//
//  1. The user signals the VM with an update specification (upt.Spec).
//  2. The engine sets the yield flag; threads stop at VM safe points.
//  3. It checks every stack for restricted methods: category (1) methods
//     whose bytecode changed, category (2) methods whose compiled code
//     bakes in stale offsets, and category (3) user-blacklisted methods.
//     Category-(2) base-compiled frames are OSR-able and do not block.
//  4. Blocking frames get return barriers on the topmost restricted frame
//     of each thread; when one fires the attempt restarts. A timeout
//     aborts the update (15 s by default, as in the paper).
//  5. At a DSU safe point it installs the update: renames old classes,
//     loads new ones, replaces method bodies, invalidates stale compiled
//     code, loads the transformer class, OSRs category-(2) frames.
//  6. It runs a DSU garbage collection that pairs every instance of an
//     updated class with a fresh new-class object, then executes class
//     transformers and object transformers over the update log (with
//     recursive force-transform and cycle detection).
package core

import (
	"fmt"
	"runtime"
	"time"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
	"govolve/internal/gc"
	"govolve/internal/obs"
	"govolve/internal/rt"
	"govolve/internal/upt"
	"govolve/internal/verifier"
	"govolve/internal/vm"
)

// Outcome classifies how an update attempt finished.
type Outcome int

const (
	// Applied means the update committed and the program resumed on the
	// new version.
	Applied Outcome = iota
	// Aborted means no DSU safe point was reached before the timeout; the
	// program continues on the old version, unharmed.
	Aborted
	// Failed means the update errored mid-flight (verification passed but
	// e.g. a transformer trapped or cycled); the VM state is suspect.
	Failed
)

func (o Outcome) String() string {
	switch o {
	case Applied:
		return "applied"
	case Aborted:
		return "aborted"
	default:
		return "failed"
	}
}

// Stats reports the measurable behaviour of one update — the quantities
// behind the paper's Table 1 and the §4 experience narrative.
type Stats struct {
	Attempts           int
	BarriersInstalled  int
	OSRFrames          int
	// OSRFusedFrames is the subset of OSRFrames that were resting in
	// trace-promoted fused code when the update landed — each one deopted
	// through the fused tier's identity pc-map.
	OSRFusedFrames int
	ActiveRewrites     int  // UpStare-style rewrites of changed on-stack methods
	Immediate          bool // safe point reached on the first attempt
	InvalidatedMethods int
	// InvalidatedMethods decomposed by reason: Body counts direct bytecode
	// swaps (category (1) identities kept alive via MethodBodyUpdates),
	// Inline counts compiled methods that had inlined an updated method,
	// Layout counts code whose baked field offsets or TIB slots referenced a
	// renamed class. Body+Inline+Layout == InvalidatedMethods.
	InvalidatedBody   int
	InvalidatedInline int
	InvalidatedLayout int
	// ICFlushed counts inline-cache entries cleared from surviving compiled
	// code at install: every cached (class id → target) pair keyed by an
	// old-version class is stale the moment the rename commits, so the
	// install phase wipes them all and lets the sites re-warm against the
	// new class ids.
	ICFlushed          int
	TransformedObjects int
	CopiedObjects      int
	// CopiedWords counts words copied into to-space; ScratchWords counts
	// old-copy words diverted to the scratch region (§3.5 alternative).
	CopiedWords  int
	ScratchWords int

	// GCWorkers is how many copy/scan workers the DSU collection ran (1 for
	// the serial Cheney path); GCWorkerWords is the words copied per worker
	// (nil when serial) — the load-balance evidence behind the gcpause
	// experiment. GCSteals counts work-stealing deque pops. PairsLogged is
	// the pairs the collection scheduled for transformation (it can exceed
	// TransformedObjects only if the update fails mid-phase).
	GCWorkers     int
	GCWorkerWords []int
	GCSteals      int64
	PairsLogged   int

	// Transformer-phase decomposition: BulkTransformed objects went through
	// the native bulk-copy path (FastDefaults), BytecodeTransformed through
	// the interpreted jvolveObject path. TransformWorkers is the fan-out
	// width of the parallel bulk pass (0 when no bulk pass ran).
	BulkTransformed     int
	BytecodeTransformed int
	TransformWorkers    int

	// Concurrent-mark decomposition. GCMarkConcurrent records that instance
	// discovery ran as a concurrent snapshot-at-the-beginning trace outside
	// the pause: GCMarkOutside is the trace's wall-clock time overlapped
	// with the mutator, GCMarkSetup the snapshot/arm/spawn mini-pause, and
	// GCMarkRestarts how many snapshots were invalidated by allocation-
	// triggered collections before one survived. GCMarkedObjects is the
	// concurrent trace's population, GCSATBDrained the deletion-log entries
	// drained at the pause, and GCRescanMarked the objects the in-pause
	// rescan added (the only in-pause tracing).
	GCMarkConcurrent bool
	GCMarkOutside    time.Duration
	GCMarkSetup      time.Duration
	GCMarkRestarts   int
	GCMarkedObjects  int
	GCSATBDrained    int
	GCRescanMarked   int

	SafePointDelay time.Duration // request → DSU safe point
	PauseInstall   time.Duration
	PauseGC        time.Duration
	// PauseGC's decomposition: in-pause discovery (the whole trace for the
	// STW collectors, zero when marking ran concurrently), SATB/root rescan
	// (concurrent path only), and the copy+fixup phase. The remainder of
	// PauseGC is bookkeeping.
	PauseGCMark    time.Duration
	PauseGCRescan  time.Duration
	PauseGCCopy    time.Duration
	PauseTransform time.Duration
	// PauseTransformBulk is the slice of PauseTransform spent inside the
	// parallel bulk fan-out.
	PauseTransformBulk time.Duration
	PauseTotal         time.Duration

	// Lazy-transform decomposition (vm.Options.LazyTransform). LazyPending
	// is the pair count left tagged when the pause ended; LazyDrained were
	// then transformed by the read barrier on first touch, LazyForced by a
	// forced drain (collection, follow-up update, or ForceDrain).
	// Drained+Forced converges to Pending, and TransformedObjects to the
	// eager count, as the drain completes; these fields keep updating after
	// the Result is sealed, until the drain finishes.
	LazyPending int
	LazyDrained int
	LazyForced  int

	// Concurrent-relocation decomposition (vm.Options.ConcurrentReloc).
	// RelocConcurrent records that the DSU copy ran as a concurrent
	// relocation: the pause stopped at flip preparation (discovery, flip,
	// eager evacuation of updated-class instances only, root remap) and the
	// remaining live set was evacuated after the world resumed — by
	// background relocator workers and by the mutator through the
	// self-healing load barrier. RelocObjects/RelocWords count those
	// post-pause evacuations (the in-pause share stays in CopiedObjects/
	// CopiedWords); RelocHealedSlots counts stale slots rewritten to
	// canonical addresses; RelocDeferredPairs counts shell/old-copy pairs
	// the drain created for the lazy pipeline (deferred-pair mode);
	// RelocDrain is the drain's wall clock — copy cost that no longer sits
	// in the pause. Like the Lazy* block, these fields are stamped at drain
	// finalize, after the Result is sealed.
	RelocConcurrent    bool
	RelocObjects       int
	RelocWords         int
	RelocScratchWords  int
	RelocHealedSlots   uint64
	RelocDeferredPairs int
	RelocSteals        int64
	RelocDrain         time.Duration
}

// Result is the terminal state of an update request.
type Result struct {
	Outcome Outcome
	Err     error
	Stats   Stats
	// Verdict is the health-gate judgment of this update, evaluated over
	// metric snapshots taken at request, safe point and seal. Nil when no
	// gate engine is attached.
	Verdict *obs.Verdict
}

// GatePolicy selects how the engine reacts to a FAIL verdict — the
// single-VM precursor of fleet auto-revert.
type GatePolicy int

const (
	// GateObserve records verdicts without acting on them (default).
	GateObserve GatePolicy = iota
	// GateHalt refuses further updates after a FAIL verdict until
	// ClearHalt — the "stop the rollout" reaction.
	GateHalt
	// GateQuiesceRetry leaves the reaction to the caller's retry loop
	// (internal/stream escalates a failed-gate retry to a quiesced one);
	// the engine itself only records the verdict.
	GateQuiesceRetry
	// GateForceDrain force-completes outstanding lazy/relocation drains
	// after a FAIL verdict, trading throughput for a fully settled heap.
	GateForceDrain
)

func (p GatePolicy) String() string {
	switch p {
	case GateHalt:
		return "halt"
	case GateQuiesceRetry:
		return "quiesce-retry"
	case GateForceDrain:
		return "force-drain"
	default:
		return "observe"
	}
}

// Options tunes one update request.
type Options struct {
	// Timeout aborts the update if no DSU safe point is reached. The
	// paper uses 15 seconds; zero means that default.
	Timeout time.Duration
	// MaxAttempts, if positive, bounds safe-point attempts — a
	// deterministic alternative to the wall-clock timeout for tests.
	MaxAttempts int
	// FastDefaults runs UPT-generated default transformers as native bulk
	// field copies instead of interpreted bytecode — the optimization the
	// paper sketches in §4.1 (interpreted field-by-field copy is much
	// slower than the collector's copying loop). Custom transformers
	// always run as bytecode.
	FastDefaults bool
	// OSROpt extends on-stack replacement to opt-compiled category-(2)
	// frames whose pc lies outside any inlined region (the paper's "we
	// plan to support OSR on opt-compiled methods as well").
	OSROpt bool
}

// Pending tracks an in-flight update request.
type Pending struct {
	Spec    *upt.Spec
	Opts    Options
	start   time.Time
	result  *Result
	stats   Stats
	barrier map[*vm.Frame]bool

	// mark is the in-flight (or sealed) concurrent marker when the collector
	// runs with ConcurrentMark; markRestarts counts snapshots invalidated by
	// allocation-triggered collections before one survived to the pause.
	mark         *gc.Marker
	markRestarts int

	// Gate-window snapshots: the registry at request time and at the DSU
	// safe point. The closing snapshot is taken at seal (finish).
	gateBefore *obs.Snapshot
	gateDuring *obs.Snapshot
}

// Done reports whether the request has finished.
func (p *Pending) Done() bool { return p.result != nil }

// Result returns the terminal result, or nil while in flight.
func (p *Pending) Result() *Result { return p.result }

// Engine drives updates against one VM.
type Engine struct {
	VM *vm.VM

	// AfterUpdate, if set, runs synchronously the instant an update request
	// resolves (applied, aborted, or failed) — after barriers are cleared
	// and the result is sealed, but before any application thread takes
	// another step. The storm harness hangs its whole-VM invariant checker
	// here so violations are caught at the exact safe point that produced
	// them, not masked by subsequent mutator activity.
	AfterUpdate func(*Result)

	// Gate, if non-nil, evaluates health gates over metric snapshots
	// bracketing every update (taken from VM.Metrics) and stamps the
	// judgment on Result.Verdict. Attach with AttachGates.
	Gate *obs.GateEngine
	// GatePolicy is the engine's reaction to a FAIL verdict.
	GatePolicy GatePolicy

	pending *Pending
	// lazy is the in-flight post-pause drain of the most recent
	// LazyTransform update, nil outside a drain window.
	lazy *lazyDrain
	// reloc is the in-flight concurrent relocation drain of the most recent
	// ConcurrentReloc update, nil outside a drain window.
	reloc *relocHandle
	// halt holds the FAIL verdict that tripped GateHalt; while set,
	// RequestUpdate refuses new updates.
	halt *obs.Verdict
	// Updates records every finished update, in order.
	Updates []*Result
}

// NewEngine attaches a DSU engine to a VM.
func NewEngine(v *vm.VM) *Engine {
	e := &Engine{VM: v}
	v.UpdateHandler = e.handle
	return e
}

// AttachGates arms per-update health gating: every update from here on is
// judged by g over snapshots of the VM's metrics registry, and a FAIL
// verdict triggers the given policy. The gate engine should publish into
// (or at least read the same series as) VM.Metrics.
func (e *Engine) AttachGates(g *obs.GateEngine, policy GatePolicy) {
	e.Gate = g
	e.GatePolicy = policy
}

// Halted returns the FAIL verdict that halted the update chain under
// GateHalt, or nil when updates are admissible.
func (e *Engine) Halted() *obs.Verdict { return e.halt }

// ClearHalt re-admits updates after a GateHalt trip — the operator's
// explicit "rollout may continue" acknowledgment.
func (e *Engine) ClearHalt() { e.halt = nil }

// RequestUpdate verifies the new code and transformers, then arms the VM:
// the scheduler will attempt the update at the next safe point. It fails
// fast (before stopping anything) if the updated program does not verify —
// the type-safety gate the paper gets from bytecode verification.
func (e *Engine) RequestUpdate(spec *upt.Spec, opts Options) (*Pending, error) {
	if e.pending != nil && !e.pending.Done() {
		return nil, fmt.Errorf("core: an update is already in flight")
	}
	if e.halt != nil {
		return nil, fmt.Errorf("core: updates halted by gate policy (%s); ClearHalt to resume", e.halt)
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	if err := e.verifyUpdate(spec); err != nil {
		return nil, err
	}
	p := &Pending{Spec: spec, Opts: opts, start: time.Now(), barrier: make(map[*vm.Frame]bool)}
	if e.Gate != nil {
		// Open the gate window on fresh numbers: publish the VM's own
		// deltas, then snapshot.
		e.VM.PublishMetrics()
		p.gateBefore = e.VM.Metrics.TakeSnapshot()
	}
	e.pending = p
	e.VM.Rec.Emit(obs.KUpdateRequested, obs.LaneEngine, 0, spec.OldTag)
	e.VM.SetUpdatePending(true)
	e.VM.RequestStop()
	return p, nil
}

// span emits a phase-begin event on the engine lane and returns the matching
// phase-end closure. Nil-recorder safe (Emit no-ops).
func (e *Engine) span(name string) func() {
	e.VM.Rec.Emit(obs.KPhaseBegin, obs.LaneEngine, 0, name)
	return func() { e.VM.Rec.Emit(obs.KPhaseEnd, obs.LaneEngine, 0, name) }
}

// ApplyNow requests the update and drives the scheduler until it resolves.
// Convenience for tests, examples and the benchmark harness; servers under
// load instead keep calling VM.Step and poll Pending.Done.
func (e *Engine) ApplyNow(spec *upt.Spec, opts Options) (*Result, error) {
	p, err := e.RequestUpdate(spec, opts)
	if err != nil {
		return nil, err
	}
	for !p.Done() {
		e.VM.Step(1)
	}
	return p.Result(), nil
}

// updateEnv resolves classes for update-time verification: new program
// classes shadow loaded ones, flattened old versions are visible for
// transformer code, and deleted classes are gone.
type updateEnv struct {
	reg  *rt.Registry
	spec *upt.Spec
}

func (u updateEnv) LookupClass(name string) *classfile.Class {
	if def, ok := u.spec.New.Classes[name]; ok {
		return def
	}
	if def, ok := u.spec.OldFlatDefs[name]; ok {
		return def
	}
	for _, d := range u.spec.DeletedClasses {
		if d == name {
			return nil
		}
	}
	if name == upt.TransformersClassName {
		return u.spec.Transformers
	}
	return u.reg.LookupDef(name)
}

// verifyUpdate statically type-checks the whole new version and the
// transformer class (the latter in relaxed mode — the JastAdd special case).
func (e *Engine) verifyUpdate(spec *upt.Spec) error {
	env := updateEnv{e.VM.Reg, spec}
	strict := verifier.New(env, verifier.Strict)
	for _, def := range spec.New.Sorted() {
		if err := def.Validate(); err != nil {
			return fmt.Errorf("core: update rejected: %w", err)
		}
		if err := strict.VerifyClass(def); err != nil {
			return fmt.Errorf("core: update rejected: %w", err)
		}
	}
	relaxed := verifier.New(env, verifier.Relaxed)
	if err := spec.Transformers.Validate(); err != nil {
		return fmt.Errorf("core: transformers rejected: %w", err)
	}
	if err := relaxed.VerifyClass(spec.Transformers); err != nil {
		return fmt.Errorf("core: transformers rejected: %w", err)
	}
	return nil
}

// restriction is the DSU-safe-point classification of one frame.
type restriction int

const (
	frameFree restriction = iota
	frameOSR              // category (2), base-compiled: replace on stack
	frameBlocking
)

// restrictedSets computes the method sets driving the safe-point check.
func (e *Engine) restrictedSets(spec *upt.Spec) (cat1 map[*rt.Method]bool, updatedOld map[*rt.Class]bool) {
	reg := e.VM.Reg
	cat1 = make(map[*rt.Method]bool)
	updatedOld = make(map[*rt.Class]bool)

	for _, name := range spec.ClassUpdates {
		cls := reg.LookupClass(name)
		if cls == nil {
			continue // never loaded: nothing on stack, nothing in heap
		}
		updatedOld[cls] = true
		ndef := spec.New.Classes[name]
		for _, m := range cls.DeclaredMethods() {
			nm := ndef.Method(m.Def.Name, m.Def.Sig)
			unchanged := nm != nil && nm.Static == m.Def.Static &&
				nm.Native == m.Def.Native &&
				bytecode.CodeEqual(nm.Code, m.Def.Code)
			if !unchanged {
				cat1[m] = true
			}
		}
	}
	for _, ref := range spec.MethodBodyUpdates {
		if cls := reg.LookupClass(ref.Class); cls != nil {
			if m := cls.Method(ref.Name, ref.Sig); m != nil {
				cat1[m] = true
			}
		}
	}
	for _, name := range spec.DeletedClasses {
		if cls := reg.LookupClass(name); cls != nil {
			for _, m := range cls.DeclaredMethods() {
				cat1[m] = true
			}
		}
	}
	for _, ref := range spec.Blacklist {
		if cls := reg.LookupClass(ref.Class); cls != nil {
			if m := cls.Method(ref.Name, ref.Sig); m != nil {
				cat1[m] = true
			}
		}
	}
	return cat1, updatedOld
}

// activeMaps resolves the spec's active-method (UpStare-style) yield-point
// maps against live methods.
func (e *Engine) activeMaps(spec *upt.Spec) map[*rt.Method]upt.ActivePCMap {
	if len(spec.ActiveUpdates) == 0 {
		return nil
	}
	out := make(map[*rt.Method]upt.ActivePCMap, len(spec.ActiveUpdates))
	for ref, m := range spec.ActiveUpdates {
		if cls := e.VM.Reg.LookupClass(ref.Class); cls != nil {
			if rm := cls.Method(ref.Name, ref.Sig); rm != nil {
				out[rm] = m
			}
		}
	}
	return out
}

// osrJob is one frame to rewrite at the DSU safe point. A nil active map is
// ordinary category-(2) OSR; otherwise it is an active-method update and
// newPC comes from the user's yield-point map.
type osrJob struct {
	frame  *vm.Frame
	active *upt.ActivePCMap
}

// classify determines a frame's restriction. With osrOpt, opt-compiled
// stale frames parked at a mappable pc are OSR-able too (the extension the
// paper leaves as future work); frames inside inlined regions still block.
func classify(f *vm.Frame, cat1 map[*rt.Method]bool, updatedOld map[*rt.Class]bool, osrOpt bool) restriction {
	cm := f.CM
	if cat1[cm.Method] {
		return frameBlocking
	}
	if cm.InlinedAny(cat1) {
		// An updated method is inlined here; the old body would keep
		// running after the update (paper: "we should also restrict n").
		return frameBlocking
	}
	stale := false
	for dep := range cm.LayoutDeps {
		if updatedOld[dep] {
			stale = true
			break
		}
	}
	if !stale {
		return frameFree
	}
	if cm.Level == rt.Base {
		return frameOSR
	}
	if cm.Level == rt.Fused {
		// Fused-tier code is index-aligned with base code (superinstructions
		// replace pairs in place) and carries a total identity pc-map, so a
		// fused frame deopts at any resting pc — no osrOpt gate needed.
		return frameOSR
	}
	if osrOpt && vm.OSRMappable(f) {
		return frameOSR
	}
	return frameBlocking
}

// handle is the VM's update hook: one safe-point attempt. All application
// threads are stopped at VM safe points when it runs. It returns true when
// the request is finished (applied, aborted, or failed).
func (e *Engine) handle() bool {
	p := e.pending
	if p == nil || p.Done() {
		return true
	}
	if e.reloc != nil {
		// A follow-up update arrived with the previous update's relocation
		// drain still holding from-space: force-complete it first — this
		// update's collection cannot flip a heap with an armed load barrier,
		// and in deferred-pair mode the forced finalize is what hands the
		// drain-created pairs to the lazy residue forced just below.
		_ = e.reloc.force()
	}
	if e.lazy != nil {
		// A follow-up update arrived mid-drain: force-complete the previous
		// update's residue first, so its pair log, scratch region and
		// renamed old versions retire before this update builds its own.
		// Transformer errors during the forced drain are the affected
		// objects' data loss, not this update's failure.
		_ = e.lazy.forceAll()
	}
	if e.VM.GC.Opts.ConcurrentMark && !(e.VM.GC.Opts.ConcurrentReloc && e.VM.LazyTransform) {
		// (With ConcurrentReloc ∧ LazyTransform the mark would be wasted
		// work: discovery is deferred entirely — the drain builds pairs as
		// it evacuates — so the pause consumes no instance set at all.)
		// Run instance discovery outside the pause: start (or poll) the
		// concurrent snapshot-at-the-beginning mark and keep the mutator
		// running until the trace completes. Safe-point attempts — and the
		// stop-the-world they imply — only begin once a sealed mark result
		// is waiting for the pause.
		if !e.stepMark(p) {
			return p.Done() // stepMark may abort the update on timeout
		}
	}
	p.stats.Attempts++

	cat1, updatedOld := e.restrictedSets(p.Spec)
	active := e.activeMaps(p.Spec)
	var osrJobs []osrJob
	blocked := false
	blockingMethod := "" // first restricted method that blocked this attempt
	for _, t := range e.VM.Threads {
		if t.State == vm.Dead {
			continue
		}
		var topBlocking *vm.Frame
		for i := len(t.Frames) - 1; i >= 0; i-- {
			f := t.Frames[i]
			switch classify(f, cat1, updatedOld, p.Opts.OSROpt) {
			case frameBlocking:
				// A changed method with a user-provided yield-point map
				// can be rewritten on stack (the UpStare extension)
				// instead of blocking — if the frame sits at a mapped pc.
				// Fused frames qualify too: in-place fusion keeps pcs
				// index-aligned with base code, so the user's yield-point
				// map reads the fused pc unchanged (hot loops trace-promote
				// to the fused tier, and an active update of a spinning
				// method is exactly the hot-loop case).
				if am, ok := active[f.CM.Method]; ok &&
					(f.CM.Level == rt.Base || f.CM.Level == rt.Fused) {
					if _, mapped := am.PC[f.PC]; mapped {
						amCopy := am
						osrJobs = append(osrJobs, osrJob{frame: f, active: &amCopy})
						continue
					}
				}
				if topBlocking == nil {
					topBlocking = f
				}
			case frameOSR:
				osrJobs = append(osrJobs, osrJob{frame: f})
			}
		}
		if topBlocking != nil {
			blocked = true
			if blockingMethod == "" {
				blockingMethod = topBlocking.CM.Method.FullName()
			}
			if !topBlocking.Barrier {
				topBlocking.Barrier = true
				p.barrier[topBlocking] = true
				p.stats.BarriersInstalled++
				e.VM.Rec.Emit(obs.KBarrierInstalled, obs.LaneThread(t.ID),
					int64(p.stats.Attempts), topBlocking.CM.Method.FullName())
				e.VM.ReleaseUpdateWaiters() // let other threads run on
			} else if t.State == vm.UpdateWait {
				// The thread parked when an inner frame's barrier fired, but
				// this outer restricted frame — barrier already installed in
				// an earlier round — still pins its stack. Parked it can
				// never return through that frame, so no attempt could ever
				// succeed: release it alone (threads parked with clean
				// stacks stay put) and let the outer barrier fire.
				e.VM.ReleaseThread(t)
			}
		}
	}
	e.VM.Rec.Emit(obs.KSafePointAttempt, obs.LaneEngine, int64(p.stats.Attempts), blockingMethod)

	if blocked {
		timedOut := time.Since(p.start) > p.Opts.Timeout ||
			(p.Opts.MaxAttempts > 0 && p.stats.Attempts >= p.Opts.MaxAttempts)
		if timedOut {
			e.finish(p, &Result{Outcome: Aborted,
				Err: fmt.Errorf("core: no DSU safe point within %v (%d attempts)",
					p.Opts.Timeout, p.stats.Attempts)})
			return true
		}
		return false // keep running; barriers or the next attempt will retry
	}

	// DSU safe point reached.
	p.stats.Immediate = p.stats.Attempts == 1 && p.stats.BarriersInstalled == 0
	p.stats.SafePointDelay = time.Since(p.start)
	e.VM.Rec.Emit(obs.KSafePointReached, obs.LaneEngine, int64(p.stats.Attempts),
		p.stats.SafePointDelay.String())
	if e.Gate != nil {
		p.gateDuring = e.VM.Metrics.TakeSnapshot()
	}
	res := e.apply(p, osrJobs, cat1)
	e.finish(p, res)
	return true
}

// maxMarkRestarts bounds how many times a concurrent-mark snapshot may be
// invalidated (by an allocation-triggered collection flipping the heap under
// the tracers) before the engine gives up and falls back to fused
// stop-the-world discovery. Each restart re-traces from scratch, so under
// allocation pressure heavy enough to trigger back-to-back collections the
// STW path is the faster choice anyway.
const maxMarkRestarts = 3

// stepMark advances the concurrent-mark pipeline by one poll. It returns
// true when the safe-point attempt should proceed — either a sealed mark
// result is waiting for the pause, or the engine has fallen back to
// stop-the-world discovery — and false when the mutator should keep running
// while the markers trace. It may finish p (timeout abort), which callers
// detect via p.Done().
func (e *Engine) stepMark(p *Pending) bool {
	gcc := e.VM.GC
	p.stats.GCMarkRestarts = p.markRestarts
	if p.mark == nil {
		if p.markRestarts > maxMarkRestarts {
			return true // fall back to fused STW discovery
		}
		p.mark = gcc.StartMark(e.VM, e.updatedClassIDs(p.Spec))
		// Let threads run full slices while the markers trace; the yield
		// flag comes back on the moment the trace completes. The scheduler
		// still calls the handler between slices (updatePending is set), so
		// the poll cadence is unchanged.
		e.VM.ClearStop()
		return false
	}
	if p.mark.Aborted() {
		// An allocation-triggered collection flipped the heap mid-trace (or
		// a tracer hit a structural error); the snapshot is stale. Restart
		// on the next poll.
		p.mark = nil
		p.markRestarts++
		return false
	}
	if !p.mark.Done() {
		if time.Since(p.start) > p.Opts.Timeout {
			gcc.AbortMark()
			p.mark = nil
			e.finish(p, &Result{Outcome: Aborted,
				Err: fmt.Errorf("core: concurrent mark did not complete within %v", p.Opts.Timeout)})
			return false
		}
		runtime.Gosched() // cede the processor to the markers
		return false
	}
	// Trace complete. Seal immediately — sealing joins the workers and
	// merges their statistics. The write barrier stays armed until the
	// pause: trace completion alone does not re-establish the SATB
	// invariant (objects hidden behind logged deletions are unmarked until
	// the pause drains the log, and an unlogged severing during a blocked
	// safe-point wait could hide their children from the rescan for good),
	// so the mutator keeps paying the barrier tax until CollectWithMark
	// disarms inside the pause. Idempotent across repeated attempts.
	if !gcc.SealMark(p.mark) {
		p.mark = nil
		p.markRestarts++
		return false
	}
	e.VM.RequestStop()
	return true
}

// updatedClassIDs resolves the spec's updated classes to their class IDs so
// the concurrent mark can attribute discovered instances per class (IDs
// survive the install-phase rename, unlike names).
func (e *Engine) updatedClassIDs(spec *upt.Spec) map[int]bool {
	ids := make(map[int]bool, len(spec.ClassUpdates))
	for _, name := range spec.ClassUpdates {
		if cls := e.VM.Reg.LookupClass(name); cls != nil {
			ids[cls.ID] = true
		}
	}
	return ids
}

// finish seals the request, clears barriers, and releases parked threads.
func (e *Engine) finish(p *Pending, res *Result) {
	// Discard any snapshot the update did not consume (aborted or failed
	// before the collection ran): the marker must not outlive its request.
	// No-op when CollectWithMark already took it or no mark ever started.
	e.VM.GC.AbortMark()
	p.mark = nil
	for f := range p.barrier {
		f.Barrier = false
	}
	res.Stats = p.stats
	if e.lazy != nil && e.lazy.stats == &p.stats {
		// Post-pause drain accounting must land in the sealed Result the
		// caller reads, not the dead Pending's copy.
		e.lazy.stats = &res.Stats
	}
	if e.reloc != nil && e.reloc.stats == &p.stats {
		e.reloc.stats = &res.Stats
	}
	p.result = res
	e.Updates = append(e.Updates, res)
	e.emitTerminal(res)
	e.observeUpdate(res)
	e.judge(p, res)
	e.VM.ReleaseUpdateWaiters()
	e.VM.SetUpdatePending(false)
	if e.AfterUpdate != nil {
		e.AfterUpdate(res)
	}
}

// judge closes the gate window and evaluates the health gates over it,
// stamping the verdict on the result and applying the engine's FAIL
// policy. Runs after observeUpdate so the closing snapshot contains this
// update's own pause/outcome series.
func (e *Engine) judge(p *Pending, res *Result) {
	if e.Gate == nil {
		return
	}
	e.VM.PublishMetrics()
	after := e.VM.Metrics.TakeSnapshot()
	tag := ""
	if p.Spec != nil {
		tag = p.Spec.OldTag
	}
	v := e.Gate.Evaluate(tag, res.Outcome.String(), p.gateBefore, p.gateDuring, after)
	res.Verdict = v
	if v == nil || v.Pass {
		return
	}
	switch e.GatePolicy {
	case GateHalt:
		e.halt = v
	case GateForceDrain:
		// Settle the heap before anyone acts on the failure: outstanding
		// lazy/relocation residue is force-completed now. The drain's own
		// errors are its objects' problem, not this verdict's.
		_ = e.ForceDrain()
	}
}

// emitTerminal records the request's terminal flight-recorder event.
func (e *Engine) emitTerminal(res *Result) {
	var k obs.Kind
	switch res.Outcome {
	case Applied:
		k = obs.KUpdateApplied
	case Aborted:
		k = obs.KUpdateAborted
	default:
		k = obs.KUpdateFailed
	}
	msg := ""
	if res.Err != nil {
		msg = res.Err.Error()
	}
	e.VM.Rec.Emit(k, obs.LaneEngine, int64(res.Stats.Attempts), msg)
}

// observeUpdate publishes one finished update into the metrics registry
// (nil-registry safe: every instrument constructor returns a no-op nil).
func (e *Engine) observeUpdate(res *Result) {
	m := e.VM.Metrics
	if m == nil {
		return
	}
	s := &res.Stats
	m.Histogram(obs.MAttempts, obs.CountBuckets()).Observe(float64(s.Attempts))
	m.Counter(obs.MBarriers).Add(int64(s.BarriersInstalled))
	m.Counter(obs.MOSRFrames).Add(int64(s.OSRFrames))
	switch res.Outcome {
	case Applied:
		m.Counter(obs.MUpdatesApplied).Add(1)
		m.Histogram(obs.MSafePointDelay, obs.DurationBuckets()).Observe(s.SafePointDelay.Seconds())
		m.Histogram(obs.MPauseInstall, obs.DurationBuckets()).Observe(s.PauseInstall.Seconds())
		m.Histogram(obs.MPauseGC, obs.DurationBuckets()).Observe(s.PauseGC.Seconds())
		m.Histogram(obs.MPauseGCMark, obs.DurationBuckets()).Observe(s.PauseGCMark.Seconds())
		m.Histogram(obs.MPauseGCRescan, obs.DurationBuckets()).Observe(s.PauseGCRescan.Seconds())
		m.Histogram(obs.MPauseGCCopy, obs.DurationBuckets()).Observe(s.PauseGCCopy.Seconds())
		if s.GCMarkConcurrent {
			m.Histogram(obs.MMarkOutside, obs.DurationBuckets()).Observe(s.GCMarkOutside.Seconds())
		}
		m.Histogram(obs.MPauseTransform, obs.DurationBuckets()).Observe(s.PauseTransform.Seconds())
		m.Histogram(obs.MPauseBulk, obs.DurationBuckets()).Observe(s.PauseTransformBulk.Seconds())
		m.Histogram(obs.MPauseTotal, obs.DurationBuckets()).Observe(s.PauseTotal.Seconds())
		m.Counter(obs.MPairsLogged).Add(int64(s.PairsLogged))
		m.Counter(obs.MGCSteals).Add(s.GCSteals)
		m.Counter(obs.MLazyPending).Add(int64(s.LazyPending))
		m.Counter(obs.MJITInvalidationsBody).Add(int64(s.InvalidatedBody))
		m.Counter(obs.MJITInvalidationsInline).Add(int64(s.InvalidatedInline))
		m.Counter(obs.MJITInvalidationsLayout).Add(int64(s.InvalidatedLayout))
		m.Counter(obs.MJITICFlushes).Add(int64(s.ICFlushed))
	case Aborted:
		m.Counter(obs.MUpdatesAborted).Add(1)
	default:
		m.Counter(obs.MUpdatesFailed).Add(1)
		// Failed pauses stop the world too; a failed update publishing
		// PauseTotal=0 would skew the pause percentiles, so the honest
		// total (stamped by apply's fail path) goes in as well.
		m.Histogram(obs.MPauseTotal, obs.DurationBuckets()).Observe(s.PauseTotal.Seconds())
	}
}
