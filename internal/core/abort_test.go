package core_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"govolve/internal/classfile"
	"govolve/internal/core"
	"govolve/internal/gc"
	"govolve/internal/storm"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

// TestAbortPathsLeaveVMServiceable drives every negative path of the
// update coordinator — wall-clock timeout, safe-point starvation via the
// restricted-method blacklist, transformer cycle detection, and verifier
// rejection of transformer bytecode that is broken beyond even the relaxed
// mode — and after each one requires the VM to be fully serviceable: the
// application threads keep running, no update debris (renamed classes,
// transformer classes, barriers) survives, the whole-VM invariant sweep
// passes, and a benign follow-up update still applies.
func TestAbortPathsLeaveVMServiceable(t *testing.T) {
	cases := []struct {
		name string
		// drive performs the failing update and asserts on its outcome.
		drive func(t *testing.T, f *fixture, v1 *fixtureProgs)
		// heapDead marks the one genuinely unrecoverable path: the DSU
		// collection itself OOMed, so the heap is gone by contract
		// (gc.ErrToSpaceExhausted). Metadata-cleanup checks still apply,
		// but heap-dependent serviceability (invariant sweep, follow-up
		// update) is replaced by fatal-OOM assertions.
		heapDead bool
	}{
		{
			name: "timeout",
			drive: func(t *testing.T, f *fixture, v1 *fixtureProgs) {
				// Change the method that never leaves the stack; with a
				// nanosecond budget the very first blocked attempt aborts.
				v2 := f.prog(strings.Replace(abortV1, "const 1\n    ifne top", "const 2\n    ifne top", 1))
				res, err := f.update("1", v1.prog, v2, "", core.Options{Timeout: time.Nanosecond})
				if err != nil {
					t.Fatal(err)
				}
				if res.Outcome != core.Aborted {
					t.Fatalf("outcome = %v, want Aborted via timeout", res.Outcome)
				}
			},
		},
		{
			name: "blacklist",
			drive: func(t *testing.T, f *fixture, v1 *fixtureProgs) {
				// Structurally the update is trivial (one added class), but
				// the blacklist restricts the pinned spin method, so no DSU
				// safe point is ever reachable.
				v2 := f.prog(abortV1 + "\nclass Extra {\n  static method e()I {\n    const 0\n    return\n  }\n}\n")
				res, err := f.update("1", v1.prog, v2, "", core.Options{MaxAttempts: 8},
					upt.MethodRef{Class: "Loop", Name: "spin", Sig: "()V"})
				if err != nil {
					t.Fatal(err)
				}
				if res.Outcome != core.Aborted {
					t.Fatalf("outcome = %v, want Aborted via blacklist", res.Outcome)
				}
			},
		},
		{
			name: "transformer cycle",
			drive: func(t *testing.T, f *fixture, v1 *fixtureProgs) {
				// Two Pair objects point at each other; a pathological
				// transformer force-transforms its peer first, so the peer's
				// transformer re-enters the first object mid-transform.
				v2 := f.prog(strings.Replace(abortV1, "field w I", "field w I\n  field extra I", 1))
				custom := `
class JvolveTransformers {
  static method jvolveObject(LPair;Lv1_Pair;)V {
    load 1
    getfield v1_Pair.peer LPair;
    ifnull done
    load 1
    getfield v1_Pair.peer LPair;
    invokestatic Jvolve.forceTransform(LObject;)V
  done:
    load 0
    load 1
    getfield v1_Pair.w I
    putfield Pair.w I
    return
  }
}
`
				res, err := f.update("1", v1.prog, v2, custom, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if res.Outcome != core.Failed || res.Err == nil ||
					!strings.Contains(res.Err.Error(), "cycle") {
					t.Fatalf("outcome = %v err = %v, want transformer cycle failure", res.Outcome, res.Err)
				}
			},
		},
		{
			name: "OSR failure",
			drive: func(t *testing.T, f *fixture, v1 *fixtureProgs) {
				// An active-method update of the pinned spin loop whose
				// user-supplied locals map is bogus: the safe-point check
				// accepts the frame (every pc is mapped), so the failure
				// surfaces inside the pause, in OSRRewrite — after install
				// has renamed classes and loaded the transformer class. The
				// fail path must unwind all of it.
				v2 := f.prog(strings.Replace(abortV1, "const 1\n    ifne top", "const 1\n    nop\n    ifne top", 1))
				spec, err := f.updateSpec("1", v1.prog, v2)
				if err != nil {
					t.Fatal(err)
				}
				spec.AddActiveUpdate(upt.MethodRef{Class: "Loop", Name: "spin", Sig: "()V"},
					upt.ActivePCMap{
						PC:     map[int]int{0: 0, 1: 1, 2: 2, 3: 3},
						Locals: map[int]int{99: 0}, // slot 99 does not exist
					})
				res, err := f.engine.ApplyNow(spec, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if res.Outcome != core.Failed || res.Err == nil ||
					!strings.Contains(res.Err.Error(), "active-method update") {
					t.Fatalf("outcome = %v err = %v, want OSR rewrite failure", res.Outcome, res.Err)
				}
				// Regression: failed updates must publish their true pause
				// cost, not zero (the pause stopped the world either way).
				if res.Stats.PauseTotal <= 0 {
					t.Fatalf("failed update published PauseTotal = %v, want > 0", res.Stats.PauseTotal)
				}
				if res.Stats.PauseTotal < res.Stats.PauseInstall+res.Stats.PauseGC+res.Stats.PauseTransform {
					t.Fatalf("PauseTotal %v < install %v + gc %v + transform %v",
						res.Stats.PauseTotal, res.Stats.PauseInstall, res.Stats.PauseGC, res.Stats.PauseTransform)
				}
			},
		},
		{
			name:     "OOM during DSU copy",
			heapDead: true,
			drive: func(t *testing.T, f *fixture, v1 *fixtureProgs) {
				// Pin live Pair objects past ~70% of the semispace. The DSU
				// collection must copy each one twice (old copy + wider
				// shell, ~2.25x its size), so to-space exhausts mid-flight
				// and the update fails with the typed OOM.
				cls := f.vm.Reg.LookupClass("Pair")
				for f.vm.Heap.UsedWords()*10 < f.vm.Heap.SemiWords()*7 {
					a, ok := f.vm.Heap.AllocObject(cls)
					if !ok {
						t.Fatal("heap filled before reaching the target fraction")
					}
					f.vm.PushHandle(a)
				}
				v2 := f.prog(strings.Replace(abortV1, "field w I", "field w I\n  field extra I", 1))
				res, err := f.update("1", v1.prog, v2, "", core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if res.Outcome != core.Failed {
					t.Fatalf("outcome = %v, want Failed via collection OOM", res.Outcome)
				}
				if !errors.Is(res.Err, gc.ErrToSpaceExhausted) {
					t.Fatalf("err = %v, want gc.ErrToSpaceExhausted in the chain", res.Err)
				}
			},
		},
		{
			name: "transformer rejected by verifier",
			drive: func(t *testing.T, f *fixture, v1 *fixtureProgs) {
				// The transformer underflows the operand stack — illegal
				// even in relaxed mode, so the request must be refused
				// before the VM stops a single thread.
				v2 := f.prog(strings.Replace(abortV1, "field w I", "field w I\n  field extra I", 1))
				custom := `
class JvolveTransformers {
  static method jvolveObject(LPair;Lv1_Pair;)V {
    add
    return
  }
}
`
				_, err := f.update("1", v1.prog, v2, custom, core.Options{})
				if err == nil || !strings.Contains(err.Error(), "transformers rejected") {
					t.Fatalf("err = %v, want transformer verification rejection", err)
				}
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture(t, 1<<16)
			v1 := &fixtureProgs{prog: f.load(abortV1)}
			f.spawn("App")
			f.vm.Step(8)

			tc.drive(t, f, v1)

			// --- serviceability, uniform across every path ---------------

			// 1. No update debris: renamed old versions, transformer class,
			//    pending flags, or return barriers.
			if f.vm.Reg.LookupClass("v1_Pair") != nil || f.vm.Reg.LookupClass("v1_Loop") != nil {
				t.Fatal("abort left renamed old classes registered")
			}
			if f.vm.Reg.LookupClass(upt.TransformersClassName) != nil {
				t.Fatal("abort left the transformer class registered")
			}
			if f.vm.UpdatePending() {
				t.Fatal("abort left the update-pending flag set")
			}

			if tc.heapDead {
				// The heap is unusable by contract: the flip happened and an
				// unknown subset of roots is forwarded. Heap-dependent
				// serviceability cannot hold; instead the VM must have gone
				// into the fatal-OOM regime.
				if f.vm.FatalHeap == nil {
					t.Fatal("collection failed but FatalHeap is not set")
				}
				if !errors.Is(f.vm.FatalHeap, gc.ErrToSpaceExhausted) {
					t.Fatalf("FatalHeap = %v, want gc.ErrToSpaceExhausted in the chain", f.vm.FatalHeap)
				}
				// Any thread that needs an allocation now dies with the
				// typed OOM, flagged distinctly in DeadErrors. Drain the
				// residual bump space so the next `new Pair` must collect.
				cls := f.vm.Reg.LookupClass("Pair")
				for {
					a, ok := f.vm.Heap.AllocObject(cls)
					if !ok {
						break
					}
					f.vm.PushHandle(a)
				}
				f.spawn("App")
				f.vm.Step(200)
				f.vm.ReapDeadThreads()
				found := false
				for _, de := range f.vm.DeadErrors {
					if de.OOM {
						found = true
						if !errors.Is(de.Err, gc.ErrToSpaceExhausted) {
							t.Fatalf("DeadError flagged OOM but err = %v", de.Err)
						}
					}
				}
				if !found {
					t.Fatalf("no DeadError flagged OOM after fatal collection (dead errors: %v)", f.vm.DeadErrors)
				}
				return
			}

			// 2. The whole-VM invariant sweep holds.
			if err := storm.CheckVM(f.vm); err != nil {
				t.Fatalf("invariant sweep after abort: %v", err)
			}

			// 3. Application threads are alive and keep making progress.
			f.vm.Step(50)
			for _, th := range f.vm.Threads {
				if th.Err != nil {
					t.Fatalf("thread %s errored after abort: %v", th.Name, th.Err)
				}
				if th.State == vm.Dead {
					t.Fatalf("thread %s died after abort", th.Name)
				}
			}

			// 4. A benign follow-up update (added class only — no
			//    restricted methods) still applies.
			v3 := f.prog(abortV1 + "\nclass Followup {\n  static method ok()I {\n    const 7\n    return\n  }\n}\n")
			res, err := f.update("2", v1.prog, v3, "", core.Options{})
			if err != nil {
				t.Fatalf("follow-up update: %v", err)
			}
			if res.Outcome != core.Applied {
				t.Fatalf("follow-up outcome = %v err = %v, want Applied", res.Outcome, res.Err)
			}
			if err := storm.CheckVM(f.vm); err != nil {
				t.Fatalf("invariant sweep after follow-up update: %v", err)
			}
		})
	}
}

// TestFailedUpdatePauseTotalRecorded pins the failure-path accounting fix:
// a transformer-phase failure reaches the pause's deepest phase, and the
// published stats must still satisfy PauseTotal ≥ install + gc + transform
// with every component non-zero where the phase actually ran. (Before the
// fix, failed updates published PauseTotal=0 alongside non-zero per-phase
// stats, skewing the pause histograms.)
func TestFailedUpdatePauseTotalRecorded(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := &fixtureProgs{prog: f.load(abortV1)}
	f.spawn("App")
	f.vm.Step(8)

	v2 := f.prog(strings.Replace(abortV1, "field w I", "field w I\n  field extra I", 1))
	custom := `
class JvolveTransformers {
  static method jvolveObject(LPair;Lv1_Pair;)V {
    load 1
    getfield v1_Pair.peer LPair;
    ifnull done
    load 1
    getfield v1_Pair.peer LPair;
    invokestatic Jvolve.forceTransform(LObject;)V
  done:
    return
  }
}
`
	res, err := f.update("1", v1.prog, v2, custom, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Failed {
		t.Fatalf("outcome = %v err = %v, want Failed via transformer cycle", res.Outcome, res.Err)
	}
	s := res.Stats
	if s.PauseInstall <= 0 || s.PauseGC <= 0 || s.PauseTransform <= 0 {
		t.Fatalf("failed update lost phase stats: install=%v gc=%v transform=%v",
			s.PauseInstall, s.PauseGC, s.PauseTransform)
	}
	if s.PauseTotal < s.PauseInstall+s.PauseGC+s.PauseTransform {
		t.Fatalf("PauseTotal %v < install %v + gc %v + transform %v",
			s.PauseTotal, s.PauseInstall, s.PauseGC, s.PauseTransform)
	}
}

// fixtureProgs bundles the loaded v1 program for the table cases.
type fixtureProgs struct{ prog *classfile.Program }

// abortV1 is the shared baseline: a spinning thread that never leaves
// Loop.spin (safe-point starvation fodder) plus a pair of mutually linked
// heap objects (transformer cycle fodder).
const abortV1 = `
class Pair {
  field peer LPair;
  field w I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
class Loop {
  static method spin()V {
  top:
    const 1
    ifne top
    return
  }
}
class App {
  static field a LPair;
  static method main()V {
    new Pair
    dup
    invokespecial Pair.<init>()V
    putstatic App.a LPair;
    new Pair
    dup
    invokespecial Pair.<init>()V
    getstatic App.a LPair;
    swap
    putfield Pair.peer LPair;
    getstatic App.a LPair;
    getfield Pair.peer LPair;
    getstatic App.a LPair;
    putfield Pair.peer LPair;
    invokestatic Loop.spin()V
    return
  }
}
`
