package core_test

import (
	"strings"
	"testing"

	"govolve/internal/core"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

// TestDeletedClassInstancesSurviveGC: an update deletes a class while an
// instance is still reachable through an Object-typed slot. New code can no
// longer name the class, but the instance must stay structurally intact
// across the DSU collection and subsequent ones.
func TestDeletedClassInstancesSurviveGC(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(`
class Relic {
  field tag I
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    load 0
    const 77
    putfield Relic.tag I
    return
  }
}
class Keeper {
  static field held LObject;
  static method stash()V {
    new Relic
    dup
    invokespecial Relic.<init>()V
    putstatic Keeper.held LObject;
    return
  }
  static method check()I {
    getstatic Keeper.held LObject;
    ifnull gone
    const 1
    return
  gone:
    const 0
    return
  }
}
class App {
  static method main()V {
    invokestatic Keeper.stash()V
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    invokestatic Keeper.check()I
    invokestatic System.printInt(I)V
    return
  }
}
`)
	// v2 deletes Relic; Keeper keeps holding the instance as an Object.
	v2 := f.prog(`
class Keeper {
  static field held LObject;
  static method stash()V {
    return
  }
  static method check()I {
    getstatic Keeper.held LObject;
    ifnull gone
    const 1
    return
  gone:
    const 0
    return
  }
}
class App {
  static method main()V {
    invokestatic Keeper.stash()V
    const 0
    store 0
  loop:
    load 0
    const 60000
    if_icmpge done
    load 0
    const 1
    add
    store 0
    goto loop
  done:
    invokestatic Keeper.check()I
    invokestatic System.printInt(I)V
    return
  }
}
`)
	f.spawn("App")
	f.vm.Step(2)
	res := f.mustApply("1", v1, v2, "")
	_ = res
	if f.vm.Reg.LookupClass("Relic") != nil {
		t.Fatal("deleted class still named")
	}
	// An extra collection after the update must still trace the orphan.
	if _, err := f.vm.CollectGarbage(); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(f.finish()); got != "1" {
		t.Fatalf("held = %q, want 1 (instance of deleted class survived)", got)
	}
}

// TestConcurrentUpdateRejected: a second RequestUpdate while one is in
// flight must fail without disturbing the first.
func TestConcurrentUpdateRejected(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(foreverV1)
	v2 := f.prog(strings.Replace(foreverV1, "const 1\n    ifne top", "const 2\n    ifne top", 1))
	f.spawn("App")
	f.vm.Step(2)
	spec1, err := upt.Prepare("1", v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := f.engine.RequestUpdate(spec1, core.Options{MaxAttempts: 1000000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.RequestUpdate(spec1, core.Options{}); err == nil {
		t.Fatal("second in-flight update accepted")
	}
	_ = p1
}

// TestNoOpUpdate: updating to an identical program applies trivially and
// changes nothing observable.
func TestNoOpUpdate(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(bodyV1)
	f.spawn("App")
	f.vm.Step(1)
	res := f.mustApply("1", v1, f.prog(bodyV1), "")
	if res.Stats.TransformedObjects != 0 || res.Stats.InvalidatedMethods != 0 {
		t.Fatalf("no-op update did work: %+v", res.Stats)
	}
	if got := strings.TrimSpace(f.finish()); got != "1" {
		t.Fatalf("output = %q", got)
	}
}

// TestUpdateWithNoThreads: updates apply on an idle VM (all threads dead).
func TestUpdateWithNoThreads(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(shapeV1)
	f.spawn("App")
	if err := f.vm.Run(); err != nil {
		t.Fatal(err)
	}
	res := f.mustApply("1", v1, f.prog(shapeV2), "")
	// The App.b static still holds a Box; it must be transformed even
	// though no thread is alive.
	if res.Stats.TransformedObjects != 1 {
		t.Fatalf("transformed %d, want 1 (static-held object)", res.Stats.TransformedObjects)
	}
}

// TestUpdateWaitThreadStacksAreScanned: a thread parked on a fired return
// barrier still has live frames; the DSU collection must treat them as
// roots (a missed root here would corrupt the resumed frame).
func TestUpdateWaitThreadStacksAreScanned(t *testing.T) {
	f := newFixture(t, 1<<16)
	v1 := f.load(barrierV1)
	v2 := f.prog(strings.Replace(barrierV1, "const 10\n    return", "const 20\n    return", 1))
	f.spawn("App")
	f.vm.Step(2)
	onStack := false
	for _, fr := range f.vm.Threads[0].Frames {
		if strings.Contains(fr.Method().FullName(), "work") {
			onStack = true
		}
	}
	if !onStack {
		t.Skip("did not land inside work()")
	}
	res := f.mustApply("1", v1, v2, "")
	if res.Stats.BarriersInstalled == 0 {
		t.Skip("no barrier fired this run")
	}
	if got := strings.TrimSpace(f.finish()); got != "20" {
		t.Fatalf("result = %q", got)
	}
	for _, th := range f.vm.Threads {
		if th.State == vm.UpdateWait {
			t.Fatal("thread left in UpdateWait after update")
		}
	}
}
