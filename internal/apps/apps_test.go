package apps

import (
	"strings"
	"testing"

	"govolve/internal/asm"
	"govolve/internal/classfile"
	"govolve/internal/core"
	"govolve/internal/storm"
	"govolve/internal/verifier"
	"govolve/internal/vm"
)

// bootEnv merges the VM bootstrap classes with a program for verification.
type bootEnv struct {
	boot map[string]*classfile.Class
	p    *classfile.Program
}

func newBootEnv(t *testing.T, p *classfile.Program) bootEnv {
	t.Helper()
	classes, err := asm.Assemble("bootstrap.jva", vm.BootstrapSource)
	if err != nil {
		t.Fatal(err)
	}
	boot := make(map[string]*classfile.Class, len(classes))
	for _, c := range classes {
		boot[c.Name] = c
	}
	return bootEnv{boot: boot, p: p}
}

func (e bootEnv) LookupClass(name string) *classfile.Class {
	if c, ok := e.p.Classes[name]; ok {
		return c
	}
	return e.boot[name]
}

func TestAllVersionsAssembleAndVerify(t *testing.T) {
	for _, app := range All() {
		for i, ver := range app.Versions {
			p, err := app.Program(i)
			if err != nil {
				t.Fatalf("%s %s: %v", app.Name, ver.Name, err)
			}
			env := newBootEnv(t, p)
			v := verifier.New(env, verifier.Strict)
			for _, c := range p.Sorted() {
				if err := v.VerifyClass(c); err != nil {
					t.Errorf("%s %s: %v", app.Name, ver.Name, err)
				}
			}
		}
	}
}

func TestAllSpecsPrepare(t *testing.T) {
	for _, app := range All() {
		for i := 0; i < app.UpdateCount(); i++ {
			if _, err := app.Spec(i); err != nil {
				t.Errorf("%s %s→%s: %v", app.Name, app.Versions[i].Name, app.Versions[i+1].Name, err)
			}
		}
	}
}

func TestServersServeEveryVersion(t *testing.T) {
	for _, app := range All() {
		for i := range app.Versions {
			s, err := Launch(app, LaunchOptions{Version: i, HeapWords: 1 << 18})
			if err != nil {
				t.Fatalf("%s %s: launch: %v", app.Name, app.Versions[i].Name, err)
			}
			if err := s.VerifyActive(); err != nil {
				t.Fatalf("%s %s: %v", app.Name, app.Versions[i].Name, err)
			}
			n, err := s.DoBatch()
			if err != nil {
				t.Fatalf("%s %s: batch: %v", app.Name, app.Versions[i].Name, err)
			}
			if n == 0 {
				t.Fatalf("%s %s: no responses", app.Name, app.Versions[i].Name)
			}
			for _, th := range s.VM.Threads {
				if th.Err != nil {
					t.Fatalf("%s %s: thread %s: %v\n%s", app.Name, app.Versions[i].Name, th.Name, th.Err, th.Backtrace())
				}
			}
		}
	}
}

// TestUpdateMatrix is the §4 experience experiment in miniature: every
// update of every app is applied to the live server. 20 of 22 must apply;
// the two engineered always-on-stack changes must abort. The storm
// harness's whole-VM invariant sweep runs after every one of the 22
// transitions, so registry, heap, stack, and gauge invariants are checked
// on the real servers as well as on generated storm programs.
func TestUpdateMatrix(t *testing.T) {
	applied, aborted, total := 0, 0, 0
	for _, app := range All() {
		entries, err := RunMatrix(app, 1<<20, storm.CheckVM)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if len(entries) != app.UpdateCount() {
			t.Fatalf("%s: %d entries, want %d", app.Name, len(entries), app.UpdateCount())
		}
		for _, e := range entries {
			total++
			target := versionByName(t, app, e.To)
			switch {
			case target.ExpectAbort:
				if e.Outcome != core.Aborted {
					t.Errorf("%s %s→%s: outcome %v, want abort (method always on stack)",
						e.App, e.From, e.To, e.Outcome)
				}
				aborted++
			default:
				if e.Outcome != core.Applied {
					t.Errorf("%s %s→%s: outcome %v (%s), want applied",
						e.App, e.From, e.To, e.Outcome, e.Note)
					continue
				}
				applied++
			}
			if !e.ProbeOK {
				t.Errorf("%s %s→%s: server not verified after update", e.App, e.From, e.To)
			}
			if target.NeedsQuiesce && !e.Quiesced {
				t.Errorf("%s %s→%s: expected quiesce-then-apply behaviour", e.App, e.From, e.To)
			}
		}
	}
	if total != 22 {
		t.Errorf("total updates = %d, want 22 (10 web + 9 email + 3 ftp)", total)
	}
	if applied != 20 || aborted != 2 {
		t.Errorf("applied/aborted = %d/%d, want 20/2 (the paper's headline)", applied, aborted)
	}
	// Method-body-only DSU systems (HotSwap, edit-and-continue) support
	// well under half of real releases — 7 of our 22 (the paper: 9 of 22).
	bodyOnly := 0
	for _, app := range All() {
		for _, v := range app.Versions {
			if v.BodyOnly {
				bodyOnly++
			}
		}
	}
	if bodyOnly != 7 {
		t.Errorf("body-only updates = %d, want 7", bodyOnly)
	}
}

func versionByName(t *testing.T, app *App, name string) Version {
	t.Helper()
	for _, v := range app.Versions {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("no version %s", name)
	return Version{}
}

// TestEmailFigure3Update checks the paper's running example end to end:
// after 1.3.1→1.3.2, alice's forwards — created as strings under the old
// version — read back as formatted EmailAddress objects.
func TestEmailFigure3Update(t *testing.T) {
	app := EmailServer()
	idx131 := -1
	for i, v := range app.Versions {
		if v.Name == "1.3.1" {
			idx131 = i
		}
	}
	if idx131 < 0 {
		t.Fatal("no 1.3.1")
	}
	s, err := Launch(app, LaunchOptions{Version: idx131, HeapWords: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	fwd := func() string {
		conn, err := s.VM.Net.Connect(110)
		if err != nil {
			t.Fatal(err)
		}
		defer s.VM.Net.ClientClose(conn)
		if err := s.VM.Net.ClientSend(conn, "FWD alice"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			s.VM.Step(5)
			if line, ok := s.VM.Net.ClientRecv(conn); ok {
				return line
			}
		}
		t.Fatal("FWD timed out")
		return ""
	}
	before := fwd()
	if !strings.Contains(before, "alice@backup.example.com") {
		t.Fatalf("pre-update forwards = %q", before)
	}
	res, err := s.ApplyNext(core.Options{MaxAttempts: 200}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Applied {
		t.Fatalf("1.3.2 outcome: %v (%v)", res.Outcome, res.Err)
	}
	after := fwd()
	// The custom transformer split the strings at '@' into EmailAddress
	// objects; format() reassembles them, so content survives the type
	// change — the Figure 3 behaviour.
	if !strings.Contains(after, "alice@backup.example.com") ||
		!strings.Contains(after, "alice@phone.example.com") {
		t.Fatalf("post-update forwards = %q; transformer lost data", after)
	}
}
