package apps

import (
	"testing"

	"govolve/internal/core"
)

// checkPauseIdentity asserts the core.Stats accounting identities that hold
// for every applied update regardless of VM configuration: the measured
// phases are disjoint slices of the total pause, so
//
//	PauseTotal >= PauseInstall + PauseGC + PauseTransform
//	PauseTransform >= PauseTransformBulk
//	PauseGC >= PauseGCMark + PauseGCRescan + PauseGCCopy
//
// A violation means a timer was started in the wrong place or a phase is
// being double-counted — exactly the kind of bug that would silently skew
// Table 1, BENCH_pause.json, and the obs pause histograms.
func checkPauseIdentity(t *testing.T, mode string, e MatrixEntry) {
	t.Helper()
	s := e.Stats
	if s.PauseTotal < s.PauseInstall+s.PauseGC+s.PauseTransform {
		t.Errorf("%s %s %s→%s: PauseTotal %v < install %v + gc %v + transform %v",
			mode, e.App, e.From, e.To, s.PauseTotal, s.PauseInstall, s.PauseGC, s.PauseTransform)
	}
	if s.PauseTransform < s.PauseTransformBulk {
		t.Errorf("%s %s %s→%s: PauseTransform %v < bulk slice %v",
			mode, e.App, e.From, e.To, s.PauseTransform, s.PauseTransformBulk)
	}
	if s.PauseGC < s.PauseGCMark+s.PauseGCRescan+s.PauseGCCopy {
		t.Errorf("%s %s %s→%s: PauseGC %v < mark %v + rescan %v + copy %v",
			mode, e.App, e.From, e.To, s.PauseGC, s.PauseGCMark, s.PauseGCRescan, s.PauseGCCopy)
	}
	if s.PauseTotal <= 0 {
		t.Errorf("%s %s %s→%s: applied update with non-positive PauseTotal %v",
			mode, e.App, e.From, e.To, s.PauseTotal)
	}
	if s.SafePointDelay < 0 {
		t.Errorf("%s %s %s→%s: negative SafePointDelay %v", mode, e.App, e.From, e.To, s.SafePointDelay)
	}
}

// TestPauseDecompositionInvariant drives every application's whole update
// matrix under the default stop-the-world pipeline and checks the pause
// identities plus the STW decomposition. The decomposition is uniform
// across modes: PauseGCMark is in-pause *discovery* only, so the fused
// trace+copy of the STW collectors is all PauseGCCopy and the
// concurrent-only fields must be zero.
func TestPauseDecompositionInvariant(t *testing.T) {
	applied := 0
	for _, app := range All() {
		entries, err := RunMatrix(app, 1<<20)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		for _, e := range entries {
			if e.Outcome != core.Applied {
				continue
			}
			applied++
			checkPauseIdentity(t, "stw", e)
			s := e.Stats
			if s.GCMarkConcurrent {
				t.Errorf("stw %s %s→%s: GCMarkConcurrent set without GCConcurrentMark", e.App, e.From, e.To)
			}
			if s.PauseGCCopy <= 0 {
				t.Errorf("stw %s %s→%s: fused collection reports no in-pause copy time", e.App, e.From, e.To)
			}
			if s.PauseGCMark != 0 || s.GCMarkOutside != 0 || s.PauseGCRescan != 0 || s.GCRescanMarked != 0 {
				t.Errorf("stw %s %s→%s: concurrent-only fields nonzero: mark %v outside %v rescan %v rescanMarked %d",
					e.App, e.From, e.To, s.PauseGCMark, s.GCMarkOutside, s.PauseGCRescan, s.GCRescanMarked)
			}
		}
	}
	if applied == 0 {
		t.Fatal("matrix produced no applied updates; the invariant was never exercised")
	}
}

// TestPauseDecompositionInvariantConcurrentMark re-runs the full matrix with
// the concurrent SATB mark enabled (serial and parallel collection). Updates
// that complete a concurrent trace must report all mark time outside the
// pause; the bounded-restart fallback (GCMarkConcurrent=false despite the
// option) must satisfy the fused decomposition instead.
func TestPauseDecompositionInvariantConcurrentMark(t *testing.T) {
	for _, workers := range []int{0, 4} {
		applied, concurrent := 0, 0
		for _, app := range All() {
			entries, err := RunMatrixOpts(app, LaunchOptions{
				HeapWords:        1 << 20,
				GCWorkers:        workers,
				GCConcurrentMark: true,
			})
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, app.Name, err)
			}
			for _, e := range entries {
				if e.Outcome != core.Applied {
					continue
				}
				applied++
				checkPauseIdentity(t, "cmark", e)
				s := e.Stats
				if s.GCMarkConcurrent {
					concurrent++
					if s.PauseGCMark != 0 {
						t.Errorf("cmark %s %s→%s: concurrent run reports in-pause mark %v",
							e.App, e.From, e.To, s.PauseGCMark)
					}
					if s.GCMarkOutside <= 0 {
						t.Errorf("cmark %s %s→%s: concurrent run reports no outside-pause mark time",
							e.App, e.From, e.To)
					}
					if s.GCMarkedObjects <= 0 {
						t.Errorf("cmark %s %s→%s: concurrent trace marked nothing", e.App, e.From, e.To)
					}
				} else {
					// STW fallback after mark restarts exhausted: fused rules.
					if s.PauseGCCopy <= 0 || s.PauseGCMark != 0 || s.GCMarkOutside != 0 {
						t.Errorf("cmark %s %s→%s: fallback run has wrong decomposition: %+v",
							e.App, e.From, e.To, s)
					}
				}
			}
		}
		if applied == 0 {
			t.Fatalf("workers=%d: matrix produced no applied updates", workers)
		}
		if concurrent == 0 {
			t.Fatalf("workers=%d: no update completed a concurrent mark; the pipeline never engaged", workers)
		}
	}
}
