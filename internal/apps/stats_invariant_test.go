package apps

import (
	"testing"

	"govolve/internal/core"
)

// TestPauseDecompositionInvariant drives every application's whole update
// matrix and checks the core.Stats accounting identity on each applied
// update: the measured phases are disjoint slices of the total pause, so
//
//	PauseTotal >= PauseInstall + PauseGC + PauseTransform
//
// and the bulk fan-out is a slice of the transformer phase:
//
//	PauseTransform >= PauseTransformBulk
//
// A violation means a timer was started in the wrong place or a phase is
// being double-counted — exactly the kind of bug that would silently skew
// Table 1 and the obs pause histograms.
func TestPauseDecompositionInvariant(t *testing.T) {
	applied := 0
	for _, app := range All() {
		entries, err := RunMatrix(app, 1<<20)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		for _, e := range entries {
			if e.Outcome != core.Applied {
				continue
			}
			applied++
			s := e.Stats
			if s.PauseTotal < s.PauseInstall+s.PauseGC+s.PauseTransform {
				t.Errorf("%s %s→%s: PauseTotal %v < install %v + gc %v + transform %v",
					e.App, e.From, e.To, s.PauseTotal, s.PauseInstall, s.PauseGC, s.PauseTransform)
			}
			if s.PauseTransform < s.PauseTransformBulk {
				t.Errorf("%s %s→%s: PauseTransform %v < bulk slice %v",
					e.App, e.From, e.To, s.PauseTransform, s.PauseTransformBulk)
			}
			if s.PauseTotal <= 0 {
				t.Errorf("%s %s→%s: applied update with non-positive PauseTotal %v",
					e.App, e.From, e.To, s.PauseTotal)
			}
			if s.SafePointDelay < 0 {
				t.Errorf("%s %s→%s: negative SafePointDelay %v", e.App, e.From, e.To, s.SafePointDelay)
			}
		}
	}
	if applied == 0 {
		t.Fatal("matrix produced no applied updates; the invariant was never exercised")
	}
}
