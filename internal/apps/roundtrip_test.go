package apps

import (
	"testing"

	"govolve/internal/asm"
	"govolve/internal/bytecode"
)

// TestAppCorpusPrinterRoundTrip renders every class of every release of
// every application back to assembler text and re-assembles it, checking
// structural identity — the printer and parser agree on the whole corpus
// (over 20 program versions).
func TestAppCorpusPrinterRoundTrip(t *testing.T) {
	classes, methods := 0, 0
	for _, app := range All() {
		for i, ver := range app.Versions {
			p, err := app.Program(i)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range p.Sorted() {
				src := c.String()
				back, err := asm.Assemble("rt.jva", src)
				if err != nil {
					t.Fatalf("%s %s %s: reassemble: %v\n%s", app.Name, ver.Name, c.Name, err, src)
				}
				b := back[0]
				if b.Name != c.Name || b.Super != c.Super {
					t.Fatalf("%s %s %s: header changed", app.Name, ver.Name, c.Name)
				}
				if len(b.Fields) != len(c.Fields) || len(b.Methods) != len(c.Methods) {
					t.Fatalf("%s %s %s: member counts changed", app.Name, ver.Name, c.Name)
				}
				for j, m := range c.Methods {
					if m.Native {
						continue
					}
					if !bytecode.CodeEqual(m.Code, b.Methods[j].Code) {
						t.Fatalf("%s %s %s.%s: code changed through print/parse",
							app.Name, ver.Name, c.Name, m.Name)
					}
					methods++
				}
				classes++
			}
		}
	}
	if classes < 100 || methods < 300 {
		t.Fatalf("corpus smaller than expected: %d classes, %d methods", classes, methods)
	}
}
