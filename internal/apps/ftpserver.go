package apps

// The FTP server stands in for CrossFTP 1.05–1.08 (paper Table 4): four
// releases, three updates, every one of which adds or deletes fields — so
// none is supportable by a method-body-only DSU system (the paper makes the
// same observation). The 1.07→1.08 update changes RequestHandler.run()
// itself; with active sessions that method is essentially always on stack,
// so the update only applies once the server is relatively idle — the
// paper's §4.4 story, which the update-matrix harness reproduces by first
// attempting the update under load (abort) and then after draining
// connections (applied).

// ftpMain is the accept loop, byte-identical in all four releases.
const ftpMain = `
class FtpServer {
  static method main()V {
    const 21
    invokestatic Net.listen(I)I
    store 0
  accept:
    load 0
    invokestatic Net.accept(I)I
    store 1
    new RequestHandler
    dup
    load 1
    invokespecial RequestHandler.<init>(I)V
    invokestatic Thread.spawn(LObject;)V
    goto accept
  }
}
`

func ftpBanner(ver string) string {
	return `
class Banner {
  static method id()LString; {
    ldc "CrossFTP/` + ver + `"
    return
  }
}
`
}

// --- RequestHandler variants ---------------------------------------------------

// ftpHandlerV1 (1.05–1.07): run() delegates every line to FtpCommands.
const ftpHandlerV1 = `
class RequestHandler {
  field conn I
  field user LString;
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield RequestHandler.conn I
    return
  }
  method setUser(LString;)V {
    load 0
    load 1
    putfield RequestHandler.user LString;
    return
  }
  method user()LString; {
    load 0
    getfield RequestHandler.user LString;
    return
  }
  method run()V {
  loop:
    load 0
    getfield RequestHandler.conn I
    invokestatic Net.recvLine(I)LString;
    store 1
    load 1
    ifnull closed
    load 0
    getfield RequestHandler.conn I
    load 1
    load 0
    invokestatic FtpCommands.exec(ILString;LRequestHandler;)Z
    ifne loop
  closed:
    load 0
    getfield RequestHandler.conn I
    invokestatic Net.close(I)V
    return
  }
}
`

// ftpHandlerV2 (1.08): per-session command accounting happens inside run()
// — the change that pins the update until sessions drain.
const ftpHandlerV2 = `
class RequestHandler {
  field conn I
  field user LString;
  field commands I
  field lastSeen I
  field aborted Z
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield RequestHandler.conn I
    return
  }
  method setUser(LString;)V {
    load 0
    load 1
    putfield RequestHandler.user LString;
    return
  }
  method user()LString; {
    load 0
    getfield RequestHandler.user LString;
    return
  }
  method run()V {
  loop:
    load 0
    getfield RequestHandler.conn I
    invokestatic Net.recvLine(I)LString;
    store 1
    load 1
    ifnull closed
    load 0
    load 0
    getfield RequestHandler.commands I
    const 1
    add
    putfield RequestHandler.commands I
    load 0
    invokestatic System.time()I
    putfield RequestHandler.lastSeen I
    load 0
    getfield RequestHandler.conn I
    load 1
    load 0
    invokestatic FtpCommands.exec(ILString;LRequestHandler;)Z
    ifne loop
  closed:
    load 0
    getfield RequestHandler.conn I
    invokestatic Net.close(I)V
    return
  }
}
`

// --- FileStore variants -----------------------------------------------------------

const ftpFilesV1 = `
class FileStore {
  static field names [LString;
  static field bodies [LString;
  static field count I
  static method <clinit>()V {
    const 16
    newarray LString;
    putstatic FileStore.names [LString;
    const 16
    newarray LString;
    putstatic FileStore.bodies [LString;
    ldc "readme.txt"
    ldc "welcome to crossftp"
    invokestatic FileStore.put(LString;LString;)V
    ldc "motd"
    ldc "have a nice day"
    invokestatic FileStore.put(LString;LString;)V
    return
  }
  static method put(LString;LString;)V {
    getstatic FileStore.names [LString;
    getstatic FileStore.count I
    load 0
    aset
    getstatic FileStore.bodies [LString;
    getstatic FileStore.count I
    load 1
    aset
    getstatic FileStore.count I
    const 1
    add
    putstatic FileStore.count I
    return
  }
  static method get(LString;)LString; {
    const 0
    store 1
  scan:
    load 1
    getstatic FileStore.count I
    if_icmpge missing
    getstatic FileStore.names [LString;
    load 1
    aget
    load 0
    invokevirtual String.equals(LString;)Z
    ifeq next
    getstatic FileStore.bodies [LString;
    load 1
    aget
    return
  next:
    load 1
    const 1
    add
    store 1
    goto scan
  missing:
    null
    return
  }
  static method listing()LString; {
    ldc ""
    store 0
    const 0
    store 1
  scan:
    load 1
    getstatic FileStore.count I
    if_icmpge out
    load 0
    getstatic FileStore.names [LString;
    load 1
    aget
    invokevirtual String.concat(LString;)LString;
    ldc " "
    invokevirtual String.concat(LString;)LString;
    store 0
    load 1
    const 1
    add
    store 1
    goto scan
  out:
    load 0
    return
  }
}
`

// ftpFilesV2 (1.07) tracks download counts per file (parallel field added).
const ftpFilesV2 = `
class FileStore {
  static field names [LString;
  static field bodies [LString;
  static field reads [I
  static field count I
  static method <clinit>()V {
    const 16
    newarray LString;
    putstatic FileStore.names [LString;
    const 16
    newarray LString;
    putstatic FileStore.bodies [LString;
    const 16
    newarray I
    putstatic FileStore.reads [I
    ldc "readme.txt"
    ldc "welcome to crossftp"
    invokestatic FileStore.put(LString;LString;)V
    ldc "motd"
    ldc "have a nice day"
    invokestatic FileStore.put(LString;LString;)V
    return
  }
  static method put(LString;LString;)V {
    getstatic FileStore.names [LString;
    getstatic FileStore.count I
    load 0
    aset
    getstatic FileStore.bodies [LString;
    getstatic FileStore.count I
    load 1
    aset
    getstatic FileStore.count I
    const 1
    add
    putstatic FileStore.count I
    return
  }
  static method get(LString;)LString; {
    const 0
    store 1
  scan:
    load 1
    getstatic FileStore.count I
    if_icmpge missing
    getstatic FileStore.names [LString;
    load 1
    aget
    load 0
    invokevirtual String.equals(LString;)Z
    ifeq next
    getstatic FileStore.reads [I
    load 1
    getstatic FileStore.reads [I
    load 1
    aget
    const 1
    add
    aset
    getstatic FileStore.bodies [LString;
    load 1
    aget
    return
  next:
    load 1
    const 1
    add
    store 1
    goto scan
  missing:
    null
    return
  }
  static method listing()LString; {
    ldc ""
    store 0
    const 0
    store 1
  scan:
    load 1
    getstatic FileStore.count I
    if_icmpge out
    load 0
    getstatic FileStore.names [LString;
    load 1
    aget
    invokevirtual String.concat(LString;)LString;
    ldc " "
    invokevirtual String.concat(LString;)LString;
    store 0
    load 1
    const 1
    add
    store 1
    goto scan
  out:
    load 0
    return
  }
}
`

// --- FtpAuth variants -----------------------------------------------------------------

const ftpAuthV1 = `
class FtpAuth {
  static method check(LString;LString;)Z {
    load 0
    ldc "admin"
    invokevirtual String.equals(LString;)Z
    ifeq no
    load 1
    ldc "crossftp"
    invokevirtual String.equals(LString;)Z
    return
  no:
    const 0
    return
  }
}
`

// ftpAuthV2 (1.06) counts failed logins (field added to FtpAuth).
const ftpAuthV2 = `
class FtpAuth {
  static field failures I
  static method check(LString;LString;)Z {
    load 0
    ldc "admin"
    invokevirtual String.equals(LString;)Z
    ifeq no
    load 1
    ldc "crossftp"
    invokevirtual String.equals(LString;)Z
    ifeq no
    const 1
    return
  no:
    getstatic FtpAuth.failures I
    const 1
    add
    putstatic FtpAuth.failures I
    const 0
    return
  }
}
`

// --- TransferLog (added in 1.06) -------------------------------------------------------

const ftpLog106 = `
class TransferLog {
  static field entries I
  static method note()V {
    getstatic TransferLog.entries I
    const 1
    add
    putstatic TransferLog.entries I
    return
  }
}
`

// --- FtpCommands variants -----------------------------------------------------------------

// ftpCommands builds the command dispatcher. logRetr injects the 1.06+
// TransferLog call into RETR.
func ftpCommands(logRetr bool) string {
	note := ""
	if logRetr {
		note = "    invokestatic TransferLog.note()V\n"
	}
	return `
class FtpCommands {
  static method exec(ILString;LRequestHandler;)Z {
    load 1
    ldc "USER "
    invokevirtual String.startsWith(LString;)Z
    ifeq try_pass
    load 2
    load 1
    const 5
    load 1
    invokevirtual String.length()I
    invokevirtual String.substring(II)LString;
    invokevirtual RequestHandler.setUser(LString;)V
    load 0
    ldc "331 password required by "
    invokestatic Banner.id()LString;
    invokevirtual String.concat(LString;)LString;
    invokestatic Net.send(ILString;)V
    const 1
    return
  try_pass:
    load 1
    ldc "PASS "
    invokevirtual String.startsWith(LString;)Z
    ifeq try_list
    load 2
    invokevirtual RequestHandler.user()LString;
    ifnull nopass
    load 2
    invokevirtual RequestHandler.user()LString;
    load 1
    const 5
    load 1
    invokevirtual String.length()I
    invokevirtual String.substring(II)LString;
    invokestatic FtpAuth.check(LString;LString;)Z
    ifeq nopass
    load 0
    ldc "230 logged in"
    invokestatic Net.send(ILString;)V
    const 1
    return
  nopass:
    load 0
    ldc "530 login incorrect"
    invokestatic Net.send(ILString;)V
    const 1
    return
  try_list:
    load 1
    ldc "LIST"
    invokevirtual String.equals(LString;)Z
    ifeq try_retr
    load 0
    ldc "150 "
    invokestatic FileStore.listing()LString;
    invokevirtual String.concat(LString;)LString;
    invokestatic Net.send(ILString;)V
    const 1
    return
  try_retr:
    load 1
    ldc "RETR "
    invokevirtual String.startsWith(LString;)Z
    ifeq try_quit
    load 1
    const 5
    load 1
    invokevirtual String.length()I
    invokevirtual String.substring(II)LString;
    invokestatic FileStore.get(LString;)LString;
    store 3
    load 3
    ifnull nofile
` + note + `    load 0
    ldc "226 "
    load 3
    invokevirtual String.concat(LString;)LString;
    invokestatic Net.send(ILString;)V
    const 1
    return
  nofile:
    load 0
    ldc "550 no such file"
    invokestatic Net.send(ILString;)V
    const 1
    return
  try_quit:
    load 1
    ldc "QUIT"
    invokevirtual String.equals(LString;)Z
    ifeq unknown
    load 0
    ldc "221 goodbye"
    invokestatic Net.send(ILString;)V
    const 0
    return
  unknown:
    load 0
    ldc "502 command not implemented"
    invokestatic Net.send(ILString;)V
    const 1
    return
  }
}
`
}

// FTPServer builds the CrossFTP stand-in with its four releases.
func FTPServer() *App {
	v := func(name, tag string) Version { return Version{Name: name, Tag: tag} }

	v105 := v("1.05", "105")
	v105.Source = ftpBanner("1.05") + ftpAuthV1 + ftpFilesV1 + ftpCommands(false) +
		ftpHandlerV1 + ftpMain

	// 1.06: TransferLog class added, FtpAuth gains a failure counter, RETR
	// starts logging.
	v106 := v("1.06", "106")
	v106.Source = ftpBanner("1.06") + ftpAuthV2 + ftpLog106 + ftpFilesV1 + ftpCommands(true) +
		ftpHandlerV1 + ftpMain

	// 1.07: FileStore gains per-file read counts.
	v107 := v("1.07", "107")
	v107.Source = ftpBanner("1.07") + ftpAuthV2 + ftpLog106 + ftpFilesV2 + ftpCommands(true) +
		ftpHandlerV1 + ftpMain

	// 1.08: RequestHandler gains three fields and its run() changes — the
	// "only when relatively idle" update.
	v108 := v("1.08", "108")
	v108.Source = ftpBanner("1.08") + ftpAuthV2 + ftpLog106 + ftpFilesV2 + ftpCommands(true) +
		ftpHandlerV2 + ftpMain
	v108.NeedsQuiesce = true

	return &App{
		Name:         "ftpserver",
		Port:         21,
		MainClass:    "FtpServer",
		ProbeRequest: "USER admin",
		Workloads: []Workload{{Port: 21, Lines: []string{
			"USER admin", "PASS crossftp", "LIST", "RETR readme.txt", "QUIT",
		}}},
		Versions: []Version{v105, v106, v107, v108},
	}
}
