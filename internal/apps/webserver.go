package apps

// The webserver stands in for Jetty 5.1.0–5.1.10 (paper Table 2): eleven
// releases, ten updates. Structure: an accept loop in HttpServer.main
// spawning one ConnectionHandler thread per connection; handlers loop on
// recvLine and answer through Router → HttpParser/Content/Response/Stats.
//
// Code that must stay byte-identical across releases — the accept loop and
// ConnectionHandler.run, which are always on some thread's stack — is a
// shared fragment. The 5.1.2→5.1.3 update deliberately edits the accept
// loop, reproducing the paper's only Jetty failure: the changed method
// never leaves the stack, so no DSU safe point is ever reached and the
// update aborts.

// wsMainV1 is the accept loop for 5.1.0–5.1.2.
const wsMainV1 = `
class HttpServer {
  static method main()V {
    const 8080
    invokestatic Net.listen(I)I
    store 0
  accept:
    load 0
    invokestatic Net.accept(I)I
    store 1
    new ConnectionHandler
    dup
    load 1
    invokespecial ConnectionHandler.<init>(I)V
    invokestatic Thread.spawn(LObject;)V
    goto accept
  }
}
`

// wsMainV2 (5.1.3 onward) counts accepted connections — the change that
// can never be applied dynamically because main never returns.
const wsMainV2 = `
class HttpServer {
  static method main()V {
    const 8080
    invokestatic Net.listen(I)I
    store 0
  accept:
    load 0
    invokestatic Net.accept(I)I
    store 1
    invokestatic Stats.conn()V
    new ConnectionHandler
    dup
    load 1
    invokespecial ConnectionHandler.<init>(I)V
    invokestatic Thread.spawn(LObject;)V
    goto accept
  }
}
`

// wsHandler's run() is identical in every release; per-connection state
// changes go through the constructor only.
const wsHandlerRun = `
  method run()V {
  loop:
    load 0
    getfield ConnectionHandler.conn I
    invokestatic Net.recvLine(I)LString;
    store 1
    load 1
    ifnull closed
    load 0
    getfield ConnectionHandler.conn I
    load 1
    invokestatic Router.route(LString;)LString;
    invokestatic Net.send(ILString;)V
    goto loop
  closed:
    load 0
    getfield ConnectionHandler.conn I
    invokestatic Net.close(I)V
    return
  }
`

const wsHandlerV1 = `
class ConnectionHandler {
  field conn I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield ConnectionHandler.conn I
    return
  }
` + wsHandlerRun + `
}
`

// wsHandlerV2 (5.1.5 onward) records a per-connection id.
const wsHandlerV2 = `
class ConnectionHandler {
  field conn I
  field id I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield ConnectionHandler.conn I
    getstatic Stats.conns I
    store 2
    load 0
    load 2
    putfield ConnectionHandler.id I
    return
  }
` + wsHandlerRun + `
}
`

// --- Stats variants --------------------------------------------------------

const wsStats510 = `
class Stats {
  static field requests I
  static field errors I
  static method hit()V {
    getstatic Stats.requests I
    const 1
    add
    putstatic Stats.requests I
    return
  }
  static method err()V {
    getstatic Stats.errors I
    const 1
    add
    putstatic Stats.errors I
    return
  }
}
`

// 5.1.1 adds byte accounting (field + method addition: a class update).
const wsStats511 = `
class Stats {
  static field requests I
  static field errors I
  static field bytesSent I
  static method hit()V {
    getstatic Stats.requests I
    const 1
    add
    putstatic Stats.requests I
    return
  }
  static method err()V {
    getstatic Stats.errors I
    const 1
    add
    putstatic Stats.errors I
    return
  }
  static method sent(I)V {
    getstatic Stats.bytesSent I
    load 0
    add
    putstatic Stats.bytesSent I
    return
  }
}
`

// 5.1.3 adds connection counting for the new accept loop.
const wsStats513 = `
class Stats {
  static field requests I
  static field errors I
  static field bytesSent I
  static field conns I
  static method hit()V {
    getstatic Stats.requests I
    const 1
    add
    putstatic Stats.requests I
    return
  }
  static method err()V {
    getstatic Stats.errors I
    const 1
    add
    putstatic Stats.errors I
    return
  }
  static method sent(I)V {
    getstatic Stats.bytesSent I
    load 0
    add
    putstatic Stats.bytesSent I
    return
  }
  static method conn()V {
    getstatic Stats.conns I
    const 1
    add
    putstatic Stats.conns I
    return
  }
}
`

// 5.1.4 renames errors to failures (field delete + add; the custom class
// transformer carries the old count over).
const wsStats514 = `
class Stats {
  static field requests I
  static field failures I
  static field bytesSent I
  static field conns I
  static method hit()V {
    getstatic Stats.requests I
    const 1
    add
    putstatic Stats.requests I
    return
  }
  static method err()V {
    getstatic Stats.failures I
    const 1
    add
    putstatic Stats.failures I
    return
  }
  static method sent(I)V {
    getstatic Stats.bytesSent I
    load 0
    add
    putstatic Stats.bytesSent I
    return
  }
  static method conn()V {
    getstatic Stats.conns I
    const 1
    add
    putstatic Stats.conns I
    return
  }
}
`

// 5.1.5 adds a peak-tracking gauge.
var wsStats515 = wsStats514[:len(wsStats514)-2] + `  static field peak I
  static method track(I)V {
    load 0
    getstatic Stats.peak I
    if_icmple done
    load 0
    putstatic Stats.peak I
  done:
    return
  }
}
`

// 5.1.6 drops the gauge again (field + method deletion) and adds served.
var wsStats516 = wsStats514[:len(wsStats514)-2] + `  static field served I
  static method serve()V {
    getstatic Stats.served I
    const 1
    add
    putstatic Stats.served I
    return
  }
}
`

// --- Request / parser variants -----------------------------------------------

const wsRequest510 = `
class Request {
  field verb LString;
  field path LString;
  method <init>(LString;LString;)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Request.verb LString;
    load 0
    load 2
    putfield Request.path LString;
    return
  }
  method verb()LString; {
    load 0
    getfield Request.verb LString;
    return
  }
  method path()LString; {
    load 0
    getfield Request.path LString;
    return
  }
}
`

// 5.1.5 adds the query string.
const wsRequest515 = `
class Request {
  field verb LString;
  field path LString;
  field query LString;
  method <init>(LString;LString;)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Request.verb LString;
    load 0
    load 2
    putfield Request.path LString;
    return
  }
  method verb()LString; {
    load 0
    getfield Request.verb LString;
    return
  }
  method path()LString; {
    load 0
    getfield Request.path LString;
    return
  }
  method query()LString; {
    load 0
    getfield Request.query LString;
    return
  }
  method setQuery(LString;)V {
    load 0
    load 1
    putfield Request.query LString;
    return
  }
}
`

const wsParser510 = `
class HttpParser {
  static method parse(LString;)LRequest; {
    load 0
    const 32
    invokevirtual String.split(C)[LString;
    store 1
    new Request
    dup
    load 1
    const 0
    aget
    load 1
    arraylen
    const 2
    if_icmplt short
    load 1
    const 1
    aget
    goto build
  short:
    ldc "/"
  build:
    invokespecial Request.<init>(LString;LString;)V
    return
  }
}
`

// 5.1.1 fixes empty-path handling (a method body fix, like the paper's
// loadUser bug fix).
const wsParser511 = `
class HttpParser {
  static method parse(LString;)LRequest; {
    load 0
    const 32
    invokevirtual String.split(C)[LString;
    store 1
    new Request
    dup
    load 1
    const 0
    aget
    load 1
    arraylen
    const 2
    if_icmplt short
    load 1
    const 1
    aget
    store 2
    load 2
    invokevirtual String.length()I
    ifeq short
    load 2
    goto build
  short:
    ldc "/"
  build:
    invokespecial Request.<init>(LString;LString;)V
    return
  }
}
`

// 5.1.5 splits off the query string into the new Request field.
const wsParser515 = `
class HttpParser {
  static method parse(LString;)LRequest; {
    load 0
    const 32
    invokevirtual String.split(C)[LString;
    store 1
    load 1
    arraylen
    const 2
    if_icmplt short
    load 1
    const 1
    aget
    store 2
    load 2
    invokevirtual String.length()I
    ifeq short
    load 2
    store 3
    goto build
  short:
    ldc "/"
    store 3
  build:
    load 3
    const 63
    const 0
    invokevirtual String.indexOf(CI)I
    store 4
    new Request
    dup
    load 1
    const 0
    aget
    load 4
    iflt plain
    load 3
    const 0
    load 4
    invokevirtual String.substring(II)LString;
    goto ctor
  plain:
    load 3
  ctor:
    invokespecial Request.<init>(LString;LString;)V
    store 5
    load 4
    iflt noq
    load 5
    load 3
    load 4
    const 1
    add
    load 3
    invokevirtual String.length()I
    invokevirtual String.substring(II)LString;
    invokevirtual Request.setQuery(LString;)V
  noq:
    load 5
    return
  }
}
`

// --- Content variants ---------------------------------------------------------

func wsContent(pages string) string {
	return `
class Content {
  static method lookup(LString;)LString; {
` + pages + `
    null
    return
  }
}
`
}

func wsPage(path, body string) string {
	return `    load 0
    ldc "` + path + `"
    invokevirtual String.equals(LString;)Z
    ifeq skip_` + mangle(path) + `
    ldc "` + body + `"
    return
  skip_` + mangle(path) + `:
`
}

func mangle(path string) string {
	out := make([]rune, 0, len(path))
	for _, r := range path {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			out = append(out, r)
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}

// --- MimeTypes (added in 5.1.2) ------------------------------------------------

const wsMime512 = `
class MimeTypes {
  static method of(LString;)LString; {
    load 0
    ldc ".txt"
    invokevirtual String.endsWith(LString;)Z
    ifeq html
    ldc "text/plain"
    return
  html:
    ldc "text/html"
    return
  }
}
`

// 5.1.7 changes the signature of MimeTypes.of to thread a default through.
const wsMime517 = `
class MimeTypes {
  static method of(LString;LString;)LString; {
    load 0
    ldc ".txt"
    invokevirtual String.endsWith(LString;)Z
    ifeq fallback
    ldc "text/plain"
    return
  fallback:
    load 1
    return
  }
}
`

// --- Response variants ------------------------------------------------------------

// wsResponse510: ok(body), notFound(); the banner carries the version.
func wsResponse510(ver string) string {
	return `
class Response {
  static method banner()LString; {
    ldc "mini-jetty/` + ver + `"
    return
  }
  static method ok(LString;)LString; {
    ldc "200 "
    invokestatic Response.banner()LString;
    invokevirtual String.concat(LString;)LString;
    ldc " "
    invokevirtual String.concat(LString;)LString;
    load 0
    invokevirtual String.concat(LString;)LString;
    return
  }
  static method notFound()LString; {
    ldc "404 "
    invokestatic Response.banner()LString;
    invokevirtual String.concat(LString;)LString;
    ldc " not found"
    invokevirtual String.concat(LString;)LString;
    return
  }
}
`
}

// wsResponse512: ok takes the mime type too (signature change).
func wsResponse512(ver string) string {
	return `
class Response {
  static method banner()LString; {
    ldc "mini-jetty/` + ver + `"
    return
  }
  static method ok(LString;LString;)LString; {
    ldc "200 "
    invokestatic Response.banner()LString;
    invokevirtual String.concat(LString;)LString;
    ldc " "
    invokevirtual String.concat(LString;)LString;
    load 1
    invokevirtual String.concat(LString;)LString;
    ldc " "
    invokevirtual String.concat(LString;)LString;
    load 0
    invokevirtual String.concat(LString;)LString;
    return
  }
  static method notFound()LString; {
    ldc "404 "
    invokestatic Response.banner()LString;
    invokevirtual String.concat(LString;)LString;
    ldc " not found"
    invokevirtual String.concat(LString;)LString;
    return
  }
}
`
}

// wsResponse514: notFound reports the path (signature change).
func wsResponse514(ver string) string {
	return `
class Response {
  static method banner()LString; {
    ldc "mini-jetty/` + ver + `"
    return
  }
  static method ok(LString;LString;)LString; {
    ldc "200 "
    invokestatic Response.banner()LString;
    invokevirtual String.concat(LString;)LString;
    ldc " "
    invokevirtual String.concat(LString;)LString;
    load 1
    invokevirtual String.concat(LString;)LString;
    ldc " "
    invokevirtual String.concat(LString;)LString;
    load 0
    invokevirtual String.concat(LString;)LString;
    return
  }
  static method notFound(LString;)LString; {
    ldc "404 "
    invokestatic Response.banner()LString;
    invokevirtual String.concat(LString;)LString;
    ldc " no such path "
    invokevirtual String.concat(LString;)LString;
    load 0
    invokevirtual String.concat(LString;)LString;
    return
  }
}
`
}

// --- Router variants -----------------------------------------------------------------

// Router for 5.1.0–5.1.1: ok(body) form.
const wsRouter510 = `
class Router {
  static method route(LString;)LString; {
    load 0
    invokestatic HttpParser.parse(LString;)LRequest;
    store 1
    load 1
    invokevirtual Request.path()LString;
    invokestatic Content.lookup(LString;)LString;
    store 2
    load 2
    ifnull missing
    invokestatic Stats.hit()V
    load 2
    invokestatic Response.ok(LString;)LString;
    return
  missing:
    invokestatic Stats.err()V
    invokestatic Response.notFound()LString;
    return
  }
}
`

// Router for 5.1.2–5.1.3: mime-typed ok.
const wsRouter512 = `
class Router {
  static method route(LString;)LString; {
    load 0
    invokestatic HttpParser.parse(LString;)LRequest;
    store 1
    load 1
    invokevirtual Request.path()LString;
    invokestatic Content.lookup(LString;)LString;
    store 2
    load 2
    ifnull missing
    invokestatic Stats.hit()V
    load 2
    load 1
    invokevirtual Request.path()LString;
    invokestatic MimeTypes.of(LString;)LString;
    invokestatic Response.ok(LString;LString;)LString;
    return
  missing:
    invokestatic Stats.err()V
    invokestatic Response.notFound()LString;
    return
  }
}
`

// Router for 5.1.4–5.1.6: notFound(path) form, byte accounting.
const wsRouter514 = `
class Router {
  static method route(LString;)LString; {
    load 0
    invokestatic HttpParser.parse(LString;)LRequest;
    store 1
    load 1
    invokevirtual Request.path()LString;
    invokestatic Content.lookup(LString;)LString;
    store 2
    load 2
    ifnull missing
    invokestatic Stats.hit()V
    load 2
    invokevirtual String.length()I
    invokestatic Stats.sent(I)V
    load 2
    load 1
    invokevirtual Request.path()LString;
    invokestatic MimeTypes.of(LString;)LString;
    invokestatic Response.ok(LString;LString;)LString;
    return
  missing:
    invokestatic Stats.err()V
    load 1
    invokevirtual Request.path()LString;
    invokestatic Response.notFound(LString;)LString;
    return
  }
}
`

// Router for 5.1.7+: two-argument MimeTypes.of.
const wsRouter517 = `
class Router {
  static method route(LString;)LString; {
    load 0
    invokestatic HttpParser.parse(LString;)LRequest;
    store 1
    load 1
    invokevirtual Request.path()LString;
    invokestatic Content.lookup(LString;)LString;
    store 2
    load 2
    ifnull missing
    invokestatic Stats.hit()V
    load 2
    invokevirtual String.length()I
    invokestatic Stats.sent(I)V
    load 2
    load 1
    invokevirtual Request.path()LString;
    ldc "text/html"
    invokestatic MimeTypes.of(LString;LString;)LString;
    invokestatic Response.ok(LString;LString;)LString;
    return
  missing:
    invokestatic Stats.err()V
    load 1
    invokevirtual Request.path()LString;
    invokestatic Response.notFound(LString;)LString;
    return
  }
}
`

// Webserver builds the Jetty stand-in with its eleven releases.
func Webserver() *App {
	pages510 := wsPage("/", "welcome to mini-jetty") + wsPage("/about", "about mini-jetty")
	pages511 := pages510 + wsPage("/news", "release notes")
	pages516 := pages511 + wsPage("/api", "api root")
	pages518 := pages511 + wsPage("/api", "api root v2")
	pages519 := pages511 + wsPage("/api", "api root v2") + wsPage("/status", "all systems nominal")

	v := func(name, tag string) Version { return Version{Name: name, Tag: tag} }

	v510 := v("5.1.0", "510")
	v510.Source = wsStats510 + wsRequest510 + wsParser510 + wsContent(pages510) +
		wsResponse510("5.1.0") + wsRouter510 + wsHandlerV1 + wsMainV1

	v511 := v("5.1.1", "511")
	v511.Source = wsStats511 + wsRequest510 + wsParser511 + wsContent(pages511) +
		wsResponse510("5.1.1") + wsRouter510 + wsHandlerV1 + wsMainV1

	v512 := v("5.1.2", "512")
	v512.Source = wsStats511 + wsRequest510 + wsParser511 + wsContent(pages511) +
		wsMime512 + wsResponse512("5.1.2") + wsRouter512 + wsHandlerV1 + wsMainV1

	v513 := v("5.1.3", "513")
	v513.Source = wsStats513 + wsRequest510 + wsParser511 + wsContent(pages511) +
		wsMime512 + wsResponse512("5.1.3") + wsRouter512 + wsHandlerV1 + wsMainV2
	v513.ExpectAbort = true // the accept loop itself changed

	v514 := v("5.1.4", "514")
	v514.Source = wsStats514 + wsRequest510 + wsParser511 + wsContent(pages511) +
		wsMime512 + wsResponse514("5.1.4") + wsRouter514 + wsHandlerV1 + wsMainV2
	v514.Transformers = `
class JvolveTransformers {
  static method jvolveClass(LStats;)V {
    getstatic v513_Stats.requests I
    putstatic Stats.requests I
    getstatic v513_Stats.bytesSent I
    putstatic Stats.bytesSent I
    getstatic v513_Stats.conns I
    putstatic Stats.conns I
    getstatic v513_Stats.errors I
    putstatic Stats.failures I
    return
  }
}
`

	v515 := v("5.1.5", "515")
	v515.Source = wsStats515 + wsRequest515 + wsParser515 + wsContent(pages511) +
		wsMime512 + wsResponse514("5.1.5") + wsRouter514 + wsHandlerV2 + wsMainV2

	v516 := v("5.1.6", "516")
	v516.Source = wsStats516 + wsRequest515 + wsParser515 + wsContent(pages516) +
		wsMime512 + wsResponse514("5.1.6") + wsRouter514 + wsHandlerV2 + wsMainV2

	v517 := v("5.1.7", "517")
	v517.Source = wsStats516 + wsRequest515 + wsParser515 + wsContent(pages516) +
		wsMime517 + wsResponse514("5.1.7") + wsRouter517 + wsHandlerV2 + wsMainV2

	v518 := v("5.1.8", "518")
	v518.Source = wsStats516 + wsRequest515 + wsParser515 + wsContent(pages518) +
		wsMime517 + wsResponse514("5.1.8") + wsRouter517 + wsHandlerV2 + wsMainV2
	v518.BodyOnly = true

	v519 := v("5.1.9", "519")
	v519.Source = wsStats516 + wsRequest515 + wsParser515 + wsContent(pages519) +
		wsMime517 + wsResponse514("5.1.9") + wsRouter517 + wsHandlerV2 + wsMainV2
	v519.BodyOnly = true

	v5110 := v("5.1.10", "5110")
	v5110.Source = wsStats516 + wsRequest515 + wsParser515 + wsContent(pages519) +
		wsMime517 + wsResponse514("5.1.10") + wsRouter517 + wsHandlerV2 + wsMainV2
	v5110.BodyOnly = true

	return &App{
		Name:         "webserver",
		Port:         8080,
		MainClass:    "HttpServer",
		ProbeRequest: "GET /",
		Workloads: []Workload{{Port: 8080, Lines: []string{
			"GET /", "GET /about", "GET /news", "GET /missing", "GET /",
		}}},
		Versions: []Version{
			v510, v511, v512, v513, v514, v515, v516, v517, v518, v519, v5110,
		},
	}
}
