package apps

import (
	"fmt"

	"govolve/internal/core"
)

// ApplyNextActive is ApplyNext with UPT-inferred active-method maps — the
// UpStare-style extension. Updates that abort under the paper's model
// because a changed method never leaves the stack (the webserver's accept
// loop in 5.1.3, the email listeners in 1.3) become applicable: the live
// frames are rewritten onto the new method bodies at aligned yield points.
func (s *Server) ApplyNextActive(opts core.Options, underLoad bool) (*core.Result, error) {
	spec, err := s.App.Spec(s.VersionIdx)
	if err != nil {
		return nil, err
	}
	spec.InferActiveUpdates()
	pending, err := s.Engine.RequestUpdate(spec, opts)
	if err != nil {
		return nil, err
	}
	for !pending.Done() {
		if underLoad {
			if _, err := s.DoBatch(); err != nil {
				return nil, err
			}
		}
		s.VM.Step(10)
	}
	res := pending.Result()
	if res.Outcome == core.Applied {
		s.VersionIdx++
	}
	return res, nil
}

// RunActiveExperiment attempts exactly the updates that abort under the
// plain model — first plainly (confirming the abort), then with inferred
// active-method maps (confirming they now apply and the server still
// serves). It returns one entry per such update.
func RunActiveExperiment(app *App, heapWords int) ([]MatrixEntry, error) {
	var entries []MatrixEntry
	for i := 0; i < app.UpdateCount(); i++ {
		target := app.Versions[i+1]
		if !target.ExpectAbort {
			continue
		}
		s, err := Launch(app, LaunchOptions{HeapWords: heapWords, Version: i})
		if err != nil {
			return nil, err
		}
		for b := 0; b < 2; b++ {
			if _, err := s.DoBatch(); err != nil {
				return nil, err
			}
		}
		plain, err := s.ApplyNext(core.Options{MaxAttempts: 40}, true)
		if err != nil {
			return nil, err
		}
		if plain.Outcome != core.Aborted {
			return nil, fmt.Errorf("apps: %s→%s should abort without active maps, got %v",
				app.Versions[i].Name, target.Name, plain.Outcome)
		}
		active, err := s.ApplyNextActive(core.Options{MaxAttempts: 200}, true)
		if err != nil {
			return nil, err
		}
		entry := MatrixEntry{
			App: app.Name, From: app.Versions[i].Name, To: target.Name,
			Outcome: active.Outcome, Stats: active.Stats,
			Note: fmt.Sprintf("active-method rewrite of %d frame(s) after plain abort", active.Stats.ActiveRewrites),
		}
		if active.Outcome == core.Applied {
			if err := s.VerifyActive(); err != nil {
				return nil, err
			}
			if _, err := s.DoBatch(); err != nil {
				return nil, err
			}
			entry.ProbeOK = true
		}
		entries = append(entries, entry)
	}
	return entries, nil
}
