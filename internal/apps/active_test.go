package apps

import (
	"testing"

	"govolve/internal/core"
)

// TestActiveMethodUpdates exercises the UpStare-style extension on exactly
// the two updates the paper could not apply: the webserver accept-loop
// change (5.1.2→5.1.3) and the email configuration rework (1.2.4→1.3).
// Both abort under the plain model and apply with inferred yield-point
// maps, after which the servers keep serving on the new version.
func TestActiveMethodUpdates(t *testing.T) {
	for _, app := range []*App{Webserver(), EmailServer()} {
		entries, err := RunActiveExperiment(app, 1<<20)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if len(entries) != 1 {
			t.Fatalf("%s: %d abort-expected updates, want 1", app.Name, len(entries))
		}
		e := entries[0]
		if e.Outcome != core.Applied {
			t.Fatalf("%s %s→%s with active maps: %v (%s)", e.App, e.From, e.To, e.Outcome, e.Note)
		}
		if e.Stats.ActiveRewrites == 0 {
			t.Fatalf("%s %s→%s: applied without rewriting any active frame?", e.App, e.From, e.To)
		}
		if !e.ProbeOK {
			t.Fatalf("%s %s→%s: server not serving after active update", e.App, e.From, e.To)
		}
	}
	// The FTP app has no abort-expected updates; the experiment is empty.
	entries, err := RunActiveExperiment(FTPServer(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("ftp active entries = %d", len(entries))
	}
}
