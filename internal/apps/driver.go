package apps

import (
	"fmt"
	"io"
	"strings"

	"govolve/internal/core"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

// Server is a running instance of one application version with a DSU
// engine attached — the unit the update matrix and the Fig. 5 benchmark
// drive.
type Server struct {
	App        *App
	VM         *vm.VM
	Engine     *core.Engine
	VersionIdx int

	// Responses counts response lines consumed by the driver.
	Responses int64
}

// LaunchOptions tunes Launch.
type LaunchOptions struct {
	HeapWords int
	Version   int
	Out       io.Writer
	// IndirectionCheck enables the ablation VM mode.
	IndirectionCheck bool
	// GCWorkers selects the parallel collector (0/1 = serial).
	GCWorkers int
	// GCConcurrentMark runs updated-instance discovery concurrently with
	// the mutator (SATB) instead of inside the DSU pause.
	GCConcurrentMark bool
}

// Launch boots a VM with the given application version and steps until all
// workload ports are listening.
func Launch(app *App, opts LaunchOptions) (*Server, error) {
	if opts.HeapWords <= 0 {
		opts.HeapWords = 1 << 20
	}
	if opts.Out == nil {
		opts.Out = io.Discard
	}
	machine, err := vm.New(vm.Options{
		HeapWords:        opts.HeapWords,
		Out:              opts.Out,
		IndirectionCheck: opts.IndirectionCheck,
		GCWorkers:        opts.GCWorkers,
		GCConcurrentMark: opts.GCConcurrentMark,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{App: app, VM: machine, Engine: core.NewEngine(machine), VersionIdx: opts.Version}
	prog, err := app.Program(opts.Version)
	if err != nil {
		return nil, err
	}
	if err := machine.LoadProgram(prog); err != nil {
		return nil, err
	}
	if _, err := machine.SpawnMain(app.MainClass); err != nil {
		return nil, err
	}
	for i := 0; i < 1000; i++ {
		machine.Step(5)
		ready := true
		for _, w := range app.Workloads {
			if !machine.Net.Listening(w.Port) {
				ready = false
			}
		}
		if ready {
			return s, nil
		}
	}
	return nil, fmt.Errorf("apps: %s never started listening", app.Name)
}

// Version returns the currently-active release.
func (s *Server) Version() Version { return s.App.Versions[s.VersionIdx] }

// Probe opens a fresh connection, sends the probe request, and returns the
// response line.
func (s *Server) Probe() (string, error) {
	conn, err := s.VM.Net.Connect(s.App.Port)
	if err != nil {
		return "", err
	}
	defer s.VM.Net.ClientClose(conn)
	if err := s.VM.Net.ClientSend(conn, s.App.ProbeRequest); err != nil {
		return "", err
	}
	for i := 0; i < 2000; i++ {
		s.VM.Step(5)
		if line, ok := s.VM.Net.ClientRecv(conn); ok {
			return line, nil
		}
	}
	return "", fmt.Errorf("apps: %s probe timed out", s.App.Name)
}

// VerifyActive probes and checks the active version banner.
func (s *Server) VerifyActive() error {
	line, err := s.Probe()
	if err != nil {
		return err
	}
	want := s.Version().Name
	if !strings.Contains(line, want) {
		return fmt.Errorf("apps: %s probe %q does not mention version %s", s.App.Name, line, want)
	}
	return nil
}

// DoBatch opens one connection per workload, plays the request lines,
// drains responses, and closes. It returns the number of responses read.
func (s *Server) DoBatch() (int, error) {
	got := 0
	for _, w := range s.App.Workloads {
		conn, err := s.VM.Net.Connect(w.Port)
		if err != nil {
			return got, err
		}
		for _, line := range w.Lines {
			if err := s.VM.Net.ClientSend(conn, line); err != nil {
				break // server closed mid-batch (QUIT)
			}
			for i := 0; i < 2000; i++ {
				s.VM.Step(2)
				if _, ok := s.VM.Net.ClientRecv(conn); ok {
					got++
					s.Responses++
					break
				}
				if s.VM.Net.ClientClosed(conn) {
					break
				}
			}
			if s.VM.Net.ClientClosed(conn) {
				break
			}
		}
		s.VM.Net.ClientClose(conn)
		s.VM.Step(5)
	}
	return got, nil
}

// HoldConnections opens n persistent connections on the primary port and
// sends one request on each so the server's per-connection handler threads
// are alive and mid-session (their run() frames pinned on stack). It
// returns the connection ids; close them to quiesce.
func (s *Server) HoldConnections(n int) ([]int64, error) {
	var conns []int64
	for i := 0; i < n; i++ {
		conn, err := s.VM.Net.Connect(s.App.Port)
		if err != nil {
			return conns, err
		}
		if err := s.VM.Net.ClientSend(conn, s.App.ProbeRequest); err != nil {
			return conns, err
		}
		conns = append(conns, conn)
	}
	// Let the handlers consume the requests and block on the next line.
	for i := 0; i < 200; i++ {
		s.VM.Step(5)
	}
	for _, c := range conns {
		for {
			if _, ok := s.VM.Net.ClientRecv(c); !ok {
				break
			}
		}
	}
	return conns, nil
}

// ReleaseConnections closes held connections and lets handlers drain.
func (s *Server) ReleaseConnections(conns []int64) {
	for _, c := range conns {
		s.VM.Net.ClientClose(c)
	}
	for i := 0; i < 200; i++ {
		s.VM.Step(5)
	}
}

// ApplyNext requests the update to the next version and drives the VM
// until it resolves, pumping a light request load meanwhile (so return
// barriers can fire: connections keep opening and closing).
func (s *Server) ApplyNext(opts core.Options, underLoad bool) (*core.Result, error) {
	spec, err := s.App.Spec(s.VersionIdx)
	if err != nil {
		return nil, err
	}
	pending, err := s.Engine.RequestUpdate(spec, opts)
	if err != nil {
		return nil, err
	}
	for !pending.Done() {
		if underLoad {
			if _, err := s.DoBatch(); err != nil {
				return nil, err
			}
		}
		s.VM.Step(10)
	}
	res := pending.Result()
	if res.Outcome == core.Applied {
		s.VersionIdx++
	}
	return res, nil
}

// MatrixEntry records one update attempt for the §4 experience experiment.
type MatrixEntry struct {
	App      string
	From, To string
	Outcome  core.Outcome
	Stats    core.Stats
	BodyOnly bool
	// Quiesced marks updates that aborted under load and applied after
	// connections drained (the CrossFTP 1.07→1.08 behaviour).
	Quiesced bool
	ProbeOK  bool
	Note     string
}

// RunMatrix walks an application's whole version stream, applying every
// update to the live server under load, reproducing the paper's §4
// experience: which updates apply immediately, which need return barriers
// or OSR, which need a quiet server, and which abort because a changed
// method never leaves the stack. Aborted versions are reached by a restart,
// as the paper's authors had to.
//
// Optional checks run against the server's VM after every update attempt
// resolves (applied, quiesced-then-applied, or aborted-and-restarted);
// tests pass storm.CheckVM here so the whole-VM invariant sweep covers all
// 22 real server transitions, not just generated storm programs.
func RunMatrix(app *App, heapWords int, checks ...func(*vm.VM) error) ([]MatrixEntry, error) {
	return RunMatrixOpts(app, LaunchOptions{HeapWords: heapWords}, checks...)
}

// RunMatrixOpts is RunMatrix with full control over the VM configuration —
// the concurrent-mark and parallel-GC matrix runs use it.
func RunMatrixOpts(app *App, opts LaunchOptions, checks ...func(*vm.VM) error) ([]MatrixEntry, error) {
	s, err := Launch(app, opts)
	if err != nil {
		return nil, err
	}
	var entries []MatrixEntry
	for i := 0; i < app.UpdateCount(); i++ {
		target := app.Versions[i+1]
		entry := MatrixEntry{
			App:      app.Name,
			From:     app.Versions[i].Name,
			To:       target.Name,
			BodyOnly: target.BodyOnly,
		}
		// Warm the server and pin handler threads like a busy deployment.
		for b := 0; b < 3; b++ {
			if _, err := s.DoBatch(); err != nil {
				return nil, fmt.Errorf("%s warmup before %s: %w", app.Name, target.Name, err)
			}
		}
		held, err := s.HoldConnections(2)
		if err != nil {
			return nil, err
		}

		res, err := s.ApplyNext(core.Options{MaxAttempts: 60}, true)
		if err != nil {
			return nil, fmt.Errorf("%s update to %s: %w", app.Name, target.Name, err)
		}
		entry.Outcome = res.Outcome
		entry.Stats = res.Stats

		if res.Outcome == core.Aborted && target.NeedsQuiesce {
			// The CrossFTP case: drain sessions and retry.
			s.ReleaseConnections(held)
			held = nil
			res, err = s.ApplyNext(core.Options{MaxAttempts: 200}, false)
			if err != nil {
				return nil, err
			}
			entry.Outcome = res.Outcome
			entry.Stats = res.Stats
			entry.Quiesced = true
			entry.Note = "applied after quiescing active sessions"
		}
		if held != nil {
			s.ReleaseConnections(held)
		}

		switch {
		case res.Outcome == core.Applied:
			if err := s.VerifyActive(); err != nil {
				return nil, err
			}
			entry.ProbeOK = true
			if entry.Note == "" {
				switch {
				case res.Stats.OSRFrames > 0 && res.Stats.BarriersInstalled > 0:
					entry.Note = "return barriers + OSR"
				case res.Stats.OSRFrames > 0:
					entry.Note = "on-stack replacement"
				case res.Stats.BarriersInstalled > 0:
					entry.Note = "return barriers"
				default:
					entry.Note = "immediate safe point"
				}
			}
		case res.Outcome == core.Aborted && target.ExpectAbort:
			entry.Note = "changed method never leaves the stack; restarted"
			// Restart at the new version, as the paper's deployment would.
			restart := opts
			restart.Version = i + 1
			s, err = Launch(app, restart)
			if err != nil {
				return nil, err
			}
			if err := s.VerifyActive(); err != nil {
				return nil, err
			}
			entry.ProbeOK = true
		default:
			entry.Note = fmt.Sprintf("unexpected outcome: %v (%v)", res.Outcome, res.Err)
		}
		for _, check := range checks {
			if err := check(s.VM); err != nil {
				return nil, fmt.Errorf("%s after %s→%s: %w", app.Name, entry.From, entry.To, err)
			}
		}
		entries = append(entries, entry)
	}
	return entries, nil
}

// SpecFor exposes App.Spec for external tools (cmd/upt).
func SpecFor(app *App, i int) (*upt.Spec, error) { return app.Spec(i) }
