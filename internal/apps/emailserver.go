package apps

// The email server stands in for JavaEmailServer 1.2.1–1.4 (paper Table 3):
// ten releases, nine updates. main() spawns an SMTP listener (port 25) and
// a POP3 listener (port 110); each accepted connection runs a session
// thread whose run() loop is byte-identical across releases — protocol
// changes live in the SmtpProtocol/Pop3Protocol static handlers, which are
// only transiently on stack.
//
// Two paper moments are reproduced exactly:
//
//   - 1.2.x → 1.3 reworks the configuration framework, changing the
//     listeners' accept loops — methods that never leave the stack — so
//     the update aborts (the paper's second failure).
//   - 1.3.1 → 1.3.2 is Figure 2/3: User.forwardAddresses changes type from
//     [LString; to [LEmailAddress; with a new EmailAddress class, a
//     changed setForwardedAddresses signature, and a custom object
//     transformer that splits the old strings at '@'.

// --- main + listeners ---------------------------------------------------------

// esMainV1: listeners with hard-wired ports (1.2.1–1.2.4).
const esMainV1 = `
class MailServer {
  static method main()V {
    new SmtpListener
    dup
    invokespecial SmtpListener.<init>()V
    invokestatic Thread.spawn(LObject;)V
    new Pop3Listener
    dup
    invokespecial Pop3Listener.<init>()V
    invokestatic Thread.spawn(LObject;)V
    return
  }
}
class SmtpListener {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method run()V {
    const 25
    invokestatic Net.listen(I)I
    store 1
  accept:
    load 1
    invokestatic Net.accept(I)I
    store 2
    new SmtpSession
    dup
    load 2
    invokespecial SmtpSession.<init>(I)V
    invokestatic Thread.spawn(LObject;)V
    goto accept
  }
}
class Pop3Listener {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method run()V {
    const 110
    invokestatic Net.listen(I)I
    store 1
  accept:
    load 1
    invokestatic Net.accept(I)I
    store 2
    new Pop3Session
    dup
    load 2
    invokespecial Pop3Session.<init>(I)V
    invokestatic Thread.spawn(LObject;)V
    goto accept
  }
}
`

// esMainV2 (1.3+): ports come from the new Config class — the accept loops'
// bytecode changes, which is exactly why the 1.3 update cannot be applied
// while they run.
const esMainV2 = `
class Config {
  static field smtpPort I
  static field popPort I
  static method <clinit>()V {
    const 25
    putstatic Config.smtpPort I
    const 110
    putstatic Config.popPort I
    return
  }
}
class MailServer {
  static method main()V {
    new SmtpListener
    dup
    invokespecial SmtpListener.<init>()V
    invokestatic Thread.spawn(LObject;)V
    new Pop3Listener
    dup
    invokespecial Pop3Listener.<init>()V
    invokestatic Thread.spawn(LObject;)V
    return
  }
}
class SmtpListener {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method run()V {
    getstatic Config.smtpPort I
    invokestatic Net.listen(I)I
    store 1
  accept:
    load 1
    invokestatic Net.accept(I)I
    store 2
    new SmtpSession
    dup
    load 2
    invokespecial SmtpSession.<init>(I)V
    invokestatic Thread.spawn(LObject;)V
    goto accept
  }
}
class Pop3Listener {
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method run()V {
    getstatic Config.popPort I
    invokestatic Net.listen(I)I
    store 1
  accept:
    load 1
    invokestatic Net.accept(I)I
    store 2
    new Pop3Session
    dup
    load 2
    invokespecial Pop3Session.<init>(I)V
    invokestatic Thread.spawn(LObject;)V
    goto accept
  }
}
`

// --- sessions (byte-identical run loops in every release) ------------------------

const esSessions = `
class SmtpSession {
  field conn I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield SmtpSession.conn I
    return
  }
  method run()V {
  loop:
    load 0
    getfield SmtpSession.conn I
    invokestatic Net.recvLine(I)LString;
    store 1
    load 1
    ifnull closed
    load 0
    getfield SmtpSession.conn I
    load 1
    invokestatic SmtpProtocol.handle(ILString;)Z
    ifne loop
  closed:
    load 0
    getfield SmtpSession.conn I
    invokestatic Net.close(I)V
    return
  }
}
class Pop3Session {
  field conn I
  method <init>(I)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Pop3Session.conn I
    return
  }
  method run()V {
  loop:
    load 0
    getfield Pop3Session.conn I
    invokestatic Net.recvLine(I)LString;
    store 1
    load 1
    ifnull closed
    load 0
    getfield Pop3Session.conn I
    load 1
    invokestatic Pop3Protocol.handle(ILString;)Z
    ifne loop
  closed:
    load 0
    getfield Pop3Session.conn I
    invokestatic Net.close(I)V
    return
  }
}
`

// --- Greeting (version banner) ----------------------------------------------------

func esGreeting(ver string) string {
	return `
class Greeting {
  static method banner()LString; {
    ldc "JavaEmailServer/` + ver + `"
    return
  }
}
`
}

// --- User variants -------------------------------------------------------------------

// esUser121: the paper's Figure 2(a) shape — forwards are plain strings.
const esUser121 = `
class User {
  field username LString;
  field domain LString;
  field password LString;
  field forwardAddresses [LString;
  method <init>(LString;LString;LString;)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield User.username LString;
    load 0
    load 2
    putfield User.domain LString;
    load 0
    load 3
    putfield User.password LString;
    return
  }
  method name()LString; {
    load 0
    getfield User.username LString;
    return
  }
  method getForwardedAddresses()[LString; {
    load 0
    getfield User.forwardAddresses [LString;
    return
  }
  method setForwardedAddresses([LString;)V {
    load 0
    load 1
    putfield User.forwardAddresses [LString;
    return
  }
  method describeForwards()LString; {
    load 0
    getfield User.forwardAddresses [LString;
    store 1
    load 1
    ifnull none
    ldc ""
    store 2
    const 0
    store 3
  each:
    load 3
    load 1
    arraylen
    if_icmpge out
    load 2
    load 1
    load 3
    aget
    invokevirtual String.concat(LString;)LString;
    ldc ";"
    invokevirtual String.concat(LString;)LString;
    store 2
    load 3
    const 1
    add
    store 3
    goto each
  out:
    load 2
    return
  none:
    ldc "(none)"
    return
  }
}
`

// esUser123 adds a lastLogin timestamp (field addition).
const esUser123 = `
class User {
  field username LString;
  field domain LString;
  field password LString;
  field forwardAddresses [LString;
  field lastLogin I
  method <init>(LString;LString;LString;)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield User.username LString;
    load 0
    load 2
    putfield User.domain LString;
    load 0
    load 3
    putfield User.password LString;
    return
  }
  method name()LString; {
    load 0
    getfield User.username LString;
    return
  }
  method touch()V {
    load 0
    invokestatic System.time()I
    putfield User.lastLogin I
    return
  }
  method getForwardedAddresses()[LString; {
    load 0
    getfield User.forwardAddresses [LString;
    return
  }
  method setForwardedAddresses([LString;)V {
    load 0
    load 1
    putfield User.forwardAddresses [LString;
    return
  }
  method describeForwards()LString; {
    load 0
    getfield User.forwardAddresses [LString;
    store 1
    load 1
    ifnull none
    ldc ""
    store 2
    const 0
    store 3
  each:
    load 3
    load 1
    arraylen
    if_icmpge out
    load 2
    load 1
    load 3
    aget
    invokevirtual String.concat(LString;)LString;
    ldc ";"
    invokevirtual String.concat(LString;)LString;
    store 2
    load 3
    const 1
    add
    store 3
    goto each
  out:
    load 2
    return
  none:
    ldc "(none)"
    return
  }
}
`

// esUser132: Figure 2(b) — forwards become EmailAddress objects; the setter
// and getter change signature.
const esUser132 = `
class EmailAddress {
  field local LString;
  field domain LString;
  method <init>(LString;LString;)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield EmailAddress.local LString;
    load 0
    load 2
    putfield EmailAddress.domain LString;
    return
  }
  method format()LString; {
    load 0
    getfield EmailAddress.local LString;
    ldc "@"
    invokevirtual String.concat(LString;)LString;
    load 0
    getfield EmailAddress.domain LString;
    invokevirtual String.concat(LString;)LString;
    return
  }
}
class User {
  field username LString;
  field domain LString;
  field password LString;
  field forwardAddresses [LEmailAddress;
  field lastLogin I
  method <init>(LString;LString;LString;)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield User.username LString;
    load 0
    load 2
    putfield User.domain LString;
    load 0
    load 3
    putfield User.password LString;
    return
  }
  method name()LString; {
    load 0
    getfield User.username LString;
    return
  }
  method touch()V {
    load 0
    invokestatic System.time()I
    putfield User.lastLogin I
    return
  }
  method getForwardedAddresses()[LEmailAddress; {
    load 0
    getfield User.forwardAddresses [LEmailAddress;
    return
  }
  method setForwardedAddresses([LEmailAddress;)V {
    load 0
    load 1
    putfield User.forwardAddresses [LEmailAddress;
    return
  }
  method describeForwards()LString; {
    load 0
    getfield User.forwardAddresses [LEmailAddress;
    store 1
    load 1
    ifnull none
    ldc ""
    store 2
    const 0
    store 3
  each:
    load 3
    load 1
    arraylen
    if_icmpge out
    load 2
    load 1
    load 3
    aget
    invokevirtual EmailAddress.format()LString;
    invokevirtual String.concat(LString;)LString;
    ldc ";"
    invokevirtual String.concat(LString;)LString;
    store 2
    load 3
    const 1
    add
    store 3
    goto each
  out:
    load 2
    return
  none:
    ldc "(none)"
    return
  }
}
`

// esUser14 adds an auto-reply flag on top of 1.3.2's shape.
var esUser14 = esUser132 + `
class UserPrefs {
  static field autoReplyDefault Z
}
`

// --- UserStore -------------------------------------------------------------------------

// esUserStoreV1 seeds two accounts with string forwards (1.2.1–1.3.1).
const esUserStoreV1 = `
class UserStore {
  static field users [LUser;
  static field count I
  static method <clinit>()V {
    const 8
    newarray LUser;
    putstatic UserStore.users [LUser;
    new User
    dup
    ldc "alice"
    ldc "example.com"
    ldc "secret"
    invokespecial User.<init>(LString;LString;LString;)V
    store 0
    const 2
    newarray LString;
    store 1
    load 1
    const 0
    ldc "alice@backup.example.com"
    aset
    load 1
    const 1
    ldc "alice@phone.example.com"
    aset
    load 0
    load 1
    invokevirtual User.setForwardedAddresses([LString;)V
    load 0
    invokestatic UserStore.add(LUser;)V
    new User
    dup
    ldc "bob"
    ldc "example.com"
    ldc "hunter2"
    invokespecial User.<init>(LString;LString;LString;)V
    invokestatic UserStore.add(LUser;)V
    return
  }
  static method add(LUser;)V {
    getstatic UserStore.users [LUser;
    getstatic UserStore.count I
    load 0
    aset
    getstatic UserStore.count I
    const 1
    add
    putstatic UserStore.count I
    return
  }
  static method find(LString;)LUser; {
    const 0
    store 1
  scan:
    load 1
    getstatic UserStore.count I
    if_icmpge missing
    getstatic UserStore.users [LUser;
    load 1
    aget
    invokevirtual User.name()LString;
    load 0
    invokevirtual String.equals(LString;)Z
    ifeq next
    getstatic UserStore.users [LUser;
    load 1
    aget
    return
  next:
    load 1
    const 1
    add
    store 1
    goto scan
  missing:
    null
    return
  }
}
`

// esUserStoreV2 (1.3.2+) seeds EmailAddress forwards.
const esUserStoreV2 = `
class UserStore {
  static field users [LUser;
  static field count I
  static method <clinit>()V {
    const 8
    newarray LUser;
    putstatic UserStore.users [LUser;
    new User
    dup
    ldc "alice"
    ldc "example.com"
    ldc "secret"
    invokespecial User.<init>(LString;LString;LString;)V
    store 0
    const 2
    newarray LEmailAddress;
    store 1
    load 1
    const 0
    new EmailAddress
    dup
    ldc "alice"
    ldc "backup.example.com"
    invokespecial EmailAddress.<init>(LString;LString;)V
    aset
    load 1
    const 1
    new EmailAddress
    dup
    ldc "alice"
    ldc "phone.example.com"
    invokespecial EmailAddress.<init>(LString;LString;)V
    aset
    load 0
    load 1
    invokevirtual User.setForwardedAddresses([LEmailAddress;)V
    load 0
    invokestatic UserStore.add(LUser;)V
    new User
    dup
    ldc "bob"
    ldc "example.com"
    ldc "hunter2"
    invokespecial User.<init>(LString;LString;LString;)V
    invokestatic UserStore.add(LUser;)V
    return
  }
  static method add(LUser;)V {
    getstatic UserStore.users [LUser;
    getstatic UserStore.count I
    load 0
    aset
    getstatic UserStore.count I
    const 1
    add
    putstatic UserStore.count I
    return
  }
  static method find(LString;)LUser; {
    const 0
    store 1
  scan:
    load 1
    getstatic UserStore.count I
    if_icmpge missing
    getstatic UserStore.users [LUser;
    load 1
    aget
    invokevirtual User.name()LString;
    load 0
    invokevirtual String.equals(LString;)Z
    ifeq next
    getstatic UserStore.users [LUser;
    load 1
    aget
    return
  next:
    load 1
    const 1
    add
    store 1
    goto scan
  missing:
    null
    return
  }
}
`

// --- MailStore ----------------------------------------------------------------------------

const esMailStoreV1 = `
class MailStore {
  static field inbox [LString;
  static field count I
  static method <clinit>()V {
    const 64
    newarray LString;
    putstatic MailStore.inbox [LString;
    return
  }
  static method deliver(LString;)V {
    getstatic MailStore.count I
    const 64
    if_icmpge full
    getstatic MailStore.inbox [LString;
    getstatic MailStore.count I
    load 0
    aset
    getstatic MailStore.count I
    const 1
    add
    putstatic MailStore.count I
  full:
    return
  }
  static method size()I {
    getstatic MailStore.count I
    return
  }
  static method get(I)LString; {
    load 0
    getstatic MailStore.count I
    if_icmpge bad
    load 0
    iflt bad
    getstatic MailStore.inbox [LString;
    load 0
    aget
    return
  bad:
    null
    return
  }
}
`

// esMailStoreV2 (1.3.4) adds a dropped-mail counter (field addition).
const esMailStoreV2 = `
class MailStore {
  static field inbox [LString;
  static field count I
  static field dropped I
  static method <clinit>()V {
    const 64
    newarray LString;
    putstatic MailStore.inbox [LString;
    return
  }
  static method deliver(LString;)V {
    getstatic MailStore.count I
    const 64
    if_icmpge full
    getstatic MailStore.inbox [LString;
    getstatic MailStore.count I
    load 0
    aset
    getstatic MailStore.count I
    const 1
    add
    putstatic MailStore.count I
    return
  full:
    getstatic MailStore.dropped I
    const 1
    add
    putstatic MailStore.dropped I
    return
  }
  static method size()I {
    getstatic MailStore.count I
    return
  }
  static method get(I)LString; {
    load 0
    getstatic MailStore.count I
    if_icmpge bad
    load 0
    iflt bad
    getstatic MailStore.inbox [LString;
    load 0
    aget
    return
  bad:
    null
    return
  }
}
`

// --- Protocol handlers -------------------------------------------------------------------

// esSmtp builds the SMTP handler; greet is the HELO reply prefix and
// deliveredMsg the DATA acknowledgement (both evolve across releases).
func esSmtp(greet, deliveredMsg string) string {
	return `
class SmtpProtocol {
  static method handle(ILString;)Z {
    load 1
    ldc "HELO "
    invokevirtual String.startsWith(LString;)Z
    ifeq try_mail
    load 0
    ldc "` + greet + ` "
    invokestatic Greeting.banner()LString;
    invokevirtual String.concat(LString;)LString;
    invokestatic Net.send(ILString;)V
    const 1
    return
  try_mail:
    load 1
    ldc "DATA "
    invokevirtual String.startsWith(LString;)Z
    ifeq try_quit
    load 1
    const 5
    load 1
    invokevirtual String.length()I
    invokevirtual String.substring(II)LString;
    invokestatic MailStore.deliver(LString;)V
    load 0
    ldc "` + deliveredMsg + `"
    invokestatic Net.send(ILString;)V
    const 1
    return
  try_quit:
    load 1
    ldc "QUIT"
    invokevirtual String.equals(LString;)Z
    ifeq unknown
    load 0
    ldc "221 bye"
    invokestatic Net.send(ILString;)V
    const 0
    return
  unknown:
    load 0
    ldc "500 unrecognized"
    invokestatic Net.send(ILString;)V
    const 1
    return
  }
}
`
}

// esPop builds the POP3 handler; okPrefix evolves, and the FWD command
// surfaces the User.describeForwards behaviour (observing the 1.3.2 type
// change end to end).
func esPop(okPrefix string) string {
	return `
class Pop3Protocol {
  static method handle(ILString;)Z {
    load 1
    ldc "USER "
    invokevirtual String.startsWith(LString;)Z
    ifeq try_stat
    load 1
    const 5
    load 1
    invokevirtual String.length()I
    invokevirtual String.substring(II)LString;
    invokestatic UserStore.find(LString;)LUser;
    ifnull nouser
    load 0
    ldc "` + okPrefix + ` "
    invokestatic Greeting.banner()LString;
    invokevirtual String.concat(LString;)LString;
    invokestatic Net.send(ILString;)V
    const 1
    return
  nouser:
    load 0
    ldc "-ERR no such user"
    invokestatic Net.send(ILString;)V
    const 1
    return
  try_stat:
    load 1
    ldc "STAT"
    invokevirtual String.equals(LString;)Z
    ifeq try_retr
    load 0
    ldc "` + okPrefix + ` "
    invokestatic MailStore.size()I
    invokestatic String.fromInt(I)LString;
    invokevirtual String.concat(LString;)LString;
    invokestatic Net.send(ILString;)V
    const 1
    return
  try_retr:
    load 1
    ldc "RETR "
    invokevirtual String.startsWith(LString;)Z
    ifeq try_fwd
    load 1
    const 5
    load 1
    invokevirtual String.length()I
    invokevirtual String.substring(II)LString;
    invokevirtual String.toInt()I
    invokestatic MailStore.get(I)LString;
    store 2
    load 2
    ifnull nomsg
    load 0
    ldc "` + okPrefix + ` "
    load 2
    invokevirtual String.concat(LString;)LString;
    invokestatic Net.send(ILString;)V
    const 1
    return
  nomsg:
    load 0
    ldc "-ERR no such message"
    invokestatic Net.send(ILString;)V
    const 1
    return
  try_fwd:
    load 1
    ldc "FWD "
    invokevirtual String.startsWith(LString;)Z
    ifeq try_quit
    load 1
    const 4
    load 1
    invokevirtual String.length()I
    invokevirtual String.substring(II)LString;
    invokestatic UserStore.find(LString;)LUser;
    store 2
    load 2
    ifnull nouser2
    load 0
    ldc "` + okPrefix + ` "
    load 2
    invokevirtual User.describeForwards()LString;
    invokevirtual String.concat(LString;)LString;
    invokestatic Net.send(ILString;)V
    const 1
    return
  nouser2:
    load 0
    ldc "-ERR no such user"
    invokestatic Net.send(ILString;)V
    const 1
    return
  try_quit:
    load 1
    ldc "QUIT"
    invokevirtual String.equals(LString;)Z
    ifeq unknown
    load 0
    ldc "+OK bye"
    invokestatic Net.send(ILString;)V
    const 0
    return
  unknown:
    load 0
    ldc "-ERR unrecognized"
    invokestatic Net.send(ILString;)V
    const 1
    return
  }
}
`
}

// EmailServer builds the JavaEmailServer stand-in with its ten releases.
func EmailServer() *App {
	v := func(name, tag string) Version { return Version{Name: name, Tag: tag} }

	v121 := v("1.2.1", "121")
	v121.Source = esGreeting("1.2.1") + esUser121 + esUserStoreV1 + esMailStoreV1 +
		esSmtp("250 hello from", "250 delivered") + esPop("+OK") + esSessions + esMainV1

	// 1.2.2: protocol wording fixes only — supportable by method-body-only
	// DSU systems.
	v122 := v("1.2.2", "122")
	v122.Source = esGreeting("1.2.2") + esUser121 + esUserStoreV1 + esMailStoreV1 +
		esSmtp("250 greetings from", "250 message accepted") + esPop("+OK") + esSessions + esMainV1
	v122.BodyOnly = true

	// 1.2.3: User gains lastLogin (field addition) and POP touches it.
	v123 := v("1.2.3", "123")
	v123.Source = esGreeting("1.2.3") + esUser123 + esUserStoreV1 + esMailStoreV1 +
		esSmtp("250 greetings from", "250 message accepted") + esPop("+OK") + esSessions + esMainV1

	// 1.2.4: body-only fix in the SMTP acknowledgement.
	v124 := v("1.2.4", "124")
	v124.Source = esGreeting("1.2.4") + esUser123 + esUserStoreV1 + esMailStoreV1 +
		esSmtp("250 greetings from", "250 queued for delivery") + esPop("+OK") + esSessions + esMainV1
	v124.BodyOnly = true

	// 1.3: the configuration rework — the listeners' accept loops change,
	// and they are always on stack: the update aborts (paper §4.3).
	v13 := v("1.3", "13")
	v13.Source = esGreeting("1.3") + esUser123 + esUserStoreV1 + esMailStoreV1 +
		esSmtp("250 greetings from", "250 queued for delivery") + esPop("+OK") + esSessions + esMainV2
	v13.ExpectAbort = true

	// 1.3.1: body-only POP prefix fix.
	v131 := v("1.3.1", "131")
	v131.Source = esGreeting("1.3.1") + esUser123 + esUserStoreV1 + esMailStoreV1 +
		esSmtp("250 greetings from", "250 queued for delivery") + esPop("+OK ready") + esSessions + esMainV2
	v131.BodyOnly = true

	// 1.3.2: the paper's Figure 2/3 update. Sessions reference User only
	// indirectly (through the protocol handlers), but the always-running
	// listener loops reference Config/SmtpSession — unchanged bytecode
	// over updated metadata — so OSR carries them across.
	v132 := v("1.3.2", "132")
	v132.Source = esGreeting("1.3.2") + esUser132 + esUserStoreV2 + esMailStoreV1 +
		esSmtp("250 greetings from", "250 queued for delivery") + esPop("+OK ready") + esSessions + esMainV2
	v132.Transformers = `
class JvolveTransformers {
  static method jvolveObject(LUser;Lv131_User;)V {
    load 0
    load 1
    getfield v131_User.username LString;
    putfield User.username LString;
    load 0
    load 1
    getfield v131_User.domain LString;
    putfield User.domain LString;
    load 0
    load 1
    getfield v131_User.password LString;
    putfield User.password LString;
    load 0
    load 1
    getfield v131_User.lastLogin I
    putfield User.lastLogin I
    load 1
    getfield v131_User.forwardAddresses [LString;
    ifnull done
    load 1
    getfield v131_User.forwardAddresses [LString;
    arraylen
    newarray LEmailAddress;
    store 2
    const 0
    store 3
  each:
    load 3
    load 1
    getfield v131_User.forwardAddresses [LString;
    arraylen
    if_icmpge fill
    load 1
    getfield v131_User.forwardAddresses [LString;
    load 3
    aget
    const 64
    invokevirtual String.split(C)[LString;
    store 4
    load 2
    load 3
    new EmailAddress
    dup
    load 4
    const 0
    aget
    load 4
    const 1
    aget
    invokespecial EmailAddress.<init>(LString;LString;)V
    aset
    load 3
    const 1
    add
    store 3
    goto each
  fill:
    load 0
    load 2
    putfield User.forwardAddresses [LEmailAddress;
  done:
    return
  }
}
`

	// 1.3.3: body-only delivery acknowledgement fix.
	v133 := v("1.3.3", "133")
	v133.Source = esGreeting("1.3.3") + esUser132 + esUserStoreV2 + esMailStoreV1 +
		esSmtp("250 greetings from", "250 accepted for delivery") + esPop("+OK ready") + esSessions + esMainV2
	v133.BodyOnly = true

	// 1.3.4: MailStore gains a dropped-mail counter (field addition).
	v134 := v("1.3.4", "134")
	v134.Source = esGreeting("1.3.4") + esUser132 + esUserStoreV2 + esMailStoreV2 +
		esSmtp("250 greetings from", "250 accepted for delivery") + esPop("+OK ready") + esSessions + esMainV2

	// 1.4: a UserPrefs class appears and the SMTP wording changes.
	v14 := v("1.4", "14")
	v14.Source = esGreeting("1.4") + esUser14 + esUserStoreV2 + esMailStoreV2 +
		esSmtp("250 welcome to", "250 accepted for delivery") + esPop("+OK ready") + esSessions + esMainV2

	return &App{
		Name:         "emailserver",
		Port:         25,
		MainClass:    "MailServer",
		ProbeRequest: "HELO probe",
		Workloads: []Workload{
			{Port: 25, Lines: []string{"HELO client", "DATA hello world", "QUIT"}},
			{Port: 110, Lines: []string{"USER alice", "STAT", "RETR 0", "FWD alice", "QUIT"}},
		},
		Versions: []Version{
			v121, v122, v123, v124, v13, v131, v132, v133, v134, v14,
		},
	}
}
