package apps

import (
	"strings"
	"testing"

	"govolve/internal/core"
)

// request sends one line on a fresh connection to the given port and
// returns the first response.
func request(t *testing.T, s *Server, port int64, line string) string {
	t.Helper()
	conn, err := s.VM.Net.Connect(port)
	if err != nil {
		t.Fatalf("connect %d: %v", port, err)
	}
	defer s.VM.Net.ClientClose(conn)
	if err := s.VM.Net.ClientSend(conn, line); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		s.VM.Step(5)
		if resp, ok := s.VM.Net.ClientRecv(conn); ok {
			return resp
		}
	}
	t.Fatalf("request %q timed out", line)
	return ""
}

func launchAt(t *testing.T, app *App, version string) *Server {
	t.Helper()
	for i, v := range app.Versions {
		if v.Name == version {
			s, err := Launch(app, LaunchOptions{Version: i, HeapWords: 1 << 19})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
	}
	t.Fatalf("no version %s", version)
	return nil
}

func TestWebserverVersionSpecificBehavior(t *testing.T) {
	app := Webserver()

	// /news does not exist in 5.1.0 and exists from 5.1.1 on.
	s0 := launchAt(t, app, "5.1.0")
	if got := request(t, s0, 8080, "GET /news"); !strings.HasPrefix(got, "404") {
		t.Fatalf("5.1.0 /news = %q, want 404", got)
	}
	s1 := launchAt(t, app, "5.1.1")
	if got := request(t, s1, 8080, "GET /news"); !strings.HasPrefix(got, "200") {
		t.Fatalf("5.1.1 /news = %q, want 200", got)
	}

	// 5.1.2 adds mime types to the response.
	s2 := launchAt(t, app, "5.1.2")
	if got := request(t, s2, 8080, "GET /file.txt"); !strings.HasPrefix(got, "404") {
		t.Fatalf("unknown .txt = %q", got)
	}
	if got := request(t, s2, 8080, "GET /"); !strings.Contains(got, "text/html") {
		t.Fatalf("5.1.2 response lacks mime type: %q", got)
	}

	// 5.1.4's 404 includes the path.
	s4 := launchAt(t, app, "5.1.4")
	if got := request(t, s4, 8080, "GET /nope"); !strings.Contains(got, "/nope") {
		t.Fatalf("5.1.4 404 = %q, want path echoed", got)
	}

	// /api appears in 5.1.6, changes body in 5.1.8; /status appears in 5.1.9.
	s6 := launchAt(t, app, "5.1.6")
	if got := request(t, s6, 8080, "GET /api"); !strings.Contains(got, "api root") {
		t.Fatalf("5.1.6 /api = %q", got)
	}
	s8 := launchAt(t, app, "5.1.8")
	if got := request(t, s8, 8080, "GET /api"); !strings.Contains(got, "api root v2") {
		t.Fatalf("5.1.8 /api = %q", got)
	}
	s9 := launchAt(t, app, "5.1.9")
	if got := request(t, s9, 8080, "GET /status"); !strings.Contains(got, "nominal") {
		t.Fatalf("5.1.9 /status = %q", got)
	}

	// The parser fix in 5.1.1: a bare "GET " (empty path) serves the index.
	if got := request(t, s1, 8080, "GET "); !strings.HasPrefix(got, "200") {
		t.Fatalf("5.1.1 empty path = %q, want 200 via parser fix", got)
	}
}

func TestWebserverStatsSurviveUpdates(t *testing.T) {
	app := Webserver()
	s := launchAt(t, app, "5.1.0")
	for i := 0; i < 5; i++ {
		if got := request(t, s, 8080, "GET /"); !strings.HasPrefix(got, "200") {
			t.Fatalf("hit %d: %q", i, got)
		}
	}
	// Update to 5.1.1 (Stats gains bytesSent; requests counter must carry).
	res, err := s.ApplyNext(core.Options{MaxAttempts: 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Applied {
		t.Fatalf("update: %v (%v)", res.Outcome, res.Err)
	}
	// Read the counter through the VM (no stats endpoint in v1).
	stats := s.VM.Reg.LookupClass("Stats")
	slot := stats.StaticField("requests")
	if slot == nil {
		t.Fatal("no requests static")
	}
	if got := s.VM.Reg.JTOC[slot.Slot].Int(); got < 5 {
		t.Fatalf("requests counter after update = %d, want >= 5 (default class transformer must copy it)", got)
	}
}

func TestEmailServerProtocols(t *testing.T) {
	app := EmailServer()
	s := launchAt(t, app, "1.2.1")

	if got := request(t, s, 25, "HELO me"); !strings.Contains(got, "JavaEmailServer/1.2.1") {
		t.Fatalf("HELO = %q", got)
	}
	if got := request(t, s, 25, "DATA first message"); !strings.HasPrefix(got, "250") {
		t.Fatalf("DATA = %q", got)
	}
	if got := request(t, s, 25, "NONSENSE"); !strings.HasPrefix(got, "500") {
		t.Fatalf("unknown = %q", got)
	}
	if got := request(t, s, 110, "USER alice"); !strings.HasPrefix(got, "+OK") {
		t.Fatalf("USER alice = %q", got)
	}
	if got := request(t, s, 110, "USER mallory"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("USER mallory = %q", got)
	}
	if got := request(t, s, 110, "STAT"); !strings.Contains(got, "1") {
		t.Fatalf("STAT = %q", got)
	}
	if got := request(t, s, 110, "RETR 0"); !strings.Contains(got, "first message") {
		t.Fatalf("RETR = %q", got)
	}
	if got := request(t, s, 110, "RETR 9"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("RETR 9 = %q", got)
	}
	if got := request(t, s, 110, "FWD alice"); !strings.Contains(got, "backup.example.com") {
		t.Fatalf("FWD = %q", got)
	}
	if got := request(t, s, 110, "FWD bob"); !strings.Contains(got, "(none)") {
		t.Fatalf("FWD bob = %q", got)
	}
}

func TestMailSurvivesWholeVersionStream(t *testing.T) {
	app := EmailServer()
	s := launchAt(t, app, "1.3") // post-abort epoch: update through to 1.4
	if got := request(t, s, 25, "DATA persistent mail"); !strings.HasPrefix(got, "250") {
		t.Fatalf("DATA = %q", got)
	}
	for s.Version().Name != "1.4" {
		res, err := s.ApplyNext(core.Options{MaxAttempts: 150}, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != core.Applied {
			t.Fatalf("update to %s: %v (%v)", s.App.Versions[s.VersionIdx+1].Name, res.Outcome, res.Err)
		}
	}
	// The message delivered under 1.3 is still retrievable under 1.4,
	// having crossed the Figure 2/3 type-change update on the way.
	if got := request(t, s, 110, "RETR 0"); !strings.Contains(got, "persistent mail") {
		t.Fatalf("RETR after stream = %q", got)
	}
	if got := request(t, s, 110, "FWD alice"); !strings.Contains(got, "alice@backup.example.com") {
		t.Fatalf("FWD after stream = %q", got)
	}
}

func TestFTPServerProtocol(t *testing.T) {
	app := FTPServer()
	s := launchAt(t, app, "1.05")
	conn, err := s.VM.Net.Connect(21)
	if err != nil {
		t.Fatal(err)
	}
	send := func(line string) string {
		t.Helper()
		if err := s.VM.Net.ClientSend(conn, line); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			s.VM.Step(5)
			if resp, ok := s.VM.Net.ClientRecv(conn); ok {
				return resp
			}
		}
		t.Fatalf("%q timed out", line)
		return ""
	}
	if got := send("PASS crossftp"); !strings.HasPrefix(got, "530") {
		t.Fatalf("PASS before USER = %q", got)
	}
	if got := send("USER admin"); !strings.HasPrefix(got, "331") {
		t.Fatalf("USER = %q", got)
	}
	if got := send("PASS wrong"); !strings.HasPrefix(got, "530") {
		t.Fatalf("bad PASS = %q", got)
	}
	if got := send("PASS crossftp"); !strings.HasPrefix(got, "230") {
		t.Fatalf("PASS = %q", got)
	}
	if got := send("LIST"); !strings.Contains(got, "readme.txt") || !strings.Contains(got, "motd") {
		t.Fatalf("LIST = %q", got)
	}
	if got := send("RETR readme.txt"); !strings.Contains(got, "welcome to crossftp") {
		t.Fatalf("RETR = %q", got)
	}
	if got := send("RETR nothere"); !strings.HasPrefix(got, "550") {
		t.Fatalf("RETR missing = %q", got)
	}
	if got := send("QUIT"); !strings.HasPrefix(got, "221") {
		t.Fatalf("QUIT = %q", got)
	}
}
