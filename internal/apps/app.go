// Package apps contains the three long-running server applications the
// evaluation updates live, standing in for the paper's Jetty webserver,
// JavaEmailServer, and CrossFTP server. Each app is written in the toy
// language with a full stream of versions whose diffs have the same kinds
// as the paper's Tables 2–4: method-body-only updates, signature changes,
// field additions and deletions, class additions and deletions — and, for
// exactly one version per the first two apps, a change to a method that
// never leaves the stack, which makes the update un-applicable (the
// paper's two failures out of 22).
//
// Versions are composed from shared source fragments: code that must stay
// byte-identical across releases (accept loops, handler run methods) is
// written once, exactly as real consecutive releases share most of their
// text.
package apps

import (
	"fmt"

	"govolve/internal/classfile"
	"govolve/internal/upt"

	"govolve/internal/asm"
)

// Version is one release of an application.
type Version struct {
	// Name is the release name, e.g. "5.1.3".
	Name string
	// Tag is the rename prefix used when updating *from* this version.
	Tag string
	// Source is the complete assembler source of this release.
	Source string
	// Transformers optionally holds custom transformer source (a
	// JvolveTransformers class) for the update *into* this version.
	Transformers string
	// ExpectAbort marks releases whose update can never be applied while
	// the server runs (a changed method is permanently on stack).
	ExpectAbort bool
	// BodyOnly marks updates a method-body-only DSU system (HotSwap,
	// .NET edit-and-continue) could also support.
	BodyOnly bool
	// NeedsQuiesce marks updates that change connection-handler code: they
	// apply only once active sessions drain (the paper's CrossFTP
	// 1.07→1.08 "relatively idle" case).
	NeedsQuiesce bool
}

// Workload is a request mix against one port.
type Workload struct {
	Port  int64
	Lines []string
}

// App is one updatable server application.
type App struct {
	// Name identifies the app ("webserver", "emailserver", "ftpserver").
	Name string
	// Port is the primary simulated listen port (probes go here).
	Port int64
	// MainClass hosts main()V.
	MainClass string
	// Versions in release order.
	Versions []Version
	// ProbeRequest is sent on a fresh connection to check liveness and
	// which version is active (responses embed the version banner).
	ProbeRequest string
	// Workloads drive load during benchmarks and update attempts.
	Workloads []Workload
}

// Program assembles one version.
func (a *App) Program(i int) (*classfile.Program, error) {
	if i < 0 || i >= len(a.Versions) {
		return nil, fmt.Errorf("apps: %s has no version %d", a.Name, i)
	}
	v := a.Versions[i]
	p, err := asm.AssembleProgram(a.Name+"-"+v.Name+".jva", v.Source)
	if err != nil {
		return nil, fmt.Errorf("apps: %s %s: %w", a.Name, v.Name, err)
	}
	return p, nil
}

// Spec prepares the update specification from version i to i+1, applying
// the target version's custom transformers.
func (a *App) Spec(i int) (*upt.Spec, error) {
	old, err := a.Program(i)
	if err != nil {
		return nil, err
	}
	next, err := a.Program(i + 1)
	if err != nil {
		return nil, err
	}
	spec, err := upt.Prepare(a.Versions[i].Tag, old, next)
	if err != nil {
		return nil, err
	}
	if custom := a.Versions[i+1].Transformers; custom != "" {
		classes, err := asm.Assemble("transformers.jva", custom)
		if err != nil {
			return nil, fmt.Errorf("apps: %s transformers for %s: %w", a.Name, a.Versions[i+1].Name, err)
		}
		for _, m := range classes[0].Methods {
			spec.OverrideTransformer(m)
		}
	}
	return spec, nil
}

// UpdateCount returns the number of version transitions.
func (a *App) UpdateCount() int { return len(a.Versions) - 1 }

// All returns the three applications.
func All() []*App {
	return []*App{Webserver(), EmailServer(), FTPServer()}
}
