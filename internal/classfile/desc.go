// Package classfile defines the class-file model of the govolve toy managed
// language: type descriptors, fields, methods, and classes, plus a
// programmatic builder. Class files are the unit of dynamic loading and the
// unit the Update Preparation Tool (internal/upt) diffs between versions.
package classfile

import (
	"fmt"
	"strings"
)

// Kind classifies a type descriptor.
type Kind uint8

const (
	KInvalid Kind = iota
	KVoid         // V — method returns only
	KInt          // I — 64-bit integer
	KBool         // Z
	KChar         // C
	KRef          // LName;
	KArray        // [T
)

// Desc is a JVM-style type descriptor:
//
//	I        int (64-bit)
//	Z        boolean
//	C        character
//	V        void (return types only)
//	LName;   reference to class Name
//	[T       array of T
type Desc string

// Kind returns the descriptor's kind, or KInvalid for malformed input.
func (d Desc) Kind() Kind {
	if len(d) == 0 {
		return KInvalid
	}
	switch d[0] {
	case 'I':
		if len(d) == 1 {
			return KInt
		}
	case 'Z':
		if len(d) == 1 {
			return KBool
		}
	case 'C':
		if len(d) == 1 {
			return KChar
		}
	case 'V':
		if len(d) == 1 {
			return KVoid
		}
	case 'L':
		if len(d) > 2 && d[len(d)-1] == ';' {
			return KRef
		}
	case '[':
		if Desc(d[1:]).Kind() != KInvalid && Desc(d[1:]).Kind() != KVoid {
			return KArray
		}
	}
	return KInvalid
}

// IsRef reports whether values of this type are heap references.
func (d Desc) IsRef() bool {
	k := d.Kind()
	return k == KRef || k == KArray
}

// IsNumeric reports whether the type is stored as a raw integer word.
func (d Desc) IsNumeric() bool {
	k := d.Kind()
	return k == KInt || k == KBool || k == KChar
}

// Valid reports whether the descriptor is well-formed (void excluded).
func (d Desc) Valid() bool {
	k := d.Kind()
	return k != KInvalid && k != KVoid
}

// ClassName returns the referenced class name for L-descriptors, "" otherwise.
func (d Desc) ClassName() string {
	if d.Kind() == KRef {
		return string(d[1 : len(d)-1])
	}
	return ""
}

// Elem returns the element descriptor of an array type, "" otherwise.
func (d Desc) Elem() Desc {
	if d.Kind() == KArray {
		return Desc(d[1:])
	}
	return ""
}

// RefOf builds the descriptor for a reference to the named class.
func RefOf(name string) Desc { return Desc("L" + name + ";") }

// ArrayOf builds the descriptor for an array of the given element type.
func ArrayOf(elem Desc) Desc { return "[" + elem }

// Sig is a method signature "(args)ret", e.g. "(ILString;)V".
type Sig string

// ParseSig splits a signature into argument descriptors and return
// descriptor. The return descriptor may be V.
func ParseSig(s Sig) (args []Desc, ret Desc, err error) {
	str := string(s)
	if len(str) < 3 || str[0] != '(' {
		return nil, "", fmt.Errorf("classfile: malformed signature %q", s)
	}
	close := strings.IndexByte(str, ')')
	if close < 0 {
		return nil, "", fmt.Errorf("classfile: malformed signature %q", s)
	}
	rest := str[1:close]
	for len(rest) > 0 {
		d, n, perr := nextDesc(rest)
		if perr != nil {
			return nil, "", fmt.Errorf("classfile: signature %q: %v", s, perr)
		}
		args = append(args, d)
		rest = rest[n:]
	}
	ret = Desc(str[close+1:])
	if k := ret.Kind(); k == KInvalid {
		return nil, "", fmt.Errorf("classfile: signature %q: bad return type", s)
	}
	return args, ret, nil
}

// nextDesc scans one descriptor off the front of s, returning it and the
// number of bytes consumed.
func nextDesc(s string) (Desc, int, error) {
	if len(s) == 0 {
		return "", 0, fmt.Errorf("empty descriptor")
	}
	switch s[0] {
	case 'I', 'Z', 'C':
		return Desc(s[:1]), 1, nil
	case 'L':
		end := strings.IndexByte(s, ';')
		if end < 1 {
			return "", 0, fmt.Errorf("unterminated class descriptor in %q", s)
		}
		return Desc(s[:end+1]), end + 1, nil
	case '[':
		d, n, err := nextDesc(s[1:])
		if err != nil {
			return "", 0, err
		}
		return "[" + d, n + 1, nil
	default:
		return "", 0, fmt.Errorf("bad descriptor start %q", s[:1])
	}
}

// NumArgs returns the number of declared arguments (receiver excluded).
func (s Sig) NumArgs() int {
	args, _, err := ParseSig(s)
	if err != nil {
		return -1
	}
	return len(args)
}

// Ret returns the return descriptor, or "" for a malformed signature.
func (s Sig) Ret() Desc {
	_, ret, err := ParseSig(s)
	if err != nil {
		return ""
	}
	return ret
}

// Valid reports whether the signature parses.
func (s Sig) Valid() bool {
	_, _, err := ParseSig(s)
	return err == nil
}
