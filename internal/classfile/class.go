package classfile

import (
	"fmt"
	"sort"
	"strings"

	"govolve/internal/bytecode"
)

// Access is a member's access modifier. The verifier enforces it except in
// relaxed mode (used only for transformer classes, mirroring the paper's
// JastAdd extension that ignores access modifiers and final).
type Access uint8

const (
	Public Access = iota
	Private
	Protected
)

func (a Access) String() string {
	switch a {
	case Private:
		return "private"
	case Protected:
		return "protected"
	default:
		return "public"
	}
}

// Field is a declared field.
type Field struct {
	Name   string
	Desc   Desc
	Access Access
	Static bool
	Final  bool
}

// Key returns the identity UPT uses when matching fields across versions:
// a field "changed" if the name matches but the key differs. Access
// modifiers and final are part of the key — the paper lists changing "the
// types or access modifiers of existing members" among class signature
// changes, and class metadata must be replaced for them to take effect.
func (f Field) Key() string {
	return fmt.Sprintf("%s %s static=%t access=%d final=%t",
		f.Name, f.Desc, f.Static, f.Access, f.Final)
}

// Method is a declared method with symbolic bytecode.
type Method struct {
	Name   string
	Sig    Sig
	Access Access
	Static bool
	Native bool // body supplied by the VM (internal/vm natives)
	Final  bool
	Code   []bytecode.Ins
	// MaxLocals is the number of local slots, including arguments (and the
	// receiver for instance methods). The assembler computes it; the
	// verifier checks it.
	MaxLocals int
}

// ID returns the method's name+signature identity, the unit of vtable slots
// and of UPT method matching.
func (m *Method) ID() string { return m.Name + string(m.Sig) }

// IsInit reports whether the method is a constructor.
func (m *Method) IsInit() bool { return m.Name == "<init>" }

// IsClinit reports whether the method is the class initializer.
func (m *Method) IsClinit() bool { return m.Name == "<clinit>" }

// Class is one class definition — the unit of loading and of updating.
type Class struct {
	Name    string
	Super   string // "" only for the root class Object
	Fields  []Field
	Methods []*Method
}

// Method returns the declared method with the given name+sig, or nil.
func (c *Class) Method(name string, sig Sig) *Method {
	for _, m := range c.Methods {
		if m.Name == name && m.Sig == sig {
			return m
		}
	}
	return nil
}

// MethodsNamed returns all declared methods with the given name (the
// overload set), in declaration order.
func (c *Class) MethodsNamed(name string) []*Method {
	var out []*Method
	for _, m := range c.Methods {
		if m.Name == name {
			out = append(out, m)
		}
	}
	return out
}

// Field returns the declared field with the given name, or nil. Field names
// are unique within a class (static and instance share a namespace, as the
// assembler enforces).
func (c *Class) Field(name string) *Field {
	for i := range c.Fields {
		if c.Fields[i].Name == name {
			return &c.Fields[i]
		}
	}
	return nil
}

// InstanceFields returns the declared non-static fields in order.
func (c *Class) InstanceFields() []Field {
	var out []Field
	for _, f := range c.Fields {
		if !f.Static {
			out = append(out, f)
		}
	}
	return out
}

// StaticFields returns the declared static fields in order.
func (c *Class) StaticFields() []Field {
	var out []Field
	for _, f := range c.Fields {
		if f.Static {
			out = append(out, f)
		}
	}
	return out
}

// Validate performs structural checks that do not need the class hierarchy:
// descriptor syntax, duplicate members, branch targets in range.
func (c *Class) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("classfile: class with empty name")
	}
	seenF := make(map[string]bool)
	for _, f := range c.Fields {
		if !f.Desc.Valid() {
			return fmt.Errorf("classfile: %s.%s: bad descriptor %q", c.Name, f.Name, f.Desc)
		}
		if seenF[f.Name] {
			return fmt.Errorf("classfile: %s: duplicate field %s", c.Name, f.Name)
		}
		seenF[f.Name] = true
	}
	seenM := make(map[string]bool)
	for _, m := range c.Methods {
		if !m.Sig.Valid() {
			return fmt.Errorf("classfile: %s.%s: bad signature %q", c.Name, m.Name, m.Sig)
		}
		if seenM[m.ID()] {
			return fmt.Errorf("classfile: %s: duplicate method %s", c.Name, m.ID())
		}
		seenM[m.ID()] = true
		if m.Native {
			if len(m.Code) != 0 {
				return fmt.Errorf("classfile: %s.%s: native method with code", c.Name, m.Name)
			}
			continue
		}
		for pc, ins := range m.Code {
			if ins.Op.IsBranch() && (ins.A < 0 || ins.A >= int64(len(m.Code))) {
				return fmt.Errorf("classfile: %s.%s: branch at %d targets %d (code length %d)",
					c.Name, m.Name, pc, ins.A, len(m.Code))
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the class. UPT mutates clones when renaming
// old versions (User → v131_User) without disturbing the caller's copy.
func (c *Class) Clone() *Class {
	out := &Class{Name: c.Name, Super: c.Super}
	out.Fields = append([]Field(nil), c.Fields...)
	for _, m := range c.Methods {
		mm := *m
		mm.Code = append([]bytecode.Ins(nil), m.Code...)
		out.Methods = append(out.Methods, &mm)
	}
	return out
}

// String renders the class in assembler syntax, usable as a round-trip
// source for internal/asm. Methods and fields keep declaration order.
func (c *Class) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s", c.Name)
	if c.Super != "" {
		fmt.Fprintf(&b, " extends %s", c.Super)
	}
	b.WriteString(" {\n")
	for _, f := range c.Fields {
		b.WriteString("  ")
		if f.Access != Public {
			b.WriteString(f.Access.String() + " ")
		}
		if f.Static {
			b.WriteString("static ")
		}
		if f.Final {
			b.WriteString("final ")
		}
		fmt.Fprintf(&b, "field %s %s\n", f.Name, f.Desc)
	}
	for _, m := range c.Methods {
		b.WriteString("  ")
		if m.Access != Public {
			b.WriteString(m.Access.String() + " ")
		}
		if m.Static {
			b.WriteString("static ")
		}
		if m.Final {
			b.WriteString("final ")
		}
		if m.Native {
			fmt.Fprintf(&b, "native method %s%s\n", m.Name, m.Sig)
			continue
		}
		fmt.Fprintf(&b, "method %s%s {\n", m.Name, m.Sig)
		// Branch targets become labels so that the output re-assembles.
		targets := make(map[int]string)
		for _, ins := range m.Code {
			if ins.Op.IsBranch() {
				targets[int(ins.A)] = fmt.Sprintf("L%d", ins.A)
			}
		}
		for idx, ins := range m.Code {
			if label, ok := targets[idx]; ok {
				fmt.Fprintf(&b, "  %s:\n", label)
			}
			if ins.Op.IsBranch() {
				fmt.Fprintf(&b, "    %s %s\n", ins.Op, targets[int(ins.A)])
			} else {
				fmt.Fprintf(&b, "    %s\n", ins)
			}
		}
		if label, ok := targets[len(m.Code)]; ok {
			fmt.Fprintf(&b, "  %s:\n", label)
			b.WriteString("    nop\n")
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// Program is a set of classes forming one version of an application.
type Program struct {
	Classes map[string]*Class
}

// NewProgram builds a program from classes, rejecting duplicates.
func NewProgram(classes ...*Class) (*Program, error) {
	p := &Program{Classes: make(map[string]*Class, len(classes))}
	for _, c := range classes {
		if err := p.Add(c); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Add inserts a class, rejecting duplicates.
func (p *Program) Add(c *Class) error {
	if _, dup := p.Classes[c.Name]; dup {
		return fmt.Errorf("classfile: duplicate class %s", c.Name)
	}
	p.Classes[c.Name] = c
	return nil
}

// Names returns the class names in sorted order.
func (p *Program) Names() []string {
	out := make([]string, 0, len(p.Classes))
	for name := range p.Classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Sorted returns the classes ordered by name, for deterministic iteration.
func (p *Program) Sorted() []*Class {
	out := make([]*Class, 0, len(p.Classes))
	for _, name := range p.Names() {
		out = append(out, p.Classes[name])
	}
	return out
}
