package classfile

import (
	"fmt"

	"govolve/internal/bytecode"
)

// ClassBuilder assembles a Class programmatically. The microbenchmarks and
// UPT's default-transformer generator use it; applications are usually
// written in assembler text (internal/asm) instead.
type ClassBuilder struct {
	c   *Class
	err error
}

// NewClass starts a builder for the named class extending super.
func NewClass(name, super string) *ClassBuilder {
	return &ClassBuilder{c: &Class{Name: name, Super: super}}
}

// Field adds a public instance field.
func (b *ClassBuilder) Field(name string, d Desc) *ClassBuilder {
	return b.FieldSpec(Field{Name: name, Desc: d})
}

// StaticField adds a public static field.
func (b *ClassBuilder) StaticField(name string, d Desc) *ClassBuilder {
	return b.FieldSpec(Field{Name: name, Desc: d, Static: true})
}

// FieldSpec adds a fully specified field.
func (b *ClassBuilder) FieldSpec(f Field) *ClassBuilder {
	if b.err == nil && b.c.Field(f.Name) != nil {
		b.err = fmt.Errorf("classfile: duplicate field %s.%s", b.c.Name, f.Name)
	}
	b.c.Fields = append(b.c.Fields, f)
	return b
}

// Method starts a method body builder for a public instance method.
func (b *ClassBuilder) Method(name string, sig Sig) *MethodBuilder {
	return b.methodSpec(&Method{Name: name, Sig: sig})
}

// StaticMethod starts a body builder for a public static method.
func (b *ClassBuilder) StaticMethod(name string, sig Sig) *MethodBuilder {
	return b.methodSpec(&Method{Name: name, Sig: sig, Static: true})
}

// NativeMethod declares a native method whose body the VM supplies.
func (b *ClassBuilder) NativeMethod(name string, sig Sig, static bool) *ClassBuilder {
	b.c.Methods = append(b.c.Methods, &Method{
		Name: name, Sig: sig, Static: static, Native: true,
	})
	return b
}

func (b *ClassBuilder) methodSpec(m *Method) *MethodBuilder {
	if b.err == nil && b.c.Method(m.Name, m.Sig) != nil {
		b.err = fmt.Errorf("classfile: duplicate method %s.%s%s", b.c.Name, m.Name, m.Sig)
	}
	b.c.Methods = append(b.c.Methods, m)
	nargs := m.Sig.NumArgs()
	if nargs < 0 {
		nargs = 0
		if b.err == nil {
			b.err = fmt.Errorf("classfile: bad signature %s.%s%s", b.c.Name, m.Name, m.Sig)
		}
	}
	locals := nargs
	if !m.Static {
		locals++
	}
	return &MethodBuilder{class: b, m: m, maxLocal: locals - 1}
}

// Build finalizes the class, validating it.
func (b *ClassBuilder) Build() (*Class, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.c.Validate(); err != nil {
		return nil, err
	}
	return b.c, nil
}

// MustBuild finalizes the class and panics on error; for tests and
// statically-known-correct construction (bootstrap classes).
func (b *ClassBuilder) MustBuild() *Class {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// MethodBuilder emits instructions into a method body. Labels are small
// integers declared with Label and referenced by branch emitters; Done
// resolves them to instruction indexes.
type MethodBuilder struct {
	class    *ClassBuilder
	m        *Method
	labels   map[string]int // label -> instruction index
	fixups   map[int]string // instruction index -> label
	maxLocal int
}

func (mb *MethodBuilder) emit(ins bytecode.Ins) *MethodBuilder {
	mb.m.Code = append(mb.m.Code, ins)
	return mb
}

// Op emits a no-operand instruction.
func (mb *MethodBuilder) Op(op bytecode.Op) *MethodBuilder {
	return mb.emit(bytecode.Ins{Op: op})
}

// Const pushes an integer constant.
func (mb *MethodBuilder) Const(v int64) *MethodBuilder {
	return mb.emit(bytecode.Ins{Op: bytecode.CONST, A: v})
}

// Null pushes the null reference.
func (mb *MethodBuilder) Null() *MethodBuilder { return mb.Op(bytecode.NULL) }

// Ldc pushes an interned string.
func (mb *MethodBuilder) Ldc(s string) *MethodBuilder {
	return mb.emit(bytecode.Ins{Op: bytecode.LDC, Str: s})
}

// Load pushes local slot i.
func (mb *MethodBuilder) Load(i int) *MethodBuilder {
	if i > mb.maxLocal {
		mb.maxLocal = i
	}
	return mb.emit(bytecode.Ins{Op: bytecode.LOAD, A: int64(i)})
}

// Store pops into local slot i.
func (mb *MethodBuilder) Store(i int) *MethodBuilder {
	if i > mb.maxLocal {
		mb.maxLocal = i
	}
	return mb.emit(bytecode.Ins{Op: bytecode.STORE, A: int64(i)})
}

// New allocates an instance of the named class.
func (mb *MethodBuilder) New(class string) *MethodBuilder {
	return mb.emit(bytecode.Ins{Op: bytecode.NEW, Sym: class})
}

// GetField reads an instance field.
func (mb *MethodBuilder) GetField(class, field string, d Desc) *MethodBuilder {
	return mb.emit(bytecode.Ins{Op: bytecode.GETFIELD, Sym: class + "." + field, Desc: string(d)})
}

// PutField writes an instance field.
func (mb *MethodBuilder) PutField(class, field string, d Desc) *MethodBuilder {
	return mb.emit(bytecode.Ins{Op: bytecode.PUTFIELD, Sym: class + "." + field, Desc: string(d)})
}

// GetStatic reads a static field.
func (mb *MethodBuilder) GetStatic(class, field string, d Desc) *MethodBuilder {
	return mb.emit(bytecode.Ins{Op: bytecode.GETSTATIC, Sym: class + "." + field, Desc: string(d)})
}

// PutStatic writes a static field.
func (mb *MethodBuilder) PutStatic(class, field string, d Desc) *MethodBuilder {
	return mb.emit(bytecode.Ins{Op: bytecode.PUTSTATIC, Sym: class + "." + field, Desc: string(d)})
}

// NewArray allocates an array with the element descriptor.
func (mb *MethodBuilder) NewArray(elem Desc) *MethodBuilder {
	return mb.emit(bytecode.Ins{Op: bytecode.NEWARRAY, Desc: string(elem)})
}

// Invoke emits a call of the given dispatch kind.
func (mb *MethodBuilder) Invoke(op bytecode.Op, class, name string, sig Sig) *MethodBuilder {
	return mb.emit(bytecode.Ins{Op: op, Sym: class + "." + name, Desc: string(sig)})
}

// Virtual emits invokevirtual.
func (mb *MethodBuilder) Virtual(class, name string, sig Sig) *MethodBuilder {
	return mb.Invoke(bytecode.INVOKEVIRTUAL, class, name, sig)
}

// Static emits invokestatic.
func (mb *MethodBuilder) Static(class, name string, sig Sig) *MethodBuilder {
	return mb.Invoke(bytecode.INVOKESTATIC, class, name, sig)
}

// Special emits invokespecial (constructors, super calls).
func (mb *MethodBuilder) Special(class, name string, sig Sig) *MethodBuilder {
	return mb.Invoke(bytecode.INVOKESPECIAL, class, name, sig)
}

// Label declares a label at the next instruction index.
func (mb *MethodBuilder) Label(name string) *MethodBuilder {
	if mb.labels == nil {
		mb.labels = make(map[string]int)
	}
	mb.labels[name] = len(mb.m.Code)
	return mb
}

// Branch emits a branch to the named label (forward references allowed).
func (mb *MethodBuilder) Branch(op bytecode.Op, label string) *MethodBuilder {
	if mb.fixups == nil {
		mb.fixups = make(map[int]string)
	}
	mb.fixups[len(mb.m.Code)] = label
	return mb.emit(bytecode.Ins{Op: op})
}

// Ret emits a return.
func (mb *MethodBuilder) Ret() *MethodBuilder { return mb.Op(bytecode.RETURN) }

// Done resolves labels and returns to the class builder.
func (mb *MethodBuilder) Done() *ClassBuilder {
	for idx, label := range mb.fixups {
		target, ok := mb.labels[label]
		if !ok {
			if mb.class.err == nil {
				mb.class.err = fmt.Errorf("classfile: %s.%s: undefined label %q",
					mb.class.c.Name, mb.m.Name, label)
			}
			continue
		}
		mb.m.Code[idx].A = int64(target)
	}
	mb.m.MaxLocals = mb.maxLocal + 1
	return mb.class
}
