package classfile

import (
	"testing"
	"testing/quick"

	"govolve/internal/bytecode"
)

type bytecodeIns = bytecode.Ins

const (
	gotoOp = bytecode.GOTO
	popOp  = bytecode.POP
)

func TestDescKinds(t *testing.T) {
	cases := []struct {
		d    Desc
		kind Kind
		ref  bool
	}{
		{"I", KInt, false},
		{"Z", KBool, false},
		{"C", KChar, false},
		{"V", KVoid, false},
		{"LUser;", KRef, true},
		{"LObject;", KRef, true},
		{"[I", KArray, true},
		{"[[I", KArray, true},
		{"[LUser;", KArray, true},
		{"", KInvalid, false},
		{"L;", KInvalid, false},
		{"LUser", KInvalid, false},
		{"X", KInvalid, false},
		{"[V", KInvalid, false},
		{"II", KInvalid, false},
	}
	for _, c := range cases {
		if got := c.d.Kind(); got != c.kind {
			t.Errorf("Kind(%q) = %v, want %v", c.d, got, c.kind)
		}
		if got := c.d.IsRef(); got != c.ref {
			t.Errorf("IsRef(%q) = %v, want %v", c.d, got, c.ref)
		}
	}
}

func TestDescAccessors(t *testing.T) {
	if got := Desc("LUser;").ClassName(); got != "User" {
		t.Errorf("ClassName = %q", got)
	}
	if got := Desc("[LUser;").Elem(); got != "LUser;" {
		t.Errorf("Elem = %q", got)
	}
	if got := RefOf("User"); got != "LUser;" {
		t.Errorf("RefOf = %q", got)
	}
	if got := ArrayOf("I"); got != "[I" {
		t.Errorf("ArrayOf = %q", got)
	}
}

func TestParseSig(t *testing.T) {
	cases := []struct {
		sig  Sig
		args int
		ret  Desc
		ok   bool
	}{
		{"()V", 0, "V", true},
		{"(I)I", 1, "I", true},
		{"(ILString;)V", 2, "V", true},
		{"(LString;LString;)Z", 2, "Z", true},
		{"([I[LUser;)[C", 2, "[C", true},
		{"(II", 0, "", false},
		{"I)V", 0, "", false},
		{"()", 0, "", false},
		{"(X)V", 0, "", false},
		{"(LFoo)V", 0, "", false},
	}
	for _, c := range cases {
		args, ret, err := ParseSig(c.sig)
		if c.ok != (err == nil) {
			t.Errorf("ParseSig(%q) err = %v, want ok=%v", c.sig, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(args) != c.args || ret != c.ret {
			t.Errorf("ParseSig(%q) = %v, %q; want %d args, ret %q", c.sig, args, ret, c.args, c.ret)
		}
	}
}

// Property: any signature built from valid descriptors parses back to the
// same components.
func TestSigRoundTripProperty(t *testing.T) {
	descs := []Desc{"I", "Z", "C", "LUser;", "LString;", "[I", "[LUser;", "[[C"}
	f := func(picks []uint8, retPick uint8) bool {
		if len(picks) > 6 {
			picks = picks[:6]
		}
		sig := "("
		var want []Desc
		for _, p := range picks {
			d := descs[int(p)%len(descs)]
			want = append(want, d)
			sig += string(d)
		}
		ret := descs[int(retPick)%len(descs)]
		sig += ")" + string(ret)
		args, r, err := ParseSig(Sig(sig))
		if err != nil || r != ret || len(args) != len(want) {
			return false
		}
		for i := range want {
			if args[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassValidate(t *testing.T) {
	good := NewClass("A", "Object").
		Field("x", "I").
		Method("get()", "()I").Load(0).GetField("A", "x", "I").Ret().Done().
		MustBuild()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid class rejected: %v", err)
	}

	dupField := &Class{Name: "B", Fields: []Field{{Name: "x", Desc: "I"}, {Name: "x", Desc: "I"}}}
	if err := dupField.Validate(); err == nil {
		t.Error("duplicate field accepted")
	}
	badDesc := &Class{Name: "C", Fields: []Field{{Name: "x", Desc: "Q"}}}
	if err := badDesc.Validate(); err == nil {
		t.Error("bad descriptor accepted")
	}
	badBranch := &Class{Name: "D", Methods: []*Method{{
		Name: "m", Sig: "()V", Code: []bytecodeIns{{Op: gotoOp, A: 99}},
	}}}
	if err := badBranch.Validate(); err == nil {
		t.Error("out-of-range branch accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := NewClass("A", "Object").
		Field("x", "I").
		Method("m", "()V").Const(1).Op(popOp).Ret().Done().
		MustBuild()
	d := c.Clone()
	d.Fields[0].Name = "y"
	d.Methods[0].Code[0].A = 42
	if c.Fields[0].Name != "x" || c.Methods[0].Code[0].A != 1 {
		t.Fatal("Clone shares state with original")
	}
}
