package asm

import (
	"reflect"
	"testing"
)

// FuzzAsmRoundTrip checks the assembler/printer pair: any source the
// assembler accepts must print to source that (a) reassembles without
// error, (b) yields structurally identical classes, and (c) is a fixpoint
// of another print→assemble round. Inputs the assembler rejects must be
// rejected without panicking. Seed corpus entries run as ordinary tests
// under plain `go test`; `go test -fuzz=FuzzAsmRoundTrip` explores further.
func FuzzAsmRoundTrip(f *testing.F) {
	f.Add(`
class A {
  field x I
  static field y LObject;
  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
}
`)
	f.Add(`
class B extends A {
  private final field tag I
  protected field next LB;

  static method loop(I)I {
    const 0
    store 1
  top:
    load 1
    load 0
    if_icmpge done
    load 1
    const 1
    add
    store 1
    goto top
  done:
    load 1
    return
  }
}
`)
	f.Add(`
class S {
  native static method now()I
  static method greet()LString; {
    ldc "hi \"there\"\n"
    return
  }
  static method arr(I)I {
    load 0
    newarray I
    arraylen
    return
  }
}
`)
	f.Add("class A {\n  method m()V {\n  end:\n    goto end\n  }\n}\n")
	f.Add("not a class at all")
	f.Add("class X {")
	// Fused-superinstruction mnemonics are JIT-internal: OpByName excludes
	// the whole resolved range, so these must be rejected as unknown ops,
	// never assembled.
	f.Add("class F {\n  method m()V {\n    fconstarith\n    return\n  }\n}\n")
	f.Add("class F {\n  method m()V {\n    floadinvoke\n  }\n}\n")
	f.Add("class F {\n  method m()V {\n    fpad\n    fconstarith2\n  }\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		classes, err := Assemble("fuzz.jva", src)
		if err != nil {
			return // rejected without panicking: fine
		}
		printed := Print(classes)
		again, err := Assemble("roundtrip.jva", printed)
		if err != nil {
			t.Fatalf("printed source does not reassemble: %v\nsource:\n%s", err, printed)
		}
		if !reflect.DeepEqual(classes, again) {
			t.Fatalf("round trip changed classes\noriginal: %#v\nreassembled: %#v\nprinted:\n%s",
				classes, again, printed)
		}
		if printed2 := Print(again); printed2 != printed {
			t.Fatalf("print is not a fixpoint\nfirst:\n%s\nsecond:\n%s", printed, printed2)
		}
	})
}
