package asm

import (
	"fmt"
	"strconv"
	"strings"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
)

// Print renders classes back into assembler source. The output reassembles
// to structurally identical classes (Assemble∘Print is the identity on
// anything Assemble produced), and Print∘Assemble is a fixpoint after one
// round trip — the property the FuzzAsmRoundTrip target checks. Branch
// targets come out as synthetic labels L<index>.
func Print(classes []*classfile.Class) string {
	var b strings.Builder
	for i, c := range classes {
		if i > 0 {
			b.WriteByte('\n')
		}
		printClass(&b, c)
	}
	return b.String()
}

func printClass(b *strings.Builder, c *classfile.Class) {
	if c.Super != "" {
		fmt.Fprintf(b, "class %s extends %s {\n", c.Name, c.Super)
	} else {
		fmt.Fprintf(b, "class %s {\n", c.Name)
	}
	for _, f := range c.Fields {
		b.WriteString("  ")
		printModifiers(b, f.Access, f.Static, f.Final, false)
		fmt.Fprintf(b, "field %s %s\n", f.Name, f.Desc)
	}
	for _, m := range c.Methods {
		b.WriteString("\n  ")
		printModifiers(b, m.Access, m.Static, m.Final, m.Native)
		fmt.Fprintf(b, "method %s%s", m.Name, m.Sig)
		if m.Native {
			b.WriteByte('\n')
			continue
		}
		b.WriteString(" {\n")
		printBody(b, m.Code)
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
}

func printModifiers(b *strings.Builder, access classfile.Access, static, final, native bool) {
	switch access {
	case classfile.Private:
		b.WriteString("private ")
	case classfile.Protected:
		b.WriteString("protected ")
	}
	if static {
		b.WriteString("static ")
	}
	if final {
		b.WriteString("final ")
	}
	if native {
		b.WriteString("native ")
	}
}

func printBody(b *strings.Builder, code []bytecode.Ins) {
	// Collect branch targets so they come out as labels. A target one past
	// the last instruction is legal (a label just before '}').
	targets := make(map[int]bool)
	for _, ins := range code {
		if ins.Op.IsBranch() {
			targets[int(ins.A)] = true
		}
	}
	for pc := 0; pc <= len(code); pc++ {
		if targets[pc] {
			fmt.Fprintf(b, "  L%d:\n", pc)
		}
		if pc == len(code) {
			break
		}
		ins := code[pc]
		b.WriteString("    ")
		switch ins.Op {
		case bytecode.CONST, bytecode.LOAD, bytecode.STORE:
			fmt.Fprintf(b, "%s %d\n", ins.Op, ins.A)
		case bytecode.LDC, bytecode.TRAP:
			fmt.Fprintf(b, "%s %s\n", ins.Op, strconv.Quote(ins.Str))
		case bytecode.NEW, bytecode.INSTANCEOF, bytecode.CHECKCAST:
			fmt.Fprintf(b, "%s %s\n", ins.Op, ins.Sym)
		case bytecode.NEWARRAY:
			fmt.Fprintf(b, "%s %s\n", ins.Op, ins.Desc)
		case bytecode.GETFIELD, bytecode.PUTFIELD, bytecode.GETSTATIC, bytecode.PUTSTATIC:
			fmt.Fprintf(b, "%s %s %s\n", ins.Op, ins.Sym, ins.Desc)
		case bytecode.INVOKEVIRTUAL, bytecode.INVOKESTATIC, bytecode.INVOKESPECIAL:
			fmt.Fprintf(b, "%s %s%s\n", ins.Op, ins.Sym, ins.Desc)
		default:
			switch {
			case ins.Op.IsBranch():
				fmt.Fprintf(b, "%s L%d\n", ins.Op, ins.A)
			case ins.Op.IsResolved():
				// JIT-internal opcodes (resolved forms, fused
				// superinstructions) cannot appear in assembler source;
				// render them unmistakably non-reassemblable so a dump of
				// forged class-file code is never mistaken for source.
				fmt.Fprintf(b, "!jit %s A=%d\n", ins.Op, ins.A)
			default:
				fmt.Fprintf(b, "%s\n", ins.Op)
			}
		}
	}
}
