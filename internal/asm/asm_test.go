package asm

import (
	"strings"
	"testing"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
)

const sample = `
// A sample pair of classes.
class Point extends Object {
  private field x I
  private field y I
  static field origin LPoint;

  method <init>(II)V {
    load 0
    invokespecial Object.<init>()V
    load 0
    load 1
    putfield Point.x I
    load 0
    load 2
    putfield Point.y I
    return
  }

  method manhattan()I {
    load 0
    getfield Point.x I
    load 0
    getfield Point.y I
    add
    return
  }
}

class Util {
  static method clamp(I)I {
    load 0
    const 0
    if_icmpge ok
    const 0
    return
  ok:
    load 0
    return
  }
}
`

func TestAssembleSample(t *testing.T) {
	classes, err := Assemble("sample.jva", sample)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if len(classes) != 2 {
		t.Fatalf("got %d classes, want 2", len(classes))
	}
	point := classes[0]
	if point.Name != "Point" || point.Super != "Object" {
		t.Fatalf("bad class header: %+v", point)
	}
	if got := len(point.Fields); got != 3 {
		t.Fatalf("got %d fields, want 3", got)
	}
	if f := point.Field("x"); f == nil || f.Access != classfile.Private || f.Static {
		t.Fatalf("field x: %+v", f)
	}
	if f := point.Field("origin"); f == nil || !f.Static || f.Desc != "LPoint;" {
		t.Fatalf("field origin: %+v", f)
	}
	init := point.Method("<init>", "(II)V")
	if init == nil {
		t.Fatal("missing <init>(II)V")
	}
	if init.MaxLocals != 3 {
		t.Fatalf("init MaxLocals = %d, want 3", init.MaxLocals)
	}
	clamp := classes[1].Method("clamp", "(I)I")
	if clamp == nil {
		t.Fatal("missing clamp")
	}
	// The branch at instruction 2 must target the label "ok" (index 5).
	if clamp.Code[2].Op != bytecode.IF_ICMPGE || clamp.Code[2].A != 5 {
		t.Fatalf("branch resolution wrong: %v", clamp.Code[2])
	}
}

func TestDefaultSuperIsObject(t *testing.T) {
	classes, err := Assemble("t.jva", "class A {\n method m()V {\n return\n }\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if classes[0].Super != "Object" {
		t.Fatalf("Super = %q, want Object", classes[0].Super)
	}
}

func TestRoundTripThroughString(t *testing.T) {
	classes, err := Assemble("sample.jva", sample)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range classes {
		src := c.String()
		back, err := Assemble("roundtrip.jva", src)
		if err != nil {
			t.Fatalf("reassemble %s: %v\nsource:\n%s", c.Name, err, src)
		}
		b := back[0]
		if b.Name != c.Name || b.Super != c.Super || len(b.Fields) != len(c.Fields) ||
			len(b.Methods) != len(c.Methods) {
			t.Fatalf("round trip changed shape of %s", c.Name)
		}
		for i, m := range c.Methods {
			if !bytecode.CodeEqual(m.Code, b.Methods[i].Code) {
				t.Fatalf("round trip changed code of %s.%s:\nbefore:\n%s\nafter:\n%s",
					c.Name, m.Name, bytecode.Disassemble(m.Code), bytecode.Disassemble(b.Methods[i].Code))
			}
		}
	}
}

func TestStringOperands(t *testing.T) {
	src := `
class S {
  static method m()V {
    ldc "hello world // not a comment"
    invokestatic System.println(LString;)V
    trap "with \"escape\""
  }
}
`
	classes, err := Assemble("s.jva", src)
	if err != nil {
		t.Fatal(err)
	}
	code := classes[0].Methods[0].Code
	if code[0].Str != "hello world // not a comment" {
		t.Errorf("ldc operand = %q", code[0].Str)
	}
	if code[2].Str != `with "escape"` {
		t.Errorf("trap operand = %q", code[2].Str)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown op", "class A {\n method m()V {\n frob\n }\n}", "unknown opcode"},
		{"undefined label", "class A {\n method m()V {\n goto nowhere\n return\n }\n}", "undefined label"},
		{"duplicate label", "class A {\n method m()V {\n x:\n x:\n return\n }\n}", "duplicate label"},
		{"bad signature", "class A {\n method m(Q)V {\n return\n }\n}", "malformed"},
		{"missing brace", "class A {\n method m()V\n return\n }\n}", "expected '{'"},
		{"native with body", "class A {\n native method m()V {\n }\n}", "takes no body"},
		{"field arity", "class A {\n field x\n}", "field wants"},
		{"eof in class", "class A {\n field x I\n", "unexpected end"},
		{"bad int", "class A {\n method m()V {\n const zz\n return\n }\n}", "bad integer"},
		{"unterminated string", "class A {\n method m()V {\n ldc \"abc\n return\n }\n}", "unterminated"},
		{"empty file", "   \n\t\n", "no classes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("e.jva", c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestMaxLocalsComputation(t *testing.T) {
	src := `
class A {
  method m(I)I {
    load 1
    store 7
    load 7
    return
  }
  static method s(II)I {
    load 0
    load 1
    add
    return
  }
}
`
	classes, err := Assemble("l.jva", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := classes[0].Methods[0].MaxLocals; got != 8 {
		t.Errorf("instance MaxLocals = %d, want 8", got)
	}
	if got := classes[0].Methods[1].MaxLocals; got != 2 {
		t.Errorf("static MaxLocals = %d, want 2", got)
	}
}
