// Package asm assembles textual class definitions (.jva files) into
// classfile objects. The three example servers and their version streams
// are written in this syntax, as is the microbenchmark.
//
// Syntax (line-oriented; '//' starts a comment):
//
//	class User extends Object {
//	  private field username LString;
//	  static field count I
//
//	  method <init>(LString;)V {
//	    load 0
//	    invokespecial Object.<init>()V
//	    load 0
//	    load 1
//	    putfield User.username LString;
//	    return
//	  }
//
//	  native static method now()I
//	}
//
// Branch targets are labels: a line "loop:" declares a label, and
// "goto loop" / "ifeq done" reference it. Local slot 0 is the receiver for
// instance methods; argument slots follow; MaxLocals is computed from the
// highest load/store index.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
)

// Error is a source-position-annotated assembly error.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Assemble parses source text into a set of classes. The file name is used
// only for error messages.
func Assemble(file, src string) ([]*classfile.Class, error) {
	p := &parser{file: file, lines: strings.Split(src, "\n")}
	var classes []*classfile.Class
	for {
		p.skipBlank()
		if p.eof() {
			break
		}
		c, err := p.parseClass()
		if err != nil {
			return nil, err
		}
		classes = append(classes, c)
	}
	if len(classes) == 0 {
		return nil, &Error{File: file, Line: 1, Msg: "no classes in source"}
	}
	return classes, nil
}

// AssembleProgram assembles source text into a Program.
func AssembleProgram(file, src string) (*classfile.Program, error) {
	classes, err := Assemble(file, src)
	if err != nil {
		return nil, err
	}
	return classfile.NewProgram(classes...)
}

type parser struct {
	file  string
	lines []string
	pos   int // current line index
}

func (p *parser) eof() bool { return p.pos >= len(p.lines) }

func (p *parser) errf(format string, args ...any) error {
	return &Error{File: p.file, Line: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

// next returns the current line's fields (comment stripped, quoted strings
// kept as single fields) and advances. Blank lines are skipped.
func (p *parser) next() ([]string, error) {
	for !p.eof() {
		fields, err := splitFields(p.lines[p.pos])
		if err != nil {
			return nil, p.errf("%v", err)
		}
		if len(fields) == 0 {
			p.pos++
			continue
		}
		return fields, nil
	}
	return nil, nil
}

func (p *parser) advance() { p.pos++ }

func (p *parser) skipBlank() {
	for !p.eof() {
		fields, err := splitFields(p.lines[p.pos])
		if err != nil || len(fields) > 0 {
			return
		}
		p.pos++
	}
}

func (p *parser) parseClass() (*classfile.Class, error) {
	fields, err := p.next()
	if err != nil {
		return nil, err
	}
	if fields == nil || fields[0] != "class" {
		return nil, p.errf("expected 'class', got %q", strings.Join(fields, " "))
	}
	c := &classfile.Class{}
	rest := fields[1:]
	if len(rest) == 0 {
		return nil, p.errf("class declaration missing name")
	}
	c.Name = rest[0]
	rest = rest[1:]
	if len(rest) >= 2 && rest[0] == "extends" {
		c.Super = rest[1]
		rest = rest[2:]
	} else if c.Name != "Object" {
		c.Super = "Object"
	}
	if len(rest) != 1 || rest[0] != "{" {
		return nil, p.errf("class %s: expected '{' at end of declaration", c.Name)
	}
	p.advance()
	for {
		fields, err := p.next()
		if err != nil {
			return nil, err
		}
		if fields == nil {
			return nil, p.errf("class %s: unexpected end of file", c.Name)
		}
		if fields[0] == "}" {
			p.advance()
			break
		}
		if err := p.parseMember(c, fields); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, p.errf("%v", err)
	}
	return c, nil
}

func (p *parser) parseMember(c *classfile.Class, fields []string) error {
	access := classfile.Public
	static, final, native := false, false, false
	i := 0
modifiers:
	for ; i < len(fields); i++ {
		switch fields[i] {
		case "public":
			access = classfile.Public
		case "private":
			access = classfile.Private
		case "protected":
			access = classfile.Protected
		case "static":
			static = true
		case "final":
			final = true
		case "native":
			native = true
		default:
			break modifiers
		}
	}
	if i >= len(fields) {
		return p.errf("class %s: expected 'field' or 'method'", c.Name)
	}
	switch fields[i] {
	case "field":
		rest := fields[i+1:]
		if native {
			return p.errf("class %s: field cannot be native", c.Name)
		}
		if len(rest) != 2 {
			return p.errf("class %s: field wants 'field NAME DESC'", c.Name)
		}
		c.Fields = append(c.Fields, classfile.Field{
			Name: rest[0], Desc: classfile.Desc(rest[1]),
			Access: access, Static: static, Final: final,
		})
		p.advance()
		return nil
	case "method":
		rest := fields[i+1:]
		if len(rest) == 0 {
			return p.errf("class %s: method missing name+signature", c.Name)
		}
		name, sig, err := splitNameSig(rest[0])
		if err != nil {
			return p.errf("class %s: %v", c.Name, err)
		}
		m := &classfile.Method{
			Name: name, Sig: sig,
			Access: access, Static: static, Final: final, Native: native,
		}
		rest = rest[1:]
		if native {
			if len(rest) != 0 {
				return p.errf("class %s: native method %s takes no body", c.Name, name)
			}
			p.advance()
			c.Methods = append(c.Methods, m)
			return nil
		}
		if len(rest) != 1 || rest[0] != "{" {
			return p.errf("class %s: method %s: expected '{'", c.Name, name)
		}
		p.advance()
		if err := p.parseBody(c.Name, m); err != nil {
			return err
		}
		c.Methods = append(c.Methods, m)
		return nil
	default:
		return p.errf("class %s: expected 'field' or 'method', got %q", c.Name, fields[i])
	}
}

func (p *parser) parseBody(className string, m *classfile.Method) error {
	labels := make(map[string]int)
	type fixup struct {
		insIdx int
		label  string
		line   int
	}
	var fixups []fixup

	nargs := m.Sig.NumArgs()
	if nargs < 0 {
		return p.errf("method %s.%s: bad signature %q", className, m.Name, m.Sig)
	}
	maxLocal := nargs - 1
	if !m.Static {
		maxLocal = nargs
	}

	for {
		fields, err := p.next()
		if err != nil {
			return err
		}
		if fields == nil {
			return p.errf("method %s.%s: unexpected end of file", className, m.Name)
		}
		if fields[0] == "}" {
			p.advance()
			break
		}
		// Label line: "name:".
		if len(fields) == 1 && strings.HasSuffix(fields[0], ":") {
			label := strings.TrimSuffix(fields[0], ":")
			if _, dup := labels[label]; dup {
				return p.errf("method %s.%s: duplicate label %q", className, m.Name, label)
			}
			labels[label] = len(m.Code)
			p.advance()
			continue
		}
		op, ok := bytecode.OpByName[fields[0]]
		if !ok {
			return p.errf("method %s.%s: unknown opcode %q", className, m.Name, fields[0])
		}
		ins := bytecode.Ins{Op: op}
		args := fields[1:]
		switch op {
		case bytecode.CONST, bytecode.LOAD, bytecode.STORE:
			if len(args) != 1 {
				return p.errf("%s wants one integer operand", op)
			}
			v, perr := strconv.ParseInt(args[0], 0, 64)
			if perr != nil {
				return p.errf("%s: bad integer %q", op, args[0])
			}
			ins.A = v
			if op != bytecode.CONST && int(v) > maxLocal {
				maxLocal = int(v)
			}
		case bytecode.LDC, bytecode.TRAP:
			if len(args) != 1 {
				return p.errf("%s wants one string operand", op)
			}
			s, perr := strconv.Unquote(args[0])
			if perr != nil {
				return p.errf("%s: bad string %s", op, args[0])
			}
			ins.Str = s
		case bytecode.NEW, bytecode.INSTANCEOF, bytecode.CHECKCAST:
			if len(args) != 1 {
				return p.errf("%s wants a class name", op)
			}
			ins.Sym = args[0]
		case bytecode.NEWARRAY:
			if len(args) != 1 {
				return p.errf("newarray wants an element descriptor")
			}
			ins.Desc = args[0]
		case bytecode.GETFIELD, bytecode.PUTFIELD, bytecode.GETSTATIC, bytecode.PUTSTATIC:
			if len(args) != 2 {
				return p.errf("%s wants 'Class.field DESC'", op)
			}
			ins.Sym, ins.Desc = args[0], args[1]
		case bytecode.INVOKEVIRTUAL, bytecode.INVOKESTATIC, bytecode.INVOKESPECIAL:
			if len(args) != 1 {
				return p.errf("%s wants 'Class.method(SIG)RET'", op)
			}
			paren := strings.IndexByte(args[0], '(')
			if paren < 0 {
				return p.errf("%s: missing signature in %q", op, args[0])
			}
			ins.Sym, ins.Desc = args[0][:paren], args[0][paren:]
		default:
			if op.IsBranch() {
				if len(args) != 1 {
					return p.errf("%s wants a label", op)
				}
				fixups = append(fixups, fixup{len(m.Code), args[0], p.pos + 1})
			} else if len(args) != 0 {
				return p.errf("%s takes no operands", op)
			}
		}
		m.Code = append(m.Code, ins)
		p.advance()
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return &Error{File: p.file, Line: f.line,
				Msg: fmt.Sprintf("method %s.%s: undefined label %q", className, m.Name, f.label)}
		}
		m.Code[f.insIdx].A = int64(target)
	}
	m.MaxLocals = maxLocal + 1
	return nil
}

// splitNameSig splits "getName()LString;" into name and signature.
func splitNameSig(s string) (string, classfile.Sig, error) {
	paren := strings.IndexByte(s, '(')
	if paren <= 0 {
		return "", "", fmt.Errorf("malformed method name+signature %q", s)
	}
	name, sig := s[:paren], classfile.Sig(s[paren:])
	if !sig.Valid() {
		return "", "", fmt.Errorf("malformed signature %q", sig)
	}
	return name, sig, nil
}

// splitFields splits a line on whitespace, keeping double-quoted strings
// (with Go escape syntax) as single fields and stripping '//' comments.
func splitFields(line string) ([]string, error) {
	var fields []string
	i := 0
	for i < len(line) {
		switch {
		case line[i] == ' ' || line[i] == '\t' || line[i] == '\r':
			i++
		case line[i] == '/' && i+1 < len(line) && line[i+1] == '/':
			return fields, nil
		case line[i] == '"':
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated string literal")
			}
			fields = append(fields, line[i:j+1])
			i = j + 1
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '\r' {
				if line[j] == '/' && j+1 < len(line) && line[j+1] == '/' {
					break
				}
				j++
			}
			fields = append(fields, line[i:j])
			i = j
		}
	}
	return fields, nil
}
