package heap

import "govolve/internal/rt"

// ScanStart returns the first address of the current space — where a
// Cheney-style scan begins after Flip.
func (h *Heap) ScanStart() rt.Addr { return h.base(h.cur) }

// AllocPointer returns the bump pointer: one past the last allocated word
// in the current space. While a relocation drain is live the workers carve
// TLAB blocks off the same pointer under the heap mutex, so the read takes
// it too (whole-VM audits run mid-drain); disabled, it is a plain load.
func (h *Heap) AllocPointer() rt.Addr {
	if h.reloc != nil {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	return h.alloc
}
