package heap

import "govolve/internal/rt"

// ScanStart returns the first address of the current space — where a
// Cheney-style scan begins after Flip.
func (h *Heap) ScanStart() rt.Addr { return h.base(h.cur) }

// AllocPointer returns the bump pointer: one past the last allocated word
// in the current space.
func (h *Heap) AllocPointer() rt.Addr { return h.alloc }
