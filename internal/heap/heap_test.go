package heap

import (
	"testing"

	"govolve/internal/classfile"
	"govolve/internal/rt"
)

func testClass(t *testing.T, reg *rt.Registry, name string, nInt, nRef int) *rt.Class {
	t.Helper()
	b := classfile.NewClass(name, "")
	for i := 0; i < nInt; i++ {
		b.Field(name+"i"+string(rune('a'+i)), "I")
	}
	for i := 0; i < nRef; i++ {
		b.Field(name+"r"+string(rune('a'+i)), classfile.RefOf(name))
	}
	def, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cls, err := reg.Load(def)
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

func TestAllocObjectLayout(t *testing.T) {
	reg := rt.NewRegistry()
	cls := testClass(t, reg, "A", 2, 1)
	if cls.Size != rt.HeaderWords+3 {
		t.Fatalf("size = %d", cls.Size)
	}
	h := New(1024)
	a, ok := h.AllocObject(cls)
	if !ok {
		t.Fatal("alloc failed")
	}
	if a == 0 {
		t.Fatal("allocated at null address")
	}
	if h.ClassID(a) != cls.ID || h.IsArray(a) {
		t.Fatalf("bad header: classID=%d array=%v", h.ClassID(a), h.IsArray(a))
	}
	// Fields zeroed.
	for i := 0; i < 3; i++ {
		if h.FieldValue(a, rt.HeaderWords+i, false).Bits != 0 {
			t.Fatalf("field %d not zeroed", i)
		}
	}
	// Write/read round trip.
	h.SetFieldValue(a, rt.HeaderWords, rt.IntVal(-7))
	if got := h.FieldValue(a, rt.HeaderWords, false).Int(); got != -7 {
		t.Fatalf("field = %d", got)
	}
}

func TestAllocArray(t *testing.T) {
	h := New(1024)
	a, ok := h.AllocArray(true, 5)
	if !ok {
		t.Fatal("alloc failed")
	}
	if !h.IsArray(a) || !h.ArrayElemIsRef(a) || h.ArrayLen(a) != 5 {
		t.Fatalf("bad array header")
	}
	h.SetElem(a, 4, rt.RefVal(rt.Addr(a)))
	if got := h.Elem(a, 4); got.Ref() != a || !got.IsRef {
		t.Fatalf("elem = %v", got)
	}
	b, ok := h.AllocArray(false, 0)
	if !ok || h.ArrayLen(b) != 0 {
		t.Fatal("empty array")
	}
}

func TestAllocExhaustion(t *testing.T) {
	h := New(64)
	n := 0
	for {
		if _, ok := h.Alloc(8); !ok {
			break
		}
		n++
	}
	if n != 64/8 {
		t.Fatalf("allocated %d objects of 8 words in 64-word space", n)
	}
	if h.FreeWords() != 0 {
		t.Fatalf("free = %d", h.FreeWords())
	}
}

func TestForwarding(t *testing.T) {
	h := New(256)
	a, _ := h.Alloc(4)
	if _, fwd := h.Forwarded(a); fwd {
		t.Fatal("fresh object claims forwarded")
	}
	h.Flip()
	to, ok := h.Copy(a, 4)
	if !ok {
		t.Fatal("copy failed")
	}
	h.SetForward(a, to)
	got, fwd := h.Forwarded(a)
	if !fwd || got != to {
		t.Fatalf("forwarded = %v, %v", got, fwd)
	}
	if !h.InCurrentSpace(to) || h.InCurrentSpace(a) {
		t.Fatal("space predicates wrong after flip")
	}
}

func TestFlipAlternates(t *testing.T) {
	h := New(128)
	a, _ := h.Alloc(4)
	h.Flip()
	b, _ := h.Alloc(4)
	if a == b {
		t.Fatal("allocation did not move to other space")
	}
	h.Flip()
	c, _ := h.Alloc(4)
	if c != a {
		t.Fatalf("expected reuse of first space: a=%d c=%d", a, c)
	}
}

func TestSetClassID(t *testing.T) {
	reg := rt.NewRegistry()
	a1 := testClass(t, reg, "A", 1, 0)
	a2 := testClass(t, reg, "B", 2, 0)
	h := New(128)
	a, _ := h.AllocObject(a1)
	h.SetClassID(a, a2.ID)
	if h.ClassID(a) != a2.ID {
		t.Fatal("SetClassID did not stick")
	}
}
