package heap

import (
	"testing"

	"govolve/internal/rt"
)

// TestLazyBitRoundTrip pins the header-bit discipline: tagging an object
// untransformed must not disturb its class id, array-ness, or forwarding
// state, and clearing must restore the exact original header.
func TestLazyBitRoundTrip(t *testing.T) {
	h := New(1 << 12)
	cls := &rt.Class{ID: 0x7fff_0001, Size: rt.HeaderWords + 2, RefMap: []bool{false, false}}
	a, ok := h.AllocObject(cls)
	if !ok {
		t.Fatal("alloc failed")
	}
	orig := h.Word(a)
	if h.Untransformed(a) {
		t.Fatal("fresh object tagged untransformed")
	}
	h.MarkUntransformed(a)
	if !h.Untransformed(a) {
		t.Fatal("tag did not stick")
	}
	if got := h.ClassID(a); got != cls.ID {
		t.Fatalf("tag disturbed class id: got %d want %d", got, cls.ID)
	}
	if h.IsArray(a) {
		t.Fatal("tag flipped the array bit")
	}
	if _, fwd := h.Forwarded(a); fwd {
		t.Fatal("tag reads as a forwarding pointer")
	}
	h.ClearUntransformed(a)
	if h.Untransformed(a) {
		t.Fatal("clear did not stick")
	}
	if h.Word(a) != orig {
		t.Fatalf("header not restored: got %#x want %#x", h.Word(a), orig)
	}

	// Arrays share the header layout; the bit must coexist with both array
	// bits without corrupting length or element kind.
	arr, ok := h.AllocArray(true, 5)
	if !ok {
		t.Fatal("array alloc failed")
	}
	h.MarkUntransformed(arr)
	if !h.IsArray(arr) || !h.ArrayElemIsRef(arr) || h.ArrayLen(arr) != 5 {
		t.Fatal("tag corrupted array header")
	}
	h.ClearUntransformed(arr)
	if h.Untransformed(arr) {
		t.Fatal("array clear did not stick")
	}
}
