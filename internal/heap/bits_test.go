package heap

import "testing"

// TestHeaderBitLayout pins the disjointness claims documented in bits.go: no
// two protocols claim overlapping bits on a live header, forwarding's
// repurposing of the low bits is exactly the documented exception, and the
// claim sentinel is distinguishable from every publishable forwarding
// pointer.
func TestHeaderBitLayout(t *testing.T) {
	live := []struct {
		name string
		mask uint64
	}{
		{"classIDMask", classIDMask},
		{"untransformedBit", untransformedBit},
		{"arrayRefBit", arrayRefBit},
		{"arrayBit", arrayBit},
		{"forwardBit", forwardBit},
	}
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			if overlap := live[i].mask & live[j].mask; overlap != 0 {
				t.Errorf("%s and %s overlap on bits %#x", live[i].name, live[j].name, overlap)
			}
		}
	}

	// Forwarding repurposes bits 0..60 as the target address. The class id
	// and the lazy tag lie inside that range (the documented temporal
	// exception: forwarding only on from-space originals, tags only on
	// to-space shells); the flags that must survive alongside the forward
	// bit do not.
	if classIDMask&^forwardMask != 0 {
		t.Errorf("class id bits %#x escape forwardMask — forwarding addresses cannot be encoded", classIDMask&^forwardMask)
	}
	if untransformedBit&forwardMask == 0 {
		t.Errorf("lazy tag moved outside forwardMask — update the bits.go layout doc")
	}
	if forwardMask&(forwardBit|arrayBit|arrayRefBit) != 0 {
		t.Errorf("forwardMask %#x claims flag bits — a forwarding target would corrupt them", forwardMask)
	}

	// The CAS claim sentinel: carries the forward bit (so HeaderForwarded
	// sees a forwarded-family word) with an all-ones target no real
	// forwarding pointer can equal (the heap is word-indexed far below 2^61).
	if claimedWord != forwardBit|forwardMask {
		t.Errorf("claimedWord = %#x, want forwardBit|forwardMask = %#x", claimedWord, forwardBit|forwardMask)
	}
	if to, forwarded, claimed := HeaderForwarded(claimedWord); forwarded || !claimed || to != 0 {
		t.Errorf("HeaderForwarded(claimedWord) = (%d, %v, %v), want (0, false, true)", to, forwarded, claimed)
	}

	// A live header carrying every non-forwarding protocol at once still
	// decodes each protocol independently.
	const classID = 42
	w := uint64(classID) | untransformedBit
	if HeaderClassID(w) != classID {
		t.Errorf("lazy tag corrupts class id: got %d", HeaderClassID(w))
	}
	if HeaderIsArray(w) {
		t.Errorf("lazy tag reads as array bit")
	}
	if _, forwarded, claimed := HeaderForwarded(w); forwarded || claimed {
		t.Errorf("tagged live header reads as forwarded/claimed")
	}
	aw := arrayBit | arrayRefBit
	if !HeaderIsArray(aw) || HeaderClassID(aw) != 0 {
		t.Errorf("array flags corrupt class id decode")
	}
}
