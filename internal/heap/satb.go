package heap

import (
	"sync/atomic"

	"govolve/internal/rt"
)

// Snapshot-at-the-beginning (SATB) write-barrier support for the concurrent
// DSU mark phase (internal/gc's Marker). While a mark is in flight the
// mutator keeps running; the collector must still discover every object that
// was reachable when the snapshot was taken. The classic SATB argument makes
// that cheap:
//
//   - Roots are captured by value when the mark starts (the mutator is
//     parked between scheduling slices at that instant), so root mutations
//     afterwards need no barrier.
//   - Heap reference stores run through a *deletion* barrier: before a ref
//     slot is overwritten, the old value is appended to a buffer the pause
//     drains. An object reachable at the snapshot can only be hidden from
//     the trace by deleting the edge the trace would have used — and every
//     deletion is logged.
//   - Objects allocated after the snapshot are implicitly live
//     (allocate-black). No allocation log is needed: the current space is a
//     bump region, so everything between the snapshot watermark and the
//     allocation pointer is linearly walkable at the pause.
//
// Threading discipline (this is what keeps the race detector quiet):
//
//   - The VM is a green-thread machine: exactly one OS goroutine mutates the
//     heap. Arm/Disarm and every store below run on that goroutine; the SATB
//     buffer is therefore single-writer and needs no lock.
//   - While armed, ref-slot stores go through atomic.StoreUint64 and mark
//     workers read ref slots through RefSlotLoad (atomic). Headers and array
//     lengths are written before the workers are spawned (happens-before via
//     goroutine creation), so plain reads of those stay legal.
//   - Disarmed (satb == nil), every store compiles back to the plain word
//     write — the fast path costs one pointer nil-check, the same discipline
//     as the disabled flight recorder.
type satbState struct {
	// lo..watermark bounds the snapshot: current-space base and allocation
	// pointer at arm time. Only overwritten values inside the snapshot
	// region are logged; post-snapshot objects are allocate-black and
	// null/foreign words are never interesting.
	lo        rt.Addr
	watermark rt.Addr
	buf       []rt.Addr
}

// ArmSATB installs the deletion barrier and returns the snapshot watermark
// (the allocation pointer at arm time). The caller supplies the log buffer
// (sliced to zero length here) so repeated updates can pool it. Mutator
// goroutine only.
func (h *Heap) ArmSATB(buf []rt.Addr) rt.Addr {
	h.satb = &satbState{lo: h.base(h.cur), watermark: h.alloc, buf: buf[:0]}
	return h.alloc
}

// DisarmSATB removes the barrier and returns the deletion log (possibly
// nil). Mutator goroutine only — mark workers must have been joined, or must
// not yet be reading the slots the now-plain stores touch.
func (h *Heap) DisarmSATB() []rt.Addr {
	s := h.satb
	if s == nil {
		return nil
	}
	h.satb = nil
	return s.buf
}

// SATBArmed reports whether the deletion barrier is installed.
func (h *Heap) SATBArmed() bool { return h.satb != nil }

// satbStore is the armed ref-slot store: log the overwritten value if it
// lies inside the snapshot region, then store atomically (mark workers read
// the slot concurrently).
func (h *Heap) satbStore(s *satbState, idx rt.Addr, bits uint64) {
	old := h.words[idx] // single-writer: plain read of our own last store
	if o := rt.Addr(old); o != 0 && o >= s.lo && o < s.watermark {
		s.buf = append(s.buf, o)
	}
	atomic.StoreUint64(&h.words[idx], bits)
}

// RefSlotLoad atomically reads one word. Mark workers use it for every ref
// slot of a snapshot-region object, because the mutator may be storing to
// the same slot concurrently (the armed store above is atomic for exactly
// this pairing).
func (h *Heap) RefSlotLoad(a rt.Addr) uint64 {
	return atomic.LoadUint64(&h.words[a])
}
