package heap

import (
	"sync/atomic"

	"govolve/internal/rt"
)

// Lazy per-object transformation support (the on-first-use hybrid the paper
// contrasts with eager pause-time transformation in §5). When the DSU engine
// runs in LazyTransform mode, the pause still copies every updated-class
// instance into its new-layout shell, but instead of walking the pair log
// through transformers it tags each shell "untransformed" with a header bit.
// The interpreter's receiver/field/array fast paths test the bit behind the
// engine-installed touch hook and transform an object the first time it is
// actually dereferenced.
//
// Bit choice: untransformedBit is bit 60 (see bits.go for the full header
// map). The bit lies inside forwardMask, but a tagged object is never
// simultaneously forwarded: the tag only ever lands on to-space shells, and
// the engine force-completes the drain before any collection runs
// (vm.CollectGarbage consults the drain hook), so no tagged header survives
// into a flip. ClassID, IsArray and dispatch are unaffected by the bit,
// which is exactly what makes the scheme sound: a tagged shell already
// carries the NEW class id — method dispatch, instanceof and checkcast are
// correct before transformation; only field contents are stale until first
// touch.
//
// Arm/disarm discipline mirrors satb.go: the barrier's armed state is the
// VM-level touch hook (vm.DSULazyTouch), a single pointer nil-check on the
// disabled path. The heap only owns the per-object tag bit. All three
// accessors run on the mutator goroutine only, like every other header
// access — except while a concurrent relocation drain is armed, when the
// drain's workers read to-space headers for sizing: the mutator's tag
// read-modify-writes then go through atomic load+store (sound because the
// mutator is the only header WRITER in to-space; workers only read).

// MarkUntransformed tags an object as copied-but-not-yet-transformed.
func (h *Heap) MarkUntransformed(a rt.Addr) {
	if h.reloc != nil {
		w := atomic.LoadUint64(&h.words[a])
		atomic.StoreUint64(&h.words[a], w|untransformedBit)
		return
	}
	h.words[a] |= untransformedBit
}

// ClearUntransformed removes the tag (transform started or force-completed).
func (h *Heap) ClearUntransformed(a rt.Addr) {
	if h.reloc != nil {
		w := atomic.LoadUint64(&h.words[a])
		atomic.StoreUint64(&h.words[a], w&^untransformedBit)
		return
	}
	h.words[a] &^= untransformedBit
}

// Untransformed reports whether the object still awaits its transformer.
func (h *Heap) Untransformed(a rt.Addr) bool {
	if h.reloc != nil {
		return atomic.LoadUint64(&h.words[a])&untransformedBit != 0
	}
	return h.words[a]&untransformedBit != 0
}
