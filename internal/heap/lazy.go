package heap

import "govolve/internal/rt"

// Lazy per-object transformation support (the on-first-use hybrid the paper
// contrasts with eager pause-time transformation in §5). When the DSU engine
// runs in LazyTransform mode, the pause still copies every updated-class
// instance into its new-layout shell, but instead of walking the pair log
// through transformers it tags each shell "untransformed" with a header bit.
// The interpreter's receiver/field/array fast paths test the bit behind the
// engine-installed touch hook and transform an object the first time it is
// actually dereferenced.
//
// Bit choice: header word 0 uses bit 63 for forwarding, 62 for arrays, 61
// for ref-array element kind, and the low 32 bits for the class id — bit 60
// is free. The bit lies inside forwardMask, but a tagged object is never
// simultaneously forwarded: the engine force-completes the drain before any
// collection runs (vm.CollectGarbage consults the drain hook), so no tagged
// header survives into a flip. ClassID, IsArray and dispatch are unaffected
// by the bit, which is exactly what makes the scheme sound: a tagged shell
// already carries the NEW class id — method dispatch, instanceof and
// checkcast are correct before transformation; only field contents are
// stale until first touch.
//
// Arm/disarm discipline mirrors satb.go: the barrier's armed state is the
// VM-level touch hook (vm.DSULazyTouch), a single pointer nil-check on the
// disabled path. The heap only owns the per-object tag bit. All three
// accessors run on the mutator goroutine only, like every other header
// access.
const untransformedBit = uint64(1) << 60

// MarkUntransformed tags an object as copied-but-not-yet-transformed.
func (h *Heap) MarkUntransformed(a rt.Addr) { h.words[a] |= untransformedBit }

// ClearUntransformed removes the tag (transform started or force-completed).
func (h *Heap) ClearUntransformed(a rt.Addr) { h.words[a] &^= untransformedBit }

// Untransformed reports whether the object still awaits its transformer.
func (h *Heap) Untransformed(a rt.Addr) bool { return h.words[a]&untransformedBit != 0 }
