// Package heap implements the VM's word-addressed semi-space heap. Objects
// are contiguous word sequences with a two-word header; addresses are word
// indexes; address 0 is null. The collector (internal/gc) copies objects
// between the two semispaces and installs forwarding pointers in the header,
// exactly the structure JVOLVE's modified semi-space collector relies on.
package heap

import (
	"fmt"
	"sync"

	"govolve/internal/rt"
)

// Header word 0 layout:
//
//	bits 0..31   class ID (0 for arrays)
//	bit 61       array-of-references flag
//	bit 62       array flag
//	bit 63       forwarded flag; bits 0..60 then hold the forwarding address
const (
	forwardBit  = uint64(1) << 63
	arrayBit    = uint64(1) << 62
	arrayRefBit = uint64(1) << 61
	classIDMask = uint64(1)<<32 - 1
	forwardMask = uint64(1)<<61 - 1
)

// Heap is a semi-space heap, optionally with a scratch region appended
// after the two semispaces. The scratch region implements the paper's §3.5
// alternative for DSU old copies: "copy the old versions to a special block
// of memory and reclaim it when the collection completes" — old copies live
// there only for the duration of the transformer phase, so they never
// consume to-space. Mutator access is not synchronized; the VM scheduler
// serializes it (the VM is a green-thread machine). During a stop-the-world
// parallel collection, workers allocate through TLABs (carved under mu) and
// synchronize header-word forwarding with TryForward/PublishForward — those
// entry points, and only those, are safe for concurrent use.
type Heap struct {
	words []uint64
	semi  rt.Addr // words per semispace
	cur   int     // current allocation space, 0 or 1
	alloc rt.Addr // next free word (absolute)

	// mu guards the bump pointers (alloc, scratchAlloc) during parallel
	// collections: TLAB refills and retires take it. The serial mutator
	// and serial collector never do.
	mu sync.Mutex

	scratchSize  rt.Addr
	scratchAlloc rt.Addr // next free scratch word (absolute), 0 when absent

	// Allocs and AllocWords count allocations since construction, for the
	// benchmark harness.
	Allocs     int64
	AllocWords int64
}

// New creates a heap with the given number of words per semispace.
// Word 0 is reserved so that address 0 means null.
func New(semiWords int) *Heap {
	return NewWithScratch(semiWords, 0)
}

// NewWithScratch additionally reserves a scratch region for DSU old copies.
func NewWithScratch(semiWords, scratchWords int) *Heap {
	if semiWords < 16 {
		semiWords = 16
	}
	h := &Heap{
		words:       make([]uint64, 1+2*semiWords+scratchWords),
		semi:        rt.Addr(semiWords),
		scratchSize: rt.Addr(scratchWords),
	}
	h.alloc = h.base(0)
	h.ResetScratch()
	return h
}

// scratchBase returns the first scratch address.
func (h *Heap) scratchBase() rt.Addr { return 1 + 2*h.semi }

// HasScratch reports whether a scratch region exists.
func (h *Heap) HasScratch() bool { return h.scratchSize > 0 }

// ScratchCopy copies an object into the scratch region, returning its new
// address, or (0, false) if no scratch exists or it is full.
func (h *Heap) ScratchCopy(src rt.Addr, size int) (rt.Addr, bool) {
	if h.scratchSize == 0 || h.scratchAlloc+rt.Addr(size) > h.scratchBase()+h.scratchSize {
		return 0, false
	}
	a := h.scratchAlloc
	h.scratchAlloc += rt.Addr(size)
	copy(h.words[a:a+rt.Addr(size)], h.words[src:src+rt.Addr(size)])
	return a, true
}

// ResetScratch discards the scratch region's contents (the DSU engine calls
// it after the transformer phase — the paper's "reclaim it when the
// collection completes").
func (h *Heap) ResetScratch() { h.scratchAlloc = h.scratchBase() }

// InScratch reports whether an address lies in the scratch region.
func (h *Heap) InScratch(a rt.Addr) bool {
	return h.scratchSize > 0 && a >= h.scratchBase() && a < h.scratchBase()+h.scratchSize
}

// ScratchUsed returns the words currently allocated in the scratch region.
func (h *Heap) ScratchUsed() int { return int(h.scratchAlloc - h.scratchBase()) }

// base returns the first address of semispace s.
func (h *Heap) base(s int) rt.Addr {
	if s == 0 {
		return 1
	}
	return 1 + h.semi
}

// limit returns one past the last address of semispace s.
func (h *Heap) limit(s int) rt.Addr { return h.base(s) + h.semi }

// SemiWords returns the size of one semispace in words.
func (h *Heap) SemiWords() int { return int(h.semi) }

// UsedWords returns the words allocated in the current space.
func (h *Heap) UsedWords() int { return int(h.alloc - h.base(h.cur)) }

// FreeWords returns the words remaining in the current space.
func (h *Heap) FreeWords() int { return int(h.limit(h.cur) - h.alloc) }

// Alloc reserves size words, zeroed, returning the base address, or
// (0, false) if the current space is full — the caller (VM) then triggers a
// collection and retries.
func (h *Heap) Alloc(size int) (rt.Addr, bool) {
	if size < rt.HeaderWords {
		size = rt.HeaderWords
	}
	if h.alloc+rt.Addr(size) > h.limit(h.cur) {
		return 0, false
	}
	a := h.alloc
	h.alloc += rt.Addr(size)
	// clear compiles to a memclr, unlike the equivalent index loop. Copy
	// paths (Copy, CopyWords, TLAB old-copy allocation) skip zeroing
	// entirely — they overwrite every word immediately.
	clear(h.words[a:h.alloc])
	h.Allocs++
	h.AllocWords += int64(size)
	return a, true
}

// AllocObject allocates a zeroed instance of the class and writes its header.
func (h *Heap) AllocObject(c *rt.Class) (rt.Addr, bool) {
	a, ok := h.Alloc(c.Size)
	if !ok {
		return 0, false
	}
	h.words[a] = uint64(c.ID)
	return a, true
}

// AllocArray allocates a zeroed array of the given length.
func (h *Heap) AllocArray(elemIsRef bool, length int) (rt.Addr, bool) {
	a, ok := h.Alloc(rt.HeaderWords + length)
	if !ok {
		return 0, false
	}
	hdr := arrayBit
	if elemIsRef {
		hdr |= arrayRefBit
	}
	h.words[a] = hdr
	h.words[a+1] = uint64(length)
	return a, true
}

// Word reads a raw word.
func (h *Heap) Word(a rt.Addr) uint64 { return h.words[a] }

// SetWord writes a raw word.
func (h *Heap) SetWord(a rt.Addr, v uint64) { h.words[a] = v }

// ClassID returns the object's class ID (0 for arrays).
func (h *Heap) ClassID(a rt.Addr) int {
	return int(h.words[a] & classIDMask)
}

// SetClassID rewrites the object's class ID — the DSU collector points
// transformed objects at their new class ("initializes the new object to
// point to the TIB of the new type").
func (h *Heap) SetClassID(a rt.Addr, id int) {
	h.words[a] = (h.words[a] &^ classIDMask) | uint64(id)
}

// IsArray reports whether the object is an array.
func (h *Heap) IsArray(a rt.Addr) bool { return h.words[a]&arrayBit != 0 }

// ArrayElemIsRef reports whether the array's elements are references.
func (h *Heap) ArrayElemIsRef(a rt.Addr) bool { return h.words[a]&arrayRefBit != 0 }

// ArrayLen returns the array length.
func (h *Heap) ArrayLen(a rt.Addr) int { return int(h.words[a+1]) }

// ObjectSize returns the object's total size in words, using the class
// registry for scalar objects.
func (h *Heap) ObjectSize(a rt.Addr, classByID func(int) *rt.Class) int {
	if h.IsArray(a) {
		return rt.HeaderWords + h.ArrayLen(a)
	}
	c := classByID(h.ClassID(a))
	if c == nil {
		panic(fmt.Sprintf("heap: object @%d has unknown class id %d", a, h.ClassID(a)))
	}
	return c.Size
}

// Forwarded returns the forwarding target if the object has been moved by
// the current collection.
func (h *Heap) Forwarded(a rt.Addr) (rt.Addr, bool) {
	w := h.words[a]
	if w&forwardBit == 0 {
		return 0, false
	}
	return rt.Addr(w & forwardMask), true
}

// SetForward installs a forwarding pointer in the header, destroying it.
func (h *Heap) SetForward(a, to rt.Addr) {
	h.words[a] = forwardBit | uint64(to)
}

// InCurrentSpace reports whether the address lies in the current
// (allocation) space. During a collection the current space is to-space.
func (h *Heap) InCurrentSpace(a rt.Addr) bool {
	return a >= h.base(h.cur) && a < h.limit(h.cur)
}

// Flip switches allocation to the other semispace. The collector calls it
// at the start of a collection; everything subsequently allocated (the
// copies) lands in to-space, and the old space becomes garbage wholesale.
func (h *Heap) Flip() {
	h.cur ^= 1
	h.alloc = h.base(h.cur)
}

// Copy block-copies size words from src to a fresh allocation, returning
// the new address. Used by the collector's scan/copy loop ("the GC uses
// memcopy, which is highly optimized" — ours is a Go copy).
func (h *Heap) Copy(src rt.Addr, size int) (rt.Addr, bool) {
	if h.alloc+rt.Addr(size) > h.limit(h.cur) {
		return 0, false
	}
	a := h.alloc
	h.alloc += rt.Addr(size)
	copy(h.words[a:a+rt.Addr(size)], h.words[src:src+rt.Addr(size)])
	h.Allocs++
	h.AllocWords += int64(size)
	return a, true
}

// FieldValue reads a tagged field value given the offset and ref-ness that
// compiled code baked in.
func (h *Heap) FieldValue(a rt.Addr, offset int, isRef bool) rt.Value {
	return rt.Value{Bits: h.words[a+rt.Addr(offset)], IsRef: isRef}
}

// SetFieldValue writes a field word.
func (h *Heap) SetFieldValue(a rt.Addr, offset int, v rt.Value) {
	h.words[a+rt.Addr(offset)] = v.Bits
}

// Elem reads array element i.
func (h *Heap) Elem(a rt.Addr, i int) rt.Value {
	return rt.Value{Bits: h.words[a+rt.HeaderWords+rt.Addr(i)], IsRef: h.ArrayElemIsRef(a)}
}

// SetElem writes array element i.
func (h *Heap) SetElem(a rt.Addr, i int, v rt.Value) {
	h.words[a+rt.HeaderWords+rt.Addr(i)] = v.Bits
}
