// Package heap implements the VM's word-addressed semi-space heap. Objects
// are contiguous word sequences with a two-word header; addresses are word
// indexes; address 0 is null. The collector (internal/gc) copies objects
// between the two semispaces and installs forwarding pointers in the header,
// exactly the structure JVOLVE's modified semi-space collector relies on.
package heap

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"govolve/internal/rt"
)

// The header word 0 bit layout lives in bits.go — the one documented map of
// every protocol (class id, array flags, lazy tag, forwarding/claim) that
// shares the word.

// Heap is a semi-space heap, optionally with a scratch region appended
// after the two semispaces. The scratch region implements the paper's §3.5
// alternative for DSU old copies: "copy the old versions to a special block
// of memory and reclaim it when the collection completes" — old copies live
// there only for the duration of the transformer phase, so they never
// consume to-space. Mutator access is not synchronized; the VM scheduler
// serializes it (the VM is a green-thread machine). During a stop-the-world
// parallel collection, workers allocate through TLABs (carved under mu) and
// synchronize header-word forwarding with TryForward/PublishForward — those
// entry points, and only those, are safe for concurrent use.
type Heap struct {
	words []uint64
	semi  rt.Addr // words per semispace
	cur   int     // current allocation space, 0 or 1
	alloc rt.Addr // next free word (absolute)

	// mu guards the bump pointers (alloc, scratchAlloc) during parallel
	// collections: TLAB refills and retires take it. The serial mutator
	// and serial collector never do.
	mu sync.Mutex

	scratchSize  rt.Addr
	scratchAlloc rt.Addr // next free scratch word (absolute), 0 when absent

	// satb, when non-nil, is the armed snapshot-at-the-beginning deletion
	// barrier for an in-flight concurrent DSU mark (see satb.go). Disarmed
	// it costs the store paths one nil check — the same discipline as the
	// disabled flight recorder.
	satb *satbState

	// reloc, when non-nil, is the armed self-healing load barrier for an
	// in-flight concurrent relocation drain (see reloc.go): loads of
	// from-space references evacuate-or-adopt and heal the slot; stores go
	// atomic because drain workers CAS-heal the same slots. Disarmed it
	// costs the access paths one nil check.
	reloc *relocState

	// holes records the dead gaps parallel collections leave in each
	// semispace (TLAB block tails abandoned at refill/retire). A bump
	// region is self-parsing only while it is gap-free; the concurrent-mark
	// sweep walks from-space linearly and skips these. Indexed by
	// semispace; Flip clears the list of the space it starts refilling.
	holes [2][]Hole

	// Allocs and AllocWords count allocations since construction, for the
	// benchmark harness.
	Allocs     int64
	AllocWords int64
}

// Hole is one unparseable gap inside a semispace: a TLAB block tail
// abandoned during a parallel collection. The words are dead (never
// referenced) but contain stale bits, so linear heap walks must skip them.
type Hole struct {
	Addr rt.Addr
	Size int
}

// recordHoleLocked notes a dead gap in the current space. Callers hold h.mu.
func (h *Heap) recordHoleLocked(a rt.Addr, size int) {
	if size <= 0 {
		return
	}
	h.holes[h.cur] = append(h.holes[h.cur], Hole{Addr: a, Size: size})
}

// RecordHole notes a dead gap in the current space (TLAB refill path, which
// does not hold the heap mutex).
func (h *Heap) RecordHole(a rt.Addr, size int) {
	h.mu.Lock()
	h.recordHoleLocked(a, size)
	h.mu.Unlock()
}

// Holes returns the current space's dead gaps sorted by address — the
// skip-list a linear from-space walk needs. Called only inside a pause.
func (h *Heap) Holes() []Hole {
	hs := h.holes[h.cur]
	sort.Slice(hs, func(i, j int) bool { return hs[i].Addr < hs[j].Addr })
	return hs
}

// New creates a heap with the given number of words per semispace.
// Word 0 is reserved so that address 0 means null.
func New(semiWords int) *Heap {
	return NewWithScratch(semiWords, 0)
}

// NewWithScratch additionally reserves a scratch region for DSU old copies.
func NewWithScratch(semiWords, scratchWords int) *Heap {
	if semiWords < 16 {
		semiWords = 16
	}
	h := &Heap{
		words:       make([]uint64, 1+2*semiWords+scratchWords),
		semi:        rt.Addr(semiWords),
		scratchSize: rt.Addr(scratchWords),
	}
	h.alloc = h.base(0)
	h.ResetScratch()
	return h
}

// scratchBase returns the first scratch address.
func (h *Heap) scratchBase() rt.Addr { return 1 + 2*h.semi }

// HasScratch reports whether a scratch region exists.
func (h *Heap) HasScratch() bool { return h.scratchSize > 0 }

// ScratchCopy copies an object into the scratch region, returning its new
// address, or (0, false) if no scratch exists or it is full.
func (h *Heap) ScratchCopy(src rt.Addr, size int) (rt.Addr, bool) {
	if h.scratchSize == 0 || h.scratchAlloc+rt.Addr(size) > h.scratchBase()+h.scratchSize {
		return 0, false
	}
	a := h.scratchAlloc
	h.scratchAlloc += rt.Addr(size)
	copy(h.words[a:a+rt.Addr(size)], h.words[src:src+rt.Addr(size)])
	return a, true
}

// ResetScratch discards the scratch region's contents (the DSU engine calls
// it after the transformer phase — the paper's "reclaim it when the
// collection completes").
func (h *Heap) ResetScratch() { h.scratchAlloc = h.scratchBase() }

// InScratch reports whether an address lies in the scratch region.
func (h *Heap) InScratch(a rt.Addr) bool {
	return h.scratchSize > 0 && a >= h.scratchBase() && a < h.scratchBase()+h.scratchSize
}

// ScratchUsed returns the words currently allocated in the scratch region.
func (h *Heap) ScratchUsed() int { return int(h.scratchAlloc - h.scratchBase()) }

// base returns the first address of semispace s.
func (h *Heap) base(s int) rt.Addr {
	if s == 0 {
		return 1
	}
	return 1 + h.semi
}

// limit returns one past the last address of semispace s.
func (h *Heap) limit(s int) rt.Addr { return h.base(s) + h.semi }

// SemiWords returns the size of one semispace in words.
func (h *Heap) SemiWords() int { return int(h.semi) }

// UsedWords returns the words allocated in the current space. Like
// AllocPointer it takes the heap mutex while a relocation drain is live
// (workers bump the same pointer); disabled, it is a plain load.
func (h *Heap) UsedWords() int {
	if h.reloc != nil {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	return int(h.alloc - h.base(h.cur))
}

// FreeWords returns the words remaining in the current space; see UsedWords
// for the locking discipline.
func (h *Heap) FreeWords() int {
	if h.reloc != nil {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	return int(h.limit(h.cur) - h.alloc)
}

// Alloc reserves size words, zeroed, returning the base address, or
// (0, false) if the current space is full — the caller (VM) then triggers a
// collection and retries.
func (h *Heap) Alloc(size int) (rt.Addr, bool) {
	if size < rt.HeaderWords {
		size = rt.HeaderWords
	}
	if h.reloc != nil {
		return h.allocLocked(size)
	}
	if h.alloc+rt.Addr(size) > h.limit(h.cur) {
		return 0, false
	}
	a := h.alloc
	h.alloc += rt.Addr(size)
	// clear compiles to a memclr, unlike the equivalent index loop. Copy
	// paths (Copy, CopyWords, TLAB old-copy allocation) skip zeroing
	// entirely — they overwrite every word immediately.
	clear(h.words[a:h.alloc])
	h.Allocs++
	h.AllocWords += int64(size)
	return a, true
}

// allocLocked is Alloc under the heap mutex — the mutator's allocation path
// while a concurrent relocation drain is live, when relocator workers carve
// TLAB blocks off the same bump pointer.
func (h *Heap) allocLocked(size int) (rt.Addr, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.alloc+rt.Addr(size) > h.limit(h.cur) {
		return 0, false
	}
	a := h.alloc
	h.alloc += rt.Addr(size)
	clear(h.words[a:h.alloc])
	h.Allocs++
	h.AllocWords += int64(size)
	return a, true
}

// AllocObject allocates a zeroed instance of the class and writes its header.
func (h *Heap) AllocObject(c *rt.Class) (rt.Addr, bool) {
	a, ok := h.Alloc(c.Size)
	if !ok {
		return 0, false
	}
	h.words[a] = uint64(c.ID)
	return a, true
}

// AllocArray allocates a zeroed array of the given length.
func (h *Heap) AllocArray(elemIsRef bool, length int) (rt.Addr, bool) {
	a, ok := h.Alloc(rt.HeaderWords + length)
	if !ok {
		return 0, false
	}
	hdr := arrayBit
	if elemIsRef {
		hdr |= arrayRefBit
	}
	h.words[a] = hdr
	h.words[a+1] = uint64(length)
	return a, true
}

// Word reads a raw word.
func (h *Heap) Word(a rt.Addr) uint64 { return h.words[a] }

// SetWord writes a raw word.
func (h *Heap) SetWord(a rt.Addr, v uint64) { h.words[a] = v }

// ClassID returns the object's class ID (0 for arrays).
func (h *Heap) ClassID(a rt.Addr) int {
	return int(h.words[a] & classIDMask)
}

// SetClassID rewrites the object's class ID — the DSU collector points
// transformed objects at their new class ("initializes the new object to
// point to the TIB of the new type").
func (h *Heap) SetClassID(a rt.Addr, id int) {
	h.words[a] = (h.words[a] &^ classIDMask) | uint64(id)
}

// IsArray reports whether the object is an array.
func (h *Heap) IsArray(a rt.Addr) bool { return h.words[a]&arrayBit != 0 }

// ArrayElemIsRef reports whether the array's elements are references.
func (h *Heap) ArrayElemIsRef(a rt.Addr) bool { return h.words[a]&arrayRefBit != 0 }

// ArrayLen returns the array length.
func (h *Heap) ArrayLen(a rt.Addr) int { return int(h.words[a+1]) }

// ObjectSize returns the object's total size in words, using the class
// registry for scalar objects.
func (h *Heap) ObjectSize(a rt.Addr, classByID func(int) *rt.Class) int {
	if h.IsArray(a) {
		return rt.HeaderWords + h.ArrayLen(a)
	}
	c := classByID(h.ClassID(a))
	if c == nil {
		panic(fmt.Sprintf("heap: object @%d has unknown class id %d", a, h.ClassID(a)))
	}
	return c.Size
}

// Forwarded returns the forwarding target if the object has been moved by
// the current collection.
func (h *Heap) Forwarded(a rt.Addr) (rt.Addr, bool) {
	w := h.words[a]
	if w&forwardBit == 0 {
		return 0, false
	}
	return rt.Addr(w & forwardMask), true
}

// SetForward installs a forwarding pointer in the header, destroying it.
func (h *Heap) SetForward(a, to rt.Addr) {
	h.words[a] = forwardBit | uint64(to)
}

// InCurrentSpace reports whether the address lies in the current
// (allocation) space. During a collection the current space is to-space.
func (h *Heap) InCurrentSpace(a rt.Addr) bool {
	return a >= h.base(h.cur) && a < h.limit(h.cur)
}

// Flip switches allocation to the other semispace. The collector calls it
// at the start of a collection; everything subsequently allocated (the
// copies) lands in to-space, and the old space becomes garbage wholesale.
func (h *Heap) Flip() {
	if h.reloc != nil {
		panic("heap: Flip with relocation barrier armed — force the drain first")
	}
	h.cur ^= 1
	h.alloc = h.base(h.cur)
	// The space we are about to refill is empty again: its recorded holes
	// (from the parallel collection two flips ago) died with its contents.
	h.holes[h.cur] = h.holes[h.cur][:0]
}

// Copy block-copies size words from src to a fresh allocation, returning
// the new address. Used by the collector's scan/copy loop ("the GC uses
// memcopy, which is highly optimized" — ours is a Go copy).
func (h *Heap) Copy(src rt.Addr, size int) (rt.Addr, bool) {
	if h.alloc+rt.Addr(size) > h.limit(h.cur) {
		return 0, false
	}
	a := h.alloc
	h.alloc += rt.Addr(size)
	copy(h.words[a:a+rt.Addr(size)], h.words[src:src+rt.Addr(size)])
	h.Allocs++
	h.AllocWords += int64(size)
	return a, true
}

// FieldValue reads a tagged field value given the offset and ref-ness that
// compiled code baked in. With the relocation barrier armed, a load that
// observes a from-space reference evacuates-or-adopts the target and heals
// the slot with the canonical address — the self-healing half of the
// Shenandoah-style barrier; each slot pays it at most once.
func (h *Heap) FieldValue(a rt.Addr, offset int, isRef bool) rt.Value {
	idx := a + rt.Addr(offset)
	if r := h.reloc; r != nil {
		w := atomic.LoadUint64(&h.words[idx])
		if isRef && r.inFrom(rt.Addr(w)) {
			w = h.healSlot(r, idx, w)
		}
		return rt.Value{Bits: w, IsRef: isRef}
	}
	return rt.Value{Bits: h.words[idx], IsRef: isRef}
}

// SetFieldValue writes a field word. With the SATB barrier armed (concurrent
// DSU mark in flight) a reference store additionally logs the overwritten
// value and goes atomic; with the relocation barrier armed the store goes
// atomic because drain workers CAS-heal the same slots. The disarmed path is
// the plain store plus the nil checks.
func (h *Heap) SetFieldValue(a rt.Addr, offset int, v rt.Value) {
	idx := a + rt.Addr(offset)
	if s := h.satb; s != nil && v.IsRef {
		h.satbStore(s, idx, v.Bits)
		return
	}
	if h.reloc != nil {
		atomic.StoreUint64(&h.words[idx], v.Bits)
		return
	}
	h.words[idx] = v.Bits
}

// Elem reads array element i, paying the relocation load barrier when armed
// (the element's ref-ness comes from the array header, so even untagged
// readers are covered).
func (h *Heap) Elem(a rt.Addr, i int) rt.Value {
	idx := a + rt.HeaderWords + rt.Addr(i)
	if r := h.reloc; r != nil {
		isRef := h.words[a]&arrayRefBit != 0
		w := atomic.LoadUint64(&h.words[idx])
		if isRef && r.inFrom(rt.Addr(w)) {
			w = h.healSlot(r, idx, w)
		}
		return rt.Value{Bits: w, IsRef: isRef}
	}
	return rt.Value{Bits: h.words[idx], IsRef: h.ArrayElemIsRef(a)}
}

// SetElem writes array element i, paying the SATB barrier (log + atomic) or
// the relocation barrier (atomic) when either is armed.
func (h *Heap) SetElem(a rt.Addr, i int, v rt.Value) {
	idx := a + rt.HeaderWords + rt.Addr(i)
	if s := h.satb; s != nil && h.words[a]&arrayRefBit != 0 {
		h.satbStore(s, idx, v.Bits)
		return
	}
	if h.reloc != nil {
		atomic.StoreUint64(&h.words[idx], v.Bits)
		return
	}
	h.words[idx] = v.Bits
}
