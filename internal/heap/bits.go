package heap

// Header-word-0 bit layout — the single authoritative map of every protocol
// that claims bits in an object header. Four protocols share the word:
//
//	bits 0..31   class ID (0 for arrays)               — allocation/dispatch
//	bits 32..59  unused (reserved)
//	bit 60       untransformed tag (lazy DSU transform) — lazy.go
//	bit 61       array-of-references flag               — allocation
//	bit 62       array flag                             — allocation
//	bit 63       forwarded flag                         — gc forwarding
//
// Forwarding (bit 63) repurposes bits 0..60 as the forwarding address
// (forwardMask), destroying the class id and the lazy tag — legal because a
// forwarded header only ever appears on a FROM-space object, whose identity
// has already moved to the copy. The CAS claim/publish protocol (parallel
// collection and concurrent relocation) uses one sentinel, claimedWord =
// forwardBit|forwardMask: an address no semispace can reach, marking an
// object as claimed-but-not-yet-published. Both the parallel STW copy and
// the concurrent relocation drain speak exactly this protocol, so a header
// is always in one of four states: plain (class id + flags), lazily tagged
// (plain | untransformedBit), claimed (claimedWord), or forwarded
// (forwardBit | to).
//
// The lazy tag (bit 60) lies inside forwardMask. That is sound because the
// two protocols never meet on one object: the untransformed tag is only ever
// set on TO-space shells (freshly created by a DSU collection or relocation
// drain), and forwarding headers are only ever installed on FROM-space
// originals. TestHeaderBitLayout pins these disjointness claims.
const (
	// classIDMask covers the class id of a scalar object's header.
	classIDMask = uint64(1)<<32 - 1

	// untransformedBit tags a DSU shell whose object transformer has not run
	// yet (vm.Options.LazyTransform); the interpreter's read barrier tests it
	// on every access fast path. See lazy.go for the full protocol.
	untransformedBit = uint64(1) << 60

	// arrayRefBit marks an array whose elements are references.
	arrayRefBit = uint64(1) << 61

	// arrayBit marks an array header (class id is then 0 and word 1 holds
	// the length).
	arrayBit = uint64(1) << 62

	// forwardBit marks a forwarded (or claimed) from-space header; bits
	// 0..60 then hold the forwarding address.
	forwardBit = uint64(1) << 63

	// forwardMask extracts the forwarding address from a forwarded header.
	forwardMask = uint64(1)<<61 - 1

	// claimedWord is the claim sentinel of the CAS forwarding protocol: a
	// worker that wins TryForward holds the object's saved header privately
	// and publishes the real forwarding pointer once the copy is complete.
	// No valid forwarding address equals forwardMask, so claimed is
	// distinguishable from forwarded.
	claimedWord = forwardBit | forwardMask
)
