package heap

import (
	"runtime"
	"testing"
	"time"

	"govolve/internal/rt"
)

// The ≤2% write-barrier gate. The disarmed SATB barrier is one pointer
// nil-check inside SetFieldValue/SetElem. There is no barrier-free build to
// diff against at the interpreter level, but the pre-barrier store body
// still exists verbatim (SetWord plus the offset add), so the gate measures
// bare-vs-disarmed on a dispatch-shaped loop: a dependent arithmetic chain
// approximating one interpreted instruction's work, then one store. That is
// the honest model of where the check runs in production — amortized under
// an instruction's dependency chain, where the predicted branch and the
// independent h.satb load overlap with real work. The raw store-bound
// benchmarks below are reported too (they show the un-amortized ~2-cycle
// delta) but are not gated: no barrier of any kind passes 2% at
// one-store-per-cycle granularity.

const storeSpan = 1 << 10 // words cycled over, resident in cache

// newStoreHeap allocates one big block to store into.
func newStoreHeap(tb testing.TB) (*Heap, rt.Addr) {
	tb.Helper()
	h := New(1 << 12)
	a, ok := h.Alloc(rt.HeaderWords + storeSpan)
	if !ok {
		tb.Fatal("alloc failed")
	}
	return h, a
}

// chew is the dispatch-shaped filler: a dependent arithmetic chain costing
// roughly one interpreted instruction's worth of work per call.
func chew(x uint64) uint64 {
	x = x*2862933555777941757 + 3037000493
	x ^= x >> 29
	x = x*0xff51afd7ed558ccd + 1
	x ^= x >> 33
	return x
}

// bareStoreRate times chew + the pre-barrier store body — the literal code
// SetFieldValue compiled to before the SATB check existed — and returns
// iterations/second.
func bareStoreRate(tb testing.TB, h *Heap, base rt.Addr, n int) float64 {
	tb.Helper()
	x := uint64(42)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		x = chew(x)
		h.SetWord(base+rt.Addr(rt.HeaderWords+(i&(storeSpan-1))), x)
	}
	el := time.Since(t0)
	if el <= 0 || x == 0 {
		tb.Fatal("store sample too fast to time")
	}
	return float64(n) / el.Seconds()
}

// barrierStoreRate times chew + the production store path (disarmed
// barrier).
func barrierStoreRate(tb testing.TB, h *Heap, base rt.Addr, n int) float64 {
	tb.Helper()
	x := uint64(42)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		x = chew(x)
		h.SetFieldValue(base, rt.HeaderWords+(i&(storeSpan-1)), rt.Value{Bits: x, IsRef: true})
	}
	el := time.Since(t0)
	if el <= 0 || x == 0 {
		tb.Fatal("store sample too fast to time")
	}
	return float64(n) / el.Seconds()
}

// BenchmarkSATBStoreBare / BenchmarkSATBStoreDisarmed / BenchmarkSATBStoreArmed
// report the three store costs side by side.

func BenchmarkSATBStoreBare(b *testing.B) {
	h, base := newStoreHeap(b)
	v := rt.Value{Bits: 42, IsRef: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.SetWord(base+rt.Addr(rt.HeaderWords+(i&(storeSpan-1))), v.Bits)
	}
}

func BenchmarkSATBStoreDisarmed(b *testing.B) {
	h, base := newStoreHeap(b)
	v := rt.Value{Bits: 42, IsRef: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.SetFieldValue(base, rt.HeaderWords+(i&(storeSpan-1)), v)
	}
}

func BenchmarkSATBStoreArmed(b *testing.B) {
	h, base := newStoreHeap(b)
	v := rt.Value{Bits: 42, IsRef: true}
	buf := make([]rt.Addr, 0, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&0xffff == 0 { // re-arm so the deletion log stays bounded
			b.StopTimer()
			h.DisarmSATB()
			h.ArmSATB(buf)
			b.StartTimer()
		}
		h.SetFieldValue(base, rt.HeaderWords+(i&(storeSpan-1)), v)
	}
	b.StopTimer()
	h.DisarmSATB()
}

// TestSATBDisarmedStoreOverheadGate: on the dispatch-shaped loop the
// disarmed store path must hold ≥98% of the bare store's throughput,
// measured with the obs gate's interleaved best-of strategy so scheduler
// noise on loaded CI boxes does not flake it.
//
// The ratio only means something on a native build: under -race every
// memory access compiles to a tsan call, so the barrier's one extra load
// costs a full function call instead of an overlapped µop and the gate
// would measure the instrumentation, not the barrier. The barrier's
// *correctness* under -race is what `make race-gc` pins; the cost bound is
// enforced by the non-race `make test` / `make satb-gate` passes and
// skipped here when the detector is on.
func TestSATBDisarmedStoreOverheadGate(t *testing.T) {
	if raceEnabled {
		t.Skip("throughput ratio is meaningless under the race detector; gate enforced on the native build")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	h, base := newStoreHeap(t)

	const (
		n        = 1 << 20
		rounds   = 5
		attempts = 4
		floor    = 0.98
	)
	var lastRatio float64
	for attempt := 0; attempt < attempts; attempt++ {
		bareBest, barBest := 0.0, 0.0
		for r := 0; r < rounds; r++ {
			if b := bareStoreRate(t, h, base, n); b > bareBest {
				bareBest = b
			}
			if b := barrierStoreRate(t, h, base, n); b > barBest {
				barBest = b
			}
		}
		lastRatio = barBest / bareBest
		if lastRatio >= floor {
			return
		}
	}
	t.Fatalf("disarmed-barrier stores at %.1f%% of bare stores after %d attempts, want ≥%.0f%%",
		lastRatio*100, attempts, floor*100)
}
