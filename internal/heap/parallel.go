package heap

import (
	"sync/atomic"

	"govolve/internal/rt"
)

// This file is the heap's parallel-collection surface. A stop-the-world
// parallel collection has N workers racing to evacuate the same from-space
// object graph; the heap contributes two pieces of machinery:
//
//  1. An atomic forwarding protocol on the header word (claim with CAS,
//     publish when the copy is complete), so exactly one worker evacuates
//     each object and the losers wait for the winner's address.
//  2. Per-worker TLABs — thread-local allocation buffers bump-allocated
//     from blocks carved off to-space (or the scratch region) under the
//     heap mutex — so workers never contend on the global bump pointer for
//     individual objects.
//
// Everything here is inert for the serial collector and the mutator, which
// keep their unsynchronized fast paths.

// The claim sentinel (claimedWord) and the rest of the header bit layout
// live in bits.go — the shared map for this CAS protocol, the serial
// collector, and the concurrent relocation drain.

// HeaderLoad atomically reads an object's header word. During a parallel
// collection every read of a from-space header must go through it, because
// racing workers CAS the same word.
func (h *Heap) HeaderLoad(a rt.Addr) uint64 {
	return atomic.LoadUint64(&h.words[a])
}

// HeaderForwarded decodes a header word previously read with HeaderLoad:
// it returns the forwarding target and true if the object has been
// evacuated. A claimed (in-progress) header reports forwarded=false,
// claimed=true — the caller must re-load until the winner publishes.
func HeaderForwarded(w uint64) (to rt.Addr, forwarded, claimed bool) {
	if w&forwardBit == 0 {
		return 0, false, false
	}
	if w == claimedWord {
		return 0, false, true
	}
	return rt.Addr(w & forwardMask), true, false
}

// HeaderIsArray reports whether a (non-forwarded) header word describes an
// array.
func HeaderIsArray(w uint64) bool { return w&arrayBit != 0 }

// HeaderArrayElemIsRef reports whether a (non-forwarded) array header word
// describes an array of references.
func HeaderArrayElemIsRef(w uint64) bool { return w&arrayRefBit != 0 }

// HeaderClassID extracts the class ID from a (non-forwarded) header word.
func HeaderClassID(w uint64) int { return int(w & classIDMask) }

// TryForward attempts to claim the evacuation of the object at a by
// CAS-ing its header from old (a non-forwarded value the caller read via
// HeaderLoad) to the claim sentinel. On success the caller owns the
// object: it must copy it and then PublishForward the real target — or
// RestoreHeader(a, old) if allocation failed, so spinning losers can
// observe the abort. On failure another worker got there first; re-load
// the header.
func (h *Heap) TryForward(a rt.Addr, old uint64) bool {
	return atomic.CompareAndSwapUint64(&h.words[a], old, claimedWord)
}

// PublishForward atomically installs the final forwarding pointer,
// releasing workers spinning on the claim sentinel.
func (h *Heap) PublishForward(a, to rt.Addr) {
	atomic.StoreUint64(&h.words[a], forwardBit|uint64(to))
}

// RestoreHeader atomically rewrites a claimed header back to its original
// value — the abort path when the claiming worker could not allocate the
// copy. The collection is failing at that point; restoring keeps spinning
// losers from hanging on the sentinel forever.
func (h *Heap) RestoreHeader(a rt.Addr, w uint64) {
	atomic.StoreUint64(&h.words[a], w)
}

// SizeFromHeader computes an object's size from a header word the caller
// already holds (the header in memory may meanwhile carry the claim
// sentinel; only word 0 is ever mutated during a collection, so the array
// length at word 1 is safe to read directly). It returns -1 when the class
// ID does not resolve.
func (h *Heap) SizeFromHeader(a rt.Addr, w uint64, classByID func(int) *rt.Class) int {
	if w&arrayBit != 0 {
		return rt.HeaderWords + int(h.words[a+1])
	}
	c := classByID(HeaderClassID(w))
	if c == nil {
		return -1
	}
	return c.Size
}

// CopyWords block-copies size words from src to dst. Unlike Copy it does
// not allocate — parallel workers copy into TLAB space they already own.
// Callers that copy a claimed object must skip its header word (copy from
// src+1) and write the saved header themselves, because word 0 of the
// source is concurrently CASed by the forwarding protocol.
func (h *Heap) CopyWords(dst, src rt.Addr, size int) {
	copy(h.words[dst:dst+rt.Addr(size)], h.words[src:src+rt.Addr(size)])
}

// AllocBlock carves a raw block of size words off the current space under
// the heap mutex, for TLAB refills. The block is NOT zeroed: TLAB users
// either overwrite every word (old copies, evacuated objects) or zero
// explicitly (new-class shells via TLAB.AllocZeroed).
func (h *Heap) AllocBlock(size int) (rt.Addr, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.alloc+rt.Addr(size) > h.limit(h.cur) {
		return 0, false
	}
	a := h.alloc
	h.alloc += rt.Addr(size)
	return a, true
}

// AllocScratchBlock is AllocBlock against the scratch region (DSU old
// copies under the §3.5 alternative).
func (h *Heap) AllocScratchBlock(size int) (rt.Addr, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.scratchSize == 0 || h.scratchAlloc+rt.Addr(size) > h.scratchBase()+h.scratchSize {
		return 0, false
	}
	a := h.scratchAlloc
	h.scratchAlloc += rt.Addr(size)
	return a, true
}

// TLAB is one parallel-collection worker's bump allocator. All its
// allocations come from blocks carved off the shared space under the heap
// mutex; individual object allocations are lock-free bumps within the
// current block. Tails abandoned at refill or retire time are accounted in
// Waste (they stay dead until the next collection reclaims the space
// wholesale — exactly like any other to-space slack).
type TLAB struct {
	h       *Heap
	scratch bool
	block   int // preferred carve size in words

	cur, end rt.Addr

	allocs, words int64 // flushed into Heap counters at Retire

	// Waste counts words abandoned in block tails by this TLAB.
	Waste int
}

// NewTLAB creates a worker allocation buffer carving blockWords-sized
// blocks from to-space (or the scratch region when scratch is set). No
// space is reserved until the first allocation.
func (h *Heap) NewTLAB(blockWords int, scratch bool) *TLAB {
	if blockWords < 16 {
		blockWords = 16
	}
	return &TLAB{h: h, scratch: scratch, block: blockWords}
}

// Alloc reserves size words from the buffer, refilling from the shared
// space as needed. The words are NOT zeroed — use AllocZeroed for objects
// whose fields must start at their defaults.
func (t *TLAB) Alloc(size int) (rt.Addr, bool) {
	if size < rt.HeaderWords {
		size = rt.HeaderWords
	}
	if int(t.end-t.cur) < size && !t.refill(size) {
		return 0, false
	}
	a := t.cur
	t.cur += rt.Addr(size)
	t.allocs++
	t.words += int64(size)
	return a, true
}

// AllocZeroed is Alloc with the reserved words cleared — the shell
// allocation path (a new-class object must present zeroed fields to its
// transformer).
func (t *TLAB) AllocZeroed(size int) (rt.Addr, bool) {
	a, ok := t.Alloc(size)
	if !ok {
		return 0, false
	}
	clear(t.h.words[a : a+rt.Addr(size)])
	return a, true
}

// refill carves a fresh block, abandoning the current tail. When a full
// preferred-size block no longer fits it falls back to carving exactly the
// words needed, so the last stretch of space is still usable.
func (t *TLAB) refill(need int) bool {
	n := t.block
	if need > n {
		n = need
	}
	carve := func(sz int) (rt.Addr, bool) {
		if t.scratch {
			return t.h.AllocScratchBlock(sz)
		}
		return t.h.AllocBlock(sz)
	}
	a, ok := carve(n)
	if !ok && n > need {
		a, ok = carve(need)
		n = need
	}
	if !ok {
		return false
	}
	if tail := int(t.end - t.cur); tail > 0 {
		t.Waste += tail
		if !t.scratch {
			t.h.RecordHole(t.cur, tail)
		}
	}
	t.cur, t.end = a, a+rt.Addr(n)
	return true
}

// Retire returns the buffer's unused tail to the shared space when it is
// still the topmost allocation (only one worker's can be), flushes the
// allocation counters into the heap's, and deactivates the TLAB.
func (t *TLAB) Retire() {
	h := t.h
	h.mu.Lock()
	defer h.mu.Unlock()
	if t.cur < t.end {
		switch {
		case t.scratch && h.scratchAlloc == t.end:
			h.scratchAlloc = t.cur
		case !t.scratch && h.alloc == t.end:
			h.alloc = t.cur
		default:
			t.Waste += int(t.end - t.cur)
			if !t.scratch {
				h.recordHoleLocked(t.cur, int(t.end-t.cur))
			}
		}
	}
	t.cur, t.end = 0, 0
	h.Allocs += t.allocs
	h.AllocWords += t.words
	t.allocs, t.words = 0, 0
}
