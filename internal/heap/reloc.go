package heap

import (
	"sync/atomic"

	"govolve/internal/rt"
)

// Concurrent relocation support (vm.Options.ConcurrentReloc): after a DSU
// flip the world resumes with from-space still live, and the remaining live
// set is evacuated concurrently — by background relocator workers and by the
// mutator through a self-healing load barrier on the reference read paths
// (FieldValue, Elem). The heap owns the barrier's armed state and the
// slot-heal CAS; the drain itself (region scan, worker deques, termination)
// lives in internal/gc.
//
// Barrier contract while armed:
//
//   - Reference LOADS atomically read the slot; a value inside
//     [fromLo, fromHi) is a from-space reference — the heal callback
//     evacuates-or-adopts it (TryForward/PublishForward CAS protocol,
//     bits.go) and the slot is CAS-healed to the canonical address. A healed
//     slot never re-faults: the canonical address is outside the from-space
//     interval, so the next load takes only the interval check.
//   - STORES go atomic, because drain workers CAS-heal the slots of the
//     to-space objects they scan while the mutator may store to them. The
//     mutator only ever stores canonical references (its loads heal, its
//     roots were remapped in the pause), so stores need no from-space check.
//   - Mutator ALLOCATION takes the heap mutex (allocLocked): relocator
//     workers carve TLAB blocks off the same bump pointer.
//   - Flip is forbidden (panic): from-space is held until the drain
//     completes; collections force-complete it first.
//
// Arm/disarm discipline mirrors satb.go: one nil check on every disabled
// path, the gc layer arms inside the pause and disarms at drain finalize on
// the mutator goroutine.

// relocState is the armed barrier: the from-space interval being drained and
// the gc-layer callback that evacuates-or-adopts one from-space object,
// returning its canonical to-space address (or its argument unchanged if
// evacuation failed — the drain is then failing and the VM will be marked
// unusable; the slot is left stale so nothing is lost).
type relocState struct {
	fromLo, fromHi rt.Addr
	heal           func(rt.Addr) rt.Addr

	// healed counts slots the MUTATOR barrier healed (worker-side heals are
	// counted by the drain). Mutator-only, no atomics needed.
	healed uint64
}

func (r *relocState) inFrom(a rt.Addr) bool { return a >= r.fromLo && a < r.fromHi }

// ArmReloc installs the relocation load barrier over the given from-space
// interval. Called inside the DSU pause, before the world resumes.
func (h *Heap) ArmReloc(fromLo, fromHi rt.Addr, heal func(rt.Addr) rt.Addr) {
	if h.reloc != nil {
		panic("heap: relocation barrier already armed")
	}
	h.reloc = &relocState{fromLo: fromLo, fromHi: fromHi, heal: heal}
}

// DisarmReloc removes the barrier once the drain has fully evacuated
// from-space, returning the number of slots the mutator barrier healed.
// Called on the mutator goroutine with all drain workers stopped.
func (h *Heap) DisarmReloc() uint64 {
	r := h.reloc
	h.reloc = nil
	if r == nil {
		return 0
	}
	return r.healed
}

// RelocArmed reports whether a relocation drain holds from-space live.
func (h *Heap) RelocArmed() bool { return h.reloc != nil }

// InRelocFromSpace reports whether a lies in the from-space interval of an
// armed relocation drain (false when disarmed).
func (h *Heap) InRelocFromSpace(a rt.Addr) bool {
	r := h.reloc
	return r != nil && r.inFrom(a)
}

// healSlot canonicalizes a from-space reference read from slot idx and
// CAS-heals the slot. A failed CAS means a drain worker healed it first (to
// the same canonical address — forwarding is published exactly once), so the
// return value is correct either way.
func (h *Heap) healSlot(r *relocState, idx rt.Addr, w uint64) uint64 {
	to := r.heal(rt.Addr(w))
	if to == rt.Addr(w) {
		return w // evacuation failed; leave the slot stale
	}
	if atomic.CompareAndSwapUint64(&h.words[idx], w, uint64(to)) {
		r.healed++
	}
	return uint64(to)
}

// SlotLoad atomically reads an arbitrary heap word — drain workers use it on
// the ref slots of to-space objects they scan, which race with mutator
// stores.
func (h *Heap) SlotLoad(idx rt.Addr) uint64 { return atomic.LoadUint64(&h.words[idx]) }

// SlotCAS atomically swaps a heap word — the worker half of slot healing.
func (h *Heap) SlotCAS(idx rt.Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&h.words[idx], old, new)
}

// SlotStore atomically writes an arbitrary heap word. The engine's native
// bulk transformer uses it while the barrier is armed: drain workers SlotLoad
// the same slots concurrently, so plain stores would race.
func (h *Heap) SlotStore(idx rt.Addr, w uint64) { atomic.StoreUint64(&h.words[idx], w) }
