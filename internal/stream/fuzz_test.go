package stream

import (
	"strings"
	"testing"
)

// FuzzStreamChain drives the whole stream stack from two fuzzed inputs: a
// chain seed and a mode selector. Every input generates a short version
// chain and replays it end to end with the chain-wide oracle armed — so the
// fuzzer explores the composition surface (mutation batches × engine modes
// × hostile interleavings) rather than a single parser. Any oracle failure,
// stats-invariant violation, or safe-point livelock is a real bug; the only
// tolerated outcome besides success is the generator legitimately running
// out of acceptable mutation batches for a degenerate seed.
func FuzzStreamChain(f *testing.F) {
	f.Add(int64(1), byte(0))
	f.Add(int64(7), byte(1))
	f.Add(int64(42), byte(2))
	f.Add(int64(1905), byte(3))
	f.Add(int64(-3), byte(4))
	f.Fuzz(func(t *testing.T, seed int64, modeSel byte) {
		modes := Modes()
		mode := modes[int(modeSel)%len(modes)]
		rep, err := Replay(Config{
			Seed:         seed,
			Length:       5,
			Classes:      5,
			Mutations:    2,
			Mode:         mode,
			Hostile:      true,
			FastDefaults: seed%2 == 0,
			ScratchWords: 1 << 13,
		})
		if err != nil {
			// Degenerate seeds can exhaust the mutation-batch retry bound
			// during generation; that is the generator refusing, not the
			// engine failing.
			if strings.Contains(err.Error(), "no acceptable mutation batch") {
				t.Skip(err)
			}
			t.Fatalf("mode %s: %v", mode.Name, err)
		}
		if rep.Applied != 5 {
			t.Fatalf("mode %s: applied=%d, want 5", mode.Name, rep.Applied)
		}
	})
}
