package stream

import (
	"fmt"
	"strings"
	"testing"

	"govolve/internal/core"
	"govolve/internal/obs"
	"govolve/internal/storm"
)

// TestStreamMatrix is the long-horizon acceptance test: a seeded 50-update
// chain replayed to completion in every engine mode under the hostile
// schedule, with the whole-VM oracle at every step (inside Replay) plus the
// stats-decomposition invariants asserted per step here, and the lazy
// conservation laws asserted chain-wide after the terminal drain.
func TestStreamMatrix(t *testing.T) {
	for _, mode := range Modes() {
		mode := mode
		t.Run(mode.Name, func(t *testing.T) {
			t.Parallel()
			var eng *core.Engine
			applied := 0
			rep, err := Replay(Config{
				Seed:         7,
				Length:       50,
				Mode:         mode,
				Hostile:      true,
				ScratchWords: 1 << 14,
				OnStep: func(step int, rec *StepRecord, res *core.Result, d *storm.Driver) error {
					eng = d.Engine()
					s := &res.Stats
					// Pause decomposition: phases nest inside the total.
					if s.PauseTotal < s.PauseInstall+s.PauseGC+s.PauseTransform {
						return fmt.Errorf("step %d: PauseTotal %v < install %v + gc %v + transform %v",
							step, s.PauseTotal, s.PauseInstall, s.PauseGC, s.PauseTransform)
					}
					if s.PauseTransform < s.PauseTransformBulk {
						return fmt.Errorf("step %d: PauseTransform %v < bulk %v", step, s.PauseTransform, s.PauseTransformBulk)
					}
					if s.PauseGC < s.PauseGCMark+s.PauseGCRescan+s.PauseGCCopy {
						return fmt.Errorf("step %d: PauseGC %v < mark %v + rescan %v + copy %v",
							step, s.PauseGC, s.PauseGCMark, s.PauseGCRescan, s.PauseGCCopy)
					}
					// Lazy accounting: drains never overshoot the tagged set,
					// and non-lazy modes never tag at all.
					if s.LazyDrained+s.LazyForced > s.LazyPending {
						return fmt.Errorf("step %d: drained %d + forced %d > pending %d",
							step, s.LazyDrained, s.LazyForced, s.LazyPending)
					}
					if !mode.Lazy && (s.LazyPending != 0 || rec.Backlog != 0) {
						return fmt.Errorf("step %d: lazy counters in eager mode (pending %d backlog %d)",
							step, s.LazyPending, rec.Backlog)
					}
					if rec.Backlog > s.LazyPending {
						return fmt.Errorf("step %d: backlog %d > pending %d", step, rec.Backlog, s.LazyPending)
					}
					// Relocation accounting: reloc modes flag every applied
					// update; eager modes never hold a drain or a backlog.
					if s.RelocConcurrent != mode.ConcurrentReloc {
						return fmt.Errorf("step %d: RelocConcurrent=%v in mode %s",
							step, s.RelocConcurrent, mode.Name)
					}
					if !mode.ConcurrentReloc && (rec.RelocBacklog != 0 || d.VM().RelocDrainActive()) {
						return fmt.Errorf("step %d: relocation residue in mode %s (backlog %d)",
							step, mode.Name, rec.RelocBacklog)
					}
					// The chain only ever advances: exactly one more applied
					// update per step record.
					applied++
					if rec.Step != applied {
						return fmt.Errorf("step %d: out-of-order record (want %d)", rec.Step, applied)
					}
					return nil
				},
			})
			if err != nil {
				t.Fatalf("mode %s: %v", mode.Name, err)
			}
			if rep.Applied != 50 || len(rep.Records) != 50 {
				t.Fatalf("mode %s: applied=%d records=%d, want 50", mode.Name, rep.Applied, len(rep.Records))
			}
			if mode.Lazy && rep.MaxBacklog == 0 {
				t.Errorf("mode %s: hostile lazy chain never built a drain backlog", mode.Name)
			}
			// Conservation after the terminal forced drain: every applied
			// update's drain retired exactly its tagged set, and transformed
			// exactly what its collection logged.
			for i, res := range eng.Updates {
				if res.Outcome != core.Applied {
					continue
				}
				s := &res.Stats
				if s.LazyDrained+s.LazyForced != s.LazyPending {
					t.Errorf("mode %s update %d: drained %d + forced %d != pending %d",
						mode.Name, i, s.LazyDrained, s.LazyForced, s.LazyPending)
				}
				if s.TransformedObjects != s.PairsLogged {
					t.Errorf("mode %s update %d: transformed %d != pairs logged %d",
						mode.Name, i, s.TransformedObjects, s.PairsLogged)
				}
			}
		})
	}
}

// TestStreamGate is the make stream-gate entry point: a short hostile chain
// in every mode, fast enough to run under -race in make verify.
func TestStreamGate(t *testing.T) {
	for _, mode := range Modes() {
		mode := mode
		t.Run(mode.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Replay(Config{
				Seed: 1, Length: 12, Mode: mode, Hostile: true,
				FastDefaults: true, ScratchWords: 1 << 14,
			})
			if err != nil {
				t.Fatalf("mode %s: %v", mode.Name, err)
			}
			if rep.Applied != 12 {
				t.Fatalf("mode %s: applied=%d, want 12", mode.Name, rep.Applied)
			}
		})
	}
}

// goldenFingerprints persists across -count=N reruns in one test binary, so
// a second count compares against the first run's fingerprints — the
// cross-run half of the determinism contract.
var goldenFingerprints = map[string]string{}

// TestStreamDeterministicReplay replays the same chain twice per
// deterministic mode and requires byte-identical fingerprints, in-process
// and across go test -count=2. Concurrent-mark modes are excluded by the
// Mode.Deterministic contract: trace completion is wall-clock dependent, so
// attempt counts and schedule-sensitive tallies legitimately vary.
func TestStreamDeterministicReplay(t *testing.T) {
	for _, mode := range Modes() {
		if !mode.Deterministic() {
			continue
		}
		cfg := Config{Seed: 42, Length: 20, Mode: mode, Hostile: true, ScratchWords: 1 << 14}
		a, err := Replay(cfg)
		if err != nil {
			t.Fatalf("mode %s first replay: %v", mode.Name, err)
		}
		b, err := Replay(cfg)
		if err != nil {
			t.Fatalf("mode %s second replay: %v", mode.Name, err)
		}
		fa, fb := a.Fingerprint(), b.Fingerprint()
		if fa != fb {
			t.Fatalf("mode %s: in-process fingerprint mismatch:\n--- a ---\n%s\n--- b ---\n%s", mode.Name, fa, fb)
		}
		if prev, ok := goldenFingerprints[mode.Name]; ok && prev != fa {
			t.Fatalf("mode %s: cross-run fingerprint mismatch:\n--- prev ---\n%s\n--- now ---\n%s", mode.Name, prev, fa)
		}
		goldenFingerprints[mode.Name] = fa
	}
}

// TestStreamInjectedBug breaks one chain step's object transformer and
// requires (a) the chain-wide oracle to fail at exactly that step, and
// (b) the failure to reproduce from the printed seed + step index alone.
func TestStreamInjectedBug(t *testing.T) {
	mode, _ := ModeByName("serial")
	cfg := Config{Seed: 3, Length: 12, Mode: mode, Hostile: true, InjectBugAtStep: 5}
	rep, err := Replay(cfg)
	if err == nil {
		t.Fatalf("injected empty transformer went undetected (applied=%d injected at %d)",
			rep.Applied, rep.InjectedStep)
	}
	if rep.InjectedStep == 0 {
		t.Fatalf("no step carried a default object transformer to break: %v", err)
	}
	// The failure must carry the one-command repro context.
	var seed int64
	var step int
	var m string
	if _, serr := fmt.Sscanf(err.Error(), "stream: seed=%d step=%d mode=%s", &seed, &step, &m); serr != nil {
		t.Fatalf("failure lacks seed/step repro context: %v", err)
	}
	if step != rep.InjectedStep {
		t.Fatalf("oracle failed at step %d, bug injected at step %d: %v", step, rep.InjectedStep, err)
	}
	// Reproduce from the reported values alone: fresh config, same seed,
	// inject at the reported step — must fail at the same step again.
	rep2, err2 := Replay(Config{Seed: seed, Length: 12, Mode: mode, Hostile: true, InjectBugAtStep: step})
	if err2 == nil {
		t.Fatalf("repro replay did not fail (seed=%d step=%d)", seed, step)
	}
	var step2 int
	if _, serr := fmt.Sscanf(err2.Error(), "stream: seed=%d step=%d", &seed, &step2); serr != nil {
		t.Fatalf("repro failure lacks context: %v", err2)
	}
	if step2 != step {
		t.Fatalf("repro failed at step %d, original at step %d", step2, step)
	}
	if rep2.InjectedStep != rep.InjectedStep {
		t.Fatalf("repro injected at step %d, original at %d", rep2.InjectedStep, rep.InjectedStep)
	}
}

// TestStreamDeltaConservation replays a lazy chain with a metrics registry
// attached and checks that the sums of per-step deltas equal the cumulative
// counters: the registry totals, the stream plane's own counters, and the
// engine's sealed per-update stats must all tell the same story.
func TestStreamDeltaConservation(t *testing.T) {
	reg := obs.NewRegistry()
	mode, _ := ModeByName("lazy")
	var eng *core.Engine
	rep, err := Replay(Config{
		Seed: 11, Length: 25, Mode: mode, Hostile: true,
		ScratchWords: 1 << 14, Metrics: reg,
		OnStep: func(step int, rec *StepRecord, res *core.Result, d *storm.Driver) error {
			eng = d.Engine()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var sumPairs, sumPending int
	for i := range rep.Records {
		sumPairs += rep.Records[i].PairsLogged
		sumPending += rep.Records[i].LazyPending
	}
	var engPairs, engPending, engDrained, engForced, engTransformed int
	for _, res := range eng.Updates {
		if res.Outcome != core.Applied {
			continue
		}
		engPairs += res.Stats.PairsLogged
		engPending += res.Stats.LazyPending
		engDrained += res.Stats.LazyDrained
		engForced += res.Stats.LazyForced
		engTransformed += res.Stats.TransformedObjects
	}

	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"updates applied", reg.Counter(obs.MUpdatesApplied).Value(), int64(rep.Applied)},
		{"updates aborted", reg.Counter(obs.MUpdatesAborted).Value(), int64(rep.Aborted)},
		{"stream updates sustained", reg.Counter(obs.MStreamUpdates).Value(), int64(rep.Applied)},
		{"pairs logged (records)", int64(sumPairs), int64(engPairs)},
		{"pairs logged (registry)", reg.Counter(obs.MPairsLogged).Value(), int64(engPairs)},
		{"lazy pending (records)", int64(sumPending), int64(engPending)},
		{"lazy pending (registry)", reg.Counter(obs.MLazyPending).Value(), int64(engPending)},
		{"lazy drained (registry)", reg.Counter(obs.MLazyDrained).Value(), int64(engDrained)},
		{"lazy forced (registry)", reg.Counter(obs.MLazyForced).Value(), int64(engForced)},
		{"drain conservation", int64(engDrained + engForced), int64(engPending)},
		{"transform conservation", int64(engTransformed), int64(engPairs)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: got %d, want %d", c.name, c.got, c.want)
		}
	}
	if g := reg.Gauge(obs.MStreamBacklog).Value(); g != 0 {
		t.Errorf("drain backlog gauge %v after terminal drain, want 0", g)
	}
}

// TestStreamChainGeneration pins the chain generator's contract: pure
// function of the seed, VM-independent, every step a real non-empty spec.
func TestStreamChainGeneration(t *testing.T) {
	a, err := Generate(5, 30, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(5, 30, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Steps) != 30 || len(b.Steps) != 30 {
		t.Fatalf("got %d/%d steps, want 30", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		sa, sb := a.Steps[i], b.Steps[i]
		if strings.Join(sa.Mutations, ";") != strings.Join(sb.Mutations, ";") {
			t.Fatalf("step %d: mutation divergence: %v vs %v", i+1, sa.Mutations, sb.Mutations)
		}
		if len(sa.Spec.Diffs) == 0 && len(sa.Spec.AddedClasses) == 0 && len(sa.Spec.DeletedClasses) == 0 {
			t.Fatalf("step %d: empty spec", i+1)
		}
	}
}

// TestStreamReportTimestampFree guards the fingerprint contract: wall-clock
// fields must not leak into it (they differ between replays even in
// deterministic modes).
func TestStreamReportTimestampFree(t *testing.T) {
	r := &Report{Seed: 1, Mode: "serial", Length: 1, Records: []StepRecord{{
		Step: 1, Tag: "1", Outcome: "applied", Attempts: 17,
		PauseTotalMs: 3.5, PauseGCMs: 1.2, PauseTransformMs: 0.9,
	}}}
	fp := r.Fingerprint()
	r.Records[0].Attempts = 99
	r.Records[0].PauseTotalMs = 77
	r.Records[0].PauseGCMs = 66
	r.Records[0].PauseTransformMs = 55
	if r.Fingerprint() != fp {
		t.Fatal("fingerprint depends on wall-clock fields")
	}
}

// goldenVerdictFPs is the verdict analogue of goldenFingerprints: persists
// across -count=N reruns so a second count compares against the first.
var goldenVerdictFPs = map[string]string{}

// TestStreamVerdictDeterminism: every step of a seeded deterministic chain
// carries a verdict, an all-green chain passes every one, and the full
// verdict sequence (per-gate pass bits, counts, non-wall-clock observations)
// is byte-identical in-process and across go test -count=2.
func TestStreamVerdictDeterminism(t *testing.T) {
	for _, mode := range Modes() {
		if !mode.Deterministic() {
			continue
		}
		cfg := Config{Seed: 42, Length: 20, Mode: mode, Hostile: true, ScratchWords: 1 << 14}
		a, err := Replay(cfg)
		if err != nil {
			t.Fatalf("mode %s first replay: %v", mode.Name, err)
		}
		for i := range a.Records {
			rec := &a.Records[i]
			if rec.Verdict != "PASS" || rec.VerdictGate != "" {
				t.Fatalf("mode %s step %d: verdict %q gate %q, want all-green PASS",
					mode.Name, rec.Step, rec.Verdict, rec.VerdictGate)
			}
			if rec.VerdictFP == "" {
				t.Fatalf("mode %s step %d: no verdict fingerprint", mode.Name, rec.Step)
			}
		}
		b, err := Replay(cfg)
		if err != nil {
			t.Fatalf("mode %s second replay: %v", mode.Name, err)
		}
		fa, fb := a.VerdictFingerprint(), b.VerdictFingerprint()
		if fa != fb {
			t.Fatalf("mode %s: in-process verdict mismatch:\n--- a ---\n%s\n--- b ---\n%s", mode.Name, fa, fb)
		}
		if prev, ok := goldenVerdictFPs[mode.Name]; ok && prev != fa {
			t.Fatalf("mode %s: cross-run verdict mismatch:\n--- prev ---\n%s\n--- now ---\n%s", mode.Name, prev, fa)
		}
		goldenVerdictFPs[mode.Name] = fa
	}
}

// TestStreamGateHaltStopsChain injects a deterministic regression (a zero
// pause budget: a real pause is always > 0) under the halt policy. The chain
// must stop after the first update with an error naming the violated gate,
// and the step's record must carry the FAIL verdict.
func TestStreamGateHaltStopsChain(t *testing.T) {
	mode, _ := ModeByName("serial")
	rep, err := Replay(Config{
		Seed: 9, Length: 10, Mode: mode,
		GateSpecs: []obs.GateSpec{
			{Name: "pause-budget", Metric: obs.MPauseTotal, Agg: obs.AggSum, Cmp: obs.CmpLE, Threshold: 0, WallClock: true},
		},
		GatePolicy: core.GateHalt,
	})
	if err == nil {
		t.Fatalf("zero pause budget halted nothing (applied=%d)", rep.Applied)
	}
	for _, want := range []string{"chain halted by gate policy", "pause-budget", "seed=9 step=1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("halt error %q missing %q", err, want)
		}
	}
	if len(rep.Records) != 1 {
		t.Fatalf("records = %d, want the halting step alone", len(rep.Records))
	}
	if rec := rep.Records[0]; rec.Verdict != "FAIL" || rec.VerdictGate != "pause-budget" {
		t.Fatalf("halting record verdict %q gate %q", rec.Verdict, rec.VerdictGate)
	}
}

// TestStreamGateQuiesceRetryCompletes runs a hostile chain with a tight
// safe-point budget under the quiesce-retry policy: aborted attempts fail
// the update-aborted gate, which escalates the very next retry to a quiesced
// request. The chain must still complete, and at least one step must have
// exercised the retry path.
func TestStreamGateQuiesceRetryCompletes(t *testing.T) {
	mode, _ := ModeByName("serial")
	rep, err := Replay(Config{
		Seed: 7, Length: 12, Mode: mode, Hostile: true,
		MaxAttempts: 2, GatePolicy: core.GateQuiesceRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 12 {
		t.Fatalf("applied = %d, want 12", rep.Applied)
	}
	retried := 0
	for i := range rep.Records {
		retried += rep.Records[i].Retries
		if rep.Records[i].Verdict != "PASS" {
			t.Fatalf("step %d final verdict %q, want PASS (abort deltas reset per attempt)",
				rep.Records[i].Step, rep.Records[i].Verdict)
		}
	}
	if rep.Aborted == 0 || retried == 0 {
		t.Fatalf("aborted=%d retries=%d: tight budget never aborted, escalation unexercised",
			rep.Aborted, retried)
	}
}

// TestStreamFusedFrameOSR is the hostile-stream half of the interpreter
// tier's DSU coverage: under the hostile schedule, updates land while
// worker threads are pinned inside hot loops that trace promotion has
// moved onto the fused tier — every such frame must deopt through the
// fused pc-map at the update pause. The chain-wide oracle inside Replay
// already proves the rewritten frames compute the right answers; here we
// additionally require that the fused-frame OSR path actually fired, so
// the coverage can't silently decay into base-tier-only OSR.
func TestStreamFusedFrameOSR(t *testing.T) {
	mode, _ := ModeByName("serial")
	reg := obs.NewRegistry()
	rep, err := Replay(Config{
		Seed: 9, Length: 25, Mode: mode, Hostile: true,
		FastDefaults: true, ScratchWords: 1 << 14, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 25 {
		t.Fatalf("applied = %d, want 25", rep.Applied)
	}
	if promos := reg.Counter(obs.MJITTracePromotions).Value(); promos == 0 {
		t.Fatal("workload never trace-promoted: the chain ran base-tier only")
	}
	osr, fused := 0, 0
	for i := range rep.Records {
		osr += rep.Records[i].OSRFrames
		fused += rep.Records[i].OSRFused
	}
	if osr == 0 {
		t.Fatal("no update caught a thread on-stack in an invalidated method")
	}
	if fused == 0 {
		t.Fatalf("%d OSR frames but none on the fused tier: no update landed while a thread was pinned in a fused loop", osr)
	}
	t.Logf("osr frames=%d fused=%d promotions=%d", osr, fused,
		int64(reg.Counter(obs.MJITTracePromotions).Value()))
}
