package obs

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if reg.Counter("x_total") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := reg.Gauge("depth")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %v", g.Value())
	}

	// Nil registry: instruments no-op without panicking.
	var nilReg *Registry
	nilReg.Counter("x").Add(1)
	nilReg.Gauge("y").Set(1)
	nilReg.Histogram("z", nil).Observe(1)
	if nilReg.Counter("x").Value() != 0 {
		t.Fatal("nil counter held a value")
	}
	if err := nilReg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 7, 20} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-39.5) > 1e-9 {
		t.Fatalf("sum = %v, want 39.5", h.Sum())
	}
	// Median lands in the (2,4] bucket; p99 in the overflow bucket, which
	// reports the last bound.
	if q := h.Quantile(0.5); q <= 2 || q > 4 {
		t.Fatalf("p50 = %v, want in (2,4]", q)
	}
	if q := h.Quantile(0.99); q != 8 {
		t.Fatalf("p99 = %v, want clamped to last bound 8", q)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v", q)
	}

	s := h.Snapshot()
	if s.Count != 8 || len(s.Buckets) != 5 {
		t.Fatalf("snapshot %+v", s)
	}
	// Non-cumulative: 0.5→≤1; 1.5,1.5→≤2; 3,3,3→≤4; 7→≤8; 20→+Inf.
	wantBuckets := []int64{1, 2, 3, 1, 1}
	for i, want := range wantBuckets {
		if s.Buckets[i] != want {
			t.Fatalf("bucket[%d] = %d, want %d (%+v)", i, s.Buckets[i], want, s.Buckets)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DurationBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(1e-4)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.4) > 1e-9 {
		t.Fatalf("sum = %v, want 0.4", h.Sum())
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MUpdatesApplied).Add(3)
	reg.Gauge(MThreadsLive).Set(2)
	reg.Histogram(MPauseTotal, DurationBuckets()).Observe(0.004)

	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64        `json:"counters"`
		Gauges     map[string]float64      `json:"gauges"`
		Histograms map[string]HistSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v\n%s", err, b.String())
	}
	if doc.Counters[MUpdatesApplied] != 3 {
		t.Fatalf("counters %+v", doc.Counters)
	}
	if doc.Gauges[MThreadsLive] != 2 {
		t.Fatalf("gauges %+v", doc.Gauges)
	}
	h := doc.Histograms[MPauseTotal]
	if h.Count != 1 || h.Sum != 0.004 {
		t.Fatalf("histogram %+v", h)
	}
}

// promSample is one parsed Prometheus sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePrometheus is a minimal text-exposition (0.0.4) parser: enough to
// validate what WritePrometheus emits — HELP and TYPE comments, bare
// samples, and histogram series with le labels.
func parsePrometheus(t *testing.T, text string) (types, helps map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	helps = map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			sp := strings.IndexByte(rest, ' ')
			if sp <= 0 || sp == len(rest)-1 {
				t.Fatalf("line %d: malformed HELP comment %q", ln+1, line)
			}
			helps[rest[:sp]] = rest[sp+1:]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		head, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(strings.TrimPrefix(valStr, "+"), 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		s := promSample{labels: map[string]string{}, value: val}
		if i := strings.IndexByte(head, '{'); i >= 0 {
			if !strings.HasSuffix(head, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, line)
			}
			s.name = head[:i]
			for _, kv := range strings.Split(head[i+1:len(head)-1], ",") {
				eq := strings.IndexByte(kv, '=')
				if eq < 0 {
					t.Fatalf("line %d: bad label %q", ln+1, kv)
				}
				v, err := strconv.Unquote(kv[eq+1:])
				if err != nil {
					t.Fatalf("line %d: bad label value %q: %v", ln+1, kv, err)
				}
				s.labels[kv[:eq]] = v
			}
		} else {
			s.name = head
		}
		samples = append(samples, s)
	}
	return types, helps, samples
}

func TestWritePrometheusParses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MUpdatesApplied).Add(2)
	reg.Counter(MBarriers).Add(7)
	reg.Gauge(MRunnableQueue).Set(4)
	h := reg.Histogram(MPauseGC, []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	types, _, samples := parsePrometheus(t, b.String())

	if types[MUpdatesApplied] != "counter" || types[MRunnableQueue] != "gauge" || types[MPauseGC] != "histogram" {
		t.Fatalf("types = %v", types)
	}
	find := func(name string, labels map[string]string) *promSample {
		for i := range samples {
			if samples[i].name != name {
				continue
			}
			match := true
			for k, v := range labels {
				if samples[i].labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return &samples[i]
			}
		}
		return nil
	}
	if s := find(MUpdatesApplied, nil); s == nil || s.value != 2 {
		t.Fatalf("missing/ wrong %s: %+v", MUpdatesApplied, s)
	}
	if s := find(MRunnableQueue, nil); s == nil || s.value != 4 {
		t.Fatalf("gauge sample %+v", s)
	}
	// Histogram: cumulative buckets, +Inf == _count, _sum present.
	wantCum := map[string]float64{"0.001": 1, "0.01": 2, "0.1": 2, "+Inf": 3}
	for le, want := range wantCum {
		s := find(MPauseGC+"_bucket", map[string]string{"le": le})
		if s == nil {
			t.Fatalf("missing bucket le=%q", le)
		}
		if s.value != want {
			t.Fatalf("bucket le=%q = %v, want %v", le, s.value, want)
		}
	}
	if s := find(MPauseGC+"_count", nil); s == nil || s.value != 3 {
		t.Fatalf("_count sample %+v", s)
	}
	if s := find(MPauseGC+"_sum", nil); s == nil || math.Abs(s.value-0.5055) > 1e-9 {
		t.Fatalf("_sum sample %+v", s)
	}
	// Output is deterministic (sorted) across writes.
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("WritePrometheus output is not deterministic")
	}
}

// TestExpositionAudit registers every canonical metric (histograms where the
// name says seconds/attempts, counters for _total, gauges otherwise), writes
// the exposition, and requires a HELP and TYPE comment for every emitted
// series — with the curated text, never the generic fallback, for canonical
// names. This is the contract that a new M* constant cannot ship without a
// metricHelp entry.
func TestExpositionAudit(t *testing.T) {
	reg := NewRegistry()
	for _, n := range CanonicalMetricNames() {
		switch {
		case n == MBuildInfo:
			// Synthesized by WritePrometheus itself.
		case strings.HasSuffix(n, "_seconds") && !strings.Contains(n, "uptime"):
			reg.Histogram(n, DurationBuckets()).Observe(0.001)
		case n == MAttempts:
			reg.Histogram(n, CountBuckets()).Observe(2)
		case strings.HasSuffix(n, "_total"):
			reg.Counter(n).Inc()
		default:
			reg.Gauge(n).Set(1)
		}
	}
	reg.Counter("adhoc_series_total").Inc() // uncurated: generic HELP fallback

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	types, helps, samples := parsePrometheus(t, b.String())

	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if bn := strings.TrimSuffix(name, suf); bn != name && types[bn] == "histogram" {
				return bn
			}
		}
		return name
	}
	for _, s := range samples {
		bn := base(s.name)
		if types[bn] == "" {
			t.Errorf("series %s has no TYPE comment", s.name)
		}
		if helps[bn] == "" {
			t.Errorf("series %s has no HELP comment", s.name)
		}
	}
	for _, n := range CanonicalMetricNames() {
		if h := helps[n]; h != MetricHelp(n) || strings.HasPrefix(h, "govolve metric ") {
			t.Errorf("canonical metric %s: HELP %q is missing or uncurated", n, h)
		}
	}
	if !strings.HasPrefix(helps["adhoc_series_total"], "govolve metric ") {
		t.Errorf("fallback HELP = %q", helps["adhoc_series_total"])
	}

	// Build identity and uptime ride every exposition.
	var build *promSample
	for i := range samples {
		if samples[i].name == MBuildInfo {
			build = &samples[i]
		}
	}
	if build == nil || build.value != 1 || build.labels["module"] != "govolve" || build.labels["go"] == "" {
		t.Fatalf("build_info sample %+v", build)
	}
	if types[MBuildInfo] != "gauge" || types[MVMUptime] != "gauge" {
		t.Fatalf("identity types %v %v", types[MBuildInfo], types[MVMUptime])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0.001:        "0.001",
		1:            "1",
		math.Inf(1):  "+Inf",
		0.0000025:    "0.0000025",
		1234.5678901: "1234.5678901",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
