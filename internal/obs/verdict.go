package obs

// Verdicts: the per-update output of the health-gate engine. The DSU
// engine hands the GateEngine the three snapshots bracketing an update;
// the GateEngine runs every gate spec over the window, rolls the results
// into one PASS/FAIL Verdict, keeps the last N verdicts in a ring, and
// publishes govolve_gate_* series into the registry so the exposition a
// fleet controller scrapes carries the judgment, not just the raw data.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Verdict is one update's acceptance judgment.
type Verdict struct {
	// Seq numbers verdicts from 1 in evaluation order.
	Seq int64 `json:"seq"`
	// Tag is the update's identifying tag (spec tag or step label).
	Tag string `json:"tag,omitempty"`
	// Outcome is the engine outcome the verdict judged (applied, aborted,
	// failed) — gates see aborted/failed updates too; that is how the
	// abort-rate gates fire.
	Outcome string `json:"outcome,omitempty"`
	// Pass is the conjunction of all gate results.
	Pass bool `json:"pass"`
	// Violated names the first failing gate ("" when Pass).
	Violated string `json:"violated,omitempty"`
	// Results holds every gate's reading, in spec order.
	Results []GateResult `json:"results"`
	// When stamps evaluation time (wall clock; excluded from Fingerprint).
	When time.Time `json:"when"`
}

// String renders the one-line form used in failure reports:
// "verdict #3 FAIL gate=pause-budget observed=2.41 threshold<=2 (tag=v7)".
func (v *Verdict) String() string {
	if v == nil {
		return "verdict <nil>"
	}
	if v.Pass {
		return fmt.Sprintf("verdict #%d PASS (%d gates, tag=%s, outcome=%s)",
			v.Seq, len(v.Results), v.Tag, v.Outcome)
	}
	s := fmt.Sprintf("verdict #%d FAIL gate=%s", v.Seq, v.Violated)
	for _, g := range v.Results {
		if g.Gate == v.Violated {
			s += fmt.Sprintf(" observed=%g threshold%s%g", g.Observed, g.Cmp, g.Threshold)
			break
		}
	}
	return s + fmt.Sprintf(" (tag=%s, outcome=%s)", v.Tag, v.Outcome)
}

// Fingerprint renders the verdict's deterministic skeleton: pass/fail and
// violated-gate per verdict, plus observed values for gates not marked
// WallClock. Two replays of a seeded deterministic chain must produce
// byte-identical fingerprints; wall-clock gates contribute their pass bit
// (budgets are sized to hold on any host) but never their reading.
func (v *Verdict) Fingerprint() string {
	if v == nil {
		return "verdict=<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seq=%d tag=%s outcome=%s pass=%t violated=%s", v.Seq, v.Tag, v.Outcome, v.Pass, v.Violated)
	for _, g := range v.Results {
		if g.WallClock {
			fmt.Fprintf(&b, " %s:pass=%t", g.Gate, g.Pass)
		} else {
			fmt.Fprintf(&b, " %s:pass=%t,obs=%g,n=%d", g.Gate, g.Pass, g.Observed, g.Samples)
		}
	}
	return b.String()
}

// GateEngine evaluates a fixed set of gate specs per update and keeps the
// verdict ring. All methods are nil-receiver safe; a nil *GateEngine is the
// canonical "gating disabled" value (Evaluate returns nil).
type GateEngine struct {
	mu    sync.Mutex
	specs []GateSpec
	ring  []*Verdict
	next  int
	total int64
	reg   *Registry // gate series sink; may be nil
}

// DefaultVerdictRing is the verdict ring capacity used when n <= 0.
const DefaultVerdictRing = 256

// NewGateEngine builds a gate engine over the given specs (DefaultGateSpecs
// when nil), keeping the last n verdicts (DefaultVerdictRing when n <= 0)
// and publishing govolve_gate_* series into reg (may be nil).
func NewGateEngine(specs []GateSpec, n int, reg *Registry) *GateEngine {
	if specs == nil {
		specs = DefaultGateSpecs()
	}
	if n <= 0 {
		n = DefaultVerdictRing
	}
	return &GateEngine{
		specs: append([]GateSpec(nil), specs...),
		ring:  make([]*Verdict, 0, n),
		reg:   reg,
	}
}

// Specs returns a copy of the engine's gate specs.
func (g *GateEngine) Specs() []GateSpec {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]GateSpec(nil), g.specs...)
}

// Evaluate runs every gate over the snapshot window and records the
// verdict. Any snapshot may be nil. Returns nil on a nil engine.
func (g *GateEngine) Evaluate(tag, outcome string, before, during, after *Snapshot) *Verdict {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	specs := g.specs
	g.total++
	seq := g.total
	g.mu.Unlock()

	v := &Verdict{
		Seq: seq, Tag: tag, Outcome: outcome,
		Pass: true, When: time.Now(),
		Results: make([]GateResult, 0, len(specs)),
	}
	for _, spec := range specs {
		res := spec.eval(before, during, after)
		if !res.Pass && v.Pass {
			v.Pass = false
			v.Violated = res.Gate
		}
		v.Results = append(v.Results, res)
	}

	g.mu.Lock()
	if len(g.ring) < cap(g.ring) {
		g.ring = append(g.ring, v)
	} else {
		g.ring[g.next] = v
	}
	g.next++
	if g.next == cap(g.ring) {
		g.next = 0
	}
	reg := g.reg
	g.mu.Unlock()

	// Publish the judgment as metrics so the scrape plane sees it.
	reg.Counter(MGateEvaluations).Inc()
	if v.Pass {
		reg.Counter(MGatePass).Inc()
		reg.Gauge(MGateLastPass).Set(1)
	} else {
		reg.Counter(MGateFail).Inc()
		reg.Gauge(MGateLastPass).Set(0)
		reg.Counter(MGateViolations).Inc()
	}
	return v
}

// Verdicts returns a chronological snapshot of the ring (oldest first).
func (g *GateEngine) Verdicts() []*Verdict {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Verdict, 0, len(g.ring))
	if len(g.ring) < cap(g.ring) || g.next == 0 {
		return append(out, g.ring...)
	}
	out = append(out, g.ring[g.next:]...)
	return append(out, g.ring[:g.next]...)
}

// Last returns the most recent verdict, or nil when none.
func (g *GateEngine) Last() *Verdict {
	vs := g.Verdicts()
	if len(vs) == 0 {
		return nil
	}
	return vs[len(vs)-1]
}

// Total reports how many verdicts have ever been evaluated (including ones
// the ring has since overwritten).
func (g *GateEngine) Total() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.total
}

// Counts reports (pass, fail) over the buffered verdicts.
func (g *GateEngine) Counts() (pass, fail int64) {
	for _, v := range g.Verdicts() {
		if v.Pass {
			pass++
		} else {
			fail++
		}
	}
	return pass, fail
}

// WriteJSON writes the buffered verdicts plus the active specs as one
// indented JSON document — the /verdicts endpoint body.
func (g *GateEngine) WriteJSON(w io.Writer) error {
	doc := struct {
		Specs    []GateSpec `json:"specs"`
		Total    int64      `json:"total"`
		Verdicts []*Verdict `json:"verdicts"`
	}{
		Specs:    g.Specs(),
		Total:    g.Total(),
		Verdicts: g.Verdicts(),
	}
	if doc.Verdicts == nil {
		doc.Verdicts = []*Verdict{}
	}
	if doc.Specs == nil {
		doc.Specs = []GateSpec{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
