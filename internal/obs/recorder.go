// Package obs is govolve's observability plane: a flight recorder (a
// fixed-capacity ring buffer of typed, timestamped events), a Chrome
// trace-event timeline built from those events, and a metrics registry of
// counters, gauges and fixed-bucket histograms with JSON and Prometheus
// text-exposition snapshots.
//
// The package is deliberately free of any dependency on the rest of the
// repository so every layer (vm, core, gc, storm, bench) can emit into it.
// The disabled path is near-zero: a nil *Recorder is a valid recorder whose
// Emit is a single nil check and whose enabled-but-off path is one atomic
// load — no allocations, no formatting, nothing on the interpreter hot loop
// (guarded by BenchmarkObsDisabledOverhead / TestObsDisabledOverheadGate in
// internal/vm).
package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the type tag of one flight-recorder event. The taxonomy follows
// the lifecycle of a DSU update (paper §3) plus the VM services around it.
type Kind uint8

const (
	// KTrace is a routed VM.tracef diagnostic line (Str = the message).
	KTrace Kind = iota
	// KUpdateRequested marks an update arriving at the engine (Str = tag).
	KUpdateRequested
	// KSafePointAttempt is one safe-point attempt. Arg is the attempt
	// number; Str names the restricted method that blocked the attempt
	// (empty when the attempt succeeded — see KSafePointReached).
	KSafePointAttempt
	// KSafePointReached marks the DSU safe point (Arg = attempts taken).
	KSafePointReached
	// KBarrierInstalled marks a return barrier installed on the topmost
	// restricted frame of a thread (Str = method, Lane = thread lane).
	KBarrierInstalled
	// KBarrierFired marks a return barrier firing (Str = method, Lane =
	// thread lane); the update attempt restarts.
	KBarrierFired
	// KOSRRecompile marks an on-stack replacement of a frame (Str =
	// method; Arg = 1 for an UpStare-style active-method rewrite).
	KOSRRecompile
	// KPhaseBegin/KPhaseEnd bracket a named span (Str = phase name) on a
	// lane; the timeline renders them as duration slices. KPhaseEnd may
	// carry a payload in Arg (e.g. words copied by a GC worker).
	KPhaseBegin
	KPhaseEnd
	// KGCWorkerCopy summarizes one collection worker's copy work
	// (Lane = worker lane, Arg = words copied).
	KGCWorkerCopy
	// KGCWorkerSteal summarizes one worker's work-stealing deque pops
	// (Lane = worker lane, Arg = steals).
	KGCWorkerSteal
	// KTransformerApplied marks transformer work: Str is the class (or a
	// pass label), Arg the object count covered by the event.
	KTransformerApplied
	// KThreadStop/KThreadResume bracket a VM thread's share of the
	// stop-the-world window (Lane = thread lane).
	KThreadStop
	KThreadResume
	// KUpdateApplied / KUpdateAborted / KUpdateFailed are the terminal
	// outcomes (Str = reason for abort/failure).
	KUpdateApplied
	KUpdateAborted
	KUpdateFailed
)

var kindNames = [...]string{
	KTrace:              "trace",
	KUpdateRequested:    "update-requested",
	KSafePointAttempt:   "safe-point-attempt",
	KSafePointReached:   "safe-point-reached",
	KBarrierInstalled:   "barrier-installed",
	KBarrierFired:       "barrier-fired",
	KOSRRecompile:       "osr-recompile",
	KPhaseBegin:         "phase-begin",
	KPhaseEnd:           "phase-end",
	KGCWorkerCopy:       "gc-worker-copy",
	KGCWorkerSteal:      "gc-worker-steal",
	KTransformerApplied: "transformer-applied",
	KThreadStop:         "thread-stop",
	KThreadResume:       "thread-resume",
	KUpdateApplied:      "update-applied",
	KUpdateAborted:      "update-aborted",
	KUpdateFailed:       "update-failed",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Lane conventions: the timeline draws one track per lane. Lane 0 is the
// DSU engine/scheduler; 1..997 are GC workers; 998 is the concurrent
// relocation drain; 999 is the concurrent DSU marker; 1000+ are VM threads.
const (
	LaneEngine     int32 = 0
	laneGCBase     int32 = 1
	LaneReloc      int32 = 998
	LaneMark       int32 = 999
	laneThreadBase int32 = 1000
)

// LaneGCWorker returns the lane of collection worker i (0-based).
func LaneGCWorker(i int) int32 { return laneGCBase + int32(i) }

// LaneThread returns the lane of VM thread id tid.
func LaneThread(tid int) int32 { return laneThreadBase + int32(tid) }

// LaneName renders a lane's display name.
func LaneName(lane int32) string {
	switch {
	case lane == LaneEngine:
		return "DSU engine"
	case lane == LaneMark:
		return "DSU marker"
	case lane == LaneReloc:
		return "DSU relocator"
	case lane >= laneThreadBase:
		return fmt.Sprintf("VM thread %d", lane-laneThreadBase)
	default:
		return fmt.Sprintf("GC worker %d", lane-laneGCBase)
	}
}

// Event is one flight-recorder entry. TS is monotonic time since the
// recorder's start.
type Event struct {
	TS   time.Duration
	Kind Kind
	Lane int32
	Arg  int64
	Str  string
}

func (e Event) String() string {
	s := fmt.Sprintf("%12.3fms %-20s lane=%-4s", float64(e.TS.Nanoseconds())/1e6, e.Kind, LaneName(e.Lane))
	if e.Arg != 0 {
		s += fmt.Sprintf(" arg=%d", e.Arg)
	}
	if e.Str != "" {
		s += " " + e.Str
	}
	return s
}

// Recorder is the flight recorder: a fixed-capacity ring of events. All
// methods are safe for concurrent use (GC workers emit from goroutines),
// and every method is safe on a nil receiver — a nil *Recorder is the
// canonical "recording disabled" value.
type Recorder struct {
	on    atomic.Bool
	start time.Time

	mu    sync.Mutex
	buf   []Event
	next  int    // next write index
	total uint64 // events ever emitted (>= len(buf) once wrapped)
}

// DefaultCapacity is the ring size used when NewRecorder is given n <= 0.
const DefaultCapacity = 4096

// NewRecorder builds an enabled recorder with capacity n (DefaultCapacity
// when n <= 0).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultCapacity
	}
	r := &Recorder{start: time.Now(), buf: make([]Event, 0, n)}
	r.on.Store(true)
	return r
}

// Enabled reports whether emitted events are recorded.
func (r *Recorder) Enabled() bool { return r != nil && r.on.Load() }

// SetEnabled toggles recording without dropping buffered events.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.on.Store(on)
	}
}

// Start returns the instant TS values are measured from (zero time for a
// nil recorder).
func (r *Recorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Emit records one event. On a nil or disabled recorder it is a single
// nil check plus one atomic load — no locks, no allocations.
func (r *Recorder) Emit(k Kind, lane int32, arg int64, str string) {
	if r == nil || !r.on.Load() {
		return
	}
	e := Event{TS: time.Since(r.start), Kind: k, Lane: lane, Arg: arg, Str: str}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next++
	if r.next == cap(r.buf) {
		r.next = 0
	}
	r.total++
	r.mu.Unlock()
}

// Emitf records a KTrace event with a formatted message. Unlike Emit it
// pays for formatting, so callers should check Enabled first when the
// arguments are expensive to materialize.
func (r *Recorder) Emitf(lane int32, format string, args ...any) {
	if r == nil || !r.on.Load() {
		return
	}
	r.Emit(KTrace, lane, 0, fmt.Sprintf(format, args...))
}

// Total reports how many events have ever been emitted (including ones the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped reports how many emitted events the ring has overwritten — the
// recorder's loss count, published as govolve_obs_events_dropped_total and
// surfaced in trace metadata.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

// Events returns a chronological snapshot of the buffered events (oldest
// first). The slice is a copy; the caller owns it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *Recorder) snapshotLocked() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) || r.next == 0 {
		// Not wrapped (or exactly aligned): buf already chronological.
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Last returns the most recent n buffered events, oldest first.
func (r *Recorder) Last(n int) []Event {
	evs := r.Events()
	if n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Reset drops all buffered events and restarts the clock.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.total = 0
	r.start = time.Now()
	r.mu.Unlock()
}

// WriteEvents renders events as a human-readable listing, one per line —
// the format storm failure reports embed.
func WriteEvents(w io.Writer, events []Event) {
	for _, e := range events {
		fmt.Fprintf(w, "  %s\n", e)
	}
}
