package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func ev(ts time.Duration, k Kind, lane int32, arg int64, str string) Event {
	return Event{TS: ts, Kind: k, Lane: lane, Arg: arg, Str: str}
}

func TestBuildTracePairsSpans(t *testing.T) {
	events := []Event{
		ev(0, KUpdateRequested, LaneEngine, 0, "2"),
		ev(1*time.Millisecond, KSafePointAttempt, LaneEngine, 1, "Srv.handle()V"),
		ev(2*time.Millisecond, KSafePointAttempt, LaneEngine, 2, ""),
		ev(2*time.Millisecond, KSafePointReached, LaneEngine, 2, ""),
		ev(2*time.Millisecond, KThreadStop, LaneThread(1), 0, "dsu pause"),
		ev(2*time.Millisecond, KPhaseBegin, LaneEngine, 0, "update pause"),
		ev(2*time.Millisecond, KPhaseBegin, LaneEngine, 0, "install"),
		ev(3*time.Millisecond, KPhaseEnd, LaneEngine, 0, "install"),
		ev(3*time.Millisecond, KPhaseBegin, LaneEngine, 0, "gc"),
		ev(3*time.Millisecond, KPhaseBegin, LaneGCWorker(0), 0, "gc copy/scan"),
		ev(5*time.Millisecond, KPhaseEnd, LaneGCWorker(0), 900, "gc copy/scan"),
		ev(5*time.Millisecond, KPhaseEnd, LaneEngine, 0, "gc"),
		ev(6*time.Millisecond, KPhaseEnd, LaneEngine, 0, "update pause"),
		ev(6*time.Millisecond, KThreadResume, LaneThread(1), 0, "dsu pause"),
		ev(6*time.Millisecond, KUpdateApplied, LaneEngine, 2, ""),
	}
	doc := BuildTrace(events)

	type found struct{ x, i int }
	byName := map[string]*found{}
	for _, e := range doc.TraceEvents {
		f := byName[e.Name]
		if f == nil {
			f = &found{}
			byName[e.Name] = f
		}
		switch e.Ph {
		case "X":
			f.x++
			if e.Dur < 0 {
				t.Errorf("span %q has negative duration %v", e.Name, e.Dur)
			}
		case "i":
			f.i++
		}
	}
	for _, span := range []string{"update pause", "install", "gc", "gc copy/scan", "stopped"} {
		if byName[span] == nil || byName[span].x != 1 {
			t.Errorf("span %q: %+v, want exactly one X event", span, byName[span])
		}
	}
	if byName["safe-point attempt"] == nil || byName["safe-point attempt"].i != 2 {
		t.Errorf("safe-point attempt instants: %+v", byName["safe-point attempt"])
	}
	if byName["update applied"] == nil || byName["update applied"].i != 1 {
		t.Errorf("update applied instant missing")
	}

	// Nested spans on the engine lane: "install" must sit inside
	// "update pause".
	var outer, inner *TraceEvent
	for i := range doc.TraceEvents {
		e := &doc.TraceEvents[i]
		if e.Ph != "X" {
			continue
		}
		switch e.Name {
		case "update pause":
			outer = e
		case "install":
			inner = e
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("missing nested spans")
	}
	if inner.TS < outer.TS || inner.TS+inner.Dur > outer.TS+outer.Dur {
		t.Fatalf("install span [%v,%v] escapes update pause [%v,%v]",
			inner.TS, inner.TS+inner.Dur, outer.TS, outer.TS+outer.Dur)
	}

	// Metadata: process name plus one thread_name per lane used.
	lanes := map[int32]bool{LaneEngine: true, LaneGCWorker(0): true, LaneThread(1): true}
	named := map[int32]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			named[e.TID] = true
		}
	}
	for lane := range lanes {
		if !named[lane] {
			t.Errorf("lane %d has no thread_name metadata", lane)
		}
	}
}

func TestBuildTraceToleratesRingLoss(t *testing.T) {
	// An end without its begin (begin was overwritten): dropped. A begin
	// without its end (end not yet emitted): closed at the last timestamp.
	events := []Event{
		ev(1*time.Millisecond, KPhaseEnd, LaneEngine, 0, "lost-begin"),
		ev(2*time.Millisecond, KPhaseBegin, LaneEngine, 0, "dangling"),
		ev(9*time.Millisecond, KTrace, LaneEngine, 0, "late instant"),
	}
	doc := BuildTrace(events)
	for _, e := range doc.TraceEvents {
		if e.Name == "lost-begin" {
			t.Fatalf("unmatched end produced an event: %+v", e)
		}
	}
	var dangling *TraceEvent
	for i := range doc.TraceEvents {
		if doc.TraceEvents[i].Name == "dangling" {
			dangling = &doc.TraceEvents[i]
		}
	}
	if dangling == nil || dangling.Ph != "X" {
		t.Fatalf("dangling begin not closed: %+v", dangling)
	}
	if got, want := dangling.TS+dangling.Dur, 9000.0; got != want {
		t.Fatalf("dangling span closed at %v µs, want last TS %v", got, want)
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	events := []Event{
		ev(0, KPhaseBegin, LaneEngine, 0, "install"),
		ev(time.Millisecond, KPhaseEnd, LaneEngine, 0, "install"),
		ev(time.Millisecond, KOSRRecompile, LaneEngine, 1, "A.m()V"),
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	// Every event carries the Chrome-required fields.
	for _, e := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event %v missing %q", e, k)
			}
		}
	}
	// The active rewrite renders under its own name.
	foundOSR := false
	for _, e := range doc.TraceEvents {
		if e["name"] == "active-method rewrite" {
			foundOSR = true
		}
	}
	if !foundOSR {
		t.Fatal("KOSRRecompile with Arg=1 did not render as active-method rewrite")
	}
}

func TestRecorderBuildTraceCarriesLossMetadata(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 9; i++ {
		r.Emit(KTrace, LaneEngine, int64(i), "")
	}
	doc := r.BuildTrace()
	if doc.Metadata["events_total"] != uint64(9) {
		t.Fatalf("events_total = %v", doc.Metadata["events_total"])
	}
	if doc.Metadata["events_dropped"] != uint64(5) {
		t.Fatalf("events_dropped = %v", doc.Metadata["events_dropped"])
	}
	var b strings.Builder
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if parsed.Metadata["events_dropped"] != float64(5) {
		t.Fatalf("serialized metadata %+v", parsed.Metadata)
	}
}
