package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCompareAllComparators walks every comparator over below/equal/above
// readings, plus the fail-closed path for an unknown comparator.
func TestCompareAllComparators(t *testing.T) {
	cases := []struct {
		cmp                 Comparator
		below, equal, above bool // compare(obs, cmp, 5) for obs = 4, 5, 6
	}{
		{CmpLE, true, true, false},
		{CmpLT, true, false, false},
		{CmpGE, false, true, true},
		{CmpGT, false, false, true},
		{CmpEQ, false, true, false},
		{CmpNE, true, false, true},
		{Comparator("~="), false, false, false}, // unknown fails closed
	}
	for _, c := range cases {
		if got := compare(4, c.cmp, 5); got != c.below {
			t.Errorf("compare(4, %q, 5) = %v, want %v", c.cmp, got, c.below)
		}
		if got := compare(5, c.cmp, 5); got != c.equal {
			t.Errorf("compare(5, %q, 5) = %v, want %v", c.cmp, got, c.equal)
		}
		if got := compare(6, c.cmp, 5); got != c.above {
			t.Errorf("compare(6, %q, 5) = %v, want %v", c.cmp, got, c.above)
		}
	}
}

func TestGateEvalDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("evil_total")
	c.Add(3)
	before := reg.TakeSnapshot()
	c.Add(2)
	after := reg.TakeSnapshot()

	spec := GateSpec{Name: "g", Metric: "evil_total", Agg: AggDelta, Cmp: CmpLE, Threshold: 0}
	res := spec.eval(before, nil, after)
	if res.Pass || res.Observed != 2 || res.Samples != 1 || res.Vacuous {
		t.Fatalf("delta result %+v", res)
	}

	// Counter reset: before=5, after=3 → the window can only vouch for the
	// after-value (3), Prometheus-rate style.
	res = spec.eval(after, nil, before) // swapped: "before" holds the larger count
	if res.Observed != 3 {
		t.Fatalf("reset delta observed %v, want after-value 3", res.Observed)
	}

	// Absent metric → vacuous pass.
	res = GateSpec{Name: "g", Metric: "missing", Agg: AggDelta, Cmp: CmpLE}.eval(before, nil, after)
	if !res.Pass || !res.Vacuous || res.Samples != 0 {
		t.Fatalf("absent-metric delta %+v", res)
	}

	// Nil after snapshot → vacuous too.
	res = spec.eval(before, nil, nil)
	if !res.Pass || !res.Vacuous {
		t.Fatalf("nil-after delta %+v", res)
	}
}

func TestGateEvalValueAndMax(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("backlog")
	g.Set(10)
	before := reg.TakeSnapshot()
	g.Set(70)
	during := reg.TakeSnapshot()
	g.Set(40)
	after := reg.TakeSnapshot()

	res := GateSpec{Name: "v", Metric: "backlog", Agg: AggValue, Cmp: CmpLE, Threshold: 50}.eval(before, during, after)
	if !res.Pass || res.Observed != 40 || res.Samples != 1 {
		t.Fatalf("value result %+v", res)
	}
	res = GateSpec{Name: "m", Metric: "backlog", Agg: AggMax, Cmp: CmpLE, Threshold: 50}.eval(before, during, after)
	if res.Pass || res.Observed != 70 || res.Samples != 3 {
		t.Fatalf("max result %+v (should see the during-spike)", res)
	}
	// Counters read through AggValue too (gaugeOrCounter).
	reg.Counter("hits_total").Add(7)
	s := reg.TakeSnapshot()
	res = GateSpec{Name: "c", Metric: "hits_total", Agg: AggValue, Cmp: CmpEQ, Threshold: 7}.eval(nil, nil, s)
	if !res.Pass || res.Observed != 7 {
		t.Fatalf("counter-as-value %+v", res)
	}
	// Metric absent everywhere → vacuous.
	res = GateSpec{Name: "m", Metric: "nope", Agg: AggMax, Cmp: CmpLE}.eval(before, during, after)
	if !res.Pass || !res.Vacuous {
		t.Fatalf("absent max %+v", res)
	}
}

func TestGateEvalHistogramWindow(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{1, 2, 4, 8})
	h.Observe(7) // pre-window outlier: must not leak into the window
	before := reg.TakeSnapshot()

	// Empty window: no observations between the snapshots.
	empty := reg.TakeSnapshot()
	for _, agg := range []Aggregation{AggP50, AggP99} {
		res := GateSpec{Name: "q", Metric: "lat", Agg: agg, Cmp: CmpLE, Threshold: 0.1}.eval(before, nil, empty)
		if !res.Pass || !res.Vacuous || res.Samples != 0 {
			t.Fatalf("empty-window %s %+v", agg, res)
		}
	}
	// Sum/count gates read an empty window as a measured 0, not vacuous.
	res := GateSpec{Name: "s", Metric: "lat", Agg: AggCount, Cmp: CmpLE, Threshold: 0}.eval(before, nil, empty)
	if !res.Pass || res.Vacuous || res.Observed != 0 {
		t.Fatalf("empty-window count %+v", res)
	}

	// Single in-window sample: quantiles must reflect it alone, ignoring the
	// pre-window 7.
	h.Observe(3)
	one := reg.TakeSnapshot()
	res = GateSpec{Name: "q", Metric: "lat", Agg: AggP99, Cmp: CmpLE, Threshold: 4}.eval(before, nil, one)
	if !res.Pass || res.Samples != 1 || res.Observed <= 2 || res.Observed > 4 {
		t.Fatalf("single-sample p99 %+v, want in (2,4]", res)
	}

	// Multi-sample window: sum and count are the window's own deltas.
	h.Observe(1.5)
	h.Observe(0.5)
	many := reg.TakeSnapshot()
	res = GateSpec{Name: "s", Metric: "lat", Agg: AggSum, Cmp: CmpLE, Threshold: 5}.eval(before, nil, many)
	if !res.Pass || res.Observed != 5 || res.Samples != 3 {
		t.Fatalf("window sum %+v, want 3+1.5+0.5=5 over 3 samples", res)
	}
	res = GateSpec{Name: "n", Metric: "lat", Agg: AggCount, Cmp: CmpGT, Threshold: 2}.eval(before, nil, many)
	if !res.Pass || res.Observed != 3 {
		t.Fatalf("window count %+v", res)
	}

	// Histogram counter reset: window falls back to the later snapshot.
	res = GateSpec{Name: "s", Metric: "lat", Agg: AggCount, Cmp: CmpEQ, Threshold: 1}.eval(many, nil, before)
	if !res.Pass || res.Observed != 1 {
		t.Fatalf("reset window %+v, want fallback to later snapshot's count 1", res)
	}
}

func TestGateEvalUnknownAggregationFailsClosed(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("x").Set(1)
	s := reg.TakeSnapshot()
	res := GateSpec{Name: "u", Metric: "x", Agg: Aggregation("median"), Cmp: CmpLE, Threshold: 99}.eval(s, s, s)
	if res.Pass {
		t.Fatalf("unknown aggregation passed: %+v", res)
	}
}

func TestHistSnapshotDeltaEdges(t *testing.T) {
	a := HistSnapshot{Count: 5, Sum: 10, Bounds: []float64{1, 2}, Buckets: []int64{2, 2, 1}}
	b := HistSnapshot{Count: 8, Sum: 16, Bounds: []float64{1, 2}, Buckets: []int64{3, 3, 2}}
	d := b.Delta(a)
	if d.Count != 3 || d.Sum != 6 {
		t.Fatalf("delta %+v", d)
	}
	for i, want := range []int64{1, 1, 1} {
		if d.Buckets[i] != want {
			t.Fatalf("delta bucket[%d] = %d, want %d", i, d.Buckets[i], want)
		}
	}
	// Count regression → the earlier snapshot is unusable; later one wins.
	if d := a.Delta(b); d.Count != a.Count {
		t.Fatalf("reset delta count %d, want later snapshot's %d", d.Count, a.Count)
	}
	// Bucket-shape mismatch → same fallback.
	c := HistSnapshot{Count: 1, Bounds: []float64{1}, Buckets: []int64{1, 0}}
	if d := b.Delta(c); d.Count != b.Count {
		t.Fatalf("shape-mismatch delta count %d, want %d", d.Count, b.Count)
	}
}

func TestGateEngineVerdictRing(t *testing.T) {
	reg := NewRegistry()
	specs := []GateSpec{{Name: "g", Metric: "x", Agg: AggValue, Cmp: CmpLE, Threshold: 2}}
	ge := NewGateEngine(specs, 3, reg)

	for i := 1; i <= 5; i++ {
		reg.Gauge("x").Set(float64(i)) // 1,2 pass; 3,4,5 fail
		v := ge.Evaluate("v"+string(rune('0'+i)), "applied", nil, nil, reg.TakeSnapshot())
		if v == nil || v.Seq != int64(i) {
			t.Fatalf("verdict %d: %+v", i, v)
		}
	}
	if ge.Total() != 5 {
		t.Fatalf("total %d", ge.Total())
	}
	vs := ge.Verdicts()
	if len(vs) != 3 {
		t.Fatalf("ring kept %d, want 3", len(vs))
	}
	for i, want := range []int64{3, 4, 5} { // oldest first, 1 and 2 overwritten
		if vs[i].Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d", i, vs[i].Seq, want)
		}
	}
	if last := ge.Last(); last.Seq != 5 || last.Pass || last.Violated != "g" {
		t.Fatalf("last %+v", last)
	}
	pass, fail := ge.Counts()
	if pass != 0 || fail != 3 {
		t.Fatalf("counts pass=%d fail=%d over the buffered tail", pass, fail)
	}

	// Gate series published into the registry.
	if got := reg.Counter(MGateEvaluations).Value(); got != 5 {
		t.Fatalf("%s = %d", MGateEvaluations, got)
	}
	if got := reg.Counter(MGatePass).Value(); got != 2 {
		t.Fatalf("%s = %d", MGatePass, got)
	}
	if got := reg.Counter(MGateFail).Value(); got != 3 {
		t.Fatalf("%s = %d", MGateFail, got)
	}
	if got := reg.Gauge(MGateLastPass).Value(); got != 0 {
		t.Fatalf("%s = %v", MGateLastPass, got)
	}
}

func TestGateEngineNilSafety(t *testing.T) {
	var ge *GateEngine
	if v := ge.Evaluate("t", "applied", nil, nil, nil); v != nil {
		t.Fatalf("nil engine evaluated: %+v", v)
	}
	if ge.Verdicts() != nil || ge.Last() != nil || ge.Total() != 0 {
		t.Fatal("nil engine leaked state")
	}
	var nilReg *Registry
	s := nilReg.TakeSnapshot()
	if s == nil || len(s.Counters) != 0 {
		t.Fatalf("nil-registry snapshot %+v", s)
	}
}

func TestDefaultGateSpecsAllGreen(t *testing.T) {
	// A quiet registry (no failures, no backlog, no latency samples) passes
	// every stock gate — vacuously where there is no evidence.
	reg := NewRegistry()
	reg.Counter(MUpdatesApplied).Add(1)
	s := reg.TakeSnapshot()
	ge := NewGateEngine(nil, 0, reg)
	v := ge.Evaluate("v1", "applied", s, s, s)
	if !v.Pass || v.Violated != "" {
		t.Fatalf("all-green verdict %+v", v)
	}
	if len(v.Results) != len(DefaultGateSpecs()) {
		t.Fatalf("results %d, want one per default spec", len(v.Results))
	}
	if !strings.Contains(v.String(), "PASS") {
		t.Fatalf("String() = %q", v.String())
	}
}

func TestVerdictFingerprintExcludesWallClock(t *testing.T) {
	specs := []GateSpec{
		{Name: "pause", Metric: MPauseTotal, Agg: AggSum, Cmp: CmpLE, Threshold: 10, WallClock: true},
		{Name: "fails", Metric: MUpdatesFailed, Agg: AggDelta, Cmp: CmpLE, Threshold: 0},
	}
	mk := func(pause float64) *Verdict {
		reg := NewRegistry()
		before := reg.TakeSnapshot()
		reg.Histogram(MPauseTotal, DurationBuckets()).Observe(pause)
		ge := NewGateEngine(specs, 0, nil)
		return ge.Evaluate("v1", "applied", before, nil, reg.TakeSnapshot())
	}
	a, b := mk(0.003), mk(0.007) // same pass bits, different wall-clock readings
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("wall-clock observation leaked into fingerprint:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
	if !strings.Contains(a.Fingerprint(), "fails:pass=true,obs=0") {
		t.Fatalf("non-wall-clock observation missing: %s", a.Fingerprint())
	}
	if strings.Contains(a.Fingerprint(), "pause:pass=true,obs") {
		t.Fatalf("wall-clock gate carries an observation: %s", a.Fingerprint())
	}
}

func TestGateEngineWriteJSON(t *testing.T) {
	reg := NewRegistry()
	ge := NewGateEngine(nil, 0, reg)
	ge.Evaluate("v1", "applied", nil, nil, reg.TakeSnapshot())

	var b strings.Builder
	if err := ge.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Specs    []GateSpec `json:"specs"`
		Total    int64      `json:"total"`
		Verdicts []*Verdict `json:"verdicts"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if doc.Total != 1 || len(doc.Verdicts) != 1 || len(doc.Specs) != len(DefaultGateSpecs()) {
		t.Fatalf("doc total=%d verdicts=%d specs=%d", doc.Total, len(doc.Verdicts), len(doc.Specs))
	}
	if !doc.Verdicts[0].Pass {
		t.Fatalf("verdict %+v", doc.Verdicts[0])
	}
}
