package obs

// Health gates: declarative per-update acceptance checks evaluated over
// metric snapshots bracketing a DSU update. A gate names a metric in the
// registry, an aggregation over the before/during/after snapshot window,
// a comparator and a threshold; the gate PASSES when
//
//	observed  <cmp>  threshold
//
// holds. The DSU engine (internal/core) takes the three snapshots — before
// at the update request, during at the DSU safe point, after when the
// request seals — and asks the GateEngine (verdict.go) to evaluate every
// gate, producing one Verdict per update. This is the judgment layer the
// paper leaves out: pause time alone says nothing about whether an update
// is operationally acceptable; error-rate, latency and drain-backlog gates
// do (the per-update acceptance discipline Shen & Bazzi's
// backward-compatibility conditions call for, made enforceable at runtime).

import (
	"fmt"
	"math"
)

// Aggregation selects how a gate reads its metric out of the snapshot
// window.
type Aggregation string

const (
	// AggDelta is a counter's increase across the window (after - before),
	// reset-aware: a counter that went backwards (process restart, registry
	// swap) contributes its after-value, Prometheus-rate style.
	AggDelta Aggregation = "delta"
	// AggValue is the gauge (or counter) value at the closing snapshot.
	AggValue Aggregation = "value"
	// AggMax is the maximum gauge value across the snapshots present —
	// the right read for a backlog sampled before, during and after.
	AggMax Aggregation = "max"
	// AggP50 / AggP99 are bucket-interpolated quantiles of the histogram's
	// window delta (only observations recorded inside the window count).
	// An empty window passes the gate vacuously.
	AggP50 Aggregation = "p50"
	AggP99 Aggregation = "p99"
	// AggSum is the histogram's sum increase across the window.
	AggSum Aggregation = "sum"
	// AggCount is the histogram's observation-count increase.
	AggCount Aggregation = "count"
)

// Comparator relates the observed value to the threshold.
type Comparator string

const (
	CmpLE Comparator = "<="
	CmpLT Comparator = "<"
	CmpGE Comparator = ">="
	CmpGT Comparator = ">"
	CmpEQ Comparator = "=="
	CmpNE Comparator = "!="
)

// compare applies a comparator. Unknown comparators fail closed (the gate
// reads as violated), so a typo in a spec is loud rather than vacuous.
func compare(observed float64, cmp Comparator, threshold float64) bool {
	switch cmp {
	case CmpLE:
		return observed <= threshold
	case CmpLT:
		return observed < threshold
	case CmpGE:
		return observed >= threshold
	case CmpGT:
		return observed > threshold
	case CmpEQ:
		return observed == threshold
	case CmpNE:
		return observed != threshold
	default:
		return false
	}
}

// GateSpec is one declarative health gate.
type GateSpec struct {
	// Name identifies the gate in verdicts ("pause-budget").
	Name string `json:"name"`
	// Metric is the registry instrument the gate reads (an M* constant).
	Metric string `json:"metric"`
	// Agg is the window aggregation.
	Agg Aggregation `json:"agg"`
	// Cmp relates observed to Threshold; the gate passes when it holds.
	Cmp Comparator `json:"cmp"`
	// Threshold is the acceptance bound.
	Threshold float64 `json:"threshold"`
	// WallClock marks gates whose observed value depends on real time
	// (pause durations, latencies). Determinism fingerprints include such
	// gates' pass/fail but exclude their observed values.
	WallClock bool `json:"wall_clock,omitempty"`
}

func (s GateSpec) String() string {
	return fmt.Sprintf("%s: %s %s %s %g", s.Name, s.Metric, s.Agg, s.Cmp, s.Threshold)
}

// Snapshot is a point-in-time copy of a registry's instruments, the unit
// the gate window is made of. TakeSnapshot on a nil registry returns an
// empty (non-nil) snapshot, so gate evaluation is always defined.
type Snapshot struct {
	Counters map[string]int64        `json:"counters"`
	Gauges   map[string]float64      `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"histograms"`
}

// TakeSnapshot copies the registry's current state.
func (r *Registry) TakeSnapshot() *Snapshot {
	s := &Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Hists[n] = h.Snapshot()
	}
	return s
}

// gaugeOrCounter reads a metric as a float from a snapshot, gauges first.
func (s *Snapshot) gaugeOrCounter(name string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	if v, ok := s.Gauges[name]; ok {
		return v, true
	}
	if v, ok := s.Counters[name]; ok {
		return float64(v), true
	}
	return 0, false
}

// Delta subtracts a previous histogram snapshot bucket-wise, yielding the
// window's own observations. A counter reset (count went backwards) or a
// bucket-shape mismatch makes the earlier snapshot unusable; the window
// then falls back to the later snapshot outright — the same clamp AggDelta
// applies to plain counters.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	if s.Count < prev.Count || len(prev.Buckets) != len(s.Buckets) {
		return s
	}
	d := HistSnapshot{
		Count:   s.Count - prev.Count,
		Sum:     s.Sum - prev.Sum,
		Bounds:  s.Bounds,
		Buckets: make([]int64, len(s.Buckets)),
	}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
		if d.Buckets[i] < 0 {
			// Per-bucket reset without a count reset cannot happen with our
			// monotonic histograms; clamp defensively.
			d.Buckets[i] = 0
		}
	}
	d.P50 = d.Quantile(0.5)
	d.P99 = d.Quantile(0.99)
	return d
}

// Quantile estimates the p-quantile from the snapshot's buckets by the same
// linear interpolation the live histogram uses. Zero observations yield 0;
// samples beyond the last bound report the last bound.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := p * float64(s.Count)
	cum := int64(0)
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := lo
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return s.Bounds[len(s.Bounds)-1]
}

// GateResult is one gate's reading over one update's window.
type GateResult struct {
	Gate      string      `json:"gate"`
	Metric    string      `json:"metric"`
	Agg       Aggregation `json:"agg"`
	Cmp       Comparator  `json:"cmp"`
	Threshold float64     `json:"threshold"`
	// Observed is the aggregated reading the comparator judged.
	Observed float64 `json:"observed"`
	// Samples is how much evidence the window held: histogram observations
	// for quantile/sum/count gates, 1 for a present gauge/counter, 0 when
	// the window was empty or the metric absent.
	Samples int64 `json:"samples"`
	// Vacuous marks a pass granted for lack of evidence (empty quantile
	// window, absent metric) rather than a measured one.
	Vacuous bool `json:"vacuous,omitempty"`
	// WallClock is copied from the spec (see GateSpec.WallClock).
	WallClock bool `json:"wall_clock,omitempty"`
	Pass      bool `json:"pass"`
}

// eval reads one gate over a snapshot window. Any of the snapshots may be
// nil (treated as empty).
func (spec GateSpec) eval(before, during, after *Snapshot) GateResult {
	res := GateResult{
		Gate: spec.Name, Metric: spec.Metric, Agg: spec.Agg,
		Cmp: spec.Cmp, Threshold: spec.Threshold, WallClock: spec.WallClock,
	}
	switch spec.Agg {
	case AggValue:
		v, ok := after.gaugeOrCounter(spec.Metric)
		if !ok {
			res.Vacuous, res.Pass = true, true
			return res
		}
		res.Observed, res.Samples = v, 1
	case AggMax:
		found := false
		max := math.Inf(-1)
		for _, s := range []*Snapshot{before, during, after} {
			if v, ok := s.gaugeOrCounter(spec.Metric); ok {
				found = true
				if v > max {
					max = v
				}
				res.Samples++
			}
		}
		if !found {
			res.Vacuous, res.Pass = true, true
			return res
		}
		res.Observed = max
	case AggDelta:
		var b, a int64
		okA := false
		if before != nil {
			b = before.Counters[spec.Metric]
		}
		if after != nil {
			a, okA = after.Counters[spec.Metric]
		}
		if !okA {
			res.Vacuous, res.Pass = true, true
			return res
		}
		d := a - b
		if d < 0 {
			d = a // counter reset: the window can only vouch for the after-value
		}
		res.Observed, res.Samples = float64(d), 1
	case AggP50, AggP99, AggSum, AggCount:
		var hb, ha HistSnapshot
		okA := false
		if before != nil {
			hb = before.Hists[spec.Metric]
		}
		if after != nil {
			ha, okA = after.Hists[spec.Metric]
		}
		if !okA {
			res.Vacuous, res.Pass = true, true
			return res
		}
		w := ha.Delta(hb)
		res.Samples = w.Count
		switch spec.Agg {
		case AggP50:
			if w.Count == 0 {
				res.Vacuous, res.Pass = true, true
				return res
			}
			res.Observed = w.P50
		case AggP99:
			if w.Count == 0 {
				res.Vacuous, res.Pass = true, true
				return res
			}
			res.Observed = w.P99
		case AggSum:
			res.Observed = w.Sum
		case AggCount:
			res.Observed = float64(w.Count)
		}
	default:
		// Unknown aggregation: fail closed, like an unknown comparator.
		res.Pass = false
		return res
	}
	res.Pass = compare(res.Observed, spec.Cmp, spec.Threshold)
	return res
}

// DefaultGateSpecs is the stock per-update acceptance policy: no update may
// fail or abort, the pause must stay inside a generous wall-clock budget,
// request latency must hold its SLO when traffic flowed during the window,
// and no drain backlog may grow past its bound. The wall-clock thresholds
// are deliberately loose — budgets, not benchmarks — so an all-green run
// PASSES deterministically on any host while a real regression still trips.
func DefaultGateSpecs() []GateSpec {
	return []GateSpec{
		{Name: "update-failed", Metric: MUpdatesFailed, Agg: AggDelta, Cmp: CmpLE, Threshold: 0},
		{Name: "update-aborted", Metric: MUpdatesAborted, Agg: AggDelta, Cmp: CmpLE, Threshold: 0},
		{Name: "pause-budget", Metric: MPauseTotal, Agg: AggSum, Cmp: CmpLE, Threshold: 2.0, WallClock: true},
		{Name: "latency-p99", Metric: MRequestLatency, Agg: AggP99, Cmp: CmpLE, Threshold: 0.25, WallClock: true},
		{Name: "lazy-backlog", Metric: MStreamBacklog, Agg: AggValue, Cmp: CmpLE, Threshold: 1 << 20},
		{Name: "reloc-backlog", Metric: MRelocBacklog, Agg: AggValue, Cmp: CmpLE, Threshold: 1 << 26},
	}
}
