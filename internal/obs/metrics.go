package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics registry: named counters (monotonic), gauges (point-in-time),
// and fixed-bucket histograms, snapshotted as JSON or Prometheus text
// exposition. Construction is lock-guarded and idempotent (get-or-create);
// updates are lock-free atomics so the VM and the parallel collector can
// record without contending.
//
// Every accessor is nil-receiver safe: a nil *Registry hands back nil
// instruments whose update methods no-op, so instrumentation sites read
//
//	reg.Counter("x").Add(1)
//
// with no enabled check.

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (no-op on nil).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Bounds are upper bounds of the
// cumulative-style buckets (a +Inf bucket is implicit); Observe is a binary
// search plus three atomic adds.
type Histogram struct {
	bounds []float64      // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DurationBuckets are the default histogram bounds for durations measured
// in seconds: roughly exponential from 1µs to 10s, fine enough that a
// median or p99 read from the buckets is meaningful for DSU pauses.
func DurationBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 2.5e-1, 5e-1,
		1, 2.5, 5, 10,
	}
}

// CountBuckets are default bounds for small-integer distributions
// (safe-point attempts, barrier counts).
func CountBuckets() []float64 {
	return []float64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377}
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count reports total observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the p-quantile (0..1) from the buckets by linear
// interpolation inside the containing bucket. It returns 0 with no
// observations; samples beyond the last bound report the last bound.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// HistSnapshot is one histogram's JSON form.
type HistSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // per-bucket (non-cumulative); last is +Inf
	P50     float64   `json:"p50"`
	P99     float64   `json:"p99"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count:  h.Count(),
		Sum:    h.Sum(),
		Bounds: append([]float64(nil), h.bounds...),
		P50:    h.Quantile(0.5),
		P99:    h.Quantile(0.99),
	}
	s.Buckets = make([]int64, len(h.counts))
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// Registry is the named-instrument table.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry. Names should be Prometheus-compatible (snake_case).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the given
// bucket bounds (DurationBuckets when nil); nil on a nil registry. The
// bounds of the first creation win.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		if bounds == nil {
			bounds = DurationBuckets()
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// WriteJSON writes the whole registry as one indented JSON document:
// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Counters   map[string]int64        `json:"counters"`
		Gauges     map[string]float64      `json:"gauges"`
		Histograms map[string]HistSnapshot `json:"histograms"`
	}{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r != nil {
		r.mu.Lock()
		for n, c := range r.counters {
			doc.Counters[n] = c.Value()
		}
		for n, g := range r.gauges {
			doc.Gauges[n] = g.Value()
		}
		for n, h := range r.hists {
			doc.Histograms[n] = h.Snapshot()
		}
		r.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// formatFloat renders a float the Prometheus exposition way.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE comments for every series,
// counters/gauges as bare samples, histograms as cumulative
// _bucket{le=...} series plus _sum and _count. A govolve_build_info series
// is synthesized on every exposition so scrapes always carry the build
// identity.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	hists := make(map[string]HistSnapshot, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h.Snapshot()
	}
	r.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s{go=%q,module=\"govolve\"} 1\n",
		MBuildInfo, MetricHelp(MBuildInfo), MBuildInfo, MBuildInfo, runtime.Version())
	for _, n := range sortedKeys(counters) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", n, MetricHelp(n), n, n, counters[n])
	}
	for _, n := range sortedKeys(gauges) {
		if n == MBuildInfo {
			continue // synthesized above with labels
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", n, MetricHelp(n), n, n, formatFloat(gauges[n]))
	}
	for _, n := range sortedKeys(hists) {
		s := hists[n]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", n, MetricHelp(n), n)
		cum := int64(0)
		for i, bound := range s.Bounds {
			cum += s.Buckets[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, formatFloat(bound), cum)
		}
		cum += s.Buckets[len(s.Buckets)-1]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(&b, "%s_sum %s\n", n, formatFloat(s.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", n, s.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Canonical metric names used across the VM and the DSU engine. They live
// here so emitters and dashboards agree on spelling.
const (
	MSafePointDelay   = "govolve_dsu_safe_point_delay_seconds"
	MPauseInstall     = "govolve_dsu_pause_install_seconds"
	MPauseGC          = "govolve_dsu_pause_gc_seconds"
	MPauseTransform   = "govolve_dsu_pause_transform_seconds"
	MPauseBulk        = "govolve_dsu_pause_transform_bulk_seconds"
	MPauseTotal       = "govolve_dsu_pause_total_seconds"
	MPauseGCMark      = "govolve_dsu_pause_gc_mark_seconds"
	MPauseGCRescan    = "govolve_dsu_pause_gc_rescan_seconds"
	MPauseGCCopy      = "govolve_dsu_pause_gc_copy_seconds"
	MMarkOutside      = "govolve_dsu_mark_outside_pause_seconds"
	MAttempts         = "govolve_dsu_attempts_to_safe_point"
	MUpdatesApplied   = "govolve_dsu_updates_applied_total"
	MUpdatesAborted   = "govolve_dsu_updates_aborted_total"
	MUpdatesFailed    = "govolve_dsu_updates_failed_total"
	MBarriers         = "govolve_dsu_barriers_installed_total"
	MOSRFrames        = "govolve_dsu_osr_frames_total"
	MLazyPending      = "govolve_dsu_lazy_pending_total"
	MLazyDrained      = "govolve_dsu_lazy_drained_total"
	MLazyForced       = "govolve_dsu_lazy_forced_total"
	MLazyDrainLatency = "govolve_dsu_lazy_drain_latency_seconds"
	MObjectsCopied    = "govolve_gc_copied_objects_total"
	MPairsLogged      = "govolve_gc_dsu_pairs_logged_total"
	MGCSteals         = "govolve_gc_steals_total"
	MRequestLatency   = "govolve_request_latency_seconds"
	MInstructions     = "govolve_vm_instructions_total"
	MSlices           = "govolve_vm_slices_total"
	MThreadsLive      = "govolve_vm_threads_live"
	MThreadsBlocked   = "govolve_vm_threads_blocked"
	MRunnableQueue    = "govolve_vm_runnable_queue"
	MHeapAllocObjects = "govolve_vm_alloc_objects_total"
	MHeapAllocArrays  = "govolve_vm_alloc_arrays_total"
	MGCCollections    = "govolve_gc_collections_total"

	// Concurrent-relocation plane (vm.Options.ConcurrentReloc): objects the
	// drain evacuated outside the pause, slots healed back to canonical
	// addresses (mutator barrier + drain fixup), the live drain backlog
	// gauge, and the drain's wall-clock latency distribution.
	MRelocObjects      = "govolve_dsu_reloc_objects_total"
	MRelocHealedSlots  = "govolve_dsu_reloc_healed_slots_total"
	MRelocBacklog      = "govolve_dsu_reloc_backlog"
	MRelocDrainLatency = "govolve_dsu_reloc_drain_latency_seconds"

	// Stream (long-horizon version-chain) plane: updates sustained over the
	// chain, generator batches UPT legally refused, and the lazy drain
	// backlog sampled after every chain step. Per-step pause distributions
	// ride the existing MPause* histograms, which the engine feeds whenever
	// a registry is attached.
	MStreamUpdates  = "govolve_stream_updates_sustained_total"
	MStreamRejected = "govolve_stream_batches_rejected_total"
	MStreamBacklog  = "govolve_stream_drain_backlog"

	// Gate/verdict plane (gate.go, verdict.go): per-update health-gate
	// evaluations and their outcomes, plus a last-verdict gauge a scrape
	// alert can key on directly.
	MGateEvaluations = "govolve_gate_evaluations_total"
	MGatePass        = "govolve_gate_pass_total"
	MGateFail        = "govolve_gate_fail_total"
	MGateViolations  = "govolve_gate_violations_total"
	MGateLastPass    = "govolve_gate_last_pass"

	// JIT/tier plane: per-tier compile activity, trace promotions into the
	// fused tier, DSU code invalidations by reason (method-body swap,
	// layout/TIB dependency, inlined-callee change), inline-cache dispatch
	// outcomes and install-phase flushes, and the cumulative IC hit-rate
	// gauge. The registry is flat-name-keyed, so what Prometheus would
	// label {tier=...}/{reason=...} is realized as suffixed names.
	MJITCompilesBase        = "govolve_jit_compiles_base_total"
	MJITCompilesOpt         = "govolve_jit_compiles_opt_total"
	MJITCompilesFused       = "govolve_jit_compiles_fused_total"
	MJITTracePromotions     = "govolve_jit_trace_promotions_total"
	MJITInvalidationsBody   = "govolve_jit_invalidations_body_total"
	MJITInvalidationsLayout = "govolve_jit_invalidations_layout_total"
	MJITInvalidationsInline = "govolve_jit_invalidations_inline_total"
	MJITICHits              = "govolve_jit_ic_hits_total"
	MJITICMisses            = "govolve_jit_ic_misses_total"
	MJITICFlushes           = "govolve_jit_ic_flushes_total"
	MJITICHitRate           = "govolve_jit_ic_hit_rate"

	// Sampling-profiler plane (profile.go).
	MProfSamples        = "govolve_profile_samples_total"
	MProfSamplesDropped = "govolve_profile_samples_dropped_total"

	// VM identity and liveness, plus flight-recorder ring overwrite loss.
	MObsEventsDropped = "govolve_obs_events_dropped_total"
	MBuildInfo        = "govolve_build_info"
	MVMUptime         = "govolve_vm_uptime_seconds"
)

// metricHelp curates the HELP line of every canonical metric. The
// exposition audit test walks CanonicalMetricNames and fails on a name
// missing here, so a new M* constant cannot ship without documentation.
var metricHelp = map[string]string{
	MSafePointDelay:   "Delay from update request to the DSU safe point.",
	MPauseInstall:     "Install phase share of the DSU pause.",
	MPauseGC:          "GC phase share of the DSU pause.",
	MPauseTransform:   "Transform phase share of the DSU pause.",
	MPauseBulk:        "Bulk-transformer share of the DSU pause.",
	MPauseTotal:       "Total stop-the-world DSU pause duration.",
	MPauseGCMark:      "Mark sub-phase of the DSU pause's GC share.",
	MPauseGCRescan:    "Rescan sub-phase of the DSU pause's GC share.",
	MPauseGCCopy:      "Copy sub-phase of the DSU pause's GC share.",
	MMarkOutside:      "Concurrent-mark work done outside the pause.",
	MAttempts:         "Safe-point attempts needed per update.",
	MUpdatesApplied:   "Updates applied successfully.",
	MUpdatesAborted:   "Updates aborted before the safe point.",
	MUpdatesFailed:    "Updates that failed during installation.",
	MBarriers:         "Return barriers installed on restricted frames.",
	MOSRFrames:        "Frames migrated by on-stack replacement.",
	MLazyPending:      "Objects tagged for lazy transformation.",
	MLazyDrained:      "Objects lazily transformed (barrier or drain).",
	MLazyForced:       "Forced lazy-transform drains.",
	MLazyDrainLatency: "Wall-clock latency of lazy-transform drains.",
	MObjectsCopied:    "Objects copied by collections.",
	MPairsLogged:      "Old/new object pairs logged for DSU transforms.",
	MGCSteals:         "Work-stealing deque steals by collection workers.",
	MRequestLatency:   "End-to-end request latency of the served app.",
	MInstructions:     "Bytecode instructions interpreted.",
	MSlices:           "Scheduler slices executed.",
	MThreadsLive:      "Live VM threads.",
	MThreadsBlocked:   "VM threads blocked on I/O or sync.",
	MRunnableQueue:    "VM threads waiting in the runnable queue.",
	MHeapAllocObjects: "Objects allocated on the VM heap.",
	MHeapAllocArrays:  "Arrays allocated on the VM heap.",
	MGCCollections:    "Heap collections performed.",

	MRelocObjects:      "Objects evacuated by the concurrent relocation drain.",
	MRelocHealedSlots:  "Reference slots healed to canonical addresses.",
	MRelocBacklog:      "Objects still awaiting concurrent relocation.",
	MRelocDrainLatency: "Wall-clock latency of relocation drains.",

	MStreamUpdates:  "Updates sustained across long-horizon version chains.",
	MStreamRejected: "Generator batches the UPT verifier legally refused.",
	MStreamBacklog:  "Lazy drain backlog sampled after each chain step.",

	MGateEvaluations: "Health-gate verdicts evaluated.",
	MGatePass:        "Verdicts where every gate passed.",
	MGateFail:        "Verdicts with at least one violated gate.",
	MGateViolations:  "Individual gate violations across all verdicts.",
	MGateLastPass:    "1 when the most recent verdict passed, else 0.",

	MJITCompilesBase:        "Methods compiled at the base tier.",
	MJITCompilesOpt:         "Methods compiled at the opt tier (inline+fold+fuse+IC).",
	MJITCompilesFused:       "Methods compiled at the fused tier (fuse+IC).",
	MJITTracePromotions:     "Hot loop frames trace-promoted onto fused code.",
	MJITInvalidationsBody:   "Compiled bodies invalidated by method-body updates.",
	MJITInvalidationsLayout: "Compiled bodies invalidated by baked-in layout/TIB deps.",
	MJITInvalidationsInline: "Compiled bodies invalidated for inlining updated callees.",
	MJITICHits:              "Inline-cache hits at cached virtual call sites.",
	MJITICMisses:            "Inline-cache misses falling back to the TIB lookup.",
	MJITICFlushes:           "Inline-cache entries flushed by DSU install phases.",
	MJITICHitRate:           "Cumulative inline-cache hit rate (hits / lookups).",

	MProfSamples:        "Stack samples accepted by the sampling profiler.",
	MProfSamplesDropped: "Profiler samples shed on contention or overwritten.",

	MObsEventsDropped: "Flight-recorder events lost to ring overwrite.",
	MBuildInfo:        "Constant 1; labels carry the build identity.",
	MVMUptime:         "Seconds since the VM was constructed.",
}

// CanonicalMetricNames lists every canonical metric name, sorted — the
// domain of the exposition audit.
func CanonicalMetricNames() []string {
	return sortedKeys(metricHelp)
}

// MetricHelp returns the curated HELP text for a metric, falling back to a
// generic line so the exposition never emits a series without HELP.
func MetricHelp(name string) string {
	if h, ok := metricHelp[name]; ok {
		return h
	}
	return "govolve metric " + name + "."
}
