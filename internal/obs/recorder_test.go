package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(8)
	if !r.Enabled() {
		t.Fatal("fresh recorder must be enabled")
	}
	r.Emit(KUpdateRequested, LaneEngine, 0, "v1")
	r.Emit(KSafePointAttempt, LaneEngine, 1, "")
	r.Emit(KSafePointReached, LaneEngine, 1, "")
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	if evs[0].Kind != KUpdateRequested || evs[0].Str != "v1" {
		t.Fatalf("first event %+v", evs[0])
	}
	if r.Total() != 3 {
		t.Fatalf("total = %d, want 3", r.Total())
	}
	// Timestamps are monotone non-decreasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("timestamps regressed: %v then %v", evs[i-1].TS, evs[i].TS)
		}
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Emit(KTrace, LaneEngine, int64(i), "")
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("buffered = %d, want capacity 4", len(evs))
	}
	// Oldest-first: the ring must hold exactly the last four, in order.
	for i, e := range evs {
		if e.Arg != int64(6+i) {
			t.Fatalf("evs[%d].Arg = %d, want %d (snapshot %+v)", i, e.Arg, 6+i, evs)
		}
	}
	last2 := r.Last(2)
	if len(last2) != 2 || last2[0].Arg != 8 || last2[1].Arg != 9 {
		t.Fatalf("Last(2) = %+v", last2)
	}
	// Last(n) larger than the buffer returns everything.
	if got := r.Last(100); len(got) != 4 {
		t.Fatalf("Last(100) = %d events", len(got))
	}
}

func TestRecorderNilAndDisabled(t *testing.T) {
	var nilRec *Recorder
	nilRec.Emit(KTrace, LaneEngine, 0, "dropped") // must not panic
	nilRec.Emitf(LaneEngine, "dropped %d", 1)
	nilRec.SetEnabled(true)
	nilRec.Reset()
	if nilRec.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if nilRec.Events() != nil || nilRec.Total() != 0 {
		t.Fatal("nil recorder holds events")
	}
	if !nilRec.Start().IsZero() {
		t.Fatal("nil recorder start time")
	}

	r := NewRecorder(4)
	r.SetEnabled(false)
	r.Emit(KTrace, LaneEngine, 0, "dropped")
	if r.Total() != 0 {
		t.Fatal("disabled recorder recorded an event")
	}
	r.SetEnabled(true)
	r.Emit(KTrace, LaneEngine, 0, "kept")
	if r.Total() != 1 {
		t.Fatal("re-enabled recorder dropped an event")
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(4)
	r.Emit(KTrace, LaneEngine, 0, "x")
	before := r.Start()
	time.Sleep(time.Millisecond)
	r.Reset()
	if r.Total() != 0 || len(r.Events()) != 0 {
		t.Fatal("reset left events behind")
	}
	if !r.Start().After(before) {
		t.Fatal("reset did not restart the clock")
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(KGCWorkerCopy, LaneGCWorker(w), int64(i), "")
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != workers*per {
		t.Fatalf("total = %d, want %d", r.Total(), workers*per)
	}
	if n := len(r.Events()); n != 64 {
		t.Fatalf("buffered = %d, want 64", n)
	}
}

func TestLaneNames(t *testing.T) {
	cases := map[int32]string{
		LaneEngine:      "DSU engine",
		LaneGCWorker(0): "GC worker 0",
		LaneGCWorker(3): "GC worker 3",
		LaneThread(1):   "VM thread 1",
		LaneThread(42):  "VM thread 42",
	}
	for lane, want := range cases {
		if got := LaneName(lane); got != want {
			t.Errorf("LaneName(%d) = %q, want %q", lane, got, want)
		}
	}
}

func TestWriteEventsAndKindStrings(t *testing.T) {
	r := NewRecorder(8)
	r.Emit(KBarrierInstalled, LaneThread(2), 1, "Foo.bar()V")
	r.Emit(KUpdateApplied, LaneEngine, 3, "")
	var b strings.Builder
	WriteEvents(&b, r.Events())
	out := b.String()
	for _, want := range []string{"barrier-installed", "update-applied", "VM thread 2", "Foo.bar()V"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteEvents output missing %q:\n%s", want, out)
		}
	}
	// Every declared kind has a name.
	for k := KTrace; k <= KUpdateFailed; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestRecorderDropped(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 3; i++ {
		r.Emit(KTrace, LaneEngine, int64(i), "")
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d before wrap", r.Dropped())
	}
	for i := 0; i < 7; i++ {
		r.Emit(KTrace, LaneEngine, int64(i), "")
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", r.Total(), r.Dropped())
	}
	r.Reset()
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d after reset", r.Dropped())
	}
	var nilR *Recorder
	if nilR.Dropped() != 0 {
		t.Fatal("nil recorder reported loss")
	}
}
