package obs

import (
	"strings"
	"testing"
)

func TestProfilerSampleAndFolded(t *testing.T) {
	p := NewProfiler(8)
	outer := ProfKey(1, 10)
	inner := ProfKey(2, 10)
	innerV2 := ProfKey(2, 47) // same method, post-update class version
	p.RegisterName(outer, "Main@c10.run()V")
	p.RegisterName(inner, "User@c10.work(i)i")
	p.RegisterName(innerV2, "User@c47.work(i)i")

	p.Sample(1, 100, []uint64{outer, inner})
	p.Sample(1, 50, []uint64{outer, inner})
	p.Sample(2, 30, []uint64{outer, innerV2})

	if p.TotalSamples() != 3 || p.DroppedSamples() != 0 {
		t.Fatalf("total=%d dropped=%d", p.TotalSamples(), p.DroppedSamples())
	}
	folded := p.Folded()
	if len(folded) != 2 {
		t.Fatalf("folded %+v", folded)
	}
	// Sorted by weight descending; the two versions of work are distinct
	// frames — that is the version attribution.
	if folded[0].Stack != "Main@c10.run()V;User@c10.work(i)i" || folded[0].Weight != 150 {
		t.Fatalf("folded[0] %+v", folded[0])
	}
	if folded[1].Stack != "Main@c10.run()V;User@c47.work(i)i" || folded[1].Weight != 30 {
		t.Fatalf("folded[1] %+v", folded[1])
	}

	var b strings.Builder
	if err := p.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	want := "Main@c10.run()V;User@c10.work(i)i 150\nMain@c10.run()V;User@c47.work(i)i 30\n"
	if b.String() != want {
		t.Fatalf("WriteFolded:\n%q\nwant\n%q", b.String(), want)
	}
}

func TestProfilerTruncationKeepsInnermost(t *testing.T) {
	p := NewProfiler(4)
	frames := make([]uint64, ProfMaxDepth+5)
	for i := range frames {
		frames[i] = ProfKey(i+1, 1)
	}
	p.Sample(1, 10, frames)
	s := p.Samples()
	if len(s) != 1 || s[0].Depth != ProfMaxDepth {
		t.Fatalf("samples %+v", s)
	}
	if s[0].Stack[0] != profTruncKey {
		t.Fatalf("slot 0 = %#x, want truncation marker", s[0].Stack[0])
	}
	// The innermost ProfMaxDepth-1 frames survive, outermost first.
	wantFirst := frames[len(frames)-(ProfMaxDepth-1)]
	if s[0].Stack[1] != wantFirst || s[0].Stack[ProfMaxDepth-1] != frames[len(frames)-1] {
		t.Fatalf("truncated stack %v", s[0].Stack)
	}
	// The marker renders as "..." in folded output.
	if f := p.Folded(); len(f) != 1 || !strings.HasPrefix(f[0].Stack, "...;") {
		t.Fatalf("folded %+v", f)
	}
}

func TestProfilerRingOverwriteCountsDropped(t *testing.T) {
	p := NewProfiler(2)
	for i := 0; i < 5; i++ {
		p.Sample(1, 1, []uint64{ProfKey(1, 1)})
	}
	if p.TotalSamples() != 5 {
		t.Fatalf("total %d", p.TotalSamples())
	}
	if got := p.DroppedSamples(); got != 3 { // ring holds 2 of 5
		t.Fatalf("dropped %d, want 3", got)
	}
	if len(p.Samples()) != 2 {
		t.Fatalf("buffered %d", len(p.Samples()))
	}
}

func TestProfilerShedOnContention(t *testing.T) {
	p := NewProfiler(4)
	key := []uint64{ProfKey(1, 1)}
	p.Sample(7, 1, key)
	// Hold thread 7's ring the way an exporter would; the writer must shed
	// rather than block.
	r := p.ringFor(7)
	r.mu.Lock()
	p.Sample(7, 1, key)
	r.mu.Unlock()
	if p.TotalSamples() != 1 || p.DroppedSamples() != 1 {
		t.Fatalf("total=%d dropped=%d, want 1/1", p.TotalSamples(), p.DroppedSamples())
	}
}

func TestProfilerDisabledAndNil(t *testing.T) {
	var nilP *Profiler
	nilP.Sample(1, 1, []uint64{1})
	if nilP.Enabled() || nilP.TotalSamples() != 0 || nilP.Folded() != nil {
		t.Fatal("nil profiler leaked state")
	}
	nilP.AppendCounterTrack(nil)

	p := NewProfiler(4)
	p.SetEnabled(false)
	p.Sample(1, 1, []uint64{ProfKey(1, 1)})
	if p.TotalSamples() != 0 {
		t.Fatal("disabled profiler recorded a sample")
	}
	p.SetEnabled(true)
	p.Sample(1, 1, []uint64{ProfKey(1, 1)})
	if p.TotalSamples() != 1 {
		t.Fatal("re-enabled profiler dropped the sample")
	}
	if got := p.NameOf(ProfKey(1, 1)); !strings.HasPrefix(got, "frame_") {
		t.Fatalf("unregistered name %q", got)
	}
	// First registration wins.
	p.RegisterName(5, "old")
	p.RegisterName(5, "new")
	if p.NameOf(5) != "old" {
		t.Fatalf("NameOf(5) = %q", p.NameOf(5))
	}
}

func TestProfilerAppendCounterTrack(t *testing.T) {
	p := NewProfiler(4)
	p.Sample(3, 42, []uint64{ProfKey(1, 1)})
	rec := NewRecorder(16)
	rec.Emit(KUpdateRequested, LaneEngine, 0, "v1")
	doc := rec.BuildTrace()
	n := len(doc.TraceEvents)
	p.AppendCounterTrack(doc)
	if len(doc.TraceEvents) != n+1 {
		t.Fatalf("events %d, want %d", len(doc.TraceEvents), n+1)
	}
	ev := doc.TraceEvents[len(doc.TraceEvents)-1]
	if ev.Ph != "C" || ev.Name != "interp instructions" || ev.TID != LaneThread(3) {
		t.Fatalf("counter event %+v", ev)
	}
	if ev.Args["ins"] != int64(42) {
		t.Fatalf("args %+v", ev.Args)
	}
	if doc.Metadata["profile_samples_total"] != int64(1) {
		t.Fatalf("metadata %+v", doc.Metadata)
	}
}
