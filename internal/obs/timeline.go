package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Timeline export: flight-recorder events rendered as Chrome trace-event
// JSON (the "JSON Array Format" with a traceEvents envelope), loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. One track (tid) per lane:
// the DSU engine, each GC worker, and each VM thread that took part in a
// stop-the-world window.
//
// Span events (KPhaseBegin/KPhaseEnd, KThreadStop/KThreadResume) are paired
// per lane into complete "X" events — robust against a ring buffer that
// overwrote one side of a pair: unmatched ends are dropped, unmatched
// begins are closed at the last event's timestamp. Everything else becomes
// an instant "i" event on its lane.

// TraceEvent is one Chrome trace-event entry.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// TraceDoc is the trace-event envelope.
type TraceDoc struct {
	TraceEvents []TraceEvent   `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

const tracePID = 1

func micros(e Event) float64 { return float64(e.TS.Nanoseconds()) / 1e3 }

// spanName maps a begin/end event pair to its display name.
func spanName(e Event) string {
	switch e.Kind {
	case KThreadStop, KThreadResume:
		return "stopped"
	default:
		return e.Str
	}
}

// BuildTrace converts events into a Chrome trace document.
func BuildTrace(events []Event) *TraceDoc {
	doc := &TraceDoc{Metadata: map[string]any{"source": "govolve flight recorder"}}

	// Lane name metadata + a stable sort order for tracks.
	lanes := map[int32]bool{}
	addLane := func(l int32) { lanes[l] = true }

	type openSpan struct {
		name string
		ts   float64
	}
	open := map[int32][]openSpan{} // per-lane stack
	lastTS := 0.0

	closeSpan := func(lane int32, name string, end float64) {
		stack := open[lane]
		// Find the innermost matching open span (tolerate ring loss).
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].name == name {
				doc.TraceEvents = append(doc.TraceEvents, TraceEvent{
					Name: name, Ph: "X", TS: stack[i].ts, Dur: end - stack[i].ts,
					PID: tracePID, TID: lane,
				})
				open[lane] = append(stack[:i], stack[i+1:]...)
				return
			}
		}
		// Unmatched end (begin was overwritten in the ring): drop it.
	}

	instant := func(e Event, name string, args map[string]any) {
		doc.TraceEvents = append(doc.TraceEvents, TraceEvent{
			Name: name, Ph: "i", TS: micros(e), PID: tracePID, TID: e.Lane,
			S: "t", Args: args,
		})
	}

	for _, e := range events {
		ts := micros(e)
		if ts > lastTS {
			lastTS = ts
		}
		addLane(e.Lane)
		switch e.Kind {
		case KPhaseBegin:
			open[e.Lane] = append(open[e.Lane], openSpan{name: spanName(e), ts: ts})
		case KPhaseEnd:
			closeSpan(e.Lane, spanName(e), ts)
		case KThreadStop:
			open[e.Lane] = append(open[e.Lane], openSpan{name: "stopped", ts: ts})
		case KThreadResume:
			closeSpan(e.Lane, "stopped", ts)
		case KSafePointAttempt:
			args := map[string]any{"attempt": e.Arg}
			if e.Str != "" {
				args["blocked_by"] = e.Str
			}
			instant(e, "safe-point attempt", args)
		case KSafePointReached:
			instant(e, "safe point reached", map[string]any{"attempts": e.Arg})
		case KBarrierInstalled:
			instant(e, "barrier installed", map[string]any{"method": e.Str})
		case KBarrierFired:
			instant(e, "barrier fired", map[string]any{"method": e.Str})
		case KOSRRecompile:
			name := "OSR recompile"
			if e.Arg == 1 {
				name = "active-method rewrite"
			}
			instant(e, name, map[string]any{"method": e.Str})
		case KGCWorkerCopy:
			instant(e, "worker copied", map[string]any{"words": e.Arg})
		case KGCWorkerSteal:
			instant(e, "worker steals", map[string]any{"steals": e.Arg})
		case KTransformerApplied:
			instant(e, "transformer", map[string]any{"what": e.Str, "objects": e.Arg})
		case KUpdateRequested:
			instant(e, "update requested", map[string]any{"tag": e.Str})
		case KUpdateApplied:
			instant(e, "update applied", nil)
		case KUpdateAborted:
			instant(e, "update aborted", map[string]any{"reason": e.Str})
		case KUpdateFailed:
			instant(e, "update failed", map[string]any{"reason": e.Str})
		case KTrace:
			instant(e, "trace", map[string]any{"msg": e.Str})
		}
	}

	// Close any spans whose end the ring lost (or that were still open).
	for lane, stack := range open {
		for i := len(stack) - 1; i >= 0; i-- {
			doc.TraceEvents = append(doc.TraceEvents, TraceEvent{
				Name: stack[i].name, Ph: "X", TS: stack[i].ts, Dur: lastTS - stack[i].ts,
				PID: tracePID, TID: lane,
			})
		}
	}

	// Track-name metadata, in lane order for stable output.
	ordered := make([]int32, 0, len(lanes))
	for l := range lanes {
		ordered = append(ordered, l)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	meta := make([]TraceEvent, 0, len(ordered)+1)
	meta = append(meta, TraceEvent{
		Name: "process_name", Ph: "M", PID: tracePID,
		Args: map[string]any{"name": "govolve VM"},
	})
	for _, l := range ordered {
		meta = append(meta, TraceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: l,
			Args: map[string]any{"name": LaneName(l)},
		})
	}
	doc.TraceEvents = append(meta, doc.TraceEvents...)
	return doc
}

// Encode writes the document as Chrome trace-event JSON.
func (d *TraceDoc) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	return nil
}

// WriteChromeTrace renders events as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return BuildTrace(events).Encode(w)
}

// BuildTrace converts the recorder's buffered events into a trace document
// whose metadata states how complete the record is: events_total is every
// event ever emitted, events_dropped the ones the ring overwrote (a
// non-zero value means the timeline's left edge is truncated, not quiet).
func (r *Recorder) BuildTrace() *TraceDoc {
	doc := BuildTrace(r.Events())
	doc.Metadata["events_total"] = r.Total()
	doc.Metadata["events_dropped"] = r.Dropped()
	return doc
}

// WriteChromeTrace renders the recorder's buffered events with loss
// metadata — the blessed export for live recorders.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return r.BuildTrace().Encode(w)
}
