package obs

// Version-attributed sampling profiler. The VM's scheduler samples the
// interpreter stack of the thread it just ran at every slice boundary,
// weighting the sample by the instructions the slice executed. Each frame
// is identified by (method global id × class id) — and because a DSU
// update gives the NEW class version a fresh class id while the renamed
// old version keeps its own, samples taken before and after an update
// attribute time to the exact code version that ran. That is what makes a
// post-update regression diagnosable: the folded-stack export shows
// `User@c12.work` (old version) and `User@c47.work` (new version) as
// distinct frames.
//
// Cost discipline (same as every barrier in this VM): the disabled path in
// the scheduler is one nil-check on vm.Prof — zero allocations, ≤2%
// dispatch overhead, gated by `make obs-verdict-gate`. The enabled write
// path never blocks the scheduler: samples go into fixed per-thread rings
// behind a TryLock — if an exporter holds a ring the sample is shed and
// counted in govolve_profile_samples_dropped_total rather than stalling
// execution.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// ProfMaxDepth caps recorded stack depth; deeper stacks keep the
	// innermost frames under a truncation marker.
	ProfMaxDepth = 16
	// profMaxRings bounds the per-thread ring table; thread ids beyond it
	// fold onto an existing ring (tid mod profMaxRings).
	profMaxRings = 64
	// DefaultProfCapacity is each per-thread ring's sample capacity when
	// NewProfiler is given n <= 0.
	DefaultProfCapacity = 256
)

// ProfKey packs a frame identity: method global id in the high 32 bits,
// class id (the version discriminator) in the low 32.
func ProfKey(methodGlobalID, classID int) uint64 {
	return uint64(uint32(methodGlobalID))<<32 | uint64(uint32(classID))
}

// profTruncKey marks elided outer frames of an over-deep stack.
const profTruncKey uint64 = 0

// ProfSample is one slice-boundary stack sample.
type ProfSample struct {
	TS     time.Duration // since profiler start
	TID    int32
	Weight int64 // instructions executed in the slice
	Depth  int32
	Stack  [ProfMaxDepth]uint64 // outermost first
}

// profRing is one thread's fixed sample ring. The scheduler is the only
// writer; exporters briefly hold mu to copy. The writer TryLocks and sheds
// the sample on contention so it can never block.
type profRing struct {
	mu   sync.Mutex
	buf  []ProfSample
	next int
}

// Profiler is the sampling profiler. All methods are nil-receiver safe; a
// nil *Profiler is the canonical "profiling disabled" value.
type Profiler struct {
	on    atomic.Bool
	start time.Time
	cap   int

	total atomic.Int64 // samples ever accepted
	shed  atomic.Int64 // samples dropped (exporter held the ring)

	mu    sync.Mutex
	rings [profMaxRings]*profRing
	names map[uint64]string
}

// NewProfiler builds an enabled profiler whose per-thread rings hold n
// samples each (DefaultProfCapacity when n <= 0).
func NewProfiler(n int) *Profiler {
	if n <= 0 {
		n = DefaultProfCapacity
	}
	p := &Profiler{start: time.Now(), cap: n, names: map[uint64]string{
		profTruncKey: "...",
	}}
	p.on.Store(true)
	return p
}

// Enabled reports whether samples are being recorded.
func (p *Profiler) Enabled() bool { return p != nil && p.on.Load() }

// SetEnabled toggles sampling without dropping buffered samples.
func (p *Profiler) SetEnabled(on bool) {
	if p != nil {
		p.on.Store(on)
	}
}

// Start returns the instant TS values are measured from.
func (p *Profiler) Start() time.Time {
	if p == nil {
		return time.Time{}
	}
	return p.start
}

// RegisterName binds a frame key to its display name ("User@c12.work(i)i").
// First registration wins — a sample taken before an update keeps the name
// the code had when it ran.
func (p *Profiler) RegisterName(key uint64, name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if _, ok := p.names[key]; !ok {
		p.names[key] = name
	}
	p.mu.Unlock()
}

// NameOf resolves a frame key ("frame_<key>" when unregistered).
func (p *Profiler) NameOf(key uint64) string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	n, ok := p.names[key]
	p.mu.Unlock()
	if !ok {
		return fmt.Sprintf("frame_%x", key)
	}
	return n
}

// ringFor returns (creating if needed) the ring thread tid folds onto.
// Only the sampling goroutine creates rings; creation takes the profiler
// lock, the steady-state lookup is lock-free.
func (p *Profiler) ringFor(tid int32) *profRing {
	idx := int(tid) % profMaxRings
	if idx < 0 {
		idx = -idx
	}
	if r := p.rings[idx]; r != nil {
		return r
	}
	p.mu.Lock()
	r := p.rings[idx]
	if r == nil {
		r = &profRing{buf: make([]ProfSample, 0, p.cap)}
		p.rings[idx] = r
	}
	p.mu.Unlock()
	return r
}

// Sample records one stack sample (frames outermost first). Called by the
// VM scheduler at a slice boundary; never blocks — on ring contention the
// sample is shed and counted.
func (p *Profiler) Sample(tid int32, weight int64, frames []uint64) {
	if p == nil || !p.on.Load() || weight <= 0 || len(frames) == 0 {
		return
	}
	r := p.ringFor(tid)
	if !r.mu.TryLock() {
		p.shed.Add(1)
		return
	}
	var s *ProfSample
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ProfSample{})
		s = &r.buf[len(r.buf)-1]
	} else {
		s = &r.buf[r.next]
	}
	r.next++
	if r.next == cap(r.buf) {
		r.next = 0
	}
	s.TS = time.Since(p.start)
	s.TID = tid
	s.Weight = weight
	if len(frames) <= ProfMaxDepth {
		s.Depth = int32(len(frames))
		copy(s.Stack[:], frames)
	} else {
		// Keep the innermost frames; slot 0 marks the elision.
		s.Depth = ProfMaxDepth
		s.Stack[0] = profTruncKey
		copy(s.Stack[1:], frames[len(frames)-(ProfMaxDepth-1):])
	}
	r.mu.Unlock()
	p.total.Add(1)
}

// TotalSamples reports samples ever accepted (including ones the rings
// have since overwritten).
func (p *Profiler) TotalSamples() int64 {
	if p == nil {
		return 0
	}
	return p.total.Load()
}

// DroppedSamples reports samples shed on ring contention plus samples the
// rings have overwritten.
func (p *Profiler) DroppedSamples() int64 {
	if p == nil {
		return 0
	}
	buffered := int64(0)
	p.mu.Lock()
	rings := p.rings
	p.mu.Unlock()
	for _, r := range rings {
		if r == nil {
			continue
		}
		r.mu.Lock()
		buffered += int64(len(r.buf))
		r.mu.Unlock()
	}
	over := p.total.Load() - buffered
	if over < 0 {
		over = 0
	}
	return p.shed.Load() + over
}

// Samples returns a copy of every buffered sample, ordered by timestamp.
func (p *Profiler) Samples() []ProfSample {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	rings := p.rings
	p.mu.Unlock()
	var out []ProfSample
	for _, r := range rings {
		if r == nil {
			continue
		}
		r.mu.Lock()
		out = append(out, r.buf...)
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Folded aggregates the buffered samples into folded-stack form:
// "outer;inner weight" lines keyed by the rendered stack, sorted by
// descending weight then stack — the input flamegraph.pl and speedscope
// both accept.
func (p *Profiler) Folded() []FoldedLine {
	if p == nil {
		return nil
	}
	agg := map[string]int64{}
	for _, s := range p.Samples() {
		var b strings.Builder
		for i := int32(0); i < s.Depth; i++ {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(p.NameOf(s.Stack[i]))
		}
		agg[b.String()] += s.Weight
	}
	out := make([]FoldedLine, 0, len(agg))
	for stack, w := range agg {
		out = append(out, FoldedLine{Stack: stack, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Stack < out[j].Stack
	})
	return out
}

// FoldedLine is one aggregated stack with its instruction weight.
type FoldedLine struct {
	Stack  string `json:"stack"`
	Weight int64  `json:"weight"`
}

// WriteFolded writes the folded-stack export, one "stack weight" line each.
func (p *Profiler) WriteFolded(w io.Writer) error {
	for _, l := range p.Folded() {
		if _, err := fmt.Fprintf(w, "%s %d\n", l.Stack, l.Weight); err != nil {
			return err
		}
	}
	return nil
}

// AppendCounterTrack adds a Perfetto counter lane ("interp instructions"
// per thread, one "C" event per sample) to a trace document, so the
// profiler's view lines up with the DSU timeline. No-op on nil receivers.
func (p *Profiler) AppendCounterTrack(doc *TraceDoc) {
	if p == nil || doc == nil {
		return
	}
	for _, s := range p.Samples() {
		doc.TraceEvents = append(doc.TraceEvents, TraceEvent{
			Name: "interp instructions", Ph: "C",
			TS:  float64(s.TS.Nanoseconds()) / 1e3,
			PID: tracePID, TID: LaneThread(int(s.TID)),
			Args: map[string]any{"ins": s.Weight},
		})
	}
	if doc.Metadata != nil {
		doc.Metadata["profile_samples_total"] = p.TotalSamples()
		doc.Metadata["profile_samples_dropped"] = p.DroppedSamples()
	}
}
