package bytecode

import "testing"

func TestOpNamesRoundTrip(t *testing.T) {
	for name, op := range OpByName {
		if op.String() != name {
			t.Errorf("op %q round trips to %q", name, op.String())
		}
		if op.IsResolved() {
			t.Errorf("resolved op %q exposed to the assembler", name)
		}
	}
	if _, ok := OpByName["getfield_r"]; ok {
		t.Error("resolved opcode reachable by name")
	}
}

func TestBranchPredicates(t *testing.T) {
	if !GOTO.IsBranch() || GOTO.IsConditional() {
		t.Error("GOTO classification wrong")
	}
	if !IFEQ.IsBranch() || !IFEQ.IsConditional() {
		t.Error("IFEQ classification wrong")
	}
	if RETURN.IsBranch() || ADD.IsBranch() {
		t.Error("non-branches classified as branches")
	}
	if !GETFIELD_R.IsResolved() || GETFIELD.IsResolved() {
		t.Error("IsResolved wrong")
	}
}

func TestSymSplitting(t *testing.T) {
	i := Ins{Sym: "User.name"}
	if i.SymClass() != "User" || i.SymMember() != "name" {
		t.Errorf("split = %q, %q", i.SymClass(), i.SymMember())
	}
	bare := Ins{Sym: "User"}
	if bare.SymClass() != "User" || bare.SymMember() != "" {
		t.Errorf("bare split = %q, %q", bare.SymClass(), bare.SymMember())
	}
}

func TestCodeEqual(t *testing.T) {
	a := []Ins{{Op: CONST, A: 1}, {Op: RETURN}}
	b := []Ins{{Op: CONST, A: 1}, {Op: RETURN}}
	c := []Ins{{Op: CONST, A: 2}, {Op: RETURN}}
	if !CodeEqual(a, b) || CodeEqual(a, c) || CodeEqual(a, a[:1]) {
		t.Error("CodeEqual wrong")
	}
}

func TestReferencedClasses(t *testing.T) {
	code := []Ins{
		{Op: NEW, Sym: "A"},
		{Op: GETFIELD, Sym: "B.x"},
		{Op: INVOKEVIRTUAL, Sym: "C.m"},
		{Op: CONST, A: 1},
		{Op: GETSTATIC, Sym: "D.s"},
		{Op: INSTANCEOF, Sym: "E"},
	}
	refs := ReferencedClasses(code)
	for _, want := range []string{"A", "B", "C", "D", "E"} {
		if !refs[want] {
			t.Errorf("missing ref %s", want)
		}
	}
	if len(refs) != 5 {
		t.Errorf("refs = %v", refs)
	}
}
