package bytecode

import (
	"fmt"
	"strings"
)

// Ins is one symbolic bytecode instruction as it appears in a class file.
// Operand use depends on the opcode:
//
//	A    — integer constant, local index, or branch target (instruction index)
//	Sym  — "Class.member" for field/method ops, or a bare class name
//	Desc — field descriptor or method signature
//	Str  — string literal (LDC) or trap message (TRAP)
type Ins struct {
	Op   Op
	A    int64
	Sym  string
	Desc string
	Str  string
}

// SymClass returns the class-name part of a "Class.member" symbol, or the
// whole symbol if it has no member part.
func (i Ins) SymClass() string {
	if dot := strings.LastIndexByte(i.Sym, '.'); dot >= 0 {
		return i.Sym[:dot]
	}
	return i.Sym
}

// SymMember returns the member-name part of a "Class.member" symbol, or ""
// if the symbol is a bare class name.
func (i Ins) SymMember() string {
	if dot := strings.LastIndexByte(i.Sym, '.'); dot >= 0 {
		return i.Sym[dot+1:]
	}
	return ""
}

// String renders the instruction in assembler syntax.
func (i Ins) String() string {
	switch i.Op {
	case CONST, LOAD, STORE:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	case LDC:
		return fmt.Sprintf("%s %q", i.Op, i.Str)
	case TRAP:
		return fmt.Sprintf("%s %q", i.Op, i.Str)
	case NEW, INSTANCEOF, CHECKCAST:
		return fmt.Sprintf("%s %s", i.Op, i.Sym)
	case NEWARRAY:
		return fmt.Sprintf("%s %s", i.Op, i.Desc)
	case GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC:
		return fmt.Sprintf("%s %s %s", i.Op, i.Sym, i.Desc)
	case INVOKEVIRTUAL, INVOKESTATIC, INVOKESPECIAL:
		return fmt.Sprintf("%s %s%s", i.Op, i.Sym, i.Desc)
	default:
		if i.Op.IsBranch() {
			return fmt.Sprintf("%s @%d", i.Op, i.A)
		}
		return i.Op.String()
	}
}

// Equal reports structural equality of two instructions. UPT uses this to
// decide whether a method body changed between versions.
func (i Ins) Equal(o Ins) bool { return i == o }

// CodeEqual reports whether two instruction sequences are identical.
func CodeEqual(a, b []Ins) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !a[k].Equal(b[k]) {
			return false
		}
	}
	return true
}

// Disassemble renders a code sequence, one instruction per line, with
// instruction indexes. Used by cmd/upt -dump and in test failure output.
func Disassemble(code []Ins) string {
	var b strings.Builder
	for idx, ins := range code {
		fmt.Fprintf(&b, "%4d: %s\n", idx, ins)
	}
	return b.String()
}

// ReferencedClasses returns the set of class names whose layout or method
// table the code depends on: field accesses, virtual/special/static calls,
// allocation, and type tests. UPT uses this to compute the paper's
// category-(2) "indirect" methods — methods whose bytecode is unchanged but
// whose compiled representation bakes in offsets of an updated class.
func ReferencedClasses(code []Ins) map[string]bool {
	refs := make(map[string]bool)
	for _, ins := range code {
		switch ins.Op {
		case NEW, INSTANCEOF, CHECKCAST,
			GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC,
			INVOKEVIRTUAL, INVOKESTATIC, INVOKESPECIAL:
			refs[ins.SymClass()] = true
		}
	}
	return refs
}
