// Package bytecode defines the instruction set of the govolve toy managed
// language: a JVM-flavoured stack machine with symbolic (unresolved)
// operands. The JIT (internal/jit) resolves symbolic instructions into
// executable code with hard-coded field offsets and vtable slots, exactly as
// Jikes RVM's compilers bake offsets into machine code — which is what makes
// class-layout changes invalidate compiled methods ("indirect" methods in
// the JVOLVE paper's category 2).
package bytecode

import "fmt"

// Op is a bytecode opcode. Symbolic opcodes appear in class files; the
// resolved R-suffixed forms appear only in compiled code produced by the JIT.
type Op uint8

// Symbolic opcodes (what the assembler emits and the verifier checks).
const (
	NOP Op = iota

	// Constants.
	CONST // push integer constant A
	NULL  // push null reference
	LDC   // push interned string; Str operand

	// Locals. Load/store are untyped at the instruction level; the
	// verifier tracks the type flowing through each local slot.
	LOAD  // push local A
	STORE // pop into local A

	// Operand stack.
	POP
	DUP
	DUP_X1
	SWAP

	// Integer arithmetic. All operate on 64-bit ints.
	ADD
	SUB
	MUL
	DIV
	REM
	NEG
	AND
	OR
	XOR
	SHL
	SHR

	// Branches. A is the target instruction index (the assembler resolves
	// labels). Conditional forms pop one or two operands.
	GOTO
	IFEQ // pop int; branch if == 0
	IFNE
	IFLT
	IFLE
	IFGT
	IFGE
	IF_ICMPEQ // pop two ints
	IF_ICMPNE
	IF_ICMPLT
	IF_ICMPLE
	IF_ICMPGT
	IF_ICMPGE
	IF_ACMPEQ // pop two refs
	IF_ACMPNE
	IFNULL
	IFNONNULL

	// Objects and arrays. Sym operands name classes, fields, methods.
	NEW        // Sym = class name
	GETFIELD   // Sym = Class.field, Desc = field descriptor
	PUTFIELD   //
	GETSTATIC  //
	PUTSTATIC  //
	INSTANCEOF // Sym = class name; push 0/1
	CHECKCAST  // Sym = class name; traps on failure
	NEWARRAY   // Desc = element descriptor; pop length
	ARRAYLEN   // pop array ref, push length
	AGET       // pop index, array; push element
	ASET       // pop value, index, array

	// Calls. Sym = Class.method, Desc = method signature.
	INVOKEVIRTUAL
	INVOKESTATIC
	INVOKESPECIAL // constructors, private methods, super calls

	// Control.
	RETURN // returns void or the top of stack per the method signature
	TRAP   // Str = message; kills the thread with a runtime error
	YIELD  // explicit yield point (entry/exit/backedge yields are implicit)
)

// Resolved opcodes, produced only by the JIT. They carry numeric operands:
// word offsets, JTOC slots, TIB slots, class IDs, intern-table indexes.
const (
	rbase Op = 0x80

	GETFIELD_R   Op = rbase + iota // A = field word offset, B = 1 if ref
	PUTFIELD_R                     // A = field word offset, B = 1 if ref
	GETSTATIC_R                    // A = JTOC slot
	PUTSTATIC_R                    // A = JTOC slot
	NEW_R                          // Cls = resolved class
	INSTOF_R                       // Cls = resolved class
	CHECKCAST_R                    // Cls = resolved class
	NEWARRAY_R                     // B = 1 if ref elements
	LDC_R                          // A = intern-table root index
	INVOKEVIRT_R                   // A = TIB slot; Sym retained for diagnostics
	INVOKESTAT_R                   // Ref = resolved method
	INVOKESPEC_R                   // Ref = resolved method
	INVOKENAT_R                    // Ref = resolved native method
	CONST_R                        // A = constant (result of JIT constant folding)
	ENTERINL_R                     // inlined-callee prologue marker (opt compiler)
	LEAVEINL_R                     // inlined-callee epilogue marker

	// Fused superinstructions, produced only by the JIT's peephole fusion
	// pass (fused/opt tiers). Each replaces an adjacent pair [A, B] of
	// resolved instructions in place: the fused opcode occupies the first
	// slot and FPAD pads the second, so code length and branch targets are
	// unchanged and the OSR pc-map stays valid — a fused pc deoptimizes to
	// its first constituent's bytecode pc. The fusion pass never fuses a
	// pair whose second instruction is a branch target, so FPAD is never
	// jumped to (the interpreter still treats it as a nop defensively).
	FPAD        // padding slot of a fused pair
	FCONSTARITH // const A then arith C, in place on the stack top
	FLOADLOAD   // load A; load C
	FSTORELOAD  // store A; load C
	FSTOREGOTO  // store A; goto C (with backedge yield semantics)
	FLOADCMPBR  // load C; conditional branch B to target A
	FCONSTCMPBR // const A; two-operand compare-branch B to target C
	FGETGET     // getfield A (ref) then getfield C of the result; B = 1 if final ref
	FLOADINVOKE // load C; invokevirtual (A = TIB slot, B = nargs incl receiver)

	// Chained superinstructions, produced by the fusion pass's second
	// sweep: it merges a fused pair with an adjacent constituent (or a
	// second fused pair) into a 3- or 4-wide superinstruction, padding
	// every absorbed slot with FPAD. The same in-place rules apply —
	// nothing absorbed may be a branch target — and the chains are
	// restricted to trap-free constituents (no runtime divisors), so one
	// dispatch can account for all constituent steps up front.
	FLOADLOADARITH // load A; load C; arith B (B never DIV/REM) — 3 slots
	FCONSTARITH2   // const A, arith lo(B); const C, arith hi(B) — 4 slots
)

// FusedMin/FusedMax bound the fused-superinstruction opcode range, used by
// the printer, the verifier, and the fuzz corpora to recognise the tier-2
// opcode space without enumerating it.
const (
	FusedMin = FPAD
	FusedMax = FCONSTARITH2
)

// IsFused reports whether the opcode is a fused superinstruction.
func (op Op) IsFused() bool { return op >= FusedMin && op <= FusedMax }

var names = map[Op]string{
	NOP: "nop", CONST: "const", NULL: "null", LDC: "ldc",
	LOAD: "load", STORE: "store",
	POP: "pop", DUP: "dup", DUP_X1: "dup_x1", SWAP: "swap",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem", NEG: "neg",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	GOTO: "goto", IFEQ: "ifeq", IFNE: "ifne", IFLT: "iflt", IFLE: "ifle",
	IFGT: "ifgt", IFGE: "ifge",
	IF_ICMPEQ: "if_icmpeq", IF_ICMPNE: "if_icmpne", IF_ICMPLT: "if_icmplt",
	IF_ICMPLE: "if_icmple", IF_ICMPGT: "if_icmpgt", IF_ICMPGE: "if_icmpge",
	IF_ACMPEQ: "if_acmpeq", IF_ACMPNE: "if_acmpne",
	IFNULL: "ifnull", IFNONNULL: "ifnonnull",
	NEW: "new", GETFIELD: "getfield", PUTFIELD: "putfield",
	GETSTATIC: "getstatic", PUTSTATIC: "putstatic",
	INSTANCEOF: "instanceof", CHECKCAST: "checkcast",
	NEWARRAY: "newarray", ARRAYLEN: "arraylen", AGET: "aget", ASET: "aset",
	INVOKEVIRTUAL: "invokevirtual", INVOKESTATIC: "invokestatic",
	INVOKESPECIAL: "invokespecial",
	RETURN:        "return", TRAP: "trap", YIELD: "yield",

	GETFIELD_R: "getfield_r", PUTFIELD_R: "putfield_r",
	GETSTATIC_R: "getstatic_r", PUTSTATIC_R: "putstatic_r",
	NEW_R: "new_r", INSTOF_R: "instanceof_r", CHECKCAST_R: "checkcast_r",
	NEWARRAY_R: "newarray_r", LDC_R: "ldc_r",
	INVOKEVIRT_R: "invokevirtual_r", INVOKESTAT_R: "invokestatic_r",
	INVOKESPEC_R: "invokespecial_r", INVOKENAT_R: "invokenative_r",
	CONST_R: "const_r", ENTERINL_R: "enterinline_r", LEAVEINL_R: "leaveinline_r",

	FPAD: "fpad", FCONSTARITH: "fconstarith", FLOADLOAD: "floadload",
	FSTORELOAD: "fstoreload", FSTOREGOTO: "fstoregoto",
	FLOADCMPBR: "floadcmpbr", FCONSTCMPBR: "fconstcmpbr",
	FGETGET: "fgetget", FLOADINVOKE: "floadinvoke",
	FLOADLOADARITH: "floadloadarith", FCONSTARITH2: "fconstarith2",
}

// String returns the assembler mnemonic for the opcode.
func (op Op) String() string {
	if s, ok := names[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// OpByName maps assembler mnemonics back to symbolic opcodes. Resolved
// opcodes are deliberately absent: they cannot appear in source.
var OpByName = func() map[string]Op {
	m := make(map[string]Op, len(names))
	for op, s := range names {
		if op < rbase {
			m[s] = op
		}
	}
	return m
}()

// IsBranch reports whether the symbolic opcode takes a label operand.
func (op Op) IsBranch() bool {
	return op >= GOTO && op <= IFNONNULL
}

// IsConditional reports whether the branch is conditional (GOTO excluded).
func (op Op) IsConditional() bool {
	return op > GOTO && op <= IFNONNULL
}

// IsResolved reports whether the opcode is a JIT-resolved form.
func (op Op) IsResolved() bool { return op >= rbase }
