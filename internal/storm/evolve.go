package storm

import (
	"fmt"
	"math/rand"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
	"govolve/internal/upt"
)

// This file is the multi-release façade over the storm generator: the
// pieces a version-chain builder (internal/stream) needs without reaching
// into the unexported model. A Version is one immutable link of a chain;
// NextVersion composes the storm mutator with the UPT diff pipeline to
// mint the following link plus the minimal spec that upgrades a live VM
// from one to the other. Everything is a pure function of the caller's
// *rand.Rand, so a whole chain is reproducible from a single seed.

// Version is one immutable program release: the generated model plus the
// bytecode program emitted from it. Two Versions built from the same model
// are bytecode-identical (program emission is pure), which is what lets
// UPT diff successive releases into minimal specs.
type Version struct {
	model *model
	prog  *classfile.Program
}

// Program returns the release's emitted program.
func (v Version) Program() *classfile.Program { return v.prog }

// NumClasses reports the generated-class count (including the hub).
func (v Version) NumClasses() int { return len(v.model.classes) }

// SeedVersion mints the chain's v0: a fresh random class hierarchy with
// the fixed workload classes, exactly as storm.Run boots.
func SeedVersion(rng *rand.Rand, classes int) (Version, error) {
	if classes <= 0 {
		classes = 6
	}
	m := newModel(rng, classes)
	p, err := m.program()
	if err != nil {
		return Version{}, fmt.Errorf("storm: seed version build: %w", err)
	}
	return Version{model: m, prog: p}, nil
}

// StepSpec is one generated release step of a version chain: the UPT spec
// that upgrades the previous Version to Next, the mutation batch that
// produced it, and how many candidate batches UPT legally refused before
// this one (hierarchy permutations — refusal is correct behaviour, counted
// so chain reports stay honest about generator retries).
type StepSpec struct {
	Tag       string
	Spec      *upt.Spec
	Next      Version
	Mutations []string
	Rejected  int
}

// NextVersion mutates cur into the next release and diffs the pair through
// upt.Prepare. It retries mutation batches that cancel out or that UPT
// refuses (counted in StepSpec.Rejected), so the returned step always
// carries a real, legal update. tag becomes the spec's OldTag (the rename
// prefix for old class versions) and must be unique per chain step.
func NextVersion(cur Version, rng *rand.Rand, maxMutations int, tag string) (*StepSpec, error) {
	if maxMutations <= 0 {
		maxMutations = 3
	}
	st := &StepSpec{Tag: tag}
	for attempt := 0; ; attempt++ {
		if attempt >= 25 {
			return nil, fmt.Errorf("storm: no acceptable mutation batch after %d attempts", attempt)
		}
		next := cur.model.clone()
		descs := mutateBatch(next, cur.model, rng, maxMutations)
		if len(descs) == 0 {
			continue
		}
		if next.entryCost() > entryCostBudget {
			// The batch pushed G0.entry's dynamic cost past the budget — on
			// a long chain, accumulated call edges make entry calls so slow
			// that a return barrier can no longer fire within the safe-point
			// search, and every later update would abort. Reject like a UPT
			// legality refusal and mutate again.
			st.Rejected++
			continue
		}
		np, err := next.program()
		if err != nil {
			return nil, fmt.Errorf("storm: candidate program build (%v): %w", descs, err)
		}
		sp, err := upt.Prepare(tag, cur.prog, np)
		if err != nil {
			// A legality limit (e.g. a hierarchy permutation composed out of
			// individually-legal mutations): UPT refusing is correct, not a
			// generator failure. Count it and try another batch.
			st.Rejected++
			continue
		}
		if len(sp.Diffs) == 0 && len(sp.AddedClasses) == 0 && len(sp.DeletedClasses) == 0 {
			continue // mutations cancelled out; not a real update
		}
		st.Spec = sp
		st.Next = Version{model: next, prog: np}
		st.Mutations = descs
		return st, nil
	}
}

// InjectEmptyTransformer (test-only) overrides the spec's first default
// object transformer with an empty body — the deliberate fault a chain
// oracle must catch — and reports whether the spec had one to break.
// OverrideTransformer clears the class's FastDefaults flag, so the broken
// bytecode body runs even when the engine is in native bulk-copy mode.
func InjectEmptyTransformer(spec *upt.Spec) bool {
	return injectEmptyTransformer(spec) != ""
}

// injectEmptyTransformer does the override and returns the class name it
// broke, or "" if the spec has no default object transformer.
func injectEmptyTransformer(spec *upt.Spec) string {
	for _, name := range spec.ClassUpdates {
		if !spec.DefaultObjectTransformers[name] {
			continue
		}
		sig := classfile.Sig("(L" + name + ";L" + spec.RenamedName(name) + ";)V")
		spec.OverrideTransformer(&classfile.Method{
			Name: "jvolveObject", Sig: sig, Static: true,
			Code: []bytecode.Ins{{Op: bytecode.RETURN}}, MaxLocals: 2,
		})
		return name
	}
	return ""
}
