package storm

import (
	"strings"
	"testing"

	"govolve/internal/obs"
)

// TestStormShort is the bounded tier-1 configuration: three seeds, ~70
// applied updates each (>=200 total), every invariant checked after every
// update. This is the harness's acceptance floor; the soak configuration
// lives behind `jvolve-bench -exp storm`.
func TestStormShort(t *testing.T) {
	const perSeed = 70
	total := 0
	for _, seed := range []int64{1, 2, 3} {
		rep, err := Run(Config{Seed: seed, Updates: perSeed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Applied < perSeed {
			t.Fatalf("seed %d: applied only %d/%d updates", seed, rep.Applied, perSeed)
		}
		if rep.Checks < rep.Applied {
			t.Fatalf("seed %d: %d checks for %d applied updates — checker not running per update",
				seed, rep.Checks, rep.Applied)
		}
		if rep.Probes == 0 {
			t.Fatalf("seed %d: no bytecode probes executed", seed)
		}
		total += rep.Applied
		t.Logf("seed %d: applied=%d aborted=%d rejected=%d checks=%d probes=%d steps=%d",
			seed, rep.Applied, rep.Aborted, rep.Rejected, rep.Checks, rep.Probes, rep.Steps)
	}
	if total < 200 {
		t.Fatalf("only %d total updates applied, want >= 200", total)
	}
}

// TestStormConfigs exercises the orthogonal engine options: a DSU scratch
// region for old copies, the FastDefaults native bulk-copy transformer
// path, and opt-tier OSR. Each must satisfy the same invariants.
func TestStormConfigs(t *testing.T) {
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"scratch", Config{Seed: 21, Updates: 25, ScratchWords: 1 << 14}},
		{"fastdefaults", Config{Seed: 22, Updates: 25, FastDefaults: true}},
		{"osropt", Config{Seed: 23, Updates: 25, OSROpt: true}},
		{"all", Config{Seed: 24, Updates: 25, ScratchWords: 1 << 14, FastDefaults: true, OSROpt: true}},
		{"parallel", Config{Seed: 25, Updates: 25, Workers: 4}},
		{"parallel-scratch-fast", Config{Seed: 26, Updates: 25, ScratchWords: 1 << 14, FastDefaults: true, Workers: 4}},
		// Concurrent snapshot-at-the-beginning discovery. The mark races the
		// mutator for real here (goroutine scheduling decides how many slices
		// each trace overlaps), so these runs exercise the barrier, the
		// SATB rescan, allocate-black sweeping, and the abort/restart
		// fallback under the full invariant sweep after every update.
		{"cmark", Config{Seed: 27, Updates: 25, ConcurrentMark: true}},
		{"cmark-parallel", Config{Seed: 28, Updates: 25, Workers: 4, ConcurrentMark: true}},
		{"cmark-all", Config{Seed: 29, Updates: 25, ScratchWords: 1 << 14, FastDefaults: true, OSROpt: true, Workers: 4, ConcurrentMark: true}},
		// Lazy per-object transformation: every update resolves with tagged
		// objects behind the armed read barrier, AfterUpdate's CheckVM runs
		// mid-drain, the probe pass drains specimens through real bytecode,
		// and ForceDrain retires the residue before the raw oracle reads.
		{"lazy", Config{Seed: 30, Updates: 25, ScratchWords: 1 << 14, Lazy: true}},
		{"lazy-parallel", Config{Seed: 31, Updates: 25, ScratchWords: 1 << 14, FastDefaults: true, Workers: 4, Lazy: true}},
		// Both orthogonal pause-shrinking paths composed: discovery runs
		// concurrently before the pause, transformation drains lazily after
		// it — the pause itself is down to rescan + copy + install.
		{"cmark-lazy", Config{Seed: 32, Updates: 25, ScratchWords: 1 << 14, FastDefaults: true, ConcurrentMark: true, Lazy: true}},
		// Concurrent relocation: every update resolves with from-space still
		// live behind the self-healing load barrier, AfterUpdate's CheckVM
		// and the shadow oracle ride the barrier mid-drain, and the drain
		// races real mutator traffic through the following era.
		{"reloc", Config{Seed: 33, Updates: 25, ConcurrentReloc: true}},
		{"reloc-parallel", Config{Seed: 34, Updates: 25, Workers: 4, ConcurrentReloc: true}},
		{"cmark-reloc", Config{Seed: 35, Updates: 25, Workers: 4, ConcurrentMark: true, ConcurrentReloc: true}},
		// Everything out of the pause at once: discovery concurrent before
		// it, relocation and transformation both draining after it — pair
		// creation itself deferred behind the read barrier.
		{"reloc-lazy", Config{Seed: 36, Updates: 25, ScratchWords: 1 << 14, ConcurrentReloc: true, Lazy: true}},
		{"cmark-reloc-lazy", Config{Seed: 37, Updates: 25, ScratchWords: 1 << 14, FastDefaults: true, Workers: 4, ConcurrentMark: true, ConcurrentReloc: true, Lazy: true}},
	}
	for _, tc := range cfgs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(tc.cfg)
			if err != nil {
				t.Fatalf("%v", err)
			}
			if rep.Applied < tc.cfg.Updates {
				t.Fatalf("applied only %d/%d updates", rep.Applied, tc.cfg.Updates)
			}
		})
	}
}

// TestStormCatchesInjectedTransformerBug proves the oracle has teeth: with
// a deliberately broken (empty-bodied) default object transformer injected
// into each update, the shadow-model cross-check must fail, and the
// failure message must carry the reproducing seed.
func TestStormCatchesInjectedTransformerBug(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rep, err := Run(Config{Seed: seed, Updates: 30, InjectTransformerBug: true})
		if err == nil {
			t.Fatalf("seed %d: injected transformer bug escaped the checker (report %+v)", seed, rep)
		}
		if !strings.Contains(err.Error(), "seed=") {
			t.Fatalf("seed %d: failure message lacks reproducing seed: %v", seed, err)
		}
		// The report embeds the flight-recorder tail: the DSU activity
		// (phase spans, transformer events) leading up to the violation.
		if !strings.Contains(err.Error(), "flight recorder (last ") {
			t.Fatalf("seed %d: failure message lacks flight-recorder tail: %v", seed, err)
		}
		if !strings.Contains(err.Error(), "transformer-applied") &&
			!strings.Contains(err.Error(), "phase-") {
			t.Fatalf("seed %d: flight-recorder tail carries no DSU events: %v", seed, err)
		}
		t.Logf("seed %d caught: %v", seed, err)
	}
}

// TestStormDeterministic re-runs the same seed and requires identical
// reports — the reproducibility contract behind printing the seed on
// failure.
func TestStormDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Updates: 20}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed, different runs:\n  a=%+v\n  b=%+v", *a, *b)
	}
}

// TestStormSerialParallelEquivalent runs the same seeds under the serial
// collector and the 4-worker parallel collector. The storm's shadow oracle
// checks every post-transform field value, every static, every array, and
// every probe after each update, so both runs passing already proves
// observational equivalence object-by-object; requiring the two reports to
// be identical additionally pins the whole trajectory (applied/aborted
// counts, probe counts, step counts) to be collection-strategy-blind.
func TestStormSerialParallelEquivalent(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		serial, err := Run(Config{Seed: seed, Updates: 20, FastDefaults: true})
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		parallel, err := Run(Config{Seed: seed, Updates: 20, FastDefaults: true, Workers: 4})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if *serial != *parallel {
			t.Fatalf("seed %d: collection strategy changed the trajectory:\n  serial=%+v\n  parallel=%+v",
				seed, *serial, *parallel)
		}
	}
}

// TestStormRelocEagerEquivalent runs the same seeds with the stop-the-world
// copy and with concurrent relocation. The shadow oracle validates every
// field value, static, array and probe after each update — mid-drain, riding
// the load barrier — so both passing proves the drained heap converges to
// the same state object-by-object; the drive sequence consumes rng and
// scheduler steps identically, so relocation timing must be observationally
// invisible and the whole Report must come out equal.
func TestStormRelocEagerEquivalent(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		eager, err := Run(Config{Seed: seed, Updates: 20, FastDefaults: true})
		if err != nil {
			t.Fatalf("seed %d eager: %v", seed, err)
		}
		reloc, err := Run(Config{Seed: seed, Updates: 20, FastDefaults: true, ConcurrentReloc: true})
		if err != nil {
			t.Fatalf("seed %d reloc: %v", seed, err)
		}
		if *eager != *reloc {
			t.Fatalf("seed %d: relocation timing changed the trajectory:\n  eager=%+v\n  reloc=%+v",
				seed, *eager, *reloc)
		}
	}
}

// TestStormTierEquivalence runs the same seeds with the fused tier (trace
// promotion onto superinstructions with inline caches) and with the VM
// pinned to the base interpreter. The shadow oracle validates every field
// value, static, array and probe after each update; the probe pass runs
// virtual dispatch through whatever tier the probe methods currently
// occupy, so the fused run exercises inline caches across repeated updates
// of the classes behind those call sites. Requiring the two Reports
// byte-identical pins the whole trajectory: superinstruction fusion, ICs
// and trace promotion must be observationally invisible — including across
// every IC flush and fused-code invalidation the updates trigger. (The opt
// tier is excluded on both sides: its inlining removes method-entry yield
// points, which legitimately shifts slice boundaries — a pre-existing
// property of inlining, not a tier-honesty bug.)
func TestStormTierEquivalence(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		fused, err := Run(Config{Seed: seed, Updates: 20, FastDefaults: true, FusedOnly: true})
		if err != nil {
			t.Fatalf("seed %d fused: %v", seed, err)
		}
		base, err := Run(Config{Seed: seed, Updates: 20, FastDefaults: true, BaseTierOnly: true})
		if err != nil {
			t.Fatalf("seed %d base-only: %v", seed, err)
		}
		if *fused != *base {
			t.Fatalf("seed %d: interpreter tier changed the trajectory:\n  fused=%+v\n  base=%+v",
				seed, *fused, *base)
		}
	}
}

// TestStormStaleICCoverage proves the storm's stale-IC coverage is real,
// not vacuous: a default-tier run whose updates repeatedly replace the
// classes behind the hot monomorphic snap/probe call sites must actually
// drive inline-cache traffic (hits), flush IC entries at update installs,
// and invalidate fused code — all while the shadow oracle and CheckVM stay
// green. An IC left stale across any of those updates would dispatch to
// the old method body and show up as a probe-oracle mismatch.
func TestStormStaleICCoverage(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := Run(Config{Seed: 11, Updates: 30, FastDefaults: true, OptThreshold: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied < 30 {
		t.Fatalf("applied only %d/30 updates", rep.Applied)
	}
	if hits := reg.Counter(obs.MJITICHits).Value(); hits == 0 {
		t.Fatal("no inline-cache hits: the storm never exercised cached dispatch")
	}
	if flushes := reg.Counter(obs.MJITICFlushes).Value(); flushes == 0 {
		t.Fatal("no IC flushes: updates installed without clearing inline caches")
	}
	t.Logf("ic hits=%d misses=%d flushes=%d promotions=%d",
		reg.Counter(obs.MJITICHits).Value(), reg.Counter(obs.MJITICMisses).Value(),
		reg.Counter(obs.MJITICFlushes).Value(), reg.Counter(obs.MJITTracePromotions).Value())
}

// TestStormLazyEagerEquivalent runs the same seeds eagerly and lazily. The
// shadow oracle validates every post-drain field value, static, array and
// probe after each update, so both passing proves the lazy drain reaches
// the same final heap state object-by-object; the lazy drive sequence
// consumes rng and scheduler steps identically (probes and forced drains
// run on synchronous threads), so the whole Report must come out equal —
// transformation timing must be observationally invisible.
func TestStormLazyEagerEquivalent(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		eager, err := Run(Config{Seed: seed, Updates: 20, ScratchWords: 1 << 14, FastDefaults: true})
		if err != nil {
			t.Fatalf("seed %d eager: %v", seed, err)
		}
		lazy, err := Run(Config{Seed: seed, Updates: 20, ScratchWords: 1 << 14, FastDefaults: true, Lazy: true})
		if err != nil {
			t.Fatalf("seed %d lazy: %v", seed, err)
		}
		if *eager != *lazy {
			t.Fatalf("seed %d: transformation timing changed the trajectory:\n  eager=%+v\n  lazy=%+v",
				seed, *eager, *lazy)
		}
	}
}
